package ajaxcrawl

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"

	"ajaxcrawl/internal/fetch"
)

// buildTestEngine crawls a small synthetic site through the full
// pipeline.
func buildTestEngine(t *testing.T, videos, maxPages int) (*SimSite, *Engine) {
	t.Helper()
	site := NewSimSite(videos, 123)
	eng, err := BuildEngine(context.Background(), Config{
		Fetcher:       NewHandlerFetcher(site.Handler()),
		StartURL:      site.VideoURL(0),
		MaxPages:      maxPages,
		PartitionSize: 5,
		ProcLines:     3,
		Crawl:         CrawlOptions{UseHotNode: true, MaxStates: 5},
		KeepURL:       IsWatchURL,
	})
	if err != nil {
		t.Fatal(err)
	}
	return site, eng
}

func TestBuildEngineEndToEnd(t *testing.T) {
	_, eng := buildTestEngine(t, 40, 20)
	if eng.Metrics.Pages != 20 {
		t.Fatalf("crawled %d pages, want 20", eng.Metrics.Pages)
	}
	if eng.NumStates() < 20 {
		t.Fatalf("too few states: %d", eng.NumStates())
	}
	if len(eng.Shards()) != 4 {
		t.Fatalf("want 4 shards (20 pages / 5), got %d", len(eng.Shards()))
	}
	if len(eng.PageRank) == 0 {
		t.Fatalf("PageRank missing")
	}
}

func TestEngineSearchFindsAJAXOnlyContent(t *testing.T) {
	_, eng := buildTestEngine(t, 40, 25)
	// "wow" is the most-planted query phrase; with 25 pages crawled it
	// should match somewhere, including states beyond the first.
	rs := eng.Search("wow")
	if len(rs) == 0 {
		t.Fatalf("no results for the most popular planted query")
	}
	deep := false
	for _, r := range rs {
		if r.State > 0 {
			deep = true
			break
		}
	}
	if !deep {
		t.Logf("warning: all hits on first pages (small sample); acceptable but unusual")
	}
	// Scores sorted.
	for i := 1; i < len(rs); i++ {
		if rs[i].Score > rs[i-1].Score {
			t.Fatalf("results unsorted")
		}
	}
}

func TestEngineReconstruct(t *testing.T) {
	_, eng := buildTestEngine(t, 40, 15)
	rs := eng.Search("wow")
	if len(rs) == 0 {
		t.Skip("no hits in this sample")
	}
	// Reconstruct the deepest result to exercise event replay.
	best := rs[0]
	for _, r := range rs {
		if r.State > best.State {
			best = r
		}
	}
	html, err := eng.Reconstruct(context.Background(), best)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(html, "recent_comments") {
		t.Fatalf("reconstructed HTML missing comment box")
	}
	// The reconstructed state must actually contain the query term.
	if !strings.Contains(strings.ToLower(html), "wow") {
		t.Fatalf("reconstructed state does not contain the query")
	}
}

func TestReconstructErrors(t *testing.T) {
	_, eng := buildTestEngine(t, 10, 5)
	if _, err := eng.Reconstruct(context.Background(), Result{URL: "/watch?v=unknown", State: 0}); err == nil {
		t.Fatalf("reconstructing unknown URL should fail")
	}
}

func TestBuildEngineCancelReturnsPartialEngine(t *testing.T) {
	// Cancel mid-crawl: the precrawl (first ~20 watch fetches) completes,
	// then the crawl phase is cut short. BuildEngine must hand back the
	// partial engine built from the partitions crawled so far, alongside
	// the context error, so a graceful shutdown can still serve results.
	site := NewSimSite(40, 123)
	inner := NewHandlerFetcher(site.Handler())
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var watchFetches atomic.Int64
	counting := fetch.Func(func(c context.Context, rawurl string) (*fetch.Response, error) {
		if strings.Contains(rawurl, "/watch?v=") && watchFetches.Add(1) == 26 {
			cancel()
		}
		return inner.Fetch(c, rawurl)
	})
	eng, err := BuildEngine(ctx, Config{
		Fetcher:       counting,
		StartURL:      site.VideoURL(0),
		MaxPages:      20,
		PartitionSize: 5,
		ProcLines:     2,
		Crawl:         CrawlOptions{UseHotNode: true, MaxStates: 5},
		KeepURL:       IsWatchURL,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if eng == nil {
		t.Fatalf("canceled build should return the partial engine")
	}
	if eng.Metrics.Pages == 0 || eng.Metrics.Pages >= 20 {
		t.Fatalf("want a partial crawl, got %d pages", eng.Metrics.Pages)
	}
	if eng.NumStates() == 0 {
		t.Fatalf("partial engine has no indexed states")
	}
	if len(eng.Search("wow")) == 0 && len(eng.Search("video")) == 0 {
		t.Logf("partial engine returned no hits (small sample); index still intact")
	}
}

func TestBuildEngineValidation(t *testing.T) {
	site := NewSimSite(5, 1)
	if _, err := BuildEngine(context.Background(), Config{StartURL: "/", MaxPages: 5}); err == nil {
		t.Fatalf("missing fetcher should fail")
	}
	f := NewHandlerFetcher(site.Handler())
	if _, err := BuildEngine(context.Background(), Config{Fetcher: f, MaxPages: 5}); err == nil {
		t.Fatalf("missing start URL should fail")
	}
	if _, err := BuildEngine(context.Background(), Config{Fetcher: f, StartURL: "/x"}); err == nil {
		t.Fatalf("missing MaxPages should fail")
	}
	if _, err := BuildEngine(context.Background(), Config{Fetcher: f, StartURL: "/watch?v=none", MaxPages: 3}); err == nil {
		t.Fatalf("unreachable start should fail")
	}
}

func TestNewEngineFromGraphs(t *testing.T) {
	site := NewSimSite(10, 7)
	f := NewHandlerFetcher(site.Handler())
	c := NewCrawler(f, CrawlOptions{UseHotNode: true, MaxStates: 3})
	g, _, err := c.CrawlPage(context.Background(), site.VideoURL(0))
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngineFromGraphs(f, []*Graph{g}, nil)
	if eng.NumStates() != g.NumStates() {
		t.Fatalf("states = %d, want %d", eng.NumStates(), g.NumStates())
	}
	if eng.Graph(site.VideoURL(0)) != g {
		t.Fatalf("Graph lookup failed")
	}
}

func TestSimSiteAccessors(t *testing.T) {
	site := NewSimSite(8, 2)
	if site.NumVideos() != 8 {
		t.Fatalf("NumVideos = %d", site.NumVideos())
	}
	if !IsWatchURL(site.VideoURL(0)) {
		t.Fatalf("VideoURL not a watch URL: %s", site.VideoURL(0))
	}
	if site.VideoTitle(0) == "" || site.CommentPages(0) < 1 {
		t.Fatalf("video metadata empty")
	}
	if len(site.Queries()) != 100 {
		t.Fatalf("queries = %d", len(site.Queries()))
	}
	if !IsWatchURL("/watch?v=abc") || IsWatchURL("/comments?v=abc") {
		t.Fatalf("IsWatchURL misclassifies")
	}
}

// TestTraditionalVsAJAXRecall is the headline result (§7.7) at miniature
// scale: the AJAX index returns strictly more results than the
// traditional (first-state-only) index for the planted query set.
func TestTraditionalVsAJAXRecall(t *testing.T) {
	site := NewSimSite(60, 99)
	f := NewHandlerFetcher(site.Handler())

	crawl := func(opts CrawlOptions) *Engine {
		c := NewCrawler(f, opts)
		var graphs []*Graph
		for i := 0; i < 30; i++ {
			g, _, err := c.CrawlPage(context.Background(), site.VideoURL(i))
			if err != nil {
				t.Fatal(err)
			}
			graphs = append(graphs, g)
		}
		return NewEngineFromGraphs(f, graphs, nil)
	}
	trad := crawl(CrawlOptions{Traditional: true})
	ajax := crawl(CrawlOptions{UseHotNode: true})

	tradTotal, ajaxTotal := 0, 0
	for _, q := range site.Queries()[:10] {
		tradTotal += len(trad.Search(q))
		ajaxTotal += len(ajax.Search(q))
	}
	if ajaxTotal <= tradTotal {
		t.Fatalf("AJAX search must improve recall: trad=%d ajax=%d", tradTotal, ajaxTotal)
	}
	t.Logf("recall gain: traditional %d hits, AJAX %d hits", tradTotal, ajaxTotal)
}

func TestSearchWithSnippets(t *testing.T) {
	_, eng := buildTestEngine(t, 40, 20)
	out := eng.SearchWithSnippets("wow", 5)
	if len(out) == 0 {
		t.Skip("no hits in this sample")
	}
	for _, r := range out {
		if r.Snippet == "" {
			t.Fatalf("missing snippet for %v", r.Result)
		}
		if !strings.Contains(r.Snippet, "[wow]") {
			t.Fatalf("snippet not highlighted: %q", r.Snippet)
		}
	}
}

func TestFetcherConstructors(t *testing.T) {
	site := NewSimSite(3, 1)
	// Latency fetcher wraps and still serves.
	lf := NewLatencyFetcher(NewHandlerFetcher(site.Handler()), 0, 0)
	resp, err := lf.Fetch(context.Background(), site.VideoURL(0))
	if err != nil || resp.Status != 200 {
		t.Fatalf("latency fetcher: %v %v", resp, err)
	}
	// HTTP fetcher constructs (live fetch exercised in internal/fetch).
	if NewHTTPFetcher(nil) == nil {
		t.Fatalf("nil http fetcher")
	}
}

func TestTopKResultsHelper(t *testing.T) {
	rs := []Result{{Score: 3}, {Score: 2}, {Score: 1}}
	if got := TopKResults(rs, 2); len(got) != 2 || got[0].Score != 3 {
		t.Fatalf("TopKResults = %v", got)
	}
}
