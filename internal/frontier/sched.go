package frontier

import (
	"math/rand"
	"sync"

	"ajaxcrawl/internal/obs"
)

// SchedConfig tunes a Scheduler.
type SchedConfig struct {
	// Lines is the number of process lines pulling work. <= 0 selects 1.
	Lines int
	// Batch is how many items a line pulls from the shared frontier per
	// refill; the surplus lands in the line's local deque where
	// siblings can steal it. <= 0 selects 8.
	Batch int
	// Seed seeds the steal-victim tie-break PRNG. The scheduler is
	// deterministic for any seed (crawl results are order-independent
	// by construction); the seed makes the *schedule* itself
	// reproducible for debugging and the determinism suite. 0 selects
	// seed 1.
	Seed int64
	// Tel receives frontier.steals; nil disables metering.
	Tel *obs.Telemetry
}

// Scheduler feeds N process lines from one shared Frontier. Each line
// owns a small FIFO deque refilled in batches from the frontier; a line
// that runs dry first drains the frontier, then steals the back half of
// the richest sibling's deque, and only blocks when every queue is
// empty but items are still in flight (an in-flight item may be
// requeued by the supervisor). This is what replaces "one goroutine per
// static partition": capacity rebalances to wherever work remains
// instead of idling behind a slow partition.
//
// All methods are safe for concurrent use.
type Scheduler struct {
	f           *Frontier
	mu          sync.Mutex
	cond        *sync.Cond
	deques      []deque
	outstanding int
	canceled    bool
	batch       int
	rng         *rand.Rand
	tel         *obs.Telemetry
}

// NewScheduler wraps an already-loaded frontier. Every item in f (plus
// later Requeues of them) must be retired with Done; once all are, Next
// returns false on every line and the lines drain out.
func NewScheduler(f *Frontier, cfg SchedConfig) *Scheduler {
	lines := cfg.Lines
	if lines <= 0 {
		lines = 1
	}
	batch := cfg.Batch
	if batch <= 0 {
		batch = 8
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	s := &Scheduler{
		f:           f,
		deques:      make([]deque, lines),
		outstanding: f.Len(),
		batch:       batch,
		rng:         rand.New(rand.NewSource(seed)),
		tel:         cfg.Tel,
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// Next blocks until an item is available for line and returns it, or
// returns false when the crawl is drained (every item retired) or
// canceled.
func (s *Scheduler) Next(line int) (Item, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.canceled {
			return Item{}, false
		}
		if it, ok := s.deques[line].popFront(); ok {
			return it, true
		}
		if batch := s.f.PopBatch(s.batch); len(batch) > 0 {
			s.deques[line].pushBack(batch[1:])
			if len(batch) > 1 {
				// Surplus is now stealable — wake idle siblings.
				s.cond.Broadcast()
			}
			return batch[0], true
		}
		if it, ok := s.steal(line); ok {
			return it, true
		}
		if s.outstanding <= 0 {
			return Item{}, false
		}
		s.cond.Wait()
	}
}

// steal (under s.mu) takes the back half of the richest sibling's
// deque, ties broken by the seeded PRNG so no line is structurally
// favored. Returns the first stolen item; the rest join line's deque.
func (s *Scheduler) steal(line int) (Item, bool) {
	richest, max, ties := -1, 0, 0
	for i := range s.deques {
		if i == line {
			continue
		}
		switch n := s.deques[i].len(); {
		case n > max:
			richest, max, ties = i, n, 1
		case n == max && n > 0:
			ties++
			if s.rng.Intn(ties) == 0 {
				richest = i
			}
		}
	}
	if richest < 0 {
		return Item{}, false
	}
	got := s.deques[richest].stealBack((max + 1) / 2)
	if s.tel != nil {
		s.tel.Counter("frontier.steals").Inc()
	}
	s.deques[line].pushBack(got[1:])
	return got[0], true
}

// Requeue returns a failed item to the shared frontier for another
// attempt (the caller bumps Attempt). The item stays outstanding.
func (s *Scheduler) Requeue(it Item) {
	s.mu.Lock()
	s.f.Push(it)
	s.cond.Broadcast()
	s.mu.Unlock()
}

// Done retires one item for good. When the last item retires, blocked
// lines wake and drain out.
func (s *Scheduler) Done() {
	s.mu.Lock()
	s.outstanding--
	if s.outstanding <= 0 {
		s.cond.Broadcast()
	}
	s.mu.Unlock()
}

// Cancel aborts the crawl: every current and future Next returns false.
// Items left queued are abandoned (the caller's context is ending).
func (s *Scheduler) Cancel() {
	s.mu.Lock()
	s.canceled = true
	s.cond.Broadcast()
	s.mu.Unlock()
}

// Outstanding returns the number of unretired items (diagnostics).
func (s *Scheduler) Outstanding() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.outstanding
}

// deque is a line's local FIFO: popFront serves the owner, stealBack
// serves siblings. The head cursor avoids the reslice-pins-the-array
// leak; the buffer compacts once the head passes half the backing
// array.
type deque struct {
	buf  []Item
	head int
}

func (d *deque) len() int { return len(d.buf) - d.head }

func (d *deque) popFront() (Item, bool) {
	if d.head >= len(d.buf) {
		return Item{}, false
	}
	it := d.buf[d.head]
	d.buf[d.head] = Item{}
	d.head++
	if d.head >= len(d.buf) {
		d.buf, d.head = d.buf[:0], 0
	} else if d.head > len(d.buf)/2 && d.head > 16 {
		n := copy(d.buf, d.buf[d.head:])
		d.buf, d.head = d.buf[:n], 0
	}
	return it, true
}

func (d *deque) pushBack(items []Item) {
	d.buf = append(d.buf, items...)
}

// stealBack removes up to n items from the back, preserving their
// relative order.
func (d *deque) stealBack(n int) []Item {
	if n > d.len() {
		n = d.len()
	}
	if n <= 0 {
		return nil
	}
	cut := len(d.buf) - n
	out := make([]Item, n)
	copy(out, d.buf[cut:])
	for i := cut; i < len(d.buf); i++ {
		d.buf[i] = Item{}
	}
	d.buf = d.buf[:cut]
	return out
}
