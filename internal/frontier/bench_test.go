package frontier

import (
	"fmt"
	"testing"
)

// BenchmarkFrontierPushPop measures the scheduler hot path: one admit
// plus one pop through the tiered heap.
func BenchmarkFrontierPushPop(b *testing.B) {
	f := New(Config{BloomBits: 1 << 22})
	// Pre-size tiers with a realistic standing depth.
	var seed []Item
	for i := 0; i < 1024; i++ {
		seed = append(seed, Item{URL: fmt.Sprintf("http://site/seed?v=%d", i), Seq: i, Priority: float64(i%100) / 100})
	}
	f.AdmitSeed(seed)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Push(Item{URL: "http://site/hot", Seq: i, Priority: float64(i%100) / 100})
		f.Pop()
	}
}

// BenchmarkBloomAdmit measures dynamic admission against a populated
// filter — the dedup check every dynamically discovered URL pays.
func BenchmarkBloomAdmit(b *testing.B) {
	f := New(Config{BloomBits: 1 << 22})
	var seed []Item
	for i := 0; i < 100_000; i++ {
		seed = append(seed, Item{URL: fmt.Sprintf("http://site/seed?v=%d", i), Seq: i})
	}
	f.AdmitSeed(seed)
	urls := make([]string, 1024)
	for i := range urls {
		urls[i] = fmt.Sprintf("http://site/new?v=%d", i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Mostly-duplicate mix: half seed re-discoveries, half fresh.
		if i%2 == 0 {
			f.Admit(Item{URL: seed[i%len(seed)].URL})
		} else {
			f.Admit(Item{URL: urls[i%len(urls)], Seq: i})
		}
	}
}
