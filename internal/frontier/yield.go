package frontier

import (
	"sort"
	"strings"
	"sync"
)

// YieldEstimator predicts how many AJAX states a URL is likely to yield,
// learned online from pages already crawled. The thesis ranks the
// precrawl frontier by PageRank alone; an AJAX crawler additionally
// cares about dynamic yield — a template that historically explodes
// into many states is worth crawling ahead of an equally-ranked static
// page. The estimator keys an exponentially weighted moving average by
// URL class (path with digit runs collapsed, plus sorted query
// parameter names), so observations on /watch?v=1 inform the priority
// of /watch?v=2.
//
// YieldEstimator is safe for concurrent use: every process line reports
// observations while admissions read boosts.
type YieldEstimator struct {
	mu    sync.Mutex
	alpha float64
	ewma  map[string]float64
}

// NewYieldEstimator returns an estimator with smoothing factor alpha in
// (0,1]; out-of-range values select 0.3 (recent pages dominate, but one
// outlier page does not swing the class).
func NewYieldEstimator(alpha float64) *YieldEstimator {
	if alpha <= 0 || alpha > 1 {
		alpha = 0.3
	}
	return &YieldEstimator{alpha: alpha, ewma: make(map[string]float64)}
}

// URLClass maps a URL to its template class: scheme and host dropped,
// digit runs in the path collapsed to "#", query parameter names kept
// (sorted) and values dropped. Distinct pages of one template share a
// class.
func URLClass(u string) string {
	rest := u
	if i := strings.Index(rest, "://"); i >= 0 {
		rest = rest[i+3:]
	}
	if i := strings.IndexByte(rest, '/'); i >= 0 {
		rest = rest[i:]
	} else {
		rest = "/"
	}
	path, query := rest, ""
	if i := strings.IndexByte(rest, '?'); i >= 0 {
		path, query = rest[:i], rest[i+1:]
	}
	var b strings.Builder
	inDigits := false
	for i := 0; i < len(path); i++ {
		c := path[i]
		if c >= '0' && c <= '9' {
			if !inDigits {
				b.WriteByte('#')
				inDigits = true
			}
			continue
		}
		inDigits = false
		b.WriteByte(c)
	}
	if query == "" {
		return b.String()
	}
	var names []string
	for _, kv := range strings.Split(query, "&") {
		if kv == "" {
			continue
		}
		if i := strings.IndexByte(kv, '='); i >= 0 {
			kv = kv[:i]
		}
		names = append(names, kv)
	}
	sort.Strings(names)
	return b.String() + "?" + strings.Join(names, "&")
}

// Observe records that url produced states AJAX states when crawled.
func (e *YieldEstimator) Observe(url string, states int) {
	class := URLClass(url)
	e.mu.Lock()
	prev, seen := e.ewma[class]
	if !seen {
		e.ewma[class] = float64(states)
	} else {
		e.ewma[class] = e.alpha*float64(states) + (1-e.alpha)*prev
	}
	e.mu.Unlock()
}

// Boost returns the expected-state-yield boost for url, normalized to
// [0,1): yield/(yield+1), so a class averaging 1 state boosts by 0.5
// and an unseen class by 0. Callers scale it by their own weight before
// adding it to a base priority.
func (e *YieldEstimator) Boost(url string) float64 {
	class := URLClass(url)
	e.mu.Lock()
	y := e.ewma[class]
	e.mu.Unlock()
	if y <= 0 {
		return 0
	}
	return y / (y + 1)
}
