// Package frontier implements the shared crawl frontier of the parallel
// crawler: a tiered priority queue over precrawled URLs (ordered by
// PageRank with an expected-AJAX-state-yield boost), bloom-filter
// membership dedup at admission, and a work-stealing scheduler that
// feeds N long-lived process lines from the one shared queue so a slow
// page never strands capacity the way a slow static partition did.
package frontier

import "hash/fnv"

// Bloom is a classic bloom filter over strings, used by the frontier to
// reject re-admissions of already-seen URLs without holding every seen
// URL in an exact set. Hashing is FNV-64a double hashing (Kirsch &
// Mitzenmacher: index_i = h1 + i*h2), fully deterministic across runs —
// the same URL stream always produces the same bit pattern, which the
// determinism test suite relies on.
//
// A bloom filter says "definitely not seen" or "maybe seen"; the
// frontier treats "maybe" as a rejection for dynamically admitted URLs
// only, so a false positive can drop a late discovery but can never
// drop a page of the pinned precrawl universe (those are admitted
// against the exact set). See OPERATIONS.md "bloom false positives".
//
// Bloom is not safe for concurrent use; the Frontier serializes access
// under its own lock.
type Bloom struct {
	bits []uint64
	m    uint64 // number of bits, power-of-two-rounded
	k    int    // hash functions per element
}

// NewBloom returns a filter of at least mBits bits (rounded up to a
// power of two, minimum 64) using k hash probes per element. k <= 0
// selects 4 probes, a good default for the ~1% false-positive range at
// 10 bits per element.
func NewBloom(mBits int, k int) *Bloom {
	m := uint64(64)
	for m < uint64(mBits) {
		m <<= 1
	}
	if k <= 0 {
		k = 4
	}
	return &Bloom{bits: make([]uint64, m/64), m: m, k: k}
}

// hashPair derives the two independent 64-bit hashes double hashing
// mixes together. h1 is FNV-64a of s; h2 is h1 pushed through a
// splitmix64 finalizer so the pair decorrelates without hashing s
// twice.
func hashPair(s string) (uint64, uint64) {
	h := fnv.New64a()
	h.Write([]byte(s))
	h1 := h.Sum64()
	z := h1 + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	h2 := z ^ (z >> 31)
	// An even h2 would cycle through only half the (power-of-two) bit
	// positions; force it odd.
	return h1, h2 | 1
}

// Add marks s as seen.
func (b *Bloom) Add(s string) {
	h1, h2 := hashPair(s)
	for i := 0; i < b.k; i++ {
		bit := (h1 + uint64(i)*h2) & (b.m - 1)
		b.bits[bit/64] |= 1 << (bit % 64)
	}
}

// MaybeContains reports whether s may have been added. False means
// definitely not added; true means added or a false positive.
func (b *Bloom) MaybeContains(s string) bool {
	h1, h2 := hashPair(s)
	for i := 0; i < b.k; i++ {
		bit := (h1 + uint64(i)*h2) & (b.m - 1)
		if b.bits[bit/64]&(1<<(bit%64)) == 0 {
			return false
		}
	}
	return true
}

// Bits returns the filter's size in bits (diagnostics).
func (b *Bloom) Bits() int { return int(b.m) }
