package frontier

import (
	"container/heap"
	"sort"
	"sync"

	"ajaxcrawl/internal/obs"
)

// Item is one unit of crawl work: a URL with its position in the
// partition layout (kept so results can still be assembled per
// partition) and its scheduling priority.
type Item struct {
	URL string
	// Partition and Seq locate the URL in the partition layout:
	// Partitions[Partition]'s Seq-th URL. Together they give every item
	// a total order that priority ties break on, which is what makes a
	// seeded multi-line crawl reproducible.
	Partition int
	Seq       int
	// Priority orders the frontier, higher first — normalized PageRank
	// plus the expected-AJAX-state-yield boost.
	Priority float64
	// Attempt counts supervisor requeues of this item (0 = first try).
	Attempt int
}

// Config tunes a Frontier.
type Config struct {
	// BloomBits sizes the dedup bloom filter in bits (rounded up to a
	// power of two). <= 0 selects 1<<20 bits (128 KiB), comfortable for
	// hundreds of thousands of URLs at a ~1% false-positive rate.
	BloomBits int
	// Tiers is the number of priority bands; the tier boundaries are
	// the priority quantiles of the seed batch. <= 0 selects 4.
	Tiers int
	// Tel receives frontier.* metrics; nil disables metering.
	Tel *obs.Telemetry
}

// Frontier is the shared prioritized URL queue. Priorities are bucketed
// into tiers (bands between seed-batch quantiles); within a tier a heap
// orders items by (priority desc, partition, seq), so equal-priority
// work drains in partition order — the property the determinism suite
// pins. Tiering keeps the hot path cheap: Pop scans a handful of
// buckets and pays one O(log n) heap operation on the first non-empty
// one.
//
// Dedup is two-layer. An exact set guards the pinned crawl universe:
// every admitted URL lands in it, and AdmitSeed consults only it, so a
// precrawled URL can never be lost to a hash collision. The bloom
// filter guards Admit (dynamic/late admission) and additionally carries
// the precrawl visited set via MarkSeen, so URLs rediscovered during
// crawling are rejected without an exact entry each.
//
// All methods are safe for concurrent use.
type Frontier struct {
	mu       sync.Mutex
	tiers    []tierHeap
	bounds   []float64 // descending tier lower bounds, len = len(tiers)-1
	bloom    *Bloom
	admitted map[string]bool
	size     int
	tel      *obs.Telemetry
}

// New returns an empty frontier.
func New(cfg Config) *Frontier {
	bits := cfg.BloomBits
	if bits <= 0 {
		bits = 1 << 20
	}
	tiers := cfg.Tiers
	if tiers <= 0 {
		tiers = 4
	}
	return &Frontier{
		tiers:    make([]tierHeap, tiers),
		bloom:    NewBloom(bits, 0),
		admitted: make(map[string]bool),
		tel:      cfg.Tel,
	}
}

// AdmitSeed bulk-admits the precrawl batch and derives the tier
// boundaries from its priority quantiles. Dedup within the batch is
// exact (the bloom filter is also populated, for later Admit calls):
// seed URLs are never lost to bloom false positives. Returns the number
// of items admitted.
func (f *Frontier) AdmitSeed(items []Item) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	// Quantile boundaries over the batch's distinct priorities. With a
	// flat priority map (no PageRank) every item lands in tier 0 and
	// the frontier degrades to (partition, seq) FIFO order.
	pris := make([]float64, 0, len(items))
	for _, it := range items {
		if !f.admitted[it.URL] {
			pris = append(pris, it.Priority)
		}
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(pris)))
	f.bounds = f.bounds[:0]
	for t := 1; t < len(f.tiers); t++ {
		i := t * len(pris) / len(f.tiers)
		if i >= len(pris) {
			i = len(pris) - 1
		}
		if i < 0 {
			i = 0
		}
		if len(pris) == 0 {
			f.bounds = append(f.bounds, 0)
		} else {
			f.bounds = append(f.bounds, pris[i])
		}
	}
	n := 0
	for _, it := range items {
		if f.admitted[it.URL] {
			f.meter("frontier.dedup_hits", 1)
			continue
		}
		f.admitted[it.URL] = true
		f.bloom.Add(it.URL)
		f.push(it)
		n++
	}
	f.meter("frontier.admitted", int64(n))
	return n
}

// Admit offers one dynamically discovered item. It is rejected when the
// exact set has it or the bloom filter says "maybe seen" — including
// the bloom's false positives, which is the documented price of
// constant-memory dedup for the dynamic stream. Returns whether the
// item was admitted.
func (f *Frontier) Admit(it Item) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.admitted[it.URL] || f.bloom.MaybeContains(it.URL) {
		f.meter("frontier.dedup_hits", 1)
		return false
	}
	f.admitted[it.URL] = true
	f.bloom.Add(it.URL)
	f.push(it)
	f.meter("frontier.admitted", 1)
	return true
}

// MarkSeen feeds URLs into the bloom filter without queueing them —
// used to seed dedup with the precrawl visited set, so pages the
// precrawler already rejected (or crawled) are not re-admitted when
// rediscovered dynamically.
func (f *Frontier) MarkSeen(urls map[string]bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for u, ok := range urls {
		if ok {
			f.bloom.Add(u)
		}
	}
}

// Push requeues an item without dedup — the supervisor's retry path.
func (f *Frontier) Push(it Item) {
	f.mu.Lock()
	f.push(it)
	f.mu.Unlock()
}

// Pop removes and returns the highest-priority item.
func (f *Frontier) Pop() (Item, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for t := range f.tiers {
		if f.tiers[t].Len() > 0 {
			it := heap.Pop(&f.tiers[t]).(Item)
			f.size--
			f.gauge("frontier.depth", -1)
			return it, true
		}
	}
	return Item{}, false
}

// PopBatch pops up to n items in priority order.
func (f *Frontier) PopBatch(n int) []Item {
	var out []Item
	for len(out) < n {
		it, ok := f.Pop()
		if !ok {
			break
		}
		out = append(out, it)
	}
	return out
}

// Len returns the number of queued items.
func (f *Frontier) Len() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.size
}

// Admitted reports whether url was ever admitted (exact, seed or
// dynamic — MarkSeen URLs do not count).
func (f *Frontier) Admitted(url string) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.admitted[url]
}

// push enqueues under f.mu.
func (f *Frontier) push(it Item) {
	heap.Push(&f.tiers[f.tierOf(it.Priority)], it)
	f.size++
	f.gauge("frontier.depth", 1)
	if f.tel != nil {
		f.tel.Histogram("frontier.priority", PriorityBounds...).Observe(it.Priority)
	}
}

// tierOf maps a priority to its band: tier t holds priorities >=
// bounds[t] (bounds descend); anything below the last bound lands in
// the bottom tier.
func (f *Frontier) tierOf(pri float64) int {
	for t, b := range f.bounds {
		if pri >= b {
			return t
		}
	}
	return len(f.tiers) - 1
}

// PriorityBounds are the frontier.priority histogram buckets. Priorities
// are normalized PageRank (max 1) plus a yield boost in [0,1), so the
// observable range is [0,2).
var PriorityBounds = []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 0.75, 1, 1.5}

func (f *Frontier) meter(name string, d int64) {
	if f.tel != nil {
		f.tel.Counter(name).Add(d)
	}
}

func (f *Frontier) gauge(name string, d int64) {
	if f.tel != nil {
		f.tel.Gauge(name).Add(d)
	}
}

// tierHeap is a max-heap on priority with (partition, seq) tie-break.
type tierHeap []Item

func (h tierHeap) Len() int { return len(h) }
func (h tierHeap) Less(i, j int) bool {
	if h[i].Priority != h[j].Priority {
		return h[i].Priority > h[j].Priority
	}
	if h[i].Partition != h[j].Partition {
		return h[i].Partition < h[j].Partition
	}
	return h[i].Seq < h[j].Seq
}
func (h tierHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *tierHeap) Push(x any) { *h = append(*h, x.(Item)) }

func (h *tierHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = Item{}
	*h = old[:n-1]
	return it
}
