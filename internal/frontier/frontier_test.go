package frontier

import (
	"fmt"
	"sync"
	"testing"
)

func TestBloomNoFalseNegatives(t *testing.T) {
	b := NewBloom(1<<14, 0)
	for i := 0; i < 1000; i++ {
		b.Add(fmt.Sprintf("http://site/watch?v=%d", i))
	}
	for i := 0; i < 1000; i++ {
		if !b.MaybeContains(fmt.Sprintf("http://site/watch?v=%d", i)) {
			t.Fatalf("false negative for v=%d", i)
		}
	}
}

func TestBloomFalsePositiveRateReasonable(t *testing.T) {
	// 1000 elements in 16Ki bits ≈ 16 bits/element: the FP rate should
	// be well under 5%.
	b := NewBloom(1<<14, 0)
	for i := 0; i < 1000; i++ {
		b.Add(fmt.Sprintf("http://site/watch?v=%d", i))
	}
	fp := 0
	for i := 0; i < 10000; i++ {
		if b.MaybeContains(fmt.Sprintf("http://other/page?id=%d", i)) {
			fp++
		}
	}
	if fp > 500 {
		t.Fatalf("false positive rate %d/10000 too high", fp)
	}
}

func TestBloomDeterministic(t *testing.T) {
	a, b := NewBloom(1<<12, 0), NewBloom(1<<12, 0)
	for i := 0; i < 200; i++ {
		a.Add(fmt.Sprintf("u%d", i))
		b.Add(fmt.Sprintf("u%d", i))
	}
	for i := range a.bits {
		if a.bits[i] != b.bits[i] {
			t.Fatalf("bit pattern diverges at word %d", i)
		}
	}
}

func TestFrontierPriorityOrder(t *testing.T) {
	f := New(Config{})
	f.AdmitSeed([]Item{
		{URL: "low", Partition: 0, Seq: 0, Priority: 0.1},
		{URL: "high", Partition: 0, Seq: 1, Priority: 0.9},
		{URL: "mid", Partition: 1, Seq: 0, Priority: 0.5},
	})
	want := []string{"high", "mid", "low"}
	for _, w := range want {
		it, ok := f.Pop()
		if !ok || it.URL != w {
			t.Fatalf("pop = %q,%v want %q", it.URL, ok, w)
		}
	}
	if _, ok := f.Pop(); ok {
		t.Fatal("pop on empty frontier succeeded")
	}
}

func TestFrontierEqualPriorityIsPartitionOrder(t *testing.T) {
	f := New(Config{})
	var seed []Item
	for p := 2; p >= 0; p-- {
		for s := 2; s >= 0; s-- {
			seed = append(seed, Item{URL: fmt.Sprintf("p%ds%d", p, s), Partition: p, Seq: s, Priority: 0.25})
		}
	}
	f.AdmitSeed(seed)
	var got []string
	for {
		it, ok := f.Pop()
		if !ok {
			break
		}
		got = append(got, it.URL)
	}
	want := []string{"p0s0", "p0s1", "p0s2", "p1s0", "p1s1", "p1s2", "p2s0", "p2s1", "p2s2"}
	if len(got) != len(want) {
		t.Fatalf("popped %d items, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop order[%d] = %q, want %q (full: %v)", i, got[i], want[i], got)
		}
	}
}

func TestFrontierDedup(t *testing.T) {
	f := New(Config{})
	n := f.AdmitSeed([]Item{
		{URL: "a", Priority: 1},
		{URL: "a", Priority: 1}, // duplicate within seed batch
		{URL: "b", Priority: 1},
	})
	if n != 2 {
		t.Fatalf("seed admitted %d, want 2", n)
	}
	if f.Admit(Item{URL: "a"}) {
		t.Fatal("re-admitted a seed URL")
	}
	if !f.Admit(Item{URL: "c"}) {
		t.Fatal("rejected a fresh URL")
	}
	if f.Admit(Item{URL: "c"}) {
		t.Fatal("re-admitted a dynamic URL")
	}
	if f.Len() != 3 {
		t.Fatalf("len = %d, want 3", f.Len())
	}
}

func TestFrontierMarkSeenBlocksDynamicAdmission(t *testing.T) {
	f := New(Config{})
	f.MarkSeen(map[string]bool{"seen": true})
	if f.Admit(Item{URL: "seen"}) {
		t.Fatal("admitted a MarkSeen URL")
	}
	// Seed admission is exact-set-only: a bloom entry must not block it.
	if n := f.AdmitSeed([]Item{{URL: "seen"}}); n != 1 {
		t.Fatalf("seed admission blocked by bloom: admitted %d, want 1", n)
	}
}

func TestFrontierPushSkipsDedup(t *testing.T) {
	f := New(Config{})
	f.AdmitSeed([]Item{{URL: "a"}})
	it, _ := f.Pop()
	it.Attempt++
	f.Push(it) // requeue after failure
	got, ok := f.Pop()
	if !ok || got.URL != "a" || got.Attempt != 1 {
		t.Fatalf("requeued item = %+v, %v", got, ok)
	}
}

func TestSchedulerDrainsEverything(t *testing.T) {
	const items, lines = 200, 4
	f := New(Config{})
	var seed []Item
	for i := 0; i < items; i++ {
		seed = append(seed, Item{URL: fmt.Sprintf("u%d", i), Seq: i, Priority: float64(i % 7)})
	}
	f.AdmitSeed(seed)
	s := NewScheduler(f, SchedConfig{Lines: lines, Batch: 4, Seed: 7})
	var mu sync.Mutex
	got := make(map[string]int)
	var wg sync.WaitGroup
	for l := 0; l < lines; l++ {
		wg.Add(1)
		go func(line int) {
			defer wg.Done()
			for {
				it, ok := s.Next(line)
				if !ok {
					return
				}
				mu.Lock()
				got[it.URL]++
				mu.Unlock()
				s.Done()
			}
		}(l)
	}
	wg.Wait()
	if len(got) != items {
		t.Fatalf("processed %d distinct items, want %d", len(got), items)
	}
	for u, n := range got {
		if n != 1 {
			t.Fatalf("item %s processed %d times", u, n)
		}
	}
}

func TestSchedulerRequeueRedelivers(t *testing.T) {
	f := New(Config{})
	f.AdmitSeed([]Item{{URL: "a"}, {URL: "b"}})
	s := NewScheduler(f, SchedConfig{Lines: 2})
	seen := make(map[string]int)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for l := 0; l < 2; l++ {
		wg.Add(1)
		go func(line int) {
			defer wg.Done()
			for {
				it, ok := s.Next(line)
				if !ok {
					return
				}
				mu.Lock()
				seen[it.URL]++
				first := seen[it.URL] == 1 && it.URL == "a"
				mu.Unlock()
				if first {
					it.Attempt++
					s.Requeue(it)
					continue
				}
				s.Done()
			}
		}(l)
	}
	wg.Wait()
	if seen["a"] != 2 || seen["b"] != 1 {
		t.Fatalf("deliveries = %v, want a:2 b:1", seen)
	}
}

func TestSchedulerCancelUnblocks(t *testing.T) {
	f := New(Config{})
	f.AdmitSeed([]Item{{URL: "a"}})
	s := NewScheduler(f, SchedConfig{Lines: 2})
	// Line 0 takes the only item and never retires it; line 1 blocks.
	if _, ok := s.Next(0); !ok {
		t.Fatal("no item for line 0")
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, ok := s.Next(1); ok {
			t.Error("Next returned an item after cancel")
		}
	}()
	s.Cancel()
	<-done
	if _, ok := s.Next(0); ok {
		t.Fatal("Next on canceled scheduler returned an item")
	}
}

func TestSchedulerStealsFromRichSibling(t *testing.T) {
	// One line refills a big batch; the other must steal rather than
	// block, even though the shared frontier is empty by then.
	f := New(Config{})
	var seed []Item
	for i := 0; i < 16; i++ {
		seed = append(seed, Item{URL: fmt.Sprintf("u%d", i), Seq: i})
	}
	f.AdmitSeed(seed)
	s := NewScheduler(f, SchedConfig{Lines: 2, Batch: 16, Seed: 3})
	if _, ok := s.Next(0); !ok { // line 0 drains the frontier into its deque
		t.Fatal("no item for line 0")
	}
	if f.Len() != 0 {
		t.Fatalf("frontier should be drained into line 0's deque, len=%d", f.Len())
	}
	it, ok := s.Next(1) // must come from stealing
	if !ok {
		t.Fatal("line 1 got no item")
	}
	if it.URL == "" {
		t.Fatal("stole empty item")
	}
	if got := s.deques[1].len(); got == 0 {
		t.Fatal("steal took only one item; want half the victim's deque")
	}
}

func TestYieldEstimatorBoostsByClass(t *testing.T) {
	e := NewYieldEstimator(0.5)
	if b := e.Boost("http://s/watch?v=9"); b != 0 {
		t.Fatalf("unseen class boost = %v, want 0", b)
	}
	e.Observe("http://s/watch?v=1", 4)
	e.Observe("http://s/watch?v=2", 4)
	if b := e.Boost("http://s/watch?v=9"); b <= 0.5 {
		t.Fatalf("high-yield class boost = %v, want > 0.5", b)
	}
	if b := e.Boost("http://s/about"); b != 0 {
		t.Fatalf("other class boost = %v, want 0", b)
	}
}

func TestURLClass(t *testing.T) {
	cases := []struct{ url, want string }{
		{"http://site/watch?v=123", "/watch?v"},
		{"http://site/watch?v=999", "/watch?v"},
		{"http://site/user/42/posts", "/user/#/posts"},
		{"http://site/about", "/about"},
		{"http://site", "/"},
		{"http://site/s?b=2&a=1", "/s?a&b"},
	}
	for _, c := range cases {
		if got := URLClass(c.url); got != c.want {
			t.Errorf("URLClass(%q) = %q, want %q", c.url, got, c.want)
		}
	}
}
