package browser

import (
	"strings"

	"ajaxcrawl/internal/js"
	"ajaxcrawl/internal/obs"
)

// boolAttr renders a bool as a span attribute value.
func boolAttr(b bool) string {
	if b {
		return "true"
	}
	return "false"
}

// xhrState is the mutable state behind one XMLHttpRequest instance.
type xhrState struct {
	page         *Page
	method       string
	url          string
	async        bool
	responseText string
	status       float64
	readyState   float64
	onChange     js.Value
}

// newXHR creates the host object for `new XMLHttpRequest()`.
func (p *Page) newXHR() *js.Object {
	st := &xhrState{page: p}
	o := js.NewObject()
	o.Class = "XMLHttpRequest"
	o.Host = &xhrHost{st: st}
	return o
}

type xhrHost struct{ st *xhrState }

func (h *xhrHost) HostGet(name string) (js.Value, bool) {
	st := h.st
	switch name {
	case "open":
		return js.ObjVal(js.NewNative("open", func(it *js.Interp, this js.Value, args []js.Value) (js.Value, error) {
			st.method = strings.ToUpper(argVal(args, 0).ToString())
			st.url = st.page.resolve(argVal(args, 1).ToString())
			st.async = argVal(args, 2).ToBool()
			st.readyState = 1
			return js.Undefined, nil
		})), true
	case "send":
		return js.ObjVal(js.NewNative("send", func(it *js.Interp, this js.Value, args []js.Value) (js.Value, error) {
			return js.Undefined, st.send(it)
		})), true
	case "responseText":
		return js.Str(st.responseText), true
	case "status":
		return js.Num(st.status), true
	case "readyState":
		return js.Num(st.readyState), true
	case "onreadystatechange":
		return st.onChange, true
	case "setRequestHeader", "abort":
		return js.ObjVal(js.NewNative(name, nativeNoop)), true
	}
	return js.Undefined, false
}

func (h *xhrHost) HostSet(name string, v js.Value) bool {
	if name == "onreadystatechange" {
		h.st.onChange = v
		return true
	}
	return false
}

// send performs the request. This is where the hot-node interception
// point sits: the crawler's XHRHook can answer from its cache (no
// network), or observe the fresh response to populate the cache.
//
// The crawl is synchronous: even async requests complete before send
// returns, then onreadystatechange fires once with readyState 4 — the
// behaviour AJAX pages observe under Rhino-driven crawling too.
func (st *xhrState) send(it *js.Interp) error {
	p := st.page
	p.XHRSends++
	req := &XHRRequest{Method: st.method, URL: st.url, Async: st.async}

	ctx := p.Context()
	tel := obs.From(ctx)
	tel.Counter("xhr.sends").Inc()
	ctx, sp := obs.StartSpan(ctx, obs.SpanXHRSend, obs.A("url", st.url), obs.A("method", st.method))

	served := false
	if p.XHR != nil {
		if body, ok := p.XHR.BeforeSend(p, req); ok {
			st.responseText = body
			st.status = 200
			served = true
		}
	}
	if !served {
		// Script-initiated network runs under the context of the
		// Load/Trigger call that dispatched this handler, so the
		// per-page budget covers XHR traffic too.
		resp, err := p.Fetcher.Fetch(ctx, st.url)
		p.NetworkCalls++
		tel.Counter("xhr.network_calls").Inc()
		if err != nil {
			st.status = 0
			st.readyState = 4
			sp.SetAttr("intercepted", "false")
			sp.End(err)
			return &js.Thrown{Value: js.Str("NetworkError: " + err.Error())}
		}
		st.responseText = string(resp.Body)
		st.status = float64(resp.Status)
		if p.XHR != nil {
			p.XHR.AfterSend(p, req, st.responseText)
		}
	}
	sp.SetAttr("intercepted", boolAttr(served))
	sp.End(nil)
	st.readyState = 4
	if st.onChange.Object().IsCallable() {
		if _, err := it.Call(st.onChange, js.Undefined, nil); err != nil {
			return err
		}
	}
	return nil
}
