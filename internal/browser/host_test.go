package browser

import (
	"context"
	"fmt"
	"net/http"
	"strings"
	"testing"

	"ajaxcrawl/internal/fetch"
)

// jsonSite serves a page whose AJAX flow ships JSON instead of HTML
// fragments — the other common era pattern.
func jsonSite() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/app", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `<html><head><script>
function load(p) {
	var req = new XMLHttpRequest();
	req.open("GET", "/api?p=" + p, true);
	req.onreadystatechange = function() {
		if (req.readyState == 4 && req.status == 200) {
			var data = JSON.parse(req.responseText);
			var out = "<ul>";
			for (var i = 0; i < data.items.length; i++) {
				out += "<li>" + data.items[i] + "</li>";
			}
			out += "</ul>";
			document.getElementById("list").innerHTML = out;
			document.title = data.title;
		}
	};
	req.send(null);
}
</script></head>
<body><div id="list" onclick="load(2)">initial</div></body></html>`)
	})
	mux.HandleFunc("/api", func(w http.ResponseWriter, r *http.Request) {
		p := r.URL.Query().Get("p")
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"title": "page %s", "items": ["alpha %s", "beta %s"]}`, p, p, p)
	})
	return mux
}

// TestJSONAJAXFlow exercises the async-style XHR with an
// onreadystatechange callback parsing JSON — end to end through the
// interpreter, host objects, and DOM mutation.
func TestJSONAJAXFlow(t *testing.T) {
	p := NewPage(&fetch.HandlerFetcher{Handler: jsonSite()})
	if err := p.Load(context.Background(), "/app"); err != nil {
		t.Fatal(err)
	}
	evs := p.Events(nil)
	if len(evs) != 1 {
		t.Fatalf("events = %v", evs)
	}
	changed, err := p.Trigger(context.Background(), evs[0])
	if err != nil {
		t.Fatal(err)
	}
	if !changed {
		t.Fatalf("JSON flow did not change DOM")
	}
	list := p.Doc.ElementByID("list")
	if got := list.TextContent(); !strings.Contains(got, "alpha 2") || !strings.Contains(got, "beta 2") {
		t.Fatalf("list content = %q", got)
	}
	if len(list.ElementsByTag("li")) != 2 {
		t.Fatalf("items not rendered as elements")
	}
	// document.title assignment routed to the DOM... the test page has
	// no <title>; add one and re-run to cover the mutable path.
	p2 := NewPage(&fetch.HandlerFetcher{Handler: jsonSite()})
	if err := p2.Load(context.Background(), "/app"); err != nil {
		t.Fatal(err)
	}
	if _, err := p2.Interp.Run(`document.title`); err != nil {
		t.Fatal(err)
	}
}

func TestDocumentTitleMutation(t *testing.T) {
	p := loadTestPage(t)
	if _, err := p.Interp.Run(`document.title = "renamed"`); err != nil {
		t.Fatal(err)
	}
	v, err := p.Interp.Run(`document.title`)
	if err != nil || v.StrVal() != "renamed" {
		t.Fatalf("title = %v %v", v, err)
	}
	titles := p.Doc.ElementsByTag("title")
	if len(titles) != 1 || titles[0].TextContent() != "renamed" {
		t.Fatalf("DOM title not updated")
	}
}

func TestElementHostSurface(t *testing.T) {
	p := loadTestPage(t)
	checks := []struct {
		src  string
		want string
	}{
		{`document.getElementById("content").tagName`, "DIV"},
		{`document.getElementById("content").id`, "content"},
		{`document.getElementById("next").parentNode.id`, "content"},
		{`document.body.tagName`, "BODY"},
		{`document.getElementById("content").getElementsByTagName("span").length + ""`, "1"},
	}
	for _, c := range checks {
		v, err := p.Interp.Run(c.src)
		if err != nil {
			t.Fatalf("%s: %v", c.src, err)
		}
		if v.ToString() != c.want {
			t.Fatalf("%s = %q, want %q", c.src, v.ToString(), c.want)
		}
	}
	// className get/set and attribute removal.
	if _, err := p.Interp.Run(`
		var el = document.getElementById("content");
		el.className = "highlight";
	`); err != nil {
		t.Fatal(err)
	}
	if got := p.Doc.ElementByID("content").AttrOr("class", ""); got != "highlight" {
		t.Fatalf("class = %q", got)
	}
	if _, err := p.Interp.Run(`document.getElementById("content").removeAttribute("class")`); err != nil {
		t.Fatal(err)
	}
	if _, ok := p.Doc.ElementByID("content").GetAttr("class"); ok {
		t.Fatalf("removeAttribute failed")
	}
}

func TestCreateAndRemoveNodes(t *testing.T) {
	p := loadTestPage(t)
	_, err := p.Interp.Run(`
		var d = document.createElement("div");
		d.id = "tmp";
		d.appendChild(document.createTextNode("made by js"));
		document.body.appendChild(d);
	`)
	if err != nil {
		t.Fatal(err)
	}
	tmp := p.Doc.ElementByID("tmp")
	if tmp == nil || tmp.TextContent() != "made by js" {
		t.Fatalf("createTextNode/appendChild failed: %v", tmp)
	}
	if _, err := p.Interp.Run(`
		document.body.removeChild(document.getElementById("tmp"));
	`); err != nil {
		t.Fatal(err)
	}
	if p.Doc.ElementByID("tmp") != nil {
		t.Fatalf("removeChild failed")
	}
	// removeChild of a non-child errors (catchable).
	v, err := p.Interp.Run(`
		var r = "no";
		try { document.body.removeChild(document.createElement("p")); } catch (e) { r = "caught"; }
		r
	`)
	if err != nil || v.StrVal() != "caught" {
		t.Fatalf("removeChild non-child: %v %v", v, err)
	}
}

func TestStyleObjectIsInert(t *testing.T) {
	p := loadTestPage(t)
	h0 := p.Hash()
	if _, err := p.Interp.Run(`
		var el = document.getElementById("content");
		el.style.display = "none";
		el.style.cursor = "wait";
	`); err != nil {
		t.Fatal(err)
	}
	if p.Hash() != h0 {
		t.Fatalf("style writes must not change the state hash")
	}
	v, err := p.Interp.Run(`document.getElementById("content").style.display`)
	if err != nil || v.StrVal() != "none" {
		t.Fatalf("style readback = %v %v", v, err)
	}
}

func TestXHRStatusOnMissingEndpoint(t *testing.T) {
	p := loadTestPage(t)
	v, err := p.Interp.Run(`
		var req = new XMLHttpRequest();
		req.open("GET", "/definitely-missing", false);
		req.send(null);
		req.status
	`)
	if err != nil {
		t.Fatal(err)
	}
	if v.NumVal() != 404 {
		t.Fatalf("status = %v, want 404", v)
	}
}

func TestWindowGlobalsAndThis(t *testing.T) {
	p := loadTestPage(t)
	v, err := p.Interp.Run(`window.document === document`)
	if err != nil || !v.BoolVal() {
		t.Fatalf("window.document mismatch: %v %v", v, err)
	}
	// Top-level this is the window.
	v, err = p.Interp.Run(`this === window`)
	if err != nil || !v.BoolVal() {
		t.Fatalf("this !== window: %v %v", v, err)
	}
	// alert/clearTimeout exist and are harmless.
	if _, err := p.Interp.Run(`alert("hi"); clearTimeout(0); setInterval(function(){}, 10); clearInterval(0);`); err != nil {
		t.Fatal(err)
	}
}

func TestConsoleLogCapture(t *testing.T) {
	p := loadTestPage(t)
	if _, err := p.Interp.Run(`console.log("a", 1, true)`); err != nil {
		t.Fatal(err)
	}
	if len(p.ConsoleLog) != 1 || p.ConsoleLog[0] != "a 1 true" {
		t.Fatalf("console log = %v", p.ConsoleLog)
	}
}
