// Package browser emulates the client side of an AJAX application: it
// loads a page through a fetch.Fetcher, parses it into a DOM, executes
// the page's JavaScript with document/window/XMLHttpRequest host objects
// bound, enumerates and dispatches user events, and supports the DOM
// snapshot/rollback the crawling algorithm needs (Alg. 3.1.1 line 17).
//
// The XMLHttpRequest binding exposes an interception point (XHRHook)
// right where the thesis's Observer on XMLHttpRequest.open() sits
// (§4.4.1): the hot-node machinery of the crawler plugs in there.
package browser

import (
	"context"
	"errors"
	"fmt"
	"net/url"
	"strings"
	"time"

	"ajaxcrawl/internal/dom"
	"ajaxcrawl/internal/fetch"
	"ajaxcrawl/internal/html"
	"ajaxcrawl/internal/js"
	"ajaxcrawl/internal/obs"
)

// EventTypes are the event-handler attributes the crawler invokes, in
// priority order (thesis §3.2 "we can focus just on the most important
// events").
var EventTypes = []string{"onclick", "ondblclick", "onmouseover", "onmousedown"}

// XHRRequest describes one XMLHttpRequest about to be sent.
type XHRRequest struct {
	Method string
	URL    string // resolved against the page URL
	Async  bool
}

// XHRHook intercepts XMLHttpRequest traffic. BeforeSend may serve the
// request from a cache (returning intercepted = true skips the network);
// AfterSend observes responses that did hit the network.
type XHRHook interface {
	BeforeSend(p *Page, req *XHRRequest) (body string, intercepted bool)
	AfterSend(p *Page, req *XHRRequest, body string)
}

// Event is one invocable user event found in the current DOM.
type Event struct {
	Type string // "onclick", ...
	Code string // handler source
	Path string // structural path of the source element
	ID   string // id attribute of the source element ("" when absent)
}

// String renders the event for transition annotations.
func (e Event) String() string {
	src := e.ID
	if src == "" {
		src = e.Path
	}
	return e.Type + "@" + src
}

// Page is one loaded AJAX page with its live DOM and script state.
type Page struct {
	URL     string
	Doc     *dom.Node
	Interp  *js.Interp
	Fetcher fetch.Fetcher
	XHR     XHRHook

	// MaxJSSteps bounds the interpreter steps per handler dispatch
	// (0 = the interpreter default). The crawler sets it from
	// Options.JSStepBudget so a hostile while(true) handler is
	// preempted instead of hanging the process line.
	MaxJSSteps int

	// NetworkCalls counts XHR sends that actually hit the Fetcher
	// (intercepted sends are not network calls).
	NetworkCalls int
	// XHRSends counts all XHR sends, intercepted or not.
	XHRSends int
	// ConsoleLog collects console.log output for debugging.
	ConsoleLog []string

	wrappers map[*dom.Node]*js.Object
	// ctx is the context of the Load/Trigger call currently executing;
	// host objects (XMLHttpRequest) fetch under it so script-initiated
	// network inherits the page budget.
	ctx context.Context
}

// Context returns the context of the in-flight Load/Trigger call (the
// one host objects should fetch under), or Background between calls.
func (p *Page) Context() context.Context {
	if p.ctx != nil {
		return p.ctx
	}
	return context.Background()
}

// bind installs ctx as the page's execution context and points the
// interpreter's interrupt hook at it. The returned func restores the
// previous context (for nested calls).
func (p *Page) bind(ctx context.Context) func() {
	prev := p.ctx
	p.ctx = ctx
	if p.Interp != nil {
		p.Interp.Interrupt = ctx.Err
	}
	return func() { p.ctx = prev }
}

// NewPage returns an unloaded page bound to a fetcher.
func NewPage(fetcher fetch.Fetcher) *Page {
	return &Page{Fetcher: fetcher}
}

// Load fetches and parses the document at rawurl, binds the host objects
// and runs all scripts in document order. It does not fire onload; call
// RunOnLoad after Load, as the crawling algorithm does (Alg. 3.1.1
// line 3).
func (p *Page) Load(ctx context.Context, rawurl string) error {
	resp, err := p.Fetcher.Fetch(ctx, rawurl)
	if err != nil {
		return fmt.Errorf("browser: load %s: %w", rawurl, err)
	}
	if resp.Status != 200 {
		return fmt.Errorf("browser: load %s: status %d", rawurl, resp.Status)
	}
	p.URL = rawurl
	p.Doc = html.Parse(string(resp.Body))
	p.Interp = js.New()
	p.Interp.MaxSteps = p.MaxJSSteps
	p.wrappers = make(map[*dom.Node]*js.Object)
	p.installHostObjects()
	defer p.bind(ctx)()
	return p.runScripts(ctx)
}

// LoadStatic fetches and parses the document without creating a script
// environment — the "traditional crawling" mode where JavaScript is
// disabled (thesis §7.1.2).
func (p *Page) LoadStatic(ctx context.Context, rawurl string) error {
	resp, err := p.Fetcher.Fetch(ctx, rawurl)
	if err != nil {
		return fmt.Errorf("browser: load %s: %w", rawurl, err)
	}
	if resp.Status != 200 {
		return fmt.Errorf("browser: load %s: status %d", rawurl, resp.Status)
	}
	p.URL = rawurl
	p.Doc = html.Parse(string(resp.Body))
	return nil
}

// runScripts executes every <script> element in document order.
func (p *Page) runScripts(ctx context.Context) error {
	for _, s := range p.Doc.ElementsByTag("script") {
		var code string
		if src, ok := s.GetAttr("src"); ok && src != "" {
			resp, err := p.Fetcher.Fetch(ctx, p.resolve(src))
			if err != nil {
				return fmt.Errorf("browser: external script %s: %w", src, err)
			}
			code = string(resp.Body)
		} else if s.FirstChild != nil {
			code = s.FirstChild.Data
		}
		if strings.TrimSpace(code) == "" {
			continue
		}
		if _, err := p.Interp.Run(code); err != nil {
			return fmt.Errorf("browser: script error on %s: %w", p.URL, err)
		}
	}
	return nil
}

// RunOnLoad fires the body element's onload handler, if any.
func (p *Page) RunOnLoad(ctx context.Context) error {
	body := p.Doc.Body()
	if body == nil {
		return nil
	}
	code, ok := body.GetAttr("onload")
	if !ok || strings.TrimSpace(code) == "" {
		return nil
	}
	return p.runHandler(ctx, "onload", code, body)
}

// Events returns the invocable events in the current DOM, in document
// order, filtered to the given types (nil means EventTypes).
func (p *Page) Events(types []string) []Event {
	if types == nil {
		types = EventTypes
	}
	want := make(map[string]bool, len(types))
	for _, t := range types {
		want[t] = true
	}
	var out []Event
	p.Doc.Walk(func(n *dom.Node) bool {
		if n.Type != dom.ElementNode {
			return true
		}
		for _, a := range n.Attr {
			if want[a.Key] && strings.TrimSpace(a.Val) != "" {
				out = append(out, Event{
					Type: a.Key,
					Code: a.Val,
					Path: n.Path(),
					ID:   n.ID(),
				})
			}
		}
		return true
	})
	return out
}

// Trigger dispatches an event: it executes the handler code with `this`
// bound to the source element. It reports whether the DOM changed.
func (p *Page) Trigger(ctx context.Context, ev Event) (changed bool, err error) {
	node := p.Doc.ByPath(ev.Path)
	if node == nil {
		// The element vanished (the state changed under us); by-id
		// fallback keeps replay robust.
		if ev.ID != "" {
			node = p.Doc.ElementByID(ev.ID)
		}
		if node == nil {
			return false, fmt.Errorf("browser: event source %s not found", ev.Path)
		}
	}
	before := dom.QuickHash(p.Doc)
	if err := p.runHandler(ctx, ev.Type, ev.Code, node); err != nil {
		return false, err
	}
	return dom.QuickHash(p.Doc) != before, nil
}

// runHandler compiles and invokes handler code with this = element. Each
// dispatch is one event.dispatch span; its latency, interpreter steps
// and step-budget preemptions feed the live registry.
func (p *Page) runHandler(ctx context.Context, name, code string, node *dom.Node) (err error) {
	tel := obs.From(ctx)
	if tel != nil {
		start := time.Now()
		var sp *obs.Span
		ctx, sp = obs.StartSpan(ctx, obs.SpanEventDispatch, obs.A("handler", name), obs.A("source", node.Path()))
		defer func() {
			sp.End(err)
			tel.Counter("browser.dispatches").Inc()
			tel.Counter("js.steps").Add(int64(p.Interp.Steps()))
			tel.Histogram("browser.dispatch.latency").ObserveDuration(time.Since(start))
			if errors.Is(err, js.ErrBudget) {
				tel.Counter("js.preemptions").Inc()
			}
		}()
	}
	defer p.bind(ctx)()
	p.Interp.ResetBudget()
	fn, err := p.Interp.CompileFunction(name, code)
	if err != nil {
		return fmt.Errorf("browser: handler %s: %w", name, err)
	}
	_, err = p.Interp.Call(fn, js.ObjVal(p.wrapElement(node)), nil)
	if err != nil {
		return fmt.Errorf("browser: handler %s: %w", name, err)
	}
	return nil
}

// Snapshot captures the current DOM for later rollback.
type Snapshot struct {
	doc *dom.Node
}

// Snapshot returns a deep copy of the current DOM.
func (p *Page) Snapshot() *Snapshot {
	return &Snapshot{doc: p.Doc.Clone()}
}

// Restore rolls the DOM back to a snapshot. JavaScript global state is
// intentionally kept (snapshot-isolation assumption, thesis §4.3): only
// the document is rolled back, exactly like appModel.rollback(t).
func (p *Page) Restore(s *Snapshot) {
	p.Doc = s.doc.Clone()
	p.wrappers = make(map[*dom.Node]*js.Object)
}

// Hash returns the canonical state hash of the current DOM.
func (p *Page) Hash() dom.Hash { return dom.CanonicalHash(p.Doc) }

// resolve resolves a possibly-relative URL against the page URL.
func (p *Page) resolve(ref string) string {
	base, err := url.Parse(p.URL)
	if err != nil {
		return ref
	}
	r, err := url.Parse(ref)
	if err != nil {
		return ref
	}
	return base.ResolveReference(r).String()
}

// Links returns the absolute URLs of all <a href> hyperlinks in the
// current DOM (the traditional link structure used by the precrawler).
func (p *Page) Links() []string {
	var out []string
	for _, a := range p.Doc.ElementsByTag("a") {
		href, ok := a.GetAttr("href")
		if !ok || href == "" || strings.HasPrefix(href, "#") || strings.HasPrefix(href, "javascript:") {
			continue
		}
		out = append(out, p.resolve(href))
	}
	return out
}

// Doc exposes the snapshotted DOM (read-only by convention); the crawler
// diffs it against the live DOM to annotate transition targets.
func (s *Snapshot) Doc() *dom.Node { return s.doc }

// FormEventTypes are the handler attributes fired by user text input.
var FormEventTypes = []string{"onkeyup", "onchange", "oninput"}

// FormEvent is an input-driven event: a text field whose handler reacts
// to typed values (Google-Suggest-style AJAX, thesis ch. 10 future work).
type FormEvent struct {
	Event
}

// FormEvents returns the input-driven events of the current DOM: input
// and textarea elements carrying one of the FormEventTypes handlers.
func (p *Page) FormEvents() []FormEvent {
	want := make(map[string]bool, len(FormEventTypes))
	for _, t := range FormEventTypes {
		want[t] = true
	}
	var out []FormEvent
	p.Doc.Walk(func(n *dom.Node) bool {
		if n.Type != dom.ElementNode || (n.Data != "input" && n.Data != "textarea") {
			return true
		}
		for _, a := range n.Attr {
			if want[a.Key] && strings.TrimSpace(a.Val) != "" {
				out = append(out, FormEvent{Event{
					Type: a.Key,
					Code: a.Val,
					Path: n.Path(),
					ID:   n.ID(),
				}})
			}
		}
		return true
	})
	return out
}

// TriggerWithValue fills the event's source input with value and then
// dispatches the handler — one probe of the form-crawling extension.
func (p *Page) TriggerWithValue(ctx context.Context, ev FormEvent, value string) (changed bool, err error) {
	node := p.Doc.ByPath(ev.Path)
	if node == nil && ev.ID != "" {
		node = p.Doc.ElementByID(ev.ID)
	}
	if node == nil {
		return false, fmt.Errorf("browser: form event source %s not found", ev.Path)
	}
	node.SetAttr("value", value)
	return p.Trigger(ctx, ev.Event)
}
