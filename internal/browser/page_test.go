package browser

import (
	"context"
	"fmt"
	"net/http"
	"strings"
	"testing"

	"ajaxcrawl/internal/dom"
	"ajaxcrawl/internal/fetch"
)

// testSite is a miniature AJAX application shaped like the thesis's
// YouTube example: a content div whose pages are loaded via XHR.
func testSite() http.Handler {
	mux := http.NewServeMux()
	page := `<html><head><title>Test Video</title>
<script>
function showLoading(id) { document.getElementById(id).className = "loading"; }
function getUrl(url, async) {
	var req = new XMLHttpRequest();
	req.open("GET", url, async);
	req.send(null);
	return req.responseText;
}
function getUrlXMLResponseAndFillDiv(url, div_id) {
	var resp = getUrl(url, false);
	document.getElementById(div_id).innerHTML = resp;
}
function urchinTracker(a) { }
function loadPage(p) {
	showLoading('content');
	getUrlXMLResponseAndFillDiv('/data?p=' + p, 'content');
	urchinTracker('/watch');
}
var initialized = false;
function init() { initialized = true; }
</script>
</head>
<body onload="init()">
<h1>Test Video</h1>
<div id="content">page 1 content <span onclick="loadPage(2)" id="next">next</span></div>
<a href="/watch?v=other">related</a>
<a href="#top">anchor</a>
<a href="javascript:void(0)">js link</a>
</body></html>`
	mux.HandleFunc("/watch", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, page)
	})
	mux.HandleFunc("/data", func(w http.ResponseWriter, r *http.Request) {
		p := r.URL.Query().Get("p")
		fmt.Fprintf(w, `page %s content <span onclick="loadPage(%s1)" id="next">next</span>`, p, p)
	})
	mux.HandleFunc("/ext.js", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "var fromExternal = 42;")
	})
	mux.HandleFunc("/extpage", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `<html><head><script src="/ext.js"></script></head><body></body></html>`)
	})
	return mux
}

func loadTestPage(t *testing.T) *Page {
	t.Helper()
	p := NewPage(&fetch.HandlerFetcher{Handler: testSite()})
	if err := p.Load(context.Background(), "/watch?v=x"); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestLoadParsesAndRunsScripts(t *testing.T) {
	p := loadTestPage(t)
	if p.Doc.ElementByID("content") == nil {
		t.Fatalf("content div missing")
	}
	// Scripts ran: the functions exist as globals.
	if v, ok := p.Interp.LookupGlobal("loadPage"); !ok || !v.Object().IsCallable() {
		t.Fatalf("script functions not defined")
	}
	// But onload has not fired yet.
	if v, _ := p.Interp.LookupGlobal("initialized"); v.ToBool() {
		t.Fatalf("onload fired during Load")
	}
}

func TestRunOnLoad(t *testing.T) {
	p := loadTestPage(t)
	if err := p.RunOnLoad(context.Background()); err != nil {
		t.Fatal(err)
	}
	if v, _ := p.Interp.LookupGlobal("initialized"); !v.ToBool() {
		t.Fatalf("onload did not run")
	}
}

func TestEventsEnumeration(t *testing.T) {
	p := loadTestPage(t)
	evs := p.Events(nil)
	if len(evs) != 1 {
		t.Fatalf("want 1 event, got %d: %v", len(evs), evs)
	}
	if evs[0].Type != "onclick" || evs[0].ID != "next" || !strings.Contains(evs[0].Code, "loadPage(2)") {
		t.Fatalf("event = %+v", evs[0])
	}
	// Type filtering.
	if got := p.Events([]string{"onmouseover"}); len(got) != 0 {
		t.Fatalf("filter failed: %v", got)
	}
}

func TestTriggerChangesDOMViaXHR(t *testing.T) {
	p := loadTestPage(t)
	evs := p.Events(nil)
	changed, err := p.Trigger(context.Background(), evs[0])
	if err != nil {
		t.Fatal(err)
	}
	if !changed {
		t.Fatalf("trigger should change the DOM")
	}
	content := p.Doc.ElementByID("content")
	if !strings.Contains(content.TextContent(), "page 2 content") {
		t.Fatalf("content = %q", content.TextContent())
	}
	if p.NetworkCalls != 1 || p.XHRSends != 1 {
		t.Fatalf("network calls = %d, sends = %d", p.NetworkCalls, p.XHRSends)
	}
	// The new state carries its own next event (loadPage(21)).
	evs2 := p.Events(nil)
	if len(evs2) != 1 || !strings.Contains(evs2[0].Code, "loadPage(21)") {
		t.Fatalf("new state events = %v", evs2)
	}
}

func TestTriggerNoChange(t *testing.T) {
	p := loadTestPage(t)
	// An event whose handler only touches JS state must report no change.
	changed, err := p.Trigger(context.Background(), Event{Type: "onclick", Code: "var tmp = 1;", Path: p.Doc.Body().Path()})
	if err != nil {
		t.Fatal(err)
	}
	if changed {
		t.Fatalf("pure-JS handler must not change DOM")
	}
}

func TestSnapshotRestore(t *testing.T) {
	p := loadTestPage(t)
	snap := p.Snapshot()
	h0 := p.Hash()
	if _, err := p.Trigger(context.Background(), p.Events(nil)[0]); err != nil {
		t.Fatal(err)
	}
	if p.Hash() == h0 {
		t.Fatalf("hash should differ after event")
	}
	p.Restore(snap)
	if p.Hash() != h0 {
		t.Fatalf("restore did not roll back the DOM")
	}
	// The snapshot stays usable for repeated restores.
	if _, err := p.Trigger(context.Background(), p.Events(nil)[0]); err != nil {
		t.Fatal(err)
	}
	p.Restore(snap)
	if p.Hash() != h0 {
		t.Fatalf("second restore failed")
	}
}

func TestXHRInterception(t *testing.T) {
	p := loadTestPage(t)
	hook := &recordingHook{cache: map[string]string{}}
	p.XHR = hook

	// First trigger: miss -> network -> AfterSend caches.
	if _, err := p.Trigger(context.Background(), p.Events(nil)[0]); err != nil {
		t.Fatal(err)
	}
	if p.NetworkCalls != 1 || len(hook.after) != 1 {
		t.Fatalf("first send: calls=%d after=%d", p.NetworkCalls, len(hook.after))
	}
	// Re-trigger the same underlying request from a fresh state: the
	// hook serves it, no network.
	snapBefore := p.Snapshot()
	_ = snapBefore
	p.Restore(&Snapshot{doc: p.Doc.Clone()})
	if _, err := p.Trigger(context.Background(), Event{Type: "onclick", Code: "loadPage(2)", Path: p.Doc.Body().Path()}); err != nil {
		t.Fatal(err)
	}
	if p.NetworkCalls != 1 {
		t.Fatalf("intercepted send still hit network: calls=%d", p.NetworkCalls)
	}
	if p.XHRSends != 2 {
		t.Fatalf("sends = %d", p.XHRSends)
	}
}

type recordingHook struct {
	cache map[string]string
	after []string
}

func (h *recordingHook) BeforeSend(p *Page, req *XHRRequest) (string, bool) {
	body, ok := h.cache[req.URL]
	return body, ok
}

func (h *recordingHook) AfterSend(p *Page, req *XHRRequest, body string) {
	h.cache[req.URL] = body
	h.after = append(h.after, req.URL)
}

func TestLinks(t *testing.T) {
	p := loadTestPage(t)
	links := p.Links()
	if len(links) != 1 || !strings.HasSuffix(links[0], "/watch?v=other") {
		t.Fatalf("links = %v (anchors and javascript: must be skipped)", links)
	}
}

func TestLoadStatic(t *testing.T) {
	p := NewPage(&fetch.HandlerFetcher{Handler: testSite()})
	if err := p.LoadStatic(context.Background(), "/watch?v=x"); err != nil {
		t.Fatal(err)
	}
	if p.Interp != nil {
		t.Fatalf("static load must not create a JS environment")
	}
	if p.Doc.ElementByID("content") == nil {
		t.Fatalf("static DOM missing content")
	}
}

func TestExternalScript(t *testing.T) {
	p := NewPage(&fetch.HandlerFetcher{Handler: testSite()})
	if err := p.Load(context.Background(), "/extpage"); err != nil {
		t.Fatal(err)
	}
	v, ok := p.Interp.LookupGlobal("fromExternal")
	if !ok || v.NumVal() != 42 {
		t.Fatalf("external script not executed: %v %v", v, ok)
	}
}

func TestLoadErrors(t *testing.T) {
	p := NewPage(&fetch.HandlerFetcher{Handler: testSite()})
	if err := p.Load(context.Background(), "/missing-page"); err == nil {
		t.Fatalf("404 load should fail")
	}
	bad := NewPage(fetch.Func(func(context.Context, string) (*fetch.Response, error) {
		return nil, fmt.Errorf("down")
	}))
	if err := bad.Load(context.Background(), "/x"); err == nil {
		t.Fatalf("fetch error should fail")
	}
}

func TestDOMManipulationFromJS(t *testing.T) {
	p := loadTestPage(t)
	_, err := p.Interp.Run(`
		var d = document.createElement("div");
		d.id = "made";
		d.innerHTML = "<b>bold</b>";
		document.body.appendChild(d);
	`)
	if err != nil {
		t.Fatal(err)
	}
	made := p.Doc.ElementByID("made")
	if made == nil || len(made.ElementsByTag("b")) != 1 {
		t.Fatalf("JS-created element not attached: %v", dom.OuterHTML(p.Doc.Body()))
	}
	// getAttribute / setAttribute round trip.
	_, err = p.Interp.Run(`
		var el = document.getElementById("made");
		el.setAttribute("data-k", "v");
	`)
	if err != nil {
		t.Fatal(err)
	}
	if got := made.AttrOr("data-k", ""); got != "v" {
		t.Fatalf("setAttribute failed: %q", got)
	}
}

func TestDocumentQueries(t *testing.T) {
	p := loadTestPage(t)
	v, err := p.Interp.Run(`document.title`)
	if err != nil || v.StrVal() != "Test Video" {
		t.Fatalf("document.title = %v %v", v, err)
	}
	v, err = p.Interp.Run(`document.getElementsByTagName("a").length`)
	if err != nil || v.NumVal() != 3 {
		t.Fatalf("getElementsByTagName = %v %v", v, err)
	}
	v, err = p.Interp.Run(`document.getElementById("nope") === null`)
	if err != nil || !v.BoolVal() {
		t.Fatalf("missing id should be null: %v %v", v, err)
	}
	v, err = p.Interp.Run(`location.href`)
	if err != nil || v.StrVal() != "/watch?v=x" {
		t.Fatalf("location.href = %v %v", v, err)
	}
}

func TestSetTimeoutRunsSynchronously(t *testing.T) {
	p := loadTestPage(t)
	v, err := p.Interp.Run(`var ran = false; setTimeout(function() { ran = true; }, 50); ran`)
	if err != nil || !v.BoolVal() {
		t.Fatalf("setTimeout callback did not run synchronously: %v %v", v, err)
	}
}

func TestEventStringAndWrapperCache(t *testing.T) {
	ev := Event{Type: "onclick", ID: "next", Path: "html[0]/body[0]/span[0]"}
	if ev.String() != "onclick@next" {
		t.Fatalf("Event.String = %q", ev.String())
	}
	ev.ID = ""
	if ev.String() != "onclick@html[0]/body[0]/span[0]" {
		t.Fatalf("Event.String fallback = %q", ev.String())
	}
	p := loadTestPage(t)
	n := p.Doc.ElementByID("content")
	if p.wrapElement(n) != p.wrapElement(n) {
		t.Fatalf("wrapper must be cached per node")
	}
}

func TestHandlerErrorsSurface(t *testing.T) {
	p := loadTestPage(t)
	// Syntax error in the handler code.
	if _, err := p.Trigger(context.Background(), Event{Type: "onclick", Code: "if (", Path: p.Doc.Body().Path()}); err == nil {
		t.Fatalf("syntax error should surface")
	}
	// Runtime error in the handler code.
	if _, err := p.Trigger(context.Background(), Event{Type: "onclick", Code: "missingFn()", Path: p.Doc.Body().Path()}); err == nil {
		t.Fatalf("runtime error should surface")
	}
	// Event source not resolvable at all.
	if _, err := p.Trigger(context.Background(), Event{Type: "onclick", Code: "1", Path: "html[0]/body[0]/div[99]"}); err == nil {
		t.Fatalf("missing source should surface")
	}
}

func TestBrokenInlineScriptFailsLoad(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/bad", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `<html><head><script>function broken( {</script></head><body></body></html>`)
	})
	p := NewPage(&fetch.HandlerFetcher{Handler: mux})
	if err := p.Load(context.Background(), "/bad"); err == nil {
		t.Fatalf("broken script should fail the load")
	}
}

func TestMissingExternalScriptFailsLoad(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/page", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `<html><head><script src="/gone.js"></script></head><body></body></html>`)
	})
	p := NewPage(fetch.Func(func(ctx context.Context, url string) (*fetch.Response, error) {
		if url == "/page" {
			rec := &fetch.HandlerFetcher{Handler: mux}
			return rec.Fetch(context.Background(), url)
		}
		return nil, fmt.Errorf("no such script")
	}))
	if err := p.Load(context.Background(), "/page"); err == nil {
		t.Fatalf("missing external script should fail the load")
	}
}

func TestOnLoadAbsentAndEmpty(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/noload", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `<html><body onload="   "><p>x</p></body></html>`)
	})
	p := NewPage(&fetch.HandlerFetcher{Handler: mux})
	if err := p.Load(context.Background(), "/noload"); err != nil {
		t.Fatal(err)
	}
	if err := p.RunOnLoad(context.Background()); err != nil {
		t.Fatalf("blank onload should be a no-op: %v", err)
	}
}

func TestEventStringFallsBackById(t *testing.T) {
	p := loadTestPage(t)
	// Trigger by ID fallback: give a stale path but valid id.
	changed, err := p.Trigger(context.Background(), Event{Type: "onclick", Code: "loadPage(2)", Path: "html[0]/body[0]/p[42]", ID: "next"})
	if err != nil {
		t.Fatal(err)
	}
	if !changed {
		t.Fatalf("id fallback should have fired the handler")
	}
}
