package browser

import (
	"strings"

	"ajaxcrawl/internal/dom"
	"ajaxcrawl/internal/html"
	"ajaxcrawl/internal/js"
)

// installHostObjects binds document, window, location, console and the
// XMLHttpRequest constructor into the page's interpreter.
func (p *Page) installHostObjects() {
	it := p.Interp

	docObj := js.NewObject()
	docObj.Class = "HTMLDocument"
	docObj.Host = &documentHost{page: p}
	docVal := js.ObjVal(docObj)
	it.DefineGlobal("document", docVal)

	locObj := js.NewObject()
	locObj.Class = "Location"
	locObj.Host = &locationHost{page: p}
	locVal := js.ObjVal(locObj)
	docObj.SetProp("location", locVal)

	winObj := js.NewObject()
	winObj.Class = "Window"
	winObj.SetProp("document", docVal)
	winObj.SetProp("location", locVal)
	winObj.SetProp("setTimeout", js.ObjVal(js.NewNative("setTimeout", func(it *js.Interp, this js.Value, args []js.Value) (js.Value, error) {
		// The crawler runs synchronously; a timer would never fire, so
		// the callback is invoked immediately (delay collapsed to 0).
		if fn := argVal(args, 0); fn.Object().IsCallable() {
			if _, err := it.Call(fn, js.Undefined, nil); err != nil {
				return js.Undefined, err
			}
		}
		return js.Num(0), nil
	})))
	winObj.SetProp("clearTimeout", js.ObjVal(js.NewNative("clearTimeout", nativeNoop)))
	winObj.SetProp("setInterval", js.ObjVal(js.NewNative("setInterval", func(it *js.Interp, this js.Value, args []js.Value) (js.Value, error) {
		// Intervals never fire during a synchronous crawl.
		return js.Num(0), nil
	})))
	winObj.SetProp("clearInterval", js.ObjVal(js.NewNative("clearInterval", nativeNoop)))
	winObj.SetProp("alert", js.ObjVal(js.NewNative("alert", nativeNoop)))
	it.DefineGlobal("window", js.ObjVal(winObj))
	it.GlobalThis = js.ObjVal(winObj)
	it.DefineGlobal("setTimeout", mustGet(winObj, "setTimeout"))
	it.DefineGlobal("clearTimeout", mustGet(winObj, "clearTimeout"))
	it.DefineGlobal("setInterval", mustGet(winObj, "setInterval"))
	it.DefineGlobal("clearInterval", mustGet(winObj, "clearInterval"))
	it.DefineGlobal("alert", mustGet(winObj, "alert"))
	it.DefineGlobal("location", locVal)

	consoleObj := js.NewObject()
	consoleObj.SetProp("log", js.ObjVal(js.NewNative("log", func(it *js.Interp, this js.Value, args []js.Value) (js.Value, error) {
		parts := make([]string, len(args))
		for i, a := range args {
			parts[i] = a.ToString()
		}
		p.ConsoleLog = append(p.ConsoleLog, strings.Join(parts, " "))
		return js.Undefined, nil
	})))
	it.DefineGlobal("console", js.ObjVal(consoleObj))

	it.DefineGlobal("XMLHttpRequest", js.ObjVal(js.NewNative("XMLHttpRequest", func(it *js.Interp, this js.Value, args []js.Value) (js.Value, error) {
		return js.ObjVal(p.newXHR()), nil
	})))
}

func nativeNoop(it *js.Interp, this js.Value, args []js.Value) (js.Value, error) {
	return js.Undefined, nil
}

func argVal(args []js.Value, i int) js.Value {
	if i < len(args) {
		return args[i]
	}
	return js.Undefined
}

func mustGet(o *js.Object, name string) js.Value {
	v, _ := o.Get(name)
	return v
}

// ---- document ----

type documentHost struct{ page *Page }

func (d *documentHost) HostGet(name string) (js.Value, bool) {
	p := d.page
	switch name {
	case "getElementById":
		return js.ObjVal(js.NewNative("getElementById", func(it *js.Interp, this js.Value, args []js.Value) (js.Value, error) {
			id := argVal(args, 0).ToString()
			n := p.Doc.ElementByID(id)
			if n == nil {
				return js.Null(), nil
			}
			return js.ObjVal(p.wrapElement(n)), nil
		})), true
	case "getElementsByTagName":
		return js.ObjVal(js.NewNative("getElementsByTagName", func(it *js.Interp, this js.Value, args []js.Value) (js.Value, error) {
			tag := argVal(args, 0).ToString()
			if tag == "*" {
				tag = ""
			}
			nodes := p.Doc.ElementsByTag(tag)
			vals := make([]js.Value, len(nodes))
			for i, n := range nodes {
				vals[i] = js.ObjVal(p.wrapElement(n))
			}
			return js.ObjVal(js.NewArray(vals...)), nil
		})), true
	case "createElement":
		return js.ObjVal(js.NewNative("createElement", func(it *js.Interp, this js.Value, args []js.Value) (js.Value, error) {
			n := dom.NewElement(argVal(args, 0).ToString())
			return js.ObjVal(p.wrapElement(n)), nil
		})), true
	case "createTextNode":
		return js.ObjVal(js.NewNative("createTextNode", func(it *js.Interp, this js.Value, args []js.Value) (js.Value, error) {
			n := dom.NewText(argVal(args, 0).ToString())
			return js.ObjVal(p.wrapElement(n)), nil
		})), true
	case "body":
		if b := p.Doc.Body(); b != nil {
			return js.ObjVal(p.wrapElement(b)), true
		}
		return js.Null(), true
	case "title":
		for _, t := range p.Doc.ElementsByTag("title") {
			return js.Str(t.TextContent()), true
		}
		return js.Str(""), true
	case "URL":
		return js.Str(p.URL), true
	}
	return js.Undefined, false
}

func (d *documentHost) HostSet(name string, v js.Value) bool {
	// title assignment is the only mutable document property we honor.
	if name == "title" {
		for _, t := range d.page.Doc.ElementsByTag("title") {
			t.RemoveChildren()
			t.AppendChild(dom.NewText(v.ToString()))
			return true
		}
	}
	return false
}

// ---- location ----

type locationHost struct{ page *Page }

func (l *locationHost) HostGet(name string) (js.Value, bool) {
	switch name {
	case "href", "toString":
		return js.Str(l.page.URL), true
	}
	return js.Undefined, false
}

func (l *locationHost) HostSet(name string, v js.Value) bool {
	// Navigation during crawling is not followed (it would change the
	// URL, i.e. leave the AJAX page); the write is absorbed.
	return name == "href"
}

// ---- element wrappers ----

// wrapElement returns the (cached) JS host object for a DOM node.
func (p *Page) wrapElement(n *dom.Node) *js.Object {
	if w, ok := p.wrappers[n]; ok {
		return w
	}
	o := js.NewObject()
	o.Class = "HTMLElement"
	o.Host = &elementHost{page: p, node: n}
	// style is a plain mutable object: assignments like
	// el.style.display = "none" succeed without affecting state hashes.
	style := js.NewObject()
	o.SetProp("style", js.ObjVal(style))
	p.wrappers[n] = o
	return o
}

type elementHost struct {
	page *Page
	node *dom.Node
}

func (e *elementHost) HostGet(name string) (js.Value, bool) {
	n := e.node
	p := e.page
	switch name {
	case "innerHTML":
		return js.Str(dom.InnerHTML(n)), true
	case "outerHTML":
		return js.Str(dom.OuterHTML(n)), true
	case "id":
		return js.Str(n.ID()), true
	case "tagName", "nodeName":
		return js.Str(strings.ToUpper(n.Data)), true
	case "className":
		return js.Str(n.AttrOr("class", "")), true
	case "innerText", "textContent":
		return js.Str(n.TextContent()), true
	case "value":
		return js.Str(n.AttrOr("value", "")), true
	case "parentNode":
		if n.Parent == nil || n.Parent.Type != dom.ElementNode {
			return js.Null(), true
		}
		return js.ObjVal(p.wrapElement(n.Parent)), true
	case "getAttribute":
		return js.ObjVal(js.NewNative("getAttribute", func(it *js.Interp, this js.Value, args []js.Value) (js.Value, error) {
			if v, ok := n.GetAttr(argVal(args, 0).ToString()); ok {
				return js.Str(v), nil
			}
			return js.Null(), nil
		})), true
	case "setAttribute":
		return js.ObjVal(js.NewNative("setAttribute", func(it *js.Interp, this js.Value, args []js.Value) (js.Value, error) {
			n.SetAttr(argVal(args, 0).ToString(), argVal(args, 1).ToString())
			return js.Undefined, nil
		})), true
	case "removeAttribute":
		return js.ObjVal(js.NewNative("removeAttribute", func(it *js.Interp, this js.Value, args []js.Value) (js.Value, error) {
			n.RemoveAttr(argVal(args, 0).ToString())
			return js.Undefined, nil
		})), true
	case "appendChild":
		return js.ObjVal(js.NewNative("appendChild", func(it *js.Interp, this js.Value, args []js.Value) (js.Value, error) {
			child := p.unwrapElement(argVal(args, 0))
			if child == nil {
				return js.Undefined, &js.RuntimeError{Msg: "appendChild: not a node"}
			}
			if child.Parent != nil {
				child.Parent.RemoveChild(child)
			}
			n.AppendChild(child)
			return argVal(args, 0), nil
		})), true
	case "removeChild":
		return js.ObjVal(js.NewNative("removeChild", func(it *js.Interp, this js.Value, args []js.Value) (js.Value, error) {
			child := p.unwrapElement(argVal(args, 0))
			if child == nil || child.Parent != n {
				return js.Undefined, &js.RuntimeError{Msg: "removeChild: not a child"}
			}
			n.RemoveChild(child)
			return argVal(args, 0), nil
		})), true
	case "getElementsByTagName":
		return js.ObjVal(js.NewNative("getElementsByTagName", func(it *js.Interp, this js.Value, args []js.Value) (js.Value, error) {
			tag := argVal(args, 0).ToString()
			if tag == "*" {
				tag = ""
			}
			nodes := n.ElementsByTag(tag)
			vals := make([]js.Value, len(nodes))
			for i, nd := range nodes {
				vals[i] = js.ObjVal(p.wrapElement(nd))
			}
			return js.ObjVal(js.NewArray(vals...)), nil
		})), true
	}
	return js.Undefined, false
}

func (e *elementHost) HostSet(name string, v js.Value) bool {
	n := e.node
	switch name {
	case "innerHTML":
		html.SetInnerHTML(n, v.ToString())
		return true
	case "innerText", "textContent":
		n.RemoveChildren()
		n.AppendChild(dom.NewText(v.ToString()))
		return true
	case "id":
		n.SetAttr("id", v.ToString())
		return true
	case "className":
		n.SetAttr("class", v.ToString())
		return true
	case "value":
		n.SetAttr("value", v.ToString())
		return true
	}
	return false
}

// unwrapElement recovers the DOM node behind an element wrapper value.
func (p *Page) unwrapElement(v js.Value) *dom.Node {
	o := v.Object()
	if o == nil {
		return nil
	}
	if eh, ok := o.Host.(*elementHost); ok {
		return eh.node
	}
	return nil
}
