package admission

import (
	"context"
	"testing"
	"time"

	"ajaxcrawl/internal/obs"
)

// manualClock is a settable clock: the limiter only reads Now, so tests
// advance time explicitly between acquire and release to script exact
// latencies.
type manualClock struct {
	mu  chan struct{}
	now time.Time
}

func newManualClock() *manualClock {
	c := &manualClock{mu: make(chan struct{}, 1), now: time.Unix(0, 0)}
	c.mu <- struct{}{}
	return c
}

func (c *manualClock) Now() time.Time {
	<-c.mu
	t := c.now
	c.mu <- struct{}{}
	return t
}

func (c *manualClock) Advance(d time.Duration) {
	<-c.mu
	c.now = c.now.Add(d)
	c.mu <- struct{}{}
}

func (c *manualClock) Sleep(ctx context.Context, d time.Duration) error {
	c.Advance(d)
	return ctx.Err()
}

func TestDefaults(t *testing.T) {
	l := New(Config{})
	if got := l.Limit(); got != 64 {
		t.Fatalf("default limit = %d, want 64 (Initial defaults to Max)", got)
	}
	if l.QueueLimit() != 0 {
		t.Fatalf("default queue = %d, want 0", l.QueueLimit())
	}
	if l.RetryAfterSeconds() != 1 {
		t.Fatalf("cold RetryAfterSeconds = %d, want 1", l.RetryAfterSeconds())
	}
}

// saturate runs one full-utilization round: acquire every slot, observe
// a failed TryAcquire (marking saturation), then release all slots
// after lat of virtual time.
func saturate(t *testing.T, l *Limiter, clock *manualClock, lat time.Duration) {
	t.Helper()
	var toks []*Token
	for {
		tok, ok := l.TryAcquire()
		if !ok {
			break
		}
		toks = append(toks, tok)
	}
	clock.Advance(lat)
	for _, tok := range toks {
		tok.Release()
	}
}

func TestAdditiveIncreaseWhenSaturatedAndFlat(t *testing.T) {
	clock := newManualClock()
	l := New(Config{Min: 1, Initial: 2, Max: 10, UpdateEvery: 4, Clock: clock})
	// Two rounds of 2 saturated samples each at a flat 10ms: the fourth
	// sample triggers a decision with a saturated window and latency at
	// baseline, so the limit steps up by exactly one.
	saturate(t, l, clock, 10*time.Millisecond)
	saturate(t, l, clock, 10*time.Millisecond)
	if got := l.Limit(); got != 3 {
		t.Fatalf("limit after flat saturated batch = %d, want 3", got)
	}
}

func TestMultiplicativeDecreaseOnLatencyGradient(t *testing.T) {
	clock := newManualClock()
	reg := obs.NewRegistry()
	l := New(Config{Min: 2, Initial: 8, Max: 8, UpdateEvery: 4,
		Tolerance: 2, DecreaseFactor: 0.75, Clock: clock, Tel: obs.New(reg, nil)})
	// Baseline batch: 4 samples at 10ms (unsaturated — limit 8, 1 in
	// flight), so the moving minimum learns 10ms.
	for i := 0; i < 4; i++ {
		tok, ok := l.TryAcquire()
		if !ok {
			t.Fatal("unsaturated acquire failed")
		}
		clock.Advance(10 * time.Millisecond)
		tok.Release()
	}
	if got := l.Limit(); got != 8 {
		t.Fatalf("limit moved without congestion or saturation: %d", got)
	}
	// Congested batch: 50ms > 2×10ms ⇒ multiplicative cut 8 → 6.
	for i := 0; i < 4; i++ {
		tok, _ := l.TryAcquire()
		clock.Advance(50 * time.Millisecond)
		tok.Release()
	}
	if got := l.Limit(); got != 6 {
		t.Fatalf("limit after congested batch = %d, want 6", got)
	}
	// Keep the pressure on: 6 → 4 → 3 → 2, clamped at Min=2.
	for round := 0; round < 8; round++ {
		for i := 0; i < 4; i++ {
			tok, _ := l.TryAcquire()
			clock.Advance(50 * time.Millisecond)
			tok.Release()
		}
	}
	if got := l.Limit(); got != 2 {
		t.Fatalf("limit not clamped at Min: %d", got)
	}
	if got := reg.Gauge("admission.limit").Value(); got != 2 {
		t.Fatalf("admission.limit gauge = %d, want 2", got)
	}
	if reg.Counter("admission.decrease").Value() == 0 {
		t.Fatal("admission.decrease never incremented")
	}
}

func TestBaselineWindowForgetsStaleMinimum(t *testing.T) {
	clock := newManualClock()
	l := New(Config{Min: 1, Initial: 8, Max: 8, UpdateEvery: 2,
		Tolerance: 2, Window: time.Second, Clock: clock})
	// Fast past: two 10ms samples at t≈0.
	for i := 0; i < 2; i++ {
		tok, _ := l.TryAcquire()
		clock.Advance(10 * time.Millisecond)
		tok.Release()
	}
	// A uniformly slow present: after the 1s window rotates the 10ms
	// minimum out, 50ms IS the baseline and decreases must stop.
	clock.Advance(2 * time.Second)
	for round := 0; round < 10; round++ {
		for i := 0; i < 2; i++ {
			tok, _ := l.TryAcquire()
			clock.Advance(50 * time.Millisecond)
			tok.Release()
		}
	}
	// The first post-rotation batches may still decrease against the
	// remembered 10ms, but once both half-window buckets hold only 50ms
	// samples the limit must stabilize — run two more rounds and check
	// it no longer moves.
	stable := l.Limit()
	for round := 0; round < 2; round++ {
		for i := 0; i < 2; i++ {
			tok, _ := l.TryAcquire()
			clock.Advance(50 * time.Millisecond)
			tok.Release()
		}
	}
	if got := l.Limit(); got != stable {
		t.Fatalf("limit still falling after baseline rotated (%d → %d): the moving min never forgot", stable, got)
	}
	if got := l.Limit(); got < 1 {
		t.Fatalf("limit = %d", got)
	}
}

// acquireAsync runs Acquire in a goroutine and reports its outcome.
func acquireAsync(l *Limiter, ctx context.Context) chan error {
	out := make(chan error, 1)
	go func() {
		tok, err := l.Acquire(ctx)
		if err == nil {
			// Hold until told otherwise; tests release via the token map
			// — here the token is released instantly to keep FIFO tests
			// focused on grant order.
			tok.Release()
		}
		out <- err
	}()
	return out
}

func waitDepth(t *testing.T, l *Limiter, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if l.QueueDepth() == n {
			return
		}
		time.Sleep(100 * time.Microsecond)
	}
	t.Fatalf("queue depth never reached %d (have %d)", n, l.QueueDepth())
}

func TestQueueGrantsFIFOWithinTarget(t *testing.T) {
	clock := newManualClock()
	l := New(Config{Min: 1, Initial: 1, Max: 1, Queue: 2,
		QueueTarget: 20 * time.Millisecond, Clock: clock})
	hold, ok := l.TryAcquire()
	if !ok {
		t.Fatal("first acquire failed")
	}
	w1 := acquireAsync(l, context.Background())
	waitDepth(t, l, 1)
	w2 := acquireAsync(l, context.Background())
	waitDepth(t, l, 2)
	// Within the sojourn target: releasing the holder admits w1, whose
	// own release then admits w2.
	clock.Advance(10 * time.Millisecond)
	hold.Release()
	if err := <-w1; err != nil {
		t.Fatalf("first waiter rejected: %v", err)
	}
	if err := <-w2; err != nil {
		t.Fatalf("second waiter rejected: %v", err)
	}
	if got := l.Inflight(); got != 0 {
		t.Fatalf("inflight = %d after full drain", got)
	}
}

func TestCoDelDropsOverstayedWaiters(t *testing.T) {
	clock := newManualClock()
	reg := obs.NewRegistry()
	l := New(Config{Min: 1, Initial: 1, Max: 1, Queue: 2,
		QueueTarget: 20 * time.Millisecond, Clock: clock, Tel: obs.New(reg, nil)})
	hold, _ := l.TryAcquire()
	w1 := acquireAsync(l, context.Background())
	waitDepth(t, l, 1)
	// The waiter sits 30ms > 20ms target: when its turn comes it is
	// dropped, not served.
	clock.Advance(30 * time.Millisecond)
	hold.Release()
	if err := <-w1; err != ErrSaturated {
		t.Fatalf("overstayed waiter got %v, want ErrSaturated", err)
	}
	if got := reg.Counter("admission.queue_dropped").Value(); got != 1 {
		t.Fatalf("queue_dropped = %d, want 1", got)
	}
	if got := l.Inflight(); got != 0 {
		t.Fatalf("inflight = %d, want 0 (slot retired, not leaked)", got)
	}
}

func TestQueueFullShedsImmediately(t *testing.T) {
	clock := newManualClock()
	reg := obs.NewRegistry()
	l := New(Config{Min: 1, Initial: 1, Max: 1, Queue: 1, Clock: clock, Tel: obs.New(reg, nil)})
	hold, _ := l.TryAcquire()
	defer hold.Release()
	go acquireAsync(l, context.Background())
	waitDepth(t, l, 1)
	if _, err := l.Acquire(context.Background()); err != ErrSaturated {
		t.Fatalf("over-queue acquire got %v, want ErrSaturated", err)
	}
	if got := reg.Counter("admission.shed").Value(); got != 1 {
		t.Fatalf("shed = %d, want 1", got)
	}
}

func TestZeroQueueIsLegacySemaphore(t *testing.T) {
	l := New(Config{Min: 1, Initial: 2, Max: 2})
	a, _ := l.TryAcquire()
	b, _ := l.TryAcquire()
	if _, err := l.Acquire(context.Background()); err != ErrSaturated {
		t.Fatalf("acquire at limit with no queue got %v, want immediate ErrSaturated", err)
	}
	a.Release()
	b.Release()
}

func TestCanceledWaiterLeavesQueue(t *testing.T) {
	l := New(Config{Min: 1, Initial: 1, Max: 1, Queue: 4})
	hold, _ := l.TryAcquire()
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := l.Acquire(ctx)
		errc <- err
	}()
	waitDepth(t, l, 1)
	cancel()
	if err := <-errc; err != context.Canceled {
		t.Fatalf("canceled waiter got %v", err)
	}
	if got := l.QueueDepth(); got != 0 {
		t.Fatalf("queue depth = %d after cancel", got)
	}
	hold.Release()
	if got := l.Inflight(); got != 0 {
		t.Fatalf("inflight = %d", got)
	}
}

func TestCancelRecordsNoSample(t *testing.T) {
	clock := newManualClock()
	l := New(Config{Min: 1, Initial: 4, Max: 4, UpdateEvery: 1, Clock: clock})
	tok, _ := l.TryAcquire()
	clock.Advance(time.Microsecond)
	tok.Cancel()
	if got := l.RetryAfterSeconds(); got != 1 {
		t.Fatalf("Cancel fed the controller: RetryAfterSeconds = %d", got)
	}
	if got := l.Inflight(); got != 0 {
		t.Fatalf("inflight = %d after Cancel", got)
	}
}

func TestRetryAfterScalesWithQueueAndLatency(t *testing.T) {
	clock := newManualClock()
	l := New(Config{Min: 1, Initial: 1, Max: 1, Queue: 8, Clock: clock})
	// One 2s sample seeds the EWMA.
	tok, _ := l.TryAcquire()
	clock.Advance(2 * time.Second)
	tok.Release()
	if got := l.RetryAfterSeconds(); got != 2 {
		t.Fatalf("RetryAfterSeconds = %d, want 2 (ceil of one 2s service time)", got)
	}
	// Three queued waiters ahead: the hint grows to cover their drain.
	hold, _ := l.TryAcquire()
	for i := 0; i < 3; i++ {
		go acquireAsync(l, context.Background())
	}
	waitDepth(t, l, 3)
	if got := l.RetryAfterSeconds(); got < 8 {
		t.Fatalf("RetryAfterSeconds = %d with 3 queued 2s requests, want >= 8", got)
	}
	clock.Advance(time.Millisecond)
	hold.Release()
}

func TestSetLimitShrinkRetiresSlots(t *testing.T) {
	l := New(Config{Min: 1, Initial: 4, Max: 8})
	var toks []*Token
	for i := 0; i < 4; i++ {
		tok, ok := l.TryAcquire()
		if !ok {
			t.Fatal("acquire under limit failed")
		}
		toks = append(toks, tok)
	}
	l.SetLimit(2)
	toks[0].Release()
	toks[1].Release()
	if got := l.Inflight(); got != 2 {
		t.Fatalf("inflight = %d after shrink drain, want 2", got)
	}
	if _, ok := l.TryAcquire(); ok {
		t.Fatal("acquire admitted above the shrunken limit")
	}
	toks[2].Release()
	toks[3].Release()
	if _, ok := l.TryAcquire(); !ok {
		t.Fatal("acquire below the shrunken limit failed")
	}
}

func TestSetLimitGrowthAdmitsWaiters(t *testing.T) {
	l := New(Config{Min: 1, Initial: 1, Max: 8, Queue: 4, QueueTarget: time.Hour})
	hold, _ := l.TryAcquire()
	granted := make(chan *Token, 1)
	go func() {
		tok, err := l.Acquire(context.Background())
		if err != nil {
			t.Errorf("waiter rejected: %v", err)
		}
		granted <- tok
	}()
	waitDepth(t, l, 1)
	l.SetLimit(2)
	tok := <-granted
	tok.Release()
	hold.Release()
}

// TestConvergenceUnderSustainedOverload is the limiter half of the
// fleet soak story, run as a deterministic discrete-event simulation:
// a service with true capacity C is offered 3C arrivals per round, and
// per-round latency grows linearly once concurrency exceeds C. The
// adaptive limit must walk down from Max to the service's knee and
// oscillate in a tight band there — no collapse to Min, no sticking at
// Max, and nothing ever queues unboundedly.
func TestConvergenceUnderSustainedOverload(t *testing.T) {
	const (
		capacity = 8
		offered  = 3 * capacity
		baseLat  = 10 * time.Millisecond
	)
	clock := newManualClock()
	reg := obs.NewRegistry()
	l := New(Config{Min: 1, Initial: 32, Max: 32, UpdateEvery: 8,
		Tolerance: 2, DecreaseFactor: 0.75, Window: time.Hour,
		Clock: clock, Tel: obs.New(reg, nil)})

	// Warmup: light load teaches the moving minimum the uncongested
	// baseline (in production this is any quiet moment).
	for round := 0; round < 4; round++ {
		var toks []*Token
		for i := 0; i < capacity/2; i++ {
			tok, ok := l.TryAcquire()
			if !ok {
				t.Fatalf("warmup shed at round %d", round)
			}
			toks = append(toks, tok)
		}
		clock.Advance(baseLat)
		for _, tok := range toks {
			tok.Release()
		}
	}

	// Sustained 3× overload. The limit settles into an AIMD sawtooth
	// around the knee; record its band over the tail rounds.
	sheds := 0
	loLim, hiLim, sumLim, tail := 1<<30, 0, 0, 0
	for round := 0; round < 120; round++ {
		var toks []*Token
		for i := 0; i < offered; i++ {
			tok, ok := l.TryAcquire()
			if !ok {
				sheds++
				continue
			}
			toks = append(toks, tok)
		}
		lat := baseLat
		if n := len(toks); n > capacity {
			lat = baseLat * time.Duration(n) / capacity
		}
		clock.Advance(lat)
		for _, tok := range toks {
			tok.Release()
		}
		if got := l.QueueDepth(); got != 0 {
			t.Fatalf("round %d: queue depth %d in a TryAcquire-only sim", round, got)
		}
		if round >= 90 {
			lim := l.Limit()
			if lim < loLim {
				loLim = lim
			}
			if lim > hiLim {
				hiLim = lim
			}
			sumLim += lim
			tail++
		}
	}

	// Converged: with Tolerance 2 the sawtooth tops out where latency
	// first exceeds 2× baseline (just above 2×capacity) and the
	// multiplicative cuts bottom out well above Min — the limit neither
	// sticks at Max nor collapses, and its average rides the knee.
	if hiLim > 2*capacity+2 {
		t.Fatalf("sawtooth peak %d, want <= %d (limit stuck high)", hiLim, 2*capacity+2)
	}
	if loLim < capacity/2 {
		t.Fatalf("sawtooth trough %d, want >= %d (limit collapsed)", loLim, capacity/2)
	}
	if avg := sumLim / tail; avg < capacity/2 || avg > 2*capacity {
		t.Fatalf("mean limit %d over the tail, want around capacity %d", avg, capacity)
	}
	if sheds == 0 {
		t.Fatal("3x overload produced zero sheds")
	}
	if reg.Counter("admission.decrease").Value() == 0 {
		t.Fatal("overload never cut the limit")
	}
	if hint := l.RetryAfterSeconds(); hint < 1 {
		t.Fatalf("RetryAfterSeconds = %d", hint)
	}
}
