package admission

import (
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"

	"ajaxcrawl/internal/obs"
)

// TestLimiterRaceHammer drives concurrent acquire/release/cancel,
// queued waiters with racing cancellations, and concurrent resizes
// through one limiter — the interleavings the serving daemons see under
// real load plus an operator flipping SetLimit. The -race build must
// stay silent and the accounting must balance to zero afterward: a
// leaked slot here is a permanently lost unit of serving capacity.
func TestLimiterRaceHammer(t *testing.T) {
	l := New(Config{Min: 1, Initial: 8, Max: 32, Queue: 16,
		QueueTarget: 5 * time.Millisecond, UpdateEvery: 4,
		Tel: obs.New(obs.NewRegistry(), nil)})

	const workers = 16
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				switch rng.Intn(4) {
				case 0:
					if tok, ok := l.TryAcquire(); ok {
						tok.Release()
					}
				case 1:
					ctx, cancel := context.WithTimeout(context.Background(), time.Duration(rng.Intn(200))*time.Microsecond)
					if tok, err := l.Acquire(ctx); err == nil {
						time.Sleep(time.Duration(rng.Intn(50)) * time.Microsecond)
						tok.Release()
					}
					cancel()
				case 2:
					if tok, err := l.Acquire(context.Background()); err == nil {
						tok.Cancel()
					}
				case 3:
					// Double-release must be idempotent.
					if tok, ok := l.TryAcquire(); ok {
						tok.Release()
						tok.Release()
						tok.Cancel()
					}
				}
			}
		}(int64(w + 1))
	}
	// Resizer: stomp the limit up and down under load.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(99))
		for {
			select {
			case <-stop:
				return
			default:
			}
			l.SetLimit(1 + rng.Intn(32))
			time.Sleep(time.Duration(rng.Intn(300)) * time.Microsecond)
		}
	}()
	// Reader: stats must be consistent while everything churns.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if lim := l.Limit(); lim < 1 || lim > 32 {
				t.Errorf("limit %d escaped [1, 32]", lim)
				return
			}
			_ = l.Inflight()
			_ = l.QueueDepth()
			_ = l.RetryAfterSeconds()
		}
	}()

	time.Sleep(100 * time.Millisecond)
	close(stop)
	wg.Wait()

	// Every slot must come back: poll briefly (stragglers may still be
	// releasing), then require exact balance.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if l.Inflight() == 0 && l.QueueDepth() == 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if got := l.Inflight(); got != 0 {
		t.Fatalf("leaked %d in-flight slots", got)
	}
	if got := l.QueueDepth(); got != 0 {
		t.Fatalf("leaked %d queued waiters", got)
	}
}
