// Package admission is the serving fleet's adaptive overload-control
// layer: a concurrency limiter that discovers how many in-flight
// requests the process can sustain by watching its own latency, instead
// of trusting a hand-tuned -max-inflight to stay correct across
// snapshot sizes, query mixes and noisy neighbors.
//
// The controller is AIMD on a latency gradient. A windowed moving
// minimum of observed request latencies estimates the uncongested
// baseline; when the recent batch average climbs past Tolerance× that
// baseline the limit is cut multiplicatively (the process is queueing
// somewhere — CPU run queue, allocator, page cache), and when the limit
// was actually saturated while latency stayed flat the limit creeps up
// additively. The result tracks the knee of the latency/throughput
// curve the way TCP tracks bottleneck bandwidth.
//
// In front of the limit sits a bounded CoDel-style wait queue: short
// bursts absorb into the queue instead of shedding, but a waiter that
// has sat longer than QueueTarget when its turn comes is dropped —
// serving it would spend capacity on a request whose client has likely
// given up, which is how overload spirals start. Requests that cannot
// even queue are shed immediately with a computed Retry-After hint
// (estimated drain time of the queue ahead of them), so well-behaved
// clients back off in proportion to the actual overload rather than a
// hardcoded "1".
//
// Everything is timed on an injectable fetch.Clock and the limiter
// never sleeps on it (waiters block on channels granted by releases),
// so virtual-time tests can script exact admission schedules.
package admission

import (
	"context"
	"errors"
	"math"
	"sync"
	"time"

	"ajaxcrawl/internal/fetch"
	"ajaxcrawl/internal/obs"
)

// ErrSaturated is returned when a request cannot be admitted: the
// limit is reached and the wait queue is full (or disabled), or the
// waiter was CoDel-dropped after queueing too long. Callers should shed
// the request with 429 and the RetryAfterSeconds hint.
var ErrSaturated = errors.New("admission: saturated")

// Config parameterizes a Limiter. The zero value of every field gets a
// sensible default from New.
type Config struct {
	// Initial is the starting concurrency limit (default Max: start
	// permissive and let congestion walk the limit down, so an idle
	// server never rejects its first burst).
	Initial int
	// Min and Max bound the adaptive limit (defaults 1 and 64). Max is
	// the old static MaxInflight: the hard ceiling the operator trusts.
	Min, Max int
	// Queue bounds the wait queue (0 = no queue: shed immediately at
	// the limit, the legacy semaphore behavior).
	Queue int
	// QueueTarget is the CoDel-style sojourn bound: a waiter that
	// queued longer than this is dropped when its turn comes instead of
	// admitted (0 = 50ms).
	QueueTarget time.Duration
	// Window is the moving-minimum window for the baseline latency
	// estimate (0 = 30s). Two half-window buckets rotate, so the
	// baseline forgets a transiently idle past within one window.
	Window time.Duration
	// Tolerance is the congestion trigger: a batch whose average
	// latency exceeds Tolerance× the baseline minimum cuts the limit
	// (0 = 2.0).
	Tolerance float64
	// DecreaseFactor is the multiplicative cut (0 = 0.75).
	DecreaseFactor float64
	// UpdateEvery is how many latency samples feed one controller
	// decision (0 = 16).
	UpdateEvery int
	// Clock supplies timestamps (nil = wall clock). The limiter only
	// calls Now, never Sleep.
	Clock fetch.Clock
	// Tel receives the admission.* metrics (nil = none).
	Tel *obs.Telemetry
	// Prefix namespaces the metrics (default "admission").
	Prefix string
}

func (c Config) withDefaults() Config {
	if c.Min <= 0 {
		c.Min = 1
	}
	if c.Max <= 0 {
		c.Max = 64
	}
	if c.Max < c.Min {
		c.Max = c.Min
	}
	if c.Initial <= 0 {
		c.Initial = c.Max
	}
	if c.Initial < c.Min {
		c.Initial = c.Min
	}
	if c.Initial > c.Max {
		c.Initial = c.Max
	}
	if c.QueueTarget <= 0 {
		c.QueueTarget = 50 * time.Millisecond
	}
	if c.Window <= 0 {
		c.Window = 30 * time.Second
	}
	if c.Tolerance <= 1 {
		c.Tolerance = 2.0
	}
	if c.DecreaseFactor <= 0 || c.DecreaseFactor >= 1 {
		c.DecreaseFactor = 0.75
	}
	if c.UpdateEvery <= 0 {
		c.UpdateEvery = 16
	}
	if c.Clock == nil {
		c.Clock = fetch.RealClock{}
	}
	if c.Prefix == "" {
		c.Prefix = "admission"
	}
	return c
}

// waiter is one queued Acquire. granted carries the verdict exactly
// once: true admits (the releaser transferred its slot), false is a
// CoDel drop.
type waiter struct {
	granted chan bool
	enq     time.Time
}

// minBucket is one half-window of the moving-minimum baseline.
type minBucket struct {
	start time.Time
	min   time.Duration
	ok    bool
}

// Limiter is an adaptive concurrency limiter. Use New.
type Limiter struct {
	cfg   Config
	clock fetch.Clock
	tel   *obs.Telemetry

	mu       sync.Mutex
	limit    int
	inflight int
	queue    []*waiter

	// Controller state (under mu).
	saturated  bool          // an acquire hit the limit since the last decision
	batchN     int           // samples in the current batch
	batchSum   time.Duration // their latency sum
	ewmaLat    float64       // smoothed latency in seconds, for the Retry-After hint
	cur, prev  minBucket     // rotating half-window minimum buckets
	increases  int64
	decreases  int64
	queueDrops int64
}

// New returns a ready Limiter.
func New(cfg Config) *Limiter {
	cfg = cfg.withDefaults()
	l := &Limiter{cfg: cfg, clock: cfg.Clock, tel: cfg.Tel, limit: cfg.Initial}
	l.tel.Gauge(cfg.Prefix + ".limit").Set(int64(l.limit))
	return l
}

// Token is one admitted request's slot. Exactly one of Release or
// Cancel must be called when the request ends.
type Token struct {
	l     *Limiter
	start time.Time
	done  bool
	// Waited reports that this request sat in the queue before
	// admission — the serving layer's brownout signal.
	Waited bool
	// QueueDepth is the queue length observed at admission time.
	QueueDepth int
}

// Acquire admits the caller, queues it (bounded, CoDel-dropped on
// excessive sojourn), or rejects it with ErrSaturated. A ctx that ends
// while queued returns ctx.Err().
func (l *Limiter) Acquire(ctx context.Context) (*Token, error) {
	l.mu.Lock()
	now := l.clock.Now()
	if l.inflight < l.limit {
		l.inflight++
		depth := len(l.queue)
		l.publishOccupancyLocked()
		l.mu.Unlock()
		l.tel.Counter(l.cfg.Prefix + ".admitted").Inc()
		return &Token{l: l, start: now, QueueDepth: depth}, nil
	}
	l.saturated = true
	if len(l.queue) >= l.cfg.Queue {
		l.publishOccupancyLocked()
		l.mu.Unlock()
		l.tel.Counter(l.cfg.Prefix + ".shed").Inc()
		return nil, ErrSaturated
	}
	w := &waiter{granted: make(chan bool, 1), enq: now}
	l.queue = append(l.queue, w)
	l.publishOccupancyLocked()
	l.mu.Unlock()
	l.tel.Counter(l.cfg.Prefix + ".queued").Inc()

	select {
	case ok := <-w.granted:
		if !ok {
			// CoDel drop: the slot came up after the waiter had already
			// overstayed QueueTarget.
			l.tel.Counter(l.cfg.Prefix + ".shed").Inc()
			return nil, ErrSaturated
		}
		l.mu.Lock()
		depth := len(l.queue)
		start := l.clock.Now()
		l.mu.Unlock()
		l.tel.Counter(l.cfg.Prefix + ".admitted").Inc()
		return &Token{l: l, start: start, Waited: true, QueueDepth: depth}, nil
	case <-ctx.Done():
		l.mu.Lock()
		removed := l.removeWaiterLocked(w)
		l.publishOccupancyLocked()
		l.mu.Unlock()
		if !removed {
			// The grant raced the cancellation: the verdict is already in
			// the buffered channel and the slot (on true) is ours to give
			// back untouched.
			if ok := <-w.granted; ok {
				l.mu.Lock()
				l.releaseSlotLocked()
				l.mu.Unlock()
			}
		}
		return nil, ctx.Err()
	}
}

// TryAcquire admits the caller only if a slot is immediately free; it
// never queues. The failure is counted as a shed.
func (l *Limiter) TryAcquire() (*Token, bool) {
	l.mu.Lock()
	now := l.clock.Now()
	if l.inflight < l.limit {
		l.inflight++
		depth := len(l.queue)
		l.publishOccupancyLocked()
		l.mu.Unlock()
		l.tel.Counter(l.cfg.Prefix + ".admitted").Inc()
		return &Token{l: l, start: now, QueueDepth: depth}, true
	}
	l.saturated = true
	l.mu.Unlock()
	l.tel.Counter(l.cfg.Prefix + ".shed").Inc()
	return nil, false
}

// Release ends the request and feeds its latency to the controller.
func (t *Token) Release() {
	if t == nil || t.done {
		return
	}
	t.done = true
	l := t.l
	l.mu.Lock()
	now := l.clock.Now()
	l.onSampleLocked(now.Sub(t.start), now)
	l.releaseSlotLocked()
	l.mu.Unlock()
}

// Cancel ends the request without recording a latency sample — for
// requests that never did representative work (validation failures,
// fast rejects), whose microsecond "latencies" would poison the
// baseline minimum and make healthy queries look congested.
func (t *Token) Cancel() {
	if t == nil || t.done {
		return
	}
	t.done = true
	t.l.mu.Lock()
	t.l.releaseSlotLocked()
	t.l.mu.Unlock()
}

// releaseSlotLocked frees one slot: hand it to the first queued waiter
// that has not overstayed QueueTarget (CoDel-dropping the ones that
// have), or shrink inflight.
func (l *Limiter) releaseSlotLocked() {
	now := l.clock.Now()
	// A shrunken limit drains before the queue refills: slots above the
	// limit are retired, not recycled.
	if l.inflight > l.limit {
		l.inflight--
		l.publishOccupancyLocked()
		return
	}
	for len(l.queue) > 0 {
		w := l.queue[0]
		l.queue = l.queue[1:]
		if now.Sub(w.enq) > l.cfg.QueueTarget {
			l.queueDrops++
			l.tel.Counter(l.cfg.Prefix + ".queue_dropped").Inc()
			w.granted <- false
			continue
		}
		// Slot transfer: one out, one in, inflight unchanged.
		w.granted <- true
		l.publishOccupancyLocked()
		return
	}
	l.inflight--
	l.publishOccupancyLocked()
}

// removeWaiterLocked unlinks w; false means it was already granted.
func (l *Limiter) removeWaiterLocked(w *waiter) bool {
	for i, o := range l.queue {
		if o == w {
			l.queue = append(l.queue[:i], l.queue[i+1:]...)
			return true
		}
	}
	return false
}

// onSampleLocked feeds one completed request's latency to the AIMD
// controller.
func (l *Limiter) onSampleLocked(lat time.Duration, now time.Time) {
	if lat < 0 {
		lat = 0
	}
	// Rotate the half-window minimum buckets.
	half := l.cfg.Window / 2
	if !l.cur.ok {
		l.cur = minBucket{start: now, min: lat, ok: true}
	} else if now.Sub(l.cur.start) >= half {
		l.prev = l.cur
		l.cur = minBucket{start: now, min: lat, ok: true}
	} else if lat < l.cur.min {
		l.cur.min = lat
	}
	if l.prev.ok && now.Sub(l.prev.start) >= l.cfg.Window {
		l.prev.ok = false
	}

	const alpha = 0.2
	if l.ewmaLat == 0 {
		l.ewmaLat = lat.Seconds()
	} else {
		l.ewmaLat = (1-alpha)*l.ewmaLat + alpha*lat.Seconds()
	}

	l.batchN++
	l.batchSum += lat
	if l.batchN < l.cfg.UpdateEvery {
		return
	}
	avg := l.batchSum / time.Duration(l.batchN)
	base := l.baselineLocked()
	switch {
	case base > 0 && avg > time.Duration(l.cfg.Tolerance*float64(base)) && l.limit > l.cfg.Min:
		next := int(math.Floor(float64(l.limit) * l.cfg.DecreaseFactor))
		if next >= l.limit {
			next = l.limit - 1
		}
		if next < l.cfg.Min {
			next = l.cfg.Min
		}
		l.limit = next
		l.decreases++
		l.tel.Counter(l.cfg.Prefix + ".decrease").Inc()
		l.tel.Gauge(l.cfg.Prefix + ".limit").Set(int64(l.limit))
	case l.saturated && l.limit < l.cfg.Max:
		l.limit++
		l.increases++
		l.tel.Counter(l.cfg.Prefix + ".increase").Inc()
		l.tel.Gauge(l.cfg.Prefix + ".limit").Set(int64(l.limit))
		l.grantUpToLimitLocked()
	}
	l.batchN, l.batchSum, l.saturated = 0, 0, false
}

// baselineLocked is the windowed moving minimum.
func (l *Limiter) baselineLocked() time.Duration {
	switch {
	case l.cur.ok && l.prev.ok:
		if l.prev.min < l.cur.min {
			return l.prev.min
		}
		return l.cur.min
	case l.cur.ok:
		return l.cur.min
	case l.prev.ok:
		return l.prev.min
	}
	return 0
}

// grantUpToLimitLocked admits queued waiters into newly opened slots
// (limit increase or SetLimit growth), CoDel-dropping stale ones.
func (l *Limiter) grantUpToLimitLocked() {
	now := l.clock.Now()
	for l.inflight < l.limit && len(l.queue) > 0 {
		w := l.queue[0]
		l.queue = l.queue[1:]
		if now.Sub(w.enq) > l.cfg.QueueTarget {
			l.queueDrops++
			l.tel.Counter(l.cfg.Prefix + ".queue_dropped").Inc()
			w.granted <- false
			continue
		}
		l.inflight++
		w.granted <- true
	}
	l.publishOccupancyLocked()
}

// SetLimit pins the limit to n (clamped to [Min, Max]) — an operator
// override or a test hook. Growth admits queued waiters immediately;
// shrink drains as in-flight requests complete.
func (l *Limiter) SetLimit(n int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if n < l.cfg.Min {
		n = l.cfg.Min
	}
	if n > l.cfg.Max {
		n = l.cfg.Max
	}
	l.limit = n
	l.tel.Gauge(l.cfg.Prefix + ".limit").Set(int64(n))
	l.grantUpToLimitLocked()
}

// Limit returns the current adaptive limit.
func (l *Limiter) Limit() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.limit
}

// Inflight returns the admitted-request count.
func (l *Limiter) Inflight() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inflight
}

// QueueDepth returns the current wait-queue length.
func (l *Limiter) QueueDepth() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.queue)
}

// QueueLimit returns the configured queue bound.
func (l *Limiter) QueueLimit() int { return l.cfg.Queue }

// RetryAfterSeconds computes the Retry-After hint for a shed request:
// the estimated time for the queue ahead of a new arrival to drain at
// the current limit and smoothed latency, ceiled to whole seconds and
// clamped to [1, 60]. A cold limiter (no samples yet) answers 1.
func (l *Limiter) RetryAfterSeconds() int {
	l.mu.Lock()
	lat := l.ewmaLat
	depth := len(l.queue)
	limit := l.limit
	l.mu.Unlock()
	if lat <= 0 || limit <= 0 {
		return 1
	}
	wait := lat * float64(depth+1) / float64(limit)
	secs := int(math.Ceil(wait))
	if secs < 1 {
		secs = 1
	}
	if secs > 60 {
		secs = 60
	}
	return secs
}

// publishOccupancyLocked refreshes the inflight/queue gauges.
func (l *Limiter) publishOccupancyLocked() {
	l.tel.Gauge(l.cfg.Prefix + ".inflight").Set(int64(l.inflight))
	l.tel.Gauge(l.cfg.Prefix + ".queue").Set(int64(len(l.queue)))
}
