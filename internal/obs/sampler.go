package obs

import (
	"context"
	"runtime"
	"sync"
	"time"
)

// Clock is the sampler's injectable time source. *fetch.VirtualClock and
// fetch.RealClock both satisfy it; obs redeclares the single method it
// needs so the dependency arrow keeps pointing fetch -> obs.
type Clock interface {
	Now() time.Time
}

// realClock is the default wall-time Clock.
type realClock struct{}

func (realClock) Now() time.Time { return time.Now() }

// Point is one time-series sample.
type Point struct {
	T time.Time `json:"t"`
	V int64     `json:"v"`
}

// SeriesSnapshot is the retained window of one sampled series, oldest
// point first.
type SeriesSnapshot struct {
	Name   string  `json:"name"`
	Points []Point `json:"points"`
}

// ring is a fixed-size point buffer: the newest Cap samples win.
type ring struct {
	buf  []Point
	next int
	full bool
}

func (r *ring) push(p Point) {
	r.buf[r.next] = p
	r.next++
	if r.next == len(r.buf) {
		r.next, r.full = 0, true
	}
}

func (r *ring) points() []Point {
	var out []Point
	if r.full {
		out = append(out, r.buf[r.next:]...)
	}
	return append(out, r.buf[:r.next]...)
}

// DefaultCrawlGauges and DefaultCrawlCounters are the crawl-progress
// series the CLIs sample by default: frontier depth and line utilization
// (gauges), pages retired (counter).
var (
	DefaultCrawlGauges   = []string{"frontier.depth", "crawl.lines.busy"}
	DefaultCrawlCounters = []string{"crawl.pages.done"}
)

// SamplerConfig configures a Sampler.
type SamplerConfig struct {
	// Clock is the time source stamped onto points (wall clock when nil).
	Clock Clock
	// Cap bounds each series' retained points (default 512); older
	// points are evicted ring-buffer style.
	Cap int
	// Gauges and Counters name the registry metrics to sample. Empty
	// slices select the crawl defaults; sampling a metric that does not
	// exist yet records zeros until it appears.
	Gauges   []string
	Counters []string
	// NoRuntime disables the Go runtime series (heap bytes, GC cycles,
	// goroutines), which are sampled by default.
	NoRuntime bool
}

// Runtime series names recorded unless SamplerConfig.NoRuntime is set.
const (
	SeriesHeapAlloc  = "runtime.heap_alloc_bytes"
	SeriesGCCycles   = "runtime.gc_cycles"
	SeriesGoroutines = "runtime.goroutines"
)

// Sampler periodically snapshots chosen registry gauges/counters and Go
// runtime stats into fixed-size ring series — the time dimension the
// point-in-time registry Snapshot lacks. Drive it either with Run (a
// wall-clock loop, the CLI `-sample` backend) or by calling Sample
// directly on an injected Clock (tests, report pipelines).
type Sampler struct {
	reg      *Registry
	clock    Clock
	capacity int
	gauges   []string
	counters []string
	runtime  bool

	mu     sync.Mutex
	series map[string]*ring
	order  []string
}

// NewSampler builds a sampler over reg. reg may be nil (runtime series
// only).
func NewSampler(reg *Registry, cfg SamplerConfig) *Sampler {
	if cfg.Clock == nil {
		cfg.Clock = realClock{}
	}
	if cfg.Cap <= 0 {
		cfg.Cap = 512
	}
	if cfg.Gauges == nil {
		cfg.Gauges = DefaultCrawlGauges
	}
	if cfg.Counters == nil {
		cfg.Counters = DefaultCrawlCounters
	}
	return &Sampler{
		reg:      reg,
		clock:    cfg.Clock,
		capacity: cfg.Cap,
		gauges:   append([]string(nil), cfg.Gauges...),
		counters: append([]string(nil), cfg.Counters...),
		runtime:  !cfg.NoRuntime,
		series:   make(map[string]*ring),
	}
}

// record appends one point to the named series, creating it on first use.
func (s *Sampler) record(name string, t time.Time, v int64) {
	r := s.series[name]
	if r == nil {
		r = &ring{buf: make([]Point, s.capacity)}
		s.series[name] = r
		s.order = append(s.order, name)
	}
	r.push(Point{T: t, V: v})
}

// Sample takes one sample of every tracked series at the clock's current
// time. Safe on a nil receiver (no-op) so wiring can be optional.
func (s *Sampler) Sample() {
	if s == nil {
		return
	}
	t := s.clock.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, g := range s.gauges {
		s.record(g, t, s.reg.Gauge(g).Value())
	}
	for _, c := range s.counters {
		s.record(c, t, s.reg.Counter(c).Value())
	}
	if s.runtime {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		s.record(SeriesHeapAlloc, t, int64(ms.HeapAlloc))
		s.record(SeriesGCCycles, t, int64(ms.NumGC))
		s.record(SeriesGoroutines, t, int64(runtime.NumGoroutine()))
	}
}

// Run samples every interval until ctx ends. The cadence runs on the
// wall clock (time.Ticker); points are stamped with the injected Clock.
// Safe on a nil receiver.
func (s *Sampler) Run(ctx context.Context, interval time.Duration) {
	if s == nil || interval <= 0 {
		return
	}
	s.Sample() // an immediate first point, so short runs still chart
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			s.Sample()
		}
	}
}

// Snapshot returns every series' retained window, in first-recorded
// order. Nil receiver returns nil.
func (s *Sampler) Snapshot() []SeriesSnapshot {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]SeriesSnapshot, 0, len(s.order))
	for _, name := range s.order {
		out = append(out, SeriesSnapshot{Name: name, Points: s.series[name].points()})
	}
	return out
}

// Series returns one named series' retained window (nil when the series
// has no points yet or the receiver is nil).
func (s *Sampler) Series(name string) []Point {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	r := s.series[name]
	if r == nil {
		return nil
	}
	return r.points()
}
