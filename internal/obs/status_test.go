package obs

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func statusFixture() (StatusSource, *Registry) {
	reg := NewRegistry()
	start := time.Unix(1000, 0).UTC()
	reg.SetClock(func() time.Time { return start.Add(10 * time.Second) })
	reg.Gauge(MetricPagesTotal).Set(40)
	reg.Counter(MetricPagesDone).Add(20)
	reg.Gauge(MetricLines).Set(4)
	reg.Gauge(MetricLinesBusy).Set(3)
	reg.Gauge(MetricFrontierDepth).Set(17)
	return StatusSource{Reg: reg, StartedAt: start}, reg
}

func TestStatusSnapshotProgressMath(t *testing.T) {
	src, _ := statusFixture()
	st := src.Snapshot()
	if st.PagesDone != 20 || st.PagesTotal != 40 || st.Done {
		t.Fatalf("progress = %d/%d done=%v, want 20/40 not done", st.PagesDone, st.PagesTotal, st.Done)
	}
	if st.ElapsedSec != 10 {
		t.Errorf("elapsed = %v, want 10", st.ElapsedSec)
	}
	if st.Utilization != 0.75 {
		t.Errorf("utilization = %v, want 0.75", st.Utilization)
	}
	if st.PagesPerSec != 2 {
		t.Errorf("rate = %v, want 2 pages/s", st.PagesPerSec)
	}
	// 20 pages left at 2/s.
	if st.ETASec != 10 {
		t.Errorf("eta = %v, want 10", st.ETASec)
	}
	if st.FrontierDepth != 17 {
		t.Errorf("frontier depth = %d, want 17", st.FrontierDepth)
	}
}

func TestStatusSnapshotUnknownETA(t *testing.T) {
	reg := NewRegistry()
	src := StatusSource{Reg: reg, StartedAt: time.Unix(1000, 0)}
	st := src.Snapshot()
	if st.ETASec != -1 {
		t.Fatalf("eta with no progress = %v, want -1", st.ETASec)
	}
	if st.Done {
		t.Fatal("empty crawl must not report done")
	}
}

func TestStatusSnapshotDone(t *testing.T) {
	src, reg := statusFixture()
	reg.Counter(MetricPagesDone).Add(20) // 40/40
	st := src.Snapshot()
	if !st.Done {
		t.Fatal("40/40 must report done")
	}
}

func TestStatusEndpointJSONAndHTML(t *testing.T) {
	src, reg := statusFixture()
	sampler := NewSampler(reg, SamplerConfig{
		Clock:     clockFunc(reg.Now),
		Gauges:    []string{MetricFrontierDepth},
		Counters:  []string{},
		NoRuntime: true,
	})
	sampler.Sample()
	src.Sampler = sampler

	mux := http.NewServeMux()
	RegisterStatus(mux, src)

	// JSON by default.
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/status", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type = %q", ct)
	}
	var st Status
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatalf("status JSON: %v", err)
	}
	if st.PagesDone != 20 || len(st.Series) != 1 || st.Series[0].Name != MetricFrontierDepth {
		t.Fatalf("status = %+v, want 20 pages done and the sampled frontier series", st)
	}

	// HTML on ?format=html.
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/status?format=html", nil))
	body := rec.Body.String()
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Fatalf("content type = %q", ct)
	}
	for _, want := range []string{"20 / 40", "3 / 4", "frontier.depth"} {
		if !strings.Contains(body, want) {
			t.Errorf("HTML status missing %q:\n%s", want, body)
		}
	}

	// HTML via Accept negotiation (a browser hitting the endpoint).
	req := httptest.NewRequest("GET", "/debug/status", nil)
	req.Header.Set("Accept", "text/html,application/xhtml+xml")
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, req)
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Fatalf("Accept text/html content type = %q", ct)
	}
}

// clockFunc adapts a func to the sampler Clock.
type clockFunc func() time.Time

func (f clockFunc) Now() time.Time { return f() }

func TestSparkline(t *testing.T) {
	if got := sparkline(nil, 10); got != "(no samples)" {
		t.Fatalf("empty sparkline = %q", got)
	}
	pts := []Point{{V: 0}, {V: 4}, {V: 8}}
	got := sparkline(pts, 10)
	if []rune(got)[0] != '▁' || []rune(got)[2] != '█' {
		t.Fatalf("sparkline = %q, want low first, full last", got)
	}
	// Width truncation keeps the newest points.
	pts = []Point{{V: 1}, {V: 2}, {V: 3}, {V: 4}}
	if got := sparkline(pts, 2); len([]rune(got)) != 2 {
		t.Fatalf("truncated sparkline = %q, want 2 runes", got)
	}
}
