// External test package: the sampler test drives obs.Sampler with
// fetch.VirtualClock, and fetch imports obs — an in-package test would
// close an import cycle.
package obs_test

import (
	"context"
	"testing"
	"time"

	"ajaxcrawl/internal/fetch"
	"ajaxcrawl/internal/obs"
)

func TestSamplerRecordsRegistrySeries(t *testing.T) {
	reg := obs.NewRegistry()
	clock := &fetch.VirtualClock{}
	s := obs.NewSampler(reg, obs.SamplerConfig{
		Clock:     clock,
		Gauges:    []string{"frontier.depth"},
		Counters:  []string{"crawl.pages.done"},
		NoRuntime: true,
	})

	for i := 1; i <= 3; i++ {
		reg.Gauge("frontier.depth").Set(int64(10 * i))
		reg.Counter("crawl.pages.done").Inc()
		s.Sample()
		_ = clock.Sleep(context.Background(), time.Second)
	}

	depth := s.Series("frontier.depth")
	if len(depth) != 3 {
		t.Fatalf("frontier.depth points = %d, want 3", len(depth))
	}
	for i, want := range []int64{10, 20, 30} {
		if depth[i].V != want {
			t.Errorf("depth[%d] = %d, want %d", i, depth[i].V, want)
		}
	}
	// Points are stamped with the virtual clock, one second apart.
	if d := depth[1].T.Sub(depth[0].T); d != time.Second {
		t.Errorf("sample spacing = %v, want 1s", d)
	}
	done := s.Series("crawl.pages.done")
	if len(done) != 3 || done[2].V != 3 {
		t.Fatalf("crawl.pages.done = %+v, want 3 points ending at 3", done)
	}

	snap := s.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot series = %d, want 2", len(snap))
	}
	// First-recorded order: gauges before counters.
	if snap[0].Name != "frontier.depth" || snap[1].Name != "crawl.pages.done" {
		t.Errorf("snapshot order = %q, %q", snap[0].Name, snap[1].Name)
	}
}

func TestSamplerRingEvictsOldest(t *testing.T) {
	reg := obs.NewRegistry()
	clock := &fetch.VirtualClock{}
	s := obs.NewSampler(reg, obs.SamplerConfig{
		Clock:     clock,
		Cap:       4,
		Gauges:    []string{"g"},
		Counters:  []string{},
		NoRuntime: true,
	})

	for i := 1; i <= 10; i++ {
		reg.Gauge("g").Set(int64(i))
		s.Sample()
	}
	pts := s.Series("g")
	if len(pts) != 4 {
		t.Fatalf("retained points = %d, want cap 4", len(pts))
	}
	// Newest 4 survive, oldest first.
	for i, want := range []int64{7, 8, 9, 10} {
		if pts[i].V != want {
			t.Errorf("pts[%d] = %d, want %d", i, pts[i].V, want)
		}
	}
}

func TestSamplerRuntimeSeries(t *testing.T) {
	s := obs.NewSampler(nil, obs.SamplerConfig{
		Clock:    &fetch.VirtualClock{},
		Gauges:   []string{},
		Counters: []string{},
	})
	s.Sample()
	if pts := s.Series(obs.SeriesHeapAlloc); len(pts) != 1 || pts[0].V <= 0 {
		t.Fatalf("%s = %+v, want one positive point", obs.SeriesHeapAlloc, pts)
	}
	if pts := s.Series(obs.SeriesGoroutines); len(pts) != 1 || pts[0].V <= 0 {
		t.Fatalf("%s = %+v, want one positive point", obs.SeriesGoroutines, pts)
	}
}

func TestSamplerNilSafety(t *testing.T) {
	var s *obs.Sampler
	s.Sample() // must not panic
	s.Run(context.Background(), time.Second)
	if s.Snapshot() != nil || s.Series("x") != nil {
		t.Fatal("nil sampler must return nil views")
	}
}
