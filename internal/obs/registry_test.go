package obs

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("c").Inc()
				r.Gauge("g").Add(1)
				r.Gauge("g").Add(-1)
				r.Histogram("h").Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := r.Gauge("g").Value(); got != 0 {
		t.Fatalf("gauge = %d, want 0", got)
	}
	if got := r.Snapshot().Histograms["h"].Count; got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
}

func TestNilRegistryAndMetricsAreNoops(t *testing.T) {
	var r *Registry
	r.Counter("x").Add(5)
	r.Gauge("x").Set(5)
	r.Histogram("x").Observe(1)
	snap := r.Snapshot()
	if len(snap.Counters) != 0 {
		t.Fatalf("nil registry snapshot not empty: %+v", snap)
	}
	var tel *Telemetry
	tel.Counter("x").Inc()
	tel.Histogram("x").ObserveDuration(time.Second)
	if tel.Registry() != nil {
		t.Fatal("nil telemetry must have nil registry")
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", 0.010, 0.020, 0.040, 0.080)
	// 100 samples uniformly in the 0–10ms bucket, 10 in 10–20ms.
	for i := 0; i < 100; i++ {
		h.Observe(0.005)
	}
	for i := 0; i < 10; i++ {
		h.Observe(0.015)
	}
	s := r.Snapshot().Histograms["lat"]
	if s.Count != 110 {
		t.Fatalf("count = %d, want 110", s.Count)
	}
	// p50 falls in the first bucket (0..0.010); p99 in the second.
	if s.P50 <= 0 || s.P50 > 0.010 {
		t.Fatalf("p50 = %v, want in (0, 0.010]", s.P50)
	}
	if s.P99 <= 0.010 || s.P99 > 0.020 {
		t.Fatalf("p99 = %v, want in (0.010, 0.020]", s.P99)
	}
	// The overflow bucket is cumulative and closes at Count.
	last := s.Buckets[len(s.Buckets)-1]
	if !math.IsInf(last.Le, 1) || last.Count != 110 {
		t.Fatalf("+Inf bucket = %+v", last)
	}
	if s.Min != 0.005 || s.Max != 0.015 {
		t.Fatalf("min/max = %v/%v, want 0.005/0.015", s.Min, s.Max)
	}
}

// TestHistogramQuantileOverflowSaturation pins the fix for quantile
// saturation: when all (or the tail) mass sits in the +Inf overflow
// bucket, quantiles must report the observed maximum, not the largest
// finite bucket bound.
func TestHistogramQuantileOverflowSaturation(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("slow", 0.1, 0.2)
	for i := 0; i < 10; i++ {
		h.Observe(5.0) // every sample beyond the last finite bound
	}
	s := r.Snapshot().Histograms["slow"]
	if s.P50 != 5.0 || s.P99 != 5.0 {
		t.Fatalf("overflow quantiles = p50 %v p99 %v, want 5.0 (max), not the 0.2 bound", s.P50, s.P99)
	}
	if s.Min != 5.0 || s.Max != 5.0 {
		t.Fatalf("min/max = %v/%v, want 5/5", s.Min, s.Max)
	}

	// Interpolated estimates are clamped to the observed range: one
	// tiny sample in a wide first bucket cannot report below min...
	h2 := r.Histogram("fast", 1.0)
	h2.Observe(0.5)
	s2 := r.Snapshot().Histograms["fast"]
	if s2.P50 != 0.5 || s2.P99 != 0.5 {
		t.Fatalf("single-sample quantiles = p50 %v p99 %v, want clamped to 0.5", s2.P50, s2.P99)
	}

	// ...and an empty histogram stays all-zero.
	r.Histogram("empty", 1.0)
	s3 := r.Snapshot().Histograms["empty"]
	if s3.Min != 0 || s3.Max != 0 || s3.P99 != 0 {
		t.Fatalf("empty histogram snapshot = %+v, want zeros", s3)
	}
}

// TestRegistryClockInjectable pins Snapshot.TakenAt to the injected
// clock, the byte-stability hook for report golden tests.
func TestRegistryClockInjectable(t *testing.T) {
	r := NewRegistry()
	fixed := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	r.SetClock(func() time.Time { return fixed })
	if got := r.Snapshot().TakenAt; !got.Equal(fixed) {
		t.Fatalf("TakenAt = %v, want %v", got, fixed)
	}
	r.SetClock(nil)
	if got := r.Snapshot().TakenAt; got.Equal(fixed) {
		t.Fatal("nil SetClock must restore the wall clock")
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("crawl.events").Add(42)
	r.Gauge("partition.inflight").Set(3)
	r.Histogram("fetch.latency", 0.1, 1).Observe(0.05)
	b, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back map[string]interface{}
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatalf("snapshot JSON not parseable: %v", err)
	}
	if back["counters"].(map[string]interface{})["crawl.events"].(float64) != 42 {
		t.Fatalf("counter lost in JSON: %s", b)
	}
}

// TestPrometheusGolden pins the text exposition rendering byte for byte.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("crawl.events").Add(7)
	r.Counter("crawl.pages").Add(2)
	r.Gauge("partition.inflight").Set(1)
	// Power-of-two samples keep the float sum exact, so the golden text
	// cannot drift with accumulation order.
	h := r.Histogram("fetch.latency", 0.5, 2)
	h.Observe(0.25)
	h.Observe(0.25)
	h.Observe(1)
	h.Observe(4)

	var sb strings.Builder
	if err := r.Snapshot().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE ajaxcrawl_crawl_events counter
ajaxcrawl_crawl_events 7
# TYPE ajaxcrawl_crawl_pages counter
ajaxcrawl_crawl_pages 2
# TYPE ajaxcrawl_partition_inflight gauge
ajaxcrawl_partition_inflight 1
# TYPE ajaxcrawl_fetch_latency histogram
ajaxcrawl_fetch_latency_bucket{le="0.5"} 2
ajaxcrawl_fetch_latency_bucket{le="2"} 3
ajaxcrawl_fetch_latency_bucket{le="+Inf"} 4
ajaxcrawl_fetch_latency_sum 5.5
ajaxcrawl_fetch_latency_count 4
# TYPE ajaxcrawl_fetch_latency_min gauge
ajaxcrawl_fetch_latency_min 0.25
# TYPE ajaxcrawl_fetch_latency_max gauge
ajaxcrawl_fetch_latency_max 4
`
	if got := sb.String(); got != want {
		t.Fatalf("prometheus rendering drifted:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}
