package obs

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"
)

// CLIConfig is the telemetry surface the commands share: the
// -metrics-addr, -trace, -v, and -sample flags map onto it.
type CLIConfig struct {
	// MetricsAddr, when non-empty, starts the background debug server
	// (ServeDebug): /debug/metrics, /debug/status, /debug/trace/recent,
	// pprof.
	MetricsAddr string
	// TracePath, when non-empty, streams every span to a JSONL file.
	TracePath string
	// Verbose prints one line per finished span in ProgressSpans.
	Verbose bool
	// ProgressW receives the -v lines (default os.Stderr).
	ProgressW io.Writer
	// ProgressSpans filters which spans -v prints (empty = all).
	ProgressSpans []string
	// SampleEvery starts the runtime sampler at this cadence when > 0
	// (the -sample flag); call CLI.StartSampler with the command's
	// context to begin the loop.
	SampleEvery time.Duration
	// SampleCap bounds each sampled series (0 = sampler default).
	SampleCap int
}

// CLI bundles a command's wired telemetry: the context Telemetry, its
// registry, the span-aggregate sink (always installed, backing -report),
// the sampler (nil unless SampleEvery was set), and the flushing Close.
type CLI struct {
	Tel     *Telemetry
	Reg     *Registry
	Ring    *RingSink
	Spans   *AggSink
	Sampler *Sampler

	cfg     CLIConfig
	started time.Time
	closeFn func() error
}

// CLITelemetry wires a command's telemetry from its flags: a fresh
// registry, a ring buffer (for /debug/trace/recent), a span-aggregate
// sink (for perf reports), plus the optional trace file, progress
// printer, sampler, and debug server (which also serves /debug/status).
// CLI.Close flushes the trace file and must run before exit.
func CLITelemetry(cfg CLIConfig) (*CLI, error) {
	reg := NewRegistry()
	ring := NewRingSink(0)
	agg := NewAggSink()
	sinks := MultiSink{ring, agg}
	var fs *FileSink
	if cfg.TracePath != "" {
		var err error
		fs, err = NewFileSink(cfg.TracePath)
		if err != nil {
			return nil, err
		}
		sinks = append(sinks, fs)
	}
	if cfg.Verbose {
		w := cfg.ProgressW
		if w == nil {
			w = os.Stderr
		}
		sinks = append(sinks, NewProgressSink(w, cfg.ProgressSpans...))
	}
	cli := &CLI{
		Tel:     New(reg, sinks),
		Reg:     reg,
		Ring:    ring,
		Spans:   agg,
		cfg:     cfg,
		started: time.Now(),
		closeFn: func() error {
			if fs != nil {
				return fs.Close()
			}
			return nil
		},
	}
	if cfg.SampleEvery > 0 {
		cli.Sampler = NewSampler(reg, SamplerConfig{Cap: cfg.SampleCap})
	}
	if cfg.MetricsAddr != "" {
		mux := http.NewServeMux()
		RegisterDebug(mux, reg, ring)
		RegisterStatus(mux, StatusSource{Reg: reg, Sampler: cli.Sampler, StartedAt: cli.started})
		go func() {
			if err := http.ListenAndServe(cfg.MetricsAddr, mux); err != nil {
				fmt.Fprintf(os.Stderr, "obs: debug server: %v\n", err)
			}
		}()
	}
	return cli, nil
}

// StartSampler begins the sampling loop (no-op when -sample was off);
// it returns immediately and stops when ctx ends.
func (c *CLI) StartSampler(ctx context.Context) {
	if c.Sampler == nil {
		return
	}
	go c.Sampler.Run(ctx, c.cfg.SampleEvery)
}

// StartedAt is the process start time the status endpoint reports.
func (c *CLI) StartedAt() time.Time { return c.started }

// Close flushes and closes the trace file, if one was opened.
func (c *CLI) Close() error { return c.closeFn() }

// CrawlProgressSpans are the span names the crawling commands print
// under -v: coarse units, not per-event noise.
var CrawlProgressSpans = []string{SpanPageCrawl, SpanLineCrawl, SpanIndexBuild, SpanQueryExec}
