package obs

import (
	"fmt"
	"io"
	"os"
)

// CLIConfig is the telemetry surface the commands share: the
// -metrics-addr, -trace, and -v flags map onto it.
type CLIConfig struct {
	// MetricsAddr, when non-empty, starts the background debug server
	// (ServeDebug): /debug/metrics, /debug/trace/recent, pprof.
	MetricsAddr string
	// TracePath, when non-empty, streams every span to a JSONL file.
	TracePath string
	// Verbose prints one line per finished span in ProgressSpans.
	Verbose bool
	// ProgressW receives the -v lines (default os.Stderr).
	ProgressW io.Writer
	// ProgressSpans filters which spans -v prints (empty = all).
	ProgressSpans []string
}

// CLITelemetry wires a command's telemetry from its flags: a fresh
// registry, a ring buffer (for /debug/trace/recent), plus the optional
// trace file, progress printer, and debug server. The returned close
// function flushes the trace file and must run before exit.
func CLITelemetry(cfg CLIConfig) (*Telemetry, *Registry, func() error, error) {
	reg := NewRegistry()
	ring := NewRingSink(0)
	sinks := MultiSink{ring}
	var fs *FileSink
	if cfg.TracePath != "" {
		var err error
		fs, err = NewFileSink(cfg.TracePath)
		if err != nil {
			return nil, nil, nil, err
		}
		sinks = append(sinks, fs)
	}
	if cfg.Verbose {
		w := cfg.ProgressW
		if w == nil {
			w = os.Stderr
		}
		sinks = append(sinks, NewProgressSink(w, cfg.ProgressSpans...))
	}
	if cfg.MetricsAddr != "" {
		ServeDebug(cfg.MetricsAddr, reg, ring, func(err error) {
			fmt.Fprintf(os.Stderr, "obs: debug server: %v\n", err)
		})
	}
	closeFn := func() error {
		if fs != nil {
			return fs.Close()
		}
		return nil
	}
	return New(reg, sinks), reg, closeFn, nil
}

// CrawlProgressSpans are the span names the crawling commands print
// under -v: coarse units, not per-event noise.
var CrawlProgressSpans = []string{SpanPageCrawl, SpanLineCrawl, SpanIndexBuild, SpanQueryExec}
