// Package obs is the crawl telemetry subsystem: a dependency-free,
// concurrency-safe metrics registry (counters, gauges, fixed-bucket
// latency histograms), a structured trace layer whose spans travel on
// context.Context and drain into pluggable sinks, and HTTP exposure for
// both (/debug/metrics in JSON and Prometheus text, /debug/trace/recent,
// net/http/pprof).
//
// The package is engineered so that *disabled* telemetry costs almost
// nothing: every helper is nil-safe, so instrumented code does
//
//	tel := obs.From(ctx)              // nil when no telemetry installed
//	tel.Counter("crawl.events").Inc() // no-op on nil
//	ctx, sp := obs.StartSpan(ctx, obs.SpanPageCrawl)
//	defer sp.End(nil)                 // no-op on nil span
//
// unconditionally, and the whole chain folds into a context lookup plus
// a few nil checks when no Telemetry was installed with obs.With.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing int64 metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds one. Safe on a nil receiver (no-op).
func (c *Counter) Inc() { c.Add(1) }

// Add adds n. Safe on a nil receiver (no-op).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous int64 metric (e.g. in-flight process lines).
type Gauge struct {
	v atomic.Int64
}

// Set stores v. Safe on a nil receiver (no-op).
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adds delta (negative to decrement). Safe on a nil receiver.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// DefBuckets are the default latency histogram bucket upper bounds, in
// seconds — a log-ish ladder from 250µs to 10s that covers everything
// from an in-process handler fetch to a slow real network round trip.
var DefBuckets = []float64{
	0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket distribution metric. Observations are
// float64s (latencies are recorded in seconds); quantiles are estimated
// from the bucket counts by linear interpolation, the same estimate a
// Prometheus histogram_quantile would produce.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // ascending upper bounds; implicit +Inf tail bucket
	counts []int64   // len(bounds)+1
	sum    float64
	count  int64
	min    float64 // smallest observation; +Inf until the first sample
	max    float64 // largest observation; -Inf until the first sample
}

// Observe records one sample. Safe on a nil receiver (no-op).
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i]++
	h.sum += v
	h.count++
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.mu.Unlock()
}

// ObserveDuration records a duration sample in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.Observe(d.Seconds())
}

// HistogramSnapshot is a point-in-time summary of a Histogram.
type HistogramSnapshot struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	// Min and Max are the smallest and largest observations ever
	// recorded (0 while the histogram is empty). Quantile estimates are
	// clamped to [Min, Max], so a distribution whose mass sits in the
	// +Inf overflow bucket reports its true extreme rather than the
	// largest finite bucket bound.
	Min float64 `json:"min"`
	Max float64 `json:"max"`
	P50 float64 `json:"p50"`
	P95 float64 `json:"p95"`
	P99 float64 `json:"p99"`
	// Buckets holds the cumulative count per upper bound; the final
	// entry's Le is +Inf and its Count equals Count.
	Buckets []Bucket `json:"buckets"`
}

// Bucket is one cumulative histogram bucket.
type Bucket struct {
	Le    float64 `json:"le"` // upper bound; math.Inf(1) for the tail
	Count int64   `json:"count"`
}

// bucketWire is the JSON image of a Bucket: encoding/json rejects +Inf,
// so Le travels as the string Prometheus uses ("+Inf" for the tail).
type bucketWire struct {
	Le    string `json:"le"`
	Count int64  `json:"count"`
}

// MarshalJSON implements json.Marshaler.
func (b Bucket) MarshalJSON() ([]byte, error) {
	le := "+Inf"
	if !math.IsInf(b.Le, 1) {
		le = strconv.FormatFloat(b.Le, 'g', -1, 64)
	}
	return json.Marshal(bucketWire{Le: le, Count: b.Count})
}

// UnmarshalJSON implements json.Unmarshaler.
func (b *Bucket) UnmarshalJSON(data []byte) error {
	var w bucketWire
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	if w.Le == "+Inf" {
		b.Le = math.Inf(1)
	} else {
		v, err := strconv.ParseFloat(w.Le, 64)
		if err != nil {
			return fmt.Errorf("obs: bucket le %q: %w", w.Le, err)
		}
		b.Le = v
	}
	b.Count = w.Count
	return nil
}

// snapshot summarizes the histogram under its lock.
func (h *Histogram) snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistogramSnapshot{Count: h.count, Sum: h.sum}
	if h.count > 0 {
		s.Min, s.Max = h.min, h.max
	}
	cum := int64(0)
	for i, c := range h.counts {
		cum += c
		le := math.Inf(1)
		if i < len(h.bounds) {
			le = h.bounds[i]
		}
		s.Buckets = append(s.Buckets, Bucket{Le: le, Count: cum})
	}
	s.P50 = h.quantileLocked(0.50)
	s.P95 = h.quantileLocked(0.95)
	s.P99 = h.quantileLocked(0.99)
	return s
}

// quantileLocked estimates quantile q by interpolating within the bucket
// that contains the q·count-th sample, clamping the estimate to the
// observed [min, max] — in particular, mass in the +Inf overflow bucket
// reports the true maximum instead of saturating at the largest finite
// bucket bound. Callers hold h.mu.
func (h *Histogram) quantileLocked(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	target := q * float64(h.count)
	est := h.max
	cum := 0.0
	for i, c := range h.counts {
		prev := cum
		cum += float64(c)
		if cum < target || c == 0 {
			continue
		}
		if i >= len(h.bounds) {
			// Overflow bucket: no finite upper bound to interpolate to;
			// the observed maximum is the best (and a true) upper bound.
			return h.max
		}
		lo := 0.0
		if i > 0 {
			lo = h.bounds[i-1]
		}
		hi := h.bounds[i]
		est = lo + (hi-lo)*(target-prev)/float64(c)
		break
	}
	return math.Min(math.Max(est, h.min), h.max)
}

// Registry is a concurrent metrics registry. Metrics are created on
// first use and live for the registry's lifetime; all methods are safe
// for concurrent use and nil-safe (a nil *Registry hands out nil
// metrics, whose methods are no-ops).
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	now      func() time.Time
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// SetClock installs the time source stamped onto Snapshot.TakenAt (nil
// restores the wall clock). Injected by tests and the report recorder so
// snapshot-bearing artifacts can be byte-stable.
func (r *Registry) SetClock(now func() time.Time) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.now = now
	r.mu.Unlock()
}

// Now returns the registry's current time: the injected clock when one
// was set with SetClock, the wall clock otherwise.
func (r *Registry) Now() time.Time {
	if r == nil {
		return time.Now()
	}
	r.mu.RLock()
	now := r.now
	r.mu.RUnlock()
	if now != nil {
		return now()
	}
	return time.Now()
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket bounds on first use (DefBuckets when none are given). Bounds
// are fixed at creation; later calls ignore the argument.
func (r *Registry) Histogram(name string, bounds ...float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		b := append([]float64(nil), bounds...)
		sort.Float64s(b)
		h = &Histogram{
			bounds: b, counts: make([]int64, len(b)+1),
			min: math.Inf(1), max: math.Inf(-1),
		}
		r.hists[name] = h
	}
	return h
}

// Snapshot is a consistent-enough point-in-time view of a Registry:
// each metric is read atomically (counters/gauges) or under its own
// lock (histograms). It marshals to JSON directly and renders the
// Prometheus text exposition format with WritePrometheus.
type Snapshot struct {
	TakenAt    time.Time                    `json:"taken_at"`
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot captures every metric's current value. TakenAt comes from
// the registry clock (SetClock), so snapshots embedded in golden-tested
// artifacts can be pinned.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		TakenAt:    r.Now(),
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]int64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	if r == nil {
		return s
	}
	r.mu.RLock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.RUnlock()
	for k, c := range counters {
		s.Counters[k] = c.Value()
	}
	for k, g := range gauges {
		s.Gauges[k] = g.Value()
	}
	for k, h := range hists {
		s.Histograms[k] = h.snapshot()
	}
	return s
}

// MarshalJSONIndent renders the snapshot as pretty-printed JSON.
func (s Snapshot) MarshalJSONIndent() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// promName converts a dotted metric name to a Prometheus-legal one:
// "fetch.latency" -> "ajaxcrawl_fetch_latency".
func promName(name string) string {
	mangled := strings.NewReplacer(".", "_", "-", "_", " ", "_").Replace(name)
	return "ajaxcrawl_" + mangled
}

// promFloat renders a float the way the exposition format expects.
func promFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return promNum(v)
}

// promNum renders a finite float; %g keeps integers bare ("5") and small
// decimals exact ("0.005").
func promNum(v float64) string {
	return fmt.Sprintf("%g", v)
}

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format (version 0.0.4), metrics sorted by name so output is stable.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	var names []string
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		pn := promName(n)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", pn, pn, s.Counters[n]); err != nil {
			return err
		}
	}
	names = names[:0]
	for n := range s.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		pn := promName(n)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", pn, pn, s.Gauges[n]); err != nil {
			return err
		}
	}
	names = names[:0]
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		pn := promName(n)
		h := s.Histograms[n]
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", pn); err != nil {
			return err
		}
		for _, b := range h.Buckets {
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", pn, promFloat(b.Le), b.Count); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", pn, promNum(h.Sum), pn, h.Count); err != nil {
			return err
		}
		// Observed extremes travel as companion gauges (no histogram
		// sub-series exists for them in the exposition format).
		if _, err := fmt.Fprintf(w, "# TYPE %s_min gauge\n%s_min %s\n# TYPE %s_max gauge\n%s_max %s\n",
			pn, pn, promNum(h.Min), pn, pn, promNum(h.Max)); err != nil {
			return err
		}
	}
	return nil
}
