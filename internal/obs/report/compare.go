package report

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// Verdict classifies one metric's movement between two reports.
type Verdict string

const (
	// VerdictOK: within the tolerance band (or below the noise floor).
	VerdictOK Verdict = "ok"
	// VerdictImproved: better than the band (lower, for cost metrics).
	VerdictImproved Verdict = "improved"
	// VerdictRegressed: worse than the band — gates CI when the metric
	// is a gating one.
	VerdictRegressed Verdict = "regressed"
	// VerdictDrifted: an informational metric (work counters, span
	// counts) moved beyond the band — the workload changed, which makes
	// timing comparisons suspect but is not itself a regression.
	VerdictDrifted Verdict = "drifted"
	// VerdictAdded / VerdictRemoved: the metric exists on only one side.
	VerdictAdded   Verdict = "added"
	VerdictRemoved Verdict = "removed"
)

// Tolerance configures the comparator's bands and noise floors. Zero
// values select defaults tuned for CI wall-clock noise.
type Tolerance struct {
	// Rel is the symmetric relative band: new/old beyond 1±Rel is a
	// verdict. Default 0.25.
	Rel float64
	// MinWall ignores wall/CPU metrics where both sides sit under this
	// floor (scheduler noise dominates them). Default 20ms.
	MinWall time.Duration
	// MinSpanMean ignores span-mean metrics where both sides sit under
	// this floor. Default 200µs.
	MinSpanMean time.Duration
	// MinAllocBytes ignores allocation metrics where both sides sit
	// under this floor. Default 1 MiB.
	MinAllocBytes int64
	// MinCount ignores span aggregates with fewer samples than this on
	// either side. Default 2.
	MinCount int64
}

func (t Tolerance) resolved() Tolerance {
	if t.Rel <= 0 {
		t.Rel = 0.25
	}
	if t.MinWall <= 0 {
		t.MinWall = 20 * time.Millisecond
	}
	if t.MinSpanMean <= 0 {
		t.MinSpanMean = 200 * time.Microsecond
	}
	if t.MinAllocBytes <= 0 {
		t.MinAllocBytes = 1 << 20
	}
	if t.MinCount <= 0 {
		t.MinCount = 2
	}
	return t
}

// Delta is one compared metric.
type Delta struct {
	// Metric is the stable identifier, e.g. "phase/t7.1/wall_ms",
	// "span/page.crawl/mean_ms", "counter/fetch.requests".
	Metric  string  `json:"metric"`
	Old     float64 `json:"old"`
	New     float64 `json:"new"`
	Ratio   float64 `json:"ratio"` // new/old; 0 when old is 0
	Verdict Verdict `json:"verdict"`
	// Gating marks metrics whose regression fails the comparison (cost
	// metrics: wall, CPU, alloc, span means). Informational metrics
	// (work counters) drift instead.
	Gating bool `json:"gating"`
}

// Comparison is the machine-readable diff of two reports.
type Comparison struct {
	Old string `json:"old"` // Meta.Name of the baseline
	New string `json:"new"`
	// SiteMismatch flags incomparable workloads (different site
	// config); deltas are still produced, verdicts are suspect.
	SiteMismatch bool    `json:"site_mismatch,omitempty"`
	Deltas       []Delta `json:"deltas"`
	Regressions  int     `json:"regressions"`
	Improvements int     `json:"improvements"`
	Drifts       int     `json:"drifts"`
}

// Regressed reports whether any gating metric regressed — the CI gate
// and the comparator's exit-code driver.
func (c *Comparison) Regressed() bool { return c.Regressions > 0 }

// compareCtx accumulates deltas with shared tolerance state.
type compareCtx struct {
	tol Tolerance
	out []Delta
}

// add classifies one lower-is-better metric. floor suppresses verdicts
// when both sides sit under it; gating marks cost metrics.
func (cc *compareCtx) add(metric string, oldV, newV, floor float64, gating bool) {
	d := Delta{Metric: metric, Old: oldV, New: newV, Gating: gating, Verdict: VerdictOK}
	if oldV > 0 {
		d.Ratio = newV / oldV
	}
	switch {
	case oldV < floor && newV < floor:
		// Noise floor: both too small to judge.
	case oldV == 0 && newV > 0:
		d.Verdict = VerdictAdded
		if gating {
			d.Verdict = VerdictRegressed
		}
	case newV == 0 && oldV > 0:
		d.Verdict = VerdictRemoved
		if gating {
			d.Verdict = VerdictImproved
		}
	case d.Ratio > 1+cc.tol.Rel:
		d.Verdict = VerdictRegressed
		if !gating {
			d.Verdict = VerdictDrifted
		}
	case d.Ratio < 1-cc.tol.Rel:
		d.Verdict = VerdictImproved
		if !gating {
			d.Verdict = VerdictDrifted
		}
	}
	cc.out = append(cc.out, d)
}

// Compare diffs two reports metric by metric under the tolerance bands:
// per-phase wall/CPU/allocation costs and per-span-type mean durations
// gate; work counters (registry counters, span counts) are
// informational drift. Lower is better for every gated metric.
func Compare(oldR, newR *RunReport, tol Tolerance) *Comparison {
	cc := &compareCtx{tol: tol.resolved()}
	c := &Comparison{Old: oldR.Meta.Name, New: newR.Meta.Name}
	if oldR.Site != newR.Site {
		c.SiteMismatch = true
	}

	msF := func(ns int64) float64 { return float64(ns) / 1e6 }
	wallFloor := msF(cc.tol.MinWall.Nanoseconds())
	spanFloor := msF(cc.tol.MinSpanMean.Nanoseconds())
	allocFloor := float64(cc.tol.MinAllocBytes) / (1 << 20)

	// Phases: union, old-report order first.
	seenPhase := map[string]bool{}
	for _, op := range oldR.Phases {
		seenPhase[op.Name] = true
		np := newR.Phase(op.Name)
		if np == nil {
			cc.out = append(cc.out, Delta{
				Metric: "phase/" + op.Name + "/wall_ms", Old: msF(op.WallNS),
				Verdict: VerdictRemoved,
			})
			continue
		}
		cc.add("phase/"+op.Name+"/wall_ms", msF(op.WallNS), msF(np.WallNS), wallFloor, true)
		cc.add("phase/"+op.Name+"/cpu_ms", msF(op.CPUNS), msF(np.CPUNS), wallFloor, true)
		cc.add("phase/"+op.Name+"/alloc_mb",
			float64(op.AllocBytes)/(1<<20), float64(np.AllocBytes)/(1<<20), allocFloor, true)
		cc.add("phase/"+op.Name+"/gc_cycles", float64(op.GCCycles), float64(np.GCCycles), 4, false)
	}
	for _, np := range newR.Phases {
		if !seenPhase[np.Name] {
			cc.out = append(cc.out, Delta{
				Metric: "phase/" + np.Name + "/wall_ms", New: msF(np.WallNS),
				Verdict: VerdictAdded,
			})
		}
	}

	// Span aggregates: mean duration gates, count drifts.
	seenSpan := map[string]bool{}
	for _, osp := range oldR.Spans {
		seenSpan[osp.Name] = true
		nsp := newR.Span(osp.Name)
		if nsp == nil {
			cc.out = append(cc.out, Delta{
				Metric: "span/" + osp.Name + "/mean_ms", Old: osp.MeanNS / 1e6,
				Verdict: VerdictRemoved,
			})
			continue
		}
		if osp.Count >= cc.tol.MinCount && nsp.Count >= cc.tol.MinCount {
			cc.add("span/"+osp.Name+"/mean_ms", osp.MeanNS/1e6, nsp.MeanNS/1e6, spanFloor, true)
		}
		cc.add("span/"+osp.Name+"/count", float64(osp.Count), float64(nsp.Count), 0, false)
	}
	for _, nsp := range newR.Spans {
		if !seenSpan[nsp.Name] {
			cc.out = append(cc.out, Delta{
				Metric: "span/" + nsp.Name + "/mean_ms", New: nsp.MeanNS / 1e6,
				Verdict: VerdictAdded,
			})
		}
	}
	// Registry counters: pure work measures — informational drift only,
	// and only when they actually moved (a full dump would drown the
	// table in equal rows).
	for name, ov := range oldR.Registry.Counters {
		nv, ok := newR.Registry.Counters[name]
		if !ok {
			cc.out = append(cc.out, Delta{Metric: "counter/" + name, Old: float64(ov), Verdict: VerdictRemoved})
			continue
		}
		if ov == nv {
			continue
		}
		cc.add("counter/"+name, float64(ov), float64(nv), 0, false)
	}
	for name, nv := range newR.Registry.Counters {
		if _, ok := oldR.Registry.Counters[name]; !ok {
			cc.out = append(cc.out, Delta{Metric: "counter/" + name, New: float64(nv), Verdict: VerdictAdded})
		}
	}

	c.Deltas = cc.out
	for _, d := range c.Deltas {
		switch {
		case d.Verdict == VerdictRegressed && d.Gating:
			c.Regressions++
		case d.Verdict == VerdictImproved && d.Gating:
			c.Improvements++
		case d.Verdict == VerdictDrifted:
			c.Drifts++
		}
	}
	return c
}

// WriteTable renders the human diff: every non-ok delta plus a summary
// line; WriteTableAll includes the ok rows too.
func (c *Comparison) WriteTable(w io.Writer) error { return c.writeTable(w, false) }

// WriteTableAll renders every compared metric, ok rows included.
func (c *Comparison) WriteTableAll(w io.Writer) error { return c.writeTable(w, true) }

func (c *Comparison) writeTable(w io.Writer, all bool) error {
	if _, err := fmt.Fprintf(w, "perf comparison: %s -> %s\n", c.Old, c.New); err != nil {
		return err
	}
	if c.SiteMismatch {
		if _, err := fmt.Fprintln(w, "WARNING: site configs differ; workloads are not comparable"); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%-44s %14s %14s %8s  %s\n",
		"metric", "old", "new", "ratio", "verdict"); err != nil {
		return err
	}
	shown := 0
	for _, d := range c.Deltas {
		if !all && d.Verdict == VerdictOK {
			continue
		}
		shown++
		ratio := "-"
		if d.Ratio > 0 {
			ratio = fmt.Sprintf("%.2fx", d.Ratio)
		}
		mark := ""
		if d.Verdict == VerdictRegressed && d.Gating {
			mark = "  <-- REGRESSION"
		}
		if _, err := fmt.Fprintf(w, "%-44s %14.3f %14.3f %8s  %s%s\n",
			d.Metric, d.Old, d.New, ratio, d.Verdict, mark); err != nil {
			return err
		}
	}
	if shown == 0 {
		if _, err := fmt.Fprintln(w, "(all metrics within tolerance)"); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "summary: %d regressions, %d improvements, %d drifts over %d metrics\n",
		c.Regressions, c.Improvements, c.Drifts, len(c.Deltas))
	return err
}

// WriteJSON renders the machine-readable verdict document.
func (c *Comparison) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(c)
}
