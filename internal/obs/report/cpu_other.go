//go:build !unix

package report

// processCPU is unavailable without rusage; phases report CPUNS 0.
func processCPU() int64 { return 0 }
