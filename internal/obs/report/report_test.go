package report

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"ajaxcrawl/internal/obs"
)

// fixedRecorder builds a recorder whose every measurement source is
// scripted, so the assembled artifact is byte-stable.
func fixedRecorder() *Recorder {
	rec := NewRecorder(
		Meta{Name: "BENCH_T", Repo: "ajaxcrawl", PR: 7, Notes: "test run"},
		Site{Videos: 60, Seed: 2008, LatencyBaseMS: 60, LatencyPerKBMS: 4},
	)
	t0 := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	tick := 0
	rec.SetClock(func() time.Time {
		tick++
		return t0.Add(time.Duration(tick) * time.Second)
	})
	cpuTick := int64(0)
	rec.SetCPUReader(func() int64 {
		cpuTick += 250e6 // each read advances CPU by 250ms
		return cpuTick
	})
	memTick := uint64(0)
	rec.SetMemReader(func(m *runtime.MemStats) {
		memTick++
		*m = runtime.MemStats{
			TotalAlloc: memTick << 20, // +1 MiB per read
			Mallocs:    memTick * 1000,
			NumGC:      uint32(memTick),
			HeapAlloc:  2 << 20,
		}
	})
	rec.SetHost(Host{GoVersion: "go1.99", OS: "linux", Arch: "amd64", NumCPU: 8})
	return rec
}

func fixedReport() *RunReport {
	rec := fixedRecorder()
	end := rec.StartPhase("t7.1")
	end(nil)
	end = rec.StartPhase("t7.2")
	end(errors.New("boom"))

	reg := obs.NewRegistry()
	reg.SetClock(func() time.Time { return time.Date(2026, 1, 2, 3, 5, 0, 0, time.UTC) })
	reg.Counter("fetch.requests").Add(42)
	spans := []obs.SpanAgg{{Name: "page.crawl", Count: 6, TotalNS: 600e6, MinNS: 50e6, MaxNS: 200e6, MeanNS: 100e6}}
	series := []obs.SeriesSnapshot{{
		Name:   "frontier.depth",
		Points: []obs.Point{{T: time.Date(2026, 1, 2, 3, 4, 10, 0, time.UTC), V: 7}},
	}}
	return rec.Finish(reg.Snapshot(), spans, series)
}

func TestRecorderPhaseDeltas(t *testing.T) {
	rep := fixedReport()
	if rep.Schema != SchemaVersion {
		t.Fatalf("schema = %d, want %d", rep.Schema, SchemaVersion)
	}
	p := rep.Phase("t7.1")
	if p == nil {
		t.Fatal("phase t7.1 missing")
	}
	if p.WallNS != int64(time.Second) {
		t.Errorf("wall = %d, want 1s", p.WallNS)
	}
	if p.CPUNS != 250e6 {
		t.Errorf("cpu = %d, want 250ms", p.CPUNS)
	}
	if p.AllocBytes != 1<<20 || p.Mallocs != 1000 || p.GCCycles != 1 {
		t.Errorf("alloc deltas = %d/%d/%d, want 1MiB/1000/1", p.AllocBytes, p.Mallocs, p.GCCycles)
	}
	if p.Err != "" {
		t.Errorf("t7.1 err = %q, want empty", p.Err)
	}
	if p2 := rep.Phase("t7.2"); p2 == nil || p2.Err != "boom" {
		t.Fatalf("phase t7.2 = %+v, want err boom", p2)
	}
	if rep.Phase("nope") != nil || rep.Span("nope") != nil {
		t.Fatal("missing lookups must return nil")
	}
	if sp := rep.Span("page.crawl"); sp == nil || sp.Count != 6 {
		t.Fatalf("span lookup = %+v", sp)
	}
}

func TestReportSaveLoadRoundTrip(t *testing.T) {
	rep := fixedReport()
	path := filepath.Join(t.TempDir(), "BENCH_T.json")
	if err := rep.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(rep)
	b, _ := json.Marshal(got)
	if string(a) != string(b) {
		t.Fatalf("round trip changed the report:\nsaved:  %s\nloaded: %s", a, b)
	}
	// Saving twice is stable (golden property: same inputs, same bytes).
	path2 := filepath.Join(t.TempDir(), "again.json")
	if err := got.Save(path2); err != nil {
		t.Fatal(err)
	}
	b1, _ := os.ReadFile(path)
	b2, _ := os.ReadFile(path2)
	if string(b1) != string(b2) {
		t.Fatal("re-saving a loaded report changed its bytes")
	}
}

func TestReportGolden(t *testing.T) {
	rep := fixedReport()
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	golden := strings.TrimSpace(`
{
  "schema": 1,
  "meta": {
    "name": "BENCH_T",
    "repo": "ajaxcrawl",
    "pr": 7,
    "notes": "test run"
  },
  "created_at": "2026-01-02T03:04:10Z",
  "host": {
    "go_version": "go1.99",
    "os": "linux",
    "arch": "amd64",
    "num_cpu": 8
  },
  "site": {
    "videos": 60,
    "seed": 2008,
    "latency_base_ms": 60,
    "latency_per_kb_ms": 4
  },
  "phases": [
    {
      "name": "t7.1",
      "wall_ns": 1000000000,
      "cpu_ns": 250000000,
      "alloc_bytes": 1048576,
      "mallocs": 1000,
      "gc_cycles": 1,
      "heap_bytes_end": 2097152
    },
    {
      "name": "t7.2",
      "wall_ns": 1000000000,
      "cpu_ns": 250000000,
      "alloc_bytes": 1048576,
      "mallocs": 1000,
      "gc_cycles": 1,
      "heap_bytes_end": 2097152,
      "err": "boom"
    }
  ],
  "spans": [
    {
      "name": "page.crawl",
      "count": 6,
      "errors": 0,
      "total_ns": 600000000,
      "min_ns": 50000000,
      "max_ns": 200000000,
      "mean_ns": 100000000
    }
  ],
  "registry": {
    "taken_at": "2026-01-02T03:05:00Z",
    "counters": {
      "fetch.requests": 42
    },
    "gauges": {},
    "histograms": {}
  },
  "series": [
    {
      "name": "frontier.depth",
      "points": [
        {
          "t": "2026-01-02T03:04:10Z",
          "v": 7
        }
      ]
    }
  ]
}`)
	if string(b) != golden {
		t.Fatalf("report JSON drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", b, golden)
	}
}

func TestLoadRejectsBadArtifacts(t *testing.T) {
	dir := t.TempDir()

	notReport := filepath.Join(dir, "not.json")
	os.WriteFile(notReport, []byte(`{"hello":"world"}`), 0o644)
	if _, err := Load(notReport); err == nil || !strings.Contains(err.Error(), "not a run report") {
		t.Fatalf("schema-less load err = %v", err)
	}

	future := filepath.Join(dir, "future.json")
	os.WriteFile(future, []byte(`{"schema":99}`), 0o644)
	if _, err := Load(future); err == nil || !strings.Contains(err.Error(), "newer than supported") {
		t.Fatalf("future-schema load err = %v", err)
	}

	if _, err := Load(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file must error")
	}

	garbled := filepath.Join(dir, "garbled.json")
	os.WriteFile(garbled, []byte(`{`), 0o644)
	if _, err := Load(garbled); err == nil {
		t.Fatal("garbled JSON must error")
	}
}
