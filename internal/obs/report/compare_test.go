package report

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"ajaxcrawl/internal/obs"
)

// benchReport builds a minimal artifact: one phase with the given wall
// time (ms), one page.crawl span with the given mean (ms), one counter.
func benchReport(name string, wallMS, spanMeanMS float64, requests int64) *RunReport {
	return &RunReport{
		Schema: SchemaVersion,
		Meta:   Meta{Name: name},
		Site:   Site{Videos: 60, Seed: 2008},
		Phases: []Phase{{
			Name:       "t7.2",
			WallNS:     int64(wallMS * 1e6),
			CPUNS:      int64(wallMS * 1e6),
			AllocBytes: 64 << 20,
		}},
		Spans: []obs.SpanAgg{{
			Name:   "page.crawl",
			Count:  10,
			MeanNS: spanMeanMS * 1e6,
		}},
		Registry: obs.Snapshot{Counters: map[string]int64{"fetch.requests": requests}},
	}
}

func TestCompareWithinTolerance(t *testing.T) {
	old := benchReport("BENCH_6", 1000, 5, 100)
	young := benchReport("BENCH_7", 1100, 5.5, 100) // +10%, inside the 25% band
	c := Compare(old, young, Tolerance{})
	if c.Regressed() {
		t.Fatalf("within-band run regressed: %+v", c.Deltas)
	}
	if c.Regressions != 0 || c.Improvements != 0 {
		t.Fatalf("summary = %d regressions / %d improvements, want 0/0", c.Regressions, c.Improvements)
	}
	var buf bytes.Buffer
	if err := c.WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "(all metrics within tolerance)") {
		t.Fatalf("table = %s", buf.String())
	}
}

func TestCompareDetectsRegression(t *testing.T) {
	old := benchReport("BENCH_6", 1000, 5, 100)
	young := benchReport("BENCH_7", 2000, 5, 100) // wall doubled: synthetic regression
	c := Compare(old, young, Tolerance{})
	if !c.Regressed() {
		t.Fatal("2x wall time must regress — this is the CI exit-code driver")
	}
	var wall *Delta
	for i := range c.Deltas {
		if c.Deltas[i].Metric == "phase/t7.2/wall_ms" {
			wall = &c.Deltas[i]
		}
	}
	if wall == nil || wall.Verdict != VerdictRegressed || !wall.Gating || wall.Ratio != 2 {
		t.Fatalf("wall delta = %+v", wall)
	}
	var buf bytes.Buffer
	if err := c.WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "<-- REGRESSION") {
		t.Fatalf("table missing regression marker:\n%s", buf.String())
	}
}

func TestCompareDetectsImprovement(t *testing.T) {
	old := benchReport("BENCH_6", 1000, 5, 100)
	young := benchReport("BENCH_7", 500, 2, 100)
	c := Compare(old, young, Tolerance{})
	if c.Regressed() {
		t.Fatalf("faster run regressed: %+v", c.Deltas)
	}
	if c.Improvements == 0 {
		t.Fatalf("no improvements counted: %+v", c.Deltas)
	}
}

func TestCompareNoiseFloors(t *testing.T) {
	// 3x ratio, but both sides sit under the 20ms wall floor and the
	// span mean under 200µs: scheduler noise, not a verdict.
	old := benchReport("BENCH_6", 5, 0.05, 100)
	young := benchReport("BENCH_7", 15, 0.15, 100)
	old.Phases[0].AllocBytes = 100 << 10
	young.Phases[0].AllocBytes = 300 << 10
	c := Compare(old, young, Tolerance{})
	if c.Regressed() {
		t.Fatalf("sub-floor jitter regressed: %+v", c.Deltas)
	}
}

func TestCompareSpanMinCount(t *testing.T) {
	old := benchReport("BENCH_6", 1000, 5, 100)
	young := benchReport("BENCH_7", 1000, 50, 100) // 10x span mean...
	old.Spans[0].Count = 1                         // ...but a single old sample
	c := Compare(old, young, Tolerance{})
	for _, d := range c.Deltas {
		if d.Metric == "span/page.crawl/mean_ms" {
			t.Fatalf("mean compared despite count < MinCount: %+v", d)
		}
	}
}

func TestCompareCounterDrift(t *testing.T) {
	old := benchReport("BENCH_6", 1000, 5, 100)
	young := benchReport("BENCH_7", 1000, 5, 200) // 2x the work
	c := Compare(old, young, Tolerance{})
	if c.Regressed() {
		t.Fatal("work counters must not gate")
	}
	if c.Drifts == 0 {
		t.Fatalf("2x fetch.requests must drift: %+v", c.Deltas)
	}
}

func TestCompareAddedRemoved(t *testing.T) {
	old := benchReport("BENCH_6", 1000, 5, 100)
	young := benchReport("BENCH_7", 1000, 5, 100)
	young.Phases = append(young.Phases, Phase{Name: "t7.5", WallNS: 1e9})
	old.Spans = append(old.Spans, obs.SpanAgg{Name: "gone.span", Count: 3, MeanNS: 1e6})
	young.Registry.Counters["new.counter"] = 1
	c := Compare(old, young, Tolerance{})
	byMetric := map[string]Verdict{}
	for _, d := range c.Deltas {
		byMetric[d.Metric] = d.Verdict
	}
	if byMetric["phase/t7.5/wall_ms"] != VerdictAdded {
		t.Errorf("new phase verdict = %q", byMetric["phase/t7.5/wall_ms"])
	}
	if byMetric["span/gone.span/mean_ms"] != VerdictRemoved {
		t.Errorf("removed span verdict = %q", byMetric["span/gone.span/mean_ms"])
	}
	if byMetric["counter/new.counter"] != VerdictAdded {
		t.Errorf("new counter verdict = %q", byMetric["counter/new.counter"])
	}
	if c.Regressed() {
		t.Fatal("added/removed inventory must not gate")
	}
}

func TestCompareSiteMismatch(t *testing.T) {
	old := benchReport("BENCH_6", 1000, 5, 100)
	young := benchReport("BENCH_7", 1000, 5, 100)
	young.Site.Videos = 500
	c := Compare(old, young, Tolerance{})
	if !c.SiteMismatch {
		t.Fatal("different workloads must flag SiteMismatch")
	}
	var buf bytes.Buffer
	if err := c.WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "not comparable") {
		t.Fatalf("table missing mismatch warning:\n%s", buf.String())
	}
}

func TestCompareCustomTolerance(t *testing.T) {
	old := benchReport("BENCH_6", 1000, 5, 100)
	young := benchReport("BENCH_7", 1400, 5, 100) // +40%
	if !Compare(old, young, Tolerance{}).Regressed() {
		t.Fatal("+40% must regress at the default 25% band")
	}
	if Compare(old, young, Tolerance{Rel: 0.5}).Regressed() {
		t.Fatal("+40% must pass a 50% band")
	}
}

func TestComparisonWriteJSON(t *testing.T) {
	c := Compare(benchReport("a", 1000, 5, 100), benchReport("b", 2000, 5, 100), Tolerance{})
	var buf bytes.Buffer
	if err := c.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Comparison
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("verdict document not parseable: %v", err)
	}
	if back.Regressions != c.Regressions || len(back.Deltas) != len(c.Deltas) {
		t.Fatalf("round trip lost data: %+v vs %+v", back, c)
	}
	var buf2 bytes.Buffer
	if err := c.WriteTableAll(&buf2); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf2.String(), "ok") {
		t.Fatal("WriteTableAll must include ok rows")
	}
}
