//go:build unix

package report

import "syscall"

// processCPU returns the process's cumulative user+system CPU time in
// nanoseconds, from getrusage(2).
func processCPU() int64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return ru.Utime.Nano() + ru.Stime.Nano()
}
