// Package report is the perf-trajectory layer: a versioned, JSON-stable
// RunReport artifact (the BENCH_<n>.json files checked in per PR), the
// Recorder that measures it phase by phase, and a tolerance-banded
// comparator that diffs two artifacts and gates CI on regressions.
//
// A RunReport captures one ajaxbench run end to end: per-phase wall/CPU/
// allocation stats (runtime.ReadMemStats + rusage deltas), span-duration
// aggregates per span type (from obs.AggSink), the full metrics-registry
// snapshot, and optionally the sampler's time series. Every timing
// source is injectable, so the artifact's shape is pinned by golden
// tests even though real runs measure real time.
package report

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"ajaxcrawl/internal/obs"
)

// SchemaVersion is bumped whenever RunReport's JSON shape changes
// incompatibly; Load rejects artifacts from a newer schema than it
// understands.
const SchemaVersion = 1

// Meta identifies the run that produced an artifact.
type Meta struct {
	// Name is the artifact's logical name, e.g. "BENCH_7".
	Name string `json:"name"`
	// Repo and PR locate the code under measurement.
	Repo string `json:"repo,omitempty"`
	PR   int    `json:"pr,omitempty"`
	// Notes carries free-form context (flags, machine class).
	Notes string `json:"notes,omitempty"`
}

// Host describes the machine and toolchain behind the numbers.
type Host struct {
	GoVersion string `json:"go_version"`
	OS        string `json:"os"`
	Arch      string `json:"arch"`
	NumCPU    int    `json:"num_cpu"`
}

// Site pins the synthetic-site configuration a run crawled, so two
// artifacts are only comparable when their workloads match.
type Site struct {
	Videos         int     `json:"videos"`
	Seed           int64   `json:"seed"`
	LatencyBaseMS  float64 `json:"latency_base_ms"`
	LatencyPerKBMS float64 `json:"latency_per_kb_ms"`
}

// Phase is one measured unit of a run (one ajaxbench experiment): wall
// time, CPU time (rusage user+system; 0 on platforms without rusage),
// and allocation deltas from runtime.ReadMemStats.
type Phase struct {
	Name string `json:"name"`
	// WallNS is elapsed time on the recorder's clock.
	WallNS int64 `json:"wall_ns"`
	// CPUNS is the process's user+system CPU delta across the phase.
	CPUNS int64 `json:"cpu_ns"`
	// AllocBytes is the TotalAlloc delta (bytes allocated, not live).
	AllocBytes int64 `json:"alloc_bytes"`
	// Mallocs is the heap-object allocation count delta.
	Mallocs int64 `json:"mallocs"`
	// GCCycles is the completed-GC delta.
	GCCycles int64 `json:"gc_cycles"`
	// HeapBytesEnd is live heap at phase end.
	HeapBytesEnd int64 `json:"heap_bytes_end"`
	// Err records a failed phase; its numbers still describe the
	// attempt.
	Err string `json:"err,omitempty"`
}

// RunReport is the versioned perf artifact. Field order (and Go's
// sorted-map JSON encoding inside the registry snapshot) keeps the
// serialized form stable for golden tests and reviewable diffs.
type RunReport struct {
	Schema    int       `json:"schema"`
	Meta      Meta      `json:"meta"`
	CreatedAt time.Time `json:"created_at"`
	Host      Host      `json:"host"`
	Site      Site      `json:"site"`
	Phases    []Phase   `json:"phases"`
	// Spans aggregates every emitted span by type: count, errors,
	// total/min/max/mean duration.
	Spans []obs.SpanAgg `json:"spans"`
	// Registry is the full end-of-run metrics snapshot.
	Registry obs.Snapshot `json:"registry"`
	// Series are the sampler's retained time series, when sampling ran.
	Series []obs.SeriesSnapshot `json:"series,omitempty"`
}

// Phase returns the named phase, or nil.
func (r *RunReport) Phase(name string) *Phase {
	for i := range r.Phases {
		if r.Phases[i].Name == name {
			return &r.Phases[i]
		}
	}
	return nil
}

// Span returns the named span aggregate, or nil.
func (r *RunReport) Span(name string) *obs.SpanAgg {
	for i := range r.Spans {
		if r.Spans[i].Name == name {
			return &r.Spans[i]
		}
	}
	return nil
}

// Save writes the report as pretty-printed JSON via temp-file + rename,
// so a crash mid-write can't leave a torn artifact.
func (r *RunReport) Save(path string) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("report: encode: %w", err)
	}
	b = append(b, '\n')
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".report-*")
	if err != nil {
		return fmt.Errorf("report: save: %w", err)
	}
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("report: save: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("report: save: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("report: save: %w", err)
	}
	return nil
}

// Load reads an artifact written by Save and validates its schema.
func Load(path string) (*RunReport, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("report: load: %w", err)
	}
	var r RunReport
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("report: load %s: %w", path, err)
	}
	if r.Schema == 0 {
		return nil, fmt.Errorf("report: load %s: not a run report (no schema field)", path)
	}
	if r.Schema > SchemaVersion {
		return nil, fmt.Errorf("report: load %s: schema %d is newer than supported %d",
			path, r.Schema, SchemaVersion)
	}
	return &r, nil
}

// Recorder measures a run phase by phase and assembles the RunReport.
// The clock, memory reader, CPU reader, and host description are all
// injectable so tests produce byte-stable artifacts.
type Recorder struct {
	meta Meta
	site Site
	host Host

	now     func() time.Time
	readMem func(*runtime.MemStats)
	cpu     func() int64

	phases []Phase
}

// NewRecorder starts a recorder with real clocks and the current host.
func NewRecorder(meta Meta, site Site) *Recorder {
	return &Recorder{
		meta: meta,
		site: site,
		host: Host{
			GoVersion: runtime.Version(),
			OS:        runtime.GOOS,
			Arch:      runtime.GOARCH,
			NumCPU:    runtime.NumCPU(),
		},
		now:     time.Now,
		readMem: runtime.ReadMemStats,
		cpu:     processCPU,
	}
}

// SetClock injects the recorder's time source (tests).
func (rec *Recorder) SetClock(now func() time.Time) { rec.now = now }

// SetMemReader injects the MemStats source (tests).
func (rec *Recorder) SetMemReader(f func(*runtime.MemStats)) { rec.readMem = f }

// SetCPUReader injects the process-CPU source (tests).
func (rec *Recorder) SetCPUReader(f func() int64) { rec.cpu = f }

// SetHost overrides the recorded host description (tests).
func (rec *Recorder) SetHost(h Host) { rec.host = h }

// StartPhase begins measuring one named phase; the returned func ends
// it, recording err (nil for success). Phases append in call order.
func (rec *Recorder) StartPhase(name string) func(err error) {
	start := rec.now()
	cpu0 := rec.cpu()
	var m0 runtime.MemStats
	rec.readMem(&m0)
	return func(err error) {
		var m1 runtime.MemStats
		rec.readMem(&m1)
		p := Phase{
			Name:         name,
			WallNS:       rec.now().Sub(start).Nanoseconds(),
			CPUNS:        rec.cpu() - cpu0,
			AllocBytes:   int64(m1.TotalAlloc - m0.TotalAlloc),
			Mallocs:      int64(m1.Mallocs - m0.Mallocs),
			GCCycles:     int64(m1.NumGC - m0.NumGC),
			HeapBytesEnd: int64(m1.HeapAlloc),
		}
		if err != nil {
			p.Err = err.Error()
		}
		rec.phases = append(rec.phases, p)
	}
}

// Finish assembles the artifact from the recorded phases plus the
// run-wide telemetry: the registry snapshot, span aggregates, and
// (optionally) sampler series.
func (rec *Recorder) Finish(reg obs.Snapshot, spans []obs.SpanAgg, series []obs.SeriesSnapshot) *RunReport {
	return &RunReport{
		Schema:    SchemaVersion,
		Meta:      rec.meta,
		CreatedAt: rec.now(),
		Host:      rec.host,
		Site:      rec.site,
		Phases:    append([]Phase(nil), rec.phases...),
		Spans:     spans,
		Registry:  reg,
		Series:    series,
	}
}
