package obs

import (
	"encoding/json"
	"fmt"
	"html"
	"net/http"
	"strings"
	"time"
)

// Metric names the status endpoint reads. The crawl pipeline publishes
// them (MPCrawler.Stream / the frontier); serving daemons simply report
// zeros for the crawl block and live HTTP numbers instead.
const (
	MetricPagesDone     = "crawl.pages.done"
	MetricPagesTotal    = "crawl.pages.total"
	MetricLines         = "crawl.lines"
	MetricLinesBusy     = "crawl.lines.busy"
	MetricFrontierDepth = "frontier.depth"
)

// StatusSource feeds the /debug/status endpoint: the registry for
// instantaneous values, the (optional) sampler for recent series, and
// the process start time for elapsed/ETA arithmetic.
type StatusSource struct {
	Reg       *Registry
	Sampler   *Sampler
	StartedAt time.Time
}

// Status is the live-progress document served by /debug/status — the
// at-a-glance answer to "how far along is this crawl and how fast is it
// moving", refreshed per request from the registry and sampler.
type Status struct {
	Now        time.Time `json:"now"`
	StartedAt  time.Time `json:"started_at"`
	ElapsedSec float64   `json:"elapsed_sec"`

	// Crawl progress (zero while nothing is crawling).
	PagesDone     int64   `json:"pages_done"`
	PagesTotal    int64   `json:"pages_total"`
	Done          bool    `json:"done"`
	Lines         int64   `json:"lines"`
	LinesBusy     int64   `json:"lines_busy"`
	Utilization   float64 `json:"utilization"`
	FrontierDepth int64   `json:"frontier_depth"`
	PagesPerSec   float64 `json:"pages_per_sec"`
	// ETASec extrapolates the remaining pages at the observed rate; -1
	// while unknown (no pages retired yet, or nothing admitted).
	ETASec float64 `json:"eta_sec"`

	// Live HTTP traffic (serving daemons; zero elsewhere).
	HTTPRequests int64 `json:"http_requests"`
	HTTPInflight int64 `json:"http_inflight"`

	// Series are the sampler's retained windows (frontier depth curve,
	// line utilization, runtime stats); nil when no sampler is wired.
	Series []SeriesSnapshot `json:"series,omitempty"`
}

// Snapshot assembles the current status document.
func (src StatusSource) Snapshot() Status {
	now := src.Reg.Now()
	st := Status{
		Now:       now,
		StartedAt: src.StartedAt,

		PagesDone:     src.Reg.Counter(MetricPagesDone).Value(),
		PagesTotal:    src.Reg.Gauge(MetricPagesTotal).Value(),
		Lines:         src.Reg.Gauge(MetricLines).Value(),
		LinesBusy:     src.Reg.Gauge(MetricLinesBusy).Value(),
		FrontierDepth: src.Reg.Gauge(MetricFrontierDepth).Value(),

		HTTPRequests: src.Reg.Counter("http.requests").Value(),
		HTTPInflight: src.Reg.Gauge("http.inflight").Value(),

		ETASec: -1,
		Series: src.Sampler.Snapshot(),
	}
	if !src.StartedAt.IsZero() {
		st.ElapsedSec = now.Sub(src.StartedAt).Seconds()
	}
	if st.Lines > 0 {
		st.Utilization = float64(st.LinesBusy) / float64(st.Lines)
	}
	st.Done = st.PagesTotal > 0 && st.PagesDone >= st.PagesTotal
	if st.ElapsedSec > 0 && st.PagesDone > 0 {
		st.PagesPerSec = float64(st.PagesDone) / st.ElapsedSec
		if st.PagesTotal > 0 {
			st.ETASec = float64(st.PagesTotal-st.PagesDone) / st.PagesPerSec
		}
	}
	return st
}

// RegisterStatus mounts /debug/status on mux: JSON by default, a
// minimal self-refreshing HTML page with ?format=html (or an Accept
// header preferring text/html).
func RegisterStatus(mux *http.ServeMux, src StatusSource) {
	mux.HandleFunc("/debug/status", func(w http.ResponseWriter, r *http.Request) {
		st := src.Snapshot()
		wantHTML := r.URL.Query().Get("format") == "html" ||
			(r.URL.Query().Get("format") == "" && strings.Contains(r.Header.Get("Accept"), "text/html"))
		if wantHTML {
			w.Header().Set("Content-Type", "text/html; charset=utf-8")
			writeStatusHTML(w, st)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(st)
	})
}

// sparkline renders values as a block-character strip, newest right.
func sparkline(pts []Point, width int) string {
	if len(pts) == 0 {
		return "(no samples)"
	}
	if len(pts) > width {
		pts = pts[len(pts)-width:]
	}
	var maxV int64 = 1
	for _, p := range pts {
		if p.V > maxV {
			maxV = p.V
		}
	}
	levels := []rune("▁▂▃▄▅▆▇█")
	var b strings.Builder
	for _, p := range pts {
		i := int(p.V * int64(len(levels)-1) / maxV)
		b.WriteRune(levels[i])
	}
	return b.String()
}

// writeStatusHTML renders the minimal human view: a progress table plus
// sparklines of the sampled series.
func writeStatusHTML(w http.ResponseWriter, st Status) {
	fmt.Fprint(w, `<!doctype html><meta charset="utf-8"><meta http-equiv="refresh" content="1">`+
		`<title>ajaxcrawl status</title><style>body{font-family:monospace;margin:2em}`+
		`td{padding:0 1em 0 0}.spark{font-size:1.2em;letter-spacing:-1px}</style><h1>ajaxcrawl status</h1><table>`)
	row := func(k, v string) { fmt.Fprintf(w, "<tr><td>%s</td><td>%s</td></tr>", k, html.EscapeString(v)) }
	pct := ""
	if st.PagesTotal > 0 {
		pct = fmt.Sprintf(" (%.1f%%)", 100*float64(st.PagesDone)/float64(st.PagesTotal))
	}
	row("pages", fmt.Sprintf("%d / %d%s", st.PagesDone, st.PagesTotal, pct))
	row("lines busy", fmt.Sprintf("%d / %d (%.0f%% utilized)", st.LinesBusy, st.Lines, 100*st.Utilization))
	row("frontier depth", fmt.Sprintf("%d", st.FrontierDepth))
	row("rate", fmt.Sprintf("%.2f pages/s", st.PagesPerSec))
	eta := "unknown"
	if st.Done {
		eta = "done"
	} else if st.ETASec >= 0 {
		eta = (time.Duration(st.ETASec * float64(time.Second))).Round(time.Second).String()
	}
	row("eta", eta)
	row("elapsed", (time.Duration(st.ElapsedSec * float64(time.Second))).Round(time.Second).String())
	if st.HTTPRequests > 0 {
		row("http", fmt.Sprintf("%d requests, %d in flight", st.HTTPRequests, st.HTTPInflight))
	}
	fmt.Fprint(w, "</table>")
	for _, s := range st.Series {
		fmt.Fprintf(w, `<p>%s<br><span class="spark">%s</span></p>`,
			html.EscapeString(s.Name), sparkline(s.Points, 120))
	}
}
