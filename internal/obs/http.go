package obs

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"
)

// RegisterDebug mounts the telemetry endpoints on mux:
//
//	/debug/metrics        registry snapshot as JSON (?format=prom for text)
//	/debug/metrics/prom   Prometheus text exposition format
//	/debug/trace/recent   the ring sink's latest spans as JSON (?n=100)
//	/debug/pprof/...      the standard net/http/pprof profiling handlers
//
// reg may be nil (empty snapshots) and ring may be nil (trace endpoint
// returns an empty list).
func RegisterDebug(mux *http.ServeMux, reg *Registry, ring *RingSink) {
	mux.HandleFunc("/debug/metrics", func(w http.ResponseWriter, r *http.Request) {
		snap := reg.Snapshot()
		if r.URL.Query().Get("format") == "prom" {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			_ = snap.WritePrometheus(w)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		b, err := snap.MarshalJSONIndent()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Write(b)
	})
	mux.HandleFunc("/debug/metrics/prom", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.Snapshot().WritePrometheus(w)
	})
	mux.HandleFunc("/debug/trace/recent", func(w http.ResponseWriter, r *http.Request) {
		n := 100
		if v := r.URL.Query().Get("n"); v != "" {
			if parsed, err := strconv.Atoi(v); err == nil {
				n = parsed
			}
		}
		spans := []SpanRecord{}
		if ring != nil {
			if recent := ring.Recent(n); recent != nil {
				spans = recent
			}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(spans)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// ServeDebug starts an HTTP server on addr exposing only the debug
// endpoints — the `-metrics-addr` backend of the CLIs. It returns
// immediately; the server runs until the process exits. Errors (e.g. a
// busy port) are reported through errf when non-nil.
func ServeDebug(addr string, reg *Registry, ring *RingSink, errf func(error)) {
	mux := http.NewServeMux()
	RegisterDebug(mux, reg, ring)
	go func() {
		if err := http.ListenAndServe(addr, mux); err != nil && errf != nil {
			errf(err)
		}
	}()
}

// InstrumentHandler wraps an http.Handler with request telemetry: an
// http.requests counter, an http.errors counter (status >= 500), an
// http.inflight gauge and an http.latency histogram — the live-traffic
// view ytserve exposes next to its debug endpoints.
func InstrumentHandler(reg *Registry, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		reg.Counter("http.requests").Inc()
		inflight := reg.Gauge("http.inflight")
		inflight.Add(1)
		defer inflight.Add(-1)
		h := reg.Histogram("http.latency")
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(sw, r)
		h.ObserveDuration(time.Since(start))
		if sw.status >= 500 {
			reg.Counter("http.errors").Inc()
		}
	})
}

// statusWriter captures the response status for the error counter.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}
