package obs

import (
	"context"
	"sync/atomic"
	"time"
)

// Telemetry bundles a metrics registry with a trace sink. It travels on
// context.Context (With/From), so every layer of the pipeline — fetch,
// browser, core, parallel, index, query — picks it up without new
// parameters. A nil *Telemetry is fully usable: all methods no-op.
type Telemetry struct {
	reg    *Registry
	sink   Sink
	nextID atomic.Uint64
}

// New returns a Telemetry over the given registry and sink. A nil reg
// creates a fresh registry; a nil sink disables tracing (metrics only).
func New(reg *Registry, sink Sink) *Telemetry {
	if reg == nil {
		reg = NewRegistry()
	}
	return &Telemetry{reg: reg, sink: sink}
}

// Registry returns the metrics registry (nil on nil Telemetry).
func (t *Telemetry) Registry() *Registry {
	if t == nil {
		return nil
	}
	return t.reg
}

// Counter returns the named counter (nil when telemetry is disabled).
func (t *Telemetry) Counter(name string) *Counter {
	if t == nil {
		return nil
	}
	return t.reg.Counter(name)
}

// Gauge returns the named gauge (nil when telemetry is disabled).
func (t *Telemetry) Gauge(name string) *Gauge {
	if t == nil {
		return nil
	}
	return t.reg.Gauge(name)
}

// Histogram returns the named histogram (nil when telemetry is
// disabled).
func (t *Telemetry) Histogram(name string, bounds ...float64) *Histogram {
	if t == nil {
		return nil
	}
	return t.reg.Histogram(name, bounds...)
}

type telKey struct{}
type spanKey struct{}

// With installs t on the context; everything downstream that calls
// From/StartSpan participates. With(ctx, nil) returns ctx unchanged.
func With(ctx context.Context, t *Telemetry) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, telKey{}, t)
}

// From returns the Telemetry installed on ctx, or nil.
func From(ctx context.Context) *Telemetry {
	t, _ := ctx.Value(telKey{}).(*Telemetry)
	return t
}

// StartSpan opens a span named name as a child of the span currently on
// ctx (if any) and returns a derived context carrying the new span as
// parent. When no telemetry — or no sink — is installed, it returns ctx
// unchanged and a nil span whose End is a no-op, so instrumentation
// points pay only this lookup.
func StartSpan(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	tel := From(ctx)
	if tel == nil || tel.sink == nil {
		return ctx, nil
	}
	parent, _ := ctx.Value(spanKey{}).(uint64)
	s := &Span{
		tel:    tel,
		id:     tel.nextID.Add(1),
		parent: parent,
		name:   name,
		start:  time.Now(),
		attrs:  attrs,
	}
	return context.WithValue(ctx, spanKey{}, s.id), s
}

// Event emits an instantaneous (zero-duration) span — used for
// point-in-time occurrences like hot-node cache hits.
func Event(ctx context.Context, name string, attrs ...Attr) {
	_, s := StartSpan(ctx, name, attrs...)
	s.End(nil)
}
