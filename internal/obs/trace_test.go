package obs

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"path/filepath"
	"testing"
)

func TestSpanNestingAndAttrs(t *testing.T) {
	ring := NewRingSink(16)
	tel := New(nil, ring)
	ctx := With(context.Background(), tel)

	ctx1, parent := StartSpan(ctx, SpanPageCrawl, A("url", "/watch?v=a"))
	_, child := StartSpan(ctx1, SpanEventDispatch)
	child.SetAttr("event", "onclick")
	child.End(nil)
	parent.End(nil)

	spans := ring.Recent(0)
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	// Children end (and emit) first.
	c, p := spans[0], spans[1]
	if c.Name != SpanEventDispatch || p.Name != SpanPageCrawl {
		t.Fatalf("span order: %q then %q", c.Name, p.Name)
	}
	if c.Parent != p.ID {
		t.Fatalf("child parent=%d, want parent's id %d", c.Parent, p.ID)
	}
	if p.Parent != 0 {
		t.Fatalf("root span has parent %d", p.Parent)
	}
	if c.Attrs["event"] != "onclick" || p.Attrs["url"] != "/watch?v=a" {
		t.Fatalf("attrs lost: child=%v parent=%v", c.Attrs, p.Attrs)
	}
}

func TestSpanEmittedAfterContextCancel(t *testing.T) {
	// A span opened before a cancellation must still be closed and
	// emitted by the deferred End on the unwind path — the trace-layer
	// half of the PageTimeout guarantee (the crawler-level half lives in
	// internal/core).
	ring := NewRingSink(4)
	ctx := With(context.Background(), New(nil, ring))
	cctx, cancel := context.WithCancel(ctx)
	_, sp := StartSpan(cctx, SpanPageCrawl)
	cancel()
	sp.End(cctx.Err())
	spans := ring.Recent(0)
	if len(spans) != 1 {
		t.Fatalf("got %d spans, want 1", len(spans))
	}
	if spans[0].Err != context.Canceled.Error() {
		t.Fatalf("span err = %q, want context.Canceled", spans[0].Err)
	}
}

func TestSpanEndIdempotentAndNilSafe(t *testing.T) {
	var sp *Span
	sp.End(nil) // must not panic
	sp.SetAttr("k", "v")

	ring := NewRingSink(4)
	ctx := With(context.Background(), New(nil, ring))
	_, sp2 := StartSpan(ctx, "x")
	sp2.End(errors.New("boom"))
	sp2.End(nil)
	if got := len(ring.Recent(0)); got != 1 {
		t.Fatalf("double End emitted %d spans, want 1", got)
	}
}

func TestNoTelemetryMeansNoSpan(t *testing.T) {
	ctx, sp := StartSpan(context.Background(), "x")
	if sp != nil {
		t.Fatal("expected nil span without telemetry")
	}
	if From(ctx) != nil {
		t.Fatal("ctx must stay telemetry-free")
	}
	// Metrics-only telemetry (nil sink) also yields nil spans.
	ctx2 := With(context.Background(), New(NewRegistry(), nil))
	if _, sp := StartSpan(ctx2, "x"); sp != nil {
		t.Fatal("expected nil span with nil sink")
	}
}

func TestJSONLSinkParseable(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	ctx := With(context.Background(), New(nil, sink))
	for i := 0; i < 3; i++ {
		Event(ctx, SpanHotNodeHit, A("key", "f(1)"))
	}
	sc := bufio.NewScanner(&buf)
	n := 0
	for sc.Scan() {
		var rec SpanRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("line %d not JSON: %v", n, err)
		}
		if rec.Name != SpanHotNodeHit || rec.Attrs["key"] != "f(1)" {
			t.Fatalf("bad record: %+v", rec)
		}
		n++
	}
	if n != 3 {
		t.Fatalf("got %d JSONL lines, want 3", n)
	}
}

func TestFileSink(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	sink, err := NewFileSink(path)
	if err != nil {
		t.Fatal(err)
	}
	ctx := With(context.Background(), New(nil, sink))
	Event(ctx, SpanQueryExec)
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadJSONL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Name != SpanQueryExec {
		t.Fatalf("file sink contents: %+v", recs)
	}
}

func TestRingSinkWraps(t *testing.T) {
	ring := NewRingSink(3)
	ctx := With(context.Background(), New(nil, ring))
	for _, name := range []string{"a", "b", "c", "d", "e"} {
		Event(ctx, name)
	}
	got := ring.Recent(0)
	if len(got) != 3 || got[0].Name != "c" || got[2].Name != "e" {
		t.Fatalf("ring contents: %+v", got)
	}
	if last := ring.Recent(1); len(last) != 1 || last[0].Name != "e" {
		t.Fatalf("Recent(1): %+v", last)
	}
}
