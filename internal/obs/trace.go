package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// Span names used across the pipeline — the span taxonomy of the crawl
// stack, one unit of work per name (see DESIGN.md §Observability).
const (
	SpanPageCrawl     = "page.crawl"     // one page's full AJAX crawl (core)
	SpanEventDispatch = "event.dispatch" // one handler invocation (browser)
	SpanXHRSend       = "xhr.send"       // one XMLHttpRequest send (browser)
	SpanHotNodeHit    = "hotnode.hit"    // a send served from the hot-node cache
	SpanHotNodeMiss   = "hotnode.miss"   // a send that had to hit the network
	SpanLineCrawl     = "line.crawl"     // one process line's lifetime on the shared frontier (core)
	SpanIndexBuild    = "index.build"    // one shard's index construction
	SpanQueryExec     = "query.exec"     // one query evaluation
	SpanFetchRetry    = "fetch.retry"    // one backoff-and-retry decision (fetch)
	SpanBreakerState  = "breaker.state"  // a circuit breaker state transition (fetch)

	SpanFrontierSnapshot = "frontier.snapshot" // frontier journal recovered on resume (core)

	SpanCheckpointWrite   = "checkpoint.write"   // one page durably journaled (checkpoint)
	SpanCheckpointCompact = "checkpoint.compact" // journal folded into a snapshot (checkpoint)
	SpanCheckpointRecover = "checkpoint.recover" // journal replayed on open (checkpoint)

	SpanShardEval    = "query.shard"   // one shard-local evaluation for a distributed merge (query)
	SpanRouterFanout = "router.fanout" // one routed query's full fan-out and global merge (router)
	SpanRouterShard  = "router.shard"  // one shard's call, including hedged attempts (router)
)

// SpanRecord is one finished span as emitted to a Sink. Start is wall
// time; Dur is measured on the monotonic clock.
type SpanRecord struct {
	ID     uint64            `json:"id"`
	Parent uint64            `json:"parent,omitempty"`
	Name   string            `json:"name"`
	Start  time.Time         `json:"start"`
	DurNS  int64             `json:"dur_ns"`
	Attrs  map[string]string `json:"attrs,omitempty"`
	Err    string            `json:"err,omitempty"`
}

// Dur returns the span duration.
func (r SpanRecord) Dur() time.Duration { return time.Duration(r.DurNS) }

// Sink receives finished spans. Implementations must be safe for
// concurrent use: process lines emit concurrently.
type Sink interface {
	Emit(SpanRecord)
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(SpanRecord)

// Emit implements Sink.
func (f SinkFunc) Emit(r SpanRecord) { f(r) }

// MultiSink fans one span out to several sinks.
type MultiSink []Sink

// Emit implements Sink.
func (m MultiSink) Emit(r SpanRecord) {
	for _, s := range m {
		if s != nil {
			s.Emit(r)
		}
	}
}

// JSONLSink writes one JSON object per line to an io.Writer.
type JSONLSink struct {
	mu  sync.Mutex
	enc *json.Encoder
}

// NewJSONLSink returns a sink writing JSONL to w.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{enc: json.NewEncoder(w)}
}

// Emit implements Sink. Encoding errors are dropped: tracing must never
// fail the traced operation.
func (s *JSONLSink) Emit(r SpanRecord) {
	s.mu.Lock()
	_ = s.enc.Encode(r)
	s.mu.Unlock()
}

// FileSink is a buffered JSONL sink over a file — the `-trace out.jsonl`
// backend of the CLIs. Close flushes and closes the file.
type FileSink struct {
	mu sync.Mutex
	f  *os.File
	bw *bufio.Writer
	j  *JSONLSink
}

// NewFileSink creates (truncating) the file at path.
func NewFileSink(path string) (*FileSink, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("obs: trace sink: %w", err)
	}
	bw := bufio.NewWriter(f)
	return &FileSink{f: f, bw: bw, j: NewJSONLSink(bw)}, nil
}

// Emit implements Sink.
func (s *FileSink) Emit(r SpanRecord) { s.j.Emit(r) }

// Close flushes buffered spans and closes the file.
func (s *FileSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.bw.Flush(); err != nil {
		s.f.Close()
		return err
	}
	return s.f.Close()
}

// ReadJSONL loads every span of a JSONL trace file (the FileSink
// format) — the read side used by tests and trace post-processing.
func ReadJSONL(path string) ([]SpanRecord, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("obs: read trace: %w", err)
	}
	defer f.Close()
	var out []SpanRecord
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var rec SpanRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return out, fmt.Errorf("obs: read trace: %w", err)
		}
		out = append(out, rec)
	}
	return out, sc.Err()
}

// RingSink keeps the most recent spans in memory — the backend of
// /debug/trace/recent and of tests.
type RingSink struct {
	mu   sync.Mutex
	buf  []SpanRecord
	next int
	full bool
}

// NewRingSink returns a ring holding the latest capacity spans.
func NewRingSink(capacity int) *RingSink {
	if capacity <= 0 {
		capacity = 1024
	}
	return &RingSink{buf: make([]SpanRecord, capacity)}
}

// Emit implements Sink.
func (s *RingSink) Emit(r SpanRecord) {
	s.mu.Lock()
	s.buf[s.next] = r
	s.next++
	if s.next == len(s.buf) {
		s.next, s.full = 0, true
	}
	s.mu.Unlock()
}

// Recent returns up to n spans, oldest first (all retained spans when
// n <= 0).
func (s *RingSink) Recent(n int) []SpanRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []SpanRecord
	if s.full {
		out = append(out, s.buf[s.next:]...)
	}
	out = append(out, s.buf[:s.next]...)
	if n > 0 && len(out) > n {
		out = out[len(out)-n:]
	}
	return out
}

// ProgressSink prints one human line per finished span whose name is in
// the filter — the backend of the CLIs' -v flag. A nil/empty filter
// passes everything.
type ProgressSink struct {
	mu     sync.Mutex
	w      io.Writer
	filter map[string]bool
}

// NewProgressSink returns a progress printer for the given span names.
func NewProgressSink(w io.Writer, names ...string) *ProgressSink {
	s := &ProgressSink{w: w}
	if len(names) > 0 {
		s.filter = make(map[string]bool, len(names))
		for _, n := range names {
			s.filter[n] = true
		}
	}
	return s
}

// Emit implements Sink.
func (s *ProgressSink) Emit(r SpanRecord) {
	if s.filter != nil && !s.filter[r.Name] {
		return
	}
	var attrs string
	for k, v := range r.Attrs {
		attrs += " " + k + "=" + v
	}
	errs := ""
	if r.Err != "" {
		errs = " err=" + r.Err
	}
	s.mu.Lock()
	fmt.Fprintf(s.w, "[%8s] %s%s%s\n", r.Dur().Round(time.Microsecond), r.Name, attrs, errs)
	s.mu.Unlock()
}

// Attr is one key/value span annotation.
type Attr struct {
	Key, Value string
}

// A builds an Attr.
func A(k, v string) Attr { return Attr{Key: k, Value: v} }

// Span is an in-flight traced operation. A nil *Span (telemetry
// disabled) is valid: every method is a no-op.
type Span struct {
	tel    *Telemetry
	id     uint64
	parent uint64
	name   string
	start  time.Time
	attrs  []Attr
	ended  bool
}

// SetAttr annotates the span. Safe on nil.
func (s *Span) SetAttr(k, v string) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: k, Value: v})
}

// End closes the span and emits it to the sink, recording err when
// non-nil. End is idempotent and safe on nil, so `defer sp.End(...)`
// always runs — a span opened before a cancellation or timeout abort is
// still closed and emitted on the unwind path.
func (s *Span) End(err error) {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	rec := SpanRecord{
		ID:     s.id,
		Parent: s.parent,
		Name:   s.name,
		Start:  s.start,
		DurNS:  int64(time.Since(s.start)),
	}
	if len(s.attrs) > 0 {
		rec.Attrs = make(map[string]string, len(s.attrs))
		for _, a := range s.attrs {
			rec.Attrs[a.Key] = a.Value
		}
	}
	if err != nil {
		rec.Err = err.Error()
	}
	s.tel.sink.Emit(rec)
}
