package obs

import (
	"sort"
	"sync"
)

// SpanAgg is the duration aggregate of every finished span sharing one
// name — the per-span-type rollup embedded into perf reports, where
// keeping every SpanRecord of a long crawl would be prohibitive.
type SpanAgg struct {
	Name    string  `json:"name"`
	Count   int64   `json:"count"`
	Errors  int64   `json:"errors"`
	TotalNS int64   `json:"total_ns"`
	MinNS   int64   `json:"min_ns"`
	MaxNS   int64   `json:"max_ns"`
	MeanNS  float64 `json:"mean_ns"`
}

// AggSink folds finished spans into per-name duration aggregates
// instead of retaining them. It is the report pipeline's trace backend:
// O(span types) memory however long the run, safe for concurrent Emit.
type AggSink struct {
	mu sync.Mutex
	m  map[string]*SpanAgg
}

// NewAggSink returns an empty aggregating sink.
func NewAggSink() *AggSink {
	return &AggSink{m: make(map[string]*SpanAgg)}
}

// Emit implements Sink.
func (s *AggSink) Emit(r SpanRecord) {
	s.mu.Lock()
	a := s.m[r.Name]
	if a == nil {
		a = &SpanAgg{Name: r.Name, MinNS: r.DurNS, MaxNS: r.DurNS}
		s.m[r.Name] = a
	}
	a.Count++
	if r.Err != "" {
		a.Errors++
	}
	a.TotalNS += r.DurNS
	if r.DurNS < a.MinNS {
		a.MinNS = r.DurNS
	}
	if r.DurNS > a.MaxNS {
		a.MaxNS = r.DurNS
	}
	s.mu.Unlock()
}

// Aggregates returns the per-name rollups sorted by name, with MeanNS
// computed. The returned slice is a copy; Emit may continue concurrently.
func (s *AggSink) Aggregates() []SpanAgg {
	s.mu.Lock()
	out := make([]SpanAgg, 0, len(s.m))
	for _, a := range s.m {
		cp := *a
		cp.MeanNS = float64(cp.TotalNS) / float64(cp.Count)
		out = append(out, cp)
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
