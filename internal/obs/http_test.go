package obs

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func debugServer(t *testing.T) (*httptest.Server, *Registry, *RingSink) {
	t.Helper()
	reg := NewRegistry()
	ring := NewRingSink(64)
	mux := http.NewServeMux()
	RegisterDebug(mux, reg, ring)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv, reg, ring
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return resp.StatusCode, sb.String()
}

func TestDebugMetricsJSONAndProm(t *testing.T) {
	srv, reg, _ := debugServer(t)
	reg.Counter("crawl.pages").Add(3)
	reg.Histogram("fetch.latency").Observe(0.002)

	code, body := get(t, srv.URL+"/debug/metrics")
	if code != 200 {
		t.Fatalf("/debug/metrics status %d", code)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("metrics JSON: %v", err)
	}
	if snap.Counters["crawl.pages"] != 3 {
		t.Fatalf("counter missing from snapshot: %s", body)
	}

	for _, url := range []string{srv.URL + "/debug/metrics?format=prom", srv.URL + "/debug/metrics/prom"} {
		code, body = get(t, url)
		if code != 200 {
			t.Fatalf("%s status %d", url, code)
		}
		if !strings.Contains(body, "# TYPE ajaxcrawl_crawl_pages counter") ||
			!strings.Contains(body, "ajaxcrawl_fetch_latency_bucket{le=\"+Inf\"} 1") {
			t.Fatalf("prometheus body missing series:\n%s", body)
		}
	}
}

func TestDebugTraceRecent(t *testing.T) {
	srv, _, ring := debugServer(t)
	ctx := With(context.Background(), New(nil, ring))
	Event(ctx, SpanPageCrawl, A("url", "/watch?v=x"))
	Event(ctx, SpanQueryExec)

	code, body := get(t, srv.URL+"/debug/trace/recent?n=1")
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	var spans []SpanRecord
	if err := json.Unmarshal([]byte(body), &spans); err != nil {
		t.Fatalf("trace JSON: %v", err)
	}
	if len(spans) != 1 || spans[0].Name != SpanQueryExec {
		t.Fatalf("recent spans: %+v", spans)
	}
}

func TestDebugPprofMounted(t *testing.T) {
	srv, _, _ := debugServer(t)
	code, body := get(t, srv.URL+"/debug/pprof/")
	if code != 200 || !strings.Contains(body, "goroutine") {
		t.Fatalf("pprof index: status %d body %.120q", code, body)
	}
}

func TestInstrumentHandler(t *testing.T) {
	reg := NewRegistry()
	h := InstrumentHandler(reg, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/boom" {
			http.Error(w, "nope", http.StatusInternalServerError)
			return
		}
		w.Write([]byte("ok"))
	}))
	srv := httptest.NewServer(h)
	defer srv.Close()
	get(t, srv.URL+"/")
	get(t, srv.URL+"/boom")
	snap := reg.Snapshot()
	if snap.Counters["http.requests"] != 2 || snap.Counters["http.errors"] != 1 {
		t.Fatalf("http counters: %+v", snap.Counters)
	}
	if snap.Histograms["http.latency"].Count != 2 {
		t.Fatalf("latency histogram count = %d", snap.Histograms["http.latency"].Count)
	}
	if snap.Gauges["http.inflight"] != 0 {
		t.Fatalf("inflight gauge = %d, want 0", snap.Gauges["http.inflight"])
	}
}
