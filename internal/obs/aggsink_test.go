package obs

import (
	"sync"
	"testing"
)

func TestAggSinkFoldsSpansByName(t *testing.T) {
	s := NewAggSink()
	s.Emit(SpanRecord{Name: "page.crawl", DurNS: 100})
	s.Emit(SpanRecord{Name: "page.crawl", DurNS: 300, Err: "boom"})
	s.Emit(SpanRecord{Name: "page.crawl", DurNS: 200})
	s.Emit(SpanRecord{Name: "event.dispatch", DurNS: 50})

	aggs := s.Aggregates()
	if len(aggs) != 2 {
		t.Fatalf("aggregates = %d, want 2", len(aggs))
	}
	// Sorted by name: event.dispatch first.
	if aggs[0].Name != "event.dispatch" || aggs[1].Name != "page.crawl" {
		t.Fatalf("order = %q, %q", aggs[0].Name, aggs[1].Name)
	}
	pc := aggs[1]
	if pc.Count != 3 || pc.Errors != 1 {
		t.Errorf("page.crawl count=%d errors=%d, want 3/1", pc.Count, pc.Errors)
	}
	if pc.MinNS != 100 || pc.MaxNS != 300 || pc.TotalNS != 600 {
		t.Errorf("page.crawl min/max/total = %d/%d/%d, want 100/300/600", pc.MinNS, pc.MaxNS, pc.TotalNS)
	}
	if pc.MeanNS != 200 {
		t.Errorf("page.crawl mean = %v, want 200", pc.MeanNS)
	}
}

func TestAggSinkConcurrentEmit(t *testing.T) {
	s := NewAggSink()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				s.Emit(SpanRecord{Name: "x", DurNS: 1})
			}
		}()
	}
	wg.Wait()
	aggs := s.Aggregates()
	if len(aggs) != 1 || aggs[0].Count != 800 || aggs[0].TotalNS != 800 {
		t.Fatalf("aggregates = %+v, want one entry with count 800", aggs)
	}
}
