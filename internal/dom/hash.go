package dom

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"hash/fnv"
	"sort"
)

// Hash is the canonical content hash of a DOM subtree. Two application
// states with equal hashes are considered the same state by the crawler
// (thesis §3.2: "we compute a hash of the content of the state").
type Hash [32]byte

// String returns the hex form of the hash (for logs and gob keys).
func (h Hash) String() string { return hex.EncodeToString(h[:8]) }

// CanonicalHash computes the canonical hash of the subtree rooted at n.
//
// The hash is canonical in the sense that representations that render the
// same user-visible state collapse to the same value:
//   - attribute order is ignored (attributes are hashed sorted by key),
//   - whitespace in text nodes is collapsed,
//   - comments and whitespace-only text nodes are ignored,
//   - script/style contents are ignored (they do not change what the user
//     sees; the crawler cares about visible state identity).
func CanonicalHash(n *Node) Hash {
	h := sha256.New()
	hashNode(h, n)
	var out Hash
	copy(out[:], h.Sum(nil))
	return out
}

// QuickHash is a cheap 64-bit variant of CanonicalHash used by hot loops
// (DOM-change detection after each event). Equal CanonicalHash implies
// equal QuickHash but not vice versa; the crawler confirms QuickHash
// matches with CanonicalHash before merging states.
func QuickHash(n *Node) uint64 {
	h := fnv.New64a()
	hashNode(h, n)
	return h.Sum64()
}

var (
	sepElem = []byte{0x01}
	sepAttr = []byte{0x02}
	sepText = []byte{0x03}
	sepEnd  = []byte{0x04}
)

func hashNode(h hash.Hash, n *Node) {
	switch n.Type {
	case CommentNode, DoctypeNode:
		return
	case TextNode:
		if n.Parent != nil && (n.Parent.Data == "script" || n.Parent.Data == "style") {
			return
		}
		t := CollapseWhitespace(n.Data)
		if t == "" {
			return
		}
		h.Write(sepText)
		h.Write([]byte(t))
		return
	case ElementNode:
		h.Write(sepElem)
		h.Write([]byte(n.Data))
		if len(n.Attr) > 0 {
			attrs := make([]Attribute, len(n.Attr))
			copy(attrs, n.Attr)
			sort.Slice(attrs, func(i, j int) bool { return attrs[i].Key < attrs[j].Key })
			for _, a := range attrs {
				h.Write(sepAttr)
				h.Write([]byte(a.Key))
				var lbuf [4]byte
				binary.LittleEndian.PutUint32(lbuf[:], uint32(len(a.Val)))
				h.Write(lbuf[:])
				h.Write([]byte(a.Val))
			}
		}
	}
	for c := n.FirstChild; c != nil; c = c.NextSibling {
		hashNode(h, c)
	}
	if n.Type == ElementNode {
		h.Write(sepEnd)
	}
}

// Equal reports whether two subtrees are canonically identical, using the
// same normalization rules as CanonicalHash but comparing structurally
// (no hashing). Used by tests and by the ablation that compares hash-based
// duplicate detection with full-tree comparison.
func Equal(a, b *Node) bool {
	return equalNodes(a, b)
}

func equalNodes(a, b *Node) bool {
	if a.Type != b.Type {
		// Allow type mismatch only if both are skippable.
		return false
	}
	switch a.Type {
	case TextNode:
		return CollapseWhitespace(a.Data) == CollapseWhitespace(b.Data)
	case ElementNode:
		if a.Data != b.Data {
			return false
		}
		if !equalAttrs(a.Attr, b.Attr) {
			return false
		}
	}
	ca, cb := significantChildren(a), significantChildren(b)
	if len(ca) != len(cb) {
		return false
	}
	for i := range ca {
		if !equalNodes(ca[i], cb[i]) {
			return false
		}
	}
	return true
}

func equalAttrs(a, b []Attribute) bool {
	if len(a) != len(b) {
		return false
	}
	am := make(map[string]string, len(a))
	for _, x := range a {
		am[x.Key] = x.Val
	}
	for _, y := range b {
		if v, ok := am[y.Key]; !ok || v != y.Val {
			return false
		}
	}
	return true
}

func significant(n *Node) bool {
	switch n.Type {
	case CommentNode, DoctypeNode:
		return false
	case TextNode:
		if n.Parent != nil && (n.Parent.Data == "script" || n.Parent.Data == "style") {
			return false
		}
		return CollapseWhitespace(n.Data) != ""
	}
	return true
}

func significantChildren(n *Node) []*Node {
	var out []*Node
	for c := n.FirstChild; c != nil; c = c.NextSibling {
		if significant(c) {
			out = append(out, c)
		}
	}
	return out
}
