// Package dom implements the document object model used by the AJAX
// crawler. It provides an HTML element tree with the operations the
// crawler and the embedded JavaScript engine need: child manipulation,
// attribute access, element lookup by id and tag, text extraction,
// serialization, deep cloning for state snapshots, and canonical content
// hashing used for duplicate-state detection (thesis §3.2).
//
// The tree layout follows the pointer style of golang.org/x/net/html
// (parent, first/last child, prev/next sibling) so that insertion and
// removal are O(1) and traversal allocates nothing.
package dom

import (
	"fmt"
	"strings"
)

// NodeType identifies the kind of a Node.
type NodeType int

// The node kinds understood by the model.
const (
	ErrorNode NodeType = iota
	DocumentNode
	ElementNode
	TextNode
	CommentNode
	DoctypeNode
)

// String returns a human-readable name for the node type.
func (t NodeType) String() string {
	switch t {
	case ErrorNode:
		return "Error"
	case DocumentNode:
		return "Document"
	case ElementNode:
		return "Element"
	case TextNode:
		return "Text"
	case CommentNode:
		return "Comment"
	case DoctypeNode:
		return "Doctype"
	}
	return fmt.Sprintf("NodeType(%d)", int(t))
}

// Attribute is a single key/value attribute of an element. Keys are
// stored lower-case.
type Attribute struct {
	Key string
	Val string
}

// Node is a node in the document tree. For ElementNode, Data holds the
// lower-case tag name; for TextNode and CommentNode it holds the text.
type Node struct {
	Type NodeType
	Data string
	Attr []Attribute

	Parent      *Node
	FirstChild  *Node
	LastChild   *Node
	PrevSibling *Node
	NextSibling *Node
}

// NewElement returns a detached element node with the given tag name and
// optional attributes given as alternating key, value strings.
func NewElement(tag string, kv ...string) *Node {
	n := &Node{Type: ElementNode, Data: strings.ToLower(tag)}
	for i := 0; i+1 < len(kv); i += 2 {
		n.SetAttr(kv[i], kv[i+1])
	}
	return n
}

// NewText returns a detached text node.
func NewText(text string) *Node {
	return &Node{Type: TextNode, Data: text}
}

// NewDocument returns an empty document node.
func NewDocument() *Node {
	return &Node{Type: DocumentNode}
}

// AppendChild adds c as the last child of n. It panics if c is already
// attached to a tree (callers must Remove it first) to surface bugs early.
func (n *Node) AppendChild(c *Node) {
	if c.Parent != nil || c.PrevSibling != nil || c.NextSibling != nil {
		panic("dom: AppendChild called on attached child")
	}
	last := n.LastChild
	if last != nil {
		last.NextSibling = c
	} else {
		n.FirstChild = c
	}
	n.LastChild = c
	c.Parent = n
	c.PrevSibling = last
}

// InsertBefore inserts c before ref as a child of n. A nil ref appends.
// It panics if c is attached or ref is not a child of n.
func (n *Node) InsertBefore(c, ref *Node) {
	if c.Parent != nil || c.PrevSibling != nil || c.NextSibling != nil {
		panic("dom: InsertBefore called on attached child")
	}
	if ref == nil {
		n.AppendChild(c)
		return
	}
	if ref.Parent != n {
		panic("dom: InsertBefore reference is not a child")
	}
	prev := ref.PrevSibling
	if prev != nil {
		prev.NextSibling = c
	} else {
		n.FirstChild = c
	}
	ref.PrevSibling = c
	c.Parent = n
	c.PrevSibling = prev
	c.NextSibling = ref
}

// RemoveChild detaches c from n. It panics if c is not a child of n.
func (n *Node) RemoveChild(c *Node) {
	if c.Parent != n {
		panic("dom: RemoveChild called on a non-child")
	}
	if c.PrevSibling != nil {
		c.PrevSibling.NextSibling = c.NextSibling
	} else {
		n.FirstChild = c.NextSibling
	}
	if c.NextSibling != nil {
		c.NextSibling.PrevSibling = c.PrevSibling
	} else {
		n.LastChild = c.PrevSibling
	}
	c.Parent = nil
	c.PrevSibling = nil
	c.NextSibling = nil
}

// RemoveChildren detaches all children of n.
func (n *Node) RemoveChildren() {
	for n.FirstChild != nil {
		n.RemoveChild(n.FirstChild)
	}
}

// AppendChildren moves every node in cs under n, in order.
func (n *Node) AppendChildren(cs []*Node) {
	for _, c := range cs {
		n.AppendChild(c)
	}
}

// Children returns the direct children of n as a slice.
func (n *Node) Children() []*Node {
	var out []*Node
	for c := n.FirstChild; c != nil; c = c.NextSibling {
		out = append(out, c)
	}
	return out
}

// Attr lookup helpers.

// GetAttr returns the value of the attribute named key (case-insensitive)
// and whether it is present.
func (n *Node) GetAttr(key string) (string, bool) {
	key = strings.ToLower(key)
	for _, a := range n.Attr {
		if a.Key == key {
			return a.Val, true
		}
	}
	return "", false
}

// AttrOr returns the attribute value or def when absent.
func (n *Node) AttrOr(key, def string) string {
	if v, ok := n.GetAttr(key); ok {
		return v
	}
	return def
}

// SetAttr sets (or adds) the attribute named key.
func (n *Node) SetAttr(key, val string) {
	key = strings.ToLower(key)
	for i := range n.Attr {
		if n.Attr[i].Key == key {
			n.Attr[i].Val = val
			return
		}
	}
	n.Attr = append(n.Attr, Attribute{Key: key, Val: val})
}

// RemoveAttr deletes the attribute named key if present.
func (n *Node) RemoveAttr(key string) {
	key = strings.ToLower(key)
	for i := range n.Attr {
		if n.Attr[i].Key == key {
			n.Attr = append(n.Attr[:i], n.Attr[i+1:]...)
			return
		}
	}
}

// ID returns the element's id attribute ("" when absent).
func (n *Node) ID() string { return n.AttrOr("id", "") }

// Walk visits n and all its descendants in document order. Returning
// false from fn stops the walk.
func (n *Node) Walk(fn func(*Node) bool) bool {
	if !fn(n) {
		return false
	}
	for c := n.FirstChild; c != nil; c = c.NextSibling {
		if !c.Walk(fn) {
			return false
		}
	}
	return true
}

// ElementByID returns the first element in document order whose id
// attribute equals id, or nil.
func (n *Node) ElementByID(id string) *Node {
	var found *Node
	n.Walk(func(c *Node) bool {
		if c.Type == ElementNode && c.ID() == id {
			found = c
			return false
		}
		return true
	})
	return found
}

// ElementsByTag returns all elements with the given tag name in document
// order. An empty tag matches every element.
func (n *Node) ElementsByTag(tag string) []*Node {
	tag = strings.ToLower(tag)
	var out []*Node
	n.Walk(func(c *Node) bool {
		if c.Type == ElementNode && (tag == "" || c.Data == tag) {
			out = append(out, c)
		}
		return true
	})
	return out
}

// Body returns the <body> element of a document tree, or nil.
func (n *Node) Body() *Node {
	els := n.ElementsByTag("body")
	if len(els) == 0 {
		return nil
	}
	return els[0]
}

// TextContent returns the concatenated text of all descendant text nodes,
// skipping script and style contents.
func (n *Node) TextContent() string {
	var b strings.Builder
	n.appendText(&b)
	return b.String()
}

func (n *Node) appendText(b *strings.Builder) {
	switch n.Type {
	case TextNode:
		b.WriteString(n.Data)
	case ElementNode:
		if n.Data == "script" || n.Data == "style" {
			return
		}
	case CommentNode, DoctypeNode:
		return
	}
	for c := n.FirstChild; c != nil; c = c.NextSibling {
		c.appendText(b)
	}
}

// VisibleText returns TextContent with runs of whitespace collapsed to
// single spaces and leading/trailing whitespace trimmed; this is the text
// the indexer sees for a state.
func (n *Node) VisibleText() string {
	return CollapseWhitespace(n.TextContent())
}

// CollapseWhitespace collapses all whitespace runs in s to single spaces
// and trims the ends.
func CollapseWhitespace(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	space := false
	for _, r := range s {
		if r == ' ' || r == '\t' || r == '\n' || r == '\r' || r == '\f' {
			space = true
			continue
		}
		if space && b.Len() > 0 {
			b.WriteByte(' ')
		}
		space = false
		b.WriteRune(r)
	}
	return b.String()
}

// Clone returns a deep copy of n (detached from any parent).
func (n *Node) Clone() *Node {
	c := &Node{Type: n.Type, Data: n.Data}
	if len(n.Attr) > 0 {
		c.Attr = make([]Attribute, len(n.Attr))
		copy(c.Attr, n.Attr)
	}
	for k := n.FirstChild; k != nil; k = k.NextSibling {
		c.AppendChild(k.Clone())
	}
	return c
}

// Path returns a stable structural address of n within its tree, such as
// "html/body/div[2]/a[0]". It is used to annotate transition sources so
// that transitions can be replayed on a reconstructed DOM.
func (n *Node) Path() string {
	if n.Parent == nil {
		if n.Type == DocumentNode {
			return ""
		}
		return n.Data
	}
	idx := 0
	for s := n.Parent.FirstChild; s != nil && s != n; s = s.NextSibling {
		if s.Type == ElementNode {
			idx++
		}
	}
	parent := n.Parent.Path()
	if parent == "" {
		return fmt.Sprintf("%s[%d]", n.Data, idx)
	}
	return fmt.Sprintf("%s/%s[%d]", parent, n.Data, idx)
}

// ByPath resolves a Path string produced by (*Node).Path relative to n
// (normally the document node). It returns nil when the path does not
// resolve.
func (n *Node) ByPath(path string) *Node {
	if path == "" {
		return n
	}
	cur := n
	for _, seg := range strings.Split(path, "/") {
		name := seg
		idx := 0
		if i := strings.IndexByte(seg, '['); i >= 0 {
			name = seg[:i]
			fmt.Sscanf(seg[i:], "[%d]", &idx)
		}
		var next *Node
		count := 0
		for c := cur.FirstChild; c != nil; c = c.NextSibling {
			if c.Type != ElementNode {
				continue
			}
			if count == idx {
				if c.Data != name {
					return nil
				}
				next = c
				break
			}
			count++
		}
		if next == nil {
			return nil
		}
		cur = next
	}
	return cur
}
