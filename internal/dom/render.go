package dom

import (
	"io"
	"strings"
)

// voidElements are HTML elements that never have children or end tags.
var voidElements = map[string]bool{
	"area": true, "base": true, "br": true, "col": true, "embed": true,
	"hr": true, "img": true, "input": true, "link": true, "meta": true,
	"param": true, "source": true, "track": true, "wbr": true,
}

// rawTextElements are elements whose content is emitted verbatim.
var rawTextElements = map[string]bool{
	"script": true, "style": true,
}

// IsVoidElement reports whether tag is an HTML void element.
func IsVoidElement(tag string) bool { return voidElements[tag] }

// IsRawTextElement reports whether tag content is raw text (not escaped,
// no child elements).
func IsRawTextElement(tag string) bool { return rawTextElements[tag] }

// EscapeText escapes text-node content for HTML output.
func EscapeText(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}

// EscapeAttr escapes an attribute value for double-quoted HTML output.
func EscapeAttr(s string) string {
	r := strings.NewReplacer("&", "&amp;", `"`, "&quot;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}

// Render writes the HTML serialization of n to w.
func Render(w io.Writer, n *Node) error {
	sw, ok := w.(io.StringWriter)
	if !ok {
		sb := &strings.Builder{}
		if err := render(sb, n); err != nil {
			return err
		}
		_, err := io.WriteString(w, sb.String())
		return err
	}
	return render(sw, n)
}

func render(w io.StringWriter, n *Node) error {
	switch n.Type {
	case DocumentNode:
		for c := n.FirstChild; c != nil; c = c.NextSibling {
			if err := render(w, c); err != nil {
				return err
			}
		}
		return nil
	case DoctypeNode:
		_, err := w.WriteString("<!DOCTYPE " + n.Data + ">")
		return err
	case CommentNode:
		_, err := w.WriteString("<!--" + n.Data + "-->")
		return err
	case TextNode:
		if n.Parent != nil && n.Parent.Type == ElementNode && rawTextElements[n.Parent.Data] {
			_, err := w.WriteString(n.Data)
			return err
		}
		_, err := w.WriteString(EscapeText(n.Data))
		return err
	case ElementNode:
		if _, err := w.WriteString("<" + n.Data); err != nil {
			return err
		}
		for _, a := range n.Attr {
			if _, err := w.WriteString(" " + a.Key + `="` + EscapeAttr(a.Val) + `"`); err != nil {
				return err
			}
		}
		if _, err := w.WriteString(">"); err != nil {
			return err
		}
		if voidElements[n.Data] {
			return nil
		}
		for c := n.FirstChild; c != nil; c = c.NextSibling {
			if err := render(w, c); err != nil {
				return err
			}
		}
		_, err := w.WriteString("</" + n.Data + ">")
		return err
	}
	return nil
}

// OuterHTML returns the HTML serialization of n itself.
func OuterHTML(n *Node) string {
	var b strings.Builder
	render(&b, n) //nolint:errcheck // strings.Builder never errors
	return b.String()
}

// InnerHTML returns the HTML serialization of n's children.
func InnerHTML(n *Node) string {
	var b strings.Builder
	for c := n.FirstChild; c != nil; c = c.NextSibling {
		render(&b, c) //nolint:errcheck
	}
	return b.String()
}
