package dom

import (
	"strings"
	"testing"
)

// buildDoc constructs:
//
//	<html><body><div id="a">hello<span id="b">world</span></div></body></html>
func buildDoc() *Node {
	doc := NewDocument()
	html := NewElement("html")
	body := NewElement("body")
	div := NewElement("div", "id", "a")
	span := NewElement("span", "id", "b")
	span.AppendChild(NewText("world"))
	div.AppendChild(NewText("hello"))
	div.AppendChild(span)
	body.AppendChild(div)
	html.AppendChild(body)
	doc.AppendChild(html)
	return doc
}

func TestAppendChildLinks(t *testing.T) {
	p := NewElement("div")
	a := NewElement("a")
	b := NewElement("b")
	p.AppendChild(a)
	p.AppendChild(b)
	if p.FirstChild != a || p.LastChild != b {
		t.Fatalf("first/last child wrong")
	}
	if a.NextSibling != b || b.PrevSibling != a {
		t.Fatalf("sibling links wrong")
	}
	if a.Parent != p || b.Parent != p {
		t.Fatalf("parent links wrong")
	}
}

func TestAppendAttachedPanics(t *testing.T) {
	p := NewElement("div")
	c := NewElement("a")
	p.AppendChild(c)
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic appending attached child")
		}
	}()
	NewElement("div").AppendChild(c)
}

func TestInsertBefore(t *testing.T) {
	p := NewElement("ul")
	a, b, c := NewElement("li"), NewElement("li"), NewElement("li")
	p.AppendChild(a)
	p.AppendChild(c)
	p.InsertBefore(b, c)
	got := p.Children()
	if len(got) != 3 || got[0] != a || got[1] != b || got[2] != c {
		t.Fatalf("InsertBefore order wrong: %v", got)
	}
	d := NewElement("li")
	p.InsertBefore(d, nil) // append
	if p.LastChild != d {
		t.Fatalf("InsertBefore(nil) should append")
	}
	e := NewElement("li")
	p.InsertBefore(e, p.FirstChild)
	if p.FirstChild != e {
		t.Fatalf("InsertBefore first child failed")
	}
}

func TestRemoveChild(t *testing.T) {
	p := NewElement("div")
	a, b, c := NewText("a"), NewText("b"), NewText("c")
	p.AppendChild(a)
	p.AppendChild(b)
	p.AppendChild(c)
	p.RemoveChild(b)
	if b.Parent != nil || b.PrevSibling != nil || b.NextSibling != nil {
		t.Fatalf("removed node still linked")
	}
	if a.NextSibling != c || c.PrevSibling != a {
		t.Fatalf("siblings not relinked after removal")
	}
	p.RemoveChildren()
	if p.FirstChild != nil || p.LastChild != nil {
		t.Fatalf("RemoveChildren left children")
	}
}

func TestAttrOperations(t *testing.T) {
	n := NewElement("div")
	if _, ok := n.GetAttr("id"); ok {
		t.Fatalf("unexpected attr on fresh element")
	}
	n.SetAttr("ID", "x")
	if v, ok := n.GetAttr("id"); !ok || v != "x" {
		t.Fatalf("SetAttr should lower-case keys; got %q %v", v, ok)
	}
	n.SetAttr("id", "y")
	if n.AttrOr("id", "") != "y" || len(n.Attr) != 1 {
		t.Fatalf("SetAttr should replace, not duplicate")
	}
	if n.AttrOr("class", "def") != "def" {
		t.Fatalf("AttrOr default failed")
	}
	n.RemoveAttr("id")
	if _, ok := n.GetAttr("id"); ok {
		t.Fatalf("RemoveAttr failed")
	}
	n.RemoveAttr("missing") // must not panic
}

func TestElementByID(t *testing.T) {
	doc := buildDoc()
	if e := doc.ElementByID("b"); e == nil || e.Data != "span" {
		t.Fatalf("ElementByID(b) = %v", e)
	}
	if e := doc.ElementByID("nope"); e != nil {
		t.Fatalf("ElementByID(nope) should be nil")
	}
}

func TestElementsByTag(t *testing.T) {
	doc := buildDoc()
	if got := doc.ElementsByTag("span"); len(got) != 1 {
		t.Fatalf("want 1 span, got %d", len(got))
	}
	all := doc.ElementsByTag("")
	if len(all) != 4 { // html, body, div, span
		t.Fatalf("want 4 elements, got %d", len(all))
	}
	if doc.Body() == nil || doc.Body().Data != "body" {
		t.Fatalf("Body lookup failed")
	}
}

func TestTextContent(t *testing.T) {
	doc := buildDoc()
	if got := doc.TextContent(); got != "helloworld" {
		t.Fatalf("TextContent = %q", got)
	}
	// script text must be excluded
	s := NewElement("script")
	s.AppendChild(NewText("var x = 1;"))
	doc.Body().AppendChild(s)
	if got := doc.TextContent(); got != "helloworld" {
		t.Fatalf("TextContent should skip script, got %q", got)
	}
}

func TestVisibleTextCollapsesWhitespace(t *testing.T) {
	d := NewElement("div")
	d.AppendChild(NewText("  a \n\t b  "))
	d.AppendChild(NewText("c  "))
	if got := d.VisibleText(); got != "a b c" {
		t.Fatalf("VisibleText = %q", got)
	}
}

func TestCollapseWhitespace(t *testing.T) {
	cases := []struct{ in, want string }{
		{"", ""},
		{"   ", ""},
		{"a", "a"},
		{" a ", "a"},
		{"a  b", "a b"},
		{"a\n\r\t\fb", "a b"},
		{"héllo   wörld", "héllo wörld"},
	}
	for _, c := range cases {
		if got := CollapseWhitespace(c.in); got != c.want {
			t.Errorf("CollapseWhitespace(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestClone(t *testing.T) {
	doc := buildDoc()
	c := doc.Clone()
	if !Equal(doc, c) {
		t.Fatalf("clone not equal to original")
	}
	// Mutating the clone must not affect the original.
	c.ElementByID("b").SetAttr("id", "z")
	if doc.ElementByID("b") == nil {
		t.Fatalf("original mutated by clone edit")
	}
	if Equal(doc, c) {
		t.Fatalf("clone should differ after mutation")
	}
}

func TestPathRoundTrip(t *testing.T) {
	doc := buildDoc()
	span := doc.ElementByID("b")
	p := span.Path()
	if p == "" {
		t.Fatalf("empty path")
	}
	got := doc.ByPath(p)
	if got != span {
		t.Fatalf("ByPath(%q) = %v, want span", p, got)
	}
	if doc.ByPath("html[0]/body[0]/div[5]") != nil {
		t.Fatalf("bogus path should resolve to nil")
	}
	if doc.ByPath("") != doc {
		t.Fatalf("empty path should return receiver")
	}
}

func TestPathSecondSibling(t *testing.T) {
	p := NewElement("div")
	a := NewElement("a")
	b := NewElement("a")
	p.AppendChild(NewText("x"))
	p.AppendChild(a)
	p.AppendChild(NewText("y"))
	p.AppendChild(b)
	doc := NewDocument()
	doc.AppendChild(p)
	if got := doc.ByPath(b.Path()); got != b {
		t.Fatalf("ByPath for second sibling = %v", got)
	}
}

func TestRenderBasics(t *testing.T) {
	doc := buildDoc()
	got := OuterHTML(doc)
	want := `<html><body><div id="a">hello<span id="b">world</span></div></body></html>`
	if got != want {
		t.Fatalf("OuterHTML = %q, want %q", got, want)
	}
}

func TestRenderEscaping(t *testing.T) {
	d := NewElement("div", "title", `a"b<c`)
	d.AppendChild(NewText(`x < y & z`))
	got := OuterHTML(d)
	if !strings.Contains(got, `title="a&quot;b&lt;c"`) {
		t.Fatalf("attr not escaped: %q", got)
	}
	if !strings.Contains(got, "x &lt; y &amp; z") {
		t.Fatalf("text not escaped: %q", got)
	}
}

func TestRenderVoidAndRawText(t *testing.T) {
	d := NewElement("div")
	d.AppendChild(NewElement("br"))
	s := NewElement("script")
	s.AppendChild(NewText("if (a < b) { c(); }"))
	d.AppendChild(s)
	got := OuterHTML(d)
	if !strings.Contains(got, "<br>") || strings.Contains(got, "</br>") {
		t.Fatalf("void element rendered wrong: %q", got)
	}
	if !strings.Contains(got, "if (a < b) { c(); }") {
		t.Fatalf("script content must be raw: %q", got)
	}
}

func TestInnerHTML(t *testing.T) {
	doc := buildDoc()
	div := doc.ElementByID("a")
	got := InnerHTML(div)
	if got != `hello<span id="b">world</span>` {
		t.Fatalf("InnerHTML = %q", got)
	}
}

func TestRenderCommentAndDoctype(t *testing.T) {
	doc := NewDocument()
	doc.AppendChild(&Node{Type: DoctypeNode, Data: "html"})
	doc.AppendChild(&Node{Type: CommentNode, Data: " hi "})
	if got := OuterHTML(doc); got != "<!DOCTYPE html><!-- hi -->" {
		t.Fatalf("got %q", got)
	}
}

func TestNodeTypeString(t *testing.T) {
	if DocumentNode.String() != "Document" || ElementNode.String() != "Element" {
		t.Fatalf("NodeType.String broken")
	}
	if NodeType(99).String() == "" {
		t.Fatalf("unknown NodeType should still print")
	}
}
