package dom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCanonicalHashIgnoresAttrOrder(t *testing.T) {
	a := NewElement("div", "id", "x", "class", "y")
	b := NewElement("div", "class", "y", "id", "x")
	if CanonicalHash(a) != CanonicalHash(b) {
		t.Fatalf("hash should ignore attribute order")
	}
	if !Equal(a, b) {
		t.Fatalf("Equal should ignore attribute order")
	}
}

func TestCanonicalHashIgnoresWhitespaceAndComments(t *testing.T) {
	a := NewElement("div")
	a.AppendChild(NewText("hello   world"))
	b := NewElement("div")
	b.AppendChild(NewText("hello world"))
	b.AppendChild(&Node{Type: CommentNode, Data: "noise"})
	if CanonicalHash(a) != CanonicalHash(b) {
		t.Fatalf("hash should collapse whitespace and skip comments")
	}
	c := NewElement("div")
	c.AppendChild(NewText("   "))
	d := NewElement("div")
	if CanonicalHash(c) != CanonicalHash(d) {
		t.Fatalf("whitespace-only text should be insignificant")
	}
}

func TestCanonicalHashDistinguishesContent(t *testing.T) {
	a := NewElement("div")
	a.AppendChild(NewText("page 1"))
	b := NewElement("div")
	b.AppendChild(NewText("page 2"))
	if CanonicalHash(a) == CanonicalHash(b) {
		t.Fatalf("different content must hash differently")
	}
	c := NewElement("span")
	c.AppendChild(NewText("page 1"))
	if CanonicalHash(a) == CanonicalHash(c) {
		t.Fatalf("different tags must hash differently")
	}
}

func TestCanonicalHashAttrBoundary(t *testing.T) {
	// Attribute values must be length-delimited so that ("ab","c") does
	// not collide with ("a","bc") across attribute boundaries.
	a := NewElement("div", "x", "ab", "y", "c")
	b := NewElement("div", "x", "a", "y", "bc")
	if CanonicalHash(a) == CanonicalHash(b) {
		t.Fatalf("attribute boundary collision")
	}
}

func TestCanonicalHashIgnoresScriptText(t *testing.T) {
	a := NewElement("div")
	sa := NewElement("script")
	sa.AppendChild(NewText("var x=1;"))
	a.AppendChild(sa)
	b := NewElement("div")
	sb := NewElement("script")
	sb.AppendChild(NewText("var x=2;"))
	b.AppendChild(sb)
	if CanonicalHash(a) != CanonicalHash(b) {
		t.Fatalf("script text should not affect state hash")
	}
}

func TestQuickHashConsistentWithCanonical(t *testing.T) {
	a := buildDoc()
	b := buildDoc()
	if QuickHash(a) != QuickHash(b) {
		t.Fatalf("equal trees must have equal quick hashes")
	}
	b.ElementByID("b").FirstChild.Data = "changed"
	if QuickHash(a) == QuickHash(b) {
		t.Fatalf("changed tree should (almost surely) change quick hash")
	}
}

func TestEqualStructural(t *testing.T) {
	a := buildDoc()
	b := buildDoc()
	if !Equal(a, b) {
		t.Fatalf("identical trees not Equal")
	}
	b.ElementByID("a").AppendChild(NewElement("p"))
	if Equal(a, b) {
		t.Fatalf("trees with extra child reported Equal")
	}
}

// randomTree builds a random small DOM tree from a seeded source.
func randomTree(r *rand.Rand, depth int) *Node {
	tags := []string{"div", "span", "p", "a", "li"}
	n := NewElement(tags[r.Intn(len(tags))])
	if r.Intn(2) == 0 {
		n.SetAttr("id", string(rune('a'+r.Intn(26))))
	}
	if r.Intn(2) == 0 {
		n.SetAttr("class", string(rune('a'+r.Intn(26))))
	}
	kids := r.Intn(3)
	for i := 0; i < kids; i++ {
		if depth > 0 && r.Intn(2) == 0 {
			n.AppendChild(randomTree(r, depth-1))
		} else {
			n.AppendChild(NewText(string(rune('a' + r.Intn(26)))))
		}
	}
	return n
}

// Property: Clone preserves CanonicalHash and Equal; hash equality matches
// structural equality on independently generated trees (no false merges
// observed across the sample).
func TestPropertyCloneHashEqual(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tr := randomTree(r, 3)
		cl := tr.Clone()
		return CanonicalHash(tr) == CanonicalHash(cl) && Equal(tr, cl)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: shuffling attribute order never changes the canonical hash.
func TestPropertyAttrOrderInvariance(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := NewElement("div")
		keys := []string{"id", "class", "href", "title", "data-x"}
		for _, k := range keys {
			n.SetAttr(k, string(rune('a'+r.Intn(26))))
		}
		h1 := CanonicalHash(n)
		m := n.Clone()
		r.Shuffle(len(m.Attr), func(i, j int) { m.Attr[i], m.Attr[j] = m.Attr[j], m.Attr[i] })
		return h1 == CanonicalHash(m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: structural equality implies hash equality.
func TestPropertyEqualImpliesSameHash(t *testing.T) {
	f := func(seed int64) bool {
		r1 := rand.New(rand.NewSource(seed))
		r2 := rand.New(rand.NewSource(seed))
		a := randomTree(r1, 3)
		b := randomTree(r2, 3)
		if !Equal(a, b) {
			return true // vacuous
		}
		return CanonicalHash(a) == CanonicalHash(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCanonicalHash(b *testing.B) {
	doc := buildDoc()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		CanonicalHash(doc)
	}
}

func BenchmarkQuickHash(b *testing.B) {
	doc := buildDoc()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		QuickHash(doc)
	}
}
