// Package model implements the AJAX page model of thesis chapter 2: the
// Transition Graph whose nodes are application states (DOM trees,
// identified by canonical content hash) and whose edges are transitions
// annotated with the triggering event's source element, event type,
// action, and modified targets.
package model

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"

	"ajaxcrawl/internal/dom"
)

// StateID identifies a state within one page's graph. The initial state
// is always 0.
type StateID int

// State is one application state: a snapshot of the page's DOM.
type State struct {
	ID   StateID
	Hash dom.Hash
	// Text is the visible text of the state (whitespace-collapsed) —
	// what the indexer tokenizes.
	Text string
	// Depth is the BFS distance from the initial state; AJAXRank decays
	// with it.
	Depth int
}

// Transition is one edge: invoking Event on the Source element while in
// From yields To. Action and Targets describe what changed (thesis
// Table 2.1 columns).
type Transition struct {
	From, To StateID
	// Source identifies the source element (id, or structural path).
	Source string
	// Event is the trigger type ("onclick", ...).
	Event string
	// Code is the handler source, kept so the state can be reconstructed
	// by replaying events (§5.4).
	Code string
	// SourcePath is the structural path of the source element in From.
	SourcePath string
	// Targets are the ids of elements whose content changed.
	Targets []string
	// Action summarizes the DOM mutation (e.g. "innerHTML").
	Action string
	// Probe is the input value typed into the source element for
	// form-driven transitions ("" for plain events). Replay fills the
	// field with this value before dispatching.
	Probe string
}

// Graph is the transition graph of one AJAX page (one URL).
type Graph struct {
	URL         string
	States      []*State
	Transitions []*Transition
	// Initial is the state built after onload (always 0 in practice).
	Initial StateID

	byHash map[dom.Hash]StateID
	adj    map[StateID][]*Transition
}

// NewGraph returns an empty graph for a URL.
func NewGraph(url string) *Graph {
	return &Graph{
		URL:    url,
		byHash: make(map[dom.Hash]StateID),
		adj:    make(map[StateID][]*Transition),
	}
}

// AddState inserts a state snapshot and returns its ID. If a state with
// the same hash already exists, that state's ID is returned and isNew is
// false — the duplicate-elimination point of the crawling algorithm
// (Alg. 3.1.1 lines 12-14).
func (g *Graph) AddState(h dom.Hash, text string, depth int) (id StateID, isNew bool) {
	if id, ok := g.byHash[h]; ok {
		return id, false
	}
	id = StateID(len(g.States))
	g.States = append(g.States, &State{ID: id, Hash: h, Text: text, Depth: depth})
	g.byHash[h] = id
	return id, true
}

// FindByHash returns the state with hash h, if any.
func (g *Graph) FindByHash(h dom.Hash) (StateID, bool) {
	id, ok := g.byHash[h]
	return id, ok
}

// State returns the state with the given ID, or nil.
func (g *Graph) State(id StateID) *State {
	if int(id) < 0 || int(id) >= len(g.States) {
		return nil
	}
	return g.States[id]
}

// AddTransition records an edge. Parallel edges (different events leading
// between the same pair of states) are kept: they carry distinct event
// annotations.
func (g *Graph) AddTransition(t *Transition) {
	g.Transitions = append(g.Transitions, t)
	g.adj[t.From] = append(g.adj[t.From], t)
}

// Out returns the outgoing transitions of a state.
func (g *Graph) Out(id StateID) []*Transition { return g.adj[id] }

// NumStates returns the number of distinct states.
func (g *Graph) NumStates() int { return len(g.States) }

// PathTo returns a shortest event path (sequence of transitions) from the
// initial state to target, or nil if unreachable. Result aggregation
// replays this path to reconstruct the state for the user (§5.4).
func (g *Graph) PathTo(target StateID) []*Transition {
	if target == g.Initial {
		return []*Transition{}
	}
	type hop struct {
		prev StateID
		via  *Transition
	}
	visited := map[StateID]hop{g.Initial: {}}
	queue := []StateID{g.Initial}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, t := range g.adj[cur] {
			if _, seen := visited[t.To]; seen {
				continue
			}
			visited[t.To] = hop{prev: cur, via: t}
			if t.To == target {
				// Reconstruct.
				var path []*Transition
				for at := target; at != g.Initial; {
					h := visited[at]
					path = append([]*Transition{h.via}, path...)
					at = h.prev
				}
				return path
			}
			queue = append(queue, t.To)
		}
	}
	return nil
}

// Stats summarizes a graph for reporting.
type Stats struct {
	URL         string
	States      int
	Transitions int
}

// Stats returns summary counts.
func (g *Graph) Stats() Stats {
	return Stats{URL: g.URL, States: len(g.States), Transitions: len(g.Transitions)}
}

// rebuild restores derived maps after deserialization.
func (g *Graph) rebuild() {
	g.byHash = make(map[dom.Hash]StateID, len(g.States))
	for _, s := range g.States {
		g.byHash[s.Hash] = s.ID
	}
	g.adj = make(map[StateID][]*Transition)
	for _, t := range g.Transitions {
		g.adj[t.From] = append(g.adj[t.From], t)
	}
}

// graphWire is the gob wire format (exported fields only).
type graphWire struct {
	URL         string
	States      []*State
	Transitions []*Transition
	Initial     StateID
}

// GobEncode implements gob.GobEncoder.
func (g *Graph) GobEncode() ([]byte, error) {
	return gobEncode(graphWire{URL: g.URL, States: g.States, Transitions: g.Transitions, Initial: g.Initial})
}

// GobDecode implements gob.GobDecoder.
func (g *Graph) GobDecode(data []byte) error {
	var w graphWire
	if err := gobDecode(data, &w); err != nil {
		return err
	}
	g.URL = w.URL
	g.States = w.States
	g.Transitions = w.Transitions
	g.Initial = w.Initial
	g.rebuild()
	return nil
}

// EncodeGraph serializes one graph to bytes — the payload format the
// checkpoint journal stores completed pages in. It reuses the gob wire
// format of SaveAll/LoadAll, so a journaled graph round-trips through
// exactly the code path the partition model files use.
func EncodeGraph(g *Graph) ([]byte, error) {
	data, err := gobEncode(g)
	if err != nil {
		return nil, fmt.Errorf("model: encode graph %s: %w", g.URL, err)
	}
	return data, nil
}

// DecodeGraph deserializes a graph encoded by EncodeGraph, rebuilding
// the derived lookup maps.
func DecodeGraph(data []byte) (*Graph, error) {
	var g Graph
	if err := gobDecode(data, &g); err != nil {
		return nil, fmt.Errorf("model: decode graph: %w", err)
	}
	return &g, nil
}

// ModelFileName is the file one partition's application models are
// stored under (the thesis serializes per-partition app models too,
// §6.3.2).
const ModelFileName = "ajaxmodels.gob"

// SaveAll writes a set of graphs to dir/ModelFileName.
func SaveAll(dir string, graphs []*Graph) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("model: save: %w", err)
	}
	f, err := os.Create(filepath.Join(dir, ModelFileName))
	if err != nil {
		return fmt.Errorf("model: save: %w", err)
	}
	if err := gob.NewEncoder(f).Encode(graphs); err != nil {
		f.Close()
		return fmt.Errorf("model: encode: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("model: save: %w", err)
	}
	return nil
}

// gobEncode/gobDecode serialize a value through a byte slice, used by the
// GobEncoder/GobDecoder implementations.
func gobEncode(v interface{}) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func gobDecode(data []byte, v interface{}) error {
	return gob.NewDecoder(bytes.NewReader(data)).Decode(v)
}

// LoadAll reads the graphs stored in dir/ModelFileName.
func LoadAll(dir string) ([]*Graph, error) {
	f, err := os.Open(filepath.Join(dir, ModelFileName))
	if err != nil {
		return nil, fmt.Errorf("model: load: %w", err)
	}
	defer f.Close()
	var graphs []*Graph
	if err := gob.NewDecoder(f).Decode(&graphs); err != nil {
		return nil, fmt.Errorf("model: decode: %w", err)
	}
	return graphs, nil
}
