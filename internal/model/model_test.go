package model

import (
	"path/filepath"
	"testing"
	"testing/quick"

	"ajaxcrawl/internal/dom"
)

func h(b byte) dom.Hash {
	var out dom.Hash
	out[0] = b
	return out
}

// lineGraph builds 0 -> 1 -> 2 -> 3 with next events plus a back edge
// 2 -> 1 (prev) and a duplicate-producing jump 0 -> 2.
func lineGraph() *Graph {
	g := NewGraph("/watch?v=test")
	for i := 0; i < 4; i++ {
		g.AddState(h(byte(i)), "text of state", i)
	}
	g.AddTransition(&Transition{From: 0, To: 1, Source: "nextPage", Event: "onclick", Code: "load(2)"})
	g.AddTransition(&Transition{From: 1, To: 2, Source: "nextPage", Event: "onclick", Code: "load(3)"})
	g.AddTransition(&Transition{From: 2, To: 3, Source: "nextPage", Event: "onclick", Code: "load(4)"})
	g.AddTransition(&Transition{From: 2, To: 1, Source: "prevPage", Event: "onclick", Code: "load(2)"})
	g.AddTransition(&Transition{From: 0, To: 2, Source: "page3", Event: "onclick", Code: "load(3)"})
	return g
}

func TestAddStateDeduplicates(t *testing.T) {
	g := NewGraph("u")
	id0, new0 := g.AddState(h(1), "a", 0)
	id1, new1 := g.AddState(h(2), "b", 1)
	dup, newDup := g.AddState(h(1), "a again", 5)
	if !new0 || !new1 {
		t.Fatalf("fresh states must be new")
	}
	if newDup || dup != id0 {
		t.Fatalf("duplicate hash must return the existing state (got %v new=%v)", dup, newDup)
	}
	if id1 != 1 || g.NumStates() != 2 {
		t.Fatalf("state ids/count wrong: %v %d", id1, g.NumStates())
	}
	if got, ok := g.FindByHash(h(2)); !ok || got != id1 {
		t.Fatalf("FindByHash = %v %v", got, ok)
	}
	if _, ok := g.FindByHash(h(9)); ok {
		t.Fatalf("FindByHash of unknown hash succeeded")
	}
}

func TestStateLookupBounds(t *testing.T) {
	g := lineGraph()
	if g.State(0) == nil || g.State(3) == nil {
		t.Fatalf("valid states missing")
	}
	if g.State(-1) != nil || g.State(99) != nil {
		t.Fatalf("out-of-range lookup should be nil")
	}
}

func TestOutEdges(t *testing.T) {
	g := lineGraph()
	if got := len(g.Out(0)); got != 2 {
		t.Fatalf("out(0) = %d", got)
	}
	if got := len(g.Out(2)); got != 2 {
		t.Fatalf("out(2) = %d", got)
	}
	if got := len(g.Out(3)); got != 0 {
		t.Fatalf("out(3) = %d", got)
	}
}

func TestPathTo(t *testing.T) {
	g := lineGraph()
	if p := g.PathTo(0); p == nil || len(p) != 0 {
		t.Fatalf("path to initial should be empty, got %v", p)
	}
	p := g.PathTo(3)
	if p == nil {
		t.Fatalf("state 3 unreachable")
	}
	// Shortest route is 0 -(jump)-> 2 -> 3.
	if len(p) != 2 || p[0].To != 2 || p[1].To != 3 {
		t.Fatalf("path = %v", transitionsTo(p))
	}
	// From must chain.
	if p[0].From != 0 || p[1].From != 2 {
		t.Fatalf("path froms wrong: %v", transitionsTo(p))
	}
	// Unreachable state.
	g2 := NewGraph("u")
	g2.AddState(h(1), "", 0)
	g2.AddState(h(2), "", 0)
	if g2.PathTo(1) != nil {
		t.Fatalf("unreachable state should have nil path")
	}
}

func transitionsTo(ts []*Transition) []StateID {
	out := make([]StateID, len(ts))
	for i, t := range ts {
		out[i] = t.To
	}
	return out
}

func TestStats(t *testing.T) {
	g := lineGraph()
	st := g.Stats()
	if st.States != 4 || st.Transitions != 5 || st.URL != "/watch?v=test" {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	g1 := lineGraph()
	g2 := NewGraph("/watch?v=two")
	g2.AddState(h(7), "single", 0)
	if err := SaveAll(dir, []*Graph{g1, g2}); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadAll(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != 2 {
		t.Fatalf("loaded %d graphs", len(loaded))
	}
	l := loaded[0]
	if l.URL != g1.URL || l.NumStates() != g1.NumStates() || len(l.Transitions) != len(g1.Transitions) {
		t.Fatalf("round trip lost data: %+v", l.Stats())
	}
	// Derived structures must be rebuilt: hash index and adjacency.
	if id, ok := l.FindByHash(h(2)); !ok || id != 2 {
		t.Fatalf("hash index not rebuilt")
	}
	if len(l.Out(0)) != 2 {
		t.Fatalf("adjacency not rebuilt")
	}
	if p := l.PathTo(3); len(p) != 2 {
		t.Fatalf("PathTo after reload = %v", p)
	}
	// State text survives.
	if l.State(0).Text != "text of state" {
		t.Fatalf("state text lost")
	}
}

func TestLoadMissing(t *testing.T) {
	if _, err := LoadAll(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatalf("loading from missing dir should fail")
	}
}

// Property: for random DAG-ish graphs, every state reported reachable by
// PathTo is reached by replaying the returned transitions.
func TestPropertyPathReplayConsistent(t *testing.T) {
	f := func(seed int64) bool {
		g := NewGraph("u")
		n := 2 + int(uint64(seed)%8)
		for i := 0; i < n; i++ {
			g.AddState(h(byte(i)), "", i)
		}
		// Edges i -> i+1 plus a few extra from the seed.
		for i := 0; i+1 < n; i++ {
			g.AddTransition(&Transition{From: StateID(i), To: StateID(i + 1)})
		}
		x := uint64(seed)
		for k := 0; k < 4; k++ {
			from := StateID(x % uint64(n))
			x /= uint64(n)
			to := StateID(x % uint64(n))
			x = x*2654435761 + 1
			g.AddTransition(&Transition{From: from, To: to})
		}
		for i := 0; i < n; i++ {
			p := g.PathTo(StateID(i))
			if p == nil {
				continue
			}
			at := g.Initial
			for _, tr := range p {
				if tr.From != at {
					return false
				}
				at = tr.To
			}
			if at != StateID(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
