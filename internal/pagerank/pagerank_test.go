package pagerank

import (
	"math"
	"testing"
	"testing/quick"
)

func sum(m map[string]float64) float64 {
	s := 0.0
	for _, v := range m {
		s += v
	}
	return s
}

func TestEmptyGraph(t *testing.T) {
	if got := Compute(nil, Options{}); len(got) != 0 {
		t.Fatalf("empty graph rank = %v", got)
	}
}

func TestSingleNode(t *testing.T) {
	r := Compute(map[string][]string{"a": nil}, Options{})
	if math.Abs(r["a"]-1) > 1e-9 {
		t.Fatalf("single node rank = %v", r["a"])
	}
}

func TestSymmetricCycleIsUniform(t *testing.T) {
	links := map[string][]string{"a": {"b"}, "b": {"c"}, "c": {"a"}}
	r := Compute(links, Options{})
	for n, v := range r {
		if math.Abs(v-1.0/3) > 1e-6 {
			t.Fatalf("cycle rank %s = %v, want 1/3", n, v)
		}
	}
}

func TestHubGetsHigherRank(t *testing.T) {
	// Everyone links to "hub"; hub links back to one node.
	links := map[string][]string{
		"a": {"hub"}, "b": {"hub"}, "c": {"hub"}, "hub": {"a"},
	}
	r := Compute(links, Options{})
	if r["hub"] <= r["b"] || r["hub"] <= r["c"] {
		t.Fatalf("hub not ranked highest: %v", r)
	}
	// "a" receives the hub's mass, so it should outrank b and c.
	if r["a"] <= r["b"] {
		t.Fatalf("a should outrank b: %v", r)
	}
}

func TestLinkOnlyTargetsIncluded(t *testing.T) {
	r := Compute(map[string][]string{"a": {"sink"}}, Options{})
	if _, ok := r["sink"]; !ok {
		t.Fatalf("sink missing from result: %v", r)
	}
}

func TestDanglingNodesConserveMass(t *testing.T) {
	links := map[string][]string{"a": {"b"}, "b": nil}
	r := Compute(links, Options{})
	if math.Abs(sum(r)-1) > 1e-6 {
		t.Fatalf("ranks sum to %v, want 1", sum(r))
	}
}

func TestSelfAndDuplicateLinksIgnored(t *testing.T) {
	withNoise := Compute(map[string][]string{
		"a": {"a", "b", "b", "b"}, "b": {"a"},
	}, Options{})
	clean := Compute(map[string][]string{
		"a": {"b"}, "b": {"a"},
	}, Options{})
	for n := range clean {
		if math.Abs(withNoise[n]-clean[n]) > 1e-9 {
			t.Fatalf("self/dup links changed ranks: %v vs %v", withNoise, clean)
		}
	}
}

func TestDeterminism(t *testing.T) {
	links := map[string][]string{
		"a": {"b", "c"}, "b": {"c"}, "c": {"a", "d"}, "d": {"b"},
	}
	r1 := Compute(links, Options{})
	r2 := Compute(links, Options{})
	for n := range r1 {
		if r1[n] != r2[n] {
			t.Fatalf("nondeterministic rank for %s", n)
		}
	}
}

// Property: for arbitrary random graphs, ranks are positive and sum to 1.
func TestPropertyStochastic(t *testing.T) {
	f := func(edges []uint8) bool {
		links := map[string][]string{}
		names := []string{"a", "b", "c", "d", "e", "f"}
		for i := 0; i+1 < len(edges); i += 2 {
			from := names[int(edges[i])%len(names)]
			to := names[int(edges[i+1])%len(names)]
			links[from] = append(links[from], to)
		}
		if len(links) == 0 {
			return true
		}
		r := Compute(links, Options{})
		if math.Abs(sum(r)-1) > 1e-6 {
			return false
		}
		for _, v := range r {
			if v <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPageRank1000Nodes(b *testing.B) {
	links := map[string][]string{}
	for i := 0; i < 1000; i++ {
		from := nodeName(i)
		for j := 1; j <= 5; j++ {
			links[from] = append(links[from], nodeName((i+j*97)%1000))
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Compute(links, Options{})
	}
}

func nodeName(i int) string {
	return string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)) + string(rune('a'+i/676))
}
