// Package pagerank computes PageRank over the hyperlink graph built by
// the precrawling phase (thesis §6.2.1). It is the URL-level component of
// the ranking formula 5.3.
package pagerank

import "sort"

// Options tune the power iteration.
type Options struct {
	// Damping is the damping factor d (default 0.85).
	Damping float64
	// Iterations is the maximum number of power iterations (default 50).
	Iterations int
	// Epsilon stops iteration early when the L1 delta falls below it
	// (default 1e-9).
	Epsilon float64
}

func (o Options) withDefaults() Options {
	if o.Damping == 0 {
		o.Damping = 0.85
	}
	if o.Iterations == 0 {
		o.Iterations = 50
	}
	if o.Epsilon == 0 {
		o.Epsilon = 1e-9
	}
	return o
}

// Compute returns the PageRank of every node in the outbound-link map.
// Nodes that appear only as link targets are included. Dangling nodes
// (no outlinks) distribute their mass uniformly, the standard fix. Ranks
// sum to 1.
func Compute(links map[string][]string, opts Options) map[string]float64 {
	opts = opts.withDefaults()

	// Collect the node universe deterministically.
	nodeSet := make(map[string]bool, len(links))
	for from, tos := range links {
		nodeSet[from] = true
		for _, to := range tos {
			nodeSet[to] = true
		}
	}
	nodes := make([]string, 0, len(nodeSet))
	for n := range nodeSet {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	n := len(nodes)
	if n == 0 {
		return map[string]float64{}
	}
	idx := make(map[string]int, n)
	for i, name := range nodes {
		idx[name] = i
	}

	// Dedup outlinks and drop self-links (standard practice).
	out := make([][]int, n)
	for from, tos := range links {
		fi := idx[from]
		seen := map[int]bool{}
		for _, to := range tos {
			ti := idx[to]
			if ti == fi || seen[ti] {
				continue
			}
			seen[ti] = true
			out[fi] = append(out[fi], ti)
		}
	}

	rank := make([]float64, n)
	next := make([]float64, n)
	for i := range rank {
		rank[i] = 1.0 / float64(n)
	}
	d := opts.Damping
	base := (1 - d) / float64(n)
	for iter := 0; iter < opts.Iterations; iter++ {
		dangling := 0.0
		for i := range next {
			next[i] = base
		}
		for i, tos := range out {
			if len(tos) == 0 {
				dangling += rank[i]
				continue
			}
			share := d * rank[i] / float64(len(tos))
			for _, t := range tos {
				next[t] += share
			}
		}
		spread := d * dangling / float64(n)
		delta := 0.0
		for i := range next {
			next[i] += spread
			delta += abs(next[i] - rank[i])
		}
		rank, next = next, rank
		if delta < opts.Epsilon {
			break
		}
	}

	result := make(map[string]float64, n)
	for i, name := range nodes {
		result[name] = rank[i]
	}
	return result
}

func abs(f float64) float64 {
	if f < 0 {
		return -f
	}
	return f
}
