package js

// The AST node types. Every node records the source line it starts on so
// runtime errors can point at code.

// Node is implemented by all AST nodes.
type Node interface {
	Pos() int // source line
}

type base struct{ Line int }

func (b base) Pos() int { return b.Line }

// ---- Expressions ----

// Ident is a variable reference.
type Ident struct {
	base
	Name string
}

// NumberLit is a numeric literal.
type NumberLit struct {
	base
	Value float64
}

// StringLit is a string literal.
type StringLit struct {
	base
	Value string
}

// BoolLit is true or false.
type BoolLit struct {
	base
	Value bool
}

// NullLit is the null literal.
type NullLit struct{ base }

// ThisLit is the `this` expression.
type ThisLit struct{ base }

// ArrayLit is [a, b, ...].
type ArrayLit struct {
	base
	Elems []Node
}

// ObjectLit is {k: v, ...}.
type ObjectLit struct {
	base
	Keys   []string
	Values []Node
}

// FuncLit is a function expression or declaration body.
type FuncLit struct {
	base
	Name   string // "" for anonymous
	Params []string
	Body   []Node
	// VarNames are the var-declared names hoisted to function scope,
	// collected at parse time.
	VarNames []string
	// FuncDecls are nested function declarations, hoisted.
	FuncDecls []*FuncLit
}

// Unary is a prefix operator application. Op is the token type
// (NOT, MINUS, PLUS, BITNOT, INC, DEC) or one of the keyword operators
// recorded in KwOp ("typeof", "void", "delete").
type Unary struct {
	base
	Op   TokenType
	KwOp string
	X    Node
}

// Postfix is x++ or x--.
type Postfix struct {
	base
	Op TokenType
	X  Node
}

// Binary is a binary operator application. For `in` and `instanceof`,
// Op is KEYWORD and KwOp names the operator.
type Binary struct {
	base
	Op   TokenType
	KwOp string
	L, R Node
}

// Logical is && or || (short-circuiting).
type Logical struct {
	base
	Op   TokenType
	L, R Node
}

// Cond is the ternary ?: expression.
type Cond struct {
	base
	Test, Then, Else Node
}

// Assign is an assignment. Op is ASSIGN or a compound assignment token.
type Assign struct {
	base
	Op     TokenType
	Target Node // Ident or Member
	Value  Node
}

// Member is x.Name or x[Index] (exactly one of Name/Index is set).
type Member struct {
	base
	X     Node
	Name  string
	Index Node
}

// Call is a function call.
type Call struct {
	base
	Fn   Node
	Args []Node
}

// New is a constructor call.
type NewExpr struct {
	base
	Fn   Node
	Args []Node
}

// Seq is the comma operator: evaluate all, yield last.
type Seq struct {
	base
	Exprs []Node
}

// ---- Statements ----

// VarDecl declares one or more variables.
type VarDecl struct {
	base
	Names []string
	Inits []Node // nil entries for bare declarations
}

// ExprStmt is an expression used as a statement.
type ExprStmt struct {
	base
	X Node
}

// Block is { ... }.
type Block struct {
	base
	Stmts []Node
}

// If is if/else.
type If struct {
	base
	Test       Node
	Then, Else Node // Else may be nil
}

// While is a while loop.
type While struct {
	base
	Test Node
	Body Node
}

// DoWhile is a do/while loop.
type DoWhile struct {
	base
	Body Node
	Test Node
}

// For is the classic three-clause for loop. Any clause may be nil.
// Init is either a VarDecl or an expression node.
type For struct {
	base
	Init, Test, Post Node
	Body             Node
}

// ForIn is for (k in obj). If Decl, the loop variable is var-declared.
type ForIn struct {
	base
	Name string
	Decl bool
	Obj  Node
	Body Node
}

// Return returns from the enclosing function.
type Return struct {
	base
	Value Node // nil for bare return
}

// Break exits the nearest loop or switch (or the named enclosing
// statement when Label is set).
type Break struct {
	base
	Label string
}

// Continue continues the nearest loop (or the named enclosing loop when
// Label is set).
type Continue struct {
	base
	Label string
}

// Labeled wraps a statement with a label: `name: stmt`.
type Labeled struct {
	base
	Name string
	Stmt Node
}

// Throw raises a value.
type Throw struct {
	base
	Value Node
}

// Try is try/catch/finally. Catch and Finally may be nil (not both).
type Try struct {
	base
	Body      *Block
	CatchName string
	Catch     *Block
	Finally   *Block
}

// Switch is a switch statement. A DefaultIdx of -1 means no default.
type Switch struct {
	base
	Disc       Node
	Cases      []SwitchCase
	DefaultIdx int
}

// SwitchCase is one case clause. Test is nil for the default clause.
type SwitchCase struct {
	Test  Node
	Stmts []Node
}

// FuncDecl wraps a function declaration statement.
type FuncDecl struct {
	base
	Fn *FuncLit
}

// Empty is the empty statement `;`.
type Empty struct{ base }

// Program is a parsed script.
type Program struct {
	Stmts []Node
	// Hoisted names for the top-level scope.
	VarNames  []string
	FuncDecls []*FuncLit
}
