package js

import (
	"testing"
	"testing/quick"
)

// lex returns the token types of src, failing the test on lex errors.
func lex(t *testing.T, src string) []Token {
	t.Helper()
	toks, err := lexAll(src)
	if err != nil {
		t.Fatalf("lexAll(%q): %v", src, err)
	}
	return toks
}

func TestLexNumbers(t *testing.T) {
	cases := []struct {
		src  string
		want float64
	}{
		{"0", 0},
		{"42", 42},
		{"3.25", 3.25},
		{".5", 0.5},
		{"1e3", 1000},
		{"1.5e-2", 0.015},
		{"1E+2", 100},
		{"0x1f", 31},
		{"0XFF", 255},
	}
	for _, c := range cases {
		toks := lex(t, c.src)
		if toks[0].Type != NUMBER || toks[0].Num != c.want {
			t.Errorf("lex(%q) = %v (%v), want %v", c.src, toks[0].Type, toks[0].Num, c.want)
		}
	}
}

func TestLexNumberFollowedByIdent(t *testing.T) {
	// `1e` where e is not an exponent: the number ends, an ident starts.
	toks := lex(t, "1e x")
	if toks[0].Type != NUMBER || toks[0].Num != 1 {
		t.Fatalf("1e should lex as 1 then ident: %v", toks)
	}
	if toks[1].Type != IDENT || toks[1].Lit != "e" {
		t.Fatalf("expected ident e, got %v", toks[1])
	}
}

func TestLexStrings(t *testing.T) {
	cases := []struct{ src, want string }{
		{`"plain"`, "plain"},
		{`'single'`, "single"},
		{`"tab\tend"`, "tab\tend"},
		{`"quote\"in"`, `quote"in`},
		{`"uniA"`, "uniA"},
		{`"hex\x41"`, "hexA"},
		{`"null\0x"`, "null\x00x"},
		{"\"cont\\\ninued\"", "continued"},
	}
	for _, c := range cases {
		toks := lex(t, c.src)
		if toks[0].Type != STRING || toks[0].Lit != c.want {
			t.Errorf("lex(%s) = %q, want %q", c.src, toks[0].Lit, c.want)
		}
	}
}

func TestLexOperatorsLongestMatch(t *testing.T) {
	cases := []struct {
		src  string
		want []TokenType
	}{
		{"===", []TokenType{SEQ, EOF}},
		{"==", []TokenType{EQ, EOF}},
		{"= ==", []TokenType{ASSIGN, EQ, EOF}},
		{">>>", []TokenType{USHR, EOF}},
		{">> >", []TokenType{SHR, GT, EOF}},
		{"+++", []TokenType{INC, PLUS, EOF}},
		{"a+=b", []TokenType{IDENT, PLUSASSIGN, IDENT, EOF}},
		{"!==!", []TokenType{SNEQ, NOT, EOF}},
		{"&&&", []TokenType{AND, BITAND, EOF}},
	}
	for _, c := range cases {
		toks := lex(t, c.src)
		for i, want := range c.want {
			if toks[i].Type != want {
				t.Errorf("lex(%q)[%d] = %v, want %v", c.src, i, toks[i].Type, want)
			}
		}
	}
}

func TestLexKeywordsVsIdents(t *testing.T) {
	toks := lex(t, "var varx if iff function functions")
	wantTypes := []TokenType{KEYWORD, IDENT, KEYWORD, IDENT, KEYWORD, IDENT}
	for i, want := range wantTypes {
		if toks[i].Type != want {
			t.Errorf("token %d (%s): %v, want %v", i, toks[i].Lit, toks[i].Type, want)
		}
	}
}

func TestLexNewlineTracking(t *testing.T) {
	toks := lex(t, "a\nb c")
	if toks[0].NewlineBefore {
		t.Fatalf("first token should not be newline-marked")
	}
	if !toks[1].NewlineBefore {
		t.Fatalf("b follows a newline")
	}
	if toks[2].NewlineBefore {
		t.Fatalf("c does not follow a newline")
	}
	// Newline inside a block comment counts.
	toks = lex(t, "a /* x\ny */ b")
	if !toks[1].NewlineBefore {
		t.Fatalf("newline inside block comment must mark the next token")
	}
}

func TestLexPositions(t *testing.T) {
	toks := lex(t, "a\n  bb\n\tccc")
	if toks[0].Line != 1 || toks[1].Line != 2 || toks[2].Line != 3 {
		t.Fatalf("lines = %d %d %d", toks[0].Line, toks[1].Line, toks[2].Line)
	}
	if toks[1].Col != 3 {
		t.Fatalf("bb col = %d, want 3", toks[1].Col)
	}
}

func TestLexUnicodeIdentifiers(t *testing.T) {
	toks := lex(t, "café = 1; _x$2 = café")
	if toks[0].Type != IDENT || toks[0].Lit != "café" {
		t.Fatalf("unicode ident failed: %v", toks[0])
	}
	if toks[4].Type != IDENT || toks[4].Lit != "_x$2" {
		t.Fatalf("$_digit ident failed: %v", toks[4])
	}
}

func TestLexErrors(t *testing.T) {
	bad := []string{
		`"unterminated`,
		`'unterminated`,
		"\"newline\nin string\"",
		"/* unterminated comment",
		"@",
		`"bad \x escape: \xZZ"`,
		"0x",
	}
	for _, src := range bad {
		if _, err := lexAll(src); err == nil {
			t.Errorf("lexAll(%q) should fail", src)
		}
	}
}

// Property: lexing never panics on arbitrary input, and on success the
// token stream always ends with EOF.
func TestPropertyLexTotal(t *testing.T) {
	f := func(src string) bool {
		toks, err := lexAll(src)
		if err != nil {
			return true // rejected input is fine
		}
		return len(toks) > 0 && toks[len(toks)-1].Type == EOF
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestParseASTShapes(t *testing.T) {
	prog, err := Parse("var x = 1 + 2 * 3;")
	if err != nil {
		t.Fatal(err)
	}
	decl, ok := prog.Stmts[0].(*VarDecl)
	if !ok {
		t.Fatalf("stmt = %T", prog.Stmts[0])
	}
	// Precedence: + at the top, * below.
	add, ok := decl.Inits[0].(*Binary)
	if !ok || add.Op != PLUS {
		t.Fatalf("init = %T", decl.Inits[0])
	}
	mul, ok := add.R.(*Binary)
	if !ok || mul.Op != STAR {
		t.Fatalf("rhs = %T", add.R)
	}
}

func TestParseRightAssociativeAssignment(t *testing.T) {
	prog, err := Parse("a = b = 3")
	if err != nil {
		t.Fatal(err)
	}
	outer := prog.Stmts[0].(*ExprStmt).X.(*Assign)
	if _, ok := outer.Value.(*Assign); !ok {
		t.Fatalf("assignment not right-associative: %T", outer.Value)
	}
}

func TestParseMemberCallChain(t *testing.T) {
	prog, err := Parse(`a.b["c"](1)(2).d`)
	if err != nil {
		t.Fatal(err)
	}
	// Outermost is .d on a call on a call on a member chain.
	m := prog.Stmts[0].(*ExprStmt).X.(*Member)
	if m.Name != "d" {
		t.Fatalf("outer member = %q", m.Name)
	}
	call2 := m.X.(*Call)
	call1 := call2.Fn.(*Call)
	idx := call1.Fn.(*Member)
	if idx.Index == nil {
		t.Fatalf("bracket member lost")
	}
}

func TestParseNewPrecedence(t *testing.T) {
	// new a.b(args) — member binds before the argument list.
	prog, err := Parse("new ns.Ctor(1)")
	if err != nil {
		t.Fatal(err)
	}
	ne := prog.Stmts[0].(*ExprStmt).X.(*NewExpr)
	if _, ok := ne.Fn.(*Member); !ok {
		t.Fatalf("new callee = %T", ne.Fn)
	}
	if len(ne.Args) != 1 {
		t.Fatalf("new args = %d", len(ne.Args))
	}
}

func TestParseHoistCollection(t *testing.T) {
	prog, err := Parse(`
		var top = 1;
		function outer() {
			var a;
			if (x) { var b = 2; }
			function inner() { var deep; }
		}
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.VarNames) != 1 || prog.VarNames[0] != "top" {
		t.Fatalf("top-level vars = %v", prog.VarNames)
	}
	if len(prog.FuncDecls) != 1 || prog.FuncDecls[0].Name != "outer" {
		t.Fatalf("top-level funcs = %v", prog.FuncDecls)
	}
	outer := prog.FuncDecls[0]
	if len(outer.VarNames) != 2 { // a and b, b hoisted out of the block
		t.Fatalf("outer vars = %v", outer.VarNames)
	}
	if len(outer.FuncDecls) != 1 || outer.FuncDecls[0].Name != "inner" {
		t.Fatalf("outer nested funcs = %v", outer.FuncDecls)
	}
	if len(outer.FuncDecls[0].VarNames) != 1 || outer.FuncDecls[0].VarNames[0] != "deep" {
		t.Fatalf("inner vars = %v", outer.FuncDecls[0].VarNames)
	}
}

// Property: parsing never panics on arbitrary input.
func TestPropertyParseTotal(t *testing.T) {
	f := func(src string) bool {
		_, err := Parse(src)
		_ = err // success or SyntaxError, either is acceptable
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
