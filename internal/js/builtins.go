package js

import (
	"math"
	"net/url"
	"sort"
	"strconv"
	"strings"
)

// installBuiltins defines the global functions and objects of the subset.
func installBuiltins(it *Interp) {
	g := it.Global

	g.Define("undefined", Undefined)
	g.Define("NaN", Num(math.NaN()))
	g.Define("Infinity", Num(math.Inf(1)))

	g.Define("parseInt", ObjVal(NewNative("parseInt", biParseInt)))
	g.Define("parseFloat", ObjVal(NewNative("parseFloat", biParseFloat)))
	g.Define("isNaN", ObjVal(NewNative("isNaN", func(it *Interp, this Value, args []Value) (Value, error) {
		return Bool(math.IsNaN(arg(args, 0).ToNumber())), nil
	})))
	g.Define("isFinite", ObjVal(NewNative("isFinite", func(it *Interp, this Value, args []Value) (Value, error) {
		f := arg(args, 0).ToNumber()
		return Bool(!math.IsNaN(f) && !math.IsInf(f, 0)), nil
	})))
	g.Define("String", ObjVal(NewNative("String", func(it *Interp, this Value, args []Value) (Value, error) {
		if len(args) == 0 {
			return Str(""), nil
		}
		return Str(args[0].ToString()), nil
	})))
	g.Define("Number", ObjVal(NewNative("Number", func(it *Interp, this Value, args []Value) (Value, error) {
		if len(args) == 0 {
			return Num(0), nil
		}
		return Num(args[0].ToNumber()), nil
	})))
	g.Define("Boolean", ObjVal(NewNative("Boolean", func(it *Interp, this Value, args []Value) (Value, error) {
		return Bool(arg(args, 0).ToBool()), nil
	})))
	g.Define("Array", ObjVal(NewNative("Array", func(it *Interp, this Value, args []Value) (Value, error) {
		if len(args) == 1 && args[0].Kind() == KindNumber {
			n := int(args[0].NumVal())
			return ObjVal(NewArray(make([]Value, n)...)), nil
		}
		return ObjVal(NewArray(args...)), nil
	})))
	objectCtor := NewNative("Object", func(it *Interp, this Value, args []Value) (Value, error) {
		if len(args) > 0 && args[0].Kind() == KindObject {
			return args[0], nil
		}
		return ObjVal(NewObject()), nil
	})
	g.Define("Object", ObjVal(objectCtor))
	errorCtor := NewNative("Error", func(it *Interp, this Value, args []Value) (Value, error) {
		o := NewObject()
		o.Class = "Error"
		o.SetProp("name", Str("Error"))
		o.SetProp("message", Str(arg(args, 0).ToString()))
		return ObjVal(o), nil
	})
	g.Define("Error", ObjVal(errorCtor))
	g.Define("TypeError", ObjVal(errorCtor))
	g.Define("encodeURIComponent", ObjVal(NewNative("encodeURIComponent", func(it *Interp, this Value, args []Value) (Value, error) {
		return Str(url.QueryEscape(arg(args, 0).ToString())), nil
	})))
	g.Define("decodeURIComponent", ObjVal(NewNative("decodeURIComponent", func(it *Interp, this Value, args []Value) (Value, error) {
		s, err := url.QueryUnescape(arg(args, 0).ToString())
		if err != nil {
			return Undefined, &Thrown{Value: Str("URIError: malformed URI")}
		}
		return Str(s), nil
	})))

	g.Define("Math", ObjVal(makeMath(it)))
	installJSON(it)
}

// arg returns args[i] or undefined.
func arg(args []Value, i int) Value {
	if i < len(args) {
		return args[i]
	}
	return Undefined
}

func biParseInt(it *Interp, this Value, args []Value) (Value, error) {
	s := strings.TrimSpace(arg(args, 0).ToString())
	radix := 10
	if len(args) > 1 && !args[1].IsUndefined() {
		radix = int(args[1].ToNumber())
		if radix == 0 {
			radix = 10
		}
	}
	neg := false
	if strings.HasPrefix(s, "-") {
		neg = true
		s = s[1:]
	} else if strings.HasPrefix(s, "+") {
		s = s[1:]
	}
	if (radix == 16 || radix == 10) && (strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X")) {
		s = s[2:]
		radix = 16
	}
	// Consume the longest valid prefix.
	end := 0
	for end < len(s) && digitVal(s[end]) < radix {
		end++
	}
	if end == 0 {
		return Num(math.NaN()), nil
	}
	n, err := strconv.ParseInt(s[:end], radix, 64)
	if err != nil {
		// Overflow: fall back to float accumulation.
		f := 0.0
		for i := 0; i < end; i++ {
			f = f*float64(radix) + float64(digitVal(s[i]))
		}
		if neg {
			f = -f
		}
		return Num(f), nil
	}
	f := float64(n)
	if neg {
		f = -f
	}
	return Num(f), nil
}

func digitVal(b byte) int {
	switch {
	case b >= '0' && b <= '9':
		return int(b - '0')
	case b >= 'a' && b <= 'z':
		return int(b-'a') + 10
	case b >= 'A' && b <= 'Z':
		return int(b-'A') + 10
	}
	return 99
}

func biParseFloat(it *Interp, this Value, args []Value) (Value, error) {
	s := strings.TrimSpace(arg(args, 0).ToString())
	end := 0
	seenDot, seenExp := false, false
	for end < len(s) {
		c := s[end]
		switch {
		case c >= '0' && c <= '9':
		case c == '.' && !seenDot && !seenExp:
			seenDot = true
		case (c == 'e' || c == 'E') && !seenExp && end > 0:
			seenExp = true
			if end+1 < len(s) && (s[end+1] == '+' || s[end+1] == '-') {
				end++
			}
		case (c == '+' || c == '-') && end == 0:
		default:
			goto done
		}
		end++
	}
done:
	if end == 0 {
		return Num(math.NaN()), nil
	}
	f, err := strconv.ParseFloat(s[:end], 64)
	if err != nil {
		return Num(math.NaN()), nil
	}
	return Num(f), nil
}

func makeMath(it *Interp) *Object {
	m := NewObject()
	m.SetProp("PI", Num(math.Pi))
	m.SetProp("E", Num(math.E))
	def := func(name string, fn NativeFunc) { m.SetProp(name, ObjVal(NewNative(name, fn))) }
	def("abs", func(it *Interp, this Value, args []Value) (Value, error) {
		return Num(math.Abs(arg(args, 0).ToNumber())), nil
	})
	def("floor", func(it *Interp, this Value, args []Value) (Value, error) {
		return Num(math.Floor(arg(args, 0).ToNumber())), nil
	})
	def("ceil", func(it *Interp, this Value, args []Value) (Value, error) {
		return Num(math.Ceil(arg(args, 0).ToNumber())), nil
	})
	def("round", func(it *Interp, this Value, args []Value) (Value, error) {
		return Num(math.Floor(arg(args, 0).ToNumber() + 0.5)), nil
	})
	def("sqrt", func(it *Interp, this Value, args []Value) (Value, error) {
		return Num(math.Sqrt(arg(args, 0).ToNumber())), nil
	})
	def("pow", func(it *Interp, this Value, args []Value) (Value, error) {
		return Num(math.Pow(arg(args, 0).ToNumber(), arg(args, 1).ToNumber())), nil
	})
	def("max", func(it *Interp, this Value, args []Value) (Value, error) {
		out := math.Inf(-1)
		for _, a := range args {
			f := a.ToNumber()
			if math.IsNaN(f) {
				return Num(math.NaN()), nil
			}
			if f > out {
				out = f
			}
		}
		return Num(out), nil
	})
	def("min", func(it *Interp, this Value, args []Value) (Value, error) {
		out := math.Inf(1)
		for _, a := range args {
			f := a.ToNumber()
			if math.IsNaN(f) {
				return Num(math.NaN()), nil
			}
			if f < out {
				out = f
			}
		}
		return Num(out), nil
	})
	// Deterministic xorshift random: the crawler needs reproducible runs
	// (DESIGN.md "Determinism").
	def("random", func(it *Interp, this Value, args []Value) (Value, error) {
		x := it.rngState
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		it.rngState = x
		return Num(float64(x>>11) / float64(1<<53)), nil
	})
	return m
}

// ---- prototype method tables ----

func thisString(this Value) string { return this.ToString() }

var stringMethods = map[string]NativeFunc{
	"charAt": func(it *Interp, this Value, args []Value) (Value, error) {
		s := thisString(this)
		i := int(arg(args, 0).ToNumber())
		if i < 0 || i >= len(s) {
			return Str(""), nil
		}
		return Str(string(s[i])), nil
	},
	"charCodeAt": func(it *Interp, this Value, args []Value) (Value, error) {
		s := thisString(this)
		i := int(arg(args, 0).ToNumber())
		if i < 0 || i >= len(s) {
			return Num(math.NaN()), nil
		}
		return Num(float64(s[i])), nil
	},
	"indexOf": func(it *Interp, this Value, args []Value) (Value, error) {
		s := thisString(this)
		needle := arg(args, 0).ToString()
		from := 0
		if len(args) > 1 {
			from = clampIndex(int(args[1].ToNumber()), len(s))
		}
		idx := strings.Index(s[from:], needle)
		if idx < 0 {
			return Num(-1), nil
		}
		return Num(float64(idx + from)), nil
	},
	"lastIndexOf": func(it *Interp, this Value, args []Value) (Value, error) {
		s := thisString(this)
		return Num(float64(strings.LastIndex(s, arg(args, 0).ToString()))), nil
	},
	"substring": func(it *Interp, this Value, args []Value) (Value, error) {
		s := thisString(this)
		start := clampIndex(int(arg(args, 0).ToNumber()), len(s))
		end := len(s)
		if len(args) > 1 && !args[1].IsUndefined() {
			end = clampIndex(int(args[1].ToNumber()), len(s))
		}
		if start > end {
			start, end = end, start
		}
		return Str(s[start:end]), nil
	},
	"substr": func(it *Interp, this Value, args []Value) (Value, error) {
		s := thisString(this)
		start := int(arg(args, 0).ToNumber())
		if start < 0 {
			start = len(s) + start
			if start < 0 {
				start = 0
			}
		}
		if start > len(s) {
			start = len(s)
		}
		length := len(s) - start
		if len(args) > 1 && !args[1].IsUndefined() {
			length = int(args[1].ToNumber())
		}
		if length < 0 {
			length = 0
		}
		if start+length > len(s) {
			length = len(s) - start
		}
		return Str(s[start : start+length]), nil
	},
	"slice": func(it *Interp, this Value, args []Value) (Value, error) {
		s := thisString(this)
		start, end := sliceBounds(args, len(s))
		if start > end {
			return Str(""), nil
		}
		return Str(s[start:end]), nil
	},
	"split": func(it *Interp, this Value, args []Value) (Value, error) {
		s := thisString(this)
		if len(args) == 0 || args[0].IsUndefined() {
			return ObjVal(NewArray(Str(s))), nil
		}
		sep := args[0].ToString()
		var parts []string
		if sep == "" {
			for i := 0; i < len(s); i++ {
				parts = append(parts, string(s[i]))
			}
		} else {
			parts = strings.Split(s, sep)
		}
		vals := make([]Value, len(parts))
		for i, p := range parts {
			vals[i] = Str(p)
		}
		return ObjVal(NewArray(vals...)), nil
	},
	"toLowerCase": func(it *Interp, this Value, args []Value) (Value, error) {
		return Str(strings.ToLower(thisString(this))), nil
	},
	"toUpperCase": func(it *Interp, this Value, args []Value) (Value, error) {
		return Str(strings.ToUpper(thisString(this))), nil
	},
	"replace": func(it *Interp, this Value, args []Value) (Value, error) {
		// String-pattern form only (no regexes in the subset): replaces
		// the first occurrence, as JS does for string patterns.
		s := thisString(this)
		pat := arg(args, 0).ToString()
		repl := arg(args, 1).ToString()
		return Str(strings.Replace(s, pat, repl, 1)), nil
	},
	"concat": func(it *Interp, this Value, args []Value) (Value, error) {
		s := thisString(this)
		for _, a := range args {
			s += a.ToString()
		}
		return Str(s), nil
	},
	"trim": func(it *Interp, this Value, args []Value) (Value, error) {
		return Str(strings.TrimSpace(thisString(this))), nil
	},
	"toString": func(it *Interp, this Value, args []Value) (Value, error) {
		return Str(thisString(this)), nil
	},
}

func clampIndex(i, n int) int {
	if i < 0 {
		return 0
	}
	if i > n {
		return n
	}
	return i
}

// sliceBounds resolves (start, end) arguments with negative indexing.
func sliceBounds(args []Value, n int) (int, int) {
	start := 0
	if len(args) > 0 && !args[0].IsUndefined() {
		start = int(args[0].ToNumber())
		if start < 0 {
			start += n
		}
		start = clampIndex(start, n)
	}
	end := n
	if len(args) > 1 && !args[1].IsUndefined() {
		end = int(args[1].ToNumber())
		if end < 0 {
			end += n
		}
		end = clampIndex(end, n)
	}
	return start, end
}

var numberMethods = map[string]NativeFunc{
	"toString": func(it *Interp, this Value, args []Value) (Value, error) {
		if len(args) > 0 && !args[0].IsUndefined() {
			radix := int(args[0].ToNumber())
			if radix >= 2 && radix <= 36 {
				return Str(strconv.FormatInt(int64(this.ToNumber()), radix)), nil
			}
		}
		return Str(this.ToString()), nil
	},
	"toFixed": func(it *Interp, this Value, args []Value) (Value, error) {
		digits := int(arg(args, 0).ToNumber())
		return Str(strconv.FormatFloat(this.ToNumber(), 'f', digits, 64)), nil
	},
}

var arrayMethods map[string]NativeFunc

func init() {
	arrayMethods = map[string]NativeFunc{
		"push": func(it *Interp, this Value, args []Value) (Value, error) {
			o := this.Object()
			if o == nil {
				return Undefined, &RuntimeError{Msg: "push on non-array"}
			}
			o.Elems = append(o.Elems, args...)
			return Num(float64(len(o.Elems))), nil
		},
		"pop": func(it *Interp, this Value, args []Value) (Value, error) {
			o := this.Object()
			if o == nil || len(o.Elems) == 0 {
				return Undefined, nil
			}
			v := o.Elems[len(o.Elems)-1]
			o.Elems = o.Elems[:len(o.Elems)-1]
			return v, nil
		},
		"shift": func(it *Interp, this Value, args []Value) (Value, error) {
			o := this.Object()
			if o == nil || len(o.Elems) == 0 {
				return Undefined, nil
			}
			v := o.Elems[0]
			o.Elems = append([]Value(nil), o.Elems[1:]...)
			return v, nil
		},
		"unshift": func(it *Interp, this Value, args []Value) (Value, error) {
			o := this.Object()
			if o == nil {
				return Undefined, &RuntimeError{Msg: "unshift on non-array"}
			}
			o.Elems = append(append([]Value(nil), args...), o.Elems...)
			return Num(float64(len(o.Elems))), nil
		},
		"join": func(it *Interp, this Value, args []Value) (Value, error) {
			o := this.Object()
			if o == nil {
				return Str(""), nil
			}
			sep := ","
			if len(args) > 0 && !args[0].IsUndefined() {
				sep = args[0].ToString()
			}
			parts := make([]string, len(o.Elems))
			for i, e := range o.Elems {
				if e.IsUndefined() || e.IsNull() {
					continue
				}
				parts[i] = e.ToString()
			}
			return Str(strings.Join(parts, sep)), nil
		},
		"slice": func(it *Interp, this Value, args []Value) (Value, error) {
			o := this.Object()
			if o == nil {
				return ObjVal(NewArray()), nil
			}
			start, end := sliceBounds(args, len(o.Elems))
			if start > end {
				return ObjVal(NewArray()), nil
			}
			out := make([]Value, end-start)
			copy(out, o.Elems[start:end])
			return ObjVal(NewArray(out...)), nil
		},
		"concat": func(it *Interp, this Value, args []Value) (Value, error) {
			o := this.Object()
			var out []Value
			if o != nil {
				out = append(out, o.Elems...)
			}
			for _, a := range args {
				if ao := a.Object(); ao.IsArray() {
					out = append(out, ao.Elems...)
				} else {
					out = append(out, a)
				}
			}
			return ObjVal(NewArray(out...)), nil
		},
		"indexOf": func(it *Interp, this Value, args []Value) (Value, error) {
			o := this.Object()
			if o == nil {
				return Num(-1), nil
			}
			needle := arg(args, 0)
			for i, e := range o.Elems {
				if StrictEquals(e, needle) {
					return Num(float64(i)), nil
				}
			}
			return Num(-1), nil
		},
		"splice": func(it *Interp, this Value, args []Value) (Value, error) {
			o := this.Object()
			if o == nil {
				return ObjVal(NewArray()), nil
			}
			n := len(o.Elems)
			start := int(arg(args, 0).ToNumber())
			if start < 0 {
				start += n
			}
			start = clampIndex(start, n)
			count := n - start
			if len(args) > 1 && !args[1].IsUndefined() {
				count = int(args[1].ToNumber())
			}
			if count < 0 {
				count = 0
			}
			if start+count > n {
				count = n - start
			}
			removed := make([]Value, count)
			copy(removed, o.Elems[start:start+count])
			var inserted []Value
			if len(args) > 2 {
				inserted = args[2:]
			}
			tail := append([]Value(nil), o.Elems[start+count:]...)
			o.Elems = append(append(o.Elems[:start], inserted...), tail...)
			return ObjVal(NewArray(removed...)), nil
		},
		"sort": func(it *Interp, this Value, args []Value) (Value, error) {
			o := this.Object()
			if o == nil {
				return this, nil
			}
			cmp := arg(args, 0)
			var sortErr error
			sort.SliceStable(o.Elems, func(i, j int) bool {
				if sortErr != nil {
					return false
				}
				a, b := o.Elems[i], o.Elems[j]
				if fn := cmp.Object(); fn.IsCallable() {
					r, err := it.callFunction(fn, Undefined, []Value{a, b}, 0)
					if err != nil {
						sortErr = err
						return false
					}
					return r.ToNumber() < 0
				}
				return a.ToString() < b.ToString()
			})
			if sortErr != nil {
				return Undefined, sortErr
			}
			return this, nil
		},
		"map": func(it *Interp, this Value, args []Value) (Value, error) {
			o := this.Object()
			fn := arg(args, 0).Object()
			if o == nil || !fn.IsCallable() {
				return ObjVal(NewArray()), nil
			}
			out := make([]Value, len(o.Elems))
			for i, e := range o.Elems {
				v, err := it.callFunction(fn, Undefined, []Value{e, Num(float64(i)), this}, 0)
				if err != nil {
					return Undefined, err
				}
				out[i] = v
			}
			return ObjVal(NewArray(out...)), nil
		},
		"filter": func(it *Interp, this Value, args []Value) (Value, error) {
			o := this.Object()
			fn := arg(args, 0).Object()
			if o == nil || !fn.IsCallable() {
				return ObjVal(NewArray()), nil
			}
			var out []Value
			for i, e := range o.Elems {
				v, err := it.callFunction(fn, Undefined, []Value{e, Num(float64(i)), this}, 0)
				if err != nil {
					return Undefined, err
				}
				if v.ToBool() {
					out = append(out, e)
				}
			}
			return ObjVal(NewArray(out...)), nil
		},
		"reverse": func(it *Interp, this Value, args []Value) (Value, error) {
			o := this.Object()
			if o == nil {
				return this, nil
			}
			for i, j := 0, len(o.Elems)-1; i < j; i, j = i+1, j-1 {
				o.Elems[i], o.Elems[j] = o.Elems[j], o.Elems[i]
			}
			return this, nil
		},
		"toString": func(it *Interp, this Value, args []Value) (Value, error) {
			return Str(this.ToString()), nil
		},
	}
}

var functionMethods map[string]NativeFunc

func init() {
	functionMethods = map[string]NativeFunc{
		"call": func(it *Interp, this Value, args []Value) (Value, error) {
			fn := this.Object()
			if !fn.IsCallable() {
				return Undefined, &RuntimeError{Msg: "call on non-function"}
			}
			newThis := arg(args, 0)
			var rest []Value
			if len(args) > 1 {
				rest = args[1:]
			}
			return it.callFunction(fn, newThis, rest, 0)
		},
		"apply": func(it *Interp, this Value, args []Value) (Value, error) {
			fn := this.Object()
			if !fn.IsCallable() {
				return Undefined, &RuntimeError{Msg: "apply on non-function"}
			}
			newThis := arg(args, 0)
			var rest []Value
			if len(args) > 1 {
				if ao := args[1].Object(); ao.IsArray() {
					rest = ao.Elems
				}
			}
			return it.callFunction(fn, newThis, rest, 0)
		},
	}
}

var objectMethods = map[string]NativeFunc{
	"hasOwnProperty": func(it *Interp, this Value, args []Value) (Value, error) {
		o := this.Object()
		if o == nil {
			return Bool(false), nil
		}
		name := arg(args, 0).ToString()
		if o.IsArray() {
			if idx, err := strconv.Atoi(name); err == nil && idx >= 0 && idx < len(o.Elems) {
				return Bool(true), nil
			}
		}
		_, ok := o.GetOwn(name)
		return Bool(ok), nil
	},
	"toString": func(it *Interp, this Value, args []Value) (Value, error) {
		return Str(this.ToString()), nil
	},
}
