// Package js implements a from-scratch interpreter for the subset of
// JavaScript (roughly ECMAScript 3) that AJAX applications of the paper's
// era use: functions and closures, objects and arrays, the usual
// statements and operators, and host objects supplied by the embedder.
//
// It stands in for the Rhino engine used by the thesis implementation.
// Crucially, it reproduces Rhino's Debugger/DebugFrame facility (§4.4.2):
// an embedder can register a Debugger that observes every function entry
// and exit together with the actual argument values, and can inspect the
// live call stack — exactly the mechanism the hot-node detection of
// chapter 4 is built on.
package js

import "fmt"

// TokenType identifies a lexical token.
type TokenType int

// Token kinds. Punctuation and operators each get their own type so the
// parser can switch on them directly.
const (
	EOF TokenType = iota
	IDENT
	NUMBER
	STRING
	KEYWORD

	// Punctuation.
	LPAREN   // (
	RPAREN   // )
	LBRACE   // {
	RBRACE   // }
	LBRACKET // [
	RBRACKET // ]
	SEMI     // ;
	COMMA    // ,
	DOT      // .
	COLON    // :
	QUESTION // ?

	// Operators.
	ASSIGN        // =
	PLUS          // +
	MINUS         // -
	STAR          // *
	SLASH         // /
	PERCENT       // %
	PLUSASSIGN    // +=
	MINUSASSIGN   // -=
	STARASSIGN    // *=
	SLASHASSIGN   // /=
	PERCENTASSIGN // %=
	INC           // ++
	DEC           // --
	EQ            // ==
	NEQ           // !=
	SEQ           // ===
	SNEQ          // !==
	LT            // <
	GT            // >
	LE            // <=
	GE            // >=
	AND           // &&
	OR            // ||
	NOT           // !
	BITAND        // &
	BITOR         // |
	BITXOR        // ^
	BITNOT        // ~
	SHL           // <<
	SHR           // >>
	USHR          // >>>
)

var keywords = map[string]bool{
	"var": true, "function": true, "return": true, "if": true, "else": true,
	"while": true, "do": true, "for": true, "in": true, "break": true,
	"continue": true, "new": true, "delete": true, "typeof": true,
	"void": true, "this": true, "null": true, "true": true, "false": true,
	"throw": true, "try": true, "catch": true, "finally": true,
	"switch": true, "case": true, "default": true, "instanceof": true,
}

// Token is one lexical token with its source position.
type Token struct {
	Type TokenType
	Lit  string // literal text: identifier name, keyword, string value (decoded), number text
	Num  float64
	Line int
	Col  int
	// NewlineBefore reports whether a line terminator occurred between
	// the previous token and this one; used for automatic semicolon
	// insertion and the restricted `return` production.
	NewlineBefore bool
}

func (t Token) String() string {
	switch t.Type {
	case IDENT, KEYWORD:
		return t.Lit
	case NUMBER:
		return t.Lit
	case STRING:
		return fmt.Sprintf("%q", t.Lit)
	case EOF:
		return "<eof>"
	}
	return t.Lit
}

// SyntaxError describes a lexing or parsing failure with position info.
type SyntaxError struct {
	Msg  string
	Line int
	Col  int
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("js: syntax error at %d:%d: %s", e.Line, e.Col, e.Msg)
}
