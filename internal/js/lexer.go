package js

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
	"unicode/utf8"
)

// lexer turns JavaScript source into tokens.
type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, col: 1}
}

// lexAll tokenizes the whole input.
func lexAll(src string) ([]Token, error) {
	lx := newLexer(src)
	var toks []Token
	for {
		t, err := lx.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Type == EOF {
			return toks, nil
		}
	}
}

func (l *lexer) errf(format string, args ...interface{}) error {
	return &SyntaxError{Msg: fmt.Sprintf(format, args...), Line: l.line, Col: l.col}
}

func (l *lexer) peekByte() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) peekByteAt(off int) byte {
	if l.pos+off >= len(l.src) {
		return 0
	}
	return l.src[l.pos+off]
}

func (l *lexer) advance(n int) {
	for i := 0; i < n && l.pos < len(l.src); i++ {
		if l.src[l.pos] == '\n' {
			l.line++
			l.col = 1
		} else {
			l.col++
		}
		l.pos++
	}
}

// skipSpace consumes whitespace and comments; it reports whether a line
// terminator was crossed.
func (l *lexer) skipSpace() (newline bool, err error) {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			newline = true
			l.advance(1)
		case c == ' ' || c == '\t' || c == '\r' || c == '\f' || c == '\v':
			l.advance(1)
		case c == '/' && l.peekByteAt(1) == '/':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.advance(1)
			}
		case c == '/' && l.peekByteAt(1) == '*':
			l.advance(2)
			closed := false
			for l.pos < len(l.src) {
				if l.src[l.pos] == '*' && l.peekByteAt(1) == '/' {
					l.advance(2)
					closed = true
					break
				}
				if l.src[l.pos] == '\n' {
					newline = true
				}
				l.advance(1)
			}
			if !closed {
				return newline, l.errf("unterminated block comment")
			}
		default:
			return newline, nil
		}
	}
	return newline, nil
}

func (l *lexer) next() (Token, error) {
	newline, err := l.skipSpace()
	if err != nil {
		return Token{}, err
	}
	tok := Token{Line: l.line, Col: l.col, NewlineBefore: newline}
	if l.pos >= len(l.src) {
		tok.Type = EOF
		return tok, nil
	}
	c := l.src[l.pos]
	switch {
	case c >= utf8.RuneSelf:
		// Multi-byte rune: identifiers only; anything else is an error
		// (never loop without consuming input).
		r, _ := utf8.DecodeRuneInString(l.src[l.pos:])
		if !isIdentStart(r) {
			return Token{}, l.errf("unexpected character %q", string(r))
		}
		return l.ident(tok)
	case isIdentStart(rune(c)):
		return l.ident(tok)
	case c >= '0' && c <= '9':
		return l.number(tok)
	case c == '.' && isDigitByte(l.peekByteAt(1)):
		return l.number(tok)
	case c == '"' || c == '\'':
		return l.str(tok)
	}
	// Operators and punctuation, longest match first.
	type opEntry struct {
		text string
		typ  TokenType
	}
	ops := [...]opEntry{
		{">>>", USHR}, {"===", SEQ}, {"!==", SNEQ},
		{"==", EQ}, {"!=", NEQ}, {"<=", LE}, {">=", GE},
		{"&&", AND}, {"||", OR}, {"++", INC}, {"--", DEC},
		{"+=", PLUSASSIGN}, {"-=", MINUSASSIGN}, {"*=", STARASSIGN},
		{"/=", SLASHASSIGN}, {"%=", PERCENTASSIGN},
		{"<<", SHL}, {">>", SHR},
		{"(", LPAREN}, {")", RPAREN}, {"{", LBRACE}, {"}", RBRACE},
		{"[", LBRACKET}, {"]", RBRACKET}, {";", SEMI}, {",", COMMA},
		{".", DOT}, {":", COLON}, {"?", QUESTION}, {"=", ASSIGN},
		{"+", PLUS}, {"-", MINUS}, {"*", STAR}, {"/", SLASH},
		{"%", PERCENT}, {"<", LT}, {">", GT}, {"!", NOT},
		{"&", BITAND}, {"|", BITOR}, {"^", BITXOR}, {"~", BITNOT},
	}
	rest := l.src[l.pos:]
	for _, op := range ops {
		if strings.HasPrefix(rest, op.text) {
			tok.Type = op.typ
			tok.Lit = op.text
			l.advance(len(op.text))
			return tok, nil
		}
	}
	return Token{}, l.errf("unexpected character %q", string(c))
}

func (l *lexer) ident(tok Token) (Token, error) {
	start := l.pos
	for l.pos < len(l.src) {
		r, size := utf8.DecodeRuneInString(l.src[l.pos:])
		if !isIdentPart(r) {
			break
		}
		l.advance(size)
	}
	name := l.src[start:l.pos]
	tok.Lit = name
	if keywords[name] {
		tok.Type = KEYWORD
	} else {
		tok.Type = IDENT
	}
	return tok, nil
}

func (l *lexer) number(tok Token) (Token, error) {
	start := l.pos
	s := l.src
	if s[l.pos] == '0' && (l.peekByteAt(1) == 'x' || l.peekByteAt(1) == 'X') {
		l.advance(2)
		digits := 0
		for l.pos < len(s) && isHexByte(s[l.pos]) {
			l.advance(1)
			digits++
		}
		if digits == 0 {
			return Token{}, l.errf("malformed hex literal")
		}
		text := s[start:l.pos]
		n, err := strconv.ParseUint(text[2:], 16, 64)
		if err != nil {
			return Token{}, l.errf("bad hex literal %q", text)
		}
		tok.Type = NUMBER
		tok.Lit = text
		tok.Num = float64(n)
		return tok, nil
	}
	for l.pos < len(s) && isDigitByte(s[l.pos]) {
		l.advance(1)
	}
	if l.pos < len(s) && s[l.pos] == '.' {
		l.advance(1)
		for l.pos < len(s) && isDigitByte(s[l.pos]) {
			l.advance(1)
		}
	}
	if l.pos < len(s) && (s[l.pos] == 'e' || s[l.pos] == 'E') {
		save := l.pos
		l.advance(1)
		if l.pos < len(s) && (s[l.pos] == '+' || s[l.pos] == '-') {
			l.advance(1)
		}
		if l.pos < len(s) && isDigitByte(s[l.pos]) {
			for l.pos < len(s) && isDigitByte(s[l.pos]) {
				l.advance(1)
			}
		} else {
			// Not an exponent after all (e.g. `1e` followed by ident).
			l.pos = save
		}
	}
	text := s[start:l.pos]
	f, err := strconv.ParseFloat(text, 64)
	if err != nil {
		return Token{}, l.errf("bad number literal %q", text)
	}
	tok.Type = NUMBER
	tok.Lit = text
	tok.Num = f
	return tok, nil
}

func (l *lexer) str(tok Token) (Token, error) {
	quote := l.src[l.pos]
	l.advance(1)
	var b strings.Builder
	for {
		if l.pos >= len(l.src) {
			return Token{}, l.errf("unterminated string literal")
		}
		c := l.src[l.pos]
		if c == quote {
			l.advance(1)
			break
		}
		if c == '\n' {
			return Token{}, l.errf("newline in string literal")
		}
		if c != '\\' {
			b.WriteByte(c)
			l.advance(1)
			continue
		}
		// Escape sequence.
		l.advance(1)
		if l.pos >= len(l.src) {
			return Token{}, l.errf("unterminated escape")
		}
		e := l.src[l.pos]
		switch e {
		case 'n':
			b.WriteByte('\n')
			l.advance(1)
		case 't':
			b.WriteByte('\t')
			l.advance(1)
		case 'r':
			b.WriteByte('\r')
			l.advance(1)
		case 'b':
			b.WriteByte('\b')
			l.advance(1)
		case 'f':
			b.WriteByte('\f')
			l.advance(1)
		case 'v':
			b.WriteByte('\v')
			l.advance(1)
		case '0':
			b.WriteByte(0)
			l.advance(1)
		case 'x':
			if l.pos+2 >= len(l.src) || !isHexByte(l.src[l.pos+1]) || !isHexByte(l.src[l.pos+2]) {
				return Token{}, l.errf("bad \\x escape")
			}
			n, _ := strconv.ParseUint(l.src[l.pos+1:l.pos+3], 16, 16)
			b.WriteRune(rune(n))
			l.advance(3)
		case 'u':
			if l.pos+4 >= len(l.src) {
				return Token{}, l.errf("bad \\u escape")
			}
			hx := l.src[l.pos+1 : l.pos+5]
			n, err := strconv.ParseUint(hx, 16, 32)
			if err != nil {
				return Token{}, l.errf("bad \\u escape %q", hx)
			}
			b.WriteRune(rune(n))
			l.advance(5)
		case '\n':
			// Line continuation.
			l.advance(1)
		default:
			b.WriteByte(e)
			l.advance(1)
		}
	}
	tok.Type = STRING
	tok.Lit = b.String()
	return tok, nil
}

func isIdentStart(r rune) bool {
	return r == '_' || r == '$' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return isIdentStart(r) || unicode.IsDigit(r)
}

func isDigitByte(b byte) bool { return b >= '0' && b <= '9' }

func isHexByte(b byte) bool {
	return b >= '0' && b <= '9' || b >= 'a' && b <= 'f' || b >= 'A' && b <= 'F'
}
