package js

import (
	"testing"
	"testing/quick"
)

func TestJSONStringify(t *testing.T) {
	cases := []struct{ src, want string }{
		{`JSON.stringify(null)`, "null"},
		{`JSON.stringify(true)`, "true"},
		{`JSON.stringify(42)`, "42"},
		{`JSON.stringify(1.5)`, "1.5"},
		{`JSON.stringify("hi")`, `"hi"`},
		{`JSON.stringify("q\"t")`, `"q\"t"`},
		{`JSON.stringify("a\nb")`, `"a\nb"`},
		{`JSON.stringify([1, "x", null])`, `[1,"x",null]`},
		{`JSON.stringify([])`, "[]"},
		{`JSON.stringify({})`, "{}"},
		{`JSON.stringify({a: 1, b: [2, 3]})`, `{"a":1,"b":[2,3]}`},
		{`JSON.stringify({b: 1, a: 2})`, `{"a":2,"b":1}`}, // sorted keys (deterministic)
		{`JSON.stringify({f: function(){}, a: 1})`, `{"a":1}`},
		{`JSON.stringify([undefined])`, "[null]"},
		{`JSON.stringify(0/0)`, "null"},
	}
	for _, c := range cases {
		expectStr(t, c.src, c.want)
	}
	// Top-level undefined yields undefined.
	v := run(t, `JSON.stringify(undefined) === undefined`)
	if !v.BoolVal() {
		t.Fatalf("stringify(undefined) should be undefined")
	}
}

func TestJSONParse(t *testing.T) {
	expectNum(t, `JSON.parse("42")`, 42)
	expectNum(t, `JSON.parse("-1.5e2")`, -150)
	expectBool(t, `JSON.parse("true")`, true)
	expectBool(t, `JSON.parse("null") === null`, true)
	expectStr(t, `JSON.parse("\"hi\"")`, "hi")
	expectStr(t, `JSON.parse('"a\\nb"')`, "a\nb")
	expectStr(t, `JSON.parse('"\\u0041"')`, "A")
	expectNum(t, `JSON.parse("[1,2,3]").length`, 3)
	expectNum(t, `JSON.parse("[1,[2,3]]")[1][0]`, 2)
	expectNum(t, `JSON.parse('{"a": {"b": 7}}').a.b`, 7)
	expectNum(t, `JSON.parse(' { "x" : [ 1 , 2 ] } ').x[1]`, 2)
}

func TestJSONParseErrors(t *testing.T) {
	bad := []string{
		`JSON.parse("")`,
		`JSON.parse("{")`,
		`JSON.parse("[1,")`,
		`JSON.parse("{a:1}")`, // unquoted key
		`JSON.parse("[1] extra")`,
		`JSON.parse("'single'")`,
		`JSON.parse("tru")`,
	}
	for _, src := range bad {
		it := New()
		if _, err := it.Run(src); err == nil {
			t.Errorf("%s should throw", src)
		}
		// The error must be a catchable JS exception.
		v, err := New().Run(`var r = "no"; try { ` + src + `; } catch (e) { r = "caught"; } r`)
		if err != nil || v.StrVal() != "caught" {
			t.Errorf("%s not catchable: %v %v", src, v, err)
		}
	}
}

// Property: stringify(parse(stringify(x))) == stringify(x) for values
// built from random primitive content.
func TestPropertyJSONRoundTrip(t *testing.T) {
	f := func(n float64, s string, b bool) bool {
		it := New()
		o := NewObject()
		o.SetProp("n", Num(n))
		o.SetProp("s", Str(s))
		o.SetProp("b", Bool(b))
		o.SetProp("arr", ObjVal(NewArray(Num(n), Str(s))))
		it.DefineGlobal("x", ObjVal(o))
		v1, err := it.Run(`JSON.stringify(x)`)
		if err != nil {
			return false
		}
		if v1.IsUndefined() {
			return true
		}
		it.DefineGlobal("s1", v1)
		v2, err := it.Run(`JSON.stringify(JSON.parse(s1))`)
		if err != nil {
			return false
		}
		return v1.StrVal() == v2.StrVal()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestArraySort(t *testing.T) {
	expectStr(t, `["b","a","c"].sort().join("")`, "abc")
	expectStr(t, `[10, 9, 1].sort().join(",")`, "1,10,9") // default: string compare
	expectStr(t, `[10, 9, 1].sort(function(a, b) { return a - b; }).join(",")`, "1,9,10")
	expectStr(t, `[3,1,2].sort(function(a,b){ return b - a; }).join("")`, "321")
	// sort returns the array itself (chained).
	expectNum(t, `[2,1].sort().length`, 2)
}

func TestArraySplice(t *testing.T) {
	expectStr(t, `var a = [1,2,3,4]; a.splice(1, 2); a.join(",")`, "1,4")
	expectStr(t, `var a = [1,2,3,4]; a.splice(1, 2).join(",")`, "2,3")
	expectStr(t, `var a = [1,4]; a.splice(1, 0, 2, 3); a.join(",")`, "1,2,3,4")
	expectStr(t, `var a = [1,2,3]; a.splice(-1, 1); a.join(",")`, "1,2")
	expectStr(t, `var a = [1,2]; a.splice(0); a.join(",")`, "")
}

func TestArrayMapFilter(t *testing.T) {
	expectStr(t, `[1,2,3].map(function(x) { return x * 2; }).join(",")`, "2,4,6")
	expectStr(t, `[1,2,3,4].filter(function(x) { return x % 2 == 0; }).join(",")`, "2,4")
	expectNum(t, `[5,6].map(function(x, i) { return i; })[1]`, 1)
}
