package js

import "fmt"

// parser is a recursive-descent parser with precedence climbing for
// binary expressions and simplified automatic semicolon insertion.
type parser struct {
	toks []Token
	pos  int
	// hoist targets of the function currently being parsed
	varNames  *[]string
	funcDecls *[]*FuncLit
}

// Parse parses a complete script.
func Parse(src string) (*Program, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog := &Program{}
	p.varNames = &prog.VarNames
	p.funcDecls = &prog.FuncDecls
	for !p.at(EOF) {
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		prog.Stmts = append(prog.Stmts, s)
	}
	return prog, nil
}

func (p *parser) cur() Token  { return p.toks[p.pos] }
func (p *parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) at(tt TokenType) bool { return p.cur().Type == tt }

func (p *parser) atKw(kw string) bool {
	t := p.cur()
	return t.Type == KEYWORD && t.Lit == kw
}

func (p *parser) eat(tt TokenType) bool {
	if p.at(tt) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) eatKw(kw string) bool {
	if p.atKw(kw) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(tt TokenType, what string) (Token, error) {
	if p.at(tt) {
		return p.next(), nil
	}
	t := p.cur()
	return Token{}, &SyntaxError{
		Msg:  fmt.Sprintf("expected %s, found %q", what, t.String()),
		Line: t.Line, Col: t.Col,
	}
}

// semicolon consumes a statement terminator, applying simplified ASI:
// an explicit ';', or a '}' / EOF / preceding line break all terminate.
func (p *parser) semicolon() error {
	if p.eat(SEMI) {
		return nil
	}
	t := p.cur()
	if t.Type == RBRACE || t.Type == EOF || t.NewlineBefore {
		return nil
	}
	return &SyntaxError{Msg: fmt.Sprintf("expected ';', found %q", t.String()), Line: t.Line, Col: t.Col}
}

func (p *parser) line() int { return p.cur().Line }

// ---- statements ----

func (p *parser) statement() (Node, error) {
	t := p.cur()
	switch {
	case t.Type == SEMI:
		p.next()
		return &Empty{base{t.Line}}, nil
	case t.Type == LBRACE:
		return p.block()
	case t.Type == KEYWORD:
		switch t.Lit {
		case "var":
			s, err := p.varDecl()
			if err != nil {
				return nil, err
			}
			if err := p.semicolon(); err != nil {
				return nil, err
			}
			return s, nil
		case "function":
			return p.funcDecl()
		case "if":
			return p.ifStmt()
		case "while":
			return p.whileStmt()
		case "do":
			return p.doWhileStmt()
		case "for":
			return p.forStmt()
		case "return":
			return p.returnStmt()
		case "break":
			p.next()
			label := p.optionalLabel()
			if err := p.semicolon(); err != nil {
				return nil, err
			}
			return &Break{base{t.Line}, label}, nil
		case "continue":
			p.next()
			label := p.optionalLabel()
			if err := p.semicolon(); err != nil {
				return nil, err
			}
			return &Continue{base{t.Line}, label}, nil
		case "throw":
			p.next()
			v, err := p.expression()
			if err != nil {
				return nil, err
			}
			if err := p.semicolon(); err != nil {
				return nil, err
			}
			return &Throw{base{t.Line}, v}, nil
		case "try":
			return p.tryStmt()
		case "switch":
			return p.switchStmt()
		}
	}
	// Labeled statement: `name: stmt`.
	if t.Type == IDENT && p.toks[p.pos+1].Type == COLON {
		p.next() // label
		p.next() // colon
		inner, err := p.statement()
		if err != nil {
			return nil, err
		}
		return &Labeled{base{t.Line}, t.Lit, inner}, nil
	}
	// Expression statement.
	x, err := p.expression()
	if err != nil {
		return nil, err
	}
	if err := p.semicolon(); err != nil {
		return nil, err
	}
	return &ExprStmt{base{t.Line}, x}, nil
}

// optionalLabel consumes an identifier label after break/continue, if
// present on the same line (the restricted production).
func (p *parser) optionalLabel() string {
	t := p.cur()
	if t.Type == IDENT && !t.NewlineBefore {
		p.next()
		return t.Lit
	}
	return ""
}

func (p *parser) block() (*Block, error) {
	t, err := p.expect(LBRACE, "'{'")
	if err != nil {
		return nil, err
	}
	b := &Block{base: base{t.Line}}
	for !p.at(RBRACE) && !p.at(EOF) {
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	if _, err := p.expect(RBRACE, "'}'"); err != nil {
		return nil, err
	}
	return b, nil
}

func (p *parser) varDecl() (*VarDecl, error) {
	t := p.next() // var
	d := &VarDecl{base: base{t.Line}}
	for {
		name, err := p.expect(IDENT, "variable name")
		if err != nil {
			return nil, err
		}
		d.Names = append(d.Names, name.Lit)
		*p.varNames = append(*p.varNames, name.Lit)
		var init Node
		if p.eat(ASSIGN) {
			init, err = p.assignment()
			if err != nil {
				return nil, err
			}
		}
		d.Inits = append(d.Inits, init)
		if !p.eat(COMMA) {
			break
		}
	}
	return d, nil
}

func (p *parser) funcDecl() (Node, error) {
	t := p.cur()
	fn, err := p.funcLit(true)
	if err != nil {
		return nil, err
	}
	*p.funcDecls = append(*p.funcDecls, fn)
	return &FuncDecl{base{t.Line}, fn}, nil
}

// funcLit parses `function name?(params) { body }`.
func (p *parser) funcLit(requireName bool) (*FuncLit, error) {
	t := p.next() // function
	fn := &FuncLit{base: base{t.Line}}
	if p.at(IDENT) {
		fn.Name = p.next().Lit
	} else if requireName {
		return nil, &SyntaxError{Msg: "function declaration requires a name", Line: t.Line, Col: t.Col}
	}
	if _, err := p.expect(LPAREN, "'('"); err != nil {
		return nil, err
	}
	for !p.at(RPAREN) {
		name, err := p.expect(IDENT, "parameter name")
		if err != nil {
			return nil, err
		}
		fn.Params = append(fn.Params, name.Lit)
		if !p.eat(COMMA) {
			break
		}
	}
	if _, err := p.expect(RPAREN, "')'"); err != nil {
		return nil, err
	}
	// Swap hoist targets while parsing the body.
	savedVars, savedFuncs := p.varNames, p.funcDecls
	p.varNames, p.funcDecls = &fn.VarNames, &fn.FuncDecls
	body, err := p.block()
	p.varNames, p.funcDecls = savedVars, savedFuncs
	if err != nil {
		return nil, err
	}
	fn.Body = body.Stmts
	return fn, nil
}

func (p *parser) ifStmt() (Node, error) {
	t := p.next() // if
	if _, err := p.expect(LPAREN, "'('"); err != nil {
		return nil, err
	}
	test, err := p.expression()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(RPAREN, "')'"); err != nil {
		return nil, err
	}
	then, err := p.statement()
	if err != nil {
		return nil, err
	}
	var els Node
	if p.eatKw("else") {
		els, err = p.statement()
		if err != nil {
			return nil, err
		}
	}
	return &If{base{t.Line}, test, then, els}, nil
}

func (p *parser) whileStmt() (Node, error) {
	t := p.next() // while
	if _, err := p.expect(LPAREN, "'('"); err != nil {
		return nil, err
	}
	test, err := p.expression()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(RPAREN, "')'"); err != nil {
		return nil, err
	}
	body, err := p.statement()
	if err != nil {
		return nil, err
	}
	return &While{base{t.Line}, test, body}, nil
}

func (p *parser) doWhileStmt() (Node, error) {
	t := p.next() // do
	body, err := p.statement()
	if err != nil {
		return nil, err
	}
	if !p.eatKw("while") {
		return nil, &SyntaxError{Msg: "expected 'while' after do body", Line: p.line(), Col: p.cur().Col}
	}
	if _, err := p.expect(LPAREN, "'('"); err != nil {
		return nil, err
	}
	test, err := p.expression()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(RPAREN, "')'"); err != nil {
		return nil, err
	}
	if err := p.semicolon(); err != nil {
		return nil, err
	}
	return &DoWhile{base{t.Line}, body, test}, nil
}

func (p *parser) forStmt() (Node, error) {
	t := p.next() // for
	if _, err := p.expect(LPAREN, "'('"); err != nil {
		return nil, err
	}
	// Disambiguate for-in from classic for.
	var init Node
	var err error
	if p.atKw("var") {
		decl, err := p.varDecl()
		if err != nil {
			return nil, err
		}
		if len(decl.Names) == 1 && decl.Inits[0] == nil && p.atKw("in") {
			p.next() // in
			obj, err := p.expression()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(RPAREN, "')'"); err != nil {
				return nil, err
			}
			body, err := p.statement()
			if err != nil {
				return nil, err
			}
			return &ForIn{base{t.Line}, decl.Names[0], true, obj, body}, nil
		}
		init = decl
	} else if !p.at(SEMI) {
		init, err = p.expression()
		if err != nil {
			return nil, err
		}
		if id, ok := init.(*Ident); ok && p.atKw("in") {
			p.next()
			obj, err := p.expression()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(RPAREN, "')'"); err != nil {
				return nil, err
			}
			body, err := p.statement()
			if err != nil {
				return nil, err
			}
			return &ForIn{base{t.Line}, id.Name, false, obj, body}, nil
		}
	}
	if _, err := p.expect(SEMI, "';' in for"); err != nil {
		return nil, err
	}
	var test Node
	if !p.at(SEMI) {
		test, err = p.expression()
		if err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(SEMI, "';' in for"); err != nil {
		return nil, err
	}
	var post Node
	if !p.at(RPAREN) {
		post, err = p.expression()
		if err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(RPAREN, "')'"); err != nil {
		return nil, err
	}
	body, err := p.statement()
	if err != nil {
		return nil, err
	}
	return &For{base{t.Line}, init, test, post, body}, nil
}

func (p *parser) returnStmt() (Node, error) {
	t := p.next() // return
	r := &Return{base: base{t.Line}}
	// Restricted production: a newline after `return` means bare return.
	nt := p.cur()
	if nt.Type != SEMI && nt.Type != RBRACE && nt.Type != EOF && !nt.NewlineBefore {
		v, err := p.expression()
		if err != nil {
			return nil, err
		}
		r.Value = v
	}
	if err := p.semicolon(); err != nil {
		return nil, err
	}
	return r, nil
}

func (p *parser) tryStmt() (Node, error) {
	t := p.next() // try
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	tr := &Try{base: base{t.Line}, Body: body}
	if p.eatKw("catch") {
		if _, err := p.expect(LPAREN, "'('"); err != nil {
			return nil, err
		}
		name, err := p.expect(IDENT, "catch variable")
		if err != nil {
			return nil, err
		}
		tr.CatchName = name.Lit
		if _, err := p.expect(RPAREN, "')'"); err != nil {
			return nil, err
		}
		tr.Catch, err = p.block()
		if err != nil {
			return nil, err
		}
	}
	if p.eatKw("finally") {
		tr.Finally, err = p.block()
		if err != nil {
			return nil, err
		}
	}
	if tr.Catch == nil && tr.Finally == nil {
		return nil, &SyntaxError{Msg: "try requires catch or finally", Line: t.Line, Col: t.Col}
	}
	return tr, nil
}

func (p *parser) switchStmt() (Node, error) {
	t := p.next() // switch
	if _, err := p.expect(LPAREN, "'('"); err != nil {
		return nil, err
	}
	disc, err := p.expression()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(RPAREN, "')'"); err != nil {
		return nil, err
	}
	if _, err := p.expect(LBRACE, "'{'"); err != nil {
		return nil, err
	}
	sw := &Switch{base: base{t.Line}, Disc: disc, DefaultIdx: -1}
	for !p.at(RBRACE) && !p.at(EOF) {
		var test Node
		if p.eatKw("case") {
			test, err = p.expression()
			if err != nil {
				return nil, err
			}
		} else if p.eatKw("default") {
			if sw.DefaultIdx >= 0 {
				return nil, &SyntaxError{Msg: "duplicate default clause", Line: p.line(), Col: p.cur().Col}
			}
			sw.DefaultIdx = len(sw.Cases)
		} else {
			return nil, &SyntaxError{Msg: "expected case or default", Line: p.line(), Col: p.cur().Col}
		}
		if _, err := p.expect(COLON, "':'"); err != nil {
			return nil, err
		}
		var stmts []Node
		for !p.at(RBRACE) && !p.at(EOF) && !p.atKw("case") && !p.atKw("default") {
			s, err := p.statement()
			if err != nil {
				return nil, err
			}
			stmts = append(stmts, s)
		}
		sw.Cases = append(sw.Cases, SwitchCase{Test: test, Stmts: stmts})
	}
	if _, err := p.expect(RBRACE, "'}'"); err != nil {
		return nil, err
	}
	return sw, nil
}

// ---- expressions ----

// expression parses a comma expression.
func (p *parser) expression() (Node, error) {
	t := p.cur()
	x, err := p.assignment()
	if err != nil {
		return nil, err
	}
	if !p.at(COMMA) {
		return x, nil
	}
	seq := &Seq{base: base{t.Line}, Exprs: []Node{x}}
	for p.eat(COMMA) {
		y, err := p.assignment()
		if err != nil {
			return nil, err
		}
		seq.Exprs = append(seq.Exprs, y)
	}
	return seq, nil
}

func (p *parser) assignment() (Node, error) {
	t := p.cur()
	left, err := p.conditional()
	if err != nil {
		return nil, err
	}
	op := p.cur().Type
	switch op {
	case ASSIGN, PLUSASSIGN, MINUSASSIGN, STARASSIGN, SLASHASSIGN, PERCENTASSIGN:
		if !isLValue(left) {
			return nil, &SyntaxError{Msg: "invalid assignment target", Line: t.Line, Col: t.Col}
		}
		p.next()
		right, err := p.assignment()
		if err != nil {
			return nil, err
		}
		return &Assign{base{t.Line}, op, left, right}, nil
	}
	return left, nil
}

func isLValue(n Node) bool {
	switch n.(type) {
	case *Ident, *Member:
		return true
	}
	return false
}

func (p *parser) conditional() (Node, error) {
	t := p.cur()
	test, err := p.logicalOr()
	if err != nil {
		return nil, err
	}
	if !p.eat(QUESTION) {
		return test, nil
	}
	then, err := p.assignment()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(COLON, "':'"); err != nil {
		return nil, err
	}
	els, err := p.assignment()
	if err != nil {
		return nil, err
	}
	return &Cond{base{t.Line}, test, then, els}, nil
}

func (p *parser) logicalOr() (Node, error) {
	x, err := p.logicalAnd()
	if err != nil {
		return nil, err
	}
	for p.at(OR) {
		t := p.next()
		y, err := p.logicalAnd()
		if err != nil {
			return nil, err
		}
		x = &Logical{base{t.Line}, OR, x, y}
	}
	return x, nil
}

func (p *parser) logicalAnd() (Node, error) {
	x, err := p.bitOr()
	if err != nil {
		return nil, err
	}
	for p.at(AND) {
		t := p.next()
		y, err := p.bitOr()
		if err != nil {
			return nil, err
		}
		x = &Logical{base{t.Line}, AND, x, y}
	}
	return x, nil
}

func (p *parser) bitOr() (Node, error)  { return p.binaryLevel([]TokenType{BITOR}, p.bitXor) }
func (p *parser) bitXor() (Node, error) { return p.binaryLevel([]TokenType{BITXOR}, p.bitAnd) }
func (p *parser) bitAnd() (Node, error) { return p.binaryLevel([]TokenType{BITAND}, p.equality) }

func (p *parser) equality() (Node, error) {
	return p.binaryLevel([]TokenType{EQ, NEQ, SEQ, SNEQ}, p.relational)
}

func (p *parser) relational() (Node, error) {
	x, err := p.shift()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		switch {
		case t.Type == LT || t.Type == GT || t.Type == LE || t.Type == GE:
			p.next()
			y, err := p.shift()
			if err != nil {
				return nil, err
			}
			x = &Binary{base{t.Line}, t.Type, "", x, y}
		case t.Type == KEYWORD && (t.Lit == "in" || t.Lit == "instanceof"):
			p.next()
			y, err := p.shift()
			if err != nil {
				return nil, err
			}
			x = &Binary{base{t.Line}, KEYWORD, t.Lit, x, y}
		default:
			return x, nil
		}
	}
}

func (p *parser) shift() (Node, error) {
	return p.binaryLevel([]TokenType{SHL, SHR, USHR}, p.additive)
}

func (p *parser) additive() (Node, error) {
	return p.binaryLevel([]TokenType{PLUS, MINUS}, p.multiplicative)
}

func (p *parser) multiplicative() (Node, error) {
	return p.binaryLevel([]TokenType{STAR, SLASH, PERCENT}, p.unary)
}

func (p *parser) binaryLevel(ops []TokenType, next func() (Node, error)) (Node, error) {
	x, err := next()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		match := false
		for _, op := range ops {
			if t.Type == op {
				match = true
				break
			}
		}
		if !match {
			return x, nil
		}
		p.next()
		y, err := next()
		if err != nil {
			return nil, err
		}
		x = &Binary{base{t.Line}, t.Type, "", x, y}
	}
}

func (p *parser) unary() (Node, error) {
	t := p.cur()
	switch t.Type {
	case NOT, MINUS, PLUS, BITNOT:
		p.next()
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &Unary{base{t.Line}, t.Type, "", x}, nil
	case INC, DEC:
		p.next()
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		if !isLValue(x) {
			return nil, &SyntaxError{Msg: "invalid increment target", Line: t.Line, Col: t.Col}
		}
		return &Unary{base{t.Line}, t.Type, "", x}, nil
	case KEYWORD:
		switch t.Lit {
		case "typeof", "void", "delete":
			p.next()
			x, err := p.unary()
			if err != nil {
				return nil, err
			}
			return &Unary{base{t.Line}, KEYWORD, t.Lit, x}, nil
		}
	}
	return p.postfix()
}

func (p *parser) postfix() (Node, error) {
	x, err := p.callMember()
	if err != nil {
		return nil, err
	}
	t := p.cur()
	if (t.Type == INC || t.Type == DEC) && !t.NewlineBefore {
		if !isLValue(x) {
			return nil, &SyntaxError{Msg: "invalid increment target", Line: t.Line, Col: t.Col}
		}
		p.next()
		return &Postfix{base{t.Line}, t.Type, x}, nil
	}
	return x, nil
}

// callMember parses new/call/member chains.
func (p *parser) callMember() (Node, error) {
	var x Node
	var err error
	if p.atKw("new") {
		t := p.next()
		callee, err := p.callMemberNoCall()
		if err != nil {
			return nil, err
		}
		var args []Node
		if p.at(LPAREN) {
			args, err = p.arguments()
			if err != nil {
				return nil, err
			}
		}
		x = &NewExpr{base{t.Line}, callee, args}
	} else {
		x, err = p.primary()
		if err != nil {
			return nil, err
		}
	}
	return p.memberSuffix(x, true)
}

// callMemberNoCall parses the callee of `new`: member accesses bind
// tighter than the new's argument list, calls do not.
func (p *parser) callMemberNoCall() (Node, error) {
	var x Node
	var err error
	if p.atKw("new") {
		return p.callMember()
	}
	x, err = p.primary()
	if err != nil {
		return nil, err
	}
	return p.memberSuffix(x, false)
}

func (p *parser) memberSuffix(x Node, allowCall bool) (Node, error) {
	for {
		t := p.cur()
		switch t.Type {
		case DOT:
			p.next()
			name := p.cur()
			if name.Type != IDENT && name.Type != KEYWORD {
				return nil, &SyntaxError{Msg: "expected property name after '.'", Line: name.Line, Col: name.Col}
			}
			p.next()
			x = &Member{base{t.Line}, x, name.Lit, nil}
		case LBRACKET:
			p.next()
			idx, err := p.expression()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(RBRACKET, "']'"); err != nil {
				return nil, err
			}
			x = &Member{base{t.Line}, x, "", idx}
		case LPAREN:
			if !allowCall {
				return x, nil
			}
			args, err := p.arguments()
			if err != nil {
				return nil, err
			}
			x = &Call{base{t.Line}, x, args}
		default:
			return x, nil
		}
	}
}

func (p *parser) arguments() ([]Node, error) {
	if _, err := p.expect(LPAREN, "'('"); err != nil {
		return nil, err
	}
	var args []Node
	for !p.at(RPAREN) {
		a, err := p.assignment()
		if err != nil {
			return nil, err
		}
		args = append(args, a)
		if !p.eat(COMMA) {
			break
		}
	}
	if _, err := p.expect(RPAREN, "')'"); err != nil {
		return nil, err
	}
	return args, nil
}

func (p *parser) primary() (Node, error) {
	t := p.cur()
	switch t.Type {
	case NUMBER:
		p.next()
		return &NumberLit{base{t.Line}, t.Num}, nil
	case STRING:
		p.next()
		return &StringLit{base{t.Line}, t.Lit}, nil
	case IDENT:
		p.next()
		return &Ident{base{t.Line}, t.Lit}, nil
	case LPAREN:
		p.next()
		x, err := p.expression()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RPAREN, "')'"); err != nil {
			return nil, err
		}
		return x, nil
	case LBRACKET:
		return p.arrayLit()
	case LBRACE:
		return p.objectLit()
	case KEYWORD:
		switch t.Lit {
		case "true", "false":
			p.next()
			return &BoolLit{base{t.Line}, t.Lit == "true"}, nil
		case "null":
			p.next()
			return &NullLit{base{t.Line}}, nil
		case "this":
			p.next()
			return &ThisLit{base{t.Line}}, nil
		case "function":
			return p.funcLit(false)
		}
	}
	return nil, &SyntaxError{Msg: fmt.Sprintf("unexpected token %q", t.String()), Line: t.Line, Col: t.Col}
}

func (p *parser) arrayLit() (Node, error) {
	t := p.next() // [
	a := &ArrayLit{base: base{t.Line}}
	for !p.at(RBRACKET) {
		e, err := p.assignment()
		if err != nil {
			return nil, err
		}
		a.Elems = append(a.Elems, e)
		if !p.eat(COMMA) {
			break
		}
	}
	if _, err := p.expect(RBRACKET, "']'"); err != nil {
		return nil, err
	}
	return a, nil
}

func (p *parser) objectLit() (Node, error) {
	t := p.next() // {
	o := &ObjectLit{base: base{t.Line}}
	for !p.at(RBRACE) {
		kt := p.cur()
		var key string
		switch kt.Type {
		case IDENT, KEYWORD:
			key = kt.Lit
			p.next()
		case STRING:
			key = kt.Lit
			p.next()
		case NUMBER:
			key = numToString(kt.Num)
			p.next()
		default:
			return nil, &SyntaxError{Msg: "expected property key", Line: kt.Line, Col: kt.Col}
		}
		if _, err := p.expect(COLON, "':'"); err != nil {
			return nil, err
		}
		v, err := p.assignment()
		if err != nil {
			return nil, err
		}
		o.Keys = append(o.Keys, key)
		o.Values = append(o.Values, v)
		if !p.eat(COMMA) {
			break
		}
	}
	if _, err := p.expect(RBRACE, "'}'"); err != nil {
		return nil, err
	}
	return o, nil
}
