package js

import (
	"errors"
	"math"
	"strings"
	"testing"
)

// run evaluates src in a fresh interpreter and fails the test on error.
func run(t *testing.T, src string) Value {
	t.Helper()
	it := New()
	v, err := it.Run(src)
	if err != nil {
		t.Fatalf("Run(%q): %v", src, err)
	}
	return v
}

// expectNum asserts that src evaluates to the number want.
func expectNum(t *testing.T, src string, want float64) {
	t.Helper()
	v := run(t, src)
	if v.Kind() != KindNumber || v.NumVal() != want {
		t.Fatalf("%q = %v, want %v", src, v, want)
	}
}

func expectStr(t *testing.T, src string, want string) {
	t.Helper()
	v := run(t, src)
	if v.Kind() != KindString || v.StrVal() != want {
		t.Fatalf("%q = %v, want %q", src, v, want)
	}
}

func expectBool(t *testing.T, src string, want bool) {
	t.Helper()
	v := run(t, src)
	if v.Kind() != KindBool || v.BoolVal() != want {
		t.Fatalf("%q = %v, want %v", src, v, want)
	}
}

func TestArithmetic(t *testing.T) {
	expectNum(t, "1 + 2 * 3", 7)
	expectNum(t, "(1 + 2) * 3", 9)
	expectNum(t, "10 / 4", 2.5)
	expectNum(t, "10 % 3", 1)
	expectNum(t, "-5 + +3", -2)
	expectNum(t, "2 * 2 + 3 * 3", 13)
	expectNum(t, "1e3 + 0x10", 1016)
	expectNum(t, "0.25 + 0.5", 0.75)
}

func TestStringConcat(t *testing.T) {
	expectStr(t, `"a" + "b"`, "ab")
	expectStr(t, `"n=" + 5`, "n=5")
	expectStr(t, `5 + "=n"`, "5=n")
	expectStr(t, `"" + true`, "true")
	expectStr(t, `"" + null`, "null")
	expectStr(t, `"" + undefined`, "undefined")
	expectNum(t, `"3" - 1`, 2) // minus coerces to number
	expectStr(t, `1 + 2 + "x"`, "3x")
	expectStr(t, `"x" + 1 + 2`, "x12")
}

func TestComparisons(t *testing.T) {
	expectBool(t, "1 < 2", true)
	expectBool(t, "2 <= 2", true)
	expectBool(t, "3 > 4", false)
	expectBool(t, `"a" < "b"`, true)
	expectBool(t, `"10" < "9"`, true) // string compare
	expectBool(t, `10 < "9"`, false)  // numeric compare
	expectBool(t, "1 == 1", true)
	expectBool(t, `1 == "1"`, true)
	expectBool(t, `1 === "1"`, false)
	expectBool(t, "null == undefined", true)
	expectBool(t, "null === undefined", false)
	expectBool(t, "NaN == NaN", false)
	expectBool(t, "true == 1", true)
	expectBool(t, "false == 0", true)
	expectBool(t, `1 != 2`, true)
	expectBool(t, `1 !== 1`, false)
}

func TestLogicalShortCircuit(t *testing.T) {
	expectNum(t, "1 && 2", 2)
	expectNum(t, "0 && 2", 0)
	expectNum(t, "0 || 3", 3)
	expectNum(t, "4 || 5", 4)
	// The right side must not evaluate when short-circuited.
	expectNum(t, "var x = 0; false && (x = 1); x", 0)
	expectNum(t, "var x = 0; true || (x = 1); x", 0)
	expectBool(t, "!0", true)
	expectBool(t, "!!''", false)
}

func TestBitwise(t *testing.T) {
	expectNum(t, "5 & 3", 1)
	expectNum(t, "5 | 3", 7)
	expectNum(t, "5 ^ 3", 6)
	expectNum(t, "~5", -6)
	expectNum(t, "1 << 4", 16)
	expectNum(t, "-16 >> 2", -4)
	expectNum(t, "-1 >>> 28", 15)
}

func TestTernaryAndComma(t *testing.T) {
	expectNum(t, "1 ? 2 : 3", 2)
	expectNum(t, "0 ? 2 : 3", 3)
	expectNum(t, "(1, 2, 3)", 3)
}

func TestVariablesAndAssignment(t *testing.T) {
	expectNum(t, "var x = 1; x = x + 1; x", 2)
	expectNum(t, "var x = 1, y = 2; x + y", 3)
	expectNum(t, "var x = 5; x += 3; x", 8)
	expectNum(t, "var x = 5; x -= 3; x", 2)
	expectNum(t, "var x = 5; x *= 3; x", 15)
	expectNum(t, "var x = 6; x /= 3; x", 2)
	expectNum(t, "var x = 7; x %= 3; x", 1)
	expectStr(t, `var s = "a"; s += "b"; s`, "ab")
}

func TestIncrementDecrement(t *testing.T) {
	expectNum(t, "var x = 1; x++; x", 2)
	expectNum(t, "var x = 1; x++", 1) // postfix yields old
	expectNum(t, "var x = 1; ++x", 2) // prefix yields new
	expectNum(t, "var x = 1; x--; x", 0)
	expectNum(t, "var a = [1]; a[0]++; a[0]", 2)
	expectNum(t, "var o = {n: 5}; o.n++; o.n", 6)
}

func TestIfElse(t *testing.T) {
	expectNum(t, "var x; if (1) x = 1; else x = 2; x", 1)
	expectNum(t, "var x; if (0) x = 1; else x = 2; x", 2)
	expectNum(t, "var x = 0; if (0) x = 1; x", 0)
	expectNum(t, `var x; if (0) x = 1; else if (1) x = 2; else x = 3; x`, 2)
}

func TestLoops(t *testing.T) {
	expectNum(t, "var s = 0; for (var i = 0; i < 5; i++) s += i; s", 10)
	expectNum(t, "var s = 0, i = 0; while (i < 4) { s += i; i++; } s", 6)
	expectNum(t, "var s = 0, i = 0; do { s += i; i++; } while (i < 3); s", 3)
	expectNum(t, "var i = 0; do { i++; } while (false); i", 1)
	// break / continue
	expectNum(t, "var s = 0; for (var i = 0; i < 10; i++) { if (i == 3) break; s += i; } s", 3)
	expectNum(t, "var s = 0; for (var i = 0; i < 5; i++) { if (i % 2) continue; s += i; } s", 6)
	// nested loops: break only exits inner
	expectNum(t, `var n = 0;
		for (var i = 0; i < 3; i++) {
			for (var j = 0; j < 3; j++) { if (j == 1) break; n++; }
		}
		n`, 3)
}

func TestForIn(t *testing.T) {
	expectStr(t, `var o = {a: 1, b: 2, c: 3}, ks = "";
		for (var k in o) ks += k; ks`, "abc")
	expectNum(t, `var a = [10, 20, 30], s = 0;
		for (var i in a) s += a[i]; s`, 60)
}

func TestFunctions(t *testing.T) {
	expectNum(t, "function f(a, b) { return a + b; } f(2, 3)", 5)
	expectNum(t, "function f() { return; } f() === undefined ? 1 : 0", 1)
	expectNum(t, "function f(a) { return a; } f() === undefined ? 1 : 0", 1)
	expectNum(t, "var f = function(x) { return x * 2; }; f(21)", 42)
	// Hoisting: call before declaration.
	expectNum(t, "var r = g(); function g() { return 9; } r", 9)
	// Recursion.
	expectNum(t, "function fact(n) { return n <= 1 ? 1 : n * fact(n - 1); } fact(6)", 720)
	// Named function expression self-reference.
	expectNum(t, "var f = function fib(n) { return n < 2 ? n : fib(n-1) + fib(n-2); }; f(10)", 55)
	// arguments object.
	expectNum(t, "function f() { return arguments.length; } f(1, 2, 3)", 3)
	expectNum(t, "function f() { return arguments[1]; } f(5, 7)", 7)
}

func TestClosures(t *testing.T) {
	expectNum(t, `function counter() {
		var n = 0;
		return function() { n++; return n; };
	}
	var c = counter();
	c(); c(); c()`, 3)
	expectNum(t, `function adder(a) { return function(b) { return a + b; }; }
	adder(10)(32)`, 42)
	// Two closures share state.
	expectNum(t, `function mk() {
		var n = 0;
		return [function() { n += 1; }, function() { return n; }];
	}
	var fns = mk(); fns[0](); fns[0](); fns[1]()`, 2)
}

func TestVarHoistingScope(t *testing.T) {
	// var is function-scoped, not block-scoped.
	expectNum(t, "function f() { if (true) { var x = 5; } return x; } f()", 5)
	// Inner var shadows outer.
	expectNum(t, `var x = 1;
	function f() { var x = 2; return x; }
	f() + x`, 3)
	// Assignment without var writes the outer binding.
	expectNum(t, `var x = 1;
	function f() { x = 2; }
	f(); x`, 2)
	// Implicit global creation on unqualified assignment.
	expectNum(t, "function f() { zz = 7; } f(); zz", 7)
}

func TestObjects(t *testing.T) {
	expectNum(t, "var o = {a: 1, b: {c: 2}}; o.a + o.b.c", 3)
	expectNum(t, `var o = {}; o.x = 4; o["y"] = 6; o.x + o.y`, 10)
	expectStr(t, `var o = {"with space": "v"}; o["with space"]`, "v")
	expectBool(t, `var o = {a: 1}; "a" in o`, true)
	expectBool(t, `var o = {a: 1}; "b" in o`, false)
	expectBool(t, `var o = {a: 1}; delete o.a; "a" in o`, false)
	expectBool(t, `var o = {a: undefined}; o.hasOwnProperty("a")`, true)
	expectStr(t, "typeof {}", "object")
	// Numeric and keyword keys.
	expectNum(t, "var o = {1: 10, "+`"in"`+": 20}; o[1] + o['in']", 30)
}

func TestArrays(t *testing.T) {
	expectNum(t, "var a = [1, 2, 3]; a[0] + a[2]", 4)
	expectNum(t, "[1,2,3].length", 3)
	expectNum(t, "var a = []; a.push(5); a.push(6); a.length", 2)
	expectNum(t, "var a = [1,2,3]; a.pop()", 3)
	expectNum(t, "var a = [1,2,3]; a.pop(); a.length", 2)
	expectNum(t, "var a = [1,2,3]; a.shift()", 1)
	expectNum(t, "var a = [3]; a.unshift(1, 2); a[1]", 2)
	expectStr(t, `[1,2,3].join("-")`, "1-2-3")
	expectStr(t, "[1,2,3].join()", "1,2,3")
	expectNum(t, "[10,20,30].slice(1)[0]", 20)
	expectNum(t, "[10,20,30].slice(0, -1).length", 2)
	expectNum(t, "[1,2].concat([3,4], 5).length", 5)
	expectNum(t, "[5,6,7].indexOf(6)", 1)
	expectNum(t, "[5,6,7].indexOf(9)", -1)
	expectNum(t, "var a = [1,2,3]; a.reverse(); a[0]", 3)
	// Sparse growth via index assignment.
	expectNum(t, "var a = []; a[3] = 9; a.length", 4)
	// length truncation.
	expectNum(t, "var a = [1,2,3]; a.length = 1; a.length", 1)
	expectStr(t, "typeof []", "object")
}

func TestStringMethods(t *testing.T) {
	expectNum(t, `"hello".length`, 5)
	expectStr(t, `"hello".charAt(1)`, "e")
	expectNum(t, `"hello".charCodeAt(0)`, 104)
	expectNum(t, `"hello world".indexOf("o")`, 4)
	expectNum(t, `"hello world".indexOf("o", 5)`, 7)
	expectNum(t, `"hello".indexOf("z")`, -1)
	expectStr(t, `"hello".substring(1, 3)`, "el")
	expectStr(t, `"hello".substring(3, 1)`, "el") // swapped args
	expectStr(t, `"hello".substr(1, 3)`, "ell")
	expectStr(t, `"hello".slice(-3)`, "llo")
	expectStr(t, `"a,b,c".split(",")[1]`, "b")
	expectNum(t, `"abc".split("").length`, 3)
	expectStr(t, `"AbC".toLowerCase()`, "abc")
	expectStr(t, `"AbC".toUpperCase()`, "ABC")
	expectStr(t, `"a-b-a".replace("a", "x")`, "x-b-a")
	expectStr(t, `"  pad  ".trim()`, "pad")
	expectStr(t, `"ab".concat("cd", "ef")`, "abcdef")
	expectStr(t, `"abc"[1]`, "b")
	expectStr(t, "typeof ''", "string")
}

func TestTypeofAndVoid(t *testing.T) {
	expectStr(t, "typeof 1", "number")
	expectStr(t, "typeof 'x'", "string")
	expectStr(t, "typeof true", "boolean")
	expectStr(t, "typeof undefined", "undefined")
	expectStr(t, "typeof null", "object")
	expectStr(t, "typeof function(){}", "function")
	expectStr(t, "typeof notDefinedAnywhere", "undefined") // must not throw
	expectBool(t, "void 0 === undefined", true)
}

func TestThisAndMethods(t *testing.T) {
	expectNum(t, `var o = {n: 41, get: function() { return this.n + 1; }};
	o.get()`, 42)
	expectNum(t, `var o = {n: 1, bump: function() { this.n += 10; }};
	o.bump(); o.n`, 11)
	// call/apply rebinding.
	expectNum(t, `function get() { return this.v; }
	get.call({v: 7})`, 7)
	expectNum(t, `function add(a, b) { return this.base + a + b; }
	add.apply({base: 100}, [1, 2])`, 103)
}

func TestNewAndPrototypes(t *testing.T) {
	expectNum(t, `function Point(x, y) { this.x = x; this.y = y; }
	var p = new Point(3, 4);
	p.x + p.y`, 7)
	expectNum(t, `function Counter() { this.n = 0; }
	Counter.prototype = {inc: function() { this.n++; }};
	var c = new Counter();
	c.inc(); c.inc(); c.n`, 2)
	expectBool(t, `function A() {}
	var a = new A();
	a instanceof A`, true)
	expectBool(t, `function A() {} function B() {}
	new A() instanceof B`, false)
}

func TestSwitch(t *testing.T) {
	src := `function f(x) {
		switch (x) {
		case 1: return "one";
		case 2:
		case 3: return "few";
		default: return "many";
		}
	}`
	expectStr(t, src+`f(1)`, "one")
	expectStr(t, src+`f(2)`, "few")
	expectStr(t, src+`f(3)`, "few")
	expectStr(t, src+`f(9)`, "many")
	// Fallthrough without return/break.
	expectNum(t, `var n = 0;
	switch (1) { case 1: n += 1; case 2: n += 10; } n`, 11)
	// break exits switch.
	expectNum(t, `var n = 0;
	switch (1) { case 1: n += 1; break; case 2: n += 10; } n`, 1)
	// switch uses strict equality.
	expectStr(t, src+`f("1")`, "many")
}

func TestThrowTryCatch(t *testing.T) {
	expectStr(t, `var r;
	try { throw "boom"; r = "no"; } catch (e) { r = e; }
	r`, "boom")
	expectNum(t, `var r = 0;
	try { r = 1; } catch (e) { r = 2; }
	r`, 1)
	// finally always runs.
	expectNum(t, `var n = 0;
	try { throw 1; } catch (e) { n += 1; } finally { n += 10; }
	n`, 11)
	expectNum(t, `var n = 0;
	function f() { try { return 1; } finally { n = 5; } }
	f(); n`, 5)
	// Runtime errors are catchable.
	expectStr(t, `var r = "none";
	try { undefinedFn(); } catch (e) { r = "caught"; }
	r`, "caught")
	// Uncaught throw surfaces as error.
	it := New()
	_, err := it.Run(`throw "unhandled";`)
	th, ok := err.(*Thrown)
	if !ok || th.Value.ToString() != "unhandled" {
		t.Fatalf("uncaught throw = %v", err)
	}
}

func TestErrorObjects(t *testing.T) {
	expectStr(t, `var r;
	try { throw new Error("msg here"); } catch (e) { r = e.message; }
	r`, "msg here")
}

func TestRuntimeErrors(t *testing.T) {
	it := New()
	if _, err := it.Run("nope()"); err == nil {
		t.Fatalf("calling undefined should error")
	}
	if _, err := it.Run("var x = undefinedVar + 1;"); err == nil {
		t.Fatalf("reading undefined variable should error")
	}
	if _, err := it.Run("null.x"); err == nil {
		t.Fatalf("member of null should error")
	}
	if _, err := it.Run("undefined.x = 1"); err == nil {
		t.Fatalf("assigning member of undefined should error")
	}
	if _, err := it.Run("(4)()"); err == nil {
		t.Fatalf("calling a number should error")
	}
}

func TestStepBudgetStopsInfiniteLoop(t *testing.T) {
	it := New()
	it.MaxSteps = 100000
	_, err := it.Run("while (true) {}")
	if err != ErrBudget {
		t.Fatalf("want ErrBudget, got %v", err)
	}
}

func TestMaxDepthStopsRunawayRecursion(t *testing.T) {
	it := New()
	_, err := it.Run("function f() { return f(); } f()")
	if err == nil || !strings.Contains(err.Error(), "depth") {
		t.Fatalf("want depth error, got %v", err)
	}
}

func TestGlobalBuiltins(t *testing.T) {
	expectNum(t, `parseInt("42")`, 42)
	expectNum(t, `parseInt("42abc")`, 42)
	expectNum(t, `parseInt("0x1f")`, 31)
	expectNum(t, `parseInt("-7")`, -7)
	expectNum(t, `parseInt("ff", 16)`, 255)
	expectBool(t, `isNaN(parseInt("zz"))`, true)
	expectNum(t, `parseFloat("3.5rest")`, 3.5)
	expectBool(t, `isNaN(parseFloat("x"))`, true)
	expectBool(t, `isFinite(1/0)`, false)
	expectStr(t, `String(12)`, "12")
	expectNum(t, `Number("8")`, 8)
	expectBool(t, `Boolean("")`, false)
	expectStr(t, `encodeURIComponent("a b&c")`, "a+b%26c")
	expectNum(t, `new Array(3).length`, 3)
}

func TestMath(t *testing.T) {
	expectNum(t, "Math.abs(-4)", 4)
	expectNum(t, "Math.floor(3.9)", 3)
	expectNum(t, "Math.ceil(3.1)", 4)
	expectNum(t, "Math.round(2.5)", 3)
	expectNum(t, "Math.max(1, 9, 4)", 9)
	expectNum(t, "Math.min(5, 2, 7)", 2)
	expectNum(t, "Math.pow(2, 10)", 1024)
	expectNum(t, "Math.sqrt(81)", 9)
	v := run(t, "Math.random()")
	if f := v.NumVal(); f < 0 || f >= 1 {
		t.Fatalf("Math.random out of range: %v", f)
	}
	// Deterministic across fresh interpreters.
	a := run(t, "Math.random()")
	b := run(t, "Math.random()")
	if a.NumVal() != b.NumVal() {
		t.Fatalf("Math.random must be deterministic per fresh interp")
	}
}

func TestNumberFormatting(t *testing.T) {
	expectStr(t, "(255).toString(16)", "ff")
	expectStr(t, "(3.14159).toFixed(2)", "3.14")
	expectStr(t, `"" + 1000000`, "1000000")
	expectStr(t, `"" + 1.5`, "1.5")
	expectStr(t, `"" + (0/0)`, "NaN")
	expectStr(t, `"" + (1/0)`, "Infinity")
	expectStr(t, `"" + (-1/0)`, "-Infinity")
}

func TestASIAndNewlines(t *testing.T) {
	expectNum(t, "var x = 1\nvar y = 2\nx + y", 3)
	expectNum(t, "var x = 1; x\n", 1)
	// Restricted return: newline after return means return undefined.
	expectBool(t, "function f() { return\n5; } f() === undefined", true)
	expectNum(t, "function f() { return 5; } f()", 5)
}

func TestComments(t *testing.T) {
	expectNum(t, "// line comment\n1 + 1", 2)
	expectNum(t, "/* block\ncomment */ 2 + 2", 4)
	expectNum(t, "1 + /* inline */ 2", 3)
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"var = 5",
		"function () {}", // declaration without name
		"if (1 {",
		"1 +",
		"var x = ;",
		"'unterminated",
		"/* unterminated",
		"do { } until (1);",
		"switch (x) { what: 1; }",
		"try { }", // try without catch/finally
		"5 = x",
		"x ++ ++",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestLexerPositions(t *testing.T) {
	_, err := Parse("var x = 1;\nvar y = @;")
	se, ok := err.(*SyntaxError)
	if !ok {
		t.Fatalf("want SyntaxError, got %v", err)
	}
	if se.Line != 2 {
		t.Fatalf("error line = %d, want 2", se.Line)
	}
}

func TestStringEscapes(t *testing.T) {
	expectStr(t, `"a\nb"`, "a\nb")
	expectStr(t, `"a\tb"`, "a\tb")
	expectStr(t, `"q\"q"`, `q"q`)
	expectStr(t, `'s\'s'`, "s's")
	expectStr(t, `"\x41"`, "A")
	expectStr(t, `"A"`, "A")
	expectStr(t, `"back\\slash"`, `back\slash`)
}

func TestHostObjectHooks(t *testing.T) {
	it := New()
	host := &fakeHost{props: map[string]Value{"x": Num(10)}}
	o := NewObject()
	o.Host = host
	it.DefineGlobal("h", ObjVal(o))
	v, err := it.Run("h.x + 1")
	if err != nil || v.NumVal() != 11 {
		t.Fatalf("host get failed: %v %v", v, err)
	}
	if _, err := it.Run("h.x = 99"); err != nil {
		t.Fatalf("host set: %v", err)
	}
	if host.props["x"].NumVal() != 99 {
		t.Fatalf("host set not routed, got %v", host.props["x"])
	}
	// Non-host props still work.
	if _, err := it.Run("h.other = 5"); err != nil {
		t.Fatalf("fallthrough set: %v", err)
	}
	v, _ = it.Run("h.other")
	if v.NumVal() != 5 {
		t.Fatalf("fallthrough get = %v", v)
	}
}

type fakeHost struct{ props map[string]Value }

func (f *fakeHost) HostGet(name string) (Value, bool) {
	v, ok := f.props[name]
	return v, ok
}

func (f *fakeHost) HostSet(name string, v Value) bool {
	if _, ok := f.props[name]; ok {
		f.props[name] = v
		return true
	}
	return false
}

func TestNativeFunctions(t *testing.T) {
	it := New()
	calls := 0
	it.DefineGlobal("native", ObjVal(NewNative("native", func(it *Interp, this Value, args []Value) (Value, error) {
		calls++
		return Num(args[0].ToNumber() * 2), nil
	})))
	v, err := it.Run("native(21)")
	if err != nil || v.NumVal() != 42 || calls != 1 {
		t.Fatalf("native call: v=%v err=%v calls=%d", v, err, calls)
	}
}

// TestDebuggerHooks verifies the Rhino-style debugger facility: every
// function entry/exit is observed with name and actual args, and the call
// stack is inspectable during execution — the foundation of hot-node
// detection.
func TestDebuggerHooks(t *testing.T) {
	it := New()
	var entered, exited []string
	var stackAtInner []string
	dbg := &recordingDebugger{
		onEnter: func(it *Interp, f *Frame) {
			entered = append(entered, f.Key())
			if f.FuncName == "inner" {
				for _, fr := range it.CallStack() {
					stackAtInner = append(stackAtInner, fr.FuncName)
				}
			}
		},
		onExit: func(it *Interp, f *Frame, v Value, err error) {
			exited = append(exited, f.FuncName)
		},
	}
	it.Debugger = dbg
	_, err := it.Run(`
		function outer(a) { return inner(a + 1, "s"); }
		function inner(n, s) { return n; }
		outer(1);
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(entered) != 2 || entered[0] != "outer(1)" || entered[1] != `inner(2,s)` {
		t.Fatalf("entered = %v", entered)
	}
	if len(exited) != 2 || exited[0] != "inner" || exited[1] != "outer" {
		t.Fatalf("exited = %v (want inner first, LIFO)", exited)
	}
	if len(stackAtInner) != 2 || stackAtInner[0] != "outer" || stackAtInner[1] != "inner" {
		t.Fatalf("stack at inner = %v", stackAtInner)
	}
	if it.TopUserFrame() != nil {
		t.Fatalf("stack not empty after run")
	}
}

type recordingDebugger struct {
	onEnter func(*Interp, *Frame)
	onExit  func(*Interp, *Frame, Value, error)
}

func (d *recordingDebugger) OnEnter(it *Interp, f *Frame) { d.onEnter(it, f) }
func (d *recordingDebugger) OnExit(it *Interp, f *Frame, v Value, err error) {
	d.onExit(it, f, v, err)
}

func TestFrameKey(t *testing.T) {
	f := &Frame{FuncName: "getUrl", Args: []Value{Str("/comments?v=1&p=2"), Bool(false)}}
	if got := f.Key(); got != "getUrl(/comments?v=1&p=2,false)" {
		t.Fatalf("Key = %q", got)
	}
	empty := &Frame{FuncName: "init"}
	if empty.Key() != "init()" {
		t.Fatalf("empty Key = %q", empty.Key())
	}
}

func TestValueConversions(t *testing.T) {
	if Num(0).ToBool() || Str("").ToBool() || Null().ToBool() || Undefined.ToBool() {
		t.Fatalf("falsy values wrong")
	}
	if !Num(1).ToBool() || !Str("x").ToBool() || !ObjVal(NewObject()).ToBool() {
		t.Fatalf("truthy values wrong")
	}
	if Str(" 42 ").ToNumber() != 42 {
		t.Fatalf("string->number trim failed")
	}
	if Str("").ToNumber() != 0 {
		t.Fatalf("empty string should be 0")
	}
	if !math.IsNaN(Str("abc").ToNumber()) {
		t.Fatalf("junk string should be NaN")
	}
	if Str("0x10").ToNumber() != 16 {
		t.Fatalf("hex string conversion failed")
	}
	if Bool(true).ToNumber() != 1 || Bool(false).ToNumber() != 0 {
		t.Fatalf("bool->number failed")
	}
	if ObjVal(NewArray(Num(1), Num(2))).ToString() != "1,2" {
		t.Fatalf("array toString failed")
	}
}

func TestRunProgramReuse(t *testing.T) {
	it := New()
	if _, err := it.Run("var shared = 10;"); err != nil {
		t.Fatal(err)
	}
	v, err := it.Run("shared + 5")
	if err != nil || v.NumVal() != 15 {
		t.Fatalf("state not preserved across Run calls: %v %v", v, err)
	}
}

func TestInstanceMutationThroughReference(t *testing.T) {
	expectNum(t, `var a = {list: []};
	var ref = a.list;
	ref.push(1); ref.push(2);
	a.list.length`, 2)
}

func TestDeterministicForInOrder(t *testing.T) {
	// Insertion order must be stable across runs (determinism guarantee).
	for i := 0; i < 5; i++ {
		expectStr(t, `var o = {}; o.z = 1; o.a = 2; o.m = 3;
		var ks = ""; for (var k in o) ks += k; ks`, "zam")
	}
}

func BenchmarkInterpFib(b *testing.B) {
	prog, err := Parse("function fib(n) { return n < 2 ? n : fib(n-1) + fib(n-2); } fib(15)")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		it := New()
		if _, err := it.RunProgram(prog); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInterpStringOps(b *testing.B) {
	prog, err := Parse(`var s = ""; for (var i = 0; i < 200; i++) { s += "x"; } s.length`)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		it := New()
		if _, err := it.RunProgram(prog); err != nil {
			b.Fatal(err)
		}
	}
}

func TestLabeledBreak(t *testing.T) {
	expectNum(t, `
	var n = 0;
	outer:
	for (var i = 0; i < 5; i++) {
		for (var j = 0; j < 5; j++) {
			if (i == 1 && j == 1) { break outer; }
			n++;
		}
	}
	n`, 6) // i=0: 5 iterations, i=1: 1 iteration
	// Labeled break from a while inside a for.
	expectNum(t, `
	var n = 0;
	loop:
	for (var i = 0; i < 3; i++) {
		var j = 0;
		while (true) {
			j++;
			if (j > 2) { break loop; }
			n++;
		}
	}
	n`, 2)
	// Labeled break on a non-loop statement (block).
	expectNum(t, `
	var n = 0;
	blk: {
		n = 1;
		break blk;
		n = 2;
	}
	n`, 1)
}

func TestLabeledContinue(t *testing.T) {
	expectNum(t, `
	var n = 0;
	outer:
	for (var i = 0; i < 3; i++) {
		for (var j = 0; j < 3; j++) {
			if (j == 1) { continue outer; }
			n++;
		}
	}
	n`, 3) // one inner iteration per outer pass
	// continue with label on the innermost labeled loop == plain continue.
	expectNum(t, `
	var n = 0;
	self:
	for (var i = 0; i < 4; i++) {
		if (i % 2 == 0) { continue self; }
		n++;
	}
	n`, 2)
}

func TestUnlabeledSignalsStillLocal(t *testing.T) {
	// Inner unlabeled break must not exit the labeled outer loop.
	expectNum(t, `
	var n = 0;
	outer:
	for (var i = 0; i < 3; i++) {
		for (var j = 0; j < 10; j++) {
			if (j == 1) { break; }
			n++;
		}
	}
	n`, 3)
}

func TestLabelIsNotASIVictim(t *testing.T) {
	// `break\nlabel` is a bare break then an expression statement.
	expectNum(t, `
	var outer = 5;
	var n = 0;
	for (var i = 0; i < 3; i++) {
		n++;
		break
		outer;
	}
	n`, 1)
}

func TestLabelLooksLikeTernaryIsNotConfused(t *testing.T) {
	// An identifier followed by ':' only labels in statement position;
	// object literals and ternaries still parse.
	expectNum(t, `var o = {lbl: 7}; o.lbl`, 7)
	expectNum(t, `var x = true ? 1 : 2; x`, 1)
}

func TestInterruptPreemptsRun(t *testing.T) {
	it := New()
	cause := errors.New("crawl deadline passed")
	var polls int
	it.Interrupt = func() error {
		polls++
		if polls > 3 {
			return cause
		}
		return nil
	}
	_, err := it.Run("var i = 0; while (true) { i = i + 1; }")
	var interrupted *Interrupted
	if !errors.As(err, &interrupted) {
		t.Fatalf("want *Interrupted, got %v", err)
	}
	if !errors.Is(err, cause) {
		t.Fatalf("Interrupted should unwrap to its cause: %v", err)
	}
}

func TestInterruptNotCatchable(t *testing.T) {
	it := New()
	it.Interrupt = func() error { return errors.New("stop") }
	_, err := it.Run("try { while (true) {} } catch (e) { }")
	var interrupted *Interrupted
	if !errors.As(err, &interrupted) {
		t.Fatalf("try/catch must not swallow an interrupt: %v", err)
	}
}

func TestNilInterruptRunsNormally(t *testing.T) {
	it := New()
	v, err := it.Run("1 + 2")
	if err != nil || v.NumVal() != 3 {
		t.Fatalf("v=%v err=%v", v, err)
	}
}
