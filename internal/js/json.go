package js

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// installJSON defines the global JSON object (stringify/parse). Era AJAX
// applications increasingly shipped JSON payloads instead of HTML
// fragments; the crawler's interpreter supports both.
func installJSON(it *Interp) {
	j := NewObject()
	j.SetProp("stringify", ObjVal(NewNative("stringify", biJSONStringify)))
	j.SetProp("parse", ObjVal(NewNative("parse", biJSONParse)))
	it.Global.Define("JSON", ObjVal(j))
}

func biJSONStringify(it *Interp, this Value, args []Value) (Value, error) {
	v := arg(args, 0)
	var b strings.Builder
	if !writeJSON(&b, v, 0) {
		return Undefined, nil
	}
	return Str(b.String()), nil
}

// writeJSON serializes v; returns false for undefined/functions (which
// JSON.stringify omits or maps to undefined at the top level).
func writeJSON(b *strings.Builder, v Value, depth int) bool {
	if depth > 64 {
		b.WriteString("null") // cycle guard
		return true
	}
	switch v.Kind() {
	case KindUndefined:
		return false
	case KindNull:
		b.WriteString("null")
	case KindBool:
		b.WriteString(v.ToString())
	case KindNumber:
		f := v.NumVal()
		if math.IsNaN(f) || math.IsInf(f, 0) {
			b.WriteString("null")
		} else {
			b.WriteString(numToString(f))
		}
	case KindString:
		writeJSONString(b, v.StrVal())
	case KindObject:
		o := v.Object()
		if o.IsCallable() {
			return false
		}
		if o.IsArray() {
			b.WriteByte('[')
			for i, e := range o.Elems {
				if i > 0 {
					b.WriteByte(',')
				}
				if !writeJSON(b, e, depth+1) {
					b.WriteString("null")
				}
			}
			b.WriteByte(']')
			return true
		}
		b.WriteByte('{')
		first := true
		keys := append([]string(nil), o.keys...)
		sort.Strings(keys)
		for _, k := range keys {
			pv, _ := o.GetOwn(k)
			var vb strings.Builder
			if !writeJSON(&vb, pv, depth+1) {
				continue
			}
			if !first {
				b.WriteByte(',')
			}
			first = false
			writeJSONString(b, k)
			b.WriteByte(':')
			b.WriteString(vb.String())
		}
		b.WriteByte('}')
	}
	return true
}

func writeJSONString(b *strings.Builder, s string) {
	b.WriteByte('"')
	for _, r := range s {
		switch r {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\r':
			b.WriteString(`\r`)
		case '\t':
			b.WriteString(`\t`)
		default:
			if r < 0x20 {
				fmt.Fprintf(b, `\u%04x`, r)
			} else {
				b.WriteRune(r)
			}
		}
	}
	b.WriteByte('"')
}

func biJSONParse(it *Interp, this Value, args []Value) (Value, error) {
	p := &jsonParser{src: arg(args, 0).ToString()}
	v, err := p.value()
	if err != nil {
		return Undefined, &Thrown{Value: Str("SyntaxError: " + err.Error())}
	}
	p.ws()
	if p.pos != len(p.src) {
		return Undefined, &Thrown{Value: Str("SyntaxError: trailing characters in JSON")}
	}
	return v, nil
}

type jsonParser struct {
	src string
	pos int
}

func (p *jsonParser) ws() {
	for p.pos < len(p.src) {
		switch p.src[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		default:
			return
		}
	}
}

func (p *jsonParser) value() (Value, error) {
	p.ws()
	if p.pos >= len(p.src) {
		return Undefined, fmt.Errorf("unexpected end of JSON")
	}
	switch c := p.src[p.pos]; {
	case c == '{':
		return p.object()
	case c == '[':
		return p.array()
	case c == '"':
		s, err := p.string()
		if err != nil {
			return Undefined, err
		}
		return Str(s), nil
	case c == 't':
		return p.literal("true", Bool(true))
	case c == 'f':
		return p.literal("false", Bool(false))
	case c == 'n':
		return p.literal("null", Null())
	case c == '-' || (c >= '0' && c <= '9'):
		return p.number()
	}
	return Undefined, fmt.Errorf("unexpected character %q at %d", p.src[p.pos], p.pos)
}

func (p *jsonParser) literal(word string, v Value) (Value, error) {
	if strings.HasPrefix(p.src[p.pos:], word) {
		p.pos += len(word)
		return v, nil
	}
	return Undefined, fmt.Errorf("invalid literal at %d", p.pos)
}

func (p *jsonParser) number() (Value, error) {
	start := p.pos
	if p.pos < len(p.src) && p.src[p.pos] == '-' {
		p.pos++
	}
	for p.pos < len(p.src) && (p.src[p.pos] >= '0' && p.src[p.pos] <= '9' ||
		p.src[p.pos] == '.' || p.src[p.pos] == 'e' || p.src[p.pos] == 'E' ||
		p.src[p.pos] == '+' || p.src[p.pos] == '-') {
		p.pos++
	}
	f, err := strconv.ParseFloat(p.src[start:p.pos], 64)
	if err != nil {
		return Undefined, fmt.Errorf("bad number at %d", start)
	}
	return Num(f), nil
}

func (p *jsonParser) string() (string, error) {
	p.pos++ // opening quote
	var b strings.Builder
	for {
		if p.pos >= len(p.src) {
			return "", fmt.Errorf("unterminated string")
		}
		c := p.src[p.pos]
		if c == '"' {
			p.pos++
			return b.String(), nil
		}
		if c != '\\' {
			b.WriteByte(c)
			p.pos++
			continue
		}
		p.pos++
		if p.pos >= len(p.src) {
			return "", fmt.Errorf("unterminated escape")
		}
		switch e := p.src[p.pos]; e {
		case '"', '\\', '/':
			b.WriteByte(e)
			p.pos++
		case 'n':
			b.WriteByte('\n')
			p.pos++
		case 't':
			b.WriteByte('\t')
			p.pos++
		case 'r':
			b.WriteByte('\r')
			p.pos++
		case 'b':
			b.WriteByte('\b')
			p.pos++
		case 'f':
			b.WriteByte('\f')
			p.pos++
		case 'u':
			if p.pos+4 >= len(p.src) {
				return "", fmt.Errorf("bad unicode escape")
			}
			n, err := strconv.ParseUint(p.src[p.pos+1:p.pos+5], 16, 32)
			if err != nil {
				return "", fmt.Errorf("bad unicode escape")
			}
			b.WriteRune(rune(n))
			p.pos += 5
		default:
			return "", fmt.Errorf("bad escape \\%c", e)
		}
	}
}

func (p *jsonParser) object() (Value, error) {
	p.pos++ // {
	o := NewObject()
	p.ws()
	if p.pos < len(p.src) && p.src[p.pos] == '}' {
		p.pos++
		return ObjVal(o), nil
	}
	for {
		p.ws()
		if p.pos >= len(p.src) || p.src[p.pos] != '"' {
			return Undefined, fmt.Errorf("expected object key at %d", p.pos)
		}
		key, err := p.string()
		if err != nil {
			return Undefined, err
		}
		p.ws()
		if p.pos >= len(p.src) || p.src[p.pos] != ':' {
			return Undefined, fmt.Errorf("expected ':' at %d", p.pos)
		}
		p.pos++
		v, err := p.value()
		if err != nil {
			return Undefined, err
		}
		o.SetProp(key, v)
		p.ws()
		if p.pos >= len(p.src) {
			return Undefined, fmt.Errorf("unterminated object")
		}
		switch p.src[p.pos] {
		case ',':
			p.pos++
		case '}':
			p.pos++
			return ObjVal(o), nil
		default:
			return Undefined, fmt.Errorf("expected ',' or '}' at %d", p.pos)
		}
	}
}

func (p *jsonParser) array() (Value, error) {
	p.pos++ // [
	arr := NewArray()
	p.ws()
	if p.pos < len(p.src) && p.src[p.pos] == ']' {
		p.pos++
		return ObjVal(arr), nil
	}
	for {
		v, err := p.value()
		if err != nil {
			return Undefined, err
		}
		arr.Elems = append(arr.Elems, v)
		p.ws()
		if p.pos >= len(p.src) {
			return Undefined, fmt.Errorf("unterminated array")
		}
		switch p.src[p.pos] {
		case ',':
			p.pos++
		case ']':
			p.pos++
			return ObjVal(arr), nil
		default:
			return Undefined, fmt.Errorf("expected ',' or ']' at %d", p.pos)
		}
	}
}
