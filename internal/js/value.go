package js

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Kind enumerates the JavaScript value kinds.
type Kind int

// Value kinds.
const (
	KindUndefined Kind = iota
	KindNull
	KindBool
	KindNumber
	KindString
	KindObject
)

// Value is a JavaScript value. The zero Value is undefined.
type Value struct {
	kind Kind
	b    bool
	num  float64
	str  string
	obj  *Object
}

// Constructors.

// Undefined is the undefined value.
var Undefined = Value{}

// Null returns the null value.
func Null() Value { return Value{kind: KindNull} }

// Bool returns a boolean value.
func Bool(b bool) Value { return Value{kind: KindBool, b: b} }

// Num returns a number value.
func Num(f float64) Value { return Value{kind: KindNumber, num: f} }

// Str returns a string value.
func Str(s string) Value { return Value{kind: KindString, str: s} }

// ObjVal wraps an object.
func ObjVal(o *Object) Value { return Value{kind: KindObject, obj: o} }

// Accessors.

// Kind returns the value kind.
func (v Value) Kind() Kind { return v.kind }

// IsUndefined reports whether v is undefined.
func (v Value) IsUndefined() bool { return v.kind == KindUndefined }

// IsNull reports whether v is null.
func (v Value) IsNull() bool { return v.kind == KindNull }

// Object returns the wrapped object (nil for non-objects).
func (v Value) Object() *Object {
	if v.kind == KindObject {
		return v.obj
	}
	return nil
}

// StrVal returns the raw string payload (only meaningful for strings).
func (v Value) StrVal() string { return v.str }

// NumVal returns the raw number payload (only meaningful for numbers).
func (v Value) NumVal() float64 { return v.num }

// BoolVal returns the raw bool payload (only meaningful for booleans).
func (v Value) BoolVal() bool { return v.b }

// TypeOf implements the typeof operator.
func (v Value) TypeOf() string {
	switch v.kind {
	case KindUndefined:
		return "undefined"
	case KindNull:
		return "object"
	case KindBool:
		return "boolean"
	case KindNumber:
		return "number"
	case KindString:
		return "string"
	case KindObject:
		if v.obj != nil && v.obj.IsCallable() {
			return "function"
		}
		return "object"
	}
	return "undefined"
}

// ToBool implements ToBoolean.
func (v Value) ToBool() bool {
	switch v.kind {
	case KindUndefined, KindNull:
		return false
	case KindBool:
		return v.b
	case KindNumber:
		return v.num != 0 && !math.IsNaN(v.num)
	case KindString:
		return v.str != ""
	case KindObject:
		return true
	}
	return false
}

// ToNumber implements ToNumber.
func (v Value) ToNumber() float64 {
	switch v.kind {
	case KindUndefined:
		return math.NaN()
	case KindNull:
		return 0
	case KindBool:
		if v.b {
			return 1
		}
		return 0
	case KindNumber:
		return v.num
	case KindString:
		s := strings.TrimSpace(v.str)
		if s == "" {
			return 0
		}
		if strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X") {
			n, err := strconv.ParseUint(s[2:], 16, 64)
			if err != nil {
				return math.NaN()
			}
			return float64(n)
		}
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return math.NaN()
		}
		return f
	case KindObject:
		return v.toPrimitive().ToNumber()
	}
	return math.NaN()
}

// ToInt32 implements ToInt32 for bitwise operators.
func (v Value) ToInt32() int32 {
	f := v.ToNumber()
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return 0
	}
	return int32(uint32(int64(f)))
}

// ToUint32 implements ToUint32.
func (v Value) ToUint32() uint32 {
	f := v.ToNumber()
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return 0
	}
	return uint32(int64(f))
}

// ToString implements ToString.
func (v Value) ToString() string {
	switch v.kind {
	case KindUndefined:
		return "undefined"
	case KindNull:
		return "null"
	case KindBool:
		if v.b {
			return "true"
		}
		return "false"
	case KindNumber:
		return numToString(v.num)
	case KindString:
		return v.str
	case KindObject:
		return v.obj.toStringValue()
	}
	return "undefined"
}

// String implements fmt.Stringer with a debugging representation.
func (v Value) String() string {
	if v.kind == KindString {
		return fmt.Sprintf("%q", v.str)
	}
	return v.ToString()
}

// toPrimitive converts objects to a primitive (string preferred), the
// default ToPrimitive for our subset.
func (v Value) toPrimitive() Value {
	if v.kind != KindObject {
		return v
	}
	return Str(v.obj.toStringValue())
}

// numToString renders a float64 the way JavaScript does for the common
// cases: integers without a decimal point, NaN/Infinity named.
func numToString(f float64) string {
	switch {
	case math.IsNaN(f):
		return "NaN"
	case math.IsInf(f, 1):
		return "Infinity"
	case math.IsInf(f, -1):
		return "-Infinity"
	case f == math.Trunc(f) && math.Abs(f) < 1e21:
		return strconv.FormatFloat(f, 'f', -1, 64)
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// StrictEquals implements ===.
func StrictEquals(a, b Value) bool {
	if a.kind != b.kind {
		return false
	}
	switch a.kind {
	case KindUndefined, KindNull:
		return true
	case KindBool:
		return a.b == b.b
	case KindNumber:
		return a.num == b.num // NaN != NaN naturally
	case KindString:
		return a.str == b.str
	case KindObject:
		return a.obj == b.obj
	}
	return false
}

// LooseEquals implements == with the usual coercions.
func LooseEquals(a, b Value) bool {
	if a.kind == b.kind {
		return StrictEquals(a, b)
	}
	switch {
	case (a.kind == KindNull && b.kind == KindUndefined) ||
		(a.kind == KindUndefined && b.kind == KindNull):
		return true
	case a.kind == KindNumber && b.kind == KindString:
		return a.num == b.ToNumber()
	case a.kind == KindString && b.kind == KindNumber:
		return a.ToNumber() == b.num
	case a.kind == KindBool:
		return LooseEquals(Num(a.ToNumber()), b)
	case b.kind == KindBool:
		return LooseEquals(a, Num(b.ToNumber()))
	case (a.kind == KindNumber || a.kind == KindString) && b.kind == KindObject:
		return LooseEquals(a, b.toPrimitive())
	case a.kind == KindObject && (b.kind == KindNumber || b.kind == KindString):
		return LooseEquals(a.toPrimitive(), b)
	}
	return false
}

// HostObject lets the embedder expose native-backed properties: the DOM
// element wrappers (innerHTML!), document, window, and XMLHttpRequest
// are all host objects. HostGet/HostSet take priority over the ordinary
// property map.
type HostObject interface {
	HostGet(name string) (Value, bool)
	HostSet(name string, v Value) bool
}

// NativeFunc is a Go-implemented JavaScript function.
type NativeFunc func(it *Interp, this Value, args []Value) (Value, error)

// Object is a JavaScript object: plain objects, arrays, and functions.
type Object struct {
	Class string // "Object", "Array", "Function"
	props map[string]Value
	keys  []string // insertion order, for deterministic for-in
	Proto *Object

	// Array backing store (Class == "Array").
	Elems []Value

	// Function payload: either Native or (Fn, Env).
	Native NativeFunc
	Fn     *FuncLit
	Env    *Env
	// Name is the function name for stack traces ("" = anonymous).
	Name string

	// Host hooks (may be nil).
	Host HostObject
}

// NewObject returns an empty plain object.
func NewObject() *Object {
	return &Object{Class: "Object"}
}

// NewArray returns an array object with the given elements.
func NewArray(elems ...Value) *Object {
	return &Object{Class: "Array", Elems: elems}
}

// NewNative wraps a Go function as a callable JS object.
func NewNative(name string, fn NativeFunc) *Object {
	return &Object{Class: "Function", Native: fn, Name: name}
}

// IsCallable reports whether the object can be invoked.
func (o *Object) IsCallable() bool { return o != nil && (o.Native != nil || o.Fn != nil) }

// IsArray reports whether the object is an array.
func (o *Object) IsArray() bool { return o != nil && o.Class == "Array" }

// GetOwn returns an own property (no proto chain, no host hook).
func (o *Object) GetOwn(name string) (Value, bool) {
	if o.props == nil {
		return Undefined, false
	}
	v, ok := o.props[name]
	return v, ok
}

// SetProp sets an own property, maintaining insertion order for for-in.
func (o *Object) SetProp(name string, v Value) {
	if o.props == nil {
		o.props = make(map[string]Value)
	}
	if _, exists := o.props[name]; !exists {
		o.keys = append(o.keys, name)
	}
	o.props[name] = v
}

// DeleteProp removes an own property.
func (o *Object) DeleteProp(name string) {
	if o.props == nil {
		return
	}
	if _, ok := o.props[name]; !ok {
		return
	}
	delete(o.props, name)
	for i, k := range o.keys {
		if k == name {
			o.keys = append(o.keys[:i], o.keys[i+1:]...)
			break
		}
	}
}

// OwnKeys returns the enumerable keys: array indices first for arrays,
// then named props in insertion order.
func (o *Object) OwnKeys() []string {
	var out []string
	if o.IsArray() {
		for i := range o.Elems {
			out = append(out, strconv.Itoa(i))
		}
	}
	out = append(out, o.keys...)
	return out
}

// Get reads a property: host hook, array magic, own props, proto chain.
func (o *Object) Get(name string) (Value, bool) {
	if o.Host != nil {
		if v, ok := o.Host.HostGet(name); ok {
			return v, true
		}
	}
	if o.IsArray() {
		if name == "length" {
			return Num(float64(len(o.Elems))), true
		}
		if idx, err := strconv.Atoi(name); err == nil && idx >= 0 {
			if idx < len(o.Elems) {
				return o.Elems[idx], true
			}
			return Undefined, true
		}
	}
	if v, ok := o.GetOwn(name); ok {
		return v, true
	}
	if o.Proto != nil {
		return o.Proto.Get(name)
	}
	return Undefined, false
}

// Set writes a property: host hook first, then array magic, then own.
func (o *Object) Set(name string, v Value) {
	if o.Host != nil && o.Host.HostSet(name, v) {
		return
	}
	if o.IsArray() {
		if name == "length" {
			n := int(v.ToNumber())
			if n < 0 {
				n = 0
			}
			for len(o.Elems) < n {
				o.Elems = append(o.Elems, Undefined)
			}
			o.Elems = o.Elems[:n]
			return
		}
		if idx, err := strconv.Atoi(name); err == nil && idx >= 0 {
			for len(o.Elems) <= idx {
				o.Elems = append(o.Elems, Undefined)
			}
			o.Elems[idx] = v
			return
		}
	}
	o.SetProp(name, v)
}

// Has reports whether the property exists anywhere (for the in operator).
func (o *Object) Has(name string) bool {
	if o.Host != nil {
		if _, ok := o.Host.HostGet(name); ok {
			return true
		}
	}
	if o.IsArray() {
		if name == "length" {
			return true
		}
		if idx, err := strconv.Atoi(name); err == nil && idx >= 0 && idx < len(o.Elems) {
			return true
		}
	}
	if _, ok := o.GetOwn(name); ok {
		return true
	}
	if o.Proto != nil {
		return o.Proto.Has(name)
	}
	return false
}

// toStringValue implements the default object→string conversion.
func (o *Object) toStringValue() string {
	if o == nil {
		return "null"
	}
	if o.IsArray() {
		parts := make([]string, len(o.Elems))
		for i, e := range o.Elems {
			if e.IsUndefined() || e.IsNull() {
				parts[i] = ""
			} else {
				parts[i] = e.ToString()
			}
		}
		return strings.Join(parts, ",")
	}
	if o.IsCallable() {
		name := o.Name
		if name == "" {
			name = "anonymous"
		}
		return "function " + name + "() { [native or user code] }"
	}
	return "[object " + o.Class + "]"
}

// Inspect renders an object for debugging: sorted keys, one level deep.
func (o *Object) Inspect() string {
	if o.IsArray() {
		return "[" + o.toStringValue() + "]"
	}
	keys := make([]string, 0, len(o.props))
	for k := range o.props {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString("{")
	for i, k := range keys {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(k + ": " + o.props[k].String())
	}
	b.WriteString("}")
	return b.String()
}
