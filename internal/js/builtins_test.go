package js

import (
	"math"
	"testing"
)

func TestParseIntEdgeCases(t *testing.T) {
	expectNum(t, `parseInt("  42  ")`, 42)
	expectNum(t, `parseInt("+7")`, 7)
	expectNum(t, `parseInt("08")`, 8) // no octal in our subset
	expectNum(t, `parseInt("z", 36)`, 35)
	expectNum(t, `parseInt("11", 2)`, 3)
	expectNum(t, `parseInt("0x10", 16)`, 16)
	expectBool(t, `isNaN(parseInt(""))`, true)
	expectBool(t, `isNaN(parseInt("-"))`, true)
	// Huge values fall back to float accumulation without error.
	v := run(t, `parseInt("99999999999999999999999999")`)
	if v.Kind() != KindNumber || v.NumVal() <= 0 {
		t.Fatalf("huge parseInt = %v", v)
	}
}

func TestParseFloatEdgeCases(t *testing.T) {
	expectNum(t, `parseFloat("3.5")`, 3.5)
	expectNum(t, `parseFloat("-2.5e1")`, -25)
	expectNum(t, `parseFloat("+.5")`, 0.5)
	expectNum(t, `parseFloat("1.2.3")`, 1.2)
	expectNum(t, `parseFloat("7up")`, 7)
	expectBool(t, `isNaN(parseFloat("up7"))`, true)
}

func TestMathEdgeCases(t *testing.T) {
	expectBool(t, `isNaN(Math.max(1, NaN))`, true)
	expectBool(t, `isNaN(Math.min(NaN, 2))`, true)
	expectBool(t, `Math.max() === -Infinity`, true)
	expectBool(t, `Math.min() === Infinity`, true)
	expectBool(t, `isNaN(Math.sqrt(-1))`, true)
	expectNum(t, `Math.abs(0)`, 0)
	expectNum(t, `Math.round(-2.5)`, -2)
	expectNum(t, `Math.floor(-0.5)`, -1)
	v := run(t, `Math.PI`)
	if v.NumVal() != math.Pi {
		t.Fatalf("Math.PI = %v", v)
	}
}

func TestStringConstructorAndConversions(t *testing.T) {
	expectStr(t, `String()`, "")
	expectStr(t, `String(null)`, "null")
	expectStr(t, `String([1,2])`, "1,2")
	expectNum(t, `Number()`, 0)
	expectBool(t, `isNaN(Number("x"))`, true)
	expectNum(t, `Number(true)`, 1)
	expectBool(t, `Boolean(0)`, false)
	expectBool(t, `Boolean("0")`, true) // non-empty string is truthy
	expectBool(t, `Boolean(undefined)`, false)
}

func TestEncodeDecodeURIComponent(t *testing.T) {
	expectStr(t, `decodeURIComponent(encodeURIComponent("a b/c&d=e"))`, "a b/c&d=e")
	// Malformed input throws a catchable error.
	expectStr(t, `var r = "no";
	try { decodeURIComponent("%zz"); } catch (e) { r = "caught"; }
	r`, "caught")
}

func TestErrorConstructor(t *testing.T) {
	expectStr(t, `new Error("boom").message`, "boom")
	expectStr(t, `new Error("x").name`, "Error")
	expectStr(t, `new TypeError("t").message`, "t")
	expectStr(t, `Error("no new needed").message`, "no new needed")
}

func TestStringMethodEdgeCases(t *testing.T) {
	expectStr(t, `"abc".charAt(99)`, "")
	expectStr(t, `"abc".charAt(-1)`, "")
	expectBool(t, `isNaN("abc".charCodeAt(99))`, true)
	expectNum(t, `"aXbXc".lastIndexOf("X")`, 3)
	expectNum(t, `"abc".lastIndexOf("z")`, -1)
	expectStr(t, `"hello".substring(2)`, "llo")
	expectStr(t, `"hello".substr(-3)`, "llo")
	expectStr(t, `"hello".substr(2, 99)`, "llo")
	expectStr(t, `"hello".substr(0, -1)`, "")
	expectStr(t, `"hello".slice(1, -1)`, "ell")
	expectStr(t, `"hello".slice(4, 1)`, "")
	expectNum(t, `"".split(",").length`, 1)
	expectStr(t, `"abc".toString()`, "abc")
	expectStr(t, `(42).toString()`, "42")
	// String method on a number via coercion (this is ToString'd).
	expectStr(t, `"x".concat(1, null)`, "x1null")
}

func TestObjectToStringForms(t *testing.T) {
	expectStr(t, `({}).toString()`, "[object Object]")
	expectStr(t, `[1,2].toString()`, "1,2")
	expectStr(t, `[null, undefined, 3].toString()`, ",,3")
	v := run(t, `(function named() {}).toString()`)
	if v.Kind() != KindString || v.StrVal() == "" {
		t.Fatalf("function toString = %v", v)
	}
}

func TestForInOverArrayAndString(t *testing.T) {
	expectStr(t, `var s = ""; for (var i in "ab") s += i; s`, "01")
	expectStr(t, `var o = {x: 1}; var out = "";
	for (var k in o) { delete o.x; out += k; } out`, "x")
	// for-in over non-object is a no-op.
	expectNum(t, `var n = 0; for (var k in null) n++; for (var k2 in 5) n++; n`, 0)
}

func TestDeleteSemantics(t *testing.T) {
	expectBool(t, `var o = {a: 1}; delete o.a`, true)
	expectBool(t, `delete someUnboundName`, false)
	expectBool(t, `var a = [1,2,3]; delete a[1]; a.hasOwnProperty(1)`, true) // array elems are storage, not props
	expectBool(t, `delete null`, false)
}

func TestInstanceofAndInErrors(t *testing.T) {
	it := New()
	if _, err := it.Run(`1 instanceof 2`); err == nil {
		t.Fatalf("instanceof non-function should error")
	}
	if _, err := it.Run(`"k" in 5`); err == nil {
		t.Fatalf("in on non-object should error")
	}
	expectBool(t, `"length" in [1]`, true)
	expectBool(t, `"0" in [9]`, true)
	expectBool(t, `"1" in [9]`, false)
}

func TestSeqAndVoidInStatements(t *testing.T) {
	expectNum(t, `var x = (1, 2); x`, 2)
	expectNum(t, `for (var i = 0, j = 10; i < j; i++, j--) {} i`, 5)
}

func TestPrototypeInheritanceChain(t *testing.T) {
	expectNum(t, `
	function Base() {}
	Base.prototype.get = function() { return 10; };
	function Derived() {}
	Derived.prototype = new Base();
	var d = new Derived();
	d.get()`, 10)
	expectBool(t, `
	function Base() {}
	function Derived() {}
	Derived.prototype = new Base();
	new Derived() instanceof Base`, true)
}

func TestArgumentsIsolation(t *testing.T) {
	// Each call gets its own arguments object.
	expectNum(t, `
	function f(x) {
		if (x > 0) { return f(x - 1) + arguments.length; }
		return 0;
	}
	f(3)`, 3)
}

func TestGlobalThisWritethrough(t *testing.T) {
	it := New()
	v, err := it.Run(`var g = 5; g`)
	if err != nil || v.NumVal() != 5 {
		t.Fatalf("global define: %v %v", v, err)
	}
	// Interp-level access.
	if got, ok := it.LookupGlobal("g"); !ok || got.NumVal() != 5 {
		t.Fatalf("LookupGlobal = %v %v", got, ok)
	}
	it.DefineGlobal("injected", Str("hi"))
	v, err = it.Run(`injected + "!"`)
	if err != nil || v.StrVal() != "hi!" {
		t.Fatalf("injected global: %v %v", v, err)
	}
}

func TestObjectInspect(t *testing.T) {
	o := NewObject()
	o.SetProp("b", Num(2))
	o.SetProp("a", Str("x"))
	if got := o.Inspect(); got != `{a: "x", b: 2}` {
		t.Fatalf("Inspect = %q", got)
	}
	arr := NewArray(Num(1), Num(2))
	if got := arr.Inspect(); got != "[1,2]" {
		t.Fatalf("array Inspect = %q", got)
	}
}

func TestValueStringer(t *testing.T) {
	if Str("x").String() != `"x"` {
		t.Fatalf("string Value stringer")
	}
	if Num(3).String() != "3" || Bool(true).String() != "true" {
		t.Fatalf("primitive stringers")
	}
	if Undefined.String() != "undefined" || Null().String() != "null" {
		t.Fatalf("nil-ish stringers")
	}
}

func TestCompileFunctionThisBinding(t *testing.T) {
	it := New()
	fn, err := it.CompileFunction("handler", `result = this.tag;`)
	if err != nil {
		t.Fatal(err)
	}
	o := NewObject()
	o.SetProp("tag", Str("elem"))
	if _, err := it.Call(fn, ObjVal(o), nil); err != nil {
		t.Fatal(err)
	}
	v, _ := it.LookupGlobal("result")
	if v.StrVal() != "elem" {
		t.Fatalf("this binding in compiled handler: %v", v)
	}
	// Syntax errors surface at compile time.
	if _, err := it.CompileFunction("bad", "if ("); err == nil {
		t.Fatalf("CompileFunction should reject bad source")
	}
}

func TestSwitchOnStrings(t *testing.T) {
	expectStr(t, `
	function route(e) {
		switch (e) {
		case "onclick": return "click";
		case "onmouseover": return "hover";
		default: return "other";
		}
	}
	route("onclick") + "/" + route("onmouseover") + "/" + route("onload")`,
		"click/hover/other")
}

func TestWhileWithComplexConditions(t *testing.T) {
	expectNum(t, `
	var i = 0, found = -1;
	var xs = [4, 8, 15, 16, 23, 42];
	while (i < xs.length && found < 0) {
		if (xs[i] % 2 == 1) { found = i; }
		i++;
	}
	found`, 2)
}
