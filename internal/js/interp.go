package js

import (
	"fmt"
	"math"
	"strconv"
)

// Env is a lexical environment (function-level scope, as in ES3).
type Env struct {
	vars   map[string]Value
	parent *Env
}

// NewEnv returns a new environment with the given parent.
func NewEnv(parent *Env) *Env {
	return &Env{vars: make(map[string]Value), parent: parent}
}

// Lookup finds name in this or an enclosing environment.
func (e *Env) Lookup(name string) (Value, bool) {
	for env := e; env != nil; env = env.parent {
		if v, ok := env.vars[name]; ok {
			return v, true
		}
	}
	return Undefined, false
}

// Assign sets an existing binding, walking outward. It reports whether a
// binding was found.
func (e *Env) Assign(name string, v Value) bool {
	for env := e; env != nil; env = env.parent {
		if _, ok := env.vars[name]; ok {
			env.vars[name] = v
			return true
		}
	}
	return false
}

// Define creates (or overwrites) a binding in this environment.
func (e *Env) Define(name string, v Value) { e.vars[name] = v }

// Frame describes one live function activation. It is what the hot-node
// detector inspects: the function name and the actual argument values —
// the thesis's StackInfo.getHotnodeInfo() reads exactly these.
type Frame struct {
	FuncName string
	Args     []Value
	Line     int // call-site line
	// Native marks frames of Go-implemented functions (host methods,
	// builtins). Hot-node detection looks for the topmost non-native
	// frame — the user function whose call opened the XMLHttpRequest.
	Native bool
}

// Key renders the frame as "name(arg1,arg2,...)" — the canonical form
// used as hot-node cache key (§4.4.1).
func (f *Frame) Key() string {
	s := f.FuncName + "("
	for i, a := range f.Args {
		if i > 0 {
			s += ","
		}
		s += a.ToString()
	}
	return s + ")"
}

// Debugger observes function entries and exits, mirroring Rhino's
// Debugger/DebugFrame interfaces that the thesis builds hot-node
// detection on (§4.4.2).
type Debugger interface {
	OnEnter(it *Interp, f *Frame)
	OnExit(it *Interp, f *Frame, result Value, err error)
}

// Thrown wraps a JavaScript value raised by `throw`.
type Thrown struct{ Value Value }

func (t *Thrown) Error() string { return "js: uncaught " + t.Value.ToString() }

// RuntimeError is an interpreter-detected error (TypeError-ish).
type RuntimeError struct {
	Msg  string
	Line int
}

func (e *RuntimeError) Error() string {
	return fmt.Sprintf("js: runtime error at line %d: %s", e.Line, e.Msg)
}

// ErrBudget is returned when the step budget is exhausted — the hard
// limit the thesis applies against infinite loops (§3.2).
var ErrBudget = fmt.Errorf("js: execution step budget exhausted")

// Interrupted wraps the cause delivered by an Interrupt hook (typically
// a context error). Like ErrBudget it is not catchable by try/catch, so
// hostile scripts cannot swallow a cancellation.
type Interrupted struct{ Cause error }

func (e *Interrupted) Error() string { return "js: interrupted: " + e.Cause.Error() }

// Unwrap exposes the cause so errors.Is(err, context.Canceled) works.
func (e *Interrupted) Unwrap() error { return e.Cause }

// control-flow signals (internal sentinel errors).
type breakSignal struct{ label string }
type continueSignal struct{ label string }
type returnSignal struct{ v Value }

func (breakSignal) Error() string    { return "break outside loop" }
func (continueSignal) Error() string { return "continue outside loop" }
func (returnSignal) Error() string   { return "return outside function" }

// Interp executes parsed programs. An Interp is not safe for concurrent
// use; the crawler creates one per page.
type Interp struct {
	Global     *Env
	GlobalThis Value
	Debugger   Debugger

	// MaxSteps bounds the number of AST evaluations per Run/Call to
	// defend against infinite loops. Zero means the default.
	MaxSteps int
	steps    int

	// Interrupt, when set, is polled every interruptCheckMask+1 steps.
	// A non-nil return preempts execution with an *Interrupted error
	// that try/catch cannot swallow — this is how a context cancel
	// reaches into a running (possibly hostile) script. The crawler
	// sets it to ctx.Err before each handler dispatch.
	Interrupt func() error

	// MaxDepth bounds recursion. Zero means the default.
	MaxDepth int
	stack    []*Frame
	// pendingLabel is set by a labeled statement and consumed by the
	// loop statement it wraps, so the loop can recognize labeled
	// break/continue that target it.
	pendingLabel string

	rngState uint64 // deterministic Math.random
}

const (
	defaultMaxSteps = 10_000_000
	defaultMaxDepth = 250
	// interruptCheckMask throttles Interrupt polling to every 256 steps
	// so the hot interpreter loop stays cheap.
	interruptCheckMask = 0xFF
)

// New returns an interpreter with the standard builtins installed.
func New() *Interp {
	it := &Interp{Global: NewEnv(nil), rngState: 0x9E3779B97F4A7C15}
	globalObj := NewObject()
	it.GlobalThis = ObjVal(globalObj)
	installBuiltins(it)
	return it
}

// DefineGlobal binds a global variable.
func (it *Interp) DefineGlobal(name string, v Value) { it.Global.Define(name, v) }

// LookupGlobal reads a global variable.
func (it *Interp) LookupGlobal(name string) (Value, bool) { return it.Global.Lookup(name) }

// CallStack returns the live frames, innermost last. The returned slice
// must not be mutated.
func (it *Interp) CallStack() []*Frame { return it.stack }

// TopUserFrame returns the innermost non-native frame, or nil when no
// user function is executing. This is what StackInfo.getHotnodeInfo()
// reads in the thesis implementation (§4.4.1).
func (it *Interp) TopUserFrame() *Frame {
	for i := len(it.stack) - 1; i >= 0; i-- {
		if !it.stack[i].Native {
			return it.stack[i]
		}
	}
	return nil
}

// ResetBudget clears the step counter (called per event dispatch so each
// handler invocation gets a fresh budget).
func (it *Interp) ResetBudget() { it.steps = 0 }

// Steps returns the AST evaluations consumed since the last ResetBudget
// — the per-dispatch interpreter cost the telemetry layer exports.
func (it *Interp) Steps() int { return it.steps }

func (it *Interp) step(line int) error {
	it.steps++
	max := it.MaxSteps
	if max == 0 {
		max = defaultMaxSteps
	}
	if it.steps > max {
		return ErrBudget
	}
	if it.Interrupt != nil && it.steps&interruptCheckMask == 0 {
		if err := it.Interrupt(); err != nil {
			return &Interrupted{Cause: err}
		}
	}
	return nil
}

// Run parses and executes src in the global scope.
func (it *Interp) Run(src string) (Value, error) {
	prog, err := Parse(src)
	if err != nil {
		return Undefined, err
	}
	return it.RunProgram(prog)
}

// RunProgram executes a parsed program in the global scope.
func (it *Interp) RunProgram(prog *Program) (Value, error) {
	it.hoist(it.Global, prog.VarNames, prog.FuncDecls)
	var last Value
	for _, s := range prog.Stmts {
		v, err := it.execStmt(it.Global, s)
		if err != nil {
			switch err.(type) {
			case breakSignal, continueSignal, returnSignal:
				return Undefined, &RuntimeError{Msg: err.Error(), Line: s.Pos()}
			}
			return Undefined, err
		}
		last = v
	}
	return last, nil
}

// hoist declares vars (as undefined, unless already bound) and function
// declarations in env.
func (it *Interp) hoist(env *Env, vars []string, funcs []*FuncLit) {
	for _, name := range vars {
		if _, ok := env.vars[name]; !ok {
			env.Define(name, Undefined)
		}
	}
	for _, fn := range funcs {
		env.Define(fn.Name, ObjVal(it.makeFunction(fn, env)))
	}
}

func (it *Interp) makeFunction(fn *FuncLit, env *Env) *Object {
	return &Object{Class: "Function", Fn: fn, Env: env, Name: fn.Name}
}

// Call invokes a callable value with the given this and arguments.
func (it *Interp) Call(fn Value, this Value, args []Value) (Value, error) {
	obj := fn.Object()
	if !obj.IsCallable() {
		return Undefined, &RuntimeError{Msg: fn.ToString() + " is not a function"}
	}
	return it.callFunction(obj, this, args, 0)
}

func (it *Interp) callFunction(fnObj *Object, this Value, args []Value, line int) (Value, error) {
	maxDepth := it.MaxDepth
	if maxDepth == 0 {
		maxDepth = defaultMaxDepth
	}
	if len(it.stack) >= maxDepth {
		return Undefined, &RuntimeError{Msg: "maximum call depth exceeded", Line: line}
	}
	name := fnObj.Name
	if name == "" {
		name = "<anonymous>"
	}
	frame := &Frame{FuncName: name, Args: args, Line: line, Native: fnObj.Native != nil}
	it.stack = append(it.stack, frame)
	if it.Debugger != nil {
		it.Debugger.OnEnter(it, frame)
	}
	var result Value
	var err error
	if fnObj.Native != nil {
		result, err = fnObj.Native(it, this, args)
	} else {
		result, err = it.callUser(fnObj, this, args)
	}
	if it.Debugger != nil {
		it.Debugger.OnExit(it, frame, result, err)
	}
	it.stack = it.stack[:len(it.stack)-1]
	return result, err
}

func (it *Interp) callUser(fnObj *Object, this Value, args []Value) (Value, error) {
	fn := fnObj.Fn
	env := NewEnv(fnObj.Env)
	for i, p := range fn.Params {
		if i < len(args) {
			env.Define(p, args[i])
		} else {
			env.Define(p, Undefined)
		}
	}
	env.Define("arguments", ObjVal(NewArray(args...)))
	env.Define("this", this)
	// Named function expressions can refer to themselves.
	if fn.Name != "" {
		if _, ok := env.vars[fn.Name]; !ok {
			env.Define(fn.Name, ObjVal(fnObj))
		}
	}
	it.hoist(env, fn.VarNames, fn.FuncDecls)
	for _, s := range fn.Body {
		if _, err := it.execStmt(env, s); err != nil {
			if r, ok := err.(returnSignal); ok {
				return r.v, nil
			}
			return Undefined, err
		}
	}
	return Undefined, nil
}

// ---- statement execution ----

func (it *Interp) execStmt(env *Env, n Node) (Value, error) {
	if err := it.step(n.Pos()); err != nil {
		return Undefined, err
	}
	switch s := n.(type) {
	case *Empty, *FuncDecl:
		// Function declarations were hoisted.
		return Undefined, nil
	case *VarDecl:
		for i, name := range s.Names {
			if s.Inits[i] == nil {
				continue
			}
			v, err := it.evalExpr(env, s.Inits[i])
			if err != nil {
				return Undefined, err
			}
			if !env.Assign(name, v) {
				env.Define(name, v)
			}
		}
		return Undefined, nil
	case *ExprStmt:
		return it.evalExpr(env, s.X)
	case *Block:
		var last Value
		for _, st := range s.Stmts {
			v, err := it.execStmt(env, st)
			if err != nil {
				return Undefined, err
			}
			last = v
		}
		return last, nil
	case *If:
		test, err := it.evalExpr(env, s.Test)
		if err != nil {
			return Undefined, err
		}
		if test.ToBool() {
			return it.execStmt(env, s.Then)
		}
		if s.Else != nil {
			return it.execStmt(env, s.Else)
		}
		return Undefined, nil
	case *While:
		label := it.takeLabel()
		for {
			test, err := it.evalExpr(env, s.Test)
			if err != nil {
				return Undefined, err
			}
			if !test.ToBool() {
				return Undefined, nil
			}
			if err := it.execLoopBody(env, s.Body, label); err != nil {
				if loopBreaks(err, label) {
					return Undefined, nil
				}
				return Undefined, err
			}
		}
	case *DoWhile:
		label := it.takeLabel()
		for {
			if err := it.execLoopBody(env, s.Body, label); err != nil {
				if loopBreaks(err, label) {
					return Undefined, nil
				}
				return Undefined, err
			}
			test, err := it.evalExpr(env, s.Test)
			if err != nil {
				return Undefined, err
			}
			if !test.ToBool() {
				return Undefined, nil
			}
		}
	case *For:
		label := it.takeLabel()
		if s.Init != nil {
			if _, err := it.execInitOrExpr(env, s.Init); err != nil {
				return Undefined, err
			}
		}
		for {
			if s.Test != nil {
				test, err := it.evalExpr(env, s.Test)
				if err != nil {
					return Undefined, err
				}
				if !test.ToBool() {
					return Undefined, nil
				}
			}
			if err := it.execLoopBody(env, s.Body, label); err != nil {
				if loopBreaks(err, label) {
					return Undefined, nil
				}
				return Undefined, err
			}
			if s.Post != nil {
				if _, err := it.evalExpr(env, s.Post); err != nil {
					return Undefined, err
				}
			}
		}
	case *ForIn:
		label := it.takeLabel()
		obj, err := it.evalExpr(env, s.Obj)
		if err != nil {
			return Undefined, err
		}
		var keys []string
		switch obj.Kind() {
		case KindObject:
			keys = obj.Object().OwnKeys()
		case KindString:
			for i := range []byte(obj.StrVal()) {
				keys = append(keys, strconv.Itoa(i))
			}
		default:
			return Undefined, nil
		}
		assign := func(k string) {
			if !env.Assign(s.Name, Str(k)) {
				env.Define(s.Name, Str(k))
			}
		}
		for _, k := range keys {
			assign(k)
			if err := it.execLoopBody(env, s.Body, label); err != nil {
				if loopBreaks(err, label) {
					return Undefined, nil
				}
				return Undefined, err
			}
		}
		return Undefined, nil
	case *Return:
		var v Value
		if s.Value != nil {
			var err error
			v, err = it.evalExpr(env, s.Value)
			if err != nil {
				return Undefined, err
			}
		}
		return Undefined, returnSignal{v}
	case *Break:
		return Undefined, breakSignal{label: s.Label}
	case *Continue:
		return Undefined, continueSignal{label: s.Label}
	case *Labeled:
		return it.execLabeled(env, s)
	case *Throw:
		v, err := it.evalExpr(env, s.Value)
		if err != nil {
			return Undefined, err
		}
		return Undefined, &Thrown{Value: v}
	case *Try:
		return it.execTry(env, s)
	case *Switch:
		return it.execSwitch(env, s)
	}
	return Undefined, &RuntimeError{Msg: fmt.Sprintf("unknown statement %T", n), Line: n.Pos()}
}

func (it *Interp) execInitOrExpr(env *Env, n Node) (Value, error) {
	if vd, ok := n.(*VarDecl); ok {
		return it.execStmt(env, vd)
	}
	return it.evalExpr(env, n)
}

// takeLabel consumes the pending label set by an enclosing Labeled
// statement; loop statements call it on entry.
func (it *Interp) takeLabel() string {
	l := it.pendingLabel
	it.pendingLabel = ""
	return l
}

// execLoopBody runs a loop body, swallowing continues that target this
// loop (unlabeled, or labeled with the loop's own label).
func (it *Interp) execLoopBody(env *Env, body Node, label string) error {
	_, err := it.execStmt(env, body)
	if err != nil {
		if c, ok := err.(continueSignal); ok && (c.label == "" || c.label == label) {
			return nil
		}
		return err
	}
	return nil
}

// loopBreaks reports whether err is a break targeting this loop.
func loopBreaks(err error, label string) bool {
	b, ok := err.(breakSignal)
	return ok && (b.label == "" || (label != "" && b.label == label))
}

// execLabeled runs `name: stmt`. For loops, the label is handed to the
// loop statement (via pendingLabel) so labeled continue works; for other
// statements, a matching labeled break simply exits the statement.
func (it *Interp) execLabeled(env *Env, s *Labeled) (Value, error) {
	switch s.Stmt.(type) {
	case *While, *DoWhile, *For, *ForIn:
		it.pendingLabel = s.Name
	}
	v, err := it.execStmt(env, s.Stmt)
	if b, ok := err.(breakSignal); ok && b.label == s.Name {
		return Undefined, nil
	}
	return v, err
}

func (it *Interp) execTry(env *Env, s *Try) (Value, error) {
	_, bodyErr := it.execStmt(env, s.Body)
	// Catch handles thrown JS values and runtime errors; control-flow
	// signals and budget exhaustion pass through.
	if bodyErr != nil && s.Catch != nil && isCatchable(bodyErr) {
		catchEnv := NewEnv(env)
		catchEnv.Define(s.CatchName, errToValue(bodyErr))
		_, bodyErr = it.execStmt(catchEnv, s.Catch)
	}
	if s.Finally != nil {
		if _, finErr := it.execStmt(env, s.Finally); finErr != nil {
			return Undefined, finErr // finally overrides
		}
	}
	if bodyErr != nil {
		return Undefined, bodyErr
	}
	return Undefined, nil
}

func isCatchable(err error) bool {
	switch err.(type) {
	case *Thrown, *RuntimeError:
		return true
	}
	return false
}

// errToValue converts a caught error into the JS value seen by catch.
func errToValue(err error) Value {
	if t, ok := err.(*Thrown); ok {
		return t.Value
	}
	o := NewObject()
	o.Class = "Error"
	o.SetProp("message", Str(err.Error()))
	o.SetProp("name", Str("Error"))
	return ObjVal(o)
}

func (it *Interp) execSwitch(env *Env, s *Switch) (Value, error) {
	disc, err := it.evalExpr(env, s.Disc)
	if err != nil {
		return Undefined, err
	}
	start := -1
	for i, c := range s.Cases {
		if c.Test == nil {
			continue
		}
		tv, err := it.evalExpr(env, c.Test)
		if err != nil {
			return Undefined, err
		}
		if StrictEquals(disc, tv) {
			start = i
			break
		}
	}
	if start < 0 {
		start = s.DefaultIdx
	}
	if start < 0 {
		return Undefined, nil
	}
	for i := start; i < len(s.Cases); i++ {
		for _, st := range s.Cases[i].Stmts {
			if _, err := it.execStmt(env, st); err != nil {
				if b, ok := err.(breakSignal); ok && b.label == "" {
					return Undefined, nil
				}
				return Undefined, err
			}
		}
	}
	return Undefined, nil
}

// ---- expression evaluation ----

func (it *Interp) evalExpr(env *Env, n Node) (Value, error) {
	if err := it.step(n.Pos()); err != nil {
		return Undefined, err
	}
	switch e := n.(type) {
	case *NumberLit:
		return Num(e.Value), nil
	case *StringLit:
		return Str(e.Value), nil
	case *BoolLit:
		return Bool(e.Value), nil
	case *NullLit:
		return Null(), nil
	case *ThisLit:
		if v, ok := env.Lookup("this"); ok {
			return v, nil
		}
		return it.GlobalThis, nil
	case *Ident:
		if v, ok := env.Lookup(e.Name); ok {
			return v, nil
		}
		return Undefined, &RuntimeError{Msg: e.Name + " is not defined", Line: e.Line}
	case *ArrayLit:
		arr := make([]Value, len(e.Elems))
		for i, el := range e.Elems {
			v, err := it.evalExpr(env, el)
			if err != nil {
				return Undefined, err
			}
			arr[i] = v
		}
		return ObjVal(NewArray(arr...)), nil
	case *ObjectLit:
		o := NewObject()
		for i, k := range e.Keys {
			v, err := it.evalExpr(env, e.Values[i])
			if err != nil {
				return Undefined, err
			}
			o.SetProp(k, v)
		}
		return ObjVal(o), nil
	case *FuncLit:
		return ObjVal(it.makeFunction(e, env)), nil
	case *Seq:
		var last Value
		for _, x := range e.Exprs {
			v, err := it.evalExpr(env, x)
			if err != nil {
				return Undefined, err
			}
			last = v
		}
		return last, nil
	case *Cond:
		test, err := it.evalExpr(env, e.Test)
		if err != nil {
			return Undefined, err
		}
		if test.ToBool() {
			return it.evalExpr(env, e.Then)
		}
		return it.evalExpr(env, e.Else)
	case *Logical:
		l, err := it.evalExpr(env, e.L)
		if err != nil {
			return Undefined, err
		}
		if e.Op == AND {
			if !l.ToBool() {
				return l, nil
			}
			return it.evalExpr(env, e.R)
		}
		if l.ToBool() {
			return l, nil
		}
		return it.evalExpr(env, e.R)
	case *Binary:
		return it.evalBinary(env, e)
	case *Unary:
		return it.evalUnary(env, e)
	case *Postfix:
		old, err := it.evalExpr(env, e.X)
		if err != nil {
			return Undefined, err
		}
		n := old.ToNumber()
		delta := 1.0
		if e.Op == DEC {
			delta = -1
		}
		if err := it.assignTo(env, e.X, Num(n+delta), e.Line); err != nil {
			return Undefined, err
		}
		return Num(n), nil
	case *Assign:
		return it.evalAssign(env, e)
	case *Member:
		obj, err := it.evalExpr(env, e.X)
		if err != nil {
			return Undefined, err
		}
		name, err := it.memberName(env, e)
		if err != nil {
			return Undefined, err
		}
		return it.getMember(obj, name, e.Line)
	case *Call:
		return it.evalCall(env, e)
	case *NewExpr:
		return it.evalNew(env, e)
	}
	return Undefined, &RuntimeError{Msg: fmt.Sprintf("unknown expression %T", n), Line: n.Pos()}
}

func (it *Interp) memberName(env *Env, m *Member) (string, error) {
	if m.Index == nil {
		return m.Name, nil
	}
	idx, err := it.evalExpr(env, m.Index)
	if err != nil {
		return "", err
	}
	return idx.ToString(), nil
}

// getMember reads obj.name, dispatching to host objects, prototype
// methods for strings/arrays/objects, and plain properties.
func (it *Interp) getMember(obj Value, name string, line int) (Value, error) {
	switch obj.Kind() {
	case KindString:
		s := obj.StrVal()
		if name == "length" {
			return Num(float64(len(s))), nil
		}
		if idx, err := strconv.Atoi(name); err == nil && idx >= 0 && idx < len(s) {
			return Str(string(s[idx])), nil
		}
		if m, ok := stringMethods[name]; ok {
			return ObjVal(NewNative(name, m)), nil
		}
		return Undefined, nil
	case KindNumber:
		if m, ok := numberMethods[name]; ok {
			return ObjVal(NewNative(name, m)), nil
		}
		return Undefined, nil
	case KindBool:
		return Undefined, nil
	case KindObject:
		o := obj.Object()
		if v, ok := o.Get(name); ok {
			return v, nil
		}
		// Every user function exposes a .prototype object, created on
		// first access (new() relies on it for the proto chain).
		if name == "prototype" && o.Fn != nil {
			proto := NewObject()
			o.SetProp("prototype", ObjVal(proto))
			return ObjVal(proto), nil
		}
		if o.IsArray() {
			if m, ok := arrayMethods[name]; ok {
				return ObjVal(NewNative(name, m)), nil
			}
		}
		if o.IsCallable() {
			if m, ok := functionMethods[name]; ok {
				return ObjVal(NewNative(name, m)), nil
			}
		}
		if m, ok := objectMethods[name]; ok {
			return ObjVal(NewNative(name, m)), nil
		}
		return Undefined, nil
	}
	return Undefined, &RuntimeError{
		Msg:  fmt.Sprintf("cannot read property %q of %s", name, obj.ToString()),
		Line: line,
	}
}

func (it *Interp) evalAssign(env *Env, e *Assign) (Value, error) {
	var v Value
	var err error
	if e.Op == ASSIGN {
		v, err = it.evalExpr(env, e.Value)
		if err != nil {
			return Undefined, err
		}
	} else {
		old, err := it.evalExpr(env, e.Target)
		if err != nil {
			return Undefined, err
		}
		rhs, err := it.evalExpr(env, e.Value)
		if err != nil {
			return Undefined, err
		}
		switch e.Op {
		case PLUSASSIGN:
			v = addValues(old, rhs)
		case MINUSASSIGN:
			v = Num(old.ToNumber() - rhs.ToNumber())
		case STARASSIGN:
			v = Num(old.ToNumber() * rhs.ToNumber())
		case SLASHASSIGN:
			v = Num(old.ToNumber() / rhs.ToNumber())
		case PERCENTASSIGN:
			v = Num(math.Mod(old.ToNumber(), rhs.ToNumber()))
		}
	}
	if err := it.assignTo(env, e.Target, v, e.Line); err != nil {
		return Undefined, err
	}
	return v, nil
}

func (it *Interp) assignTo(env *Env, target Node, v Value, line int) error {
	switch t := target.(type) {
	case *Ident:
		if !env.Assign(t.Name, v) {
			// Implicit global, as sloppy-mode JS does.
			it.Global.Define(t.Name, v)
		}
		return nil
	case *Member:
		objV, err := it.evalExpr(env, t.X)
		if err != nil {
			return err
		}
		name, err := it.memberName(env, t)
		if err != nil {
			return err
		}
		o := objV.Object()
		if o == nil {
			return &RuntimeError{
				Msg:  fmt.Sprintf("cannot set property %q of %s", name, objV.ToString()),
				Line: line,
			}
		}
		o.Set(name, v)
		return nil
	}
	return &RuntimeError{Msg: "invalid assignment target", Line: line}
}

func (it *Interp) evalUnary(env *Env, e *Unary) (Value, error) {
	if e.Op == KEYWORD {
		switch e.KwOp {
		case "typeof":
			// typeof of an undefined variable must not throw.
			if id, ok := e.X.(*Ident); ok {
				if v, found := env.Lookup(id.Name); found {
					return Str(v.TypeOf()), nil
				}
				return Str("undefined"), nil
			}
			v, err := it.evalExpr(env, e.X)
			if err != nil {
				return Undefined, err
			}
			return Str(v.TypeOf()), nil
		case "void":
			if _, err := it.evalExpr(env, e.X); err != nil {
				return Undefined, err
			}
			return Undefined, nil
		case "delete":
			m, ok := e.X.(*Member)
			if !ok {
				return Bool(false), nil
			}
			objV, err := it.evalExpr(env, m.X)
			if err != nil {
				return Undefined, err
			}
			name, err := it.memberName(env, m)
			if err != nil {
				return Undefined, err
			}
			if o := objV.Object(); o != nil {
				o.DeleteProp(name)
				return Bool(true), nil
			}
			return Bool(false), nil
		}
	}
	switch e.Op {
	case INC, DEC:
		old, err := it.evalExpr(env, e.X)
		if err != nil {
			return Undefined, err
		}
		delta := 1.0
		if e.Op == DEC {
			delta = -1
		}
		nv := Num(old.ToNumber() + delta)
		if err := it.assignTo(env, e.X, nv, e.Line); err != nil {
			return Undefined, err
		}
		return nv, nil
	}
	v, err := it.evalExpr(env, e.X)
	if err != nil {
		return Undefined, err
	}
	switch e.Op {
	case NOT:
		return Bool(!v.ToBool()), nil
	case MINUS:
		return Num(-v.ToNumber()), nil
	case PLUS:
		return Num(v.ToNumber()), nil
	case BITNOT:
		return Num(float64(^v.ToInt32())), nil
	}
	return Undefined, &RuntimeError{Msg: "unknown unary operator", Line: e.Line}
}

// addValues implements the + operator.
func addValues(a, b Value) Value {
	ap, bp := a.toPrimitive(), b.toPrimitive()
	if ap.Kind() == KindString || bp.Kind() == KindString {
		return Str(ap.ToString() + bp.ToString())
	}
	return Num(ap.ToNumber() + bp.ToNumber())
}

func (it *Interp) evalBinary(env *Env, e *Binary) (Value, error) {
	l, err := it.evalExpr(env, e.L)
	if err != nil {
		return Undefined, err
	}
	r, err := it.evalExpr(env, e.R)
	if err != nil {
		return Undefined, err
	}
	if e.Op == KEYWORD {
		switch e.KwOp {
		case "in":
			o := r.Object()
			if o == nil {
				return Undefined, &RuntimeError{Msg: "'in' requires an object", Line: e.Line}
			}
			return Bool(o.Has(l.ToString())), nil
		case "instanceof":
			fn := r.Object()
			if !fn.IsCallable() {
				return Undefined, &RuntimeError{Msg: "instanceof requires a function", Line: e.Line}
			}
			protoV, _ := fn.Get("prototype")
			proto := protoV.Object()
			o := l.Object()
			for o != nil {
				if o.Proto == proto && proto != nil {
					return Bool(true), nil
				}
				o = o.Proto
			}
			return Bool(false), nil
		}
	}
	switch e.Op {
	case PLUS:
		return addValues(l, r), nil
	case MINUS:
		return Num(l.ToNumber() - r.ToNumber()), nil
	case STAR:
		return Num(l.ToNumber() * r.ToNumber()), nil
	case SLASH:
		return Num(l.ToNumber() / r.ToNumber()), nil
	case PERCENT:
		return Num(math.Mod(l.ToNumber(), r.ToNumber())), nil
	case EQ:
		return Bool(LooseEquals(l, r)), nil
	case NEQ:
		return Bool(!LooseEquals(l, r)), nil
	case SEQ:
		return Bool(StrictEquals(l, r)), nil
	case SNEQ:
		return Bool(!StrictEquals(l, r)), nil
	case LT, GT, LE, GE:
		return compareValues(e.Op, l, r), nil
	case BITAND:
		return Num(float64(l.ToInt32() & r.ToInt32())), nil
	case BITOR:
		return Num(float64(l.ToInt32() | r.ToInt32())), nil
	case BITXOR:
		return Num(float64(l.ToInt32() ^ r.ToInt32())), nil
	case SHL:
		return Num(float64(l.ToInt32() << (uint32(r.ToUint32()) & 31))), nil
	case SHR:
		return Num(float64(l.ToInt32() >> (uint32(r.ToUint32()) & 31))), nil
	case USHR:
		return Num(float64(l.ToUint32() >> (uint32(r.ToUint32()) & 31))), nil
	}
	return Undefined, &RuntimeError{Msg: "unknown binary operator", Line: e.Line}
}

func compareValues(op TokenType, l, r Value) Value {
	lp, rp := l.toPrimitive(), r.toPrimitive()
	if lp.Kind() == KindString && rp.Kind() == KindString {
		ls, rs := lp.StrVal(), rp.StrVal()
		switch op {
		case LT:
			return Bool(ls < rs)
		case GT:
			return Bool(ls > rs)
		case LE:
			return Bool(ls <= rs)
		case GE:
			return Bool(ls >= rs)
		}
	}
	ln, rn := lp.ToNumber(), rp.ToNumber()
	if math.IsNaN(ln) || math.IsNaN(rn) {
		return Bool(false)
	}
	switch op {
	case LT:
		return Bool(ln < rn)
	case GT:
		return Bool(ln > rn)
	case LE:
		return Bool(ln <= rn)
	case GE:
		return Bool(ln >= rn)
	}
	return Bool(false)
}

func (it *Interp) evalCall(env *Env, e *Call) (Value, error) {
	var this Value = it.GlobalThis
	var fnVal Value
	var err error
	if m, ok := e.Fn.(*Member); ok {
		this, err = it.evalExpr(env, m.X)
		if err != nil {
			return Undefined, err
		}
		name, err := it.memberName(env, m)
		if err != nil {
			return Undefined, err
		}
		fnVal, err = it.getMember(this, name, e.Line)
		if err != nil {
			return Undefined, err
		}
		if !fnVal.Object().IsCallable() {
			return Undefined, &RuntimeError{
				Msg:  fmt.Sprintf("%s.%s is not a function", this.TypeOf(), name),
				Line: e.Line,
			}
		}
	} else {
		fnVal, err = it.evalExpr(env, e.Fn)
		if err != nil {
			return Undefined, err
		}
		if !fnVal.Object().IsCallable() {
			return Undefined, &RuntimeError{Msg: fnVal.ToString() + " is not a function", Line: e.Line}
		}
	}
	args := make([]Value, len(e.Args))
	for i, a := range e.Args {
		args[i], err = it.evalExpr(env, a)
		if err != nil {
			return Undefined, err
		}
	}
	return it.callFunction(fnVal.Object(), this, args, e.Line)
}

func (it *Interp) evalNew(env *Env, e *NewExpr) (Value, error) {
	fnVal, err := it.evalExpr(env, e.Fn)
	if err != nil {
		return Undefined, err
	}
	fnObj := fnVal.Object()
	if !fnObj.IsCallable() {
		return Undefined, &RuntimeError{Msg: "new requires a function", Line: e.Line}
	}
	args := make([]Value, len(e.Args))
	for i, a := range e.Args {
		args[i], err = it.evalExpr(env, a)
		if err != nil {
			return Undefined, err
		}
	}
	obj := NewObject()
	// Wire the prototype chain; create fn.prototype on first use.
	if protoV, ok := fnObj.GetOwn("prototype"); ok {
		obj.Proto = protoV.Object()
	} else if fnObj.Fn != nil {
		proto := NewObject()
		fnObj.SetProp("prototype", ObjVal(proto))
		obj.Proto = proto
	}
	result, err := it.callFunction(fnObj, ObjVal(obj), args, e.Line)
	if err != nil {
		return Undefined, err
	}
	if result.Kind() == KindObject {
		return result, nil
	}
	return ObjVal(obj), nil
}

// CompileFunction wraps a script as a callable zero-argument function
// value closing over the global scope. The embedder uses this to turn
// HTML event-handler attributes (onclick="...") into invocable handlers
// whose `this` can be bound to the source element at dispatch time.
func (it *Interp) CompileFunction(name, src string) (Value, error) {
	prog, err := Parse(src)
	if err != nil {
		return Undefined, err
	}
	fn := &FuncLit{
		Name:      name,
		Body:      prog.Stmts,
		VarNames:  prog.VarNames,
		FuncDecls: prog.FuncDecls,
	}
	return ObjVal(it.makeFunction(fn, it.Global)), nil
}
