package core

import (
	"bufio"
	"context"
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"ajaxcrawl/internal/browser"
	"ajaxcrawl/internal/fetch"
	"ajaxcrawl/internal/pagerank"
)

// Precrawler builds the traditional hyperlink structure of the site and
// the PageRank values over it (thesis §6.2.1). It reads pages statically
// (no JavaScript): the hyperlink graph is a traditional-crawl artifact.
type Precrawler struct {
	Fetcher fetch.Fetcher
	// StartURL is the page crawling begins from
	// (PRECRAWLER_START_URI_ID).
	StartURL string
	// MaxPages bounds the breadth-first expansion
	// (NUM_OF_PAGES_TO_PRECRAWL).
	MaxPages int
	// KeepURL filters which discovered links are followed; nil keeps all.
	KeepURL func(string) bool
}

// PrecrawlResult is the output of the precrawling phase.
type PrecrawlResult struct {
	// URLs lists the crawled pages in breadth-first discovery order —
	// the frontier handed to the URL partitioner.
	URLs []string
	// Links is the outbound-link structure
	// (HashMap<String, ArrayList<String>> in the thesis).
	Links map[string][]string
	// PageRank holds each page's PageRank value.
	PageRank map[string]float64
	// Visited is every URL the breadth-first expansion enqueued —
	// crawled or not. The parallel crawler seeds the frontier's bloom
	// dedup with it, so pages the precrawler already saw are not
	// re-admitted when rediscovered dynamically. (Precrawls saved
	// before this field existed decode with Visited nil; the frontier
	// just starts with an empty seen-set.)
	Visited map[string]bool
}

// Run performs the precrawl. Canceling ctx aborts the breadth-first
// expansion and returns the pages discovered so far with ctx.Err().
func (p *Precrawler) Run(ctx context.Context) (*PrecrawlResult, error) {
	if p.MaxPages <= 0 {
		return nil, fmt.Errorf("core: precrawl: MaxPages must be positive")
	}
	res := &PrecrawlResult{Links: make(map[string][]string)}
	visited := map[string]bool{p.StartURL: true}
	// BFS queue with an index cursor: `queue = queue[1:]` would pin the
	// whole backing array (every URL ever enqueued) for the crawl's
	// lifetime. The cursor dequeues in place and the drained prefix is
	// compacted away once it dominates the buffer.
	queue := []string{p.StartURL}
	head := 0
	var ctxErr error
	for head < len(queue) && len(res.URLs) < p.MaxPages {
		if err := ctx.Err(); err != nil {
			ctxErr = err
			break
		}
		u := queue[head]
		queue[head] = ""
		head++
		if head > len(queue)/2 && head > 64 {
			n := copy(queue, queue[head:])
			queue, head = queue[:n], 0
		}
		page := browser.NewPage(p.Fetcher)
		if err := page.LoadStatic(ctx, u); err != nil {
			if ctx.Err() != nil {
				ctxErr = ctx.Err()
				break
			}
			// Unreachable pages are skipped, like a robust crawler.
			continue
		}
		res.URLs = append(res.URLs, u)
		for _, link := range page.Links() {
			if p.KeepURL != nil && !p.KeepURL(link) {
				continue
			}
			res.Links[u] = append(res.Links[u], link)
			if !visited[link] {
				visited[link] = true
				queue = append(queue, link)
			}
		}
	}
	// Restrict PageRank to crawled pages: links to pages beyond MaxPages
	// stay in Links but rank is computed over the crawled universe, so
	// partition inputs and rank lookups agree.
	crawled := make(map[string]bool, len(res.URLs))
	for _, u := range res.URLs {
		crawled[u] = true
	}
	inGraph := make(map[string][]string, len(res.URLs))
	for _, u := range res.URLs {
		inGraph[u] = nil
		for _, to := range res.Links[u] {
			if crawled[to] {
				inGraph[u] = append(inGraph[u], to)
			}
		}
	}
	res.PageRank = pagerank.Compute(inGraph, pagerank.Options{})
	// The visited set doubles as the parallel frontier's seed dedup.
	res.Visited = visited
	return res, ctxErr
}

// precrawlFileName stores the serialized PrecrawlResult.
const precrawlFileName = "precrawl.gob"

// Save writes the result into dir (the precrawler root directory).
func (r *PrecrawlResult) Save(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("core: precrawl save: %w", err)
	}
	f, err := os.Create(filepath.Join(dir, precrawlFileName))
	if err != nil {
		return fmt.Errorf("core: precrawl save: %w", err)
	}
	if err := gob.NewEncoder(f).Encode(r); err != nil {
		f.Close()
		return fmt.Errorf("core: precrawl encode: %w", err)
	}
	return f.Close()
}

// LoadPrecrawl reads a saved PrecrawlResult from dir. Errors are
// qualified with the path involved, so a resumed run that points at the
// wrong -out directory says which file was missing or undecodable.
func LoadPrecrawl(dir string) (*PrecrawlResult, error) {
	path := filepath.Join(dir, precrawlFileName)
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("core: load precrawl %s: %w", dir, err)
	}
	defer f.Close()
	var r PrecrawlResult
	if err := gob.NewDecoder(f).Decode(&r); err != nil {
		return nil, fmt.Errorf("core: decode precrawl %s: %w", path, err)
	}
	return &r, nil
}

// URLPartitioner splits the precrawled URL list into fixed-size
// partitions on disk (thesis §6.2.2): every partition is a numbered
// subdirectory containing a text file with the URLs to crawl.
type URLPartitioner struct {
	// PartitionSize is the number of pages per partition (PARTITION_SIZE).
	PartitionSize int
	// RootDir is where partition directories are created
	// (YOUTUBE_CRAWLDATA_ROOT_DIR).
	RootDir string
}

// URLFileName is the per-partition URL list file (URI_PART_FILE_NAME).
const URLFileName = "URLsToCrawl.txt"

// Partition writes the partitions and returns their directories in
// order. Directory names are 1-based numbers, as in the thesis.
func (u *URLPartitioner) Partition(urls []string) ([]string, error) {
	if u.PartitionSize <= 0 {
		return nil, fmt.Errorf("core: partition: size must be positive")
	}
	var dirs []string
	for i := 0; i < len(urls); i += u.PartitionSize {
		end := i + u.PartitionSize
		if end > len(urls) {
			end = len(urls)
		}
		dir := filepath.Join(u.RootDir, strconv.Itoa(len(dirs)+1))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("core: partition: %w", err)
		}
		f, err := os.Create(filepath.Join(dir, URLFileName))
		if err != nil {
			return nil, fmt.Errorf("core: partition: %w", err)
		}
		w := bufio.NewWriter(f)
		for _, url := range urls[i:end] {
			fmt.Fprintln(w, url)
		}
		if err := w.Flush(); err != nil {
			f.Close()
			return nil, fmt.Errorf("core: partition: %w", err)
		}
		if err := f.Close(); err != nil {
			return nil, fmt.Errorf("core: partition: %w", err)
		}
		dirs = append(dirs, dir)
	}
	return dirs, nil
}

// ReadPartition loads the URL list of one partition directory. Errors
// are qualified with the partition directory, so a supervisor report for
// a failed partition names exactly which one could not be read.
func ReadPartition(dir string) ([]string, error) {
	data, err := os.ReadFile(filepath.Join(dir, URLFileName))
	if err != nil {
		return nil, fmt.Errorf("core: read partition %s: %w", dir, err)
	}
	var urls []string
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line != "" {
			urls = append(urls, line)
		}
	}
	return urls, nil
}
