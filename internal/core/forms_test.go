package core

import (
	"context"
	"strings"
	"testing"

	"ajaxcrawl/internal/browser"
	"ajaxcrawl/internal/dom"
	"ajaxcrawl/internal/fetch"
	"ajaxcrawl/internal/model"
	"ajaxcrawl/internal/webapp"
)

// formSite builds a synthetic site with the Google-Suggest-style search
// box enabled.
func formSite(videos int) (*webapp.Site, fetch.Fetcher) {
	cfg := webapp.DefaultConfig(videos, 13)
	cfg.WithSearchBox = true
	site := webapp.New(cfg)
	return site, &fetch.HandlerFetcher{Handler: site.Handler()}
}

func TestBrowserFormEvents(t *testing.T) {
	site, f := formSite(10)
	p := browser.NewPage(f)
	if err := p.Load(context.Background(), webapp.WatchURL(site.VideoID(0))); err != nil {
		t.Fatal(err)
	}
	fevs := p.FormEvents()
	if len(fevs) != 1 {
		t.Fatalf("form events = %d, want 1 (the search box)", len(fevs))
	}
	fe := fevs[0]
	if fe.Type != "onkeyup" || fe.ID != "search" {
		t.Fatalf("form event = %+v", fe)
	}
	// Probing with a prefix fills the suggestions div.
	changed, err := p.TriggerWithValue(context.Background(), fe, "wo")
	if err != nil {
		t.Fatal(err)
	}
	if !changed {
		t.Fatalf("probe did not change the DOM")
	}
	sugg := p.Doc.ElementByID("suggestions")
	if sugg == nil || !strings.Contains(sugg.TextContent(), "wow") {
		t.Fatalf("suggestions missing 'wow': %q", sugg.TextContent())
	}
	// An empty probe does nothing (the handler guards on it).
	p2 := browser.NewPage(f)
	if err := p2.Load(context.Background(), webapp.WatchURL(site.VideoID(0))); err != nil {
		t.Fatal(err)
	}
	changed, err = p2.TriggerWithValue(context.Background(), p2.FormEvents()[0], "")
	if err != nil || changed {
		t.Fatalf("empty probe should not change DOM: %v %v", changed, err)
	}
}

func TestFormCrawlingDiscoversSuggestStates(t *testing.T) {
	site, f := formSite(10)
	url := webapp.WatchURL(site.VideoID(0))

	// Without probes, the search box contributes no states.
	plain := New(f, Options{UseHotNode: true, MaxStates: 30})
	gPlain, _, err := plain.CrawlPage(context.Background(), url)
	if err != nil {
		t.Fatal(err)
	}
	// With probes, each distinct prefix yields a suggestion state.
	probing := New(f, Options{
		UseHotNode: true,
		MaxStates:  30,
		FormProbes: []string{"wo", "da", "zz"},
	})
	gForm, pm, err := probing.CrawlPage(context.Background(), url)
	if err != nil {
		t.Fatal(err)
	}
	if gForm.NumStates() <= gPlain.NumStates() {
		t.Fatalf("form probing found no extra states: %d vs %d",
			gForm.NumStates(), gPlain.NumStates())
	}
	// The suggestion content is indexed state text.
	foundWow := false
	for _, s := range gForm.States {
		if strings.Contains(s.Text, "wow") && strings.Contains(s.Text, "no suggestions") == false {
			foundWow = true
		}
	}
	if !foundWow {
		t.Fatalf("no state carries the 'wow' suggestion")
	}
	// Form transitions are annotated with their probe.
	probed := 0
	for _, tr := range gForm.Transitions {
		if tr.Probe != "" {
			probed++
			if tr.Event != "onkeyup" || tr.Source != "search" {
				t.Fatalf("bad form transition: %+v", tr)
			}
		}
	}
	if probed == 0 {
		t.Fatalf("no probe-annotated transitions")
	}
	if pm.EventsTriggered <= gPlain.NumStates() {
		t.Fatalf("probe events not counted")
	}
}

func TestFormStateReplay(t *testing.T) {
	site, f := formSite(10)
	url := webapp.WatchURL(site.VideoID(0))
	c := New(f, Options{UseHotNode: true, MaxStates: 30, FormProbes: []string{"wo"}})
	g, _, err := c.CrawlPage(context.Background(), url)
	if err != nil {
		t.Fatal(err)
	}
	// Find a state reached via a probe and replay it.
	var target *model.Transition
	for _, tr := range g.Transitions {
		if tr.Probe != "" {
			target = tr
			break
		}
	}
	if target == nil {
		t.Fatalf("no form transition recorded")
	}
	path := g.PathTo(target.To)
	if path == nil {
		t.Fatalf("form state unreachable")
	}
	doc, err := ReplayPath(context.Background(), f, url, path)
	if err != nil {
		t.Fatal(err)
	}
	if got := dom.CanonicalHash(doc); got != g.State(target.To).Hash {
		t.Fatalf("replayed form state differs from crawled state")
	}
}

func TestFormProbesRespectMaxStates(t *testing.T) {
	site, f := formSite(10)
	url := webapp.WatchURL(site.VideoID(0))
	c := New(f, Options{
		UseHotNode: true,
		MaxStates:  2,
		FormProbes: []string{"wo", "da", "fu", "ki", "lo"},
	})
	g, _, err := c.CrawlPage(context.Background(), url)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumStates() != 2 {
		t.Fatalf("MaxStates not honored with probes: %d", g.NumStates())
	}
}
