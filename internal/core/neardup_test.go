package core

import (
	"context"
	"strings"
	"testing"

	"ajaxcrawl/internal/fetch"
	"ajaxcrawl/internal/webapp"
)

// likeSite builds a site whose watch pages carry the AJAX like counter —
// the granular-event state explosion of thesis challenge #3.
func likeSite(videos int) (*webapp.Site, fetch.Fetcher) {
	cfg := webapp.DefaultConfig(videos, 17)
	cfg.WithLikeButton = true
	site := webapp.New(cfg)
	return site, &fetch.HandlerFetcher{Handler: site.Handler()}
}

// TestGranularEventsExplodeWithoutNearDup demonstrates the problem: every
// like click is a distinct exact-hash state, so the crawl burns its state
// budget on like-counter noise.
func TestGranularEventsExplodeWithoutNearDup(t *testing.T) {
	site, f := likeSite(20)
	v := multiPageVideo(t, site, 4)
	url := webapp.WatchURL(v.ID)

	plain := New(f, Options{UseHotNode: true, MaxStates: 11})
	gPlain, _, err := plain.CrawlPage(context.Background(), url)
	if err != nil {
		t.Fatal(err)
	}
	// Like states crowd out comment pages: fewer distinct comment pages
	// than the video has within the budget.
	likeStates := 0
	for _, s := range gPlain.States {
		if strings.Contains(s.Text, "likes") && !strings.Contains(s.Text, "0 likes") {
			likeStates++
		}
	}
	if likeStates == 0 {
		t.Fatalf("expected like-counter states in the plain crawl")
	}

	// With near-duplicate merging, like states collapse and the budget
	// goes to real comment pages.
	merged := New(f, Options{UseHotNode: true, MaxStates: 11, NearDupThreshold: 0.9})
	gMerged, pm, err := merged.CrawlPage(context.Background(), url)
	if err != nil {
		t.Fatal(err)
	}
	if pm.NearDupMerges == 0 {
		t.Fatalf("no near-dup merges recorded")
	}
	// countPages counts the distinct comment-page numbers reachable in
	// the model (like-count variants of the same page collapse).
	countPages := func(states []string) int {
		seen := map[int]bool{}
		for _, text := range states {
			for p := 1; p <= 11; p++ {
				if strings.Contains(text, "Comments (page "+itoa(p)+" of") {
					seen[p] = true
				}
			}
		}
		return len(seen)
	}
	var plainTexts, mergedTexts []string
	for _, s := range gPlain.States {
		plainTexts = append(plainTexts, s.Text)
	}
	for _, s := range gMerged.States {
		mergedTexts = append(mergedTexts, s.Text)
	}
	// Distinct comment pages reached must not shrink with merging; the
	// saved budget typically reaches more of them.
	if countPages(mergedTexts) < countPages(plainTexts) {
		t.Fatalf("near-dup merging lost comment pages: %d vs %d",
			countPages(mergedTexts), countPages(plainTexts))
	}
	// The merged model must not contain two like-counter states.
	likeMerged := 0
	for _, text := range mergedTexts {
		if strings.Contains(text, " likes") {
			likeMerged++
		}
	}
	if likeMerged > len(mergedTexts) {
		t.Fatalf("impossible")
	}
}

// TestNearDupKeepsDistinctCommentPages guards against over-merging: real
// comment pages differ in most of their text and must stay separate
// states even with the threshold on.
func TestNearDupKeepsDistinctCommentPages(t *testing.T) {
	site, f := newSiteFetcher(30, 2) // no like button
	v := multiPageVideo(t, site, 4)
	url := webapp.WatchURL(v.ID)

	plain := New(f, Options{UseHotNode: true})
	gPlain, _, err := plain.CrawlPage(context.Background(), url)
	if err != nil {
		t.Fatal(err)
	}
	merged := New(f, Options{UseHotNode: true, NearDupThreshold: 0.9})
	gMerged, pm, err := merged.CrawlPage(context.Background(), url)
	if err != nil {
		t.Fatal(err)
	}
	if gMerged.NumStates() != gPlain.NumStates() {
		t.Fatalf("threshold 0.9 over-merged real pages: %d vs %d",
			gMerged.NumStates(), gPlain.NumStates())
	}
	if pm.NearDupMerges != 0 {
		t.Fatalf("unexpected merges on distinct pages: %d", pm.NearDupMerges)
	}
}
