package core

import (
	"reflect"
	"testing"
)

// setNumericFields assigns a distinct nonzero value to every settable
// numeric field of v (a pointer to struct) and returns the field names.
func setNumericFields(t *testing.T, v interface{}) []string {
	t.Helper()
	var names []string
	sv := reflect.ValueOf(v).Elem()
	st := sv.Type()
	for i := 0; i < st.NumField(); i++ {
		f := sv.Field(i)
		switch f.Kind() {
		case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
			f.SetInt(int64(i + 1)) // distinct per field, so swaps are caught
			names = append(names, st.Field(i).Name)
		}
	}
	return names
}

// TestMetricsAddFoldsEveryNumericField pins the aggregation invariant:
// every numeric field of PageMetrics must have a same-named field in
// Metrics, and Add must fold each one. Adding a counter to PageMetrics
// without extending Metrics and Add now fails this test instead of
// silently dropping the new field from crawl summaries.
func TestMetricsAddFoldsEveryNumericField(t *testing.T) {
	var pm PageMetrics
	fields := setNumericFields(t, &pm)
	if len(fields) == 0 {
		t.Fatal("PageMetrics has no numeric fields — test is vacuous")
	}

	var m Metrics
	m.Add(pm)

	pv := reflect.ValueOf(pm)
	mv := reflect.ValueOf(m)
	for _, name := range fields {
		mf := mv.FieldByName(name)
		if !mf.IsValid() {
			t.Errorf("PageMetrics.%s has no same-named Metrics field: the aggregate silently drops it", name)
			continue
		}
		want := pv.FieldByName(name).Int()
		if got := mf.Int(); got != want {
			t.Errorf("Metrics.%s = %d after Add, want %d (field not folded, or folded from the wrong source)", name, got, want)
		}
	}
	if m.Pages != 1 {
		t.Errorf("Pages = %d after one Add, want 1", m.Pages)
	}
	if len(m.PerPage) != 1 || m.PerPage[0] != pm {
		t.Errorf("PerPage after Add = %+v, want the added PageMetrics", m.PerPage)
	}
}

// TestMetricsMergeFoldsEveryNumericField does the same for Merge: every
// numeric field of Metrics itself (Pages and PagesFailed included) must
// transfer. Merging twice must double every field — catching a field
// that is copied instead of accumulated.
func TestMetricsMergeFoldsEveryNumericField(t *testing.T) {
	var o Metrics
	fields := setNumericFields(t, &o)
	o.PerPage = []PageMetrics{{URL: "u"}}

	var m Metrics
	m.Merge(&o)
	m.Merge(&o)

	ov := reflect.ValueOf(o)
	mv := reflect.ValueOf(m)
	for _, name := range fields {
		want := 2 * ov.FieldByName(name).Int()
		if got := mv.FieldByName(name).Int(); got != want {
			t.Errorf("Metrics.%s = %d after two Merges, want %d", name, got, want)
		}
	}
	if len(m.PerPage) != 2 {
		t.Errorf("PerPage length = %d after two Merges, want 2", len(m.PerPage))
	}
}
