package core

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ajaxcrawl/internal/fetch"
	"ajaxcrawl/internal/webapp"
)

func TestPrecrawlerBuildsLinkGraph(t *testing.T) {
	site, f := newSiteFetcher(40, 7)
	p := &Precrawler{
		Fetcher:  f,
		StartURL: webapp.WatchURL(site.Video(0).ID),
		MaxPages: 20,
		KeepURL:  func(u string) bool { return strings.Contains(u, "/watch?v=") },
	}
	res, err := p.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.URLs) != 20 {
		t.Fatalf("precrawled %d pages, want 20", len(res.URLs))
	}
	if res.URLs[0] != p.StartURL {
		t.Fatalf("first URL should be the start: %s", res.URLs[0])
	}
	// Every crawled page has recorded outlinks (related videos).
	if len(res.Links[p.StartURL]) == 0 {
		t.Fatalf("start page has no outlinks")
	}
	// PageRank covers all crawled pages and sums to ~1.
	sum := 0.0
	for _, u := range res.URLs {
		pr, ok := res.PageRank[u]
		if !ok {
			t.Fatalf("no PageRank for %s", u)
		}
		sum += pr
	}
	if sum < 0.99 || sum > 1.01 {
		t.Fatalf("PageRank sums to %v", sum)
	}
	// No duplicates in URL list.
	seen := map[string]bool{}
	for _, u := range res.URLs {
		if seen[u] {
			t.Fatalf("duplicate URL %s", u)
		}
		seen[u] = true
	}
}

func TestPrecrawlerMaxPagesOne(t *testing.T) {
	site, f := newSiteFetcher(5, 7)
	p := &Precrawler{Fetcher: f, StartURL: webapp.WatchURL(site.Video(0).ID), MaxPages: 1}
	res, err := p.Run(context.Background())
	if err != nil || len(res.URLs) != 1 {
		t.Fatalf("res=%v err=%v", res, err)
	}
	if _, err := (&Precrawler{Fetcher: f, StartURL: "/", MaxPages: 0}).Run(context.Background()); err == nil {
		t.Fatalf("MaxPages 0 should error")
	}
}

func TestPrecrawlSkipsBrokenPages(t *testing.T) {
	_, f := newSiteFetcher(5, 7)
	p := &Precrawler{Fetcher: f, StartURL: "/watch?v=missing", MaxPages: 5}
	res, err := p.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.URLs) != 0 {
		t.Fatalf("broken start page should yield empty crawl, got %v", res.URLs)
	}
}

func TestPrecrawlSaveLoad(t *testing.T) {
	site, f := newSiteFetcher(20, 7)
	p := &Precrawler{Fetcher: f, StartURL: webapp.WatchURL(site.Video(0).ID), MaxPages: 10}
	res, err := p.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := res.Save(dir); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadPrecrawl(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.URLs) != len(res.URLs) || len(loaded.PageRank) != len(res.PageRank) {
		t.Fatalf("round trip lost data")
	}
	if _, err := LoadPrecrawl(t.TempDir()); err == nil {
		t.Fatalf("loading missing precrawl should fail")
	}
}

func TestURLPartitioner(t *testing.T) {
	root := t.TempDir()
	urls := []string{"/a", "/b", "/c", "/d", "/e"}
	u := &URLPartitioner{PartitionSize: 2, RootDir: root}
	dirs, err := u.Partition(urls)
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) != 3 {
		t.Fatalf("want 3 partitions, got %d", len(dirs))
	}
	// Directory names are 1-based numbers.
	if filepath.Base(dirs[0]) != "1" || filepath.Base(dirs[2]) != "3" {
		t.Fatalf("dirs = %v", dirs)
	}
	got, err := ReadPartition(dirs[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "/a" || got[1] != "/b" {
		t.Fatalf("partition 1 = %v", got)
	}
	last, err := ReadPartition(dirs[2])
	if err != nil || len(last) != 1 || last[0] != "/e" {
		t.Fatalf("partition 3 = %v %v", last, err)
	}
	// Reading a partition without the URL file fails.
	if _, err := ReadPartition(t.TempDir()); err == nil {
		t.Fatalf("missing URL file should error")
	}
	// Bad size.
	if _, err := (&URLPartitioner{PartitionSize: 0, RootDir: root}).Partition(urls); err == nil {
		t.Fatalf("size 0 should error")
	}
}

func TestMPCrawlerProcessesAllPartitions(t *testing.T) {
	site, _ := newSiteFetcher(12, 9)
	root := t.TempDir()
	var urls []string
	for i := 0; i < 12; i++ {
		urls = append(urls, webapp.WatchURL(site.Video(i).ID))
	}
	dirs, err := (&URLPartitioner{PartitionSize: 3, RootDir: root}).Partition(urls)
	if err != nil {
		t.Fatal(err)
	}
	mp := &MPCrawler{
		NewCrawler: func() *Crawler {
			return New(&fetch.HandlerFetcher{Handler: site.Handler()}, Options{UseHotNode: true, MaxStates: 3})
		},
		ProcLines:  4,
		Partitions: dirs,
		SaveModels: true,
	}
	res := mp.Run(context.Background())
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	graphs := res.Graphs()
	if len(graphs) != 12 {
		t.Fatalf("crawled %d pages, want 12", len(graphs))
	}
	if res.Metrics.Pages != 12 {
		t.Fatalf("metrics pages = %d", res.Metrics.Pages)
	}
	// Models were serialized into each partition dir.
	for _, d := range dirs {
		if _, err := os.Stat(filepath.Join(d, "ajaxmodels.gob")); err != nil {
			t.Fatalf("partition %s has no models: %v", d, err)
		}
	}
	// Graph order matches partition order: graph i is for urls[i].
	for i, g := range graphs {
		if g.URL != urls[i] {
			t.Fatalf("graph %d url = %s, want %s", i, g.URL, urls[i])
		}
	}
}

func TestMPCrawlerSerialEqualsParallelModels(t *testing.T) {
	site, _ := newSiteFetcher(8, 10)
	var urls []string
	for i := 0; i < 8; i++ {
		urls = append(urls, webapp.WatchURL(site.Video(i).ID))
	}
	mk := func(lines int) []string {
		root := t.TempDir()
		dirs, err := (&URLPartitioner{PartitionSize: 2, RootDir: root}).Partition(urls)
		if err != nil {
			t.Fatal(err)
		}
		mp := &MPCrawler{
			NewCrawler: func() *Crawler {
				return New(&fetch.HandlerFetcher{Handler: site.Handler()}, Options{UseHotNode: true, MaxStates: 4})
			},
			ProcLines:  lines,
			Partitions: dirs,
		}
		res := mp.Run(context.Background())
		if err := res.Err(); err != nil {
			t.Fatal(err)
		}
		var sigs []string
		for _, g := range res.Graphs() {
			sigs = append(sigs, g.URL+":"+itoa(g.NumStates()))
		}
		return sigs
	}
	serial := mk(1)
	parallel := mk(4)
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("parallel crawl diverged at %d: %s vs %s", i, serial[i], parallel[i])
		}
	}
}

func TestMPCrawlerPerPageOrderDeterministic(t *testing.T) {
	// Metrics.PerPage must follow partition order (then URL order within
	// each partition), not goroutine completion order.
	site, _ := newSiteFetcher(12, 13)
	var urls []string
	for i := 0; i < 12; i++ {
		urls = append(urls, webapp.WatchURL(site.Video(i).ID))
	}
	run := func() []string {
		dirs, err := (&URLPartitioner{PartitionSize: 3, RootDir: t.TempDir()}).Partition(urls)
		if err != nil {
			t.Fatal(err)
		}
		mp := &MPCrawler{
			NewCrawler: func() *Crawler {
				return New(&fetch.HandlerFetcher{Handler: site.Handler()}, Options{MaxStates: 3})
			},
			ProcLines:  4,
			Partitions: dirs,
		}
		res := mp.Run(context.Background())
		if err := res.Err(); err != nil {
			t.Fatal(err)
		}
		order := make([]string, 0, len(res.Metrics.PerPage))
		for _, pm := range res.Metrics.PerPage {
			order = append(order, pm.URL)
		}
		return order
	}
	first := run()
	if len(first) != len(urls) {
		t.Fatalf("PerPage has %d rows, want %d", len(first), len(urls))
	}
	for i, u := range first {
		if u != urls[i] {
			t.Fatalf("PerPage[%d] = %s, want %s (partition order)", i, u, urls[i])
		}
	}
	for trial := 0; trial < 3; trial++ {
		got := run()
		for i := range first {
			if got[i] != first[i] {
				t.Fatalf("trial %d diverged at %d: %s vs %s", trial, i, got[i], first[i])
			}
		}
	}
}

func TestMPCrawlerPartitionErrorReported(t *testing.T) {
	root := t.TempDir()
	dirs, err := (&URLPartitioner{PartitionSize: 1, RootDir: root}).Partition([]string{"/watch?v=broken"})
	if err != nil {
		t.Fatal(err)
	}
	_, f := newSiteFetcher(3, 11)
	// Under the default SkipAndCount policy the partition completes with
	// the bad page counted, not failed.
	mp := &MPCrawler{
		NewCrawler: func() *Crawler { return New(f, Options{}) },
		ProcLines:  2,
		Partitions: dirs,
	}
	res := mp.Run(context.Background())
	if err := res.Err(); err != nil {
		t.Fatalf("SkipAndCount partition errored: %v", err)
	}
	if res.Metrics.PagesFailed != 1 {
		t.Fatalf("want PagesFailed=1, got %d", res.Metrics.PagesFailed)
	}
	// FailFast surfaces it as a partition error.
	mp.NewCrawler = func() *Crawler { return New(f, Options{OnError: FailFast}) }
	if res := mp.Run(context.Background()); res.Err() == nil {
		t.Fatalf("broken partition should surface an error under FailFast")
	}
}
