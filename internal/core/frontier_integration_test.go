package core

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"ajaxcrawl/internal/fetch"
	"ajaxcrawl/internal/obs"
	"ajaxcrawl/internal/webapp"
)

// TestFrontierCrawlDeterministic is the determinism suite for the
// work-stealing frontier: a seeded 4-line crawl admits and crawls
// exactly the state sets of a 1-line baseline, and repeating the seeded
// run reproduces the assembled result byte-for-byte (PerPage order
// included), even though the lines race for items in real time.
func TestFrontierCrawlDeterministic(t *testing.T) {
	site, fetcher := newSiteFetcher(9, 42)
	var urls []string
	for i := 0; i < 9; i++ {
		urls = append(urls, webapp.WatchURL(site.Video(i).ID))
	}
	dirs, err := (&URLPartitioner{PartitionSize: 3, RootDir: t.TempDir()}).Partition(urls)
	if err != nil {
		t.Fatal(err)
	}
	run := func(lines int, seed int64) *MPResult {
		mp := &MPCrawler{
			NewCrawler: func() *Crawler {
				return New(fetcher, Options{UseHotNode: true, MaxStates: 3})
			},
			ProcLines:    lines,
			Partitions:   dirs,
			FrontierSeed: seed,
		}
		res := mp.Run(context.Background())
		if err := res.Err(); err != nil {
			t.Fatalf("%d-line crawl: %v", lines, err)
		}
		return res
	}

	base := run(1, 7)
	multi := run(4, 7)
	requireSameStateSets(t, stateSets(base.Graphs()), stateSets(multi.Graphs()))

	// The assembled result is deterministic run-to-run: same seed, same
	// PerPage row order, regardless of which line crawled which page.
	again := run(4, 7)
	if len(multi.Metrics.PerPage) != len(again.Metrics.PerPage) {
		t.Fatalf("PerPage rows differ: %d vs %d",
			len(multi.Metrics.PerPage), len(again.Metrics.PerPage))
	}
	for i := range multi.Metrics.PerPage {
		if multi.Metrics.PerPage[i].URL != again.Metrics.PerPage[i].URL {
			t.Fatalf("PerPage[%d] = %s vs %s: assembled order is not deterministic",
				i, multi.Metrics.PerPage[i].URL, again.Metrics.PerPage[i].URL)
		}
	}
	// And a different seed changes (at most) the schedule, never the
	// crawled universe.
	other := run(4, 99)
	requireSameStateSets(t, stateSets(base.Graphs()), stateSets(other.Graphs()))
}

// TestWorkStealingBeatsStaticPartitions pins the point of the frontier:
// on a skewed workload — one partition of pathologically slow pages —
// static one-line-per-partition crawling strands capacity behind the
// slow partition, while work stealing spreads the slow pages across
// lines. The frontier crawl must finish measurably faster than the
// static baseline on the same fetcher.
func TestWorkStealingBeatsStaticPartitions(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock skew measurement")
	}
	site, inner := newSiteFetcher(8, 5)
	var urls []string
	for i := 0; i < 6; i++ {
		urls = append(urls, webapp.WatchURL(site.Video(i).ID))
	}
	// Partition 1 is the pathological one: every fetch of its pages
	// sleeps slowTime. The rest answer almost instantly.
	slow := map[string]bool{urls[0]: true, urls[1]: true, urls[2]: true}
	const slowTime = 80 * time.Millisecond
	fetcher := fetch.Func(func(ctx context.Context, rawurl string) (*fetch.Response, error) {
		if slow[rawurl] {
			select {
			case <-time.After(slowTime):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		} else {
			time.Sleep(time.Millisecond)
		}
		return inner.Fetch(ctx, rawurl)
	})
	dirs, err := (&URLPartitioner{PartitionSize: 3, RootDir: t.TempDir()}).Partition(urls)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{UseHotNode: true, MaxStates: 2}

	// Static baseline: the pre-frontier model, one dedicated line per
	// partition. The fast partition's line finishes early and idles
	// while the slow partition grinds alone.
	staticStart := time.Now()
	var wg sync.WaitGroup
	staticErrs := make([]error, len(dirs))
	for i, dir := range dirs {
		wg.Add(1)
		go func(i int, dir string) {
			defer wg.Done()
			part, err := ReadPartition(dir)
			if err != nil {
				staticErrs[i] = err
				return
			}
			if _, _, err := New(fetcher, opts).CrawlAll(context.Background(), part); err != nil {
				staticErrs[i] = fmt.Errorf("partition %d: %w", i, err)
			}
		}(i, dir)
	}
	wg.Wait()
	staticElapsed := time.Since(staticStart)
	for _, err := range staticErrs {
		if err != nil {
			t.Fatal(err)
		}
	}

	// Frontier: two lines over the same six pages. Stealing moves slow
	// pages onto the line that would otherwise idle.
	mp := &MPCrawler{
		NewCrawler: func() *Crawler { return New(fetcher, opts) },
		ProcLines:  2,
		Partitions: dirs,
	}
	frontierStart := time.Now()
	res := mp.Run(obs.With(context.Background(), obs.New(obs.NewRegistry(), nil)))
	frontierElapsed := time.Since(frontierStart)
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	if got := len(res.Graphs()); got != len(urls) {
		t.Fatalf("frontier crawl produced %d graphs, want %d", got, len(urls))
	}

	// Static: ~3×slowTime serialized on one line. Stealing: the slow
	// pages split 2/1 across lines, ~2×slowTime. Demand a 15% win so
	// scheduler noise can't fake a pass.
	if limit := staticElapsed * 85 / 100; frontierElapsed >= limit {
		t.Errorf("work stealing did not beat static partitions: frontier %v, static %v (limit %v)",
			frontierElapsed, staticElapsed, limit)
	}
	t.Logf("static %v, frontier %v", staticElapsed, frontierElapsed)
}
