package core

import (
	"encoding/gob"
	"fmt"
	"os"

	"ajaxcrawl/internal/browser"
	"ajaxcrawl/internal/model"
)

// This file implements the "repetitive crawling" future-work direction of
// thesis chapter 10: "crawling AJAX can also be seen as a repetitive
// process, which can reduce the number of crawled events, by ignoring
// events which did not cause large changes in previous crawling
// sessions."
//
// A crawl session records, per page and per event identity, what the
// event did (nothing / led to an already-known state / produced a new
// state). A later session consults the profile and skips events that were
// unproductive last time, while still firing events it has never seen.

// EventOutcome classifies what one event invocation did.
type EventOutcome int

// Outcomes, ordered by usefulness.
const (
	// OutcomeNoChange: the handler ran but the DOM did not change.
	OutcomeNoChange EventOutcome = iota
	// OutcomeDuplicate: the DOM changed into an already-known state.
	OutcomeDuplicate
	// OutcomeNewState: the event produced a previously unseen state.
	OutcomeNewState
	// OutcomeError: the handler raised an error.
	OutcomeError
)

// String names the outcome.
func (o EventOutcome) String() string {
	switch o {
	case OutcomeNoChange:
		return "no-change"
	case OutcomeDuplicate:
		return "duplicate"
	case OutcomeNewState:
		return "new-state"
	case OutcomeError:
		return "error"
	}
	return fmt.Sprintf("EventOutcome(%d)", int(o))
}

// eventKey identifies an event across sessions: its type, source element
// and handler code. Positions may shift between sessions; the handler
// code is the stable part.
func eventKey(ev browser.Event) string {
	return ev.Type + "|" + sourceName(ev) + "|" + ev.Code
}

// PageProfile records the best outcome observed per event of one page.
type PageProfile struct {
	URL    string
	Events map[string]EventOutcome
}

// CrawlProfile aggregates page profiles of one crawl session.
type CrawlProfile struct {
	Pages map[string]*PageProfile
}

// NewCrawlProfile returns an empty profile.
func NewCrawlProfile() *CrawlProfile {
	return &CrawlProfile{Pages: make(map[string]*PageProfile)}
}

// record notes an event outcome, keeping the most useful one (a handler
// may fire from several states; if it ever produced a new state it stays
// worth firing).
func (cp *CrawlProfile) record(url string, ev browser.Event, outcome EventOutcome) {
	pp := cp.Pages[url]
	if pp == nil {
		pp = &PageProfile{URL: url, Events: make(map[string]EventOutcome)}
		cp.Pages[url] = pp
	}
	key := eventKey(ev)
	if old, seen := pp.Events[key]; !seen || outcome > old {
		pp.Events[key] = outcome
	}
}

// ShouldSkip reports whether an event was unproductive for this page in
// the recorded session: it ran without changing the DOM (or only
// erroring). Events that led anywhere — even to duplicates — still fire,
// because duplicates are what keeps the transition graph complete.
// Unknown events never skip.
func (cp *CrawlProfile) ShouldSkip(url string, ev browser.Event) bool {
	if cp == nil {
		return false
	}
	pp := cp.Pages[url]
	if pp == nil {
		return false
	}
	outcome, seen := pp.Events[eventKey(ev)]
	return seen && (outcome == OutcomeNoChange || outcome == OutcomeError)
}

// NumEvents returns the number of profiled events across all pages.
func (cp *CrawlProfile) NumEvents() int {
	n := 0
	for _, pp := range cp.Pages {
		n += len(pp.Events)
	}
	return n
}

// Save serializes the profile.
func (cp *CrawlProfile) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("core: profile save: %w", err)
	}
	if err := gob.NewEncoder(f).Encode(cp); err != nil {
		f.Close()
		return fmt.Errorf("core: profile encode: %w", err)
	}
	return f.Close()
}

// LoadCrawlProfile reads a profile from disk.
func LoadCrawlProfile(path string) (*CrawlProfile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("core: profile load: %w", err)
	}
	defer f.Close()
	var cp CrawlProfile
	if err := gob.NewDecoder(f).Decode(&cp); err != nil {
		return nil, fmt.Errorf("core: profile decode: %w", err)
	}
	return &cp, nil
}

// BuildProfileFromGraph reconstructs a profile from a stored application
// model: every transition's event was productive. Events absent from the
// graph are unknown (not marked unproductive), so this profile is
// conservative — it never skips.
func BuildProfileFromGraph(graphs []*model.Graph) *CrawlProfile {
	cp := NewCrawlProfile()
	for _, g := range graphs {
		for _, tr := range g.Transitions {
			ev := browser.Event{Type: tr.Event, Code: tr.Code, Path: tr.SourcePath, ID: tr.Source}
			cp.record(g.URL, ev, OutcomeNewState)
		}
	}
	return cp
}
