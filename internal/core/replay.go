package core

import (
	"context"
	"fmt"

	"ajaxcrawl/internal/browser"
	"ajaxcrawl/internal/dom"
	"ajaxcrawl/internal/fetch"
	"ajaxcrawl/internal/model"
)

// ReplayPath reconstructs the DOM of a state by loading the page fresh
// and replaying the annotated events along a transition path — the
// result-aggregation algorithm of thesis §5.4:
//
//  1. construct the DOM of the initial state,
//  2. invoke all annotated events to the desired state,
//  3. return the generated DOM (to be presented in a browser).
func ReplayPath(ctx context.Context, fetcher fetch.Fetcher, url string, path []*model.Transition) (*dom.Node, error) {
	page := browser.NewPage(fetcher)
	if err := page.Load(ctx, url); err != nil {
		return nil, err
	}
	if err := page.RunOnLoad(ctx); err != nil {
		return nil, fmt.Errorf("core: replay onload: %w", err)
	}
	for i, tr := range path {
		ev := browser.Event{Type: tr.Event, Code: tr.Code, Path: tr.SourcePath}
		if tr.Source != tr.SourcePath {
			ev.ID = tr.Source
		}
		var err error
		if tr.Probe != "" {
			_, err = page.TriggerWithValue(ctx, browser.FormEvent{Event: ev}, tr.Probe)
		} else {
			_, err = page.Trigger(ctx, ev)
		}
		if err != nil {
			return nil, fmt.Errorf("core: replay step %d (%s): %w", i, ev, err)
		}
	}
	return page.Doc, nil
}
