package core

import (
	"context"
	"path/filepath"
	"testing"

	"ajaxcrawl/internal/browser"
	"ajaxcrawl/internal/fetch"
	"ajaxcrawl/internal/model"
	"ajaxcrawl/internal/webapp"
)

func TestRecrawlProfileRecordsOutcomes(t *testing.T) {
	site, f := newSiteFetcher(30, 2)
	v := multiPageVideo(t, site, 3)
	url := webapp.WatchURL(v.ID)

	profile := NewCrawlProfile()
	c := New(f, Options{UseHotNode: true, RecordProfile: profile})
	_, pm, err := c.CrawlPage(context.Background(), url)
	if err != nil {
		t.Fatal(err)
	}
	if profile.NumEvents() == 0 {
		t.Fatalf("profile recorded nothing")
	}
	// Every triggered event is profiled (some keys collapse when the
	// same handler fires from several states).
	if profile.NumEvents() > pm.EventsTriggered {
		t.Fatalf("profile has more events (%d) than were triggered (%d)",
			profile.NumEvents(), pm.EventsTriggered)
	}
	// All pagination events on this app are productive; none should be
	// marked no-change.
	for key, outcome := range profile.Pages[url].Events {
		if outcome == OutcomeNoChange {
			t.Fatalf("pagination event %q recorded as no-change", key)
		}
	}
}

func TestRecrawlSkipsUnproductiveEvents(t *testing.T) {
	site, f := newSiteFetcher(30, 2)
	v := multiPageVideo(t, site, 3)
	url := webapp.WatchURL(v.ID)

	// Session 1: record. Inject a synthetic no-change event into the
	// profile to prove skipping (the synthetic site has only productive
	// events).
	profile := NewCrawlProfile()
	c1 := New(f, Options{UseHotNode: true, RecordProfile: profile})
	g1, pm1, err := c1.CrawlPage(context.Background(), url)
	if err != nil {
		t.Fatal(err)
	}
	// Session 2 with the profile: nothing should be skipped (all events
	// were productive), and the model must be identical.
	c2 := New(f, Options{UseHotNode: true, PriorProfile: profile})
	g2, pm2, err := c2.CrawlPage(context.Background(), url)
	if err != nil {
		t.Fatal(err)
	}
	if pm2.EventsSkipped != 0 {
		t.Fatalf("productive events were skipped: %d", pm2.EventsSkipped)
	}
	if g2.NumStates() != g1.NumStates() {
		t.Fatalf("recrawl changed the model: %d vs %d states", g2.NumStates(), g1.NumStates())
	}
	// Now poison one event as no-change and verify it is skipped.
	var anyKey string
	for key := range profile.Pages[url].Events {
		anyKey = key
		break
	}
	profile.Pages[url].Events[anyKey] = OutcomeNoChange
	c3 := New(f, Options{UseHotNode: true, PriorProfile: profile})
	_, pm3, err := c3.CrawlPage(context.Background(), url)
	if err != nil {
		t.Fatal(err)
	}
	if pm3.EventsSkipped == 0 {
		t.Fatalf("no-change event not skipped")
	}
	if pm3.EventsTriggered >= pm1.EventsTriggered {
		t.Fatalf("skipping did not reduce triggered events: %d vs %d",
			pm3.EventsTriggered, pm1.EventsTriggered)
	}
}

func TestRecrawlProfileOutcomeUpgrade(t *testing.T) {
	cp := NewCrawlProfile()
	ev := browser.Event{Type: "onclick", ID: "x", Code: "f()"}
	cp.record("/u", ev, OutcomeNoChange)
	if !cp.ShouldSkip("/u", ev) {
		t.Fatalf("no-change event should skip")
	}
	// A later productive observation upgrades the record.
	cp.record("/u", ev, OutcomeNewState)
	if cp.ShouldSkip("/u", ev) {
		t.Fatalf("upgraded event must not skip")
	}
	// Downgrade attempts are ignored.
	cp.record("/u", ev, OutcomeNoChange)
	if cp.ShouldSkip("/u", ev) {
		t.Fatalf("downgrade must not stick")
	}
	// Unknown pages/events never skip; nil profile never skips.
	if cp.ShouldSkip("/other", ev) {
		t.Fatalf("unknown page should not skip")
	}
	var nilProfile *CrawlProfile
	if nilProfile.ShouldSkip("/u", ev) {
		t.Fatalf("nil profile must not skip")
	}
}

func TestRecrawlProfilePersistence(t *testing.T) {
	cp := NewCrawlProfile()
	cp.record("/a", browser.Event{Type: "onclick", ID: "n", Code: "f(1)"}, OutcomeNewState)
	cp.record("/a", browser.Event{Type: "onclick", ID: "m", Code: "g()"}, OutcomeNoChange)
	path := filepath.Join(t.TempDir(), "profile.gob")
	if err := cp.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCrawlProfile(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumEvents() != 2 {
		t.Fatalf("round trip lost events: %d", loaded.NumEvents())
	}
	if !loaded.ShouldSkip("/a", browser.Event{Type: "onclick", ID: "m", Code: "g()"}) {
		t.Fatalf("skip decision lost in round trip")
	}
	if _, err := LoadCrawlProfile(filepath.Join(t.TempDir(), "nope.gob")); err == nil {
		t.Fatalf("loading missing profile should fail")
	}
}

func TestBuildProfileFromGraph(t *testing.T) {
	site, f := newSiteFetcher(30, 2)
	v := multiPageVideo(t, site, 3)
	url := webapp.WatchURL(v.ID)
	c := New(f, Options{UseHotNode: true})
	g, _, err := c.CrawlPage(context.Background(), url)
	if err != nil {
		t.Fatal(err)
	}
	profile := BuildProfileFromGraph([]*model.Graph{g})
	if profile.NumEvents() == 0 {
		t.Fatalf("profile from graph is empty")
	}
	// Conservative: a graph-derived profile never skips anything.
	for _, pp := range profile.Pages {
		for key, outcome := range pp.Events {
			if outcome != OutcomeNewState {
				t.Fatalf("graph-derived outcome for %q = %v", key, outcome)
			}
		}
	}
}

func TestFocusedCrawlPrunesIrrelevantStates(t *testing.T) {
	site, f := newSiteFetcher(40, 2)
	v := multiPageVideo(t, site, 5)
	url := webapp.WatchURL(v.ID)

	full := New(f, Options{UseHotNode: true})
	gFull, _, err := full.CrawlPage(context.Background(), url)
	if err != nil {
		t.Fatal(err)
	}
	// Focus on nothing: every non-initial state is irrelevant, so only
	// states reachable from the initial state are found.
	focused := New(f, Options{UseHotNode: true, StateFilter: func(string) bool { return false }})
	gFoc, pmFoc, err := focused.CrawlPage(context.Background(), url)
	if err != nil {
		t.Fatal(err)
	}
	if gFoc.NumStates() >= gFull.NumStates() {
		t.Fatalf("focus did not reduce states: %d vs %d", gFoc.NumStates(), gFull.NumStates())
	}
	if pmFoc.StatesPruned == 0 {
		t.Fatalf("no states pruned")
	}
	// Accept-all filter behaves like no filter.
	all := New(f, Options{UseHotNode: true, StateFilter: func(string) bool { return true }})
	gAll, pmAll, err := all.CrawlPage(context.Background(), url)
	if err != nil {
		t.Fatal(err)
	}
	if gAll.NumStates() != gFull.NumStates() || pmAll.StatesPruned != 0 {
		t.Fatalf("accept-all filter changed the crawl")
	}
}

func TestAjaxRobotsParsing(t *testing.T) {
	r := ParseAjaxRobots(`
# comment
ajax-states /watch 5
ajax-states / 11
ajax-states /deep/path 2
not-a-directive /x 3
ajax-states /bad notanumber
ajax-states /zero 0
`)
	if r.NumRules() != 3 {
		t.Fatalf("rules = %d, want 3", r.NumRules())
	}
	cases := []struct {
		url  string
		want int
	}{
		{"/watch?v=abc", 5},
		{"/deep/path/sub", 2},
		{"/index", 11},
		{"http://host/watch?v=x", 5},
		{"http://host", 11},
	}
	for _, c := range cases {
		if got := r.MaxStates(c.url); got != c.want {
			t.Errorf("MaxStates(%q) = %d, want %d", c.url, got, c.want)
		}
	}
	// nil robots: no limits.
	var nilR *AjaxRobots
	if nilR.MaxStates("/watch") != 0 || nilR.NumRules() != 0 {
		t.Fatalf("nil robots should impose no limits")
	}
}

func TestAjaxRobotsApplyTo(t *testing.T) {
	r := ParseAjaxRobots("ajax-states /watch 3\n")
	opts := r.ApplyTo(Options{MaxStates: 11}, "/watch?v=x")
	if opts.MaxStates != 3 {
		t.Fatalf("robots should cap MaxStates: %d", opts.MaxStates)
	}
	// The crawler's own tighter budget wins.
	opts = r.ApplyTo(Options{MaxStates: 2}, "/watch?v=x")
	if opts.MaxStates != 2 {
		t.Fatalf("tighter crawler budget must win: %d", opts.MaxStates)
	}
	// No rule: unchanged.
	opts = r.ApplyTo(Options{MaxStates: 11}, "/other")
	if opts.MaxStates != 11 {
		t.Fatalf("no-rule URL must keep its budget: %d", opts.MaxStates)
	}
}

func TestAjaxRobotsEndToEnd(t *testing.T) {
	cfg := webapp.DefaultConfig(30, 2)
	cfg.AdvertiseStates = 3
	site := webapp.New(cfg)
	f := &fetch.HandlerFetcher{Handler: site.Handler()}

	robots, err := FetchAjaxRobots(context.Background(), f)
	if err != nil {
		t.Fatal(err)
	}
	if robots == nil || robots.MaxStates("/watch?v=x") != 3 {
		t.Fatalf("robots not served/parsed: %v", robots)
	}
	// A cooperating crawl respects the advertised granularity.
	var v *webapp.Video
	for i := 0; i < site.NumVideos(); i++ {
		if len(site.Video(i).Pages) >= 5 {
			v = site.Video(i)
			break
		}
	}
	if v == nil {
		t.Skip("no deep video")
	}
	url := webapp.WatchURL(v.ID)
	c := New(f, robots.ApplyTo(Options{UseHotNode: true}, url))
	g, _, err := c.CrawlPage(context.Background(), url)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumStates() != 3 {
		t.Fatalf("crawl ignored advertised granularity: %d states", g.NumStates())
	}
	// A site without the file yields nil robots.
	plain := webapp.New(webapp.DefaultConfig(5, 1))
	robots, err = FetchAjaxRobots(context.Background(), &fetch.HandlerFetcher{Handler: plain.Handler()})
	if err != nil || robots != nil {
		t.Fatalf("absent robots file should yield nil: %v %v", robots, err)
	}
}
