package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ajaxcrawl/internal/dom"
	"ajaxcrawl/internal/fetch"
	"ajaxcrawl/internal/obs"
	"ajaxcrawl/internal/webapp"
)

// TestResumeMatchesUninterruptedCrawl is the headline crash-tolerance
// property: kill a checkpointed crawl after k pages, resume it from the
// journal, and the final state set is byte-identical to an uninterrupted
// run — with the k journaled pages replayed, never re-fetched.
func TestResumeMatchesUninterruptedCrawl(t *testing.T) {
	site, _ := newSiteFetcher(10, 2008)
	var urls []string
	for i := 0; i < 6; i++ {
		urls = append(urls, webapp.WatchURL(site.Video(i).ID))
	}
	ctx := context.Background()
	opts := Options{UseHotNode: true, MaxStates: 4}

	baseGraphs, baseMetrics, err := New(&fetch.HandlerFetcher{Handler: site.Handler()}, opts).CrawlAll(ctx, urls)
	if err != nil {
		t.Fatalf("baseline crawl: %v", err)
	}
	base := stateSets(baseGraphs)

	for _, k := range []int{1, 3, 5} {
		k := k
		t.Run(fmt.Sprintf("cancel-after-%d", k), func(t *testing.T) {
			dir := t.TempDir()
			var mu sync.Mutex
			fetches := map[string]int{}
			inner := &fetch.HandlerFetcher{Handler: site.Handler()}
			counting := fetch.Func(func(ctx context.Context, rawurl string) (*fetch.Response, error) {
				mu.Lock()
				fetches[rawurl]++
				mu.Unlock()
				return inner.Fetch(ctx, rawurl)
			})

			// Interrupted run: the OnPage hook scripts the "crash" by
			// canceling the context the moment page k completes. The page
			// is journaled before the cancellation is observed (CrawlAll
			// checks the context between pages), so the journal holds
			// exactly k pages.
			cp, err := OpenJournalCheckpointer(ctx, dir, false)
			if err != nil {
				t.Fatal(err)
			}
			runCtx, cancel := context.WithCancel(ctx)
			defer cancel()
			o := opts
			o.Checkpoint = cp
			pages := 0
			o.OnPage = func(PageMetrics) {
				pages++
				if pages == k {
					cancel()
				}
			}
			graphs1, m1, err := New(counting, o).CrawlAll(runCtx, urls)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("interrupted crawl returned %v, want context.Canceled", err)
			}
			if len(graphs1) != k || m1.Pages != k {
				t.Fatalf("interrupted crawl completed %d pages (metrics %d), want %d", len(graphs1), m1.Pages, k)
			}
			if err := cp.Close(); err != nil {
				t.Fatalf("close journal: %v", err)
			}
			mu.Lock()
			already := make(map[string]int, k)
			for _, u := range urls[:k] {
				already[u] = fetches[u]
			}
			mu.Unlock()

			// Resumed run over the same URL list.
			cp2, err := OpenJournalCheckpointer(ctx, dir, true)
			if err != nil {
				t.Fatal(err)
			}
			defer cp2.Close()
			o2 := opts
			o2.Checkpoint = cp2
			graphs2, m2, err := New(counting, o2).CrawlAll(ctx, urls)
			if err != nil {
				t.Fatalf("resumed crawl: %v", err)
			}
			if m2.PagesResumed != k {
				t.Errorf("PagesResumed = %d, want %d", m2.PagesResumed, k)
			}
			if m2.Pages != len(urls) {
				t.Errorf("Pages = %d, want %d", m2.Pages, len(urls))
			}
			// Journaled metrics fold into the aggregate, so the resumed
			// run's totals match the uninterrupted baseline exactly.
			if m2.States != baseMetrics.States || m2.Transitions != baseMetrics.Transitions ||
				m2.EventsTriggered != baseMetrics.EventsTriggered {
				t.Errorf("resumed metrics states/transitions/events = %d/%d/%d, baseline %d/%d/%d",
					m2.States, m2.Transitions, m2.EventsTriggered,
					baseMetrics.States, baseMetrics.Transitions, baseMetrics.EventsTriggered)
			}
			requireSameStateSets(t, base, stateSets(graphs2))

			// The k journaled pages must never hit the network again.
			mu.Lock()
			for _, u := range urls[:k] {
				if fetches[u] != already[u] {
					t.Errorf("resumed page %s was re-fetched (%d -> %d)", u, already[u], fetches[u])
				}
			}
			mu.Unlock()
		})
	}
}

// requireSameStateSets fails the test unless both crawls discovered
// exactly the same state hashes for exactly the same URLs.
func requireSameStateSets(t *testing.T, want, got map[string][]dom.Hash) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("crawl produced %d graphs, want %d", len(got), len(want))
	}
	for url, w := range want {
		g, ok := got[url]
		if !ok {
			t.Errorf("crawl lost page %s", url)
			continue
		}
		if len(g) != len(w) {
			t.Errorf("%s: %d states, want %d", url, len(g), len(w))
			continue
		}
		for i := range w {
			if g[i] != w[i] {
				t.Errorf("%s: state hash set diverges at %d", url, i)
				break
			}
		}
	}
}

// TestMPCrawlerResumeConvergence drives the same property through the
// parallel crawler: cancel a checkpointed multi-partition run mid-crawl,
// rerun it in resume mode, and the merged result matches a run that was
// never interrupted.
func TestMPCrawlerResumeConvergence(t *testing.T) {
	site, _ := newSiteFetcher(12, 9)
	var urls []string
	for i := 0; i < 12; i++ {
		urls = append(urls, webapp.WatchURL(site.Video(i).ID))
	}
	mkDirs := func() []string {
		dirs, err := (&URLPartitioner{PartitionSize: 3, RootDir: t.TempDir()}).Partition(urls)
		if err != nil {
			t.Fatal(err)
		}
		return dirs
	}

	baseline := (&MPCrawler{
		NewCrawler: func() *Crawler {
			return New(&fetch.HandlerFetcher{Handler: site.Handler()}, Options{UseHotNode: true, MaxStates: 3})
		},
		ProcLines:  2,
		Partitions: mkDirs(),
	}).Run(context.Background())
	if err := baseline.Err(); err != nil {
		t.Fatalf("baseline: %v", err)
	}
	base := stateSets(baseline.Graphs())

	ckRoot := t.TempDir()
	dirs := mkDirs()

	// Run 1: cancel once 5 pages have completed across all process
	// lines — a crawl killed mid-frontier, with per-line journals and
	// the frontier snapshot on disk.
	cps, err := OpenCrawlCheckpoints(context.Background(), ckRoot, false)
	if err != nil {
		t.Fatal(err)
	}
	runCtx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var crawled atomic.Int32
	mp := &MPCrawler{
		NewCrawler: func() *Crawler {
			o := Options{UseHotNode: true, MaxStates: 3}
			o.OnPage = func(PageMetrics) {
				if crawled.Add(1) == 5 {
					cancel()
				}
			}
			return New(&fetch.HandlerFetcher{Handler: site.Handler()}, o)
		},
		ProcLines:   2,
		Partitions:  dirs,
		Checkpoints: cps,
	}
	partial := mp.Run(runCtx)
	if err := cps.Close(); err != nil {
		t.Fatalf("close checkpoints: %v", err)
	}
	if got := len(partial.Graphs()); got >= len(urls) {
		t.Fatalf("interrupted run crawled all %d pages — the cancellation never bit", got)
	}

	// Run 2: resume, on a different line count than run 1 wrote — the
	// union read over recovered line journals must still replay every
	// journaled page, and the frontier snapshot must be recovered.
	cps2, err := OpenCrawlCheckpoints(context.Background(), ckRoot, true)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(cps2.RecoveredFrontier()); got != len(urls) {
		t.Errorf("recovered frontier has %d URLs, want %d", got, len(urls))
	}
	journaled := cps2.CompletedPages()
	if journaled == 0 {
		t.Fatal("run 1 journaled no pages — the resume test is vacuous")
	}
	mp2 := &MPCrawler{
		NewCrawler: func() *Crawler {
			return New(&fetch.HandlerFetcher{Handler: site.Handler()}, Options{UseHotNode: true, MaxStates: 3})
		},
		ProcLines:   3,
		Partitions:  dirs,
		Checkpoints: cps2,
	}
	res := mp2.Run(context.Background())
	if err := res.Err(); err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if err := cps2.Close(); err != nil {
		t.Fatalf("close resumed checkpoints: %v", err)
	}
	if res.Metrics.Pages != len(urls) {
		t.Fatalf("resumed run has %d pages, want %d", res.Metrics.Pages, len(urls))
	}
	if res.Metrics.PagesResumed != journaled {
		t.Errorf("PagesResumed = %d, want every journaled page (%d) replayed", res.Metrics.PagesResumed, journaled)
	}
	requireSameStateSets(t, base, stateSets(res.Graphs()))
}

// TestSupervisorRestartsFailedPartition pins the supervisor contract: a
// page that fails transiently is requeued to the frontier (metered in
// frontier.requeues) and succeeds on its next attempt; a page that keeps
// failing is reported after MaxRestarts requeues, not retried forever.
func TestSupervisorRestartsFailedPartition(t *testing.T) {
	site, _ := newSiteFetcher(6, 11)
	var urls []string
	for i := 0; i < 4; i++ {
		urls = append(urls, webapp.WatchURL(site.Video(i).ID))
	}
	dirs, err := (&URLPartitioner{PartitionSize: 2, RootDir: t.TempDir()}).Partition(urls)
	if err != nil {
		t.Fatal(err)
	}
	target := urls[2] // first page of partition 2
	inner := &fetch.HandlerFetcher{Handler: site.Handler()}

	// Fail-once: partition 2's first attempt dies under FailFast, its
	// second succeeds.
	var tripped atomic.Bool
	failOnce := fetch.Func(func(ctx context.Context, rawurl string) (*fetch.Response, error) {
		if rawurl == target && tripped.CompareAndSwap(false, true) {
			return nil, fmt.Errorf("fetch %s: connection reset", rawurl)
		}
		return inner.Fetch(ctx, rawurl)
	})
	reg := obs.NewRegistry()
	ctx := obs.With(context.Background(), obs.New(reg, nil))
	mp := &MPCrawler{
		NewCrawler:  func() *Crawler { return New(failOnce, Options{OnError: FailFast, MaxStates: 2}) },
		ProcLines:   2,
		Partitions:  dirs,
		MaxRestarts: 2,
	}
	res := mp.Run(ctx)
	if err := res.Err(); err != nil {
		t.Fatalf("supervisor did not recover the fail-once partition: %v", err)
	}
	if res.Restarts[0] != 0 || res.Restarts[1] != 1 {
		t.Errorf("Restarts = %v, want [0 1]", res.Restarts)
	}
	if got := len(res.Graphs()); got != 4 {
		t.Errorf("crawled %d pages after restart, want 4", got)
	}
	if n := reg.Snapshot().Counters["frontier.requeues"]; n != 1 {
		t.Errorf("frontier.requeues = %d, want 1", n)
	}

	// Always-failing: restarts are bounded.
	alwaysBad := fetch.Func(func(ctx context.Context, rawurl string) (*fetch.Response, error) {
		if rawurl == target {
			return nil, fmt.Errorf("fetch %s: connection reset", rawurl)
		}
		return inner.Fetch(ctx, rawurl)
	})
	reg2 := obs.NewRegistry()
	ctx2 := obs.With(context.Background(), obs.New(reg2, nil))
	mp.NewCrawler = func() *Crawler { return New(alwaysBad, Options{OnError: FailFast, MaxStates: 2}) }
	res2 := mp.Run(ctx2)
	if res2.Errors[1] == nil {
		t.Fatal("always-failing partition reported no error")
	}
	if res2.Restarts[1] != 2 {
		t.Errorf("Restarts[1] = %d, want MaxRestarts=2", res2.Restarts[1])
	}
	if n := reg2.Snapshot().Counters["frontier.requeues"]; n != 2 {
		t.Errorf("frontier.requeues = %d, want 2", n)
	}
	// The healthy sibling partition is untouched by the failures.
	if got := len(res2.GraphsByPartition[0]); got != 2 {
		t.Errorf("healthy partition crawled %d pages, want 2", got)
	}
}

// TestPartitionPanicRecovered pins the panic boundary: a crawler panic
// mid-partition becomes that partition's error (and a restartable
// failure), never a crashed process line.
func TestPartitionPanicRecovered(t *testing.T) {
	site, _ := newSiteFetcher(6, 11)
	var urls []string
	for i := 0; i < 4; i++ {
		urls = append(urls, webapp.WatchURL(site.Video(i).ID))
	}
	dirs, err := (&URLPartitioner{PartitionSize: 2, RootDir: t.TempDir()}).Partition(urls)
	if err != nil {
		t.Fatal(err)
	}
	target := urls[2]
	inner := &fetch.HandlerFetcher{Handler: site.Handler()}
	var panicked atomic.Int32
	panicky := fetch.Func(func(ctx context.Context, rawurl string) (*fetch.Response, error) {
		if rawurl == target {
			panicked.Add(1)
			panic("hostile page blew up the crawler")
		}
		return inner.Fetch(ctx, rawurl)
	})

	// Without restarts the panic surfaces as the partition's error while
	// the sibling completes.
	reg := obs.NewRegistry()
	ctx := obs.With(context.Background(), obs.New(reg, nil))
	mp := &MPCrawler{
		NewCrawler: func() *Crawler { return New(panicky, Options{MaxStates: 2}) },
		ProcLines:  2,
		Partitions: dirs,
	}
	res := mp.Run(ctx)
	if res.Errors[1] == nil || !strings.Contains(res.Errors[1].Error(), "panic") {
		t.Fatalf("Errors[1] = %v, want a recovered panic", res.Errors[1])
	}
	if res.Errors[0] != nil {
		t.Errorf("healthy partition errored: %v", res.Errors[0])
	}
	if got := len(res.GraphsByPartition[0]); got != 2 {
		t.Errorf("healthy partition crawled %d pages, want 2", got)
	}
	if n := reg.Snapshot().Counters["crawl.line.panics"]; n != 1 {
		t.Errorf("crawl.line.panics = %d, want 1", n)
	}

	// With restarts a panic-once partition recovers like any failure.
	panicked.Store(0)
	var once atomic.Bool
	panicOnce := fetch.Func(func(ctx context.Context, rawurl string) (*fetch.Response, error) {
		if rawurl == target && once.CompareAndSwap(false, true) {
			panic("transient panic")
		}
		return inner.Fetch(ctx, rawurl)
	})
	mp.NewCrawler = func() *Crawler { return New(panicOnce, Options{MaxStates: 2}) }
	mp.MaxRestarts = 1
	res2 := mp.Run(obs.With(context.Background(), obs.New(obs.NewRegistry(), nil)))
	if err := res2.Err(); err != nil {
		t.Fatalf("panic-once partition did not recover: %v", err)
	}
	if res2.Restarts[1] != 1 {
		t.Errorf("Restarts[1] = %d, want 1", res2.Restarts[1])
	}
}

// TestWatchdogRestartsStuckPartition wedges a partition's first attempt
// (a fetch that advances the virtual clock past StuckTimeout and then
// blocks forever) and checks the watchdog cancels it with
// ErrPartitionStuck and the supervisor's restart completes the crawl.
func TestWatchdogRestartsStuckPartition(t *testing.T) {
	site, _ := newSiteFetcher(4, 7)
	var urls []string
	for i := 0; i < 2; i++ {
		urls = append(urls, webapp.WatchURL(site.Video(i).ID))
	}
	dirs, err := (&URLPartitioner{PartitionSize: 2, RootDir: t.TempDir()}).Partition(urls)
	if err != nil {
		t.Fatal(err)
	}
	clock := &fetch.VirtualClock{}
	inner := &fetch.HandlerFetcher{Handler: site.Handler()}
	var wedged atomic.Bool
	fetcher := fetch.Func(func(ctx context.Context, rawurl string) (*fetch.Response, error) {
		if wedged.CompareAndSwap(false, true) {
			// Wedge: virtual time races past the watchdog budget while no
			// page completes, then the fetch hangs until canceled.
			clock.Sleep(context.Background(), 5*time.Second)
			<-ctx.Done()
			return nil, ctx.Err()
		}
		return inner.Fetch(ctx, rawurl)
	})
	reg := obs.NewRegistry()
	ctx := obs.With(context.Background(), obs.New(reg, nil))
	mp := &MPCrawler{
		NewCrawler:   func() *Crawler { return New(fetcher, Options{Clock: clock, MaxStates: 2}) },
		ProcLines:    1,
		Partitions:   dirs,
		MaxRestarts:  1,
		StuckTimeout: time.Second,
		Clock:        clock,
	}
	res := mp.Run(ctx)
	if err := res.Err(); err != nil {
		t.Fatalf("watchdog restart did not recover the wedged partition: %v", err)
	}
	if res.Restarts[0] != 1 {
		t.Errorf("Restarts[0] = %d, want 1", res.Restarts[0])
	}
	if got := len(res.Graphs()); got != 2 {
		t.Errorf("crawled %d pages after the watchdog restart, want 2", got)
	}
	snap := reg.Snapshot()
	if snap.Counters["crawl.line.watchdog_trips"] < 1 {
		t.Error("crawl.line.watchdog_trips never incremented")
	}
}

// TestWatchdogReportsStuckWithoutRestarts pins the error shape: with no
// restart budget a wedged partition surfaces ErrPartitionStuck, so an
// operator can tell a hung partition from a Ctrl-C.
func TestWatchdogReportsStuckWithoutRestarts(t *testing.T) {
	site, _ := newSiteFetcher(4, 7)
	urls := []string{webapp.WatchURL(site.Video(0).ID)}
	dirs, err := (&URLPartitioner{PartitionSize: 1, RootDir: t.TempDir()}).Partition(urls)
	if err != nil {
		t.Fatal(err)
	}
	clock := &fetch.VirtualClock{}
	fetcher := fetch.Func(func(ctx context.Context, rawurl string) (*fetch.Response, error) {
		clock.Sleep(context.Background(), 5*time.Second)
		<-ctx.Done()
		return nil, ctx.Err()
	})
	mp := &MPCrawler{
		NewCrawler:   func() *Crawler { return New(fetcher, Options{Clock: clock, MaxStates: 2}) },
		ProcLines:    1,
		Partitions:   dirs,
		StuckTimeout: time.Second,
		Clock:        clock,
	}
	res := mp.Run(context.Background())
	if !errors.Is(res.Errors[0], ErrPartitionStuck) {
		t.Fatalf("Errors[0] = %v, want ErrPartitionStuck", res.Errors[0])
	}
}
