package core

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"ajaxcrawl/internal/browser"
	"ajaxcrawl/internal/fetch"
	"ajaxcrawl/internal/index"
	"ajaxcrawl/internal/query"
	"ajaxcrawl/internal/webapp"
)

// TestCrawlNewsApplication crawls the second synthetic application — a
// news site with expandable sections whose states form a lattice, not a
// chain — proving the crawler is not specialized to the YouTube shape.
func TestCrawlNewsApplication(t *testing.T) {
	news := webapp.NewNews(webapp.NewsConfig{Articles: 4, Seed: 5, Sections: 3})
	f := &fetch.HandlerFetcher{Handler: news.Handler()}

	c := New(f, Options{UseHotNode: true, MaxStates: 16})
	g, _, err := c.CrawlPage(context.Background(), news.ArticleURL(0))
	if err != nil {
		t.Fatal(err)
	}
	// 3 sections + reactions = 4 independent toggles; the lattice has
	// 2^4 = 16 states, all reachable within the budget.
	if g.NumStates() != 16 {
		t.Fatalf("lattice states = %d, want 16", g.NumStates())
	}
	// The fully-expanded state exists: no collapsed controls remain in
	// its text (every "Read section N" and "Reader reactions" control
	// was replaced by content).
	fullyExpanded := false
	for _, s := range g.States {
		if !strings.Contains(s.Text, "Read section") && !strings.Contains(s.Text, "Reader reactions") {
			fullyExpanded = true
			break
		}
	}
	if !fullyExpanded {
		t.Fatalf("fully-expanded lattice state not reached")
	}
	// The deepest states sit 4 clicks from the initial state.
	maxDepth := 0
	for _, s := range g.States {
		if s.Depth > maxDepth {
			maxDepth = s.Depth
		}
	}
	if maxDepth != 4 {
		t.Fatalf("max depth = %d, want 4", maxDepth)
	}
}

// TestNewsTwoHotNodes verifies the thesis's "applications with more than
// one hot node" scenario (§7.3): the news page's XHRs originate from two
// distinct functions, and the cache detects both.
func TestNewsTwoHotNodes(t *testing.T) {
	news := webapp.NewNews(webapp.NewsConfig{Articles: 2, Seed: 5, Sections: 2})
	f := &fetch.HandlerFetcher{Handler: news.Handler()}

	cache := NewHotNodeCache()
	p := browser.NewPage(f)
	p.XHR = cache.Hook()
	if err := p.Load(context.Background(), news.ArticleURL(0)); err != nil {
		t.Fatal(err)
	}
	snap := p.Snapshot()
	for _, which := range []string{"expandSection(0, 0)", "loadReactions(0)"} {
		p.Restore(snap)
		fired := false
		for _, ev := range p.Events(nil) {
			if strings.Contains(ev.Code, which) {
				if _, err := p.Trigger(context.Background(), ev); err != nil {
					t.Fatal(err)
				}
				fired = true
				break
			}
		}
		if !fired {
			t.Fatalf("event %q not found", which)
		}
	}
	want := []string{"fetchInto", "loadReactions"}
	if got := cache.HotNodes(); !reflect.DeepEqual(got, want) {
		t.Fatalf("hot nodes = %v, want %v", got, want)
	}
	// Repeating either event hits the cache.
	p.Restore(snap)
	for _, ev := range p.Events(nil) {
		if strings.Contains(ev.Code, "expandSection(0, 0)") {
			if _, err := p.Trigger(context.Background(), ev); err != nil {
				t.Fatal(err)
			}
			break
		}
	}
	if cache.Hits == 0 {
		t.Fatalf("repeat hot call not served from cache")
	}
}

// TestNewsSearchFindsExpandedContent indexes a news crawl and verifies
// that section text hidden behind expand clicks is retrievable — the
// recall story on the second application.
func TestNewsSearchFindsExpandedContent(t *testing.T) {
	news := webapp.NewNews(webapp.NewsConfig{Articles: 6, Seed: 5, Sections: 3})
	f := &fetch.HandlerFetcher{Handler: news.Handler()}
	c := New(f, Options{UseHotNode: true, MaxStates: 16})

	var urls []string
	for i := 0; i < news.NumArticles(); i++ {
		urls = append(urls, news.ArticleURL(i))
	}
	graphs, _, err := c.CrawlAll(context.Background(), urls)
	if err != nil {
		t.Fatal(err)
	}
	full := query.NewEngine(index.Build(graphs, nil, 0))
	trad := query.NewEngine(index.Build(graphs, nil, 1))

	gain := false
	for _, q := range webapp.Queries()[:20] {
		tn, an := len(trad.Search(q)), len(full.Search(q))
		if an > tn {
			gain = true
		}
		if an < tn {
			t.Fatalf("q=%q: AJAX index lost results (%d < %d)", q, an, tn)
		}
	}
	if !gain {
		t.Fatalf("no recall gain from expanded sections (planting too sparse?)")
	}
}

// TestReplayNewsState reconstructs a lattice state via event replay.
func TestReplayNewsState(t *testing.T) {
	news := webapp.NewNews(webapp.NewsConfig{Articles: 2, Seed: 5, Sections: 2})
	f := &fetch.HandlerFetcher{Handler: news.Handler()}
	c := New(f, Options{UseHotNode: true, MaxStates: 8})
	g, _, err := c.CrawlPage(context.Background(), news.ArticleURL(1))
	if err != nil {
		t.Fatal(err)
	}
	target := g.States[g.NumStates()-1]
	path := g.PathTo(target.ID)
	if path == nil {
		t.Fatalf("deepest state unreachable")
	}
	doc, err := ReplayPath(context.Background(), f, g.URL, path)
	if err != nil {
		t.Fatal(err)
	}
	if dom2 := doc.VisibleText(); dom2 == "" {
		t.Fatalf("empty replayed document")
	}
}
