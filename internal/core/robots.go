package core

import (
	"context"
	"sort"
	"strconv"
	"strings"

	"ajaxcrawl/internal/fetch"
)

// This file implements the thesis's §4.3 prediction: "we predict that in
// the future, AJAX Web Sites will provide a robots.txt file with
// information on the possible granularity of search on their pages."
//
// The convention implemented here is a /robots-ajax.txt file of lines
//
//	ajax-states <path-prefix> <max-states>
//
// e.g.
//
//	# how deep AJAX crawlers should expand application states
//	ajax-states /watch 5
//	ajax-states / 11
//
// The longest matching prefix wins. A cooperating crawler caps its
// per-page state budget at the advertised granularity.

// AjaxRobots holds the parsed granularity rules of one site.
type AjaxRobots struct {
	rules []ajaxRule // sorted by decreasing prefix length
}

type ajaxRule struct {
	prefix    string
	maxStates int
}

// ParseAjaxRobots parses robots-ajax.txt content. Unknown directives and
// malformed lines are ignored, as robots parsers do.
func ParseAjaxRobots(content string) *AjaxRobots {
	r := &AjaxRobots{}
	for _, line := range strings.Split(content, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 || fields[0] != "ajax-states" {
			continue
		}
		n, err := strconv.Atoi(fields[2])
		if err != nil || n < 1 {
			continue
		}
		r.rules = append(r.rules, ajaxRule{prefix: fields[1], maxStates: n})
	}
	sort.SliceStable(r.rules, func(i, j int) bool {
		return len(r.rules[i].prefix) > len(r.rules[j].prefix)
	})
	return r
}

// FetchAjaxRobots retrieves and parses /robots-ajax.txt. A missing file
// yields a nil AjaxRobots (no limits), not an error.
func FetchAjaxRobots(ctx context.Context, f fetch.Fetcher) (*AjaxRobots, error) {
	resp, err := f.Fetch(ctx, "/robots-ajax.txt")
	if err != nil || resp.Status != 200 {
		return nil, nil //nolint:nilerr // absent file means no policy
	}
	return ParseAjaxRobots(string(resp.Body)), nil
}

// MaxStates returns the advertised state granularity for a URL path, or 0
// when no rule matches (no limit advertised).
func (r *AjaxRobots) MaxStates(url string) int {
	if r == nil {
		return 0
	}
	path := url
	if i := strings.Index(path, "://"); i >= 0 {
		path = path[i+3:]
		if j := strings.IndexByte(path, '/'); j >= 0 {
			path = path[j:]
		} else {
			path = "/"
		}
	}
	if i := strings.IndexByte(path, '?'); i >= 0 {
		path = path[:i]
	}
	for _, rule := range r.rules {
		if strings.HasPrefix(path, rule.prefix) {
			return rule.maxStates
		}
	}
	return 0
}

// NumRules returns the number of parsed rules.
func (r *AjaxRobots) NumRules() int {
	if r == nil {
		return 0
	}
	return len(r.rules)
}

// ApplyTo caps crawl options at the granularity advertised for a URL:
// the effective MaxStates is the smaller of the crawler's own budget and
// the site's advertised one.
func (r *AjaxRobots) ApplyTo(opts Options, url string) Options {
	limit := r.MaxStates(url)
	if limit == 0 {
		return opts
	}
	effective := opts.withDefaults()
	if limit < effective.MaxStates {
		effective.MaxStates = limit
	}
	return effective
}
