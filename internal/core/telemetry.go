package core

import (
	"reflect"
	"strings"
	"time"
	"unicode"

	"ajaxcrawl/internal/obs"
)

// publishPageMetrics folds every numeric field of a finished page's
// PageMetrics into the registry, named crawl.page.<snake_case_field>
// (durations get an _ns suffix and are recorded in nanoseconds). Walking
// the struct by reflection means a newly added PageMetrics counter is
// exported automatically — the registry cannot drift behind the summary
// API, the same invariant the Metrics reflection test pins for Add/Merge.
func publishPageMetrics(tel *obs.Telemetry, pm PageMetrics) {
	if tel == nil {
		return
	}
	durT := reflect.TypeOf(time.Duration(0))
	v := reflect.ValueOf(pm)
	t := v.Type()
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		fv := v.Field(i)
		switch fv.Kind() {
		case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
			name := "crawl.page." + snakeCase(f.Name)
			if f.Type == durT {
				name += "_ns"
			}
			tel.Counter(name).Add(fv.Int())
		}
	}
}

// snakeCase converts a Go exported field name to snake_case, keeping
// acronym runs together: XHRSends -> xhr_sends, URL -> url.
func snakeCase(s string) string {
	var b strings.Builder
	runes := []rune(s)
	for i, r := range runes {
		if unicode.IsUpper(r) {
			prevLower := i > 0 && unicode.IsLower(runes[i-1])
			nextLower := i+1 < len(runes) && unicode.IsLower(runes[i+1])
			if i > 0 && (prevLower || nextLower) {
				b.WriteByte('_')
			}
			r = unicode.ToLower(r)
		}
		b.WriteRune(r)
	}
	return b.String()
}
