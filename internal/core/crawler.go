// Package core implements the paper's primary contribution: the AJAX
// crawler. It contains
//
//   - the breadth-first crawling algorithm of chapter 3 (Alg. 3.1.1),
//     which triggers every user event, detects DOM changes, deduplicates
//     states by canonical hash, and rolls back between events;
//   - the heuristic hot-node crawling policy of chapter 4 (Alg. 4.2.1),
//     which intercepts XMLHttpRequest sends, keys them by the topmost
//     executing user function and its actual arguments, and serves
//     repeats from a cache instead of the network;
//   - the precrawling phase (hyperlink graph + PageRank) and URL
//     partitioner of chapter 6;
//   - the multi-process-line parallel crawler of chapter 6.
package core

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"

	"ajaxcrawl/internal/browser"
	"ajaxcrawl/internal/dom"
	"ajaxcrawl/internal/fetch"
	"ajaxcrawl/internal/lsh"
	"ajaxcrawl/internal/model"
	"ajaxcrawl/internal/obs"
	"ajaxcrawl/internal/shingle"
)

// ErrorPolicy decides what CrawlAll does when one page's crawl fails.
type ErrorPolicy int

const (
	// SkipAndCount (the default) skips the failed page, increments
	// Metrics.PagesFailed, and continues with the next URL — one bad
	// page cannot sink a partition.
	SkipAndCount ErrorPolicy = iota
	// FailFast aborts the multi-page crawl on the first page error,
	// returning the graphs crawled so far alongside the error.
	FailFast
)

// Options configure a crawl. The zero value is usable: AJAX crawling with
// hot-node detection, the thesis's default limits.
type Options struct {
	// Traditional disables JavaScript entirely: only the initial state
	// is read, like a classical crawler (TRADITIONAL_CRAWLING).
	Traditional bool
	// UseHotNode enables the heuristic caching policy (USE_DEBUGGER).
	// Ignored for traditional crawls.
	UseHotNode bool
	// MaxStates caps the states crawled per page, counting the initial
	// one. The thesis crawls 10 additional comment pages, i.e. 11.
	MaxStates int
	// MaxEventsPerState caps the events invoked per state — the defense
	// against very granular events (§3.2). 0 means unlimited.
	MaxEventsPerState int
	// EventTypes restricts which handler attributes fire. nil means
	// browser.EventTypes (click, dblclick, mouseover, mousedown).
	EventTypes []string
	// PriorProfile, when set, enables repetitive crawling (thesis ch. 10
	// future work): events recorded as unproductive in a previous
	// session are skipped.
	PriorProfile *CrawlProfile
	// RecordProfile, when set, receives this session's event outcomes
	// for use as a later session's PriorProfile.
	RecordProfile *CrawlProfile
	// StateFilter, when set, enables focused crawling (§7.2.2): states
	// whose visible text fails the filter are recorded but not expanded
	// further, restricting the crawl to relevant content.
	StateFilter func(text string) bool
	// FormProbes, when non-empty, enables form crawling (thesis ch. 10
	// future work): every text input with a reactive handler is filled
	// with each probe value and its handler fired, exploring
	// Google-Suggest-style AJAX states.
	FormProbes []string
	// NearDupThreshold, when in (0, 1], merges states whose MinHash
	// text similarity to an existing state is >= the threshold — the
	// defense against challenge #3 of the thesis introduction ("very
	// granular events ... a large set of very similar states"). 0.9 is
	// a reasonable setting; 0 disables near-duplicate merging.
	NearDupThreshold float64
	// NearDupBands controls how near-dup candidates are found. 0 (the
	// default) probes a banded LSH index whose band count is derived
	// from NearDupThreshold by lsh.ParamsFor — the recall-preserving
	// layout, guaranteed to surface every state the linear scan would
	// merge. -1 disables the index and scans every admitted signature
	// linearly (the benchmark baseline). A positive value forces that
	// many bands; below the ParamsFor bound this is ordinary
	// probabilistic LSH and may miss merges (see DESIGN.md §5h).
	NearDupBands int
	// Sketch selects the near-dup signature family: SketchMinHash (the
	// default, 64 permutations) or SketchSimHash (one 64-bit
	// random-projection fingerprint widened to 16 chunks — cheaper to
	// compute, coarser similarity estimates).
	Sketch SketchKind
	// Clock measures crawl time (virtual in benchmarks). nil = wall.
	Clock fetch.Clock
	// PageTimeout is the per-page crawl budget: CrawlPage derives a
	// context.WithTimeout from its caller's context, so one slow page
	// (network or script) is cut off without aborting the crawl.
	// 0 means no per-page deadline.
	PageTimeout time.Duration
	// OnError selects how CrawlAll treats a failed page. The zero
	// value is SkipAndCount.
	OnError ErrorPolicy
	// JSStepBudget caps interpreter steps per event handler (0 = the
	// interpreter's default of 10M). Runaway scripts — a hostile
	// while(true) — are preempted at the budget and recorded as
	// handler errors instead of hanging the process line.
	JSStepBudget int
	// RetryPolicy, when non-nil, wraps the crawler's fetcher in a
	// fetch.RetryFetcher so transient fetch failures (including the
	// browser's XHR subresource fetches) are retried with exponential
	// backoff + full jitter instead of failing the page. Backoff sleeps
	// run on Clock, so virtual-clock crawls retry for free.
	RetryPolicy *fetch.RetryPolicy
	// BreakerConfig, when non-nil, wraps the crawler's fetcher in a
	// per-host fetch.Breaker that sheds load from dying hosts. It sits
	// under the RetryFetcher, so an open circuit fails a fetch fast
	// instead of burning retry attempts against it.
	BreakerConfig *fetch.BreakerConfig
	// Checkpoint, when non-nil, makes the crawl crash-tolerant: CrawlAll
	// journals every completed page through it, skips pages it already
	// holds (counting them in Metrics.PagesResumed instead of
	// re-crawling), and crawlDynamic journals mid-page progress
	// (admitted state hashes, hot-node cache fills). A checkpoint write
	// failure fails the crawl — a page must never be reported crawled
	// without being durably journaled.
	Checkpoint Checkpointer
	// OnPage, when non-nil, is invoked after every page attempt in
	// CrawlAll — crawled, failed-and-skipped, or resumed from the
	// checkpoint — with that page's metrics. The partition supervisor
	// uses it as the stuck-partition heartbeat; tests use it to script
	// mid-crawl cancellation points.
	OnPage func(pm PageMetrics)
}

func (o Options) withDefaults() Options {
	if o.MaxStates == 0 {
		o.MaxStates = 11
	}
	if o.Clock == nil {
		o.Clock = fetch.RealClock{}
	}
	if o.Sketch == "" {
		o.Sketch = SketchMinHash
	}
	return o
}

// SketchKind names a near-dup signature family (see Options.Sketch).
type SketchKind string

const (
	SketchMinHash SketchKind = "minhash"
	SketchSimHash SketchKind = "simhash"
)

// sketcher resolves the kind to its token→Signature function and the
// signature length it produces (the LSH index and the checkpoint sig
// cache are keyed to that length).
func (k SketchKind) sketcher() (func(tokens []string) shingle.Signature, int, error) {
	switch k {
	case "", SketchMinHash:
		return shingle.Sketch, shingle.DefaultSignatureSize, nil
	case SketchSimHash:
		return shingle.SimHashSketch, shingle.SimHashSignatureSize, nil
	default:
		return nil, 0, fmt.Errorf("core: unknown sketch kind %q (want %q or %q)", k, SketchMinHash, SketchSimHash)
	}
}

// PageMetrics reports what crawling one page cost — the per-page rows of
// the evaluation chapter.
type PageMetrics struct {
	URL             string
	States          int
	Transitions     int
	EventsTriggered int
	// NetworkEvents counts triggered events that caused at least one
	// real network call (Table 7.1's "events leading to network
	// communication").
	NetworkEvents int
	// XHRSends counts all XMLHttpRequest sends, intercepted or not.
	XHRSends int
	// NetworkCalls counts XHR sends that actually hit the network.
	NetworkCalls int
	// HotNodeHits counts sends served from the hot-node cache.
	HotNodeHits int
	// HandlerErrors counts events whose handler raised an error.
	HandlerErrors int
	// EventsSkipped counts events pruned by the repetitive-crawl profile.
	EventsSkipped int
	// StatesPruned counts states not expanded by the focused-crawl filter.
	StatesPruned int
	// NearDupMerges counts states folded into an existing near-duplicate.
	NearDupMerges int
	// NearDupProbes counts LSH band-bucket lookups made while admitting
	// this page's states (0 on the brute-force path, which has no index).
	NearDupProbes int
	// NearDupCandidates counts exact Similarity verifications — the
	// "similarity work" the LSH index exists to shrink. On the
	// brute-force path this is every signature comparison of the linear
	// scan; on the indexed path, only bucket-collision candidates.
	NearDupCandidates int
	// NearDupFalsePositives counts indexed candidates that failed exact
	// verification — the price of banding, bounded but never a wrong
	// merge.
	NearDupFalsePositives int
	// Retries counts fetch attempts beyond the first made while crawling
	// this page (attributed through fetch.FindRetryStats, like
	// NetworkTime through fetch.FindStats).
	Retries int
	// BreakerOpens counts circuit-breaker open transitions observed
	// while crawling this page.
	BreakerOpens int
	// PagesRecovered is 1 when the page crawl succeeded but needed at
	// least one retry — a page that a retry-less crawl would have lost.
	PagesRecovered int
	CrawlTime      time.Duration
	// NetworkTime is the simulated/observed time spent in the fetcher,
	// when the crawler's fetcher is instrumented (else 0).
	NetworkTime time.Duration
}

// Metrics aggregates a multi-page crawl.
//
// Invariant (pinned by a reflection test): every numeric field of
// PageMetrics has a same-named field here, Add folds each of them, and
// Merge folds every numeric field of Metrics — so a newly added counter
// cannot be silently dropped by the aggregation.
type Metrics struct {
	Pages int
	// PagesFailed counts pages skipped under the SkipAndCount error
	// policy (their graphs are not in the result).
	PagesFailed int
	// PagesResumed counts pages served from the checkpoint journal
	// instead of being re-crawled (their journaled graphs and metrics
	// are in the result, so the aggregate matches an uninterrupted run).
	PagesResumed          int
	States                int
	Transitions           int
	EventsTriggered       int
	NetworkEvents         int
	XHRSends              int
	NetworkCalls          int
	HotNodeHits           int
	HandlerErrors         int
	EventsSkipped         int
	StatesPruned          int
	NearDupMerges         int
	NearDupProbes         int
	NearDupCandidates     int
	NearDupFalsePositives int
	Retries               int
	BreakerOpens          int
	PagesRecovered        int
	CrawlTime             time.Duration
	NetworkTime           time.Duration
	PerPage               []PageMetrics
}

// Add folds a page's metrics into the aggregate.
func (m *Metrics) Add(pm PageMetrics) {
	m.Pages++
	m.States += pm.States
	m.Transitions += pm.Transitions
	m.EventsTriggered += pm.EventsTriggered
	m.NetworkEvents += pm.NetworkEvents
	m.XHRSends += pm.XHRSends
	m.NetworkCalls += pm.NetworkCalls
	m.HotNodeHits += pm.HotNodeHits
	m.HandlerErrors += pm.HandlerErrors
	m.EventsSkipped += pm.EventsSkipped
	m.StatesPruned += pm.StatesPruned
	m.NearDupMerges += pm.NearDupMerges
	m.NearDupProbes += pm.NearDupProbes
	m.NearDupCandidates += pm.NearDupCandidates
	m.NearDupFalsePositives += pm.NearDupFalsePositives
	m.Retries += pm.Retries
	m.BreakerOpens += pm.BreakerOpens
	m.PagesRecovered += pm.PagesRecovered
	m.CrawlTime += pm.CrawlTime
	m.NetworkTime += pm.NetworkTime
	m.PerPage = append(m.PerPage, pm)
}

// Merge folds another aggregate into m (used by the parallel crawler).
func (m *Metrics) Merge(o *Metrics) {
	m.Pages += o.Pages
	m.PagesFailed += o.PagesFailed
	m.PagesResumed += o.PagesResumed
	m.States += o.States
	m.Transitions += o.Transitions
	m.EventsTriggered += o.EventsTriggered
	m.NetworkEvents += o.NetworkEvents
	m.XHRSends += o.XHRSends
	m.NetworkCalls += o.NetworkCalls
	m.HotNodeHits += o.HotNodeHits
	m.HandlerErrors += o.HandlerErrors
	m.EventsSkipped += o.EventsSkipped
	m.StatesPruned += o.StatesPruned
	m.NearDupMerges += o.NearDupMerges
	m.NearDupProbes += o.NearDupProbes
	m.NearDupCandidates += o.NearDupCandidates
	m.NearDupFalsePositives += o.NearDupFalsePositives
	m.Retries += o.Retries
	m.BreakerOpens += o.BreakerOpens
	m.PagesRecovered += o.PagesRecovered
	m.CrawlTime += o.CrawlTime
	m.NetworkTime += o.NetworkTime
	m.PerPage = append(m.PerPage, o.PerPage...)
}

// Crawler crawls AJAX pages into transition graphs.
type Crawler struct {
	Fetcher fetch.Fetcher
	Opts    Options
}

// New returns a crawler over the given fetcher. When Options carries a
// BreakerConfig and/or RetryPolicy, the fetcher is wrapped accordingly
// (retry outermost, breaker inside it, both on Options.Clock) — every
// crawler built by an MPCrawler factory then gets its own breaker state,
// which is what keeps one process line's tripped circuit from shedding
// load for its siblings.
func New(fetcher fetch.Fetcher, opts Options) *Crawler {
	opts = opts.withDefaults()
	if opts.BreakerConfig != nil {
		fetcher = fetch.NewBreaker(fetcher, *opts.BreakerConfig, opts.Clock)
	}
	if opts.RetryPolicy != nil {
		fetcher = fetch.NewRetryFetcher(fetcher, *opts.RetryPolicy, opts.Clock)
	}
	return &Crawler{Fetcher: fetcher, Opts: opts}
}

// CrawlPage builds the AJAX page model for one URL (Alg. 3.1.1 /
// Alg. 4.2.1 depending on Opts.UseHotNode). When Opts.PageTimeout is
// set, the whole page crawl — fetches, script execution, event
// dispatch — runs under a derived deadline; on expiry the partial graph
// built so far is returned alongside the context error.
func (c *Crawler) CrawlPage(ctx context.Context, url string) (*model.Graph, PageMetrics, error) {
	opts := c.Opts.withDefaults()
	if opts.PageTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.PageTimeout)
		defer cancel()
	}
	tel := obs.From(ctx)
	ctx, sp := obs.StartSpan(ctx, obs.SpanPageCrawl, obs.A("url", url))
	tel.Gauge("crawl.pages.inflight").Add(1)
	defer tel.Gauge("crawl.pages.inflight").Add(-1)
	pm := PageMetrics{URL: url}
	start := opts.Clock.Now()
	wallStart := time.Now()
	var netStart time.Duration
	stats := fetch.FindStats(c.Fetcher)
	if stats != nil {
		netStart = stats.Stats().NetworkTime
	}
	var retryStart int64
	rstats := fetch.FindRetryStats(c.Fetcher)
	if rstats != nil {
		retryStart = rstats.RetryStats().Retries
	}
	var opensStart int64
	bstats := fetch.FindBreakerStats(c.Fetcher)
	if bstats != nil {
		opensStart = bstats.BreakerStats().Opens
	}

	graph := model.NewGraph(url)
	page := browser.NewPage(c.Fetcher)
	page.MaxJSSteps = opts.JSStepBudget

	var crawlErr error
	if opts.Traditional {
		// Traditional crawling: read the document, JavaScript disabled.
		crawlErr = page.LoadStatic(ctx, url)
		if crawlErr == nil {
			graph.AddState(page.Hash(), page.Doc.VisibleText(), 0)
		}
	} else {
		crawlErr = c.crawlDynamic(ctx, page, graph, url, opts, &pm)
	}

	pm.States = graph.NumStates()
	pm.Transitions = len(graph.Transitions)
	pm.CrawlTime = opts.Clock.Now().Sub(start)
	if _, real := opts.Clock.(fetch.RealClock); !real {
		// Under a virtual clock only simulated network delays advance
		// Clock; the wall time spent is pure processing (JS execution,
		// DOM work, model maintenance) and is charged on top, so
		// CrawlTime models a real run with the simulated latencies.
		pm.CrawlTime += time.Since(wallStart)
	}
	if stats != nil {
		pm.NetworkTime = stats.Stats().NetworkTime - netStart
	}
	if rstats != nil {
		pm.Retries = int(rstats.RetryStats().Retries - retryStart)
	}
	if bstats != nil {
		pm.BreakerOpens = int(bstats.BreakerStats().Opens - opensStart)
	}
	if crawlErr == nil && pm.Retries > 0 {
		// The page made it, but only because the retry layer recovered
		// at least one fetch along the way.
		pm.PagesRecovered = 1
	}
	// Close the span whatever happened — a PageTimeout abort still emits
	// the page.crawl record, carrying the context error and the partial
	// state count. The per-page counters fold into the registry here too,
	// so the registry and the Metrics summary cannot drift.
	sp.SetAttr("states", strconv.Itoa(pm.States))
	sp.End(crawlErr)
	tel.Histogram("crawl.page.latency").Observe(pm.CrawlTime.Seconds())
	publishPageMetrics(tel, pm)
	if crawlErr != nil {
		if graph.NumStates() == 0 {
			graph = nil
		}
		return graph, pm, crawlErr
	}
	return graph, pm, nil
}

// crawlDynamic is the breadth-first event-driven crawl. Cancellation is
// checked between events, so a canceled context stops the crawl within
// one event dispatch (itself bounded by the JS step budget).
func (c *Crawler) crawlDynamic(ctx context.Context, page *browser.Page, graph *model.Graph, url string, opts Options, pm *PageMetrics) error {
	var hot *HotNodeCache
	if opts.UseHotNode {
		hot = NewHotNodeCache()
		if cp := opts.Checkpoint; cp != nil {
			// Re-crawling a page that a crash interrupted: seed the
			// cache with the journaled fills, so hot calls the previous
			// attempt already paid for skip the network again, and
			// journal fresh fills as they happen. Mid-page records are
			// buffered (flushed with the page frame), so errors here
			// surface at PageDone rather than per fill.
			hot.Seed(cp.HotEntries(url))
			hot.Observer = func(key, body string) { _ = cp.HotNode(url, key, body) }
		}
		page.XHR = hot.Hook()
	}

	// init(url): read document, run onload, record the initial state.
	if err := page.Load(ctx, url); err != nil {
		return err
	}
	if err := page.RunOnLoad(ctx); err != nil {
		if ctxAbort(ctx, err) {
			return err
		}
		// Broken onload is logged as a handler error, not fatal: the
		// initial DOM is still crawlable.
		pm.HandlerErrors++
	}
	tel := obs.From(ctx)
	admit, err := newStateAdmitter(graph, opts, pm, tel)
	if err != nil {
		return err
	}
	if cp := opts.Checkpoint; cp != nil {
		admit.journal = func(h dom.Hash) { _ = cp.StateAdmitted(url, h) }
		admit.journalSig = func(h dom.Hash, sig shingle.Signature) { _ = cp.StateSig(url, h, sig) }
		admit.seedSigs(cp.StateSigs(url))
	}
	initial, _ := admit.state(page.Hash(), page.Doc.VisibleText(), 0)
	graph.Initial = initial

	snapshots := map[model.StateID]*browser.Snapshot{initial: page.Snapshot()}
	queue := []model.StateID{initial}

	for len(queue) > 0 && graph.NumStates() < opts.MaxStates {
		if err := ctx.Err(); err != nil {
			return err
		}
		cur := queue[0]
		queue = queue[1:]
		snap := snapshots[cur]
		curState := graph.State(cur)

		page.Restore(snap)
		events := page.Events(opts.EventTypes)
		if opts.MaxEventsPerState > 0 && len(events) > opts.MaxEventsPerState {
			events = events[:opts.MaxEventsPerState]
		}
		formEvents := page.FormEvents()
		for _, ev := range events {
			if err := ctx.Err(); err != nil {
				return err
			}
			if graph.NumStates() >= opts.MaxStates {
				break
			}
			// Repetitive crawling: skip events a prior session proved
			// unproductive.
			if opts.PriorProfile.ShouldSkip(url, ev) {
				pm.EventsSkipped++
				continue
			}
			// Rollback: every event fires from state `cur`.
			page.Restore(snap)
			sendsBefore, netBefore := page.XHRSends, page.NetworkCalls
			changed, err := page.Trigger(ctx, ev)
			pm.EventsTriggered++
			tel.Counter("crawl.events.triggered").Inc()
			pm.XHRSends += page.XHRSends - sendsBefore
			pm.NetworkCalls += page.NetworkCalls - netBefore
			if page.NetworkCalls > netBefore {
				pm.NetworkEvents++
			}
			if err != nil {
				if ctxAbort(ctx, err) {
					return err
				}
				// A handler preempted by the JS step budget lands here
				// too: it is a property of the page, not the crawl.
				pm.HandlerErrors++
				if opts.RecordProfile != nil {
					opts.RecordProfile.record(url, ev, OutcomeError)
				}
				continue
			}
			if !changed {
				if opts.RecordProfile != nil {
					opts.RecordProfile.record(url, ev, OutcomeNoChange)
				}
				continue
			}
			text := page.Doc.VisibleText()
			newID, isNew := admit.state(page.Hash(), text, curState.Depth+1)
			graph.AddTransition(&model.Transition{
				From:       cur,
				To:         newID,
				Source:     sourceName(ev),
				Event:      ev.Type,
				Code:       ev.Code,
				SourcePath: ev.Path,
				Targets:    diffTargets(snap, page),
				Action:     "innerHTML",
			})
			if opts.RecordProfile != nil {
				outcome := OutcomeDuplicate
				if isNew {
					outcome = OutcomeNewState
				}
				opts.RecordProfile.record(url, ev, outcome)
			}
			if isNew {
				// Focused crawling: irrelevant states are kept in the
				// model but not expanded.
				if opts.StateFilter != nil && !opts.StateFilter(text) {
					pm.StatesPruned++
					continue
				}
				snapshots[newID] = page.Snapshot()
				queue = append(queue, newID)
			}
		}
		// Form crawling: probe every reactive input with each value.
		for _, fev := range formEvents {
			if len(opts.FormProbes) == 0 || graph.NumStates() >= opts.MaxStates {
				break
			}
			for _, probe := range opts.FormProbes {
				if err := ctx.Err(); err != nil {
					return err
				}
				if graph.NumStates() >= opts.MaxStates {
					break
				}
				page.Restore(snap)
				netBefore := page.NetworkCalls
				changed, err := page.TriggerWithValue(ctx, fev, probe)
				pm.EventsTriggered++
				tel.Counter("crawl.events.triggered").Inc()
				if page.NetworkCalls > netBefore {
					pm.NetworkEvents++
					pm.NetworkCalls += page.NetworkCalls - netBefore
				}
				if err != nil {
					if ctxAbort(ctx, err) {
						return err
					}
					pm.HandlerErrors++
					continue
				}
				if !changed {
					continue
				}
				newID, isNew := admit.state(page.Hash(), page.Doc.VisibleText(), curState.Depth+1)
				graph.AddTransition(&model.Transition{
					From:       cur,
					To:         newID,
					Source:     sourceName(fev.Event),
					Event:      fev.Type,
					Code:       fev.Code,
					SourcePath: fev.Path,
					Targets:    diffTargets(snap, page),
					Action:     "innerHTML",
					Probe:      probe,
				})
				if isNew {
					snapshots[newID] = page.Snapshot()
					queue = append(queue, newID)
				}
			}
		}
	}

	if hot != nil {
		pm.HotNodeHits += hot.Hits
	}
	return nil
}

// ctxAbort reports whether err means the crawl's own context ended —
// those errors abort the page instead of being counted as handler
// errors (the page did nothing wrong; the budget ran out).
func ctxAbort(ctx context.Context, err error) bool {
	return ctx.Err() != nil &&
		(errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded))
}

func sourceName(ev browser.Event) string {
	if ev.ID != "" {
		return ev.ID
	}
	return ev.Path
}

// diffTargets returns the ids of the shallowest identified elements whose
// content differs between the pre-event snapshot and the current DOM —
// the transition's target annotation (Table 2.1).
func diffTargets(snap *browser.Snapshot, page *browser.Page) []string {
	oldDoc := snap.Doc()
	if oldDoc == nil {
		return nil
	}
	oldByID := map[string]dom.Hash{}
	oldDoc.Walk(func(n *dom.Node) bool {
		if n.Type == dom.ElementNode && n.ID() != "" {
			oldByID[n.ID()] = dom.CanonicalHash(n)
		}
		return true
	})
	var targets []string
	var walk func(n *dom.Node, insideChanged bool)
	walk = func(n *dom.Node, insideChanged bool) {
		changedHere := false
		if n.Type == dom.ElementNode && n.ID() != "" && !insideChanged {
			if oldHash, ok := oldByID[n.ID()]; ok && oldHash != dom.CanonicalHash(n) {
				targets = append(targets, n.ID())
				changedHere = true
			}
		}
		for c := n.FirstChild; c != nil; c = c.NextSibling {
			walk(c, insideChanged || changedHere)
		}
	}
	walk(page.Doc, false)
	return targets
}

// CrawlAll crawls a list of URLs sequentially, returning the graphs and
// aggregate metrics. Under the default SkipAndCount policy, pages whose
// crawl fails are skipped and counted in Metrics.PagesFailed; with
// FailFast the first page error aborts the run. Either way the graphs
// crawled so far are returned. Cancellation of ctx always stops the run
// promptly — within one page budget — with the partial graphs intact.
//
// With Options.Checkpoint set, each completed page is durably journaled
// before the next one starts, and pages the journal already holds are
// served from it (folded into the result with their journaled metrics,
// counted in Metrics.PagesResumed) instead of being re-crawled — the
// resume half of the crash-tolerance contract.
func (c *Crawler) CrawlAll(ctx context.Context, urls []string) ([]*model.Graph, *Metrics, error) {
	var graphs []*model.Graph
	metrics := &Metrics{}
	tel := obs.From(ctx)
	cp := c.Opts.Checkpoint
	for _, u := range urls {
		if err := ctx.Err(); err != nil {
			return graphs, metrics, err
		}
		if cp != nil {
			if g, pm, ok := cp.Completed(u); ok {
				graphs = append(graphs, g)
				metrics.Add(pm)
				metrics.PagesResumed++
				tel.Counter("crawl.partition.resumed_pages").Inc()
				if c.Opts.OnPage != nil {
					c.Opts.OnPage(pm)
				}
				continue
			}
		}
		g, pm, err := c.CrawlPage(ctx, u)
		tel.Counter("crawl.pages").Inc()
		if c.Opts.OnPage != nil {
			c.Opts.OnPage(pm)
		}
		if err != nil {
			// The caller's context ending is never a page failure: stop
			// and hand back what is already crawled. A page that blew
			// only its own PageTimeout falls through to the policy.
			if ctx.Err() != nil {
				return graphs, metrics, ctx.Err()
			}
			if c.Opts.OnError == FailFast {
				return graphs, metrics, fmt.Errorf("core: crawl %s: %w", u, err)
			}
			metrics.PagesFailed++
			tel.Counter("crawl.pages.failed").Inc()
			continue
		}
		graphs = append(graphs, g)
		metrics.Add(pm)
		if cp != nil {
			// Journal before moving on: once the next page starts, this
			// one must already be durable. A write failure here is a
			// broken journal, not a broken page — fail the crawl so the
			// operator never resumes from a journal missing pages the
			// run reported crawled.
			if jerr := cp.PageDone(u, g, pm); jerr != nil {
				return graphs, metrics, fmt.Errorf("core: checkpoint %s: %w", u, jerr)
			}
		}
	}
	return graphs, metrics, nil
}

// stateAdmitter decides whether a crawled DOM is a genuinely new state:
// exact-hash duplicates collapse as always (Alg. 3.1.1), and — when a
// NearDupThreshold is set — states whose sketch similarity to an
// existing state reaches the threshold are merged into it.
//
// Candidate discovery is either a banded LSH index probe (the default;
// see internal/lsh) or a linear scan over admission order (NearDupBands
// = -1, the benchmark baseline). Both paths verify candidates with the
// exact Signature.Similarity in ascending-StateID order and merge into
// the first match, so the merge target is deterministically the lowest
// matching StateID and — with the recall-preserving band layout — both
// paths produce identical models.
type stateAdmitter struct {
	graph     *model.Graph
	threshold float64
	pm        *PageMetrics
	tel       *obs.Telemetry
	sketch    func(tokens []string) shingle.Signature
	sigLen    int
	index     *lsh.Index // nil on the brute-force path
	order     []model.StateID
	sigs      map[model.StateID]shingle.Signature
	// sigCache holds journaled hash→signature pairs from an interrupted
	// attempt at this page, so a resumed re-crawl skips re-sketching the
	// states it already saw.
	sigCache map[dom.Hash]shingle.Signature
	// journal, when set, receives every newly admitted state hash — the
	// checkpoint journal's mid-page progress trail. journalSig likewise
	// records the admitted state's signature so a resume can rebuild the
	// near-dup index without re-sketching.
	journal    func(h dom.Hash)
	journalSig func(h dom.Hash, sig shingle.Signature)
}

func newStateAdmitter(graph *model.Graph, opts Options, pm *PageMetrics, tel *obs.Telemetry) (*stateAdmitter, error) {
	a := &stateAdmitter{graph: graph, threshold: opts.NearDupThreshold, pm: pm, tel: tel}
	if a.threshold <= 0 {
		return a, nil
	}
	sketch, sigLen, err := opts.Sketch.sketcher()
	if err != nil {
		return nil, err
	}
	a.sketch, a.sigLen = sketch, sigLen
	a.sigs = make(map[model.StateID]shingle.Signature)
	switch {
	case opts.NearDupBands < 0:
		// Brute force: no index, linear scan over a.order.
	case opts.NearDupBands == 0:
		a.index = lsh.New(a.threshold, sigLen)
	default:
		a.index = lsh.NewWithParams(lsh.Params{Bands: opts.NearDupBands}, sigLen)
	}
	return a, nil
}

// seedSigs primes the sketch cache with journaled signatures from an
// interrupted attempt. Entries of the wrong length (the sketch kind
// changed between runs) are ignored — the state is simply re-sketched.
func (a *stateAdmitter) seedSigs(sigs map[dom.Hash]shingle.Signature) {
	if a.threshold <= 0 || len(sigs) == 0 {
		return
	}
	for h, sig := range sigs {
		if len(sig) != a.sigLen {
			continue
		}
		if a.sigCache == nil {
			a.sigCache = make(map[dom.Hash]shingle.Signature, len(sigs))
		}
		a.sigCache[h] = sig
	}
}

// state admits (or merges) a candidate state and returns its ID. The
// live registry counters here track discovery as it happens (the
// per-page totals fold in only at page end).
func (a *stateAdmitter) state(h dom.Hash, text string, depth int) (model.StateID, bool) {
	if id, ok := a.graph.FindByHash(h); ok {
		a.tel.Counter("crawl.states.deduped").Inc()
		return id, false
	}
	if a.threshold <= 0 {
		id, isNew := a.graph.AddState(h, text, depth)
		if isNew {
			a.tel.Counter("crawl.states.discovered").Inc()
			if a.journal != nil {
				a.journal(h)
			}
		}
		return id, isNew
	}
	sig, ok := a.sigCache[h]
	if !ok {
		sig = a.sketch(strings.Fields(strings.ToLower(text)))
	}
	if target, merged := a.mergeTarget(sig); merged {
		a.pm.NearDupMerges++
		a.tel.Counter("crawl.states.neardup.merged").Inc()
		return target, false
	}
	id, isNew := a.graph.AddState(h, text, depth)
	if isNew {
		a.tel.Counter("crawl.states.discovered").Inc()
		if a.journal != nil {
			a.journal(h)
		}
		if a.journalSig != nil {
			a.journalSig(h, sig)
		}
	}
	a.sigs[id] = sig
	a.order = append(a.order, id)
	if a.index != nil {
		a.index.Add(int(id), sig)
	}
	return id, isNew
}

// mergeTarget finds the lowest-StateID admitted state whose signature
// similarity to sig reaches the threshold, or reports none. Both paths
// verify in ascending-ID order and stop at the first match; since IDs
// are admitted in ascending order (brute path) and index candidates are
// returned sorted (LSH path), the first verified match is the lowest.
func (a *stateAdmitter) mergeTarget(sig shingle.Signature) (model.StateID, bool) {
	if a.index == nil {
		for _, id := range a.order {
			a.pm.NearDupCandidates++
			a.tel.Counter("crawl.states.neardup.candidates").Inc()
			if sig.Similarity(a.sigs[id]) >= a.threshold {
				return id, true
			}
		}
		return 0, false
	}
	before := a.index.Stats()
	cands := a.index.Candidates(sig)
	probes := int(a.index.Stats().Probes - before.Probes)
	a.pm.NearDupProbes += probes
	a.tel.Counter("crawl.states.neardup.probes").Add(int64(probes))
	for _, c := range cands {
		a.pm.NearDupCandidates++
		a.tel.Counter("crawl.states.neardup.candidates").Inc()
		id := model.StateID(c)
		if sig.Similarity(a.sigs[id]) >= a.threshold {
			return id, true
		}
		a.pm.NearDupFalsePositives++
		a.tel.Counter("crawl.states.neardup.false_positives").Inc()
	}
	return 0, false
}
