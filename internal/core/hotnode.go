package core

import (
	"sort"

	"ajaxcrawl/internal/browser"
	"ajaxcrawl/internal/obs"
)

// HotNodeCache implements the heuristic crawling policy of chapter 4.
//
// A hot node is a JavaScript function that fetches content from the
// server; a hot call is one invocation of it. When an XMLHttpRequest is
// about to be sent, the cache asks the interpreter for the topmost
// currently-executing user function and its actual parameter values —
// what StackInfo.getHotnodeInfo() extracts from the Rhino call stack in
// the thesis (§4.4.1) — and uses "name(arg1,arg2,...)" as the cache key:
//
//   - miss: the request goes to the network; the response is stored
//     under the key and the function is recorded as a hot node;
//   - hit: the stored response is returned and no network call happens.
//
// Because different events (next from page 1, jump to page 2, prev from
// page 3) all funnel into the same hot node with the same arguments, the
// cache collapses them into a single server call (Table 4.3's example).
type HotNodeCache struct {
	entries map[string]string
	// hotNodes records the names of functions observed to perform AJAX
	// calls (the hotNodes set of Alg. 4.2.1 line 37).
	hotNodes map[string]bool

	// Hits and Misses count cache outcomes across all sends.
	Hits   int
	Misses int

	// Observer, when set, receives every fresh cache fill — the
	// checkpoint journal's hook for persisting hot-call responses, so a
	// re-crawl after a crash can Seed them back instead of re-fetching.
	Observer func(key, body string)
}

// NewHotNodeCache returns an empty cache.
func NewHotNodeCache() *HotNodeCache {
	return &HotNodeCache{
		entries:  make(map[string]string),
		hotNodes: make(map[string]bool),
	}
}

// Hook returns the browser.XHRHook wiring this cache into a page.
func (c *HotNodeCache) Hook() browser.XHRHook { return &hotNodeHook{cache: c} }

// Len returns the number of cached hot calls.
func (c *HotNodeCache) Len() int { return len(c.entries) }

// Seed pre-loads cache entries (recovered from a checkpoint journal)
// before the crawl starts. Seeded entries behave exactly like entries
// the crawl filled itself: a matching hot call is served from the cache
// and counted as a hit. The Observer is not invoked for seeded entries —
// they are already journaled.
func (c *HotNodeCache) Seed(entries map[string]string) {
	for k, v := range entries {
		c.entries[k] = v
	}
}

// HotNodes returns the sorted names of detected hot-node functions.
func (c *HotNodeCache) HotNodes() []string {
	out := make([]string, 0, len(c.hotNodes))
	for n := range c.hotNodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// key computes the hot-call identity for the current interpreter state.
// It falls back to the request URL when no user frame is executing (e.g.
// an XHR issued from top-level script code).
func (c *HotNodeCache) key(p *browser.Page, req *browser.XHRRequest) (cacheKey, funcName string) {
	if f := p.Interp.TopUserFrame(); f != nil {
		return f.Key(), f.FuncName
	}
	return "<toplevel>(" + req.URL + ")", "<toplevel>"
}

type hotNodeHook struct {
	cache *HotNodeCache
}

// BeforeSend implements Alg. 4.2.1 lines 34-42: look the hot call up; on
// a match, reuse the existing content instead of invoking the AJAX call.
func (h *hotNodeHook) BeforeSend(p *browser.Page, req *browser.XHRRequest) (string, bool) {
	ctx := p.Context()
	tel := obs.From(ctx)
	key, _ := h.cache.key(p, req)
	if body, ok := h.cache.entries[key]; ok {
		h.cache.Hits++
		tel.Counter("crawl.hotnode.hits").Inc()
		obs.Event(ctx, obs.SpanHotNodeHit, obs.A("key", key))
		return body, true
	}
	h.cache.Misses++
	tel.Counter("crawl.hotnode.misses").Inc()
	obs.Event(ctx, obs.SpanHotNodeMiss, obs.A("key", key))
	return "", false
}

// AfterSend records the fresh response under the hot-call key and tags
// the executing function as a hot node.
func (h *hotNodeHook) AfterSend(p *browser.Page, req *browser.XHRRequest, body string) {
	key, fn := h.cache.key(p, req)
	h.cache.entries[key] = body
	h.cache.hotNodes[fn] = true
	if h.cache.Observer != nil {
		h.cache.Observer(key, body)
	}
}
