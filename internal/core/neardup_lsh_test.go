package core

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"

	"ajaxcrawl/internal/fetch"
	"ajaxcrawl/internal/model"
	"ajaxcrawl/internal/obs"
	"ajaxcrawl/internal/shingle"
	"ajaxcrawl/internal/webapp"
)

// noisySite builds a site whose watch pages carry the mutating decor
// strip (timestamp/view-counter/ad-slot) — the trivially-differing
// states of ROADMAP item 1 that explode the exact-hash model.
func noisySite(videos int) (*webapp.Site, fetch.Fetcher) {
	cfg := webapp.DefaultConfig(videos, 17)
	cfg.NoisyDecor = true
	site := webapp.New(cfg)
	return site, &fetch.HandlerFetcher{Handler: site.Handler()}
}

// TestNoisyDecorExplodesAndCollapses shows the noisy-app problem and the
// fix: without near-dup merging the decor mutations burn the whole state
// budget on chrome variants; with it, the variants collapse and the
// model keeps at least as many real comment pages.
func TestNoisyDecorExplodesAndCollapses(t *testing.T) {
	site, f := noisySite(20)
	v := multiPageVideo(t, site, 4)
	url := webapp.WatchURL(v.ID)

	plain := New(f, Options{UseHotNode: true, MaxStates: 11})
	gPlain, _, err := plain.CrawlPage(context.Background(), url)
	if err != nil {
		t.Fatal(err)
	}
	if gPlain.NumStates() < 11 {
		t.Fatalf("noisy decor did not explode the exact-hash model: %d states", gPlain.NumStates())
	}

	merged := New(f, Options{UseHotNode: true, MaxStates: 11, NearDupThreshold: 0.9})
	gMerged, pm, err := merged.CrawlPage(context.Background(), url)
	if err != nil {
		t.Fatal(err)
	}
	if pm.NearDupMerges == 0 {
		t.Fatalf("no near-dup merges on the noisy page")
	}
	countPages := func(g *model.Graph) int {
		seen := map[int]bool{}
		for _, s := range g.States {
			for p := 1; p <= 11; p++ {
				if strings.Contains(s.Text, "Comments (page "+itoa(p)+" of") {
					seen[p] = true
				}
			}
		}
		return len(seen)
	}
	if countPages(gMerged) < countPages(gPlain) {
		t.Fatalf("near-dup merging lost comment pages: %d vs %d",
			countPages(gMerged), countPages(gPlain))
	}
}

// TestLSHCrawlMatchesBruteForce is the acceptance property end to end:
// the indexed admitter (NearDupBands=0) and the linear-scan baseline
// (NearDupBands=-1) crawl the same noisy page into identical models with
// identical merge counts — and the index does strictly less similarity
// work. Run twice to pin run-to-run determinism.
func TestLSHCrawlMatchesBruteForce(t *testing.T) {
	site, f := noisySite(20)
	v := multiPageVideo(t, site, 4)
	url := webapp.WatchURL(v.ID)

	crawl := func(bands int) (*model.Graph, PageMetrics) {
		c := New(f, Options{UseHotNode: true, MaxStates: 11, NearDupThreshold: 0.9, NearDupBands: bands})
		g, pm, err := c.CrawlPage(context.Background(), url)
		if err != nil {
			t.Fatal(err)
		}
		return g, pm
	}
	gBrute, pmBrute := crawl(-1)
	gLSH, pmLSH := crawl(0)
	gLSH2, pmLSH2 := crawl(0)

	hashes := func(g *model.Graph) []string {
		var out []string
		for _, s := range g.States {
			out = append(out, string(s.Hash[:]))
		}
		return out
	}
	if bh, lh := hashes(gBrute), hashes(gLSH); !equalStrings(bh, lh) {
		t.Fatalf("LSH model diverges from brute force: %d vs %d states", len(lh), len(bh))
	}
	if lh, lh2 := hashes(gLSH), hashes(gLSH2); !equalStrings(lh, lh2) {
		t.Fatalf("LSH crawl not deterministic run-to-run")
	}
	if pmLSH.NearDupMerges != pmBrute.NearDupMerges || pmLSH.NearDupMerges != pmLSH2.NearDupMerges {
		t.Fatalf("merge counts diverge: brute %d, lsh %d, lsh2 %d",
			pmBrute.NearDupMerges, pmLSH.NearDupMerges, pmLSH2.NearDupMerges)
	}
	if pmBrute.NearDupCandidates == 0 || pmLSH.NearDupCandidates == 0 {
		t.Fatalf("expected similarity work on both paths (brute %d, lsh %d)",
			pmBrute.NearDupCandidates, pmLSH.NearDupCandidates)
	}
	if pmLSH.NearDupCandidates >= pmBrute.NearDupCandidates {
		t.Fatalf("LSH did not reduce similarity work: %d candidates vs brute %d",
			pmLSH.NearDupCandidates, pmBrute.NearDupCandidates)
	}
	if pmLSH.NearDupProbes == 0 {
		t.Fatalf("indexed path recorded no probes")
	}
	if pmBrute.NearDupProbes != 0 {
		t.Fatalf("brute path recorded %d probes, want 0", pmBrute.NearDupProbes)
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestNearDupMergeTargetLowestID is the regression test for the
// nondeterministic merge target: the old admitter ranged over a map, so
// a candidate matching two admitted states merged into a random one.
// Both the linear-scan and the indexed path must pick the lowest
// matching StateID.
func TestNearDupMergeTargetLowestID(t *testing.T) {
	base := make(shingle.Signature, shingle.DefaultSignatureSize)
	for i := range base {
		base[i] = uint64(1000 + i)
	}
	alter := func(positions ...int) shingle.Signature {
		sig := make(shingle.Signature, len(base))
		copy(sig, base)
		for _, p := range positions {
			sig[p] = uint64(9_000_000 + p)
		}
		return sig
	}
	// A and B each agree with the probe (=base) on 58/64 positions
	// (0.906 ≥ 0.9) but with each other on only 52/64 (0.8125), so both
	// are genuine, non-equivalent matches for the probe.
	sigA := alter(0, 1, 2, 3, 4, 5)
	sigB := alter(58, 59, 60, 61, 62, 63)

	for _, bands := range []int{-1, 0} {
		for run := 0; run < 20; run++ {
			var pm PageMetrics
			a, err := newStateAdmitter(model.NewGraph("/x"), Options{NearDupThreshold: 0.9, NearDupBands: bands}.withDefaults(), &pm, obs.From(context.Background()))
			if err != nil {
				t.Fatal(err)
			}
			for _, s := range []struct {
				id  model.StateID
				sig shingle.Signature
			}{{5, sigA}, {9, sigB}} {
				a.sigs[s.id] = s.sig
				a.order = append(a.order, s.id)
				if a.index != nil {
					a.index.Add(int(s.id), s.sig)
				}
			}
			target, ok := a.mergeTarget(base)
			if !ok {
				t.Fatalf("bands=%d: probe did not merge", bands)
			}
			if target != 5 {
				t.Fatalf("bands=%d run %d: merged into %d, want lowest matching StateID 5", bands, run, target)
			}
		}
	}
}

// TestSimHashSketchCollapsesNoise drives the cheaper sketch family
// through the same noisy workload: simhash signatures must also collapse
// the decor variants, through the same index machinery. Chunk agreement
// falls off much faster than MinHash position agreement (a few flipped
// fingerprint bits land in distinct chunks), so simhash runs at a lower
// threshold: on this workload near-dup pairs score 0.56-0.81 and
// distinct pages ≤0.19, making 0.5 a clean separator where minhash
// uses 0.9 (see DESIGN.md §5h).
func TestSimHashSketchCollapsesNoise(t *testing.T) {
	site, f := noisySite(20)
	v := multiPageVideo(t, site, 4)
	url := webapp.WatchURL(v.ID)

	c := New(f, Options{UseHotNode: true, MaxStates: 11, NearDupThreshold: 0.5, Sketch: SketchSimHash})
	_, pm, err := c.CrawlPage(context.Background(), url)
	if err != nil {
		t.Fatal(err)
	}
	if pm.NearDupMerges == 0 {
		t.Fatalf("simhash sketch produced no merges on the noisy page")
	}
}

// TestUnknownSketchKindFails pins the knob validation: a typo'd -sketch
// value must fail the crawl, not silently fall back to minhash.
func TestUnknownSketchKindFails(t *testing.T) {
	_, f := noisySite(2)
	c := New(f, Options{NearDupThreshold: 0.9, Sketch: SketchKind("md5")})
	if _, _, err := c.CrawlPage(context.Background(), "/"); err == nil {
		t.Fatalf("unknown sketch kind did not fail the crawl")
	}
}

// TestNearDupResumeConvergence is the crash-tolerance property with
// near-dup merging on: kill a checkpointed noisy crawl after k pages,
// resume it, and the merged state set matches an uninterrupted run with
// the journaled pages never re-fetched. The journaled signatures
// (recStateSig) must survive the round trip so the resumed admitter
// converges without re-sketching journaled states.
func TestNearDupResumeConvergence(t *testing.T) {
	site, _ := noisySite(10)
	var urls []string
	for i := 0; i < 4; i++ {
		urls = append(urls, webapp.WatchURL(site.Video(i).ID))
	}
	ctx := context.Background()
	opts := Options{UseHotNode: true, MaxStates: 8, NearDupThreshold: 0.9}

	baseGraphs, _, err := New(&fetch.HandlerFetcher{Handler: site.Handler()}, opts).CrawlAll(ctx, urls)
	if err != nil {
		t.Fatalf("baseline crawl: %v", err)
	}
	base := stateSets(baseGraphs)

	const k = 2
	dir := t.TempDir()
	var mu sync.Mutex
	fetches := map[string]int{}
	inner := &fetch.HandlerFetcher{Handler: site.Handler()}
	counting := fetch.Func(func(ctx context.Context, rawurl string) (*fetch.Response, error) {
		mu.Lock()
		fetches[rawurl]++
		mu.Unlock()
		return inner.Fetch(ctx, rawurl)
	})

	cp, err := OpenJournalCheckpointer(ctx, dir, false)
	if err != nil {
		t.Fatal(err)
	}
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	o := opts
	o.Checkpoint = cp
	pages := 0
	o.OnPage = func(PageMetrics) {
		pages++
		if pages == k {
			cancel()
		}
	}
	if _, _, err := New(counting, o).CrawlAll(runCtx, urls); !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted crawl returned %v, want context.Canceled", err)
	}
	if err := cp.Close(); err != nil {
		t.Fatalf("close journal: %v", err)
	}
	mu.Lock()
	already := make(map[string]int, k)
	for _, u := range urls[:k] {
		already[u] = fetches[u]
	}
	mu.Unlock()

	cp2, err := OpenJournalCheckpointer(ctx, dir, true)
	if err != nil {
		t.Fatal(err)
	}
	defer cp2.Close()
	o2 := opts
	o2.Checkpoint = cp2
	graphs2, m2, err := New(counting, o2).CrawlAll(ctx, urls)
	if err != nil {
		t.Fatalf("resumed crawl: %v", err)
	}
	if m2.PagesResumed != k {
		t.Errorf("PagesResumed = %d, want %d", m2.PagesResumed, k)
	}
	requireSameStateSets(t, base, stateSets(graphs2))
	mu.Lock()
	for _, u := range urls[:k] {
		if fetches[u] != already[u] {
			t.Errorf("resumed page %s was re-fetched (%d -> %d)", u, already[u], fetches[u])
		}
	}
	mu.Unlock()
}
