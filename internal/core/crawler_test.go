package core

import (
	"context"
	"errors"
	"strconv"
	"strings"
	"testing"
	"time"

	"ajaxcrawl/internal/browser"
	"ajaxcrawl/internal/dom"
	"ajaxcrawl/internal/fetch"
	"ajaxcrawl/internal/model"
	"ajaxcrawl/internal/webapp"
)

// newSiteFetcher builds a synthetic site and an in-process fetcher on it.
func newSiteFetcher(videos int, seed int64) (*webapp.Site, fetch.Fetcher) {
	site := webapp.New(webapp.DefaultConfig(videos, seed))
	return site, &fetch.HandlerFetcher{Handler: site.Handler()}
}

// multiPageVideo returns a video with at least min comment pages.
func multiPageVideo(t *testing.T, site *webapp.Site, min int) *webapp.Video {
	t.Helper()
	for i := 0; i < site.NumVideos(); i++ {
		if v := site.Video(i); len(v.Pages) >= min {
			return v
		}
	}
	t.Fatalf("no video with >= %d pages", min)
	return nil
}

func TestTraditionalCrawlSingleState(t *testing.T) {
	site, f := newSiteFetcher(20, 1)
	v := multiPageVideo(t, site, 3)
	c := New(f, Options{Traditional: true})
	g, pm, err := c.CrawlPage(context.Background(), webapp.WatchURL(v.ID))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumStates() != 1 {
		t.Fatalf("traditional crawl found %d states, want 1", g.NumStates())
	}
	if pm.EventsTriggered != 0 || pm.NetworkCalls != 0 {
		t.Fatalf("traditional crawl must not trigger events: %+v", pm)
	}
	// The single state carries the first comment page's text.
	if !strings.Contains(g.State(0).Text, "Comments (page 1") {
		t.Fatalf("initial state text missing comments: %.100q", g.State(0).Text)
	}
}

func TestAJAXCrawlFindsAllCommentPages(t *testing.T) {
	site, f := newSiteFetcher(30, 2)
	v := multiPageVideo(t, site, 4)
	c := New(f, Options{UseHotNode: true})
	g, pm, err := c.CrawlPage(context.Background(), webapp.WatchURL(v.ID))
	if err != nil {
		t.Fatal(err)
	}
	want := len(v.Pages)
	if want > 11 {
		want = 11
	}
	if g.NumStates() != want {
		t.Fatalf("found %d states, want %d (comment pages)", g.NumStates(), want)
	}
	// Every comment page's content must appear in some state.
	for p := 1; p <= want; p++ {
		found := false
		needle := "Comments (page " + itoa(p)
		for _, s := range g.States {
			if strings.Contains(s.Text, needle) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("no state for comment page %d", p)
		}
	}
	if pm.EventsTriggered == 0 || pm.Transitions == 0 {
		t.Fatalf("metrics empty: %+v", pm)
	}
	// The graph must contain back transitions (prev) that point at
	// previously-seen states, i.e. dedup worked: #states < #transitions.
	if len(g.Transitions) <= g.NumStates()-1 {
		t.Fatalf("transitions (%d) should exceed tree edges (%d)", len(g.Transitions), g.NumStates()-1)
	}
}

func itoa(n int) string { return strconv.Itoa(n) }

func TestDuplicateStatesCollapse(t *testing.T) {
	site, f := newSiteFetcher(30, 2)
	v := multiPageVideo(t, site, 3)
	c := New(f, Options{UseHotNode: true})
	g, _, err := c.CrawlPage(context.Background(), webapp.WatchURL(v.ID))
	if err != nil {
		t.Fatal(err)
	}
	// "prev" from page 2 leads back to state 0 (page 1): there must be a
	// transition whose To is the initial state.
	foundBack := false
	for _, tr := range g.Transitions {
		if tr.To == g.Initial && tr.From != g.Initial {
			foundBack = true
			break
		}
	}
	if !foundBack {
		t.Fatalf("no transition back to the initial state; duplicate detection broken")
	}
	// All states distinct by hash (AddState guarantees, but assert).
	seen := map[string]bool{}
	for _, s := range g.States {
		k := s.Hash.String()
		if seen[k] {
			t.Fatalf("duplicate state hash %s", k)
		}
		seen[k] = true
	}
}

func TestMaxStatesLimit(t *testing.T) {
	site, f := newSiteFetcher(30, 2)
	v := multiPageVideo(t, site, 5)
	c := New(f, Options{UseHotNode: true, MaxStates: 3})
	g, _, err := c.CrawlPage(context.Background(), webapp.WatchURL(v.ID))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumStates() != 3 {
		t.Fatalf("MaxStates not honored: %d states", g.NumStates())
	}
}

func TestMaxEventsPerState(t *testing.T) {
	site, f := newSiteFetcher(30, 2)
	v := multiPageVideo(t, site, 5)
	c := New(f, Options{UseHotNode: true, MaxStates: 2, MaxEventsPerState: 1})
	_, pm, err := c.CrawlPage(context.Background(), webapp.WatchURL(v.ID))
	if err != nil {
		t.Fatal(err)
	}
	// With 1 event per state and 2 states max: at most 2 events fire.
	if pm.EventsTriggered > 2 {
		t.Fatalf("MaxEventsPerState not honored: %d events", pm.EventsTriggered)
	}
}

// TestHotNodeReducesNetworkCalls is the core chapter-4 result: with the
// cache on, repeated hot calls are served locally; without it, every
// event pays a network call.
func TestHotNodeReducesNetworkCalls(t *testing.T) {
	site, f := newSiteFetcher(30, 2)
	v := multiPageVideo(t, site, 5)
	url := webapp.WatchURL(v.ID)

	noCache := New(f, Options{UseHotNode: false})
	_, pmOff, err := noCache.CrawlPage(context.Background(), url)
	if err != nil {
		t.Fatal(err)
	}
	withCache := New(f, Options{UseHotNode: true})
	_, pmOn, err := withCache.CrawlPage(context.Background(), url)
	if err != nil {
		t.Fatal(err)
	}
	// Same states either way — the policy must not change the model.
	if pmOn.States != pmOff.States {
		t.Fatalf("hot node changed the model: %d vs %d states", pmOn.States, pmOff.States)
	}
	if pmOn.EventsTriggered != pmOff.EventsTriggered {
		t.Fatalf("hot node changed event count: %d vs %d", pmOn.EventsTriggered, pmOff.EventsTriggered)
	}
	// Without cache every send hits the network.
	if pmOff.NetworkCalls != pmOff.XHRSends {
		t.Fatalf("no-cache: network calls %d != sends %d", pmOff.NetworkCalls, pmOff.XHRSends)
	}
	// With cache, every distinct server content is fetched exactly once:
	// pages 2..N, page 1 once more via the prev event's XHR, and possibly
	// one page past the state cap — i.e. about States calls, never more
	// than States+1.
	if pmOn.NetworkCalls < pmOn.States-1 || pmOn.NetworkCalls > pmOn.States+1 {
		t.Fatalf("cache: network calls %d, want ~%d (one per distinct page)", pmOn.NetworkCalls, pmOn.States)
	}
	// The reduction factor must be substantial (the paper reports ~5x).
	if pmOn.NetworkCalls*3 > pmOff.NetworkCalls {
		t.Fatalf("cache reduction too weak: %d vs %d", pmOn.NetworkCalls, pmOff.NetworkCalls)
	}
	if pmOn.HotNodeHits != pmOn.XHRSends-pmOn.NetworkCalls {
		t.Fatalf("hits %d != sends %d - calls %d", pmOn.HotNodeHits, pmOn.XHRSends, pmOn.NetworkCalls)
	}
}

// TestHotNodeDetectsFunction drives a page directly with a cache hook
// installed and checks that the detected hot node is the function whose
// body opens the XMLHttpRequest — getUrl, exactly as in the thesis's
// Figure 4.3 stack example — keyed with its actual arguments.
func TestHotNodeDetectsFunction(t *testing.T) {
	site, f := newSiteFetcher(30, 2)
	v := multiPageVideo(t, site, 3)
	cache := NewHotNodeCache()
	page := browser.NewPage(f)
	page.XHR = cache.Hook()
	if err := page.Load(context.Background(), webapp.WatchURL(v.ID)); err != nil {
		t.Fatal(err)
	}
	if err := page.RunOnLoad(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Click "next": one miss, then repeat the identical call: one hit.
	var next browser.Event
	for _, e := range page.Events(nil) {
		if e.ID == "nextPage" {
			next = e
			break
		}
	}
	if next.Code == "" {
		t.Fatalf("no next event")
	}
	snap := page.Snapshot()
	if _, err := page.Trigger(context.Background(), next); err != nil {
		t.Fatal(err)
	}
	if cache.Misses != 1 || cache.Hits != 0 || cache.Len() != 1 {
		t.Fatalf("after first send: misses=%d hits=%d len=%d", cache.Misses, cache.Hits, cache.Len())
	}
	page.Restore(snap)
	if _, err := page.Trigger(context.Background(), next); err != nil {
		t.Fatal(err)
	}
	if cache.Hits != 1 {
		t.Fatalf("identical hot call not served from cache: hits=%d", cache.Hits)
	}
	hot := cache.HotNodes()
	if len(hot) != 1 || hot[0] != "getUrl" {
		t.Fatalf("hot nodes = %v, want [getUrl]", hot)
	}
}

func TestTransitionAnnotations(t *testing.T) {
	site, f := newSiteFetcher(30, 2)
	v := multiPageVideo(t, site, 3)
	c := New(f, Options{UseHotNode: true})
	g, _, err := c.CrawlPage(context.Background(), webapp.WatchURL(v.ID))
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range g.Transitions {
		if tr.Event != "onclick" {
			t.Fatalf("unexpected event type %q", tr.Event)
		}
		if tr.Code == "" || tr.SourcePath == "" {
			t.Fatalf("transition missing code/path: %+v", tr)
		}
		if tr.Action != "innerHTML" {
			t.Fatalf("action = %q", tr.Action)
		}
		// The comment box is the modified target.
		foundTarget := false
		for _, tg := range tr.Targets {
			if tg == "recent_comments" {
				foundTarget = true
			}
		}
		if !foundTarget {
			t.Fatalf("transition targets = %v, want recent_comments", tr.Targets)
		}
	}
}

func TestReplayPathReconstructsState(t *testing.T) {
	site, f := newSiteFetcher(30, 2)
	v := multiPageVideo(t, site, 4)
	c := New(f, Options{UseHotNode: true})
	g, _, err := c.CrawlPage(context.Background(), webapp.WatchURL(v.ID))
	if err != nil {
		t.Fatal(err)
	}
	// Pick the deepest state and replay its event path on a fresh page.
	target := g.States[len(g.States)-1]
	path := g.PathTo(target.ID)
	if path == nil {
		t.Fatalf("no path to state %d", target.ID)
	}
	doc, err := ReplayPath(context.Background(), f, g.URL, path)
	if err != nil {
		t.Fatal(err)
	}
	if doc == nil {
		t.Fatal("nil reconstructed document")
	}
	if got := dom.CanonicalHash(doc); got != target.Hash {
		t.Fatalf("replayed state hash mismatch")
	}
}

func TestCrawlAllAggregates(t *testing.T) {
	site, f := newSiteFetcher(10, 3)
	urls := []string{
		webapp.WatchURL(site.Video(0).ID),
		webapp.WatchURL(site.Video(1).ID),
		webapp.WatchURL(site.Video(2).ID),
	}
	c := New(f, Options{UseHotNode: true})
	graphs, m, err := c.CrawlAll(context.Background(), urls)
	if err != nil {
		t.Fatal(err)
	}
	if len(graphs) != 3 || m.Pages != 3 {
		t.Fatalf("graphs=%d pages=%d", len(graphs), m.Pages)
	}
	wantStates := 0
	for _, g := range graphs {
		wantStates += g.NumStates()
	}
	if m.States != wantStates {
		t.Fatalf("aggregate states %d != %d", m.States, wantStates)
	}
	if len(m.PerPage) != 3 {
		t.Fatalf("per-page metrics missing")
	}
}

func TestCrawlErrorPropagates(t *testing.T) {
	_, f := newSiteFetcher(5, 4)
	c := New(f, Options{})
	if _, _, err := c.CrawlPage(context.Background(), "/watch?v=unknown"); err == nil {
		t.Fatalf("crawl of missing page should fail")
	}
	// Default policy: the failed page is skipped and counted, not fatal.
	graphs, m, err := c.CrawlAll(context.Background(), []string{"/watch?v=unknown"})
	if err != nil {
		t.Fatalf("SkipAndCount CrawlAll returned error: %v", err)
	}
	if len(graphs) != 0 || m.PagesFailed != 1 {
		t.Fatalf("want 0 graphs and PagesFailed=1, got %d graphs, PagesFailed=%d", len(graphs), m.PagesFailed)
	}
	// FailFast: the first page error aborts the run.
	ff := New(f, Options{OnError: FailFast})
	if _, _, err := ff.CrawlAll(context.Background(), []string{"/watch?v=unknown"}); err == nil {
		t.Fatalf("FailFast CrawlAll should propagate failures")
	}
}

// TestCrawlAllSkipAndCount is the doc/behavior regression test: one URL
// out of three fails, the other two come back, and the failure is
// counted.
func TestCrawlAllSkipAndCount(t *testing.T) {
	site, f := newSiteFetcher(5, 4)
	boom := errors.New("connection reset")
	flaky := fetch.Func(func(ctx context.Context, rawurl string) (*fetch.Response, error) {
		if rawurl == "/watch?v=dead" {
			return nil, boom
		}
		return f.Fetch(ctx, rawurl)
	})
	urls := []string{
		webapp.WatchURL(site.VideoID(0)),
		"/watch?v=dead",
		webapp.WatchURL(site.VideoID(1)),
	}
	c := New(flaky, Options{})
	graphs, m, err := c.CrawlAll(context.Background(), urls)
	if err != nil {
		t.Fatalf("CrawlAll: %v", err)
	}
	if len(graphs) != 2 {
		t.Fatalf("want 2 graphs, got %d", len(graphs))
	}
	if m.Pages != 2 || m.PagesFailed != 1 {
		t.Fatalf("want Pages=2 PagesFailed=1, got Pages=%d PagesFailed=%d", m.Pages, m.PagesFailed)
	}
	if graphs[0].URL != urls[0] || graphs[1].URL != urls[2] {
		t.Fatalf("surviving graphs out of order: %s, %s", graphs[0].URL, graphs[1].URL)
	}
}

func TestCrawlTimeMeasuredOnVirtualClock(t *testing.T) {
	site, _ := newSiteFetcher(30, 2)
	v := multiPageVideo(t, site, 3)
	clock := &fetch.VirtualClock{}
	inst := fetch.NewInstrumented(&fetch.HandlerFetcher{Handler: site.Handler()}, clock, 20*time.Millisecond, 0)
	c := New(inst, Options{UseHotNode: true, Clock: clock})
	_, pm, err := c.CrawlPage(context.Background(), webapp.WatchURL(v.ID))
	if err != nil {
		t.Fatal(err)
	}
	if pm.NetworkTime <= 0 || pm.CrawlTime < pm.NetworkTime {
		t.Fatalf("times wrong: crawl=%v network=%v", pm.CrawlTime, pm.NetworkTime)
	}
	// Network time = 20ms per real fetch: 1 page load + NetworkCalls XHR.
	wantNet := time.Duration(pm.NetworkCalls+1) * 20 * time.Millisecond
	if pm.NetworkTime != wantNet {
		t.Fatalf("network time %v, want %v", pm.NetworkTime, wantNet)
	}
}

func TestEventCountsScaleWithStates(t *testing.T) {
	// Sanity for the Table 7.1 shape: events ≫ states.
	site, f := newSiteFetcher(20, 5)
	c := New(f, Options{UseHotNode: true})
	var urls []string
	for i := 0; i < 10; i++ {
		urls = append(urls, webapp.WatchURL(site.Video(i).ID))
	}
	_, m, err := c.CrawlAll(context.Background(), urls)
	if err != nil {
		t.Fatal(err)
	}
	if m.EventsTriggered <= m.States {
		t.Fatalf("events (%d) should exceed states (%d)", m.EventsTriggered, m.States)
	}
}

func TestCrawlAllCancelMidway(t *testing.T) {
	// Canceling the context mid-batch must stop the run promptly with
	// the already-crawled graphs intact.
	site, f := newSiteFetcher(30, 7)
	var urls []string
	for i := 0; i < 25; i++ {
		urls = append(urls, webapp.WatchURL(site.Video(i).ID))
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var watchFetches int
	counting := fetch.Func(func(c context.Context, rawurl string) (*fetch.Response, error) {
		if strings.HasPrefix(rawurl, "/watch?v=") {
			watchFetches++
			if watchFetches == 6 {
				cancel()
			}
		}
		return f.Fetch(c, rawurl)
	})
	c := New(counting, Options{MaxStates: 3})
	graphs, _, err := c.CrawlAll(ctx, urls)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if len(graphs) == 0 || len(graphs) >= len(urls) {
		t.Fatalf("want partial graphs, got %d of %d", len(graphs), len(urls))
	}
	for i, g := range graphs {
		if g == nil || g.NumStates() == 0 {
			t.Fatalf("graph %d not intact", i)
		}
		if g.URL != urls[i] {
			t.Fatalf("graph %d url = %s, want %s", i, g.URL, urls[i])
		}
	}
}

func TestJSStepBudgetPreemptsInfiniteLoop(t *testing.T) {
	// A handler that never terminates is cut off by the per-dispatch JS
	// step budget, counted as a handler error, and the crawl still
	// completes — the page is at fault, not the crawl.
	page := `<html><body><div id="spin" onclick="while (true) { var i = 1; }">spin</div></body></html>`
	looping := fetch.Func(func(ctx context.Context, rawurl string) (*fetch.Response, error) {
		return &fetch.Response{Status: 200, Body: []byte(page), ContentType: "text/html"}, nil
	})
	c := New(looping, Options{JSStepBudget: 5000, MaxStates: 3})
	done := make(chan struct{})
	var (
		g   *model.Graph
		m   PageMetrics
		err error
	)
	go func() {
		defer close(done)
		g, m, err = c.CrawlPage(context.Background(), "/loop")
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("step budget did not preempt the infinite loop")
	}
	if err != nil {
		t.Fatalf("preempted handler should not fail the page: %v", err)
	}
	if g == nil || g.NumStates() == 0 {
		t.Fatalf("page model missing")
	}
	if m.HandlerErrors == 0 {
		t.Fatalf("preempted handler should count as a handler error")
	}
}
