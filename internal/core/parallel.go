package core

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ajaxcrawl/internal/fetch"
	"ajaxcrawl/internal/model"
	"ajaxcrawl/internal/obs"
)

// MPCrawler is the parallel crawler of chapter 6: N "process lines" each
// serially take the next unprocessed partition, crawl its URLs with an
// isolated crawler instance, and store the resulting application models
// into the partition directory. Process lines share nothing but the
// partition work queue — goroutines stand in for the thesis's JVM
// processes.
//
// On top of the thesis architecture sits a supervisor: a partition whose
// run fails (page error under FailFast, a panic recovered at the
// partition boundary, or a stuck-partition watchdog trip) is requeued
// with bounded restart attempts instead of being lost. When a
// per-partition checkpoint journal is wired in through NewCheckpointer,
// a restarted partition replays its journal first, so pages completed
// before the failure are never re-crawled.
type MPCrawler struct {
	// NewCrawler builds the per-process-line crawler. Each process line
	// calls it once, so fetchers/caches can be isolated or shared as the
	// factory decides.
	NewCrawler func() *Crawler
	// ProcLines is the number of concurrent process lines
	// (MP_CRAWLER_NUM_OF_PROC_LINES). 1 means no parallelism.
	ProcLines int
	// Partitions are the partition directories to process, as produced
	// by URLPartitioner.Partition.
	Partitions []string
	// SaveModels controls whether each partition's graphs are serialized
	// into its directory (the thesis always does; tests may skip I/O).
	SaveModels bool
	// NewCheckpointer, when set, opens the durable journal for a
	// partition just before it runs; the supervisor closes it (flushing)
	// on every exit path. attempt is 0 for the partition's first run and
	// grows with each supervisor restart — restarts must open in resume
	// mode whatever the factory does on attempt 0, so the pages the
	// failed attempt journaled are replayed, not re-crawled.
	NewCheckpointer func(ctx context.Context, dir string, attempt int) (Checkpointer, error)
	// MaxRestarts bounds how many times the supervisor requeues one
	// failed partition (its total attempts are MaxRestarts+1). 0
	// disables restarts: a failed partition is reported immediately,
	// the pre-supervisor behavior.
	MaxRestarts int
	// StuckTimeout arms the wedged-partition watchdog: an attempt in
	// which no page completes for this long (measured on Clock) is
	// canceled, reported as ErrPartitionStuck, and — attempts
	// permitting — restarted. 0 disables the watchdog.
	StuckTimeout time.Duration
	// Clock is the watchdog's time source; use the same clock the
	// crawlers run on so virtual-clock tests stay deterministic. nil
	// means wall time.
	Clock fetch.Clock
}

// ErrPartitionStuck marks a partition attempt canceled by the
// stuck-partition watchdog: no page completed within StuckTimeout.
var ErrPartitionStuck = errors.New("core: partition stuck: no page completed within the watchdog timeout")

// PartitionResult is one completed partition, as emitted by Stream while
// later partitions are still crawling.
type PartitionResult struct {
	// Index is the partition's position in Partitions.
	Index int
	// Dir is the partition directory.
	Dir string
	// Graphs are the partition's application models (possibly partial
	// when Err is a cancellation).
	Graphs []*model.Graph
	// Metrics are this partition's crawl metrics (never nil).
	Metrics *Metrics
	// Err is the partition's failure, if any — the final attempt's
	// error once restarts are exhausted.
	Err error
	// Restarts is how many times the supervisor requeued this partition
	// before producing this result.
	Restarts int
}

// MPResult is the outcome of a parallel crawl.
type MPResult struct {
	// GraphsByPartition holds each partition's application models, index-
	// aligned with Partitions.
	GraphsByPartition [][]*model.Graph
	// Metrics aggregates all process lines. PerPage is ordered by
	// partition (then by URL order within the partition), not by
	// goroutine completion order, so experiment output is reproducible
	// run to run.
	Metrics *Metrics
	// Errors holds the first error of each failed partition (nil entries
	// for successful ones). A canceled run leaves ctx.Err() in the
	// partitions that were cut short and nil in untouched ones.
	Errors []error
	// Restarts holds each partition's supervisor restart count,
	// index-aligned with Partitions.
	Restarts []int
}

// Graphs flattens all partitions' graphs in partition order.
func (r *MPResult) Graphs() []*model.Graph {
	var out []*model.Graph
	for _, gs := range r.GraphsByPartition {
		out = append(out, gs...)
	}
	return out
}

// Err returns the first partition error, if any.
func (r *MPResult) Err() error {
	for i, err := range r.Errors {
		if err != nil {
			return fmt.Errorf("core: partition %d: %w", i+1, err)
		}
	}
	return nil
}

// partWork is one queued partition attempt.
type partWork struct {
	idx     int
	attempt int // 0 for the first run, +1 per supervisor restart
}

// Stream starts the process lines and returns a channel that yields each
// partition as soon as it completes, so downstream phases (indexing) can
// overlap with crawling. The channel is closed once every process line
// has drained. Canceling ctx stops the hand-out of new partitions and
// cuts short in-flight ones; their partial graphs are still emitted,
// with Err set to the context error.
//
// Supervision: a partition attempt that fails for any reason other than
// the caller's context ending is requeued up to MaxRestarts times (the
// crawl.partition.restarts counter meters every requeue) before its
// error is emitted. Exactly one PartitionResult is emitted per partition
// that started, whatever the number of attempts.
func (m *MPCrawler) Stream(ctx context.Context) <-chan PartitionResult {
	n := m.ProcLines
	if n <= 0 {
		n = 1
	}
	out := make(chan PartitionResult)
	// Each partition has at most one live work item (queued or running),
	// so the buffer can never fill: requeues always succeed without
	// blocking a process line.
	work := make(chan partWork, len(m.Partitions)+1)
	for i := range m.Partitions {
		work <- partWork{idx: i}
	}
	remaining := int64(len(m.Partitions))
	if remaining == 0 {
		close(work)
	}
	// finish retires one partition for good; the last one closes the
	// queue and lets the process lines drain out.
	finish := func() {
		if atomic.AddInt64(&remaining, -1) == 0 {
			close(work)
		}
	}
	tel := obs.From(ctx)
	var wg sync.WaitGroup
	for line := 0; line < n; line++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			crawler := m.NewCrawler()
			for w := range work {
				if ctx.Err() != nil {
					// Canceled before this attempt started: leave the
					// partition untouched (no result), like the
					// pre-supervisor hand-out stop.
					finish()
					continue
				}
				graphs, metrics, err := m.runPartition(ctx, crawler, m.Partitions[w.idx], w.attempt)
				if metrics == nil {
					metrics = &Metrics{}
				}
				if err != nil && ctx.Err() == nil && w.attempt < m.MaxRestarts {
					// Supervisor: the attempt failed on its own (error,
					// panic, watchdog) — requeue rather than emit. A
					// sibling process line may pick it up; its journal,
					// reopened by the next attempt, carries the pages
					// this attempt completed.
					tel.Counter("crawl.partition.restarts").Inc()
					work <- partWork{idx: w.idx, attempt: w.attempt + 1}
					continue
				}
				out <- PartitionResult{
					Index:    w.idx,
					Dir:      m.Partitions[w.idx],
					Graphs:   graphs,
					Metrics:  metrics,
					Err:      err,
					Restarts: w.attempt,
				}
				finish()
			}
		}()
	}
	go func() {
		wg.Wait()
		close(out)
	}()
	return out
}

// Run executes the parallel crawl and blocks until every process line
// has finished. On cancellation it returns early-but-cleanly: partitions
// completed before the cancel keep their graphs, in-flight partitions
// contribute their partial graphs with ctx.Err() recorded, and untouched
// partitions stay empty.
func (m *MPCrawler) Run(ctx context.Context) *MPResult {
	res := &MPResult{
		GraphsByPartition: make([][]*model.Graph, len(m.Partitions)),
		Metrics:           &Metrics{},
		Errors:            make([]error, len(m.Partitions)),
		Restarts:          make([]int, len(m.Partitions)),
	}
	perPart := make([]*Metrics, len(m.Partitions))
	for pr := range m.Stream(ctx) {
		res.GraphsByPartition[pr.Index] = pr.Graphs
		res.Errors[pr.Index] = pr.Err
		res.Restarts[pr.Index] = pr.Restarts
		perPart[pr.Index] = pr.Metrics
	}
	// Merge in partition order — not completion order — so
	// Metrics.PerPage is deterministic across runs.
	for _, metrics := range perPart {
		if metrics != nil {
			res.Metrics.Merge(metrics)
		}
	}
	return res
}

// runPartition crawls one partition directory like a SimpleAjaxCrawler
// process: read URLsToCrawl.txt, crawl each page, serialize the models.
// Models crawled before an error are still flushed to disk (the partial-
// model flush a graceful shutdown relies on).
//
// Fault isolation: a partition whose circuit breaker trips — every
// remaining page of a dying host short-circuiting into PagesFailed, or
// the whole partition erroring under FailFast — stays contained here.
// Its result is emitted with the error recorded, the tripped partition
// is counted in crawl.partitions.breaker_tripped, and sibling process
// lines (whose crawlers hold their own breaker state when built through
// Options.BreakerConfig) keep crawling their partitions undisturbed.
//
// The same boundary contains panics: a crawler bug (or hostile page)
// that panics mid-partition is recovered here and reported as the
// partition's error, so sibling process lines keep running — and the
// supervisor can restart the partition like any other failure.
func (m *MPCrawler) runPartition(ctx context.Context, c *Crawler, dir string, attempt int) (graphs []*model.Graph, metrics *Metrics, err error) {
	tel := obs.From(ctx)
	ctx, sp := obs.StartSpan(ctx, obs.SpanPartitionCrawl, obs.A("dir", dir))
	if attempt > 0 {
		sp.SetAttr("attempt", strconv.Itoa(attempt+1))
	}
	tel.Gauge("crawl.partitions.inflight").Add(1)
	// Trips are detected on the breaker's own counters, not the crawl
	// metrics: a page that failed *because* the circuit opened is dropped
	// from Metrics by the skip-and-count policy, but its open transition
	// still shows in the stats delta.
	var opensStart int64
	bstats := fetch.FindBreakerStats(c.Fetcher)
	if bstats != nil {
		opensStart = bstats.BreakerStats().Opens
	}
	defer func() {
		tel.Gauge("crawl.partitions.inflight").Add(-1)
		tel.Counter("crawl.partitions").Inc()
		if metrics != nil {
			sp.SetAttr("pages", strconv.Itoa(metrics.Pages))
		}
		tripped := bstats != nil && bstats.BreakerStats().Opens > opensStart
		if tripped || errors.Is(err, fetch.ErrBreakerOpen) {
			tel.Counter("crawl.partitions.breaker_tripped").Inc()
			sp.SetAttr("breaker", "tripped")
		}
		sp.End(err)
	}()
	// Registered after the telemetry defer, so (LIFO) it runs first and
	// the span records the panic as this partition's error. Graphs built
	// before the panic are indeterminate — drop them; the journal, not
	// the wreckage, is the restart's source of truth.
	defer func() {
		if r := recover(); r != nil {
			graphs = nil
			err = fmt.Errorf("core: partition %s: panic: %v", dir, r)
			tel.Counter("crawl.partition.panics").Inc()
		}
	}()

	// Checkpointing: open (replaying) this partition's journal and hook
	// it into the crawler for the duration of the attempt. Close —
	// which flushes buffered records — runs on every exit path,
	// including panic unwinds and cancellation: that is the
	// graceful-shutdown flush.
	if m.NewCheckpointer != nil {
		cp, cerr := m.NewCheckpointer(ctx, dir, attempt)
		if cerr != nil {
			return nil, nil, fmt.Errorf("core: partition %s: %w", dir, cerr)
		}
		defer cp.Close()
		saved := c.Opts.Checkpoint
		c.Opts.Checkpoint = cp
		defer func() { c.Opts.Checkpoint = saved }()
	}

	// Watchdog: cancel the attempt when no page completes within
	// StuckTimeout. Progress is observed through the OnPage heartbeat;
	// staleness is measured on the injectable Clock (so virtual-clock
	// tests can wedge and trip it deterministically) while the polling
	// cadence runs on a cheap wall ticker.
	if m.StuckTimeout > 0 {
		clock := m.Clock
		if clock == nil {
			clock = fetch.RealClock{}
		}
		var cancel context.CancelCauseFunc
		ctx, cancel = context.WithCancelCause(ctx)
		defer cancel(nil)
		var lastBeat atomic.Int64
		lastBeat.Store(clock.Now().UnixNano())
		saved := c.Opts.OnPage
		c.Opts.OnPage = func(pm PageMetrics) {
			lastBeat.Store(clock.Now().UnixNano())
			if saved != nil {
				saved(pm)
			}
		}
		defer func() { c.Opts.OnPage = saved }()
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			poll := m.StuckTimeout / 8
			if poll < time.Millisecond {
				poll = time.Millisecond
			}
			if poll > 250*time.Millisecond {
				poll = 250 * time.Millisecond
			}
			ticker := time.NewTicker(poll)
			defer ticker.Stop()
			for {
				select {
				case <-stop:
					return
				case <-ticker.C:
					stale := clock.Now().UnixNano() - lastBeat.Load()
					if time.Duration(stale) > m.StuckTimeout {
						tel.Counter("crawl.partition.watchdog_trips").Inc()
						cancel(ErrPartitionStuck)
						return
					}
				}
			}
		}()
	}

	urls, err := ReadPartition(dir)
	if err != nil {
		return nil, nil, err
	}
	graphs, metrics, err = c.CrawlAll(ctx, urls)
	if err != nil && context.Cause(ctx) != nil && errors.Is(context.Cause(ctx), ErrPartitionStuck) {
		// Surface the watchdog trip instead of a bare context.Canceled,
		// so the caller (and the supervisor's restart check against the
		// *outer* context) can tell a wedged partition from a Ctrl-C.
		err = fmt.Errorf("core: partition %s: %w", dir, ErrPartitionStuck)
	}
	if m.SaveModels && len(graphs) > 0 {
		if saveErr := model.SaveAll(dir, graphs); saveErr != nil && err == nil {
			err = saveErr
		}
	}
	return graphs, metrics, err
}
