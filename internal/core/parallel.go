package core

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ajaxcrawl/internal/checkpoint"
	"ajaxcrawl/internal/fetch"
	"ajaxcrawl/internal/frontier"
	"ajaxcrawl/internal/model"
	"ajaxcrawl/internal/obs"
)

// MPCrawler is the parallel crawler of chapter 6, rebuilt around a
// shared dynamic frontier. The thesis statically splits the precrawled
// URL list into N fixed partitions, one per process line, so one slow
// partition strands every other line while it idles. Here the N
// long-lived process lines (goroutines standing in for the thesis's JVM
// processes) instead pull single URLs from one prioritized frontier —
// ordered by PageRank with an expected-AJAX-state-yield boost — and
// steal work from each other's local queues, so capacity rebalances to
// wherever pages remain. Partitions survive as the result layout:
// every URL remembers its (partition, seq) slot and results are still
// assembled, saved, and streamed per partition directory.
//
// On top sits the supervisor, now at page granularity: a page whose
// attempt fails (an error under FailFast, a panic recovered at the item
// boundary, or a stuck-line watchdog trip) is requeued into the
// frontier with bounded attempts instead of being lost. When
// Checkpoints is wired in, every line journals completed pages into its
// own journal and reads union across all of them, so a requeued or
// resumed page — wherever it lands — is replayed, never re-crawled.
type MPCrawler struct {
	// NewCrawler builds the per-process-line crawler. Each process line
	// calls it once (plus once per panic recovery rebuild), so
	// fetchers/caches can be isolated or shared as the factory decides.
	NewCrawler func() *Crawler
	// ProcLines is the number of concurrent process lines
	// (MP_CRAWLER_NUM_OF_PROC_LINES). 1 means no parallelism.
	ProcLines int
	// Partitions are the partition directories to process, as produced
	// by URLPartitioner.Partition. They are read up front and admitted
	// to the frontier as one batch.
	Partitions []string
	// SaveModels controls whether each partition's graphs are serialized
	// into its directory (the thesis always does; tests may skip I/O).
	SaveModels bool
	// Priorities maps URLs to their precrawl PageRank. Values are
	// normalized so the maximum admits at priority 1; missing URLs (or
	// a nil map) admit at 0 and the frontier degrades to partition
	// order.
	Priorities map[string]float64
	// SeedSeen feeds the precrawl visited set into the frontier's bloom
	// filter, so URLs the precrawler already saw are rejected if
	// rediscovered dynamically.
	SeedSeen map[string]bool
	// FrontierSeed seeds the scheduler's steal-victim PRNG. Results are
	// order-independent for any seed; the seed makes the schedule
	// itself reproducible. 0 selects seed 1.
	FrontierSeed int64
	// BloomBits sizes the frontier's dedup bloom filter in bits; <= 0
	// selects the frontier default (1 MiB of bits).
	BloomBits int
	// StealBatch is how many URLs a line pulls from the frontier per
	// refill (surplus is stealable by siblings); <= 0 selects the
	// scheduler default.
	StealBatch int
	// YieldWeight scales the expected-AJAX-state-yield boost added to a
	// URL's priority when it is requeued (the boost is learned per URL
	// class from pages already crawled, normalized to [0,1)). 0 selects
	// 0.25; negative disables the boost.
	YieldWeight float64
	// Checkpoints, when set, provides the per-line durable journals and
	// the frontier snapshot journal. The caller opens it (choosing
	// fresh vs resume) and closes it after the crawl drains; each
	// process line opens and closes its own line journal inside.
	Checkpoints *CrawlCheckpoints
	// MaxRestarts bounds how many times the supervisor requeues one
	// failed page (its total attempts are MaxRestarts+1). 0 disables
	// restarts: a failed page is reported immediately.
	MaxRestarts int
	// StuckTimeout arms the wedged-line watchdog: a page attempt in
	// which no page completes for this long (measured on Clock) is
	// canceled, reported as ErrLineStuck, and — attempts permitting —
	// requeued. 0 disables the watchdog.
	StuckTimeout time.Duration
	// Clock is the watchdog's time source; use the same clock the
	// crawlers run on so virtual-clock tests stay deterministic. nil
	// means wall time.
	Clock fetch.Clock
}

// ErrLineStuck marks a page attempt canceled by the stuck-line
// watchdog: no page completed within StuckTimeout.
var ErrLineStuck = errors.New("core: process line stuck: no page completed within the watchdog timeout")

// ErrPartitionStuck is the pre-frontier name of ErrLineStuck, kept so
// errors.Is checks from the static-partition era keep matching.
//
// Deprecated: use ErrLineStuck.
var ErrPartitionStuck = ErrLineStuck

// PartitionResult is one completed partition, as emitted by Stream
// while other pages are still crawling. Pages of one partition may have
// been crawled by several process lines; the result is assembled in the
// partition's URL order regardless.
type PartitionResult struct {
	// Index is the partition's position in Partitions.
	Index int
	// Dir is the partition directory.
	Dir string
	// Graphs are the partition's application models (possibly partial
	// when Err is a cancellation).
	Graphs []*model.Graph
	// Metrics are this partition's crawl metrics (never nil).
	Metrics *Metrics
	// Err is the partition's failure, if any — the first failed page's
	// error (in URL order) once that page's restarts are exhausted.
	Err error
	// Restarts is how many supervisor requeues this partition's pages
	// consumed in total.
	Restarts int
}

// MPResult is the outcome of a parallel crawl.
type MPResult struct {
	// GraphsByPartition holds each partition's application models, index-
	// aligned with Partitions.
	GraphsByPartition [][]*model.Graph
	// Metrics aggregates all process lines. PerPage is ordered by
	// partition (then by URL order within the partition), not by
	// scheduling order, so experiment output is reproducible run to
	// run whatever the frontier did.
	Metrics *Metrics
	// Errors holds the first error of each failed partition (nil entries
	// for successful ones). A canceled run leaves the context error in
	// the partitions that were cut short and nil in untouched ones.
	Errors []error
	// Restarts holds each partition's supervisor requeue total,
	// index-aligned with Partitions.
	Restarts []int
}

// Graphs flattens all partitions' graphs in partition order.
func (r *MPResult) Graphs() []*model.Graph {
	var out []*model.Graph
	for _, gs := range r.GraphsByPartition {
		out = append(out, gs...)
	}
	return out
}

// Err returns the first partition error, if any.
func (r *MPResult) Err() error {
	for i, err := range r.Errors {
		if err != nil {
			return fmt.Errorf("core: partition %d: %w", i+1, err)
		}
	}
	return nil
}

// itemResult is one retired page attempt, sent to the assembler.
type itemResult struct {
	part, seq int
	graphs    []*model.Graph
	metrics   *Metrics
	err       error
	requeues  int
	tripped   bool
}

// partAssembly accumulates one partition's item results until complete.
type partAssembly struct {
	dir      string
	urls     []string
	readErr  error
	graphs   [][]*model.Graph
	metrics  []*Metrics
	errs     []error
	restarts int
	tripped  bool
	reported int
	started  bool
	emitted  bool
}

// Stream starts the process lines and returns a channel that yields
// each partition as soon as its last page retires, so downstream phases
// (indexing) overlap with crawling. The channel is closed once every
// process line has drained. Canceling ctx stops the hand-out of new
// pages and cuts short in-flight ones; partitions that had started
// still emit their partial graphs with Err set to the context error,
// untouched partitions emit nothing.
//
// Supervision: a page attempt that fails for any reason other than the
// caller's context ending is requeued into the frontier up to
// MaxRestarts times (the frontier.requeues counter meters every
// requeue) before its error lands in the partition result. Exactly one
// PartitionResult is emitted per partition that started, whatever the
// scheduling.
func (m *MPCrawler) Stream(ctx context.Context) <-chan PartitionResult {
	n := m.ProcLines
	if n <= 0 {
		n = 1
	}
	tel := obs.From(ctx)
	out := make(chan PartitionResult)

	// Read every partition up front; the frontier is admitted as one
	// batch so tier boundaries see the whole priority distribution.
	parts := make([]*partAssembly, len(m.Partitions))
	for i, dir := range m.Partitions {
		ps := &partAssembly{dir: dir}
		ps.urls, ps.readErr = ReadPartition(dir)
		ps.graphs = make([][]*model.Graph, len(ps.urls))
		ps.metrics = make([]*Metrics, len(ps.urls))
		ps.errs = make([]error, len(ps.urls))
		parts[i] = ps
	}

	// Priorities: journaled admission priorities (resume) win, then
	// normalized PageRank, then 0 (partition-order FIFO).
	recovered := make(map[string]float64)
	if m.Checkpoints != nil {
		for _, r := range m.Checkpoints.RecoveredFrontier() {
			recovered[r.URL] = r.Priority
		}
	}
	var maxPR float64
	for _, v := range m.Priorities {
		if v > maxPR {
			maxPR = v
		}
	}
	basePri := func(url string) float64 {
		if p, ok := recovered[url]; ok {
			return p
		}
		if maxPR > 0 {
			return m.Priorities[url] / maxPR
		}
		return 0
	}
	yieldW := m.YieldWeight
	if yieldW == 0 {
		yieldW = 0.25
	}
	est := frontier.NewYieldEstimator(0)

	fr := frontier.New(frontier.Config{BloomBits: m.BloomBits, Tel: tel})
	var seed []frontier.Item
	seen := make(map[string]bool)
	for pi, ps := range parts {
		for si, u := range ps.urls {
			if seen[u] {
				// A URL duplicated across partitions is crawled (and
				// reported) only under its first slot; the duplicate
				// slot completes vacuously.
				ps.reported++
				continue
			}
			seen[u] = true
			seed = append(seed, frontier.Item{URL: u, Partition: pi, Seq: si, Priority: basePri(u)})
		}
	}
	fr.AdmitSeed(seed)
	if m.SeedSeen != nil {
		fr.MarkSeen(m.SeedSeen)
	}
	// Progress denominators for /debug/status: the admitted page universe
	// and the line count. crawl.pages.done ticks as attempts retire.
	tel.Gauge("crawl.pages.total").Set(int64(len(seed)))
	tel.Gauge("crawl.lines").Set(int64(n))
	if m.Checkpoints != nil {
		// Journal the admitted frontier — the snapshot a killed crawl
		// resumes from. Identical re-admissions on resume are deduped
		// inside the journal, so this stays one record per URL.
		for _, it := range seed {
			if err := m.Checkpoints.FrontierAdmitted(checkpoint.FrontierRecord{
				URL: it.URL, Partition: it.Partition, Seq: it.Seq, Priority: it.Priority,
			}); err != nil {
				break // sticky journal error; surfaces on Flush/Close
			}
		}
		_ = m.Checkpoints.FlushFrontier()
	}

	sched := frontier.NewScheduler(fr, frontier.SchedConfig{
		Lines: n, Batch: m.StealBatch, Seed: m.FrontierSeed, Tel: tel,
	})

	results := make(chan itemResult, n)
	var initErr atomic.Value // error poisoning the whole crawl (journal open failure)
	failCrawl := func(err error) {
		initErr.CompareAndSwap(nil, err) //nolint:errcheck // first error wins
		sched.Cancel()
	}

	var wg sync.WaitGroup
	for line := 0; line < n; line++ {
		wg.Add(1)
		go func(line int) {
			defer wg.Done()
			_, lsp := obs.StartSpan(ctx, obs.SpanLineCrawl, obs.A("line", strconv.Itoa(line)))
			pages := 0
			defer func() {
				lsp.SetAttr("pages", strconv.Itoa(pages))
				lsp.End(nil)
			}()
			var cp Checkpointer
			if m.Checkpoints != nil {
				var err error
				cp, err = m.Checkpoints.Line(line)
				if err != nil {
					// Durability is broken before a single fetch: fail
					// the crawl rather than crawl unjournaled.
					failCrawl(fmt.Errorf("core: line %d: %w", line, err))
					return
				}
				defer cp.Close()
			}
			w := newLineWorker(m, cp, tel)
			for {
				it, ok := sched.Next(line)
				if !ok {
					return
				}
				if ctx.Err() != nil {
					// Canceled while queued work remains: abandon the
					// item and stop every line's hand-out.
					sched.Cancel()
					return
				}
				tel.Gauge("crawl.lines.busy").Add(1)
				r := w.run(ctx, it)
				tel.Gauge("crawl.lines.busy").Add(-1)
				if r.err != nil && ctx.Err() == nil && it.Attempt < m.MaxRestarts {
					// Supervisor: the attempt failed on its own (error,
					// panic, watchdog) — requeue into the frontier
					// rather than report. Any line may pick it up; the
					// union read over the line journals carries the
					// pages completed before the failure.
					tel.Counter("frontier.requeues").Inc()
					it.Attempt++
					it.Priority = basePri(it.URL)
					if yieldW > 0 {
						it.Priority += yieldW * est.Boost(it.URL)
					}
					sched.Requeue(it)
					continue
				}
				if r.err == nil && r.metrics != nil {
					est.Observe(it.URL, r.metrics.States)
				}
				results <- itemResult{
					part: it.Partition, seq: it.Seq,
					graphs: r.graphs, metrics: r.metrics, err: r.err,
					requeues: it.Attempt, tripped: r.tripped,
				}
				tel.Counter("crawl.pages.done").Inc()
				sched.Done()
				pages++
			}
		}(line)
	}

	// Cancellation watch: a canceled context must wake lines blocked in
	// Next (e.g. waiting on a sibling's in-flight page).
	stopWatch := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			sched.Cancel()
		case <-stopWatch:
		}
	}()
	go func() {
		wg.Wait()
		close(stopWatch)
		close(results)
	}()

	// Assembler: the single owner of partition state and the out
	// channel. It folds item results into their partition slots and
	// emits each partition the moment its last page retires.
	go func() {
		defer close(out)
		emit := func(i int, forcedErr error) {
			ps := parts[i]
			var graphs []*model.Graph
			metrics := &Metrics{}
			var err error
			for si := range ps.urls {
				graphs = append(graphs, ps.graphs[si]...)
				if ps.metrics[si] != nil {
					metrics.Merge(ps.metrics[si])
				}
				if err == nil && ps.errs[si] != nil {
					err = ps.errs[si]
				}
			}
			if err == nil {
				err = forcedErr
			}
			if m.SaveModels && len(graphs) > 0 {
				// Partial-model flush: even a failed partition keeps
				// what it crawled, the graceful-shutdown property.
				if saveErr := model.SaveAll(ps.dir, graphs); saveErr != nil && err == nil {
					err = saveErr
				}
			}
			tel.Counter("crawl.partitions").Inc()
			if ps.tripped {
				tel.Counter("crawl.partitions.breaker_tripped").Inc()
			}
			ps.emitted = true
			out <- PartitionResult{
				Index: i, Dir: ps.dir,
				Graphs: graphs, Metrics: metrics, Err: err, Restarts: ps.restarts,
			}
		}
		// Partitions decided before any crawling: unreadable URL lists
		// and empty (or fully-duplicate) ones.
		for i, ps := range parts {
			if ps.readErr != nil {
				ps.emitted = true
				tel.Counter("crawl.partitions").Inc()
				out <- PartitionResult{Index: i, Dir: ps.dir, Metrics: &Metrics{}, Err: ps.readErr}
			} else if ps.reported == len(ps.urls) {
				emit(i, nil)
			}
		}
		for r := range results {
			ps := parts[r.part]
			ps.started = true
			ps.graphs[r.seq] = r.graphs
			ps.metrics[r.seq] = r.metrics
			ps.errs[r.seq] = r.err
			ps.restarts += r.requeues
			ps.tripped = ps.tripped || r.tripped
			ps.reported++
			if ps.reported == len(ps.urls) {
				emit(r.part, nil)
			}
		}
		// The lines have drained. Anything unemitted was cut short by
		// cancellation (or a poisoned crawl): partitions that started
		// emit partial results, untouched ones stay silent — unless the
		// whole crawl failed to initialize, which every partition must
		// report.
		cause := context.Cause(ctx)
		if cause == nil {
			cause = ctx.Err()
		}
		if err, _ := initErr.Load().(error); err != nil {
			cause = err
		}
		for i, ps := range parts {
			if ps.emitted {
				continue
			}
			if ps.started || initErr.Load() != nil {
				emit(i, cause)
			}
		}
	}()
	return out
}

// Run executes the parallel crawl and blocks until every process line
// has finished. On cancellation it returns early-but-cleanly:
// partitions completed before the cancel keep their graphs, started
// partitions contribute their partial graphs with the context error
// recorded, and untouched partitions stay empty.
func (m *MPCrawler) Run(ctx context.Context) *MPResult {
	res := &MPResult{
		GraphsByPartition: make([][]*model.Graph, len(m.Partitions)),
		Metrics:           &Metrics{},
		Errors:            make([]error, len(m.Partitions)),
		Restarts:          make([]int, len(m.Partitions)),
	}
	perPart := make([]*Metrics, len(m.Partitions))
	for pr := range m.Stream(ctx) {
		res.GraphsByPartition[pr.Index] = pr.Graphs
		res.Errors[pr.Index] = pr.Err
		res.Restarts[pr.Index] = pr.Restarts
		perPart[pr.Index] = pr.Metrics
	}
	// Merge in partition order — not completion order — so
	// Metrics.PerPage is deterministic across runs.
	for _, metrics := range perPart {
		if metrics != nil {
			res.Metrics.Merge(metrics)
		}
	}
	return res
}

// lineWorker runs one process line's page attempts on a crawler built
// by the factory, wiring in the line's checkpointer and the watchdog
// heartbeat. A panic rebuilds the crawler (its internal state is
// indeterminate after an unwind); the crawler otherwise lives for the
// whole line, so per-host circuit breakers and hot-node caches keep
// their state across pages exactly as a thesis process would.
type lineWorker struct {
	m        *MPCrawler
	cp       Checkpointer
	tel      *obs.Telemetry
	clock    fetch.Clock
	c        *Crawler
	lastBeat atomic.Int64
}

func newLineWorker(m *MPCrawler, cp Checkpointer, tel *obs.Telemetry) *lineWorker {
	w := &lineWorker{m: m, cp: cp, tel: tel, clock: m.Clock}
	if w.clock == nil {
		w.clock = fetch.RealClock{}
	}
	w.build()
	return w
}

// build constructs the line's crawler and hooks the checkpointer and
// the heartbeat into it.
func (w *lineWorker) build() {
	c := w.m.NewCrawler()
	if w.cp != nil {
		c.Opts.Checkpoint = w.cp
	}
	saved := c.Opts.OnPage
	c.Opts.OnPage = func(pm PageMetrics) {
		w.lastBeat.Store(w.clock.Now().UnixNano())
		if saved != nil {
			saved(pm)
		}
	}
	w.c = c
}

// itemOutcome is one page attempt's result.
type itemOutcome struct {
	graphs  []*model.Graph
	metrics *Metrics
	err     error
	tripped bool
}

// run crawls one page. Fault isolation happens here, per page: a panic
// is recovered at this boundary (and the crawler rebuilt), a wedged
// attempt is canceled by the watchdog, and a circuit-breaker trip is
// detected on the breaker's own counters so it can be attributed to the
// page's partition — sibling lines keep crawling undisturbed through
// all three.
func (w *lineWorker) run(ctx context.Context, it frontier.Item) (res itemOutcome) {
	ictx := ctx
	// Watchdog: cancel the attempt when no page completes within
	// StuckTimeout. Staleness is measured on the injectable Clock (so
	// virtual-clock tests can wedge and trip it deterministically)
	// while the polling cadence runs on a cheap wall ticker.
	if w.m.StuckTimeout > 0 {
		var cancel context.CancelCauseFunc
		ictx, cancel = context.WithCancelCause(ctx)
		defer cancel(nil)
		w.lastBeat.Store(w.clock.Now().UnixNano())
		stop := make(chan struct{})
		defer close(stop)
		go w.watchdog(stop, cancel)
	}
	// Trips are detected on the breaker's own counters, not the crawl
	// metrics: a page that failed *because* the circuit opened is
	// dropped from Metrics by the skip-and-count policy, but its open
	// transition still shows in the stats delta.
	var opensStart int64
	bstats := fetch.FindBreakerStats(w.c.Fetcher)
	if bstats != nil {
		opensStart = bstats.BreakerStats().Opens
	}
	func() {
		defer func() {
			if r := recover(); r != nil {
				// Graphs built before the panic are indeterminate —
				// drop them; the journal, not the wreckage, is the
				// requeue's source of truth. The crawler is rebuilt:
				// its internal state unwound mid-flight.
				res.graphs = nil
				res.err = fmt.Errorf("core: page %s: panic: %v", it.URL, r)
				w.tel.Counter("crawl.line.panics").Inc()
				w.tel.Counter("crawl.line.restarts").Inc()
				w.build()
			}
		}()
		res.graphs, res.metrics, res.err = w.c.CrawlAll(ictx, []string{it.URL})
	}()
	if res.metrics == nil {
		res.metrics = &Metrics{}
	}
	if res.err != nil && errors.Is(context.Cause(ictx), ErrLineStuck) {
		// Surface the watchdog trip instead of a bare context.Canceled,
		// so the caller (and the supervisor's requeue check against the
		// *outer* context) can tell a wedged page from a Ctrl-C.
		res.err = fmt.Errorf("core: page %s: %w", it.URL, ErrLineStuck)
	}
	if bstats != nil && bstats.BreakerStats().Opens > opensStart {
		res.tripped = true
	}
	if res.err != nil && errors.Is(res.err, fetch.ErrBreakerOpen) {
		res.tripped = true
	}
	return res
}

// watchdog cancels the current attempt when the heartbeat goes stale.
func (w *lineWorker) watchdog(stop <-chan struct{}, cancel context.CancelCauseFunc) {
	poll := w.m.StuckTimeout / 8
	if poll < time.Millisecond {
		poll = time.Millisecond
	}
	if poll > 250*time.Millisecond {
		poll = 250 * time.Millisecond
	}
	ticker := time.NewTicker(poll)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
			stale := w.clock.Now().UnixNano() - w.lastBeat.Load()
			if time.Duration(stale) > w.m.StuckTimeout {
				w.tel.Counter("crawl.line.watchdog_trips").Inc()
				cancel(ErrLineStuck)
				return
			}
		}
	}
}
