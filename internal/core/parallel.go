package core

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"

	"ajaxcrawl/internal/fetch"
	"ajaxcrawl/internal/model"
	"ajaxcrawl/internal/obs"
)

// MPCrawler is the parallel crawler of chapter 6: N "process lines" each
// serially take the next unprocessed partition, crawl its URLs with an
// isolated crawler instance, and store the resulting application models
// into the partition directory. Process lines share nothing but the
// partition counter — goroutines stand in for the thesis's JVM processes.
type MPCrawler struct {
	// NewCrawler builds the per-process-line crawler. Each process line
	// calls it once, so fetchers/caches can be isolated or shared as the
	// factory decides.
	NewCrawler func() *Crawler
	// ProcLines is the number of concurrent process lines
	// (MP_CRAWLER_NUM_OF_PROC_LINES). 1 means no parallelism.
	ProcLines int
	// Partitions are the partition directories to process, as produced
	// by URLPartitioner.Partition.
	Partitions []string
	// SaveModels controls whether each partition's graphs are serialized
	// into its directory (the thesis always does; tests may skip I/O).
	SaveModels bool
}

// PartitionResult is one completed partition, as emitted by Stream while
// later partitions are still crawling.
type PartitionResult struct {
	// Index is the partition's position in Partitions.
	Index int
	// Dir is the partition directory.
	Dir string
	// Graphs are the partition's application models (possibly partial
	// when Err is a cancellation).
	Graphs []*model.Graph
	// Metrics are this partition's crawl metrics (never nil).
	Metrics *Metrics
	// Err is the partition's failure, if any.
	Err error
}

// MPResult is the outcome of a parallel crawl.
type MPResult struct {
	// GraphsByPartition holds each partition's application models, index-
	// aligned with Partitions.
	GraphsByPartition [][]*model.Graph
	// Metrics aggregates all process lines. PerPage is ordered by
	// partition (then by URL order within the partition), not by
	// goroutine completion order, so experiment output is reproducible
	// run to run.
	Metrics *Metrics
	// Errors holds the first error of each failed partition (nil entries
	// for successful ones). A canceled run leaves ctx.Err() in the
	// partitions that were cut short and nil in untouched ones.
	Errors []error
}

// Graphs flattens all partitions' graphs in partition order.
func (r *MPResult) Graphs() []*model.Graph {
	var out []*model.Graph
	for _, gs := range r.GraphsByPartition {
		out = append(out, gs...)
	}
	return out
}

// Err returns the first partition error, if any.
func (r *MPResult) Err() error {
	for i, err := range r.Errors {
		if err != nil {
			return fmt.Errorf("core: partition %d: %w", i+1, err)
		}
	}
	return nil
}

// Stream starts the process lines and returns a channel that yields each
// partition as soon as it completes, so downstream phases (indexing) can
// overlap with crawling. The channel is closed once every process line
// has drained. Canceling ctx stops the hand-out of new partitions and
// cuts short in-flight ones; their partial graphs are still emitted,
// with Err set to the context error.
func (m *MPCrawler) Stream(ctx context.Context) <-chan PartitionResult {
	n := m.ProcLines
	if n <= 0 {
		n = 1
	}
	out := make(chan PartitionResult)
	var (
		next int
		mu   sync.Mutex // guards next
		wg   sync.WaitGroup
	)
	for line := 0; line < n; line++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			crawler := m.NewCrawler()
			for {
				// getPartitionID(): synchronized hand-out of the next
				// partition (thesis §6.3.1).
				mu.Lock()
				idx := next
				next++
				mu.Unlock()
				if idx >= len(m.Partitions) || ctx.Err() != nil {
					return
				}
				graphs, metrics, err := m.runPartition(ctx, crawler, m.Partitions[idx])
				if metrics == nil {
					metrics = &Metrics{}
				}
				out <- PartitionResult{
					Index:   idx,
					Dir:     m.Partitions[idx],
					Graphs:  graphs,
					Metrics: metrics,
					Err:     err,
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(out)
	}()
	return out
}

// Run executes the parallel crawl and blocks until every process line
// has finished. On cancellation it returns early-but-cleanly: partitions
// completed before the cancel keep their graphs, in-flight partitions
// contribute their partial graphs with ctx.Err() recorded, and untouched
// partitions stay empty.
func (m *MPCrawler) Run(ctx context.Context) *MPResult {
	res := &MPResult{
		GraphsByPartition: make([][]*model.Graph, len(m.Partitions)),
		Metrics:           &Metrics{},
		Errors:            make([]error, len(m.Partitions)),
	}
	perPart := make([]*Metrics, len(m.Partitions))
	for pr := range m.Stream(ctx) {
		res.GraphsByPartition[pr.Index] = pr.Graphs
		res.Errors[pr.Index] = pr.Err
		perPart[pr.Index] = pr.Metrics
	}
	// Merge in partition order — not completion order — so
	// Metrics.PerPage is deterministic across runs.
	for _, metrics := range perPart {
		if metrics != nil {
			res.Metrics.Merge(metrics)
		}
	}
	return res
}

// runPartition crawls one partition directory like a SimpleAjaxCrawler
// process: read URLsToCrawl.txt, crawl each page, serialize the models.
// Models crawled before an error are still flushed to disk (the partial-
// model flush a graceful shutdown relies on).
//
// Fault isolation: a partition whose circuit breaker trips — every
// remaining page of a dying host short-circuiting into PagesFailed, or
// the whole partition erroring under FailFast — stays contained here.
// Its result is emitted with the error recorded, the tripped partition
// is counted in crawl.partitions.breaker_tripped, and sibling process
// lines (whose crawlers hold their own breaker state when built through
// Options.BreakerConfig) keep crawling their partitions undisturbed.
func (m *MPCrawler) runPartition(ctx context.Context, c *Crawler, dir string) (graphs []*model.Graph, metrics *Metrics, err error) {
	tel := obs.From(ctx)
	ctx, sp := obs.StartSpan(ctx, obs.SpanPartitionCrawl, obs.A("dir", dir))
	tel.Gauge("crawl.partitions.inflight").Add(1)
	// Trips are detected on the breaker's own counters, not the crawl
	// metrics: a page that failed *because* the circuit opened is dropped
	// from Metrics by the skip-and-count policy, but its open transition
	// still shows in the stats delta.
	var opensStart int64
	bstats := fetch.FindBreakerStats(c.Fetcher)
	if bstats != nil {
		opensStart = bstats.BreakerStats().Opens
	}
	defer func() {
		tel.Gauge("crawl.partitions.inflight").Add(-1)
		tel.Counter("crawl.partitions").Inc()
		if metrics != nil {
			sp.SetAttr("pages", strconv.Itoa(metrics.Pages))
		}
		tripped := bstats != nil && bstats.BreakerStats().Opens > opensStart
		if tripped || errors.Is(err, fetch.ErrBreakerOpen) {
			tel.Counter("crawl.partitions.breaker_tripped").Inc()
			sp.SetAttr("breaker", "tripped")
		}
		sp.End(err)
	}()
	urls, err := ReadPartition(dir)
	if err != nil {
		return nil, nil, err
	}
	graphs, metrics, err = c.CrawlAll(ctx, urls)
	if m.SaveModels && len(graphs) > 0 {
		if saveErr := model.SaveAll(dir, graphs); saveErr != nil && err == nil {
			err = saveErr
		}
	}
	return graphs, metrics, err
}
