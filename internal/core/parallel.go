package core

import (
	"fmt"
	"sync"

	"ajaxcrawl/internal/model"
)

// MPCrawler is the parallel crawler of chapter 6: N "process lines" each
// serially take the next unprocessed partition, crawl its URLs with an
// isolated crawler instance, and store the resulting application models
// into the partition directory. Process lines share nothing but the
// partition counter — goroutines stand in for the thesis's JVM processes.
type MPCrawler struct {
	// NewCrawler builds the per-process-line crawler. Each process line
	// calls it once, so fetchers/caches can be isolated or shared as the
	// factory decides.
	NewCrawler func() *Crawler
	// ProcLines is the number of concurrent process lines
	// (MP_CRAWLER_NUM_OF_PROC_LINES). 1 means no parallelism.
	ProcLines int
	// Partitions are the partition directories to process, as produced
	// by URLPartitioner.Partition.
	Partitions []string
	// SaveModels controls whether each partition's graphs are serialized
	// into its directory (the thesis always does; tests may skip I/O).
	SaveModels bool
}

// MPResult is the outcome of a parallel crawl.
type MPResult struct {
	// GraphsByPartition holds each partition's application models, index-
	// aligned with Partitions.
	GraphsByPartition [][]*model.Graph
	// Metrics aggregates all process lines.
	Metrics *Metrics
	// Errors holds the first error of each failed partition (nil entries
	// for successful ones).
	Errors []error
}

// Graphs flattens all partitions' graphs in partition order.
func (r *MPResult) Graphs() []*model.Graph {
	var out []*model.Graph
	for _, gs := range r.GraphsByPartition {
		out = append(out, gs...)
	}
	return out
}

// Err returns the first partition error, if any.
func (r *MPResult) Err() error {
	for i, err := range r.Errors {
		if err != nil {
			return fmt.Errorf("core: partition %d: %w", i+1, err)
		}
	}
	return nil
}

// Run executes the parallel crawl and blocks until every partition is
// processed.
func (m *MPCrawler) Run() *MPResult {
	n := m.ProcLines
	if n <= 0 {
		n = 1
	}
	res := &MPResult{
		GraphsByPartition: make([][]*model.Graph, len(m.Partitions)),
		Metrics:           &Metrics{},
		Errors:            make([]error, len(m.Partitions)),
	}
	var (
		next int
		mu   sync.Mutex // guards next and res.Metrics
		wg   sync.WaitGroup
	)
	for line := 0; line < n; line++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			crawler := m.NewCrawler()
			for {
				// getPartitionID(): synchronized hand-out of the next
				// partition (thesis §6.3.1).
				mu.Lock()
				idx := next
				next++
				mu.Unlock()
				if idx >= len(m.Partitions) {
					return
				}
				graphs, metrics, err := m.runPartition(crawler, m.Partitions[idx])
				mu.Lock()
				res.GraphsByPartition[idx] = graphs
				res.Errors[idx] = err
				if metrics != nil {
					res.Metrics.Merge(metrics)
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	return res
}

// runPartition crawls one partition directory like a SimpleAjaxCrawler
// process: read URLsToCrawl.txt, crawl each page, serialize the models.
func (m *MPCrawler) runPartition(c *Crawler, dir string) ([]*model.Graph, *Metrics, error) {
	urls, err := ReadPartition(dir)
	if err != nil {
		return nil, nil, err
	}
	graphs, metrics, err := c.CrawlAll(urls)
	if err != nil {
		return graphs, metrics, err
	}
	if m.SaveModels {
		if err := model.SaveAll(dir, graphs); err != nil {
			return graphs, metrics, err
		}
	}
	return graphs, metrics, nil
}
