package core

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"ajaxcrawl/internal/fetch"
	"ajaxcrawl/internal/obs"
	"ajaxcrawl/internal/webapp"
)

// spansByName indexes emitted span records by span name.
func spansByName(recs []obs.SpanRecord) map[string][]obs.SpanRecord {
	out := make(map[string][]obs.SpanRecord)
	for _, r := range recs {
		out[r.Name] = append(out[r.Name], r)
	}
	return out
}

// TestCrawlEmitsSpansAndCounters crawls one page with telemetry on the
// context and checks the trace and registry see every layer: the page
// span, event dispatches nested under it, XHR sends, hot-node cache
// outcomes, and the registry counters the page's summary metrics fold
// into (the no-drift guarantee between core.Metrics and the registry).
func TestCrawlEmitsSpansAndCounters(t *testing.T) {
	site, f := newSiteFetcher(20, 1)
	v := multiPageVideo(t, site, 3)

	reg := obs.NewRegistry()
	ring := obs.NewRingSink(4096)
	ctx := obs.With(context.Background(), obs.New(reg, ring))

	c := New(f, Options{UseHotNode: true})
	_, pm, err := c.CrawlPage(ctx, webapp.WatchURL(v.ID))
	if err != nil {
		t.Fatal(err)
	}

	by := spansByName(ring.Recent(0))
	pages := by[obs.SpanPageCrawl]
	if len(pages) != 1 {
		t.Fatalf("page.crawl spans = %d, want 1", len(pages))
	}
	page := pages[0]
	if page.Err != "" {
		t.Fatalf("page.crawl span has error %q", page.Err)
	}
	if got := page.Attrs["url"]; got != webapp.WatchURL(v.ID) {
		t.Fatalf("page.crawl url attr = %q", got)
	}
	if len(by[obs.SpanEventDispatch]) == 0 {
		t.Fatal("no event.dispatch spans emitted")
	}
	for _, d := range by[obs.SpanEventDispatch] {
		if d.Parent != page.ID {
			t.Fatalf("event.dispatch parent = %d, want page span %d", d.Parent, page.ID)
		}
	}
	if len(by[obs.SpanXHRSend]) == 0 {
		t.Fatal("no xhr.send spans emitted")
	}
	if pm.HotNodeHits > 0 && len(by[obs.SpanHotNodeHit]) != pm.HotNodeHits {
		t.Fatalf("hotnode.hit events = %d, want %d", len(by[obs.SpanHotNodeHit]), pm.HotNodeHits)
	}

	snap := reg.Snapshot()
	// The reflection fold must make the registry agree exactly with the
	// summary API.
	checks := map[string]int{
		"crawl.page.events_triggered": pm.EventsTriggered,
		"crawl.page.xhr_sends":        pm.XHRSends,
		"crawl.page.states":           pm.States,
		"crawl.page.hot_node_hits":    pm.HotNodeHits,
	}
	for name, want := range checks {
		if got := snap.Counters[name]; got != int64(want) {
			t.Errorf("counter %s = %d, want %d (registry drifted from PageMetrics)", name, got, want)
		}
	}
	if snap.Counters["crawl.events.triggered"] != int64(pm.EventsTriggered) {
		t.Errorf("live counter crawl.events.triggered = %d, want %d",
			snap.Counters["crawl.events.triggered"], pm.EventsTriggered)
	}
	if g := snap.Gauges["crawl.pages.inflight"]; g != 0 {
		t.Errorf("crawl.pages.inflight = %d after crawl, want 0", g)
	}
}

// TestPageTimeoutStillEmitsPageSpan is the cancellation half of the
// trace-layer contract: when the per-page budget expires mid-crawl, the
// open page.crawl span must still be closed and emitted, carrying the
// context error — an aborted page may not vanish from the trace.
func TestPageTimeoutStillEmitsPageSpan(t *testing.T) {
	site, f := newSiteFetcher(20, 1)
	v := multiPageVideo(t, site, 3)

	// AJAX calls hang until the context dies, so the page blows its
	// budget mid-crawl with the span still open.
	hanging := fetch.Func(func(ctx context.Context, rawurl string) (*fetch.Response, error) {
		if strings.Contains(rawurl, "comments") {
			<-ctx.Done()
			return nil, ctx.Err()
		}
		return f.Fetch(ctx, rawurl)
	})

	ring := obs.NewRingSink(256)
	ctx := obs.With(context.Background(), obs.New(obs.NewRegistry(), ring))

	c := New(hanging, Options{PageTimeout: 50 * time.Millisecond})
	_, _, err := c.CrawlPage(ctx, webapp.WatchURL(v.ID))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}

	pages := spansByName(ring.Recent(0))[obs.SpanPageCrawl]
	if len(pages) != 1 {
		t.Fatalf("page.crawl spans after abort = %d, want 1", len(pages))
	}
	if pages[0].Err == "" {
		t.Fatal("aborted page.crawl span should carry the context error")
	}
	if pages[0].Dur() <= 0 {
		t.Fatal("aborted span has no duration")
	}
}
