package core

import (
	"bytes"
	"context"
	"encoding/gob"
	"fmt"

	"ajaxcrawl/internal/checkpoint"
	"ajaxcrawl/internal/dom"
	"ajaxcrawl/internal/model"
)

// Checkpointer is the crawler's durable-progress hook. When
// Options.Checkpoint is set, CrawlAll journals every completed page
// through it and consults it before crawling, so a crawl resumed after a
// crash (or a supervisor restart) skips already-completed pages and
// converges to the same state set as an uninterrupted run. Mid-page
// records — admitted state hashes and hot-node cache fills — trace
// partial progress through an interrupted page: the hashes for
// diagnostics, the hot entries to re-seed the cache on re-crawl.
//
// Implementations must tolerate being called from one process line at a
// time; the parallel crawler opens one Checkpointer per partition.
type Checkpointer interface {
	// Completed returns the journaled result of url, if that page
	// finished in a previous (recovered) run or earlier in this one.
	Completed(url string) (*model.Graph, PageMetrics, bool)
	// PageDone durably records a completed page. A non-nil error means
	// durability is broken and fails the crawl: pages reported crawled
	// must never be silently un-journaled.
	PageDone(url string, g *model.Graph, pm PageMetrics) error
	// StateAdmitted records a state discovered mid-page (best-effort).
	StateAdmitted(url string, h dom.Hash) error
	// HotNode records one hot-node cache fill mid-page (best-effort).
	HotNode(url, key, body string) error
	// HotEntries returns journaled hot-node fills for url, used to
	// pre-warm the cache when re-crawling an interrupted page.
	HotEntries(url string) map[string]string
	// Flush pushes buffered records to stable storage.
	Flush() error
	// Close flushes and releases the underlying journal. The owner that
	// opened the Checkpointer closes it — for the parallel crawler that
	// is the partition supervisor, on every exit path including panics
	// and cancellation, which is what makes Ctrl-C a graceful flush.
	Close() error
}

// journalCheckpointer adapts a checkpoint.Journal to the Checkpointer
// hook, gob-encoding PageMetrics into the journal's opaque metrics
// payload so a resumed run's aggregate metrics match an uninterrupted
// one.
type journalCheckpointer struct {
	j *checkpoint.Journal
}

// OpenJournalCheckpointer opens (resume=true) or resets (resume=false)
// the checkpoint journal in dir and adapts it to the crawler's
// Checkpointer hook. The context supplies telemetry for the journal's
// checkpoint.{write,compact,recover} spans and journal-byte counters.
func OpenJournalCheckpointer(ctx context.Context, dir string, resume bool) (Checkpointer, error) {
	j, err := checkpoint.Open(ctx, dir, checkpoint.Options{Reset: !resume})
	if err != nil {
		return nil, fmt.Errorf("core: checkpoint %s: %w", dir, err)
	}
	return &journalCheckpointer{j: j}, nil
}

// Journal exposes the underlying journal (recovery stats for callers
// that report them).
func (c *journalCheckpointer) Journal() *checkpoint.Journal { return c.j }

func (c *journalCheckpointer) Completed(url string) (*model.Graph, PageMetrics, bool) {
	rec, ok := c.j.Completed(url)
	if !ok {
		return nil, PageMetrics{}, false
	}
	var pm PageMetrics
	if len(rec.Metrics) > 0 {
		if err := gob.NewDecoder(bytes.NewReader(rec.Metrics)).Decode(&pm); err != nil {
			// The frame passed its checksum, so this is a version skew
			// between writer and reader, not corruption. The graph is
			// still good; resume with zeroed metrics rather than
			// re-crawling the page.
			pm = PageMetrics{URL: url}
		}
	}
	return rec.Graph, pm, true
}

func (c *journalCheckpointer) PageDone(url string, g *model.Graph, pm PageMetrics) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(pm); err != nil {
		return fmt.Errorf("core: checkpoint encode metrics %s: %w", url, err)
	}
	return c.j.PageDone(checkpoint.PageRecord{URL: url, Graph: g, Metrics: buf.Bytes()})
}

func (c *journalCheckpointer) StateAdmitted(url string, h dom.Hash) error {
	return c.j.StateAdmitted(url, h)
}

func (c *journalCheckpointer) HotNode(url, key, body string) error {
	return c.j.HotNode(url, key, body)
}

func (c *journalCheckpointer) HotEntries(url string) map[string]string {
	return c.j.HotEntries(url)
}

func (c *journalCheckpointer) Flush() error { return c.j.Flush() }

func (c *journalCheckpointer) Close() error { return c.j.Close() }
