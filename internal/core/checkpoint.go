package core

import (
	"bytes"
	"context"
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"

	"ajaxcrawl/internal/checkpoint"
	"ajaxcrawl/internal/dom"
	"ajaxcrawl/internal/model"
	"ajaxcrawl/internal/obs"
	"ajaxcrawl/internal/shingle"
)

// Checkpointer is the crawler's durable-progress hook. When
// Options.Checkpoint is set, CrawlAll journals every completed page
// through it and consults it before crawling, so a crawl resumed after a
// crash (or a supervisor restart) skips already-completed pages and
// converges to the same state set as an uninterrupted run. Mid-page
// records — admitted state hashes and hot-node cache fills — trace
// partial progress through an interrupted page: the hashes for
// diagnostics, the hot entries to re-seed the cache on re-crawl.
//
// Implementations must tolerate being called from one process line at a
// time; the parallel crawler opens one Checkpointer per process line
// (see CrawlCheckpoints).
type Checkpointer interface {
	// Completed returns the journaled result of url, if that page
	// finished in a previous (recovered) run or earlier in this one.
	Completed(url string) (*model.Graph, PageMetrics, bool)
	// PageDone durably records a completed page. A non-nil error means
	// durability is broken and fails the crawl: pages reported crawled
	// must never be silently un-journaled.
	PageDone(url string, g *model.Graph, pm PageMetrics) error
	// StateAdmitted records a state discovered mid-page (best-effort).
	StateAdmitted(url string, h dom.Hash) error
	// StateSig records the admitted state's near-dup signature mid-page
	// (best-effort), so a resumed re-crawl of an interrupted page
	// rebuilds its LSH index without re-sketching.
	StateSig(url string, h dom.Hash, sig shingle.Signature) error
	// StateSigs returns journaled signatures for url keyed by state
	// hash, consumed by stateAdmitter.seedSigs on re-crawl.
	StateSigs(url string) map[dom.Hash]shingle.Signature
	// HotNode records one hot-node cache fill mid-page (best-effort).
	HotNode(url, key, body string) error
	// HotEntries returns journaled hot-node fills for url, used to
	// pre-warm the cache when re-crawling an interrupted page.
	HotEntries(url string) map[string]string
	// Flush pushes buffered records to stable storage.
	Flush() error
	// Close flushes and releases the underlying journal. The owner that
	// opened the Checkpointer closes it — for the parallel crawler that
	// is the partition supervisor, on every exit path including panics
	// and cancellation, which is what makes Ctrl-C a graceful flush.
	Close() error
}

// journalCheckpointer adapts a checkpoint.Journal to the Checkpointer
// hook, gob-encoding PageMetrics into the journal's opaque metrics
// payload so a resumed run's aggregate metrics match an uninterrupted
// one.
type journalCheckpointer struct {
	j *checkpoint.Journal
}

// OpenJournalCheckpointer opens (resume=true) or resets (resume=false)
// the checkpoint journal in dir and adapts it to the crawler's
// Checkpointer hook. The context supplies telemetry for the journal's
// checkpoint.{write,compact,recover} spans and journal-byte counters.
func OpenJournalCheckpointer(ctx context.Context, dir string, resume bool) (Checkpointer, error) {
	j, err := checkpoint.Open(ctx, dir, checkpoint.Options{Reset: !resume})
	if err != nil {
		return nil, fmt.Errorf("core: checkpoint %s: %w", dir, err)
	}
	return &journalCheckpointer{j: j}, nil
}

// Journal exposes the underlying journal (recovery stats for callers
// that report them).
func (c *journalCheckpointer) Journal() *checkpoint.Journal { return c.j }

func (c *journalCheckpointer) Completed(url string) (*model.Graph, PageMetrics, bool) {
	rec, ok := c.j.Completed(url)
	if !ok {
		return nil, PageMetrics{}, false
	}
	return rec.Graph, decodePageMetrics(url, rec.Metrics), true
}

// decodePageMetrics decodes the journal's opaque metrics payload. A
// payload that passed its checksum but no longer decodes is version
// skew between writer and reader, not corruption: the graph is still
// good, so resume with zeroed metrics rather than re-crawling the page.
func decodePageMetrics(url string, raw []byte) PageMetrics {
	var pm PageMetrics
	if len(raw) > 0 {
		if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&pm); err != nil {
			pm = PageMetrics{URL: url}
		}
	}
	return pm
}

func (c *journalCheckpointer) PageDone(url string, g *model.Graph, pm PageMetrics) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(pm); err != nil {
		return fmt.Errorf("core: checkpoint encode metrics %s: %w", url, err)
	}
	return c.j.PageDone(checkpoint.PageRecord{URL: url, Graph: g, Metrics: buf.Bytes()})
}

func (c *journalCheckpointer) StateAdmitted(url string, h dom.Hash) error {
	return c.j.StateAdmitted(url, h)
}

func (c *journalCheckpointer) StateSig(url string, h dom.Hash, sig shingle.Signature) error {
	return c.j.StateSig(url, h, sig)
}

func (c *journalCheckpointer) StateSigs(url string) map[dom.Hash]shingle.Signature {
	return c.j.StateSigs(url)
}

func (c *journalCheckpointer) HotNode(url, key, body string) error {
	return c.j.HotNode(url, key, body)
}

func (c *journalCheckpointer) HotEntries(url string) map[string]string {
	return c.j.HotEntries(url)
}

func (c *journalCheckpointer) Flush() error { return c.j.Flush() }

func (c *journalCheckpointer) Close() error { return c.j.Close() }

// frontierDirName is the frontier journal's subdirectory under a
// CrawlCheckpoints root; linePrefix names the per-line journals.
const (
	frontierDirName = "frontier"
	linePrefix      = "line-"
)

// CrawlCheckpoints manages the parallel crawl's durable state under one
// root directory: one journal per process line (line-<i>/) plus a
// frontier journal (frontier/) recording every admitted URL with its
// priority. The per-partition journals of the static-partition era are
// replaced by this layout: pages land in the journal of whichever line
// crawled them, and reads union every line's journal, so resuming with
// a different line count — or after work stealing moved a page between
// lines — still finds every completed page.
//
// One CrawlCheckpoints serves one crawl; open a fresh one per run.
type CrawlCheckpoints struct {
	mu       sync.Mutex
	ctx      context.Context
	dir      string
	journals map[string]*checkpoint.Journal
	frontier *checkpoint.Journal
	// recovered is the frontier snapshot replayed on resume.
	recovered []checkpoint.FrontierRecord
}

// OpenCrawlCheckpoints opens the checkpoint root at dir. With
// resume=false any line and frontier journals from a previous crawl are
// discarded; with resume=true every existing line journal is recovered
// (whatever line count wrote it) along with the frontier snapshot. The
// context supplies telemetry for the journals and the frontier.snapshot
// recovery span.
func OpenCrawlCheckpoints(ctx context.Context, dir string, resume bool) (*CrawlCheckpoints, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("core: checkpoint root %s: %w", dir, err)
	}
	c := &CrawlCheckpoints{ctx: ctx, dir: dir, journals: make(map[string]*checkpoint.Journal)}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("core: checkpoint root %s: %w", dir, err)
	}
	if !resume {
		for _, e := range entries {
			if e.IsDir() && (strings.HasPrefix(e.Name(), linePrefix) || e.Name() == frontierDirName) {
				if err := os.RemoveAll(filepath.Join(dir, e.Name())); err != nil {
					return nil, fmt.Errorf("core: checkpoint reset %s: %w", dir, err)
				}
			}
		}
	} else {
		for _, e := range entries {
			if !e.IsDir() || !strings.HasPrefix(e.Name(), linePrefix) {
				continue
			}
			j, jerr := checkpoint.Open(ctx, filepath.Join(dir, e.Name()), checkpoint.Options{})
			if jerr != nil {
				c.Close()
				return nil, fmt.Errorf("core: checkpoint %s: %w", e.Name(), jerr)
			}
			c.journals[e.Name()] = j
		}
	}
	// The frontier journal holds only frontier records, so it never
	// reaches a page-count compaction trigger; compaction is moot.
	_, sp := obs.StartSpan(ctx, obs.SpanFrontierSnapshot, obs.A("dir", dir))
	fj, ferr := checkpoint.Open(ctx, filepath.Join(dir, frontierDirName), checkpoint.Options{CompactEvery: -1})
	if ferr != nil {
		sp.End(ferr)
		c.Close()
		return nil, fmt.Errorf("core: frontier journal %s: %w", dir, ferr)
	}
	c.frontier = fj
	c.recovered = fj.FrontierEntries()
	sp.SetAttr("urls", strconv.Itoa(len(c.recovered)))
	sp.SetAttr("pages", strconv.Itoa(c.CompletedPages()))
	sp.End(nil)
	return c, nil
}

// Line returns process line line's Checkpointer: writes go to the
// line's own journal, reads union every recovered and live journal. The
// line closes (flushing) it on every exit path; the returned
// Checkpointer's Close leaves sibling journals open.
func (c *CrawlCheckpoints) Line(line int) (Checkpointer, error) {
	name := linePrefix + strconv.Itoa(line)
	c.mu.Lock()
	defer c.mu.Unlock()
	j := c.journals[name]
	if j == nil {
		var err error
		j, err = checkpoint.Open(c.ctx, filepath.Join(c.dir, name), checkpoint.Options{})
		if err != nil {
			return nil, fmt.Errorf("core: checkpoint %s: %w", name, err)
		}
		c.journals[name] = j
	}
	return &lineCheckpointer{c: c, j: j}, nil
}

// FrontierAdmitted journals one frontier admission (buffered; call
// FlushFrontier after the admission batch).
func (c *CrawlCheckpoints) FrontierAdmitted(rec checkpoint.FrontierRecord) error {
	return c.frontier.FrontierAdmitted(rec)
}

// FlushFrontier pushes buffered frontier records to stable storage.
func (c *CrawlCheckpoints) FlushFrontier() error { return c.frontier.Flush() }

// RecoveredFrontier returns the frontier snapshot replayed on open —
// every URL a previous run admitted, with its priority, so a resumed
// crawl rebuilds the same prioritized frontier.
func (c *CrawlCheckpoints) RecoveredFrontier() []checkpoint.FrontierRecord {
	return c.recovered
}

// CompletedPages counts journaled pages across every line journal.
func (c *CrawlCheckpoints) CompletedPages() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, j := range c.journals {
		n += j.CompletedPages()
	}
	return n
}

// snapshotJournals returns the current journal set for a union read.
func (c *CrawlCheckpoints) snapshotJournals() []*checkpoint.Journal {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*checkpoint.Journal, 0, len(c.journals))
	for _, j := range c.journals {
		out = append(out, j)
	}
	return out
}

// completed is the union Completed across every line journal.
func (c *CrawlCheckpoints) completed(url string) (*model.Graph, PageMetrics, bool) {
	for _, j := range c.snapshotJournals() {
		if rec, ok := j.Completed(url); ok {
			return rec.Graph, decodePageMetrics(url, rec.Metrics), true
		}
	}
	return nil, PageMetrics{}, false
}

// hotEntries is the union HotEntries across every line journal: an
// interrupted page's cache fills live in whichever journals its earlier
// attempts wrote, possibly several when restarts moved it across lines.
func (c *CrawlCheckpoints) hotEntries(url string) map[string]string {
	var out map[string]string
	for _, j := range c.snapshotJournals() {
		for k, v := range j.HotEntries(url) {
			if out == nil {
				out = make(map[string]string)
			}
			if _, dup := out[k]; !dup {
				out[k] = v
			}
		}
	}
	return out
}

// stateSigs is the union StateSigs across every line journal, mirroring
// hotEntries: an interrupted page's signatures live in whichever
// journals its earlier attempts wrote.
func (c *CrawlCheckpoints) stateSigs(url string) map[dom.Hash]shingle.Signature {
	var out map[dom.Hash]shingle.Signature
	for _, j := range c.snapshotJournals() {
		for h, sig := range j.StateSigs(url) {
			if out == nil {
				out = make(map[dom.Hash]shingle.Signature)
			}
			if _, dup := out[h]; !dup {
				out[h] = sig
			}
		}
	}
	return out
}

// Close closes every line journal and the frontier journal, returning
// the first error. Call after the crawl fully drains.
func (c *CrawlCheckpoints) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var first error
	for _, j := range c.journals {
		if err := j.Close(); err != nil && first == nil {
			first = err
		}
	}
	if c.frontier != nil {
		if err := c.frontier.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// lineCheckpointer is one process line's view of CrawlCheckpoints:
// reads union all journals, writes land in the line's own.
type lineCheckpointer struct {
	c *CrawlCheckpoints
	j *checkpoint.Journal
}

func (l *lineCheckpointer) Completed(url string) (*model.Graph, PageMetrics, bool) {
	return l.c.completed(url)
}

func (l *lineCheckpointer) PageDone(url string, g *model.Graph, pm PageMetrics) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(pm); err != nil {
		return fmt.Errorf("core: checkpoint encode metrics %s: %w", url, err)
	}
	return l.j.PageDone(checkpoint.PageRecord{URL: url, Graph: g, Metrics: buf.Bytes()})
}

func (l *lineCheckpointer) StateAdmitted(url string, h dom.Hash) error {
	return l.j.StateAdmitted(url, h)
}

func (l *lineCheckpointer) StateSig(url string, h dom.Hash, sig shingle.Signature) error {
	return l.j.StateSig(url, h, sig)
}

func (l *lineCheckpointer) StateSigs(url string) map[dom.Hash]shingle.Signature {
	return l.c.stateSigs(url)
}

func (l *lineCheckpointer) HotNode(url, key, body string) error {
	return l.j.HotNode(url, key, body)
}

func (l *lineCheckpointer) HotEntries(url string) map[string]string {
	return l.c.hotEntries(url)
}

func (l *lineCheckpointer) Flush() error { return l.j.Flush() }

func (l *lineCheckpointer) Close() error { return l.j.Close() }
