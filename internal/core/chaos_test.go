package core

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"ajaxcrawl/internal/dom"
	"ajaxcrawl/internal/fetch"
	"ajaxcrawl/internal/model"
	"ajaxcrawl/internal/obs"
	"ajaxcrawl/internal/webapp"
)

// stateSets maps each crawled URL to its sorted state hashes, the
// crawl-result fingerprint the chaos test compares.
func stateSets(graphs []*model.Graph) map[string][]dom.Hash {
	out := make(map[string][]dom.Hash, len(graphs))
	for _, g := range graphs {
		hashes := make([]dom.Hash, 0, len(g.States))
		for _, s := range g.States {
			hashes = append(hashes, s.Hash)
		}
		sort.Slice(hashes, func(i, j int) bool {
			return bytes.Compare(hashes[i][:], hashes[j][:]) < 0
		})
		out[g.URL] = hashes
	}
	return out
}

// TestChaosCrawlMatchesFaultFreeBaseline is the headline fault-tolerance
// property: a crawl under 30% injected transient faults (connection
// resets and truncated bodies), run through the retry layer, discovers
// exactly the state set of a fault-free crawl — zero pages lost. All
// backoff sleeps run on the VirtualClock, so the whole chaos schedule
// costs no wall time.
func TestChaosCrawlMatchesFaultFreeBaseline(t *testing.T) {
	site := webapp.New(webapp.DefaultConfig(10, 2008))
	var urls []string
	for i := 0; i < 6; i++ {
		urls = append(urls, webapp.WatchURL(site.VideoID(i)))
	}
	ctx := context.Background()

	// Fault-free baseline.
	baseClock := &fetch.VirtualClock{}
	baseFetcher := fetch.NewInstrumented(
		&fetch.HandlerFetcher{Handler: site.Handler()}, baseClock, 10*time.Millisecond, time.Millisecond)
	baseGraphs, baseMetrics, err := New(baseFetcher, Options{UseHotNode: true, Clock: baseClock}).CrawlAll(ctx, urls)
	if err != nil {
		t.Fatalf("baseline crawl: %v", err)
	}

	// Chaos run: 30% of fetches fault (25% resets + 5% truncations),
	// capped at 3 consecutive faults per URL so a 5-attempt retry budget
	// provably recovers every page.
	clock := &fetch.VirtualClock{}
	fetcher := fetch.NewInstrumented(
		fetch.NewFaultFetcher(
			&fetch.HandlerFetcher{Handler: site.Handler()},
			fetch.FaultConfig{ErrorRate: 0.25, TruncateRate: 0.05, MaxConsecutive: 3, Seed: 7},
			clock),
		clock, 10*time.Millisecond, time.Millisecond)
	opts := Options{
		UseHotNode:  true,
		Clock:       clock,
		RetryPolicy: &fetch.RetryPolicy{MaxAttempts: 5, BaseDelay: 50 * time.Millisecond},
	}
	graphs, metrics, err := New(fetcher, opts).CrawlAll(ctx, urls)
	if err != nil {
		t.Fatalf("chaos crawl: %v", err)
	}

	if metrics.PagesFailed != 0 {
		t.Errorf("PagesFailed = %d, want 0 (retries must recover every page)", metrics.PagesFailed)
	}
	if metrics.Retries == 0 {
		t.Error("Retries = 0: the fault injector never fired — the test is vacuous")
	}
	if metrics.PagesRecovered == 0 {
		t.Error("PagesRecovered = 0, want at least one page that needed a retry")
	}

	base, chaos := stateSets(baseGraphs), stateSets(graphs)
	if len(chaos) != len(base) {
		t.Fatalf("chaos crawl produced %d graphs, baseline %d", len(chaos), len(base))
	}
	for url, want := range base {
		got, ok := chaos[url]
		if !ok {
			t.Errorf("chaos crawl lost page %s", url)
			continue
		}
		if len(got) != len(want) {
			t.Errorf("%s: %d states under chaos, %d fault-free", url, len(got), len(want))
			continue
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("%s: state hash set diverges from baseline at %d", url, i)
				break
			}
		}
	}
	if baseMetrics.States != metrics.States {
		t.Errorf("total states = %d under chaos, %d fault-free", metrics.States, baseMetrics.States)
	}

	// Checkpointed chaos run: journaling every page must never change the
	// crawl's outcome. Same fault seed, same retry budget — the journal
	// only observes the crawl.
	ckDir := t.TempDir()
	ckClock := &fetch.VirtualClock{}
	ckFetcher := fetch.NewInstrumented(
		fetch.NewFaultFetcher(
			&fetch.HandlerFetcher{Handler: site.Handler()},
			fetch.FaultConfig{ErrorRate: 0.25, TruncateRate: 0.05, MaxConsecutive: 3, Seed: 7},
			ckClock),
		ckClock, 10*time.Millisecond, time.Millisecond)
	cp, err := OpenJournalCheckpointer(ctx, ckDir, false)
	if err != nil {
		t.Fatalf("open journal: %v", err)
	}
	ckOpts := Options{
		UseHotNode:  true,
		Clock:       ckClock,
		RetryPolicy: &fetch.RetryPolicy{MaxAttempts: 5, BaseDelay: 50 * time.Millisecond},
		Checkpoint:  cp,
	}
	ckGraphs, ckMetrics, err := New(ckFetcher, ckOpts).CrawlAll(ctx, urls)
	if err != nil {
		t.Fatalf("checkpointed chaos crawl: %v", err)
	}
	if err := cp.Close(); err != nil {
		t.Fatalf("close journal: %v", err)
	}
	if ckMetrics.States != baseMetrics.States {
		t.Errorf("checkpointed chaos crawl found %d states, baseline %d", ckMetrics.States, baseMetrics.States)
	}
	ck := stateSets(ckGraphs)
	for url, want := range base {
		got := ck[url]
		if len(got) != len(want) {
			t.Errorf("%s: %d states with checkpointing, %d baseline", url, len(got), len(want))
			continue
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("%s: checkpointed state hash set diverges from baseline at %d", url, i)
				break
			}
		}
	}

	// Resume from the complete journal against a dead fetcher: every page
	// must replay from disk without a single network call.
	cp2, err := OpenJournalCheckpointer(ctx, ckDir, true)
	if err != nil {
		t.Fatalf("reopen journal: %v", err)
	}
	dead := fetch.Func(func(context.Context, string) (*fetch.Response, error) {
		t.Error("resume of a complete journal hit the network")
		return nil, fmt.Errorf("no network in resume")
	})
	resGraphs, resMetrics, err := New(dead, Options{UseHotNode: true, Checkpoint: cp2}).CrawlAll(ctx, urls)
	if err != nil {
		t.Fatalf("resume crawl: %v", err)
	}
	if err := cp2.Close(); err != nil {
		t.Fatalf("close reopened journal: %v", err)
	}
	if resMetrics.PagesResumed != len(urls) || resMetrics.Pages != len(urls) {
		t.Errorf("resume replayed %d/%d pages, want all %d from the journal",
			resMetrics.PagesResumed, resMetrics.Pages, len(urls))
	}
	res := stateSets(resGraphs)
	for url, want := range base {
		got := res[url]
		if len(got) != len(want) {
			t.Errorf("%s: %d states after resume, %d baseline", url, len(got), len(want))
		}
	}
}

// TestParallelBreakerIsolation pins the chapter-6 requirement that one
// partition pointed at a dying host cannot sink its siblings: the dying
// partition's circuit opens and its pages land in PagesFailed, while the
// other process line's partition crawls to completion.
func TestParallelBreakerIsolation(t *testing.T) {
	const page = `<html><body><p id="c">hello</p></body></html>`
	fetcher := fetch.Func(func(ctx context.Context, rawurl string) (*fetch.Response, error) {
		if len(rawurl) >= 15 && rawurl[:15] == "http://bad.host" {
			return nil, fmt.Errorf("fetch %s: connection refused", rawurl)
		}
		return &fetch.Response{Status: 200, Body: []byte(page), ContentType: "text/html"}, nil
	})

	root := t.TempDir()
	writePartition := func(name string, urls []string) string {
		dir := filepath.Join(root, name)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		var data []byte
		for _, u := range urls {
			data = append(data, []byte(u+"\n")...)
		}
		if err := os.WriteFile(filepath.Join(dir, URLFileName), data, 0o644); err != nil {
			t.Fatal(err)
		}
		return dir
	}
	badPart := writePartition("partition1", []string{
		"http://bad.host/a", "http://bad.host/b", "http://bad.host/c", "http://bad.host/d",
	})
	goodPart := writePartition("partition2", []string{
		"http://good.host/a", "http://good.host/b", "http://good.host/c",
	})

	reg := obs.NewRegistry()
	ctx := obs.With(context.Background(), obs.New(reg, nil))
	clock := &fetch.VirtualClock{}
	mp := &MPCrawler{
		NewCrawler: func() *Crawler {
			return New(fetcher, Options{
				Clock: clock,
				BreakerConfig: &fetch.BreakerConfig{
					Window: 4, MinSamples: 2, FailureThreshold: 0.5, Cooldown: time.Hour,
				},
			})
		},
		ProcLines:  2,
		Partitions: []string{badPart, goodPart},
	}
	res := mp.Run(ctx)

	if err := res.Err(); err != nil {
		t.Fatalf("partition error under skip-and-count: %v", err)
	}
	if got := len(res.GraphsByPartition[1]); got != 3 {
		t.Errorf("good partition crawled %d pages, want 3 — sibling was not isolated", got)
	}
	if got := len(res.GraphsByPartition[0]); got != 0 {
		t.Errorf("bad partition produced %d graphs, want 0", got)
	}
	if res.Metrics.PagesFailed != 4 {
		t.Errorf("PagesFailed = %d, want 4 (the dying host's pages)", res.Metrics.PagesFailed)
	}
	snap := reg.Snapshot()
	if snap.Counters["breaker.opens"] < 1 {
		t.Error("breaker never opened for the dying host")
	}
	if snap.Counters["crawl.partitions.breaker_tripped"] != 1 {
		t.Errorf("crawl.partitions.breaker_tripped = %d, want 1",
			snap.Counters["crawl.partitions.breaker_tripped"])
	}
}
