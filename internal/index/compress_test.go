package index

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"testing/quick"

	"ajaxcrawl/internal/model"
)

func TestCompressedRoundTrip(t *testing.T) {
	ix := Build(twoVideoGraphs(), map[string]float64{
		"www.youtube.com/watch?v=w16JlLSySWQ": 0.6,
		"www.youtube.com/watch?v=Iv5JXxME0js": 0.4,
	}, 0)
	path := filepath.Join(t.TempDir(), "idx.bin")
	if err := ix.SaveCompressed(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCompressed(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.TotalStates != ix.TotalStates || loaded.NumDocs() != ix.NumDocs() || loaded.NumTerms() != ix.NumTerms() {
		t.Fatalf("round trip lost counts: %d/%d docs, %d/%d states",
			loaded.NumDocs(), ix.NumDocs(), loaded.TotalStates, ix.TotalStates)
	}
	for term := range ix.Terms {
		if !reflect.DeepEqual(loaded.Lookup(term), ix.Lookup(term)) {
			t.Fatalf("postings differ for %q:\n%v\n%v", term, loaded.Lookup(term), ix.Lookup(term))
		}
	}
	for i := 0; i < ix.NumDocs(); i++ {
		a, b := ix.Doc(DocID(i)), loaded.Doc(DocID(i))
		if a.URL != b.URL || a.PageRank != b.PageRank || a.States != b.States {
			t.Fatalf("doc %d differs: %+v vs %+v", i, a, b)
		}
		if !reflect.DeepEqual(a.StateLens, b.StateLens) {
			t.Fatalf("doc %d state lens differ", i)
		}
		// AJAXRanks survive through float32; tolerance applies.
		for j := range a.AJAXRanks {
			if diff := a.AJAXRanks[j] - b.AJAXRanks[j]; diff > 1e-6 || diff < -1e-6 {
				t.Fatalf("doc %d ajaxrank %d drifted: %v vs %v", i, j, a.AJAXRanks[j], b.AJAXRanks[j])
			}
		}
	}
	// docByURL rebuilt.
	if d, ok := loaded.DocByURL("www.youtube.com/watch?v=w16JlLSySWQ"); !ok || d != 0 {
		t.Fatalf("docByURL not rebuilt")
	}
}

func TestCompressedSmallerThanGob(t *testing.T) {
	// A corpus with realistic posting lists.
	var graphs []*model.Graph
	words := []string{"the", "video", "comment", "music", "love", "wow", "great", "awesome"}
	h := byte(0)
	for d := 0; d < 20; d++ {
		g := model.NewGraph("/watch?v=" + string(rune('a'+d)))
		for s := 0; s < 5; s++ {
			text := ""
			for w := 0; w < 50; w++ {
				text += words[(d+s+w)%len(words)] + " "
			}
			h++
			g.AddState(hashOf(h), text, s)
		}
		graphs = append(graphs, g)
	}
	ix := Build(graphs, nil, 0)
	dir := t.TempDir()
	gobPath := filepath.Join(dir, "idx.gob")
	binPath := filepath.Join(dir, "idx.bin")
	if err := ix.Save(gobPath); err != nil {
		t.Fatal(err)
	}
	if err := ix.SaveCompressed(binPath); err != nil {
		t.Fatal(err)
	}
	gobSize := fileSize(t, gobPath)
	binSize := fileSize(t, binPath)
	if binSize >= gobSize {
		t.Fatalf("compressed (%d bytes) not smaller than gob (%d bytes)", binSize, gobSize)
	}
	t.Logf("gob %d bytes, compressed %d bytes (%.1fx smaller)",
		gobSize, binSize, float64(gobSize)/float64(binSize))
}

func fileSize(t *testing.T, path string) int64 {
	t.Helper()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return fi.Size()
}

func TestCompressedRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.bin")
	if err := os.WriteFile(bad, []byte("not an index"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCompressed(bad); err == nil {
		t.Fatalf("garbage file should fail to load")
	}
	// Truncated file.
	ix := Build(twoVideoGraphs(), nil, 0)
	good := filepath.Join(dir, "good.bin")
	if err := ix.SaveCompressed(good); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(good)
	if err != nil {
		t.Fatal(err)
	}
	trunc := filepath.Join(dir, "trunc.bin")
	if err := os.WriteFile(trunc, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCompressed(trunc); err == nil {
		t.Fatalf("truncated file should fail to load")
	}
	if _, err := LoadCompressed(filepath.Join(dir, "missing.bin")); err == nil {
		t.Fatalf("missing file should fail to load")
	}
}

// Property: compressed round trip preserves every posting list for random
// small corpora.
func TestPropertyCompressedRoundTrip(t *testing.T) {
	var counter byte = 100
	f := func(texts []string) bool {
		if len(texts) == 0 {
			return true
		}
		if len(texts) > 8 {
			texts = texts[:8]
		}
		g := model.NewGraph("/u")
		for depth, text := range texts {
			counter++
			g.AddState(hashOf(counter), text, depth)
		}
		ix := New()
		ix.AddGraph(g, 0.5, 0)
		dir, err := os.MkdirTemp("", "cmp-prop-*")
		if err != nil {
			return false
		}
		defer os.RemoveAll(dir)
		path := filepath.Join(dir, "x.bin")
		if err := ix.SaveCompressed(path); err != nil {
			return false
		}
		loaded, err := LoadCompressed(path)
		if err != nil {
			return false
		}
		if loaded.NumTerms() != ix.NumTerms() || loaded.TotalStates != ix.TotalStates {
			return false
		}
		for term := range ix.Terms {
			if !reflect.DeepEqual(loaded.Lookup(term), ix.Lookup(term)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSaveCompressed(b *testing.B) {
	ix := Build(twoVideoGraphs(), nil, 0)
	path := filepath.Join(b.TempDir(), "idx.bin")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := ix.SaveCompressed(path); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLoadCompressed(b *testing.B) {
	ix := Build(twoVideoGraphs(), nil, 0)
	path := filepath.Join(b.TempDir(), "idx.bin")
	if err := ix.SaveCompressed(path); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := LoadCompressed(path); err != nil {
			b.Fatal(err)
		}
	}
}
