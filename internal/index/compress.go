package index

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"sort"

	"ajaxcrawl/internal/model"
)

// Compressed on-disk index format. The gob encoding (Save/Load) is
// convenient but verbose; this format applies the standard IR
// compression tricks — delta-encoded, varint-coded posting lists — that
// the related-work chapter points at (web-graph/index compression):
//
//	magic "AJIX" | version u8
//	docCount varint
//	  per doc: url (len-prefixed), pagerank f64,
//	           states varint, stateLens varints, ajaxRanks f32s
//	totalStates varint
//	termCount varint
//	  per term (sorted): term (len-prefixed), postingCount varint,
//	    per posting: docDelta varint, state varint,
//	                 posCount varint, positions as deltas varint
//
// Doc IDs within one term's posting list are ascending, so consecutive
// deltas are small; positions within one posting likewise.

const (
	compressedMagic   = "AJIX"
	compressedVersion = 1

	// maxCount bounds every count read from an untrusted file (docs,
	// states, terms, postings, positions). A truncated or corrupt varint
	// otherwise turns straight into make([]T, n) with an arbitrary n —
	// an unrecoverable allocation panic rather than a load error.
	maxCount = 1 << 26
	// maxPrealloc caps how much a single count is trusted for slice
	// pre-allocation; beyond it, slices grow by append as real data
	// arrives, so a lying header can't allocate more than the file
	// actually backs.
	maxPrealloc = 1 << 16
)

// checkCount validates an untrusted count field.
func checkCount(what string, n uint64) (int, error) {
	if n > maxCount {
		return 0, fmt.Errorf("%s count %d exceeds limit %d", what, n, maxCount)
	}
	return int(n), nil
}

// prealloc returns a safe initial capacity for a count-prefixed slice.
func prealloc(n int) int {
	if n > maxPrealloc {
		return maxPrealloc
	}
	return n
}

// EncodeCompressed writes the compact binary format to w.
func (ix *Index) EncodeCompressed(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if err := ix.writeCompressed(bw); err != nil {
		return fmt.Errorf("index: encode compressed: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("index: encode compressed: %w", err)
	}
	return nil
}

// SaveCompressed writes the index in the compact binary format.
func (ix *Index) SaveCompressed(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("index: save compressed: %w", err)
	}
	if err := ix.EncodeCompressed(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func (ix *Index) writeCompressed(w *bufio.Writer) error {
	w.WriteString(compressedMagic) //nolint:errcheck // checked via Flush
	w.WriteByte(compressedVersion) //nolint:errcheck

	putUvarint(w, uint64(len(ix.Docs)))
	for _, d := range ix.Docs {
		putString(w, d.URL)
		putFloat64(w, d.PageRank)
		putUvarint(w, uint64(d.States))
		for _, l := range d.StateLens {
			putUvarint(w, uint64(l))
		}
		for _, r := range d.AJAXRanks {
			putFloat32(w, float32(r))
		}
	}
	putUvarint(w, uint64(ix.TotalStates))

	terms := make([]string, 0, len(ix.Terms))
	for t := range ix.Terms {
		terms = append(terms, t)
	}
	sort.Strings(terms)
	putUvarint(w, uint64(len(terms)))
	for _, t := range terms {
		putString(w, t)
		ps := ix.Terms[t]
		putUvarint(w, uint64(len(ps)))
		prevDoc := DocID(0)
		for _, p := range ps {
			putUvarint(w, uint64(p.Doc-prevDoc))
			prevDoc = p.Doc
			putUvarint(w, uint64(p.State))
			putUvarint(w, uint64(len(p.Positions)))
			prev := int32(0)
			for _, pos := range p.Positions {
				putUvarint(w, uint64(pos-prev))
				prev = pos
			}
		}
	}
	return nil
}

// DecodeCompressed reads one compact-binary index from r. Like Decode,
// the input is untrusted: counts are bounded, pre-allocations capped,
// the result validated, and decoder panics converted to errors.
func DecodeCompressed(r io.Reader) (ix *Index, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			ix, err = nil, fmt.Errorf("index: decode compressed: corrupt input: %v", rec)
		}
	}()
	ix, err = readCompressed(bufio.NewReader(r))
	if err != nil {
		return nil, fmt.Errorf("index: decode compressed: %w", err)
	}
	if err := ix.validate(); err != nil {
		return nil, err
	}
	return ix, nil
}

// LoadCompressed reads an index written by SaveCompressed.
func LoadCompressed(path string) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("index: load compressed: %w", err)
	}
	defer f.Close()
	ix, err := DecodeCompressed(f)
	if err != nil {
		return nil, fmt.Errorf("index: load compressed %s: %w", path, err)
	}
	return ix, nil
}

func readCompressed(r *bufio.Reader) (*Index, error) {
	magic := make([]byte, 4)
	if _, err := io.ReadFull(r, magic); err != nil {
		return nil, err
	}
	if string(magic) != compressedMagic {
		return nil, fmt.Errorf("bad magic %q", magic)
	}
	version, err := r.ReadByte()
	if err != nil {
		return nil, err
	}
	if version != compressedVersion {
		return nil, fmt.Errorf("unsupported version %d", version)
	}

	ix := New()
	rawDocCount, err := getUvarint(r)
	if err != nil {
		return nil, err
	}
	docCount, err := checkCount("doc", rawDocCount)
	if err != nil {
		return nil, err
	}
	for i := 0; i < docCount; i++ {
		var d DocInfo
		if d.URL, err = getString(r); err != nil {
			return nil, err
		}
		if d.PageRank, err = getFloat64(r); err != nil {
			return nil, err
		}
		rawStates, err := getUvarint(r)
		if err != nil {
			return nil, err
		}
		states, err := checkCount("state", rawStates)
		if err != nil {
			return nil, err
		}
		d.States = states
		d.StateLens = make([]int32, 0, prealloc(states))
		for j := 0; j < states; j++ {
			v, err := getUvarint(r)
			if err != nil {
				return nil, err
			}
			d.StateLens = append(d.StateLens, int32(v))
		}
		d.AJAXRanks = make([]float64, 0, prealloc(states))
		for j := 0; j < states; j++ {
			v, err := getFloat32(r)
			if err != nil {
				return nil, err
			}
			d.AJAXRanks = append(d.AJAXRanks, float64(v))
		}
		ix.docByURL[d.URL] = DocID(len(ix.Docs))
		ix.Docs = append(ix.Docs, d)
	}
	total, err := getUvarint(r)
	if err != nil {
		return nil, err
	}
	if _, err := checkCount("total-state", total); err != nil {
		return nil, err
	}
	ix.TotalStates = int(total)

	rawTermCount, err := getUvarint(r)
	if err != nil {
		return nil, err
	}
	termCount, err := checkCount("term", rawTermCount)
	if err != nil {
		return nil, err
	}
	for i := 0; i < termCount; i++ {
		term, err := getString(r)
		if err != nil {
			return nil, err
		}
		rawN, err := getUvarint(r)
		if err != nil {
			return nil, err
		}
		n, err := checkCount("posting", rawN)
		if err != nil {
			return nil, err
		}
		ps := make([]Posting, 0, prealloc(n))
		prevDoc := DocID(0)
		for j := 0; j < n; j++ {
			var p Posting
			dd, err := getUvarint(r)
			if err != nil {
				return nil, err
			}
			prevDoc += DocID(dd)
			p.Doc = prevDoc
			st, err := getUvarint(r)
			if err != nil {
				return nil, err
			}
			state, err := checkCount("state-id", st)
			if err != nil {
				return nil, err
			}
			p.State = model.StateID(state)
			rawPC, err := getUvarint(r)
			if err != nil {
				return nil, err
			}
			pc, err := checkCount("position", rawPC)
			if err != nil {
				return nil, err
			}
			p.Positions = make([]int32, 0, prealloc(pc))
			prev := int32(0)
			for k := 0; k < pc; k++ {
				d, err := getUvarint(r)
				if err != nil {
					return nil, err
				}
				prev += int32(d)
				p.Positions = append(p.Positions, prev)
			}
			ps = append(ps, p)
		}
		ix.Terms[term] = ps
	}
	return ix, nil
}

// ---- primitive codecs ----

func putUvarint(w *bufio.Writer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	w.Write(buf[:n]) //nolint:errcheck
}

func getUvarint(r *bufio.Reader) (uint64, error) {
	return binary.ReadUvarint(r)
}

func putString(w *bufio.Writer, s string) {
	putUvarint(w, uint64(len(s)))
	w.WriteString(s) //nolint:errcheck
}

func getString(r *bufio.Reader) (string, error) {
	n, err := getUvarint(r)
	if err != nil {
		return "", err
	}
	if n > 1<<24 {
		return "", fmt.Errorf("string length %d too large", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

func putFloat64(w *bufio.Writer, f float64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(f))
	w.Write(buf[:]) //nolint:errcheck
}

func getFloat64(r *bufio.Reader) (float64, error) {
	var buf [8]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, err
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(buf[:])), nil
}

func putFloat32(w *bufio.Writer, f float32) {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], math.Float32bits(f))
	w.Write(buf[:]) //nolint:errcheck
}

func getFloat32(r *bufio.Reader) (float32, error) {
	var buf [4]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, err
	}
	return math.Float32frombits(binary.LittleEndian.Uint32(buf[:])), nil
}
