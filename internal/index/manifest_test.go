package index

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ajaxcrawl/internal/model"
)

// snapshotGraphs builds a slightly larger corpus than twoVideoGraphs so
// multi-shard snapshots have distinct shard contents.
func snapshotGraphs() ([]*model.Graph, []*model.Graph) {
	g1 := model.NewGraph("site/watch?v=a")
	g1.AddState(hashOf(1), "alpha bravo charlie", 0)
	g1.AddState(hashOf(2), "alpha delta", 1)
	g2 := model.NewGraph("site/watch?v=b")
	g2.AddState(hashOf(3), "bravo echo", 0)
	g3 := model.NewGraph("site/watch?v=c")
	g3.AddState(hashOf(4), "charlie foxtrot alpha", 0)
	return []*model.Graph{g1, g2}, []*model.Graph{g3}
}

func TestSnapshotRoundTrip(t *testing.T) {
	part1, part2 := snapshotGraphs()
	sh1 := Build(part1, map[string]float64{"site/watch?v=a": 0.7}, 0)
	sh2 := Build(part2, nil, 0)
	dir := t.TempDir()

	man, err := SaveSnapshot(dir, []*Index{sh1, sh2}, append(append([]*model.Graph{}, part1...), part2...))
	if err != nil {
		t.Fatal(err)
	}
	if man.ID == "" || man.Version != ManifestVersion || man.Format != FormatGob {
		t.Fatalf("bad manifest header: %+v", man)
	}
	if man.TotalDocs != 3 || man.TotalStates != 4 {
		t.Fatalf("totals = %d docs / %d states, want 3/4", man.TotalDocs, man.TotalStates)
	}
	if man.Models != model.ModelFileName {
		t.Fatalf("models = %q", man.Models)
	}

	loadedMan, shards, err := LoadSnapshot(dir)
	if err != nil {
		t.Fatal(err)
	}
	if loadedMan.ID != man.ID {
		t.Fatalf("reloaded ID %s != %s", loadedMan.ID, man.ID)
	}
	if len(shards) != 2 {
		t.Fatalf("got %d shards", len(shards))
	}
	if shards[0].NumDocs() != 2 || shards[1].NumDocs() != 1 {
		t.Fatalf("shard docs = %d/%d", shards[0].NumDocs(), shards[1].NumDocs())
	}
	if got := shards[0].Doc(0).PageRank; got != 0.7 {
		t.Fatalf("pagerank lost: %v", got)
	}
	// Shard order must be preserved — it is the broker/ranking order.
	if shards[0].Doc(0).URL != "site/watch?v=a" || shards[1].Doc(0).URL != "site/watch?v=c" {
		t.Fatalf("shard order changed: %s / %s", shards[0].Doc(0).URL, shards[1].Doc(0).URL)
	}

	graphs, err := model.LoadAll(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(graphs) != 3 {
		t.Fatalf("got %d graphs", len(graphs))
	}
	// Models are stored URL-sorted for byte-stable snapshots.
	for i := 1; i < len(graphs); i++ {
		if graphs[i-1].URL >= graphs[i].URL {
			t.Fatalf("models not URL-sorted: %s before %s", graphs[i-1].URL, graphs[i].URL)
		}
	}

	// No stray temp files from the atomic manifest write.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("leftover temp file %s", e.Name())
		}
	}
}

func TestSnapshotIDChangesPerSave(t *testing.T) {
	part1, _ := snapshotGraphs()
	sh := Build(part1, nil, 0)
	dir := t.TempDir()
	m1, err := SaveSnapshot(dir, []*Index{sh}, nil)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := SaveSnapshot(dir, []*Index{sh}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m1.ID == m2.ID {
		t.Fatalf("re-save kept ID %s; watchers would never swap", m1.ID)
	}
	if m2.Models != "" {
		t.Fatalf("index-only snapshot recorded models %q", m2.Models)
	}
}

func TestLoadManifestRejectsBadInput(t *testing.T) {
	dir := t.TempDir()
	if _, err := LoadManifest(dir); err == nil {
		t.Fatal("missing manifest must error")
	}
	write := func(body string) {
		if err := os.WriteFile(filepath.Join(dir, ManifestFileName), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	cases := map[string]string{
		"garbage":      "{not json",
		"bad version":  `{"version":99,"id":"x","format":"gob","shards":[{"file":"s.gob"}]}`,
		"bad format":   `{"version":1,"id":"x","format":"zip","shards":[{"file":"s.zip"}]}`,
		"no shards":    `{"version":1,"id":"x","format":"gob","shards":[]}`,
		"traversal":    `{"version":1,"id":"x","format":"gob","shards":[{"file":"../../etc/passwd"}]}`,
		"hidden shard": `{"version":1,"id":"x","format":"gob","shards":[{"file":".evil"}]}`,
		"bad models":   `{"version":1,"id":"x","format":"gob","shards":[{"file":"s.gob"}],"models":"../m.gob"}`,
	}
	for name, body := range cases {
		write(body)
		if _, err := LoadManifest(dir); err == nil {
			t.Errorf("%s: LoadManifest accepted %q", name, body)
		}
	}
}

func TestLoadSnapshotDetectsShardMismatch(t *testing.T) {
	part1, part2 := snapshotGraphs()
	dir := t.TempDir()
	if _, err := SaveSnapshot(dir, []*Index{Build(part1, nil, 0)}, nil); err != nil {
		t.Fatal(err)
	}
	// Overwrite the shard with a different index; the manifest's
	// recorded sizes no longer match.
	if err := Build(part2, nil, 0).Save(filepath.Join(dir, "shard-0000.gob")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadSnapshot(dir); err == nil {
		t.Fatal("size mismatch between manifest and shard must error")
	}
}
