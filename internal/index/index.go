// Package index implements the state-granular inverted file of thesis
// chapter 5: every posting points at a (URL, state) pair rather than just
// a document, so query results can name the exact application state a
// keyword occurs in (Table 5.1). Positions are kept for term-proximity
// ranking, per-state token counts for tf, and per-state AJAXRank plus
// per-URL PageRank for the composite ranking formula 5.3.
//
// Indexes are built incrementally, one application model at a time
// (AddGraph), and serialize to disk with encoding/gob — one index shard
// per crawl partition in the parallel architecture (ch. 6).
package index

import (
	"context"
	"encoding/gob"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"
	"time"
	"unicode"

	"ajaxcrawl/internal/model"
	"ajaxcrawl/internal/obs"
)

// DocID identifies a document (URL) within one index.
type DocID int32

// Posting records one state containing a term.
type Posting struct {
	Doc   DocID
	State model.StateID
	// Positions are the token offsets of the term within the state text.
	Positions []int32
}

// TF returns the raw term frequency in the state.
func (p Posting) TF() int { return len(p.Positions) }

// DocInfo is the per-URL metadata of the index.
type DocInfo struct {
	URL      string
	PageRank float64
	// States is the number of indexed states of this document.
	States int
	// StateLens holds the token count of each indexed state.
	StateLens []int32
	// AJAXRanks holds the AJAXRank of each indexed state.
	AJAXRanks []float64
}

// Index is one inverted-file shard.
type Index struct {
	Docs  []DocInfo
	Terms map[string][]Posting
	// TotalStates is the number of indexed states across all docs — the
	// denominator universe of idf (states play the role of documents,
	// eq. 5.2).
	TotalStates int

	docByURL map[string]DocID
}

// New returns an empty index.
func New() *Index {
	return &Index{
		Terms:    make(map[string][]Posting),
		docByURL: make(map[string]DocID),
	}
}

// ajaxRankDamping controls how AJAXRank decays with the BFS depth of a
// state: deeper states (more clicks away) rank lower, following [20].
const ajaxRankDamping = 0.7

// AJAXRank returns the rank of a state at the given depth.
func AJAXRank(depth int) float64 {
	return math.Pow(ajaxRankDamping, float64(depth))
}

// AddGraph incrementally indexes one application model. Only states with
// ID < maxStates are indexed (maxStates <= 0 means all): state IDs are
// assigned in BFS discovery order, so this reproduces the thesis's
// "Max. State ID" index-building knob used by the threshold and recall
// experiments (§8.3.1, §7.7).
func (ix *Index) AddGraph(g *model.Graph, pageRank float64, maxStates int) {
	if _, dup := ix.docByURL[g.URL]; dup {
		// Re-adding a URL would corrupt posting order; refuse silently
		// is worse than loud: panic signals a caller bug early.
		panic("index: AddGraph: duplicate URL " + g.URL)
	}
	doc := DocID(len(ix.Docs))
	info := DocInfo{URL: g.URL, PageRank: pageRank}
	ix.docByURL[g.URL] = doc

	for _, s := range g.States {
		if maxStates > 0 && int(s.ID) >= maxStates {
			continue
		}
		tokens := Tokenize(s.Text)
		info.States++
		info.StateLens = append(info.StateLens, int32(len(tokens)))
		info.AJAXRanks = append(info.AJAXRanks, AJAXRank(s.Depth))
		ix.TotalStates++
		// Collect positions per term for this state.
		positions := make(map[string][]int32)
		for pos, tok := range tokens {
			positions[tok] = append(positions[tok], int32(pos))
		}
		for term, poss := range positions {
			ix.Terms[term] = append(ix.Terms[term], Posting{Doc: doc, State: s.ID, Positions: poss})
		}
	}
	ix.Docs = append(ix.Docs, info)
	// Postings appended per state in increasing (doc, state) order stay
	// sorted; normalize within this doc's range in case a graph's state
	// iteration ever changes.
	ix.sortTail(doc)
}

// sortTail restores (Doc, State) order for postings of the last doc.
// States are iterated in increasing ID order so this is normally a no-op;
// it guards the sorted-merge invariant of conjunction processing.
func (ix *Index) sortTail(doc DocID) {
	for term, ps := range ix.Terms {
		// Find the first posting of this doc (they are at the tail).
		i := len(ps)
		for i > 0 && ps[i-1].Doc == doc {
			i--
		}
		tail := ps[i:]
		for j := 1; j < len(tail); j++ {
			for k := j; k > 0 && tail[k].State < tail[k-1].State; k-- {
				tail[k], tail[k-1] = tail[k-1], tail[k]
			}
		}
		ix.Terms[term] = ps
	}
}

// Lookup returns the posting list of a term (nil when absent). The list
// is sorted by (Doc, State).
func (ix *Index) Lookup(term string) []Posting {
	return ix.Terms[strings.ToLower(term)]
}

// DF returns the number of states containing the term — the denominator
// of eq. 5.2.
func (ix *Index) DF(term string) int {
	return len(ix.Terms[strings.ToLower(term)])
}

// Doc returns the metadata of a document.
func (ix *Index) Doc(d DocID) DocInfo {
	return ix.Docs[d]
}

// DocByURL resolves a URL to its DocID.
func (ix *Index) DocByURL(url string) (DocID, bool) {
	d, ok := ix.docByURL[url]
	return d, ok
}

// NumDocs returns the number of indexed documents.
func (ix *Index) NumDocs() int { return len(ix.Docs) }

// NumTerms returns the vocabulary size.
func (ix *Index) NumTerms() int { return len(ix.Terms) }

// NumPostings returns the total posting count across all terms — the
// size figure of the evaluation's index tables.
func (ix *Index) NumPostings() int {
	total := 0
	for _, ps := range ix.Terms {
		total += len(ps)
	}
	return total
}

// Build constructs an index over a set of graphs. pageRank may be nil
// (all zeros). maxStates limits states per page as in AddGraph.
func Build(graphs []*model.Graph, pageRank map[string]float64, maxStates int) *Index {
	return BuildCtx(context.Background(), graphs, pageRank, maxStates)
}

// BuildCtx is Build under a context: when the context carries telemetry,
// the build is wrapped in an index.build span and its size and duration
// land in the registry.
func BuildCtx(ctx context.Context, graphs []*model.Graph, pageRank map[string]float64, maxStates int) *Index {
	tel := obs.From(ctx)
	_, sp := obs.StartSpan(ctx, obs.SpanIndexBuild, obs.A("graphs", strconv.Itoa(len(graphs))))
	start := time.Now()
	ix := New()
	for _, g := range graphs {
		ix.AddGraph(g, pageRank[g.URL], maxStates)
	}
	postings := ix.NumPostings()
	tel.Counter("index.builds").Inc()
	tel.Counter("index.docs").Add(int64(ix.NumDocs()))
	tel.Counter("index.states").Add(int64(ix.TotalStates))
	tel.Counter("index.postings").Add(int64(postings))
	tel.Histogram("index.build.latency").Observe(time.Since(start).Seconds())
	sp.SetAttr("postings", strconv.Itoa(postings))
	sp.End(nil)
	return ix
}

// indexWire is the gob image of an Index.
type indexWire struct {
	Docs        []DocInfo
	Terms       map[string][]Posting
	TotalStates int
}

// Encode writes the index's gob image to w.
func (ix *Index) Encode(w io.Writer) error {
	img := indexWire{Docs: ix.Docs, Terms: ix.Terms, TotalStates: ix.TotalStates}
	if err := gob.NewEncoder(w).Encode(img); err != nil {
		return fmt.Errorf("index: encode: %w", err)
	}
	return nil
}

// Save writes the index to a file.
func (ix *Index) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("index: save: %w", err)
	}
	if err := ix.Encode(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Decode reads one gob-encoded index from r. The bytes are untrusted —
// the serving daemon loads snapshots straight off disk — so the decoded
// structure is validated before it is handed out, and any panic the
// decoder raises on corrupt input is converted to an error.
func Decode(r io.Reader) (ix *Index, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			ix, err = nil, fmt.Errorf("index: decode: corrupt input: %v", rec)
		}
	}()
	var w indexWire
	if err := gob.NewDecoder(r).Decode(&w); err != nil {
		return nil, fmt.Errorf("index: decode: %w", err)
	}
	ix = &Index{
		Docs:        w.Docs,
		Terms:       w.Terms,
		TotalStates: w.TotalStates,
		docByURL:    make(map[string]DocID, len(w.Docs)),
	}
	if ix.Terms == nil {
		ix.Terms = make(map[string][]Posting)
	}
	for i, d := range w.Docs {
		ix.docByURL[d.URL] = DocID(i)
	}
	if err := ix.validate(); err != nil {
		return nil, err
	}
	return ix, nil
}

// Load reads an index from a file.
func Load(path string) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("index: load: %w", err)
	}
	defer f.Close()
	return Decode(f)
}

// validate checks the structural invariants query evaluation relies on,
// so a corrupt or adversarial snapshot surfaces as a load error instead
// of an out-of-range panic in the middle of a search: per-doc state
// metadata is consistent, every posting points at a real document, and
// every posting carries at least one position (proximity indexes
// Positions[0] unconditionally for multi-term queries).
func (ix *Index) validate() error {
	if ix.TotalStates < 0 {
		return fmt.Errorf("index: validate: negative TotalStates %d", ix.TotalStates)
	}
	states := 0
	for i, d := range ix.Docs {
		if d.States < 0 || d.States != len(d.StateLens) || d.States != len(d.AJAXRanks) {
			return fmt.Errorf("index: validate: doc %d (%s): States=%d, len(StateLens)=%d, len(AJAXRanks)=%d",
				i, d.URL, d.States, len(d.StateLens), len(d.AJAXRanks))
		}
		states += d.States
	}
	if states != ix.TotalStates {
		return fmt.Errorf("index: validate: TotalStates=%d but docs sum to %d", ix.TotalStates, states)
	}
	for term, ps := range ix.Terms {
		for _, p := range ps {
			if int(p.Doc) < 0 || int(p.Doc) >= len(ix.Docs) {
				return fmt.Errorf("index: validate: term %q: posting doc %d out of range [0,%d)", term, p.Doc, len(ix.Docs))
			}
			if p.State < 0 {
				return fmt.Errorf("index: validate: term %q: negative state %d", term, p.State)
			}
			if len(p.Positions) == 0 {
				return fmt.Errorf("index: validate: term %q: posting for doc %d has no positions", term, p.Doc)
			}
		}
	}
	return nil
}

// Tokenize splits text into lower-case index terms: maximal runs of
// letters and digits. Both indexing and query parsing use it, so the two
// sides always agree.
func Tokenize(text string) []string {
	var out []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			out = append(out, cur.String())
			cur.Reset()
		}
	}
	for _, r := range text {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			cur.WriteRune(unicode.ToLower(r))
		} else {
			flush()
		}
	}
	flush()
	return out
}
