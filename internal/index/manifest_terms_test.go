package index

import (
	"testing"
)

// TestSnapshotRecordsTerms: SaveSnapshot exports each shard's
// vocabulary size (and the fleet total) in the manifest, so routers and
// fleet tooling can reason about df skew without loading shards.
func TestSnapshotRecordsTerms(t *testing.T) {
	part1, part2 := snapshotGraphs()
	sh1 := Build(part1, nil, 0)
	sh2 := Build(part2, nil, 0)
	dir := t.TempDir()
	man, err := SaveSnapshot(dir, []*Index{sh1, sh2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if man.Shards[0].Terms != sh1.NumTerms() || man.Shards[1].Terms != sh2.NumTerms() {
		t.Fatalf("manifest terms = %d/%d, shards have %d/%d",
			man.Shards[0].Terms, man.Shards[1].Terms, sh1.NumTerms(), sh2.NumTerms())
	}
	if man.Shards[0].Terms == 0 {
		t.Fatal("shard vocabulary size not recorded")
	}
	if want := sh1.NumTerms() + sh2.NumTerms(); man.TotalTerms != want {
		t.Fatalf("TotalTerms = %d, want %d", man.TotalTerms, want)
	}

	// The round trip preserves the record.
	loaded, _, err := LoadSnapshot(dir)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.TotalTerms != man.TotalTerms || loaded.Shards[0].Terms != man.Shards[0].Terms {
		t.Fatalf("reloaded terms %d/%d, want %d/%d",
			loaded.TotalTerms, loaded.Shards[0].Terms, man.TotalTerms, man.Shards[0].Terms)
	}
}

// TestLoadSnapshotDetectsTermMismatch: a shard file whose vocabulary
// disagrees with the manifest record must fail the load, like the
// doc/state size checks.
func TestLoadSnapshotDetectsTermMismatch(t *testing.T) {
	part1, _ := snapshotGraphs()
	dir := t.TempDir()
	man, err := SaveSnapshot(dir, []*Index{Build(part1, nil, 0)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Rewrite the manifest claiming a different vocabulary size; doc and
	// state counts still match, so only the Terms cross-check can catch
	// it.
	man.Shards[0].Terms++
	if err := WriteManifest(dir, man); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadSnapshot(dir); err == nil {
		t.Fatal("term-count mismatch between manifest and shard must error")
	}

	// A legacy manifest (Terms omitted) stays loadable.
	man.Shards[0].Terms = 0
	man.TotalTerms = 0
	if err := WriteManifest(dir, man); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadSnapshot(dir); err != nil {
		t.Fatalf("legacy manifest without terms failed to load: %v", err)
	}
}
