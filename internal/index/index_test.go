package index

import (
	"math"
	"path/filepath"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"ajaxcrawl/internal/dom"
	"ajaxcrawl/internal/model"
)

func hashOf(b byte) dom.Hash {
	var h dom.Hash
	h[0] = b
	return h
}

// twoVideoGraphs reproduces the running example of Table 5.1: two
// Morcheeba videos, one with two states.
func twoVideoGraphs() []*model.Graph {
	g1 := model.NewGraph("www.youtube.com/watch?v=w16JlLSySWQ")
	g1.AddState(hashOf(1), "morcheeba mysterious video comments", 0)
	g1.AddState(hashOf(2), "morcheeba singer enjoy the ride", 1)
	g1.AddTransition(&model.Transition{From: 0, To: 1, Event: "onclick"})

	g2 := model.NewGraph("www.youtube.com/watch?v=Iv5JXxME0js")
	g2.AddState(hashOf(3), "morcheeba morcheeba live concert", 0)
	return []*model.Graph{g1, g2}
}

func TestTokenize(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"", nil},
		{"Hello World", []string{"hello", "world"}},
		{"don't stop-me now!", []string{"don", "t", "stop", "me", "now"}},
		{"UPPER lower 123 mix3d", []string{"upper", "lower", "123", "mix3d"}},
		{"  spaces   everywhere  ", []string{"spaces", "everywhere"}},
		{"héllo wörld", []string{"héllo", "wörld"}},
	}
	for _, c := range cases {
		if got := Tokenize(c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestBuildInvertedFile(t *testing.T) {
	ix := Build(twoVideoGraphs(), map[string]float64{
		"www.youtube.com/watch?v=w16JlLSySWQ": 0.6,
		"www.youtube.com/watch?v=Iv5JXxME0js": 0.4,
	}, 0)

	if ix.NumDocs() != 2 || ix.TotalStates != 3 {
		t.Fatalf("docs=%d states=%d", ix.NumDocs(), ix.TotalStates)
	}
	// "morcheeba" appears in all three states (Table 5.1).
	ps := ix.Lookup("morcheeba")
	if len(ps) != 3 {
		t.Fatalf("morcheeba postings = %d, want 3", len(ps))
	}
	// Sorted by (doc, state).
	if !sort.SliceIsSorted(ps, func(i, j int) bool {
		if ps[i].Doc != ps[j].Doc {
			return ps[i].Doc < ps[j].Doc
		}
		return ps[i].State < ps[j].State
	}) {
		t.Fatalf("postings not sorted: %v", ps)
	}
	// The second video's state has tf 2 (morcheeba twice).
	last := ps[2]
	if last.Doc != 1 || last.TF() != 2 {
		t.Fatalf("doc2 posting = %+v", last)
	}
	// "singer" only in state 2 of video 1 (the second comment page).
	singer := ix.Lookup("singer")
	if len(singer) != 1 || singer[0].Doc != 0 || singer[0].State != 1 {
		t.Fatalf("singer postings = %v", singer)
	}
	// Case-insensitive lookup.
	if len(ix.Lookup("MORCHEEBA")) != 3 {
		t.Fatalf("lookup must be case-insensitive")
	}
	// DF is per state.
	if ix.DF("morcheeba") != 3 || ix.DF("nothere") != 0 {
		t.Fatalf("DF wrong")
	}
	// PageRank attached to docs.
	if ix.Doc(0).PageRank != 0.6 {
		t.Fatalf("pagerank lost")
	}
	// Positions recorded.
	if singer[0].Positions[0] != 1 {
		t.Fatalf("position = %v, want 1 (second token)", singer[0].Positions)
	}
}

func TestAJAXRankDecays(t *testing.T) {
	if AJAXRank(0) != 1 {
		t.Fatalf("depth-0 rank should be 1")
	}
	if !(AJAXRank(1) < AJAXRank(0)) || !(AJAXRank(5) < AJAXRank(1)) {
		t.Fatalf("AJAXRank must decay with depth")
	}
	ix := Build(twoVideoGraphs(), nil, 0)
	d := ix.Doc(0)
	if len(d.AJAXRanks) != 2 || d.AJAXRanks[0] != 1 || d.AJAXRanks[1] >= 1 {
		t.Fatalf("doc ajaxranks = %v", d.AJAXRanks)
	}
}

func TestMaxStatesLimitsIndexing(t *testing.T) {
	ix := Build(twoVideoGraphs(), nil, 1)
	if ix.TotalStates != 2 {
		t.Fatalf("maxStates=1 should index 2 states, got %d", ix.TotalStates)
	}
	// "singer" lives in state 1, which is excluded.
	if ix.DF("singer") != 0 {
		t.Fatalf("state beyond maxStates leaked into index")
	}
	if ix.DF("morcheeba") != 2 {
		t.Fatalf("first states should be indexed")
	}
}

func TestDuplicateURLPanics(t *testing.T) {
	ix := New()
	g := model.NewGraph("u")
	g.AddState(hashOf(1), "x", 0)
	ix.AddGraph(g, 0, 0)
	defer func() {
		if recover() == nil {
			t.Fatalf("duplicate AddGraph must panic")
		}
	}()
	ix.AddGraph(g, 0, 0)
}

func TestStateLens(t *testing.T) {
	ix := Build(twoVideoGraphs(), nil, 0)
	d := ix.Doc(0)
	if d.StateLens[0] != 4 || d.StateLens[1] != 5 {
		t.Fatalf("state lens = %v", d.StateLens)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	ix := Build(twoVideoGraphs(), map[string]float64{"www.youtube.com/watch?v=w16JlLSySWQ": 0.9}, 0)
	path := filepath.Join(t.TempDir(), "idx.gob")
	if err := ix.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.TotalStates != ix.TotalStates || loaded.NumDocs() != ix.NumDocs() || loaded.NumTerms() != ix.NumTerms() {
		t.Fatalf("round trip lost data")
	}
	if !reflect.DeepEqual(loaded.Lookup("morcheeba"), ix.Lookup("morcheeba")) {
		t.Fatalf("postings differ after reload")
	}
	if d, ok := loaded.DocByURL("www.youtube.com/watch?v=w16JlLSySWQ"); !ok || d != 0 {
		t.Fatalf("docByURL not rebuilt")
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing.gob")); err == nil {
		t.Fatalf("loading missing index should fail")
	}
}

func TestIncrementalEqualsBatch(t *testing.T) {
	graphs := twoVideoGraphs()
	batch := Build(graphs, nil, 0)
	inc := New()
	for _, g := range graphs {
		inc.AddGraph(g, 0, 0)
	}
	if batch.TotalStates != inc.TotalStates || batch.NumTerms() != inc.NumTerms() {
		t.Fatalf("incremental differs from batch")
	}
	for term := range batch.Terms {
		if !reflect.DeepEqual(batch.Lookup(term), inc.Lookup(term)) {
			t.Fatalf("postings differ for %q", term)
		}
	}
}

// Property: every token of every state text is findable, with a posting
// whose position points at that token.
func TestPropertyAllTokensIndexed(t *testing.T) {
	f := func(words []string) bool {
		text := ""
		for _, w := range words {
			text += " " + w
		}
		g := model.NewGraph("u")
		g.AddState(hashOf(1), text, 0)
		ix := New()
		ix.AddGraph(g, 0, 0)
		toks := Tokenize(text)
		for pos, tok := range toks {
			ps := ix.Lookup(tok)
			if len(ps) != 1 {
				return false
			}
			found := false
			for _, p := range ps[0].Positions {
				if int(p) == pos {
					found = true
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: sum over terms of tf in a state equals the state length.
func TestPropertyTFSumsToStateLen(t *testing.T) {
	f := func(text string) bool {
		g := model.NewGraph("u")
		g.AddState(hashOf(1), text, 0)
		ix := New()
		ix.AddGraph(g, 0, 0)
		sum := 0
		for _, ps := range ix.Terms {
			for _, p := range ps {
				sum += p.TF()
			}
		}
		return sum == len(Tokenize(text)) && int(ix.Doc(0).StateLens[0]) == sum
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestIDFComputation(t *testing.T) {
	ix := Build(twoVideoGraphs(), nil, 0)
	// idf(morcheeba) = log(3/3) = 0; idf(singer) = log(3/1) > 0.
	idfM := math.Log(float64(ix.TotalStates) / float64(ix.DF("morcheeba")))
	idfS := math.Log(float64(ix.TotalStates) / float64(ix.DF("singer")))
	if idfM != 0 || idfS <= 0 {
		t.Fatalf("idf: morcheeba=%v singer=%v", idfM, idfS)
	}
}
