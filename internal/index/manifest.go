package index

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"ajaxcrawl/internal/model"
)

// Snapshot layout: a serving snapshot is one directory holding immutable
// index shard files, optionally the application models needed for
// snippets and result reconstruction, and a manifest.json naming them
// all. The manifest is written last and atomically (temp file + rename),
// so a reader that can load a manifest can load everything it points at;
// a crash mid-save leaves no manifest and therefore no half-snapshot. A
// new save into the same directory gets a fresh ID, which is what the
// serving daemon's -watch loop keys hot swaps on.

const (
	// ManifestFileName is the snapshot manifest file.
	ManifestFileName = "manifest.json"
	// ManifestVersion is the current manifest format version.
	ManifestVersion = 1

	// FormatGob marks shards saved with Index.Save (encoding/gob).
	FormatGob = "gob"
	// FormatCompressed marks shards saved with Index.SaveCompressed.
	FormatCompressed = "bin"
)

// ShardEntry describes one shard file of a snapshot.
type ShardEntry struct {
	// File is the shard's file name, relative to the snapshot directory.
	File string `json:"file"`
	// Docs, States and Postings are the shard's sizes, recorded so a
	// loader can cross-check what it read against what was written.
	Docs     int `json:"docs"`
	States   int `json:"states"`
	Postings int `json:"postings"`
	// Terms is the shard's vocabulary size (distinct indexed terms).
	// Routers and fleet tooling read it to reason about df skew across
	// shards without loading the shard itself; absent (0) in manifests
	// written before the field existed.
	Terms int `json:"terms,omitempty"`
}

// Manifest is the versioned snapshot descriptor.
type Manifest struct {
	// Version is the manifest format version (ManifestVersion).
	Version int `json:"version"`
	// ID uniquely identifies this snapshot generation; every save mints
	// a new one. The serving daemon swaps engines when it changes.
	ID string `json:"id"`
	// CreatedAt is when the snapshot was written.
	CreatedAt time.Time `json:"created_at"`
	// Format is the shard file format (FormatGob or FormatCompressed).
	Format string `json:"format"`
	// Shards lists the shard files in broker order (partition order, so
	// ranking tie-breaks are reproducible).
	Shards []ShardEntry `json:"shards"`
	// Models is the application-models file name (model.ModelFileName),
	// or "" when the snapshot carries indexes only (no snippets or
	// result reconstruction).
	Models string `json:"models,omitempty"`
	// TotalDocs and TotalStates aggregate the shard sizes.
	TotalDocs   int `json:"total_docs"`
	TotalStates int `json:"total_states"`
	// TotalTerms sums the per-shard vocabulary sizes (an upper bound on
	// the union vocabulary: shards can share terms). 0 in old manifests.
	TotalTerms int `json:"total_terms,omitempty"`
}

// computeID derives the snapshot ID from the shard inventory and the
// creation time: identical content re-saved still gets a distinct ID, so
// every completed save reads as a new generation to watchers.
func (m *Manifest) computeID() string {
	h := sha256.New()
	fmt.Fprintf(h, "v%d@%d:%s:%s\n", m.Version, m.CreatedAt.UnixNano(), m.Format, m.Models)
	for _, s := range m.Shards {
		fmt.Fprintf(h, "%s:%d:%d:%d:%d\n", s.File, s.Docs, s.States, s.Postings, s.Terms)
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// WriteManifest writes m to dir/manifest.json atomically: the JSON is
// staged in a temp file in the same directory and renamed into place, so
// a concurrent -watch reader sees either the old manifest or the new
// one, never a torn write.
func WriteManifest(dir string, m *Manifest) error {
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("index: manifest: %w", err)
	}
	tmp, err := os.CreateTemp(dir, ManifestFileName+".tmp-*")
	if err != nil {
		return fmt.Errorf("index: manifest: %w", err)
	}
	if _, err := tmp.Write(append(b, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("index: manifest: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("index: manifest: %w", err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, ManifestFileName)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("index: manifest: %w", err)
	}
	return nil
}

// LoadManifest reads and validates dir/manifest.json.
func LoadManifest(dir string) (*Manifest, error) {
	b, err := os.ReadFile(filepath.Join(dir, ManifestFileName))
	if err != nil {
		return nil, fmt.Errorf("index: manifest: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("index: manifest: %w", err)
	}
	if m.Version != ManifestVersion {
		return nil, fmt.Errorf("index: manifest: unsupported version %d", m.Version)
	}
	if m.Format != FormatGob && m.Format != FormatCompressed {
		return nil, fmt.Errorf("index: manifest: unknown shard format %q", m.Format)
	}
	if len(m.Shards) == 0 {
		return nil, fmt.Errorf("index: manifest: no shards")
	}
	for _, s := range m.Shards {
		// Shard files must stay inside the snapshot directory; a
		// manifest is disk input and gets no path traversal.
		if s.File == "" || s.File != filepath.Base(s.File) || strings.HasPrefix(s.File, ".") {
			return nil, fmt.Errorf("index: manifest: bad shard file name %q", s.File)
		}
	}
	if m.Models != "" && (m.Models != filepath.Base(m.Models) || strings.HasPrefix(m.Models, ".")) {
		return nil, fmt.Errorf("index: manifest: bad models file name %q", m.Models)
	}
	return &m, nil
}

// SaveSnapshot writes shards (and, when graphs is non-empty, the
// application models) into dir and then publishes the manifest. The
// shard order is preserved — it is the broker order queries will see.
// Graphs are stored sorted by URL so identical crawls produce
// byte-identical snapshots (modulo the manifest's ID and timestamp).
func SaveSnapshot(dir string, shards []*Index, graphs []*model.Graph) (*Manifest, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("index: snapshot: no shards to save")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("index: snapshot: %w", err)
	}
	m := &Manifest{
		Version:   ManifestVersion,
		CreatedAt: time.Now().UTC(),
		Format:    FormatGob,
	}
	for i, shard := range shards {
		name := fmt.Sprintf("shard-%04d.%s", i, FormatGob)
		if err := shard.Save(filepath.Join(dir, name)); err != nil {
			return nil, err
		}
		m.Shards = append(m.Shards, ShardEntry{
			File:     name,
			Docs:     shard.NumDocs(),
			States:   shard.TotalStates,
			Postings: shard.NumPostings(),
			Terms:    shard.NumTerms(),
		})
		m.TotalDocs += shard.NumDocs()
		m.TotalStates += shard.TotalStates
		m.TotalTerms += shard.NumTerms()
	}
	if len(graphs) > 0 {
		sorted := append([]*model.Graph(nil), graphs...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i].URL < sorted[j].URL })
		if err := model.SaveAll(dir, sorted); err != nil {
			return nil, fmt.Errorf("index: snapshot: %w", err)
		}
		m.Models = model.ModelFileName
	}
	m.ID = m.computeID()
	if err := WriteManifest(dir, m); err != nil {
		return nil, err
	}
	return m, nil
}

// LoadSnapshot reads dir's manifest and every shard it lists, verifying
// each shard's sizes against the manifest record. Models, when present,
// are loaded separately (model.LoadAll) by callers that need them.
func LoadSnapshot(dir string) (*Manifest, []*Index, error) {
	m, err := LoadManifest(dir)
	if err != nil {
		return nil, nil, err
	}
	shards := make([]*Index, 0, len(m.Shards))
	for _, entry := range m.Shards {
		path := filepath.Join(dir, entry.File)
		var shard *Index
		if m.Format == FormatCompressed {
			shard, err = LoadCompressed(path)
		} else {
			shard, err = Load(path)
		}
		if err != nil {
			return nil, nil, fmt.Errorf("index: snapshot shard %s: %w", entry.File, err)
		}
		if shard.NumDocs() != entry.Docs || shard.TotalStates != entry.States {
			return nil, nil, fmt.Errorf("index: snapshot shard %s: has %d docs/%d states, manifest says %d/%d",
				entry.File, shard.NumDocs(), shard.TotalStates, entry.Docs, entry.States)
		}
		// Terms is cross-checked only when recorded: manifests written
		// before the field existed carry 0 and stay loadable.
		if entry.Terms != 0 && shard.NumTerms() != entry.Terms {
			return nil, nil, fmt.Errorf("index: snapshot shard %s: has %d terms, manifest says %d",
				entry.File, shard.NumTerms(), entry.Terms)
		}
		shards = append(shards, shard)
	}
	return m, shards, nil
}
