package index

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// fuzzSeedIndex builds a representative index and returns its bytes in
// both on-disk formats.
func fuzzSeedIndex(tb testing.TB) (gobBytes, binBytes []byte) {
	tb.Helper()
	part1, part2 := snapshotGraphs()
	ix := Build(append(part1, part2...), map[string]float64{"site/watch?v=a": 0.4}, 0)
	var gb, bb bytes.Buffer
	if err := ix.Encode(&gb); err != nil {
		tb.Fatal(err)
	}
	if err := ix.EncodeCompressed(&bb); err != nil {
		tb.Fatal(err)
	}
	return gb.Bytes(), bb.Bytes()
}

// FuzzIndexLoad feeds arbitrary bytes to both snapshot decoders. Neither
// may ever panic — snapshot files are untrusted disk input read by a
// long-running daemon — and any index that decodes successfully must be
// safe to query (in-range postings, non-empty position lists).
func FuzzIndexLoad(f *testing.F) {
	gobBytes, binBytes := fuzzSeedIndex(f)
	f.Add(gobBytes)
	f.Add(binBytes)
	f.Add(gobBytes[:len(gobBytes)/2])
	f.Add(binBytes[:len(binBytes)/2])
	f.Add([]byte{})
	f.Add([]byte(compressedMagic))
	f.Add([]byte(compressedMagic + "\x01"))
	// A header that lies about the doc count: magic, version, then a
	// varint claiming ~1e12 docs follow. This was a crasher: the count
	// went straight into make() before maxCount existed.
	lying := []byte(compressedMagic + "\x01")
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], 1<<40)
	f.Add(append(lying, buf[:n]...))
	// Bit flips in otherwise-valid input hit the mid-stream paths.
	for _, off := range []int{8, len(binBytes) / 3, 2 * len(binBytes) / 3} {
		flipped := append([]byte(nil), binBytes...)
		flipped[off] ^= 0x80
		f.Add(flipped)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		for name, dec := range map[string]func(*bytes.Reader) (*Index, error){
			"gob": func(r *bytes.Reader) (*Index, error) { return Decode(r) },
			"bin": func(r *bytes.Reader) (*Index, error) { return DecodeCompressed(r) },
		} {
			ix, err := dec(bytes.NewReader(data))
			if err != nil {
				continue // error is the correct outcome for corrupt input
			}
			// Decoded OK: the invariants the query layer relies on must
			// hold, or SearchTopK would index out of range at serve time.
			nd := ix.NumDocs()
			_ = ix.NumPostings()
			for term, ps := range ix.Terms {
				for _, p := range ps {
					if int(p.Doc) < 0 || int(p.Doc) >= nd {
						t.Fatalf("%s: term %q posting doc %d out of range [0,%d)", name, term, p.Doc, nd)
					}
					if len(p.Positions) == 0 {
						t.Fatalf("%s: term %q posting for doc %d has no positions", name, term, p.Doc)
					}
					_ = ix.Doc(p.Doc)
				}
				_ = ix.Lookup(term)
				_ = ix.DF(term)
			}
		}
	})
}

// TestDecodeCompressedLyingCounts pins the specific crasher class the
// count caps fix: headers that promise more data than the file holds
// must come back as load errors, not allocation panics.
func TestDecodeCompressedLyingCounts(t *testing.T) {
	header := []byte(compressedMagic + "\x01")
	var buf [binary.MaxVarintLen64]byte
	for _, count := range []uint64{maxCount + 1, 1 << 40, 1<<64 - 1} {
		n := binary.PutUvarint(buf[:], count)
		data := append(append([]byte(nil), header...), buf[:n]...)
		if _, err := DecodeCompressed(bytes.NewReader(data)); err == nil {
			t.Fatalf("doc count %d accepted", count)
		}
	}
}

// TestDecodeTruncated walks every prefix of a valid compressed index;
// all must fail cleanly (the full input must load).
func TestDecodeTruncated(t *testing.T) {
	_, binBytes := fuzzSeedIndex(t)
	if _, err := DecodeCompressed(bytes.NewReader(binBytes)); err != nil {
		t.Fatalf("full input: %v", err)
	}
	for i := 0; i < len(binBytes); i++ {
		if _, err := DecodeCompressed(bytes.NewReader(binBytes[:i])); err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded without error", i, len(binBytes))
		}
	}
}
