package fetch

import (
	"context"
	"errors"
	"sync"

	"ajaxcrawl/internal/obs"
)

// Cache is a memoizing Fetcher wrapper: every URL is fetched from the
// inner Fetcher once and served from memory afterwards — the
// "pre-cache the Web and crawl locally" strategy of traditional search
// engines (thesis challenge #1).
//
// It also demonstrates *why* that strategy fails for AJAX: URL caching
// deduplicates repeated fetches of the same resource, but events that
// lead to the same state via different code paths still trigger fresh
// XMLHttpRequest URLs, and two states behind one URL cannot be told
// apart at this layer at all. The hot-node cache (internal/core) works
// where this one cannot, because it keys on the executing function and
// its arguments rather than on URLs alone.
type Cache struct {
	Inner Fetcher

	mu      sync.Mutex
	entries map[string]cacheEntry
	hits    int64
	misses  int64
}

type cacheEntry struct {
	resp *Response
	err  error
}

// NewCache wraps inner with a memory cache.
func NewCache(inner Fetcher) *Cache {
	return &Cache{Inner: inner, entries: make(map[string]cacheEntry)}
}

// Unwrap implements Wrapper, so FindStats can reach instrumentation
// wrapped inside the cache.
func (c *Cache) Unwrap() Fetcher { return c.Inner }

// Fetch implements Fetcher. Errors are cached too (negative caching), so
// a broken URL is not retried within one crawl session — matching the
// snapshot-isolation assumption (§4.3). Context errors are the
// exception: a fetch that failed only because its caller's deadline
// passed must not poison the cache for later callers.
func (c *Cache) Fetch(ctx context.Context, rawurl string) (*Response, error) {
	tel := obs.From(ctx)
	c.mu.Lock()
	if e, ok := c.entries[rawurl]; ok {
		c.hits++
		c.mu.Unlock()
		tel.Counter("fetch.cache.hits").Inc()
		return e.resp, e.err
	}
	c.misses++
	c.mu.Unlock()
	tel.Counter("fetch.cache.misses").Inc()

	resp, err := c.Inner.Fetch(ctx, rawurl)
	if err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
		return resp, err
	}
	c.mu.Lock()
	c.entries[rawurl] = cacheEntry{resp: resp, err: err}
	c.mu.Unlock()
	return resp, err
}

// Stats returns (hits, misses).
func (c *Cache) Stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Len returns the number of cached URLs.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Invalidate drops one URL from the cache (for re-crawl sessions).
func (c *Cache) Invalidate(rawurl string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.entries, rawurl)
}

// Clear drops everything.
func (c *Cache) Clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[string]cacheEntry)
	c.hits, c.misses = 0, 0
}
