package fetch

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestInstrumentedConcurrentStats hammers one shared Instrumented from
// many goroutines — the shape of concurrent process lines sharing a
// fetcher — while other goroutines snapshot and reset it. Run under
// `go test -race` (as CI does) this pins the lock-free stats design:
// no data race, and no update lost.
func TestInstrumentedConcurrentStats(t *testing.T) {
	inner := Func(func(ctx context.Context, rawurl string) (*Response, error) {
		if rawurl == "err://boom" {
			return nil, fmt.Errorf("boom")
		}
		return &Response{Status: 200, Body: make([]byte, 100)}, nil
	})
	clock := &VirtualClock{}
	f := NewInstrumented(inner, clock, time.Millisecond, 0)

	const workers = 8
	const perWorker = 500
	var wg sync.WaitGroup
	ctx := context.Background()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				url := "http://ok"
				if i%10 == 0 {
					url = "err://boom"
				}
				f.Fetch(ctx, url) //nolint:errcheck — errors are part of the workload
			}
		}(w)
	}
	// Concurrent readers: Stats must be safe to call mid-crawl (this is
	// exactly what /debug/metrics does to a live run).
	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
				s := f.Stats()
				if s.Errors > s.Calls {
					t.Error("snapshot impossible: errors > calls")
					return
				}
			}
		}
	}()
	wg.Wait()
	close(stop)
	readers.Wait()

	s := f.Stats()
	wantCalls := int64(workers * perWorker)
	wantErrs := int64(workers * perWorker / 10)
	if s.Calls != wantCalls {
		t.Fatalf("Calls = %d, want %d", s.Calls, wantCalls)
	}
	if s.Errors != wantErrs {
		t.Fatalf("Errors = %d, want %d", s.Errors, wantErrs)
	}
	if s.Bytes != (wantCalls-wantErrs)*100 {
		t.Fatalf("Bytes = %d, want %d", s.Bytes, (wantCalls-wantErrs)*100)
	}
	if s.NetworkTime < time.Duration(wantCalls-wantErrs)*time.Millisecond {
		t.Fatalf("NetworkTime = %v, want >= %v", s.NetworkTime, time.Duration(wantCalls-wantErrs)*time.Millisecond)
	}
	f.Reset()
	if s := f.Stats(); s != (Stats{}) {
		t.Fatalf("Reset left %+v", s)
	}
}

// TestResilienceStackConcurrent hammers one shared
// Retry→Breaker→Fault→Instrumented stack from many goroutines — the
// shape of process lines sharing a resilient fetcher. Under `go test
// -race` (CI's fetch-race job runs this three times) it pins that the
// middlewares' internal state (breaker windows, fault RNG, retry
// counters) is safe for concurrent use, and that the counters balance.
func TestResilienceStackConcurrent(t *testing.T) {
	clock := &VirtualClock{}
	inst := NewInstrumented(Func(func(ctx context.Context, rawurl string) (*Response, error) {
		return &Response{Status: 200, Body: []byte("ok")}, nil
	}), clock, time.Millisecond, 0)
	fault := NewFaultFetcher(inst, FaultConfig{ErrorRate: 0.2, MaxConsecutive: 2, Seed: 9}, clock)
	brk := NewBreaker(fault, BreakerConfig{Window: 50, FailureThreshold: 0.9, MinSamples: 10}, clock)
	retry := NewRetryFetcher(brk, RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond}, clock)

	const workers = 8
	const perWorker = 300
	var wg sync.WaitGroup
	ctx := context.Background()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				retry.Fetch(ctx, fmt.Sprintf("/p%d", i%20)) //nolint:errcheck — faults are part of the workload
			}
		}(w)
	}
	wg.Wait()

	st := retry.RetryStats()
	if st.Attempts < workers*perWorker {
		t.Errorf("Attempts = %d, want >= %d", st.Attempts, workers*perWorker)
	}
	if st.Retries == 0 {
		t.Error("no retries recorded against a 20% fault rate")
	}
	errs, _, _ := fault.Injected()
	if errs == 0 {
		t.Error("fault injector never fired")
	}
	if got := st.Attempts - brk.BreakerStats().ShortCircuits; inst.Stats().Calls+fault.errs.Load() < got {
		// Every non-short-circuited attempt either reached the inner
		// fetcher or died at the fault injector.
		t.Errorf("attempt accounting leaks: attempts=%d shortCircuits=%d inner=%d injected=%d",
			st.Attempts, brk.BreakerStats().ShortCircuits, inst.Stats().Calls, fault.errs.Load())
	}
}
