package fetch

import (
	"errors"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func echoHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/page", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html")
		fmt.Fprintf(w, "<html><body>%s</body></html>", r.URL.Query().Get("q"))
	})
	mux.HandleFunc("/big", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(strings.Repeat("x", 4096)))
	})
	return mux
}

func TestHandlerFetcher(t *testing.T) {
	f := &HandlerFetcher{Handler: echoHandler(), Host: "sim.local"}
	resp, err := f.Fetch("http://sim.local/page?q=hello")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 200 || !strings.Contains(string(resp.Body), "hello") {
		t.Fatalf("resp = %d %q", resp.Status, resp.Body)
	}
	if resp.ContentType != "text/html" {
		t.Fatalf("content type = %q", resp.ContentType)
	}
	// Relative URLs work too.
	if _, err := f.Fetch("/page?q=x"); err != nil {
		t.Fatalf("relative fetch: %v", err)
	}
	// Wrong host is rejected.
	if _, err := f.Fetch("http://other.host/page"); err == nil {
		t.Fatalf("foreign host should fail")
	}
	// 404 is returned as a status, not an error.
	resp, err = f.Fetch("/missing")
	if err != nil || resp.Status != 404 {
		t.Fatalf("missing = %v %v", resp, err)
	}
}

func TestInstrumentedCountsAndLatency(t *testing.T) {
	clock := &VirtualClock{}
	inner := &HandlerFetcher{Handler: echoHandler()}
	f := NewInstrumented(inner, clock, 10*time.Millisecond, 1*time.Millisecond)

	if _, err := f.Fetch("/page?q=a"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Fetch("/big"); err != nil {
		t.Fatal(err)
	}
	st := f.Stats()
	if st.Calls != 2 {
		t.Fatalf("calls = %d", st.Calls)
	}
	if st.Bytes < 4096 {
		t.Fatalf("bytes = %d", st.Bytes)
	}
	// /big is 4 KiB → 10ms base + 4ms transfer; /page → ~10ms.
	if st.NetworkTime < 24*time.Millisecond {
		t.Fatalf("network time = %v, want >= 24ms", st.NetworkTime)
	}
	f.Reset()
	if st := f.Stats(); st.Calls != 0 || st.NetworkTime != 0 {
		t.Fatalf("reset failed: %+v", st)
	}
}

func TestInstrumentedErrorCounting(t *testing.T) {
	boom := errors.New("boom")
	f := NewInstrumented(Func(func(string) (*Response, error) { return nil, boom }), &VirtualClock{}, 0, 0)
	if _, err := f.Fetch("/x"); !errors.Is(err, boom) {
		t.Fatalf("error not propagated: %v", err)
	}
	st := f.Stats()
	if st.Errors != 1 || st.Calls != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestInstrumentedConcurrentSafety(t *testing.T) {
	clock := &VirtualClock{}
	f := NewInstrumented(&HandlerFetcher{Handler: echoHandler()}, clock, time.Millisecond, 0)
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				f.Fetch("/page?q=a") //nolint:errcheck
			}
		}()
	}
	wg.Wait()
	if st := f.Stats(); st.Calls != 200 {
		t.Fatalf("calls = %d, want 200", st.Calls)
	}
}

func TestVirtualClockAdvances(t *testing.T) {
	c := &VirtualClock{}
	t0 := c.Now()
	c.Sleep(5 * time.Second)
	if got := c.Now().Sub(t0); got != 5*time.Second {
		t.Fatalf("virtual clock advanced %v", got)
	}
}

func TestHTTPFetcherAgainstLocalServer(t *testing.T) {
	// Spin up a real HTTP server to exercise the live-network path.
	srv := &http.Server{Handler: echoHandler()}
	ln, err := newLocalListener()
	if err != nil {
		t.Skipf("cannot listen: %v", err)
	}
	go srv.Serve(ln) //nolint:errcheck
	defer srv.Close()

	f := &HTTPFetcher{}
	resp, err := f.Fetch("http://" + ln.Addr().String() + "/page?q=live")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(resp.Body), "live") {
		t.Fatalf("body = %q", resp.Body)
	}
}

func newLocalListener() (net.Listener, error) {
	return net.Listen("tcp", "127.0.0.1:0")
}

func TestCacheMemoizes(t *testing.T) {
	calls := 0
	inner := Func(func(url string) (*Response, error) {
		calls++
		return &Response{Status: 200, Body: []byte(url)}, nil
	})
	c := NewCache(inner)
	for i := 0; i < 3; i++ {
		resp, err := c.Fetch("/a")
		if err != nil || string(resp.Body) != "/a" {
			t.Fatalf("fetch: %v %v", resp, err)
		}
	}
	if calls != 1 {
		t.Fatalf("inner called %d times, want 1", calls)
	}
	if _, err := c.Fetch("/b"); err != nil {
		t.Fatal(err)
	}
	if calls != 2 || c.Len() != 2 {
		t.Fatalf("calls=%d len=%d", calls, c.Len())
	}
	hits, misses := c.Stats()
	if hits != 2 || misses != 2 {
		t.Fatalf("hits=%d misses=%d", hits, misses)
	}
	c.Invalidate("/a")
	c.Fetch("/a") //nolint:errcheck
	if calls != 3 {
		t.Fatalf("invalidate did not evict")
	}
	c.Clear()
	if c.Len() != 0 {
		t.Fatalf("clear failed")
	}
}

func TestCacheNegativeCaching(t *testing.T) {
	calls := 0
	boom := errors.New("down")
	c := NewCache(Func(func(string) (*Response, error) {
		calls++
		return nil, boom
	}))
	for i := 0; i < 2; i++ {
		if _, err := c.Fetch("/broken"); !errors.Is(err, boom) {
			t.Fatalf("error not cached/propagated: %v", err)
		}
	}
	if calls != 1 {
		t.Fatalf("negative caching failed: %d calls", calls)
	}
}

func TestCacheConcurrent(t *testing.T) {
	c := NewCache(&HandlerFetcher{Handler: echoHandler()})
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				c.Fetch("/page?q=x") //nolint:errcheck
			}
		}(i)
	}
	wg.Wait()
	hits, misses := c.Stats()
	if hits+misses != 200 {
		t.Fatalf("hits+misses = %d", hits+misses)
	}
}
