package fetch

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func echoHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/page", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html")
		fmt.Fprintf(w, "<html><body>%s</body></html>", r.URL.Query().Get("q"))
	})
	mux.HandleFunc("/big", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(strings.Repeat("x", 4096)))
	})
	return mux
}

func TestHandlerFetcher(t *testing.T) {
	f := &HandlerFetcher{Handler: echoHandler(), Host: "sim.local"}
	resp, err := f.Fetch(context.Background(), "http://sim.local/page?q=hello")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 200 || !strings.Contains(string(resp.Body), "hello") {
		t.Fatalf("resp = %d %q", resp.Status, resp.Body)
	}
	if resp.ContentType != "text/html" {
		t.Fatalf("content type = %q", resp.ContentType)
	}
	// Relative URLs work too.
	if _, err := f.Fetch(context.Background(), "/page?q=x"); err != nil {
		t.Fatalf("relative fetch: %v", err)
	}
	// Wrong host is rejected.
	if _, err := f.Fetch(context.Background(), "http://other.host/page"); err == nil {
		t.Fatalf("foreign host should fail")
	}
	// 404 is returned as a status, not an error.
	resp, err = f.Fetch(context.Background(), "/missing")
	if err != nil || resp.Status != 404 {
		t.Fatalf("missing = %v %v", resp, err)
	}
}

func TestInstrumentedCountsAndLatency(t *testing.T) {
	clock := &VirtualClock{}
	inner := &HandlerFetcher{Handler: echoHandler()}
	f := NewInstrumented(inner, clock, 10*time.Millisecond, 1*time.Millisecond)

	if _, err := f.Fetch(context.Background(), "/page?q=a"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Fetch(context.Background(), "/big"); err != nil {
		t.Fatal(err)
	}
	st := f.Stats()
	if st.Calls != 2 {
		t.Fatalf("calls = %d", st.Calls)
	}
	if st.Bytes < 4096 {
		t.Fatalf("bytes = %d", st.Bytes)
	}
	// /big is 4 KiB → 10ms base + 4ms transfer; /page → ~10ms.
	if st.NetworkTime < 24*time.Millisecond {
		t.Fatalf("network time = %v, want >= 24ms", st.NetworkTime)
	}
	f.Reset()
	if st := f.Stats(); st.Calls != 0 || st.NetworkTime != 0 {
		t.Fatalf("reset failed: %+v", st)
	}
}

func TestInstrumentedErrorCounting(t *testing.T) {
	boom := errors.New("boom")
	f := NewInstrumented(Func(func(context.Context, string) (*Response, error) { return nil, boom }), &VirtualClock{}, 0, 0)
	if _, err := f.Fetch(context.Background(), "/x"); !errors.Is(err, boom) {
		t.Fatalf("error not propagated: %v", err)
	}
	st := f.Stats()
	if st.Errors != 1 || st.Calls != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestInstrumentedConcurrentSafety(t *testing.T) {
	clock := &VirtualClock{}
	f := NewInstrumented(&HandlerFetcher{Handler: echoHandler()}, clock, time.Millisecond, 0)
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				f.Fetch(context.Background(), "/page?q=a") //nolint:errcheck
			}
		}()
	}
	wg.Wait()
	if st := f.Stats(); st.Calls != 200 {
		t.Fatalf("calls = %d, want 200", st.Calls)
	}
}

func TestVirtualClockAdvances(t *testing.T) {
	c := &VirtualClock{}
	t0 := c.Now()
	c.Sleep(context.Background(), 5*time.Second) //nolint:errcheck
	if got := c.Now().Sub(t0); got != 5*time.Second {
		t.Fatalf("virtual clock advanced %v", got)
	}
}

func TestHTTPFetcherAgainstLocalServer(t *testing.T) {
	// Spin up a real HTTP server to exercise the live-network path.
	srv := &http.Server{Handler: echoHandler()}
	ln, err := newLocalListener()
	if err != nil {
		t.Skipf("cannot listen: %v", err)
	}
	go srv.Serve(ln) //nolint:errcheck
	defer srv.Close()

	f := &HTTPFetcher{}
	resp, err := f.Fetch(context.Background(), "http://"+ln.Addr().String()+"/page?q=live")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(resp.Body), "live") {
		t.Fatalf("body = %q", resp.Body)
	}
}

func newLocalListener() (net.Listener, error) {
	return net.Listen("tcp", "127.0.0.1:0")
}

func TestCacheMemoizes(t *testing.T) {
	calls := 0
	inner := Func(func(ctx context.Context, url string) (*Response, error) {
		calls++
		return &Response{Status: 200, Body: []byte(url)}, nil
	})
	c := NewCache(inner)
	for i := 0; i < 3; i++ {
		resp, err := c.Fetch(context.Background(), "/a")
		if err != nil || string(resp.Body) != "/a" {
			t.Fatalf("fetch: %v %v", resp, err)
		}
	}
	if calls != 1 {
		t.Fatalf("inner called %d times, want 1", calls)
	}
	if _, err := c.Fetch(context.Background(), "/b"); err != nil {
		t.Fatal(err)
	}
	if calls != 2 || c.Len() != 2 {
		t.Fatalf("calls=%d len=%d", calls, c.Len())
	}
	hits, misses := c.Stats()
	if hits != 2 || misses != 2 {
		t.Fatalf("hits=%d misses=%d", hits, misses)
	}
	c.Invalidate("/a")
	c.Fetch(context.Background(), "/a") //nolint:errcheck
	if calls != 3 {
		t.Fatalf("invalidate did not evict")
	}
	c.Clear()
	if c.Len() != 0 {
		t.Fatalf("clear failed")
	}
}

func TestCacheNegativeCaching(t *testing.T) {
	calls := 0
	boom := errors.New("down")
	c := NewCache(Func(func(context.Context, string) (*Response, error) {
		calls++
		return nil, boom
	}))
	for i := 0; i < 2; i++ {
		if _, err := c.Fetch(context.Background(), "/broken"); !errors.Is(err, boom) {
			t.Fatalf("error not cached/propagated: %v", err)
		}
	}
	if calls != 1 {
		t.Fatalf("negative caching failed: %d calls", calls)
	}
}

func TestCacheConcurrent(t *testing.T) {
	c := NewCache(&HandlerFetcher{Handler: echoHandler()})
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				c.Fetch(context.Background(), "/page?q=x") //nolint:errcheck
			}
		}(i)
	}
	wg.Wait()
	hits, misses := c.Stats()
	if hits+misses != 200 {
		t.Fatalf("hits+misses = %d", hits+misses)
	}
}

func TestFindStatsWalksWrapperChain(t *testing.T) {
	inner := &HandlerFetcher{Handler: echoHandler()}
	inst := NewInstrumented(inner, &VirtualClock{}, 0, 0)
	// Cache's Stats() (int64, int64) does not satisfy StatsProvider, so
	// the walk passes through it to the Instrumented underneath.
	c := NewCache(inst)
	sp := FindStats(c)
	if sp == nil {
		t.Fatalf("FindStats found nothing through the cache")
	}
	if _, err := c.Fetch(context.Background(), "/page?q=a"); err != nil {
		t.Fatal(err)
	}
	if sp.Stats().Calls != 1 {
		t.Fatalf("stats not attributed through wrapper chain: %+v", sp.Stats())
	}
	// A bare fetcher with no stats anywhere yields nil.
	if FindStats(inner) != nil {
		t.Fatalf("bare fetcher should have no stats provider")
	}
	if FindStats(nil) != nil {
		t.Fatalf("nil fetcher should yield nil")
	}
}

func TestRealClockSleepInterruptible(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	err := RealClock{}.Sleep(ctx, 10*time.Second)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if time.Since(start) > time.Second {
		t.Fatalf("canceled sleep blocked")
	}
}

func TestVirtualClockSleepHonorsContext(t *testing.T) {
	c := &VirtualClock{}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	t0 := c.Now()
	if err := c.Sleep(ctx, 5*time.Second); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if c.Now() != t0 {
		t.Fatalf("canceled virtual sleep still advanced the clock")
	}
}

func TestCacheDoesNotCacheContextErrors(t *testing.T) {
	calls := 0
	c := NewCache(Func(func(ctx context.Context, url string) (*Response, error) {
		calls++
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return &Response{Status: 200, Body: []byte(url)}, nil
	}))
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Fetch(canceled, "/a"); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	// The cancellation must not poison the cache: a healthy retry hits
	// the network and succeeds.
	resp, err := c.Fetch(context.Background(), "/a")
	if err != nil || string(resp.Body) != "/a" {
		t.Fatalf("retry after cancellation failed: %v %v", resp, err)
	}
	if calls != 2 {
		t.Fatalf("inner called %d times, want 2", calls)
	}
}
