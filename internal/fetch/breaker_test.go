package fetch

import (
	"context"
	"errors"
	"fmt"
	"net/url"
	"sync/atomic"
	"testing"
	"time"

	"ajaxcrawl/internal/obs"
)

// flakyHost serves good hosts and fails bad ones, counting inner calls.
type flakyHost struct {
	badHosts map[string]bool
	calls    atomic.Int64
}

func (h *flakyHost) Fetch(ctx context.Context, rawurl string) (*Response, error) {
	h.calls.Add(1)
	u, _ := url.Parse(rawurl)
	if h.badHosts[u.Host] {
		return nil, errInjectedf("fetch " + rawurl)
	}
	return &Response{Status: 200, Body: []byte("ok")}, nil
}

func testBreakerConfig() BreakerConfig {
	return BreakerConfig{
		Window:           4,
		FailureThreshold: 0.5,
		MinSamples:       4,
		Cooldown:         time.Minute,
		HalfOpenProbes:   2,
	}
}

func TestBreakerOpensAndShortCircuits(t *testing.T) {
	clock := &VirtualClock{}
	inner := &flakyHost{badHosts: map[string]bool{"bad.host": true}}
	b := NewBreaker(inner, testBreakerConfig(), clock)
	ctx := context.Background()

	for i := 0; i < 4; i++ {
		if _, err := b.Fetch(ctx, "http://bad.host/p"); err == nil {
			t.Fatal("want failure from bad host")
		}
	}
	if got := b.State("bad.host"); got != StateOpen {
		t.Fatalf("state after 4 failures = %v, want open", got)
	}
	callsBefore := inner.calls.Load()
	_, err := b.Fetch(ctx, "http://bad.host/p")
	if !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("err = %v, want ErrBreakerOpen", err)
	}
	if inner.calls.Load() != callsBefore {
		t.Error("open circuit still reached the inner fetcher")
	}
	st := b.BreakerStats()
	if st.Opens != 1 || st.ShortCircuits != 1 {
		t.Errorf("stats = %+v, want Opens=1 ShortCircuits=1", st)
	}
}

func TestBreakerHalfOpenClosesAfterProbes(t *testing.T) {
	clock := &VirtualClock{}
	inner := &flakyHost{badHosts: map[string]bool{"bad.host": true}}
	b := NewBreaker(inner, testBreakerConfig(), clock)
	ctx := context.Background()

	for i := 0; i < 4; i++ {
		b.Fetch(ctx, "http://bad.host/p") //nolint:errcheck — tripping the circuit
	}
	if b.State("bad.host") != StateOpen {
		t.Fatal("circuit did not open")
	}

	// Host recovers; cooldown elapses on the virtual clock.
	inner.badHosts["bad.host"] = false
	clock.Sleep(ctx, time.Minute) //nolint:errcheck — virtual

	if _, err := b.Fetch(ctx, "http://bad.host/p"); err != nil {
		t.Fatalf("first probe: %v", err)
	}
	if got := b.State("bad.host"); got != StateHalfOpen {
		t.Fatalf("state after 1/2 probes = %v, want half-open", got)
	}
	if _, err := b.Fetch(ctx, "http://bad.host/p"); err != nil {
		t.Fatalf("second probe: %v", err)
	}
	if got := b.State("bad.host"); got != StateClosed {
		t.Fatalf("state after probes = %v, want closed", got)
	}
	if st := b.BreakerStats(); st.Closes != 1 {
		t.Errorf("Closes = %d, want 1", st.Closes)
	}
}

func TestBreakerHalfOpenReopensOnProbeFailure(t *testing.T) {
	clock := &VirtualClock{}
	inner := &flakyHost{badHosts: map[string]bool{"bad.host": true}}
	b := NewBreaker(inner, testBreakerConfig(), clock)
	ctx := context.Background()

	for i := 0; i < 4; i++ {
		b.Fetch(ctx, "http://bad.host/p") //nolint:errcheck
	}
	clock.Sleep(ctx, time.Minute) //nolint:errcheck

	// Probe goes through (half-open) and fails: back to open, cooldown
	// restarted, traffic shed again.
	if _, err := b.Fetch(ctx, "http://bad.host/p"); err == nil {
		t.Fatal("probe should have failed")
	}
	if got := b.State("bad.host"); got != StateOpen {
		t.Fatalf("state after failed probe = %v, want open", got)
	}
	if _, err := b.Fetch(ctx, "http://bad.host/p"); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("err = %v, want short-circuit after reopen", err)
	}
	if st := b.BreakerStats(); st.Opens != 2 {
		t.Errorf("Opens = %d, want 2", st.Opens)
	}
}

func TestBreakerIsPerHost(t *testing.T) {
	clock := &VirtualClock{}
	inner := &flakyHost{badHosts: map[string]bool{"bad.host": true}}
	b := NewBreaker(inner, testBreakerConfig(), clock)
	ctx := context.Background()

	for i := 0; i < 4; i++ {
		b.Fetch(ctx, "http://bad.host/p")  //nolint:errcheck
		b.Fetch(ctx, "http://good.host/p") //nolint:errcheck
	}
	if b.State("bad.host") != StateOpen {
		t.Error("bad.host circuit should be open")
	}
	if b.State("good.host") != StateClosed {
		t.Error("good.host circuit should stay closed")
	}
	if _, err := b.Fetch(ctx, "http://good.host/p"); err != nil {
		t.Errorf("good host sheared by bad host's circuit: %v", err)
	}
}

func TestBreakerIgnoresCanceledAttempts(t *testing.T) {
	clock := &VirtualClock{}
	inner := Func(func(ctx context.Context, rawurl string) (*Response, error) {
		return nil, fmt.Errorf("fetch %s: %w", rawurl, context.Canceled)
	})
	b := NewBreaker(inner, BreakerConfig{Window: 4, MinSamples: 2, FailureThreshold: 0.1}, clock)
	ctx := context.Background()
	for i := 0; i < 10; i++ {
		b.Fetch(ctx, "/p") //nolint:errcheck
	}
	if got := b.State(""); got != StateClosed {
		t.Errorf("state after canceled attempts = %v, want closed (cancel is not the host's fault)", got)
	}
}

func TestBreaker5xxCountsAsFailure(t *testing.T) {
	clock := &VirtualClock{}
	inner := Func(func(ctx context.Context, rawurl string) (*Response, error) {
		return &Response{Status: 503}, nil
	})
	b := NewBreaker(inner, testBreakerConfig(), clock)
	ctx := context.Background()
	for i := 0; i < 4; i++ {
		b.Fetch(ctx, "/p") //nolint:errcheck
	}
	if got := b.State(""); got != StateOpen {
		t.Errorf("state after 4x 503 = %v, want open", got)
	}
}

func TestBreakerReportsTelemetry(t *testing.T) {
	reg := obs.NewRegistry()
	ctx := obs.With(context.Background(), obs.New(reg, nil))
	clock := &VirtualClock{}
	inner := &flakyHost{badHosts: map[string]bool{"bad.host": true}}
	b := NewBreaker(inner, testBreakerConfig(), clock)

	for i := 0; i < 5; i++ {
		b.Fetch(ctx, "http://bad.host/p") //nolint:errcheck
	}
	snap := reg.Snapshot()
	if snap.Counters["breaker.opens"] != 1 {
		t.Errorf("breaker.opens = %d, want 1", snap.Counters["breaker.opens"])
	}
	if snap.Counters["breaker.short_circuits"] != 1 {
		t.Errorf("breaker.short_circuits = %d, want 1", snap.Counters["breaker.short_circuits"])
	}
	if snap.Gauges["breaker.open_hosts"] != 1 {
		t.Errorf("breaker.open_hosts = %d, want 1", snap.Gauges["breaker.open_hosts"])
	}

	// Recovery drains the gauge and counts the close.
	inner.badHosts["bad.host"] = false
	clock.Sleep(ctx, time.Minute)     //nolint:errcheck
	b.Fetch(ctx, "http://bad.host/p") //nolint:errcheck
	b.Fetch(ctx, "http://bad.host/p") //nolint:errcheck
	snap = reg.Snapshot()
	if snap.Gauges["breaker.open_hosts"] != 0 {
		t.Errorf("breaker.open_hosts after close = %d, want 0", snap.Gauges["breaker.open_hosts"])
	}
	if snap.Counters["breaker.closes"] != 1 {
		t.Errorf("breaker.closes = %d, want 1", snap.Counters["breaker.closes"])
	}
}
