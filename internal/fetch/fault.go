package fetch

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"ajaxcrawl/internal/obs"
)

// ErrInjected marks a fault manufactured by a FaultFetcher. It is a
// transport-level transient error: DefaultRetryable retries it, and the
// breaker counts it against the host — exactly how a real flaky server
// would be experienced.
var ErrInjected = errors.New("fetch: injected fault")

// FaultOp is one scripted fault action for FaultConfig.Scripts.
type FaultOp string

// Scripted fault actions: FaultOK passes the call through untouched,
// FaultError fails it with ErrInjected, FaultDelay charges Latency on
// the clock then proceeds, FaultTruncate fails it as a mid-body
// connection loss. A script that runs out behaves as FaultOK forever.
const (
	FaultOK       FaultOp = "ok"
	FaultError    FaultOp = "error"
	FaultDelay    FaultOp = "delay"
	FaultTruncate FaultOp = "truncate"
)

// FaultConfig tunes a FaultFetcher. All probabilities are independent
// per call; the zero value injects nothing.
type FaultConfig struct {
	// ErrorRate is the probability of failing a call with ErrInjected
	// (a transient transport error, e.g. connection reset).
	ErrorRate float64
	// LatencyRate is the probability of a latency spike: Latency is
	// charged on the Clock before the call proceeds normally.
	LatencyRate float64
	// Latency is the spike charged on LatencyRate hits. 0 means 250ms.
	Latency time.Duration
	// TruncateRate is the probability of failing a call as a truncated
	// body (connection lost mid-transfer, detected by the client).
	TruncateRate float64
	// MaxConsecutive, when > 0, caps how many calls in a row one URL may
	// fault (delays excluded): the cap makes every URL recoverable
	// within MaxConsecutive+1 attempts, so a chaos test with a retry
	// budget above the cap passes deterministically.
	MaxConsecutive int
	// Seed seeds the fault RNG; the same seed over the same call
	// sequence injects the same faults.
	Seed int64
	// Scripts, when set, overrides the random model per URL: each call
	// to a scripted URL consumes the next FaultOp of its script.
	Scripts map[string][]FaultOp
}

// FaultFetcher injects configurable faults between the crawler and a
// working Fetcher — the chaos-testing harness. It composes with the rest
// of the middleware stack through the Unwrap chain, so instrumentation
// below it still counts the injected outcomes and a RetryFetcher above
// it gets to recover them. Deterministic: faults are drawn from a seeded
// RNG (serialized under a mutex), and per-URL Scripts pin exact
// sequences.
//
// Injected faults are recorded as fault.injected.errors /
// fault.injected.delays / fault.injected.truncations counters when
// telemetry rides the context.
type FaultFetcher struct {
	Inner  Fetcher
	Config FaultConfig
	// Clock charges latency spikes. nil means RealClock.
	Clock Clock

	mu        sync.Mutex
	rnd       *rand.Rand
	scriptPos map[string]int
	consec    map[string]int

	errs   atomic.Int64
	delays atomic.Int64
	truncs atomic.Int64
}

// NewFaultFetcher wraps inner with the given fault model on clock.
func NewFaultFetcher(inner Fetcher, cfg FaultConfig, clock Clock) *FaultFetcher {
	if clock == nil {
		clock = RealClock{}
	}
	if cfg.Latency <= 0 {
		cfg.Latency = 250 * time.Millisecond
	}
	return &FaultFetcher{
		Inner:     inner,
		Config:    cfg,
		Clock:     clock,
		rnd:       rand.New(rand.NewSource(cfg.Seed)),
		scriptPos: make(map[string]int),
		consec:    make(map[string]int),
	}
}

// Unwrap implements Wrapper.
func (f *FaultFetcher) Unwrap() Fetcher { return f.Inner }

// Injected returns how many faults of each kind have fired so far.
func (f *FaultFetcher) Injected() (errs, delays, truncations int64) {
	return f.errs.Load(), f.delays.Load(), f.truncs.Load()
}

// decide picks the fault for this call under f.mu: the URL's script if
// one exists, else a roll of the random model. MaxConsecutive downgrades
// a failing random fault to FaultOK once the URL's streak hits the cap.
func (f *FaultFetcher) decide(rawurl string) FaultOp {
	f.mu.Lock()
	defer f.mu.Unlock()
	op := FaultOK
	if script, ok := f.Config.Scripts[rawurl]; ok {
		if pos := f.scriptPos[rawurl]; pos < len(script) {
			f.scriptPos[rawurl] = pos + 1
			op = script[pos]
		}
	} else {
		switch r := f.rnd.Float64(); {
		case r < f.Config.ErrorRate:
			op = FaultError
		case r < f.Config.ErrorRate+f.Config.TruncateRate:
			op = FaultTruncate
		case r < f.Config.ErrorRate+f.Config.TruncateRate+f.Config.LatencyRate:
			op = FaultDelay
		}
		if (op == FaultError || op == FaultTruncate) &&
			f.Config.MaxConsecutive > 0 && f.consec[rawurl] >= f.Config.MaxConsecutive {
			op = FaultOK
		}
	}
	if op == FaultError || op == FaultTruncate {
		f.consec[rawurl]++
	} else if op != FaultDelay {
		f.consec[rawurl] = 0
	}
	return op
}

// Fetch implements Fetcher.
func (f *FaultFetcher) Fetch(ctx context.Context, rawurl string) (*Response, error) {
	tel := obs.From(ctx)
	switch f.decide(rawurl) {
	case FaultError:
		f.errs.Add(1)
		tel.Counter("fault.injected.errors").Inc()
		return nil, fmt.Errorf("fetch %s: connection reset: %w", rawurl, ErrInjected)
	case FaultTruncate:
		f.truncs.Add(1)
		tel.Counter("fault.injected.truncations").Inc()
		return nil, fmt.Errorf("fetch %s: truncated body: %w", rawurl, ErrInjected)
	case FaultDelay:
		f.delays.Add(1)
		tel.Counter("fault.injected.delays").Inc()
		if err := f.Clock.Sleep(ctx, f.Config.Latency); err != nil {
			return nil, fmt.Errorf("fetch %s: %w", rawurl, err)
		}
	}
	return f.Inner.Fetch(ctx, rawurl)
}
