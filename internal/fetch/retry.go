package fetch

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"sync/atomic"
	"time"

	"ajaxcrawl/internal/obs"
)

// RetryPolicy configures RetryFetcher: how many times to attempt a
// fetch, how to space the attempts, and which outcomes are worth
// retrying. The zero value is usable and means 4 attempts, 100ms base
// backoff capped at 5s, no per-attempt timeout, Retry-After honored,
// DefaultRetryable classification.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts, counting the first
	// (so MaxAttempts=1 disables retrying). 0 means 4.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; each further
	// retry doubles it (exponential backoff). 0 means 100ms.
	BaseDelay time.Duration
	// MaxDelay caps the exponential backoff. 0 means 5s.
	MaxDelay time.Duration
	// AttemptTimeout, when > 0, bounds each individual attempt with a
	// context deadline derived from the caller's context. An attempt
	// that blows only this per-attempt deadline is retryable; the
	// caller's own context ending always stops the loop.
	AttemptTimeout time.Duration
	// IgnoreRetryAfter disables honoring the server's Retry-After hint.
	// By default a hinted delay overrides a shorter computed backoff.
	IgnoreRetryAfter bool
	// Retryable classifies an attempt's outcome; retrying continues only
	// while it returns true. nil means DefaultRetryable.
	Retryable func(resp *Response, err error) bool
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 100 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 5 * time.Second
	}
	if p.Retryable == nil {
		p.Retryable = DefaultRetryable
	}
	return p
}

// DefaultRetryable is the stock transient-failure classification:
//
//   - transport errors are retryable, except the caller's own context
//     ending (Canceled/DeadlineExceeded) and an open circuit breaker —
//     hammering a host the breaker just shed defeats its purpose;
//   - responses with status 408, 429, or any 5xx are retryable;
//   - everything else (2xx-4xx responses) is final.
//
// Injected faults (ErrInjected) are transport errors and thus retryable,
// which is what lets a chaos crawl recover every page.
func DefaultRetryable(resp *Response, err error) bool {
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return false
		}
		if errors.Is(err, ErrBreakerOpen) {
			return false
		}
		return true
	}
	if resp == nil {
		return false
	}
	switch {
	case resp.Status == 408, resp.Status == 429, resp.Status >= 500:
		return true
	}
	return false
}

// RetryStats aggregates what a RetryFetcher observed.
type RetryStats struct {
	// Attempts counts every inner Fetch call (first tries included).
	Attempts int64
	// Retries counts attempts beyond the first per fetch.
	Retries int64
	// GiveUps counts fetches that exhausted MaxAttempts.
	GiveUps int64
	// Recovered counts fetches that succeeded after at least one retry.
	Recovered int64
}

// RetryStatsProvider is implemented by fetchers that record RetryStats.
// Like StatsProvider, callers locate it through the Unwrap chain
// (FindRetryStats) instead of asserting on a concrete type.
type RetryStatsProvider interface {
	RetryStats() RetryStats
}

// FindRetryStats returns the first RetryStatsProvider in f's unwrap
// chain, or nil when the chain has none.
func FindRetryStats(f Fetcher) RetryStatsProvider {
	for f != nil {
		if sp, ok := f.(RetryStatsProvider); ok {
			return sp
		}
		w, ok := f.(Wrapper)
		if !ok {
			return nil
		}
		f = w.Unwrap()
	}
	return nil
}

// RetryFetcher retries transient fetch failures with exponential backoff
// and full jitter: the wait before retry n is uniform in
// [0, min(MaxDelay, BaseDelay·2ⁿ⁻¹)], the spread that keeps a fleet of
// process lines from synchronizing their retries into waves. Sleeps run
// on the injected Clock, so under a VirtualClock a whole backoff
// schedule costs no wall time — the property the backoff tests rely on.
//
// Each retry increments the fetch.retry.retries counter and emits a
// fetch.retry event span (URL, attempt, delay) when telemetry rides the
// context; exhaustion increments fetch.retry.giveups, and a success
// after at least one retry increments fetch.retry.recovered.
type RetryFetcher struct {
	Inner  Fetcher
	Policy RetryPolicy
	// Clock paces the backoff sleeps. nil means RealClock.
	Clock Clock
	// Rand is the jitter source, returning values in [0, 1). nil uses
	// the shared math/rand source; tests inject a deterministic one.
	Rand func() float64

	attempts  atomic.Int64
	retries   atomic.Int64
	giveups   atomic.Int64
	recovered atomic.Int64
}

// NewRetryFetcher wraps inner with the given policy on clock.
func NewRetryFetcher(inner Fetcher, policy RetryPolicy, clock Clock) *RetryFetcher {
	if clock == nil {
		clock = RealClock{}
	}
	return &RetryFetcher{Inner: inner, Policy: policy, Clock: clock}
}

// Unwrap implements Wrapper.
func (f *RetryFetcher) Unwrap() Fetcher { return f.Inner }

// RetryStats implements RetryStatsProvider.
func (f *RetryFetcher) RetryStats() RetryStats {
	return RetryStats{
		Attempts:  f.attempts.Load(),
		Retries:   f.retries.Load(),
		GiveUps:   f.giveups.Load(),
		Recovered: f.recovered.Load(),
	}
}

func (f *RetryFetcher) rand() float64 {
	if f.Rand != nil {
		return f.Rand()
	}
	return rand.Float64()
}

// backoff returns the full-jitter delay before retry number n (1-based),
// honoring a Retry-After hint from the failed response when allowed.
func (f *RetryFetcher) backoff(p RetryPolicy, n int, resp *Response) time.Duration {
	ceil := p.BaseDelay
	for i := 1; i < n && ceil < p.MaxDelay; i++ {
		ceil *= 2
	}
	if ceil > p.MaxDelay {
		ceil = p.MaxDelay
	}
	d := time.Duration(f.rand() * float64(ceil))
	if !p.IgnoreRetryAfter && resp != nil && resp.RetryAfter > d {
		d = resp.RetryAfter
	}
	return d
}

// Fetch implements Fetcher. It returns the first successful (or final
// non-retryable) outcome; after MaxAttempts the last error — or, for a
// retryable status, the last response — is returned, the error wrapped
// with the attempt count.
func (f *RetryFetcher) Fetch(ctx context.Context, rawurl string) (*Response, error) {
	p := f.Policy.withDefaults()
	tel := obs.From(ctx)
	clock := f.Clock
	if clock == nil {
		clock = RealClock{}
	}
	var (
		resp *Response
		err  error
	)
	for attempt := 1; ; attempt++ {
		f.attempts.Add(1)
		tel.Counter("fetch.retry.attempts").Inc()
		actx, cancel := ctx, context.CancelFunc(nil)
		if p.AttemptTimeout > 0 {
			actx, cancel = context.WithTimeout(ctx, p.AttemptTimeout)
		}
		resp, err = f.Inner.Fetch(actx, rawurl)
		if cancel != nil {
			cancel()
		}
		// The caller's context ending always wins: no classification, no
		// further attempts. A per-attempt deadline, by contrast, leaves
		// the parent alive and falls through to the retry decision.
		if ctx.Err() != nil {
			if err == nil {
				err = fmt.Errorf("fetch %s: %w", rawurl, ctx.Err())
			}
			return nil, err
		}
		// A blown per-attempt deadline is the retry layer's own doing
		// (the caller's context is still alive at this point), so it is
		// retryable no matter how the policy classifies deadline errors.
		attemptTimedOut := p.AttemptTimeout > 0 && errors.Is(err, context.DeadlineExceeded)
		if !attemptTimedOut && !p.Retryable(resp, err) {
			if err == nil && attempt > 1 {
				f.recovered.Add(1)
				tel.Counter("fetch.retry.recovered").Inc()
			}
			return resp, err
		}
		if attempt >= p.MaxAttempts {
			f.giveups.Add(1)
			tel.Counter("fetch.retry.giveups").Inc()
			if err != nil {
				return nil, fmt.Errorf("fetch %s: gave up after %d attempts: %w", rawurl, attempt, err)
			}
			// A retryable status that never cleared: hand the caller the
			// final response so it can see the status itself.
			return resp, nil
		}
		delay := f.backoff(p, attempt, resp)
		f.retries.Add(1)
		tel.Counter("fetch.retry.retries").Inc()
		tel.Counter("fetch.retry.backoff_ns").Add(int64(delay))
		obs.Event(ctx, obs.SpanFetchRetry,
			obs.A("url", rawurl),
			obs.A("attempt", strconv.Itoa(attempt)),
			obs.A("delay", delay.String()))
		if serr := clock.Sleep(ctx, delay); serr != nil {
			if err == nil {
				err = serr
			}
			return nil, fmt.Errorf("fetch %s: retry canceled: %w", rawurl, err)
		}
	}
}
