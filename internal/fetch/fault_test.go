package fetch

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

func okFetcher() Fetcher {
	return Func(func(ctx context.Context, rawurl string) (*Response, error) {
		return &Response{Status: 200, Body: []byte("ok")}, nil
	})
}

func TestFaultDeterminism(t *testing.T) {
	pattern := func() string {
		f := NewFaultFetcher(okFetcher(), FaultConfig{ErrorRate: 0.3, Seed: 42}, &VirtualClock{})
		var b strings.Builder
		for i := 0; i < 200; i++ {
			if _, err := f.Fetch(context.Background(), "/p"); err != nil {
				b.WriteByte('E')
			} else {
				b.WriteByte('.')
			}
		}
		return b.String()
	}
	a, b := pattern(), pattern()
	if a != b {
		t.Errorf("same seed, different fault patterns:\n%s\n%s", a, b)
	}
	if !strings.Contains(a, "E") {
		t.Error("30%% error rate injected nothing in 200 calls")
	}
	if !strings.Contains(a, ".") {
		t.Error("30%% error rate failed every call")
	}
}

func TestFaultScripts(t *testing.T) {
	clock := &VirtualClock{}
	f := NewFaultFetcher(okFetcher(), FaultConfig{
		Latency: 100 * time.Millisecond,
		Scripts: map[string][]FaultOp{"/u": {FaultError, FaultDelay, FaultTruncate}},
	}, clock)
	ctx := context.Background()

	if _, err := f.Fetch(ctx, "/u"); !errors.Is(err, ErrInjected) {
		t.Fatalf("call 1: err = %v, want scripted ErrInjected", err)
	}
	before := clock.Now()
	if _, err := f.Fetch(ctx, "/u"); err != nil {
		t.Fatalf("call 2 (delay): %v", err)
	}
	if d := clock.Now().Sub(before); d != 100*time.Millisecond {
		t.Errorf("delay fault advanced clock by %v, want 100ms", d)
	}
	if _, err := f.Fetch(ctx, "/u"); err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("call 3: err = %v, want truncation", err)
	}
	// Script exhausted: every further call passes through.
	if _, err := f.Fetch(ctx, "/u"); err != nil {
		t.Fatalf("call 4 (script exhausted): %v", err)
	}
	// Unscripted URLs are untouched when no random rates are set.
	if _, err := f.Fetch(ctx, "/other"); err != nil {
		t.Fatalf("unscripted URL: %v", err)
	}
	errs, delays, truncs := f.Injected()
	if errs != 1 || delays != 1 || truncs != 1 {
		t.Errorf("Injected() = %d, %d, %d; want 1, 1, 1", errs, delays, truncs)
	}
}

func TestFaultMaxConsecutiveBoundsTheStreak(t *testing.T) {
	f := NewFaultFetcher(okFetcher(), FaultConfig{
		ErrorRate:      1.0,
		MaxConsecutive: 2,
		Seed:           1,
	}, &VirtualClock{})
	ctx := context.Background()
	var got strings.Builder
	for i := 0; i < 6; i++ {
		if _, err := f.Fetch(ctx, "/p"); err != nil {
			got.WriteByte('E')
		} else {
			got.WriteByte('.')
		}
	}
	// With rate 1.0 and a streak cap of 2, every third call must pass.
	if got.String() != "EE.EE." {
		t.Errorf("pattern = %q, want \"EE.EE.\"", got.String())
	}
}

func TestFaultTruncateIsTransient(t *testing.T) {
	f := NewFaultFetcher(okFetcher(), FaultConfig{TruncateRate: 1.0, MaxConsecutive: 1, Seed: 3}, &VirtualClock{})
	_, err := f.Fetch(context.Background(), "/p")
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if !DefaultRetryable(nil, err) {
		t.Error("truncation faults must be retryable")
	}
	if _, err := f.Fetch(context.Background(), "/p"); err != nil {
		t.Errorf("second call after streak cap: %v", err)
	}
}
