// Package fetch abstracts how the crawler retrieves resources. The paper
// crawls the live YouTube site over HTTP; this repo's experiments run
// against an in-process synthetic site. Both are Fetchers, and an
// instrumented wrapper injects the simulated network latency and records
// the call/byte/time counters the evaluation chapter reports.
package fetch

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sync"
	"sync/atomic"
	"time"
)

// Response is a fetched resource.
type Response struct {
	Status      int
	Body        []byte
	ContentType string
}

// Fetcher retrieves the resource at a URL.
type Fetcher interface {
	Fetch(rawurl string) (*Response, error)
}

// Clock abstracts time so benchmarks can run with a virtual clock: the
// "network time" the paper measures is then deterministic and free.
type Clock interface {
	Now() time.Time
	Sleep(d time.Duration)
}

// RealClock uses the wall clock.
type RealClock struct{}

// Now returns the current wall time.
func (RealClock) Now() time.Time { return time.Now() }

// Sleep sleeps for d.
func (RealClock) Sleep(d time.Duration) { time.Sleep(d) }

// VirtualClock advances instantly on Sleep. It is safe for concurrent
// use; concurrent sleeps accumulate, modeling serialized network I/O per
// connection.
type VirtualClock struct {
	ns atomic.Int64
}

// Now returns the virtual time.
func (c *VirtualClock) Now() time.Time { return time.Unix(0, c.ns.Load()) }

// Sleep advances the virtual time by d.
func (c *VirtualClock) Sleep(d time.Duration) { c.ns.Add(int64(d)) }

// HTTPFetcher fetches over a real HTTP client.
type HTTPFetcher struct {
	Client *http.Client
}

// Fetch implements Fetcher.
func (f *HTTPFetcher) Fetch(rawurl string) (*Response, error) {
	client := f.Client
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Get(rawurl)
	if err != nil {
		return nil, fmt.Errorf("fetch %s: %w", rawurl, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("fetch %s: read body: %w", rawurl, err)
	}
	return &Response{
		Status:      resp.StatusCode,
		Body:        body,
		ContentType: resp.Header.Get("Content-Type"),
	}, nil
}

// HandlerFetcher serves fetches directly from an http.Handler without
// opening sockets — the in-process path used by tests and experiments.
type HandlerFetcher struct {
	Handler http.Handler
	// Host is the synthetic authority pages appear under, e.g.
	// "sim.youtube.local". Absolute URLs with a different host fail.
	Host string
}

// Fetch implements Fetcher.
func (f *HandlerFetcher) Fetch(rawurl string) (*Response, error) {
	u, err := url.Parse(rawurl)
	if err != nil {
		return nil, fmt.Errorf("fetch %s: %w", rawurl, err)
	}
	if u.Host != "" && f.Host != "" && u.Host != f.Host {
		return nil, fmt.Errorf("fetch %s: host %q not served by this fetcher", rawurl, u.Host)
	}
	req, err := http.NewRequest(http.MethodGet, u.RequestURI(), nil)
	if err != nil {
		return nil, fmt.Errorf("fetch %s: %w", rawurl, err)
	}
	if f.Host != "" {
		req.Host = f.Host
	}
	rec := httptest.NewRecorder()
	f.Handler.ServeHTTP(rec, req)
	return &Response{
		Status:      rec.Code,
		Body:        rec.Body.Bytes(),
		ContentType: rec.Header().Get("Content-Type"),
	}, nil
}

// Stats aggregates what the instrumented fetcher observed.
type Stats struct {
	Calls       int64
	Bytes       int64
	NetworkTime time.Duration
	Errors      int64
}

// Instrumented wraps a Fetcher with simulated latency and counters. The
// latency model is latency = Base + PerKB * body_size/1024, roughly a
// fixed round trip plus bandwidth-limited transfer — the cost model under
// which the paper's "hot nodes save network calls" result is measured.
type Instrumented struct {
	Inner Fetcher
	Clock Clock
	// Base is the per-request round-trip latency.
	Base time.Duration
	// PerKB is the additional latency per KiB of response body.
	PerKB time.Duration

	mu    sync.Mutex
	stats Stats
}

// NewInstrumented wraps inner with the given latency model on clock.
func NewInstrumented(inner Fetcher, clock Clock, base, perKB time.Duration) *Instrumented {
	if clock == nil {
		clock = RealClock{}
	}
	return &Instrumented{Inner: inner, Clock: clock, Base: base, PerKB: perKB}
}

// Fetch implements Fetcher, charging simulated latency and recording it.
func (f *Instrumented) Fetch(rawurl string) (*Response, error) {
	start := f.Clock.Now()
	resp, err := f.Inner.Fetch(rawurl)
	if err != nil {
		f.mu.Lock()
		f.stats.Calls++
		f.stats.Errors++
		f.stats.NetworkTime += f.Clock.Now().Sub(start)
		f.mu.Unlock()
		return nil, err
	}
	delay := f.Base + f.PerKB*time.Duration(len(resp.Body))/1024
	if delay > 0 {
		f.Clock.Sleep(delay)
	}
	elapsed := f.Clock.Now().Sub(start)
	if elapsed < delay {
		// Virtual clocks may report zero elapsed wall time; charge at
		// least the simulated delay.
		elapsed = delay
	}
	f.mu.Lock()
	f.stats.Calls++
	f.stats.Bytes += int64(len(resp.Body))
	f.stats.NetworkTime += elapsed
	f.mu.Unlock()
	return resp, nil
}

// Stats returns a snapshot of the counters.
func (f *Instrumented) Stats() Stats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// Reset clears the counters.
func (f *Instrumented) Reset() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.stats = Stats{}
}

// Func adapts a function to the Fetcher interface (handy in tests).
type Func func(rawurl string) (*Response, error)

// Fetch implements Fetcher.
func (f Func) Fetch(rawurl string) (*Response, error) { return f(rawurl) }
