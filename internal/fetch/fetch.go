// Package fetch abstracts how the crawler retrieves resources. The paper
// crawls the live YouTube site over HTTP; this repo's experiments run
// against an in-process synthetic site. Both are Fetchers, and an
// instrumented wrapper injects the simulated network latency and records
// the call/byte/time counters the evaluation chapter reports.
//
// Every Fetch carries a context.Context: deadlines and cancellation
// propagate from the crawler's per-page budget down to the simulated (or
// real) network, so a hung fetch can never stall a process line.
package fetch

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strconv"
	"sync/atomic"
	"time"

	"ajaxcrawl/internal/obs"
)

// Response is a fetched resource.
type Response struct {
	Status      int
	Body        []byte
	ContentType string
	// RetryAfter is the server's Retry-After hint, when the response
	// carried one (0 otherwise). RetryFetcher uses it to override its
	// computed backoff, so cooperating servers can pace their clients.
	RetryAfter time.Duration
}

// parseRetryAfter decodes a Retry-After header value: either a delay in
// seconds or an HTTP-date. Unparseable or negative values yield 0.
func parseRetryAfter(v string, now time.Time) time.Duration {
	if v == "" {
		return 0
	}
	if secs, err := strconv.Atoi(v); err == nil {
		if secs < 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	if t, err := http.ParseTime(v); err == nil {
		if d := t.Sub(now); d > 0 {
			return d
		}
	}
	return 0
}

// Fetcher retrieves the resource at a URL. Implementations must honor
// ctx: return promptly with ctx.Err() once the context is canceled or
// its deadline passes.
type Fetcher interface {
	Fetch(ctx context.Context, rawurl string) (*Response, error)
}

// Clock abstracts time so benchmarks can run with a virtual clock: the
// "network time" the paper measures is then deterministic and free.
// Sleep is interruptible: it returns ctx.Err() if the context ends
// before the duration elapses, so simulated latency respects deadlines.
type Clock interface {
	Now() time.Time
	Sleep(ctx context.Context, d time.Duration) error
}

// RealClock uses the wall clock.
type RealClock struct{}

// Now returns the current wall time.
func (RealClock) Now() time.Time { return time.Now() }

// Sleep sleeps for d or until ctx ends, whichever comes first.
func (RealClock) Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// VirtualClock advances instantly on Sleep. It is safe for concurrent
// use; concurrent sleeps accumulate, modeling serialized network I/O per
// connection.
type VirtualClock struct {
	ns atomic.Int64
}

// Now returns the virtual time.
func (c *VirtualClock) Now() time.Time { return time.Unix(0, c.ns.Load()) }

// Sleep advances the virtual time by d. Virtual sleeps are free, so a
// canceled context is only reported, never waited on.
func (c *VirtualClock) Sleep(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	c.ns.Add(int64(d))
	return nil
}

// HTTPFetcher fetches over a real HTTP client.
type HTTPFetcher struct {
	Client *http.Client
}

// Fetch implements Fetcher.
func (f *HTTPFetcher) Fetch(ctx context.Context, rawurl string) (*Response, error) {
	client := f.Client
	if client == nil {
		client = http.DefaultClient
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, rawurl, nil)
	if err != nil {
		return nil, fmt.Errorf("fetch %s: %w", rawurl, err)
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("fetch %s: %w", rawurl, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("fetch %s: read body: %w", rawurl, err)
	}
	return &Response{
		Status:      resp.StatusCode,
		Body:        body,
		ContentType: resp.Header.Get("Content-Type"),
		RetryAfter:  parseRetryAfter(resp.Header.Get("Retry-After"), time.Now()),
	}, nil
}

// HandlerFetcher serves fetches directly from an http.Handler without
// opening sockets — the in-process path used by tests and experiments.
type HandlerFetcher struct {
	Handler http.Handler
	// Host is the synthetic authority pages appear under, e.g.
	// "sim.youtube.local". Absolute URLs with a different host fail.
	Host string
}

// Fetch implements Fetcher.
func (f *HandlerFetcher) Fetch(ctx context.Context, rawurl string) (*Response, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("fetch %s: %w", rawurl, err)
	}
	u, err := url.Parse(rawurl)
	if err != nil {
		return nil, fmt.Errorf("fetch %s: %w", rawurl, err)
	}
	if u.Host != "" && f.Host != "" && u.Host != f.Host {
		return nil, fmt.Errorf("fetch %s: host %q not served by this fetcher", rawurl, u.Host)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u.RequestURI(), nil)
	if err != nil {
		return nil, fmt.Errorf("fetch %s: %w", rawurl, err)
	}
	if f.Host != "" {
		req.Host = f.Host
	}
	rec := httptest.NewRecorder()
	f.Handler.ServeHTTP(rec, req)
	return &Response{
		Status:      rec.Code,
		Body:        rec.Body.Bytes(),
		ContentType: rec.Header().Get("Content-Type"),
		RetryAfter:  parseRetryAfter(rec.Header().Get("Retry-After"), time.Now()),
	}, nil
}

// Stats aggregates what the instrumented fetcher observed.
type Stats struct {
	Calls       int64
	Bytes       int64
	NetworkTime time.Duration
	Errors      int64
}

// StatsProvider is implemented by fetchers that record Stats. The
// crawler attributes per-page network time through this interface
// instead of asserting on a concrete type, so instrumentation survives
// wrapping (e.g. a Cache around an Instrumented).
type StatsProvider interface {
	Stats() Stats
}

// Wrapper is implemented by fetchers that delegate to an inner Fetcher.
// FindStats walks Unwrap chains to locate a StatsProvider.
type Wrapper interface {
	Unwrap() Fetcher
}

// FindStats returns the first StatsProvider in f's unwrap chain, or nil
// when the chain has none.
func FindStats(f Fetcher) StatsProvider {
	for f != nil {
		if sp, ok := f.(StatsProvider); ok {
			return sp
		}
		w, ok := f.(Wrapper)
		if !ok {
			return nil
		}
		f = w.Unwrap()
	}
	return nil
}

// Instrumented wraps a Fetcher with simulated latency and counters. The
// latency model is latency = Base + PerKB * body_size/1024, roughly a
// fixed round trip plus bandwidth-limited transfer — the cost model under
// which the paper's "hot nodes save network calls" result is measured.
//
// Counter updates and Stats() snapshots are lock-free atomics, so
// concurrent process lines sharing one Instrumented never contend on a
// stats mutex and never race. When a telemetry context (internal/obs)
// reaches Fetch, each request is additionally recorded in the live
// registry: a fetch.latency histogram and fetch.requests / fetch.errors
// / fetch.bytes counters.
type Instrumented struct {
	Inner Fetcher
	Clock Clock
	// Base is the per-request round-trip latency.
	Base time.Duration
	// PerKB is the additional latency per KiB of response body.
	PerKB time.Duration

	calls atomic.Int64
	bytes atomic.Int64
	netNS atomic.Int64
	errs  atomic.Int64
}

// NewInstrumented wraps inner with the given latency model on clock.
func NewInstrumented(inner Fetcher, clock Clock, base, perKB time.Duration) *Instrumented {
	if clock == nil {
		clock = RealClock{}
	}
	return &Instrumented{Inner: inner, Clock: clock, Base: base, PerKB: perKB}
}

// Unwrap implements Wrapper.
func (f *Instrumented) Unwrap() Fetcher { return f.Inner }

// Fetch implements Fetcher, charging simulated latency and recording it.
// The simulated delay is deadline-aware: a canceled or expired context
// interrupts the sleep and the fetch fails with ctx.Err().
func (f *Instrumented) Fetch(ctx context.Context, rawurl string) (*Response, error) {
	tel := obs.From(ctx)
	start := f.Clock.Now()
	resp, err := f.Inner.Fetch(ctx, rawurl)
	if err == nil {
		delay := f.Base + f.PerKB*time.Duration(len(resp.Body))/1024
		if delay > 0 {
			if serr := f.Clock.Sleep(ctx, delay); serr != nil {
				err = fmt.Errorf("fetch %s: %w", rawurl, serr)
			}
		}
		if err == nil {
			elapsed := f.Clock.Now().Sub(start)
			if elapsed < delay {
				// Virtual clocks may report zero elapsed wall time;
				// charge at least the simulated delay.
				elapsed = delay
			}
			f.calls.Add(1)
			f.bytes.Add(int64(len(resp.Body)))
			f.netNS.Add(int64(elapsed))
			tel.Counter("fetch.requests").Inc()
			tel.Counter("fetch.bytes").Add(int64(len(resp.Body)))
			tel.Histogram("fetch.latency").ObserveDuration(elapsed)
			return resp, nil
		}
	}
	elapsed := f.Clock.Now().Sub(start)
	f.calls.Add(1)
	f.errs.Add(1)
	f.netNS.Add(int64(elapsed))
	tel.Counter("fetch.requests").Inc()
	tel.Counter("fetch.errors").Inc()
	tel.Histogram("fetch.latency").ObserveDuration(elapsed)
	return nil, err
}

// Stats returns a snapshot of the counters. Errors is loaded before
// Calls: writers increment calls first, so with this load order a
// snapshot can never show more errors than calls, even mid-update.
func (f *Instrumented) Stats() Stats {
	errs := f.errs.Load()
	return Stats{
		Calls:       f.calls.Load(),
		Bytes:       f.bytes.Load(),
		NetworkTime: time.Duration(f.netNS.Load()),
		Errors:      errs,
	}
}

// Reset clears the counters.
func (f *Instrumented) Reset() {
	f.calls.Store(0)
	f.bytes.Store(0)
	f.netNS.Store(0)
	f.errs.Store(0)
}

// Func adapts a function to the Fetcher interface (handy in tests).
type Func func(ctx context.Context, rawurl string) (*Response, error)

// Fetch implements Fetcher.
func (f Func) Fetch(ctx context.Context, rawurl string) (*Response, error) {
	return f(ctx, rawurl)
}
