package fetch

import (
	"context"
	"errors"
	"fmt"
	"net/url"
	"sync"
	"sync/atomic"
	"time"

	"ajaxcrawl/internal/obs"
)

// ErrBreakerOpen is returned (wrapped, with the host) when a fetch is
// short-circuited by an open circuit breaker. DefaultRetryable treats it
// as final, so a RetryFetcher stacked above a Breaker fails fast instead
// of burning its attempts against a host the breaker already shed.
var ErrBreakerOpen = errors.New("fetch: circuit breaker open")

// BreakerState is one of the three classic circuit-breaker states.
type BreakerState int32

// Breaker states: Closed passes traffic and watches the failure rate,
// Open sheds all traffic until the cooldown elapses, HalfOpen lets probe
// requests through to decide between closing and re-opening.
const (
	StateClosed BreakerState = iota
	StateOpen
	StateHalfOpen
)

// String returns the state name ("closed", "open", "half-open").
func (s BreakerState) String() string {
	switch s {
	case StateOpen:
		return "open"
	case StateHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// BreakerConfig tunes the per-host circuit breaker. The zero value is
// usable: a 20-outcome sliding window, 50% failure-rate threshold with
// at least 5 samples, 30s cooldown, one probe success to close.
type BreakerConfig struct {
	// Window is the number of most-recent outcomes per host the failure
	// rate is computed over. 0 means 20.
	Window int
	// FailureThreshold opens the circuit when the window's failure rate
	// reaches it (a fraction in (0, 1]). 0 means 0.5.
	FailureThreshold float64
	// MinSamples is the minimum number of outcomes in the window before
	// the breaker may trip — a single early failure is not a trend.
	// 0 means 5.
	MinSamples int
	// Cooldown is how long an open circuit sheds load before letting a
	// half-open probe through. 0 means 30s.
	Cooldown time.Duration
	// HalfOpenProbes is the number of consecutive probe successes that
	// close a half-open circuit. 0 means 1.
	HalfOpenProbes int
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Window <= 0 {
		c.Window = 20
	}
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 0.5
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 30 * time.Second
	}
	if c.HalfOpenProbes <= 0 {
		c.HalfOpenProbes = 1
	}
	return c
}

// BreakerStats aggregates what a Breaker observed.
type BreakerStats struct {
	// Opens counts closed/half-open → open transitions across all hosts.
	Opens int64
	// Closes counts half-open → closed transitions.
	Closes int64
	// ShortCircuits counts fetches rejected without reaching the inner
	// fetcher because the host's circuit was open.
	ShortCircuits int64
}

// BreakerStatsProvider is implemented by fetchers that record
// BreakerStats; locate it with FindBreakerStats through Unwrap chains.
type BreakerStatsProvider interface {
	BreakerStats() BreakerStats
}

// FindBreakerStats returns the first BreakerStatsProvider in f's unwrap
// chain, or nil when the chain has none.
func FindBreakerStats(f Fetcher) BreakerStatsProvider {
	for f != nil {
		if sp, ok := f.(BreakerStatsProvider); ok {
			return sp
		}
		w, ok := f.(Wrapper)
		if !ok {
			return nil
		}
		f = w.Unwrap()
	}
	return nil
}

// hostBreaker is one host's circuit: a ring of recent outcomes plus the
// state machine. All fields are guarded by Breaker.mu.
type hostBreaker struct {
	state    BreakerState
	window   []bool // true = failure; ring of the last len(window) outcomes
	next     int    // ring write position
	filled   int    // outcomes recorded, up to len(window)
	failures int    // failures currently in the ring
	openedAt time.Time
	probes   int // consecutive half-open probe successes
}

// Breaker is a per-host circuit breaker Fetcher middleware
// (closed → open → half-open → closed). Each host gets its own sliding
// window of recent outcomes; when the window's failure rate reaches the
// threshold the circuit opens and every fetch to that host is rejected
// with ErrBreakerOpen — shedding load from a dying host instead of
// queueing more work behind it — until the cooldown elapses and probe
// requests decide whether it recovered.
//
// State transitions are reported to the telemetry on the fetch's
// context: breaker.opens / breaker.closes / breaker.half_opens /
// breaker.short_circuits counters, a breaker.open_hosts gauge, and a
// breaker.state event span carrying the host and both states.
type Breaker struct {
	Inner  Fetcher
	Config BreakerConfig
	// Clock times the cooldown. nil means RealClock.
	Clock Clock

	mu    sync.Mutex
	hosts map[string]*hostBreaker

	opens         atomic.Int64
	closes        atomic.Int64
	shortCircuits atomic.Int64
}

// NewBreaker wraps inner with a per-host circuit breaker on clock.
func NewBreaker(inner Fetcher, cfg BreakerConfig, clock Clock) *Breaker {
	if clock == nil {
		clock = RealClock{}
	}
	return &Breaker{Inner: inner, Config: cfg.withDefaults(), Clock: clock}
}

// Unwrap implements Wrapper.
func (b *Breaker) Unwrap() Fetcher { return b.Inner }

// BreakerStats implements BreakerStatsProvider.
func (b *Breaker) BreakerStats() BreakerStats {
	return BreakerStats{
		Opens:         b.opens.Load(),
		Closes:        b.closes.Load(),
		ShortCircuits: b.shortCircuits.Load(),
	}
}

// State returns the current circuit state for a host ("" is the implicit
// host of relative URLs). A host with no recorded traffic is closed.
func (b *Breaker) State(host string) BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	if hb, ok := b.hosts[host]; ok {
		return hb.state
	}
	return StateClosed
}

// hostOf extracts the breaker key from a URL. Relative URLs (the
// HandlerFetcher world) all map to the "" host — one circuit.
func hostOf(rawurl string) string {
	if u, err := url.Parse(rawurl); err == nil {
		return u.Host
	}
	return ""
}

func (b *Breaker) host(host string) *hostBreaker {
	if b.hosts == nil {
		b.hosts = make(map[string]*hostBreaker)
	}
	hb, ok := b.hosts[host]
	if !ok {
		hb = &hostBreaker{window: make([]bool, b.Config.withDefaults().Window)}
		b.hosts[host] = hb
	}
	return hb
}

// transition moves hb to state, updating counters/gauges/events.
func (b *Breaker) transition(ctx context.Context, host string, hb *hostBreaker, to BreakerState) {
	from := hb.state
	if from == to {
		return
	}
	hb.state = to
	tel := obs.From(ctx)
	switch to {
	case StateOpen:
		hb.openedAt = b.Clock.Now()
		hb.probes = 0
		b.opens.Add(1)
		tel.Counter("breaker.opens").Inc()
		tel.Gauge("breaker.open_hosts").Add(1)
	case StateHalfOpen:
		hb.probes = 0
		tel.Counter("breaker.half_opens").Inc()
	case StateClosed:
		hb.reset()
		b.closes.Add(1)
		tel.Counter("breaker.closes").Inc()
	}
	if from == StateOpen && to != StateOpen {
		tel.Gauge("breaker.open_hosts").Add(-1)
	}
	obs.Event(ctx, obs.SpanBreakerState,
		obs.A("host", host), obs.A("from", from.String()), obs.A("to", to.String()))
}

// reset clears the outcome window (after a circuit closes, the failures
// that tripped it are history, not evidence against the recovered host).
func (hb *hostBreaker) reset() {
	for i := range hb.window {
		hb.window[i] = false
	}
	hb.next, hb.filled, hb.failures, hb.probes = 0, 0, 0, 0
}

// record pushes one outcome into the ring.
func (hb *hostBreaker) record(failure bool) {
	if hb.filled == len(hb.window) && hb.window[hb.next] {
		hb.failures--
	}
	hb.window[hb.next] = failure
	hb.next = (hb.next + 1) % len(hb.window)
	if hb.filled < len(hb.window) {
		hb.filled++
	}
	if failure {
		hb.failures++
	}
}

// countsAsFailure classifies an attempt outcome for the breaker. The
// caller canceling is not the host's fault; a deadline blown talking to
// the host is (slow is the canonical symptom of dying). Status ≥ 500
// counts, 4xx does not — the host is answering, just not agreeing.
func countsAsFailure(resp *Response, err error) bool {
	if err != nil {
		return !errors.Is(err, context.Canceled)
	}
	return resp != nil && resp.Status >= 500
}

// Fetch implements Fetcher. An open circuit rejects the fetch with
// ErrBreakerOpen (wrapped with the host) without touching the inner
// fetcher; otherwise the attempt proceeds and its outcome feeds the
// host's window and state machine.
func (b *Breaker) Fetch(ctx context.Context, rawurl string) (*Response, error) {
	host := hostOf(rawurl)
	tel := obs.From(ctx)

	b.mu.Lock()
	hb := b.host(host)
	switch hb.state {
	case StateOpen:
		if b.Clock.Now().Sub(hb.openedAt) >= b.Config.Cooldown {
			b.transition(ctx, host, hb, StateHalfOpen)
		} else {
			b.mu.Unlock()
			b.shortCircuits.Add(1)
			tel.Counter("breaker.short_circuits").Inc()
			return nil, fmt.Errorf("fetch %s: host %q: %w", rawurl, host, ErrBreakerOpen)
		}
	}
	b.mu.Unlock()

	resp, err := b.Inner.Fetch(ctx, rawurl)
	failure := countsAsFailure(resp, err)

	b.mu.Lock()
	defer b.mu.Unlock()
	// Canceled attempts are no evidence either way; don't record them.
	if err != nil && errors.Is(err, context.Canceled) {
		return resp, err
	}
	switch hb.state {
	case StateHalfOpen:
		if failure {
			b.transition(ctx, host, hb, StateOpen)
		} else {
			hb.probes++
			if hb.probes >= b.Config.HalfOpenProbes {
				b.transition(ctx, host, hb, StateClosed)
			}
		}
	case StateClosed:
		hb.record(failure)
		if hb.filled >= b.Config.MinSamples &&
			float64(hb.failures)/float64(hb.filled) >= b.Config.FailureThreshold {
			b.transition(ctx, host, hb, StateOpen)
		}
	}
	return resp, err
}
