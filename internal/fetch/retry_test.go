package fetch

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// recordingClock is a VirtualClock that records every Sleep duration, so
// tests can assert exact backoff schedules without any wall time.
type recordingClock struct {
	VirtualClock
	mu     sync.Mutex
	sleeps []time.Duration
}

func (c *recordingClock) Sleep(ctx context.Context, d time.Duration) error {
	c.mu.Lock()
	c.sleeps = append(c.sleeps, d)
	c.mu.Unlock()
	return c.VirtualClock.Sleep(ctx, d)
}

func (c *recordingClock) recorded() []time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]time.Duration(nil), c.sleeps...)
}

// failNTimes returns a Fetcher that fails its first n calls with
// ErrInjected and succeeds afterwards.
func failNTimes(n int) Fetcher {
	calls := 0
	return Func(func(ctx context.Context, rawurl string) (*Response, error) {
		calls++
		if calls <= n {
			return nil, errInjectedf("transient")
		}
		return &Response{Status: 200, Body: []byte("ok")}, nil
	})
}

func TestRetryBackoffScheduleExact(t *testing.T) {
	clock := &recordingClock{}
	f := NewRetryFetcher(failNTimes(4), RetryPolicy{
		MaxAttempts: 5,
		BaseDelay:   100 * time.Millisecond,
		MaxDelay:    400 * time.Millisecond,
	}, clock)
	f.Rand = func() float64 { return 1 } // jitter at the ceiling: exact exponential schedule

	resp, err := f.Fetch(context.Background(), "/page")
	if err != nil {
		t.Fatalf("Fetch: %v", err)
	}
	if resp.Status != 200 {
		t.Fatalf("status = %d, want 200", resp.Status)
	}
	want := []time.Duration{
		100 * time.Millisecond, // 1st retry: base
		200 * time.Millisecond, // 2nd: base*2
		400 * time.Millisecond, // 3rd: base*4, at the cap
		400 * time.Millisecond, // 4th: capped
	}
	got := clock.recorded()
	if len(got) != len(want) {
		t.Fatalf("sleeps = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("sleep[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	st := f.RetryStats()
	if st.Attempts != 5 || st.Retries != 4 || st.GiveUps != 0 || st.Recovered != 1 {
		t.Errorf("stats = %+v, want Attempts=5 Retries=4 GiveUps=0 Recovered=1", st)
	}
}

func TestRetryJitterBounds(t *testing.T) {
	clock := &recordingClock{}
	f := NewRetryFetcher(failNTimes(1000), RetryPolicy{
		MaxAttempts: 6,
		BaseDelay:   100 * time.Millisecond,
		MaxDelay:    time.Second,
	}, clock)
	f.Rand = rand.New(rand.NewSource(7)).Float64

	if _, err := f.Fetch(context.Background(), "/page"); err == nil {
		t.Fatal("want give-up error")
	}
	ceils := []time.Duration{
		100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond,
		800 * time.Millisecond, time.Second,
	}
	got := clock.recorded()
	if len(got) != len(ceils) {
		t.Fatalf("got %d sleeps, want %d", len(got), len(ceils))
	}
	distinct := map[time.Duration]bool{}
	for i, d := range got {
		if d < 0 || d > ceils[i] {
			t.Errorf("sleep[%d] = %v outside full-jitter bounds [0, %v]", i, d, ceils[i])
		}
		distinct[d] = true
	}
	if len(distinct) < 2 {
		t.Errorf("sleeps %v show no jitter", got)
	}
}

func TestRetryRespectsRetryAfter(t *testing.T) {
	clock := &recordingClock{}
	calls := 0
	inner := Func(func(ctx context.Context, rawurl string) (*Response, error) {
		calls++
		if calls == 1 {
			return &Response{Status: 503, RetryAfter: 2 * time.Second}, nil
		}
		return &Response{Status: 200}, nil
	})
	f := NewRetryFetcher(inner, RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond}, clock)
	f.Rand = func() float64 { return 0 } // computed backoff 0 — the hint must win

	resp, err := f.Fetch(context.Background(), "/page")
	if err != nil || resp.Status != 200 {
		t.Fatalf("Fetch = %v, %v; want 200", resp, err)
	}
	got := clock.recorded()
	if len(got) != 1 || got[0] != 2*time.Second {
		t.Errorf("sleeps = %v, want [2s] (the Retry-After hint)", got)
	}
}

func TestRetryGiveUpWrapsLastError(t *testing.T) {
	clock := &recordingClock{}
	inner := Func(func(ctx context.Context, rawurl string) (*Response, error) {
		return nil, errInjectedf("boom")
	})
	f := NewRetryFetcher(inner, RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond}, clock)

	_, err := f.Fetch(context.Background(), "/page")
	if err == nil || !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want wrapped ErrInjected", err)
	}
	st := f.RetryStats()
	if st.Attempts != 3 || st.Retries != 2 || st.GiveUps != 1 {
		t.Errorf("stats = %+v, want Attempts=3 Retries=2 GiveUps=1", st)
	}
}

func TestRetryNonRetryableStatusReturnsImmediately(t *testing.T) {
	clock := &recordingClock{}
	calls := 0
	inner := Func(func(ctx context.Context, rawurl string) (*Response, error) {
		calls++
		return &Response{Status: 404}, nil
	})
	f := NewRetryFetcher(inner, RetryPolicy{MaxAttempts: 5}, clock)
	resp, err := f.Fetch(context.Background(), "/page")
	if err != nil || resp.Status != 404 {
		t.Fatalf("Fetch = %v, %v; want the 404 back", resp, err)
	}
	if calls != 1 {
		t.Errorf("calls = %d, want 1 (404 is final)", calls)
	}
}

func TestRetryStopsOnParentCancel(t *testing.T) {
	clock := &recordingClock{}
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	inner := Func(func(ctx context.Context, rawurl string) (*Response, error) {
		calls++
		cancel() // the caller goes away while the attempt is in flight
		return nil, errInjectedf("reset")
	})
	f := NewRetryFetcher(inner, RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond}, clock)
	if _, err := f.Fetch(ctx, "/page"); err == nil {
		t.Fatal("want error after cancel")
	}
	if calls != 1 {
		t.Errorf("calls = %d, want 1 (no retries after parent cancel)", calls)
	}
	if len(clock.recorded()) != 0 {
		t.Errorf("slept %v, want no backoff after parent cancel", clock.recorded())
	}
}

func TestRetryAttemptTimeoutIsRetryable(t *testing.T) {
	clock := &recordingClock{}
	calls := 0
	inner := Func(func(ctx context.Context, rawurl string) (*Response, error) {
		calls++
		if calls == 1 {
			<-ctx.Done() // hang until the per-attempt deadline cuts us off
			return nil, ctx.Err()
		}
		return &Response{Status: 200}, nil
	})
	f := NewRetryFetcher(inner, RetryPolicy{
		MaxAttempts:    3,
		BaseDelay:      time.Millisecond,
		AttemptTimeout: 5 * time.Millisecond,
	}, clock)
	resp, err := f.Fetch(context.Background(), "/page")
	if err != nil || resp.Status != 200 {
		t.Fatalf("Fetch = %v, %v; want recovery after attempt timeout", resp, err)
	}
	if calls != 2 {
		t.Errorf("calls = %d, want 2", calls)
	}
}

func TestDefaultRetryableClassification(t *testing.T) {
	cases := []struct {
		name string
		resp *Response
		err  error
		want bool
	}{
		{"transport error", nil, errors.New("conn reset"), true},
		{"injected fault", nil, errInjectedf("x"), true},
		{"canceled", nil, context.Canceled, false},
		{"deadline", nil, context.DeadlineExceeded, false},
		{"breaker open", nil, errBreakerf("h"), false},
		{"503", &Response{Status: 503}, nil, true},
		{"429", &Response{Status: 429}, nil, true},
		{"408", &Response{Status: 408}, nil, true},
		{"200", &Response{Status: 200}, nil, false},
		{"404", &Response{Status: 404}, nil, false},
	}
	for _, c := range cases {
		if got := DefaultRetryable(c.resp, c.err); got != c.want {
			t.Errorf("%s: DefaultRetryable = %v, want %v", c.name, got, c.want)
		}
	}
}

// TestFindStatsThreeDeepWrap pins the Unwrap-chain invariant: every new
// middleware (RetryFetcher, Breaker, FaultFetcher) must be transparent
// to the stats finders, so instrumentation wrapped three layers deep is
// still attributed.
func TestFindStatsThreeDeepWrap(t *testing.T) {
	clock := &VirtualClock{}
	inst := NewInstrumented(Func(func(ctx context.Context, rawurl string) (*Response, error) {
		return &Response{Status: 200, Body: []byte("hi")}, nil
	}), clock, 0, 0)
	var f Fetcher = inst
	f = NewFaultFetcher(f, FaultConfig{}, clock)
	f = NewBreaker(f, BreakerConfig{}, clock)
	f = NewRetryFetcher(f, RetryPolicy{}, clock)

	sp := FindStats(f)
	if sp == nil {
		t.Fatal("FindStats lost the Instrumented through the 3-deep wrap")
	}
	if _, err := f.Fetch(context.Background(), "/x"); err != nil {
		t.Fatalf("Fetch: %v", err)
	}
	if got := sp.Stats().Calls; got != 1 {
		t.Errorf("Calls through chain = %d, want 1", got)
	}
	if FindRetryStats(f) == nil {
		t.Error("FindRetryStats came back nil")
	}
	if FindBreakerStats(f) == nil {
		t.Error("FindBreakerStats came back nil")
	}
	// The finders also traverse from below the layer that records them:
	// a chain with the provider in the middle, not at the top.
	var g Fetcher = NewCache(NewRetryFetcher(inst, RetryPolicy{}, clock))
	if FindRetryStats(g) == nil {
		t.Error("FindRetryStats through a Cache wrap came back nil")
	}
}

// errInjectedf / errBreakerf build wrapped sentinel errors the way the
// middlewares do, for classification tests.
func errInjectedf(msg string) error { return fmt.Errorf("%s: %w", msg, ErrInjected) }
func errBreakerf(msg string) error  { return fmt.Errorf("%s: %w", msg, ErrBreakerOpen) }
