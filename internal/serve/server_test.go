package serve

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"ajaxcrawl/internal/dom"
	"ajaxcrawl/internal/index"
	"ajaxcrawl/internal/model"
	"ajaxcrawl/internal/obs"
)

func testHash(b byte) dom.Hash {
	var h dom.Hash
	h[0] = b
	return h
}

// writeSnapshot publishes a small two-doc snapshot (with models, so
// snippets work) into dir and returns its manifest.
func writeSnapshot(t *testing.T, dir string) *index.Manifest {
	t.Helper()
	g1 := model.NewGraph("site/watch?v=a")
	g1.AddState(testHash(1), "morcheeba enjoy the ride official video", 0)
	g1.AddState(testHash(2), "the new singer is great morcheeba fans rejoice", 1)
	g2 := model.NewGraph("site/watch?v=b")
	g2.AddState(testHash(3), "morcheeba concert footage", 0)
	graphs := []*model.Graph{g1, g2}
	ix := index.Build(graphs, map[string]float64{"site/watch?v=a": 0.6, "site/watch?v=b": 0.4}, 0)
	man, err := index.SaveSnapshot(dir, []*index.Index{ix}, graphs)
	if err != nil {
		t.Fatal(err)
	}
	return man
}

func newTestServer(t *testing.T, cfg Config) (*Server, *obs.Registry) {
	t.Helper()
	if cfg.SnapshotDir == "" {
		cfg.SnapshotDir = t.TempDir()
		writeSnapshot(t, cfg.SnapshotDir)
	}
	reg := obs.NewRegistry()
	s, err := New(cfg, obs.New(reg, nil))
	if err != nil {
		t.Fatal(err)
	}
	return s, reg
}

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

func TestSearchEndpoint(t *testing.T) {
	s, reg := newTestServer(t, Config{MaxK: 5})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Missing q and malformed k are client errors.
	for _, bad := range []string{"/search", "/search?q=", "/search?q=x&k=abc", "/search?q=x&k=0", "/search?q=x&k=-3"} {
		resp, _ := get(t, ts.URL+bad)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", bad, resp.StatusCode)
		}
	}

	resp, body := get(t, ts.URL+"/search?q=morcheeba+singer")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get(HeaderCache); got != "miss" {
		t.Fatalf("first query cache header = %q", got)
	}
	if got := resp.Header.Get(HeaderGeneration); got != "1" {
		t.Fatalf("generation header = %q", got)
	}
	if got := resp.Header.Get(HeaderDocs); got != "2" {
		t.Fatalf("docs header = %q", got)
	}
	var sr struct {
		Query   string `json:"query"`
		K       int    `json:"k"`
		Count   int    `json:"count"`
		Results []struct {
			URL     string  `json:"url"`
			State   int     `json:"state"`
			Score   float64 `json:"score"`
			Snippet string  `json:"snippet"`
		} `json:"results"`
	}
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, body)
	}
	if sr.Query != "morcheeba singer" {
		t.Fatalf("normalized query = %q", sr.Query)
	}
	if sr.Count != 1 || len(sr.Results) != 1 {
		t.Fatalf("count = %d, results = %d; body %s", sr.Count, len(sr.Results), body)
	}
	if r := sr.Results[0]; r.URL != "site/watch?v=a" || r.State != 1 || r.Snippet == "" {
		t.Fatalf("top result %+v", r)
	}

	// The repeat is a cache hit with a byte-identical body.
	resp2, body2 := get(t, ts.URL+"/search?q=morcheeba+singer")
	if got := resp2.Header.Get(HeaderCache); got != "hit" {
		t.Fatalf("repeat cache header = %q", got)
	}
	if string(body2) != string(body) {
		t.Fatalf("cached body differs:\n%s\nvs\n%s", body2, body)
	}
	if reg.Counter("query.cache.hits").Value() != 1 {
		t.Fatalf("cache hits = %d", reg.Counter("query.cache.hits").Value())
	}

	// k above MaxK is clamped, not rejected.
	_, bodyK := get(t, ts.URL+"/search?q=morcheeba&k=9999")
	if err := json.Unmarshal(bodyK, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.K != 5 {
		t.Fatalf("k clamped to %d, want 5", sr.K)
	}

	// The obs middleware saw every request.
	if reg.Counter("http.requests").Value() == 0 {
		t.Fatal("http.requests never incremented")
	}
}

func TestHealthz(t *testing.T) {
	dir := t.TempDir()
	man := writeSnapshot(t, dir)
	s, _ := newTestServer(t, Config{SnapshotDir: dir})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, body := get(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var h struct {
		Status     string `json:"status"`
		ManifestID string `json:"manifest_id"`
		Generation int64  `json:"generation"`
		Docs       int    `json:"docs"`
		Shards     int    `json:"shards"`
	}
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.ManifestID != man.ID || h.Generation != 1 || h.Docs != 2 || h.Shards != 1 {
		t.Fatalf("health = %+v (manifest %s)", h, man.ID)
	}
}

func TestLoadShedding(t *testing.T) {
	s, reg := newTestServer(t, Config{MaxInflight: 2})
	// Saturate the admission gate, then request: the server must shed
	// with 429 + Retry-After before touching the query engine.
	tok1, ok1 := s.Limiter().TryAcquire()
	tok2, ok2 := s.Limiter().TryAcquire()
	if !ok1 || !ok2 {
		t.Fatal("could not saturate the limiter")
	}
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/search?q=morcheeba", nil))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", rec.Code)
	}
	// The hint must be a positive integer (a limiter-derived drain
	// estimate), not an empty or decorative header.
	ra, err := strconv.Atoi(rec.Header().Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Fatalf("Retry-After = %q, want a positive integer", rec.Header().Get("Retry-After"))
	}
	if reg.Counter("query.serve.shed").Value() != 1 {
		t.Fatalf("shed counter = %d", reg.Counter("query.serve.shed").Value())
	}
	if reg.Counter("query.count").Value() != 0 {
		t.Fatal("shed request still evaluated the query")
	}

	// Draining one slot un-sheds.
	tok1.Cancel()
	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/search?q=morcheeba", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status after drain = %d", rec.Code)
	}
	tok2.Cancel()
}

func TestDeadlineBeforeEvaluation(t *testing.T) {
	s, reg := newTestServer(t, Config{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // the client hung up before the query ran
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/search?q=morcheeba", nil).WithContext(ctx))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", rec.Code)
	}
	if reg.Counter("query.serve.deadline").Value() != 1 {
		t.Fatalf("deadline counter = %d", reg.Counter("query.serve.deadline").Value())
	}
}

func TestReloadAndWatch(t *testing.T) {
	dir := t.TempDir()
	writeSnapshot(t, dir)
	s, reg := newTestServer(t, Config{SnapshotDir: dir})
	ctx := context.Background()

	// Unchanged manifest: no swap.
	if swapped, err := s.Reload(ctx, false); err != nil || swapped {
		t.Fatalf("Reload on same manifest = %v, %v", swapped, err)
	}

	// Forced reload swaps generations but answers identically: the
	// snapshot content did not change.
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	_, before := get(t, ts.URL+"/search?q=morcheeba")
	if swapped, err := s.Reload(ctx, true); err != nil || !swapped {
		t.Fatalf("forced Reload = %v, %v", swapped, err)
	}
	resp, after := get(t, ts.URL+"/search?q=morcheeba")
	if resp.Header.Get(HeaderGeneration) != "2" {
		t.Fatalf("post-swap generation header = %q", resp.Header.Get(HeaderGeneration))
	}
	if resp.Header.Get(HeaderCache) != "miss" {
		t.Fatal("swap did not invalidate the cache")
	}
	if string(after) != string(before) {
		t.Fatalf("same snapshot answered differently after swap:\n%s\nvs\n%s", after, before)
	}

	// A re-published snapshot (new manifest ID) is picked up without
	// force — the -watch path.
	oldID := s.ManifestID()
	man := writeSnapshot(t, dir)
	if man.ID == oldID {
		t.Fatal("re-save kept the manifest ID")
	}
	if swapped, err := s.Reload(ctx, false); err != nil || !swapped {
		t.Fatalf("Reload after republish = %v, %v", swapped, err)
	}
	if s.ManifestID() != man.ID {
		t.Fatalf("serving manifest %s, want %s", s.ManifestID(), man.ID)
	}
	if reg.Gauge("query.serve.snapshot.gen").Value() != 3 {
		t.Fatalf("gen gauge = %d", reg.Gauge("query.serve.snapshot.gen").Value())
	}
}

func TestReloadErrorKeepsServing(t *testing.T) {
	dir := t.TempDir()
	writeSnapshot(t, dir)
	s, reg := newTestServer(t, Config{SnapshotDir: dir})

	// Corrupt the manifest; Reload must fail, count the error, and keep
	// the old snapshot serving.
	if err := os.WriteFile(filepath.Join(dir, index.ManifestFileName), []byte("{broken"), 0o644); err != nil {
		t.Fatal(err)
	}
	if swapped, err := s.Reload(context.Background(), true); err == nil || swapped {
		t.Fatalf("Reload on corrupt manifest = %v, %v", swapped, err)
	}
	if reg.Counter("query.serve.reload.errors").Value() != 1 {
		t.Fatalf("reload errors = %d", reg.Counter("query.serve.reload.errors").Value())
	}
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/search?q=morcheeba", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("serving broke after failed reload: %d", rec.Code)
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := New(Config{}, nil); err == nil {
		t.Fatal("New without SnapshotDir must error")
	}
	if _, err := New(Config{SnapshotDir: t.TempDir()}, nil); err == nil {
		t.Fatal("New on an empty directory must error")
	}
}
