package serve

import (
	"context"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	"ajaxcrawl/internal/admission"
	"ajaxcrawl/internal/obs"
)

// stepClock is a manually advanced fetch.Clock for budget-accounting
// tests: time moves only when the test says so.
type stepClock struct {
	mu sync.Mutex
	t  time.Time
}

func newStepClock() *stepClock { return &stepClock{t: time.Unix(1000, 0)} }

func (c *stepClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *stepClock) Sleep(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	c.Advance(d)
	return nil
}

func (c *stepClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// TestBudgetFastReject pins the propagated-budget floor on both query
// endpoints: a request whose X-Ajaxserve-Budget-Ms is already at or
// below the floor is rejected with 503 before any evaluation, a
// generous budget passes through, and a malformed header from an
// unknown client is ignored rather than fatal.
func TestBudgetFastReject(t *testing.T) {
	s, reg := newTestServer(t, Config{})

	send := func(path, budget string) *httptest.ResponseRecorder {
		req := httptest.NewRequest("GET", path, nil)
		if budget != "" {
			req.Header.Set(HeaderBudget, budget)
		}
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, req)
		return rec
	}

	// 1ms and 2ms are at or below the 2ms default floor.
	if rec := send("/search?q=morcheeba", "1"); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("budget 1ms: status %d, want 503", rec.Code)
	}
	if rec := send("/shard/search?q=morcheeba", "2"); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("shard budget 2ms: status %d, want 503", rec.Code)
	}
	if got := reg.Counter("query.serve.budget_rejected").Value(); got != 2 {
		t.Fatalf("budget_rejected = %d, want 2", got)
	}
	if reg.Counter("query.count").Value() != 0 {
		t.Fatal("budget-rejected request still evaluated the query")
	}

	// A generous budget and a malformed header both serve normally.
	if rec := send("/search?q=morcheeba", "5000"); rec.Code != http.StatusOK {
		t.Fatalf("budget 5000ms: status %d, want 200", rec.Code)
	}
	if rec := send("/search?q=morcheeba", "abc"); rec.Code != http.StatusOK {
		t.Fatalf("malformed budget: status %d, want 200", rec.Code)
	}
	if got := reg.Counter("query.serve.budget_rejected").Value(); got != 2 {
		t.Fatalf("budget_rejected after good requests = %d, want 2", got)
	}
}

// TestQueueWaitEatsBudget pins the post-queue recheck: a request
// admitted after its propagated budget drained away in the wait queue
// must be rejected, not evaluated — the acceptance criterion's "zero
// expired-budget executions" at the serve tier. Time is a stepClock, so
// the schedule is exact.
func TestQueueWaitEatsBudget(t *testing.T) {
	clk := newStepClock()
	s, reg := newTestServer(t, Config{
		MaxInflight:     1,
		AdmissionQueue:  2,
		AdmissionTarget: time.Minute, // keep CoDel out of this test's way
		Clock:           clk,
	})

	tok, ok := s.Limiter().TryAcquire()
	if !ok {
		t.Fatal("could not saturate the limiter")
	}
	req := httptest.NewRequest("GET", "/search?q=morcheeba", nil)
	req.Header.Set(HeaderBudget, "100")
	done := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, req)
		done <- rec
	}()
	waitForQueueDepth(t, s, 1)

	// The queue wait outlives the 100ms budget; the release then admits
	// the waiter, whose budget recheck must fail.
	clk.Advance(200 * time.Millisecond)
	tok.Release()
	rec := <-done
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503 after budget drained in queue", rec.Code)
	}
	if got := reg.Counter("query.serve.budget_rejected").Value(); got != 1 {
		t.Fatalf("budget_rejected = %d, want 1", got)
	}
	if reg.Counter("query.count").Value() != 0 {
		t.Fatal("expired-budget request still evaluated the query")
	}
	if got := s.Limiter().Inflight(); got != 0 {
		t.Fatalf("leaked %d slots through the budget recheck", got)
	}
}

func waitForQueueDepth(t *testing.T, s *Server, depth int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for s.Limiter().QueueDepth() < depth {
		if time.Now().After(deadline) {
			t.Fatalf("queue never reached depth %d", depth)
		}
		runtime.Gosched()
	}
}

// TestBrownoutLadder drives the degradation ladder directly: a
// pressured request prefers a full-quality cached answer, then drops
// snippets, then halves k at half-full queue — and an unpressured
// request never degrades.
func TestBrownoutLadder(t *testing.T) {
	s, reg := newTestServer(t, Config{MaxInflight: 2, AdmissionQueue: 4})
	ctx := obs.With(context.Background(), s.tel)

	// Unpressured baseline: full quality, fills the cache.
	res, _, _, k, degraded := s.search(ctx, "morcheeba singer", 10, nil)
	if degraded != "" || k != 10 || len(res) == 0 || res[0].Snippet == "" {
		t.Fatalf("baseline degraded=%q k=%d res=%+v", degraded, k, res)
	}

	// Pressure + cache hit: the lossless rung — full quality, no
	// degradation advertised.
	pressured := &admission.Token{Waited: true}
	res, _, cached, k, degraded := s.search(ctx, "morcheeba singer", 10, pressured)
	if degraded != "" || !cached || k != 10 || res[0].Snippet == "" {
		t.Fatalf("cached rung: degraded=%q cached=%v snippet=%q", degraded, cached, res[0].Snippet)
	}
	if reg.Counter("query.serve.brownout").Value() != 0 {
		t.Fatal("cached answer counted as brownout")
	}

	// Pressure + cold query: snippets are dropped.
	res, _, _, k, degraded = s.search(ctx, "concert", 10, pressured)
	if degraded != "snippets" || k != 10 {
		t.Fatalf("snippet rung: degraded=%q k=%d", degraded, k)
	}
	if len(res) == 0 || res[0].Snippet != "" {
		t.Fatalf("snippet rung still extracted snippets: %+v", res)
	}
	if reg.Counter("query.serve.brownout").Value() != 1 {
		t.Fatalf("brownout counter = %d", reg.Counter("query.serve.brownout").Value())
	}

	// Half-full queue: k is halved too.
	deep := &admission.Token{Waited: true, QueueDepth: 2}
	_, _, _, k, degraded = s.search(ctx, "footage", 10, deep)
	if degraded != "snippets,k" || k != 5 {
		t.Fatalf("k rung: degraded=%q k=%d", degraded, k)
	}

	// The degraded fill must not shadow the full-quality cache: the
	// same cold query unpressured evaluates fresh with snippets.
	res, _, cached, _, degraded = s.search(ctx, "concert", 10, nil)
	if degraded != "" || cached || len(res) == 0 || res[0].Snippet == "" {
		t.Fatalf("degraded fill shadowed full quality: degraded=%q cached=%v res=%+v", degraded, cached, res)
	}
}

// TestBrownoutDisabled pins the opt-outs: NoBrownout, and a zero-queue
// limiter (where waiting is impossible), both serve full quality even
// for tokens that report pressure.
func TestBrownoutDisabled(t *testing.T) {
	pressured := &admission.Token{Waited: true, QueueDepth: 2}
	for name, cfg := range map[string]Config{
		"NoBrownout": {MaxInflight: 2, AdmissionQueue: 4, NoBrownout: true},
		"ZeroQueue":  {MaxInflight: 2},
	} {
		s, _ := newTestServer(t, cfg)
		ctx := obs.With(context.Background(), s.tel)
		res, _, _, k, degraded := s.search(ctx, "morcheeba", 10, pressured)
		if degraded != "" || k != 10 || len(res) == 0 || res[0].Snippet == "" {
			t.Fatalf("%s: degraded=%q k=%d res=%+v", name, degraded, k, res)
		}
	}
}

// TestBrownoutOverHTTP exercises the whole path through the handler: a
// request that queued behind a saturated limiter is answered degraded
// with the X-Ajaxserve-Degraded header set.
func TestBrownoutOverHTTP(t *testing.T) {
	s, _ := newTestServer(t, Config{
		MaxInflight:     1,
		AdmissionQueue:  2,
		AdmissionTarget: time.Minute,
	})
	tok, ok := s.Limiter().TryAcquire()
	if !ok {
		t.Fatal("could not saturate the limiter")
	}
	done := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/search?q=morcheeba", nil))
		done <- rec
	}()
	waitForQueueDepth(t, s, 1)
	tok.Release()
	rec := <-done
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get(HeaderDegraded); got != "snippets" {
		t.Fatalf("degraded header = %q, want \"snippets\"", got)
	}
}
