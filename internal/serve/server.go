// Package serve is the search serving layer: a long-running HTTP front
// end that answers keyword queries from persisted index snapshots — the
// piece that turns the crawl-then-query-once pipeline into a search
// *service* (thesis ch. 5–6's endgame; ROADMAP "serve heavy traffic").
//
// The design follows the classic crawler/repository split: the crawler
// publishes immutable snapshot directories (shards + models + manifest,
// internal/index), and the server loads one, fronts it with a sharded
// LRU result cache, and hot-swaps to a new snapshot — load in the
// background, swap one atomic pointer, let old readers drain — whenever
// the manifest's ID changes (Reload/Watch). Per-query deadlines and a
// bounded in-flight gate (429 on saturation) keep an overloaded server
// shedding instead of collapsing.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"ajaxcrawl/internal/index"
	"ajaxcrawl/internal/model"
	"ajaxcrawl/internal/obs"
	"ajaxcrawl/internal/query"
)

// Response headers: per-request serving metadata rides on headers, not
// the JSON body, so response bodies for one snapshot's content are
// byte-stable across cache states, swaps of identical snapshots, and
// whole re-crawls (the golden end-to-end test pins this).
const (
	// HeaderGeneration is the serving generation that answered.
	HeaderGeneration = "X-Ajaxserve-Generation"
	// HeaderDocs is that generation's document count.
	HeaderDocs = "X-Ajaxserve-Docs"
	// HeaderStates is that generation's state count.
	HeaderStates = "X-Ajaxserve-States"
	// HeaderCache is "hit" or "miss".
	HeaderCache = "X-Ajaxserve-Cache"
)

// Config parameterizes a Server.
type Config struct {
	// SnapshotDir is the snapshot directory to serve (required).
	SnapshotDir string
	// DefaultK is the result count when ?k= is absent (default 10).
	DefaultK int
	// MaxK caps ?k= (default 100).
	MaxK int
	// CacheShards, CacheCapacity and CacheTTL configure the result
	// cache (defaults 8 / 1024 / no expiry).
	CacheShards   int
	CacheCapacity int
	CacheTTL      time.Duration
	// MaxInflight bounds concurrently evaluating queries; excess
	// requests are shed with 429 (0 = unlimited).
	MaxInflight int
	// QueryTimeout is the per-query deadline (0 = none).
	QueryTimeout time.Duration
	// Weights are the ranking coefficients (default query.DefaultWeights).
	Weights *query.Weights
}

func (c Config) withDefaults() Config {
	if c.DefaultK <= 0 {
		c.DefaultK = 10
	}
	if c.MaxK <= 0 {
		c.MaxK = 100
	}
	return c
}

// Server is the HTTP search daemon's engine room: the hot-swappable
// query server plus snapshot (re)loading and the request handlers.
type Server struct {
	cfg      Config
	tel      *obs.Telemetry
	qs       *query.Server
	inflight chan struct{}

	// mu serializes Reload: only one snapshot load/swap runs at a time.
	// Serving never takes this lock.
	mu         sync.Mutex
	manifestID string
}

// New loads the snapshot in cfg.SnapshotDir and returns a ready Server.
// tel may be nil (no telemetry).
func New(cfg Config, tel *obs.Telemetry) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.SnapshotDir == "" {
		return nil, fmt.Errorf("serve: Config.SnapshotDir is required")
	}
	snap, man, err := LoadSnapshot(cfg.SnapshotDir, cfg.Weights)
	if err != nil {
		return nil, err
	}
	s := &Server{cfg: cfg, tel: tel, manifestID: man.ID}
	if cfg.MaxInflight > 0 {
		s.inflight = make(chan struct{}, cfg.MaxInflight)
	}
	s.qs = query.NewServer(snap, query.CacheOptions{
		Shards:   cfg.CacheShards,
		Capacity: cfg.CacheCapacity,
		TTL:      cfg.CacheTTL,
	})
	// Re-publish the swap gauges under this server's telemetry (the
	// initial NewServer swap ran before tel was attached to a context).
	live := s.qs.Live()
	tel.Gauge("query.serve.snapshot.gen").Set(live.Gen)
	tel.Gauge("query.serve.snapshot.docs").Set(int64(live.Docs))
	tel.Gauge("query.serve.snapshot.states").Set(int64(live.States))
	return s, nil
}

// LoadSnapshot reads a snapshot directory into a ServeSnapshot: shards
// into a broker, models (when present) into the snippet source. w nil
// means default weights.
func LoadSnapshot(dir string, w *query.Weights) (*query.ServeSnapshot, *index.Manifest, error) {
	man, shards, err := index.LoadSnapshot(dir)
	if err != nil {
		return nil, nil, err
	}
	weights := query.DefaultWeights
	if w != nil {
		weights = *w
	}
	snap := &query.ServeSnapshot{
		Broker: &query.Broker{Shards: shards, W: weights},
	}
	if man.Models != "" {
		graphs, err := model.LoadAll(dir)
		if err != nil {
			return nil, nil, fmt.Errorf("serve: snapshot models: %w", err)
		}
		byURL := make(map[string]*model.Graph, len(graphs))
		for _, g := range graphs {
			byURL[g.URL] = g
		}
		snap.StateText = func(url string, state int) string {
			g := byURL[url]
			if g == nil {
				return ""
			}
			st := g.State(model.StateID(state))
			if st == nil {
				return ""
			}
			return st.Text
		}
	}
	return snap, man, nil
}

// ManifestID returns the ID of the currently serving manifest.
func (s *Server) ManifestID() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.manifestID
}

// QueryServer exposes the underlying hot-swappable query server.
func (s *Server) QueryServer() *query.Server { return s.qs }

// Reload checks the snapshot directory's manifest and, when its ID
// differs from the serving one (or force is set), loads the new shards
// in the background and hot-swaps the live engine. Serving continues
// from the old snapshot for the whole load; the swap itself is one
// atomic pointer store. Returns whether a swap happened.
func (s *Server) Reload(ctx context.Context, force bool) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	tel := s.tel
	man, err := index.LoadManifest(s.cfg.SnapshotDir)
	if err != nil {
		tel.Counter("query.serve.reload.errors").Inc()
		return false, err
	}
	if !force && man.ID == s.manifestID {
		return false, nil
	}
	snap, man, err := LoadSnapshot(s.cfg.SnapshotDir, s.cfg.Weights)
	if err != nil {
		// A half-written snapshot (new manifest, shard still streaming
		// to disk) stays un-swapped; the next poll retries.
		tel.Counter("query.serve.reload.errors").Inc()
		return false, err
	}
	s.qs.Swap(obs.With(ctx, tel), snap)
	s.manifestID = man.ID
	return true, nil
}

// Watch polls the manifest every interval and hot-swaps on ID changes —
// the -watch flag's loop. It returns when ctx ends. Reload errors are
// counted (query.serve.reload.errors) and retried next tick.
func (s *Server) Watch(ctx context.Context, interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			_, _ = s.Reload(ctx, false)
		}
	}
}

// Routes mounts the serving endpoints on mux: /search, /shard/search
// and /healthz.
func (s *Server) Routes(mux *http.ServeMux) {
	mux.HandleFunc("/search", s.handleSearch)
	mux.HandleFunc("/shard/search", s.handleShardSearch)
	mux.HandleFunc("/healthz", s.handleHealth)
}

// Handler returns the serving endpoints wrapped in the obs request
// middleware (http.requests / http.inflight / http.latency), backed by
// this server's telemetry registry. Debug endpoints are mounted by the
// daemon (cmd/ajaxserve) on the same mux, outside this handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	s.Routes(mux)
	return obs.InstrumentHandler(s.tel.Registry(), mux)
}

// searchResponse is the /search JSON body. Field order (and therefore
// the marshaled bytes) is fixed; serving metadata that varies run-to-run
// (generation, cache state) travels in headers instead.
type searchResponse struct {
	Query   string         `json:"query"`
	K       int            `json:"k"`
	Count   int            `json:"count"`
	Results []searchResult `json:"results"`
}

type searchResult struct {
	URL     string  `json:"url"`
	State   int     `json:"state"`
	Score   float64 `json:"score"`
	Snippet string  `json:"snippet,omitempty"`
}

// errorResponse is the JSON error body.
type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	b, err := json.Marshal(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(b, '\n'))
}

// admit applies the load-shedding gate: it reserves an in-flight slot
// (release must be called when evaluation ends) or sheds the request
// with 429. Saturation must cost a channel poll, not an evaluation;
// 429 + Retry-After tells well-behaved clients to back off, and the
// shed count is the first metric to watch under load.
func (s *Server) admit(w http.ResponseWriter) (release func(), ok bool) {
	if s.inflight == nil {
		return func() {}, true
	}
	select {
	case s.inflight <- struct{}{}:
		return func() { <-s.inflight }, true
	default:
		s.tel.Counter("query.serve.shed").Inc()
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, errorResponse{Error: "server saturated, retry later"})
		return nil, false
	}
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	tel := s.tel
	release, ok := s.admit(w)
	if !ok {
		return
	}
	defer release()
	q := r.URL.Query().Get("q")
	if q == "" {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "missing q parameter"})
		return
	}
	k := s.cfg.DefaultK
	if kv := r.URL.Query().Get("k"); kv != "" {
		parsed, err := strconv.Atoi(kv)
		if err != nil || parsed <= 0 {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: "k must be a positive integer"})
			return
		}
		k = parsed
		if k > s.cfg.MaxK {
			k = s.cfg.MaxK
		}
	}

	ctx := obs.With(r.Context(), tel)
	if s.cfg.QueryTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.QueryTimeout)
		defer cancel()
	}
	// A request that spent its whole deadline queued (or whose client
	// hung up) is not worth evaluating.
	if err := ctx.Err(); err != nil {
		tel.Counter("query.serve.deadline").Inc()
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "deadline exceeded before evaluation"})
		return
	}

	results, snap, cached := s.qs.Search(ctx, q, k)
	resp := searchResponse{
		Query:   query.QueryString(query.Parse(q)),
		K:       k,
		Count:   len(results),
		Results: make([]searchResult, 0, len(results)),
	}
	for _, r := range results {
		resp.Results = append(resp.Results, searchResult{
			URL:     r.URL,
			State:   int(r.State),
			Score:   r.Score,
			Snippet: r.Snippet,
		})
	}
	w.Header().Set(HeaderGeneration, strconv.FormatInt(snap.Gen, 10))
	w.Header().Set(HeaderDocs, strconv.Itoa(snap.Docs))
	w.Header().Set(HeaderStates, strconv.Itoa(snap.States))
	if cached {
		w.Header().Set(HeaderCache, "hit")
	} else {
		w.Header().Set(HeaderCache, "miss")
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleShardSearch answers the shard half of a distributed query
// (internal/router's fan-out protocol): pre-idf candidates plus the
// local df vector and state count, so a router can apply the global idf
// correction of eq. 6.1 across shard servers. The same load-shedding
// gate and per-query deadline as /search apply — a router hedging into
// a saturated replica should see 429 quickly, not queue behind it.
func (s *Server) handleShardSearch(w http.ResponseWriter, r *http.Request) {
	tel := s.tel
	release, ok := s.admit(w)
	if !ok {
		return
	}
	defer release()
	q := r.URL.Query().Get("q")
	if q == "" {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "missing q parameter"})
		return
	}

	ctx := obs.With(r.Context(), tel)
	if s.cfg.QueryTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.QueryTimeout)
		defer cancel()
	}
	if err := ctx.Err(); err != nil {
		tel.Counter("query.serve.deadline").Inc()
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "deadline exceeded before evaluation"})
		return
	}

	res := s.qs.ShardSearch(ctx, q)
	w.Header().Set(HeaderGeneration, strconv.FormatInt(res.Gen, 10))
	w.Header().Set(HeaderDocs, strconv.Itoa(res.Docs))
	w.Header().Set(HeaderStates, strconv.Itoa(res.States))
	writeJSON(w, http.StatusOK, res)
}

// healthResponse is the /healthz JSON body.
type healthResponse struct {
	Status     string `json:"status"`
	ManifestID string `json:"manifest_id"`
	Generation int64  `json:"generation"`
	Docs       int    `json:"docs"`
	States     int    `json:"states"`
	Shards     int    `json:"shards"`
	CacheLen   int    `json:"cache_len"`
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	snap := s.qs.Live()
	writeJSON(w, http.StatusOK, healthResponse{
		Status:     "ok",
		ManifestID: s.ManifestID(),
		Generation: snap.Gen,
		Docs:       snap.Docs,
		States:     snap.States,
		Shards:     len(snap.Broker.Shards),
		CacheLen:   s.qs.Cache().Len(),
	})
}
