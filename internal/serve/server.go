// Package serve is the search serving layer: a long-running HTTP front
// end that answers keyword queries from persisted index snapshots — the
// piece that turns the crawl-then-query-once pipeline into a search
// *service* (thesis ch. 5–6's endgame; ROADMAP "serve heavy traffic").
//
// The design follows the classic crawler/repository split: the crawler
// publishes immutable snapshot directories (shards + models + manifest,
// internal/index), and the server loads one, fronts it with a sharded
// LRU result cache, and hot-swaps to a new snapshot — load in the
// background, swap one atomic pointer, let old readers drain — whenever
// the manifest's ID changes (Reload/Watch). Per-query deadlines, an
// adaptive admission gate (internal/admission: 429 + computed
// Retry-After on saturation), deadline-budget propagation from upstream
// routers, and a brownout mode that degrades quality before shedding
// keep an overloaded server answering instead of collapsing.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"ajaxcrawl/internal/admission"
	"ajaxcrawl/internal/fetch"
	"ajaxcrawl/internal/index"
	"ajaxcrawl/internal/model"
	"ajaxcrawl/internal/obs"
	"ajaxcrawl/internal/query"
)

// Response headers: per-request serving metadata rides on headers, not
// the JSON body, so response bodies for one snapshot's content are
// byte-stable across cache states, swaps of identical snapshots, and
// whole re-crawls (the golden end-to-end test pins this).
const (
	// HeaderGeneration is the serving generation that answered.
	HeaderGeneration = "X-Ajaxserve-Generation"
	// HeaderDocs is that generation's document count.
	HeaderDocs = "X-Ajaxserve-Docs"
	// HeaderStates is that generation's state count.
	HeaderStates = "X-Ajaxserve-States"
	// HeaderCache is "hit" or "miss".
	HeaderCache = "X-Ajaxserve-Cache"
	// HeaderBudget carries the caller's remaining deadline budget in
	// whole milliseconds (the router's fan-out sets it per shard call).
	// The server clamps its per-query deadline to it and fast-rejects
	// when it is already below BudgetFloor — no tier burns CPU on work
	// the caller has abandoned.
	HeaderBudget = "X-Ajaxserve-Budget-Ms"
	// HeaderDegraded marks a brownout answer and names what was shed:
	// "snippets" or "snippets,k". Absent on full-quality responses, so
	// routers and tests can tell exactly which bodies are comparable.
	HeaderDegraded = "X-Ajaxserve-Degraded"
)

// Config parameterizes a Server.
type Config struct {
	// SnapshotDir is the snapshot directory to serve (required).
	SnapshotDir string
	// DefaultK is the result count when ?k= is absent (default 10).
	DefaultK int
	// MaxK caps ?k= (default 100).
	MaxK int
	// CacheShards, CacheCapacity and CacheTTL configure the result
	// cache (defaults 8 / 1024 / no expiry).
	CacheShards   int
	CacheCapacity int
	CacheTTL      time.Duration
	// MaxInflight is the admission limiter's hard ceiling on
	// concurrently evaluating queries; excess requests queue (when
	// AdmissionQueue > 0) or are shed with 429 (0 = unlimited, no
	// limiter at all).
	MaxInflight int
	// AdmissionMin is the adaptive limiter's floor (default 1). Under
	// sustained congestion the limit walks down from MaxInflight toward
	// this, never below.
	AdmissionMin int
	// AdmissionQueue bounds the admission wait queue (0 = no queue:
	// shed immediately at the limit, the pre-adaptive behavior).
	AdmissionQueue int
	// AdmissionTarget is the CoDel-style sojourn bound for queued
	// requests (0 = the admission package default, 50ms).
	AdmissionTarget time.Duration
	// BudgetFloor fast-rejects requests whose propagated deadline
	// budget (HeaderBudget) is at or below this remaining time
	// (default 2ms) — by then the caller has hedged or given up.
	BudgetFloor time.Duration
	// NoBrownout disables graceful degradation under queue pressure
	// (brownout is only active when AdmissionQueue > 0 anyway).
	NoBrownout bool
	// QueryTimeout is the per-query deadline (0 = none).
	QueryTimeout time.Duration
	// Weights are the ranking coefficients (default query.DefaultWeights).
	Weights *query.Weights
	// Clock supplies timestamps for admission control and budget
	// accounting (nil = wall clock).
	Clock fetch.Clock
}

func (c Config) withDefaults() Config {
	if c.DefaultK <= 0 {
		c.DefaultK = 10
	}
	if c.MaxK <= 0 {
		c.MaxK = 100
	}
	if c.BudgetFloor <= 0 {
		c.BudgetFloor = 2 * time.Millisecond
	}
	if c.Clock == nil {
		c.Clock = fetch.RealClock{}
	}
	return c
}

// Server is the HTTP search daemon's engine room: the hot-swappable
// query server plus snapshot (re)loading and the request handlers.
type Server struct {
	cfg     Config
	tel     *obs.Telemetry
	qs      *query.Server
	limiter *admission.Limiter
	clock   fetch.Clock

	// mu serializes Reload: only one snapshot load/swap runs at a time.
	// Serving never takes this lock.
	mu         sync.Mutex
	manifestID string
}

// New loads the snapshot in cfg.SnapshotDir and returns a ready Server.
// tel may be nil (no telemetry).
func New(cfg Config, tel *obs.Telemetry) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.SnapshotDir == "" {
		return nil, fmt.Errorf("serve: Config.SnapshotDir is required")
	}
	snap, man, err := LoadSnapshot(cfg.SnapshotDir, cfg.Weights)
	if err != nil {
		return nil, err
	}
	s := &Server{cfg: cfg, tel: tel, clock: cfg.Clock, manifestID: man.ID}
	if cfg.MaxInflight > 0 {
		s.limiter = admission.New(admission.Config{
			Initial:     cfg.MaxInflight,
			Min:         cfg.AdmissionMin,
			Max:         cfg.MaxInflight,
			Queue:       cfg.AdmissionQueue,
			QueueTarget: cfg.AdmissionTarget,
			Clock:       cfg.Clock,
			Tel:         tel,
		})
	}
	s.qs = query.NewServer(snap, query.CacheOptions{
		Shards:   cfg.CacheShards,
		Capacity: cfg.CacheCapacity,
		TTL:      cfg.CacheTTL,
	})
	// Re-publish the swap gauges under this server's telemetry (the
	// initial NewServer swap ran before tel was attached to a context).
	live := s.qs.Live()
	tel.Gauge("query.serve.snapshot.gen").Set(live.Gen)
	tel.Gauge("query.serve.snapshot.docs").Set(int64(live.Docs))
	tel.Gauge("query.serve.snapshot.states").Set(int64(live.States))
	return s, nil
}

// LoadSnapshot reads a snapshot directory into a ServeSnapshot: shards
// into a broker, models (when present) into the snippet source. w nil
// means default weights.
func LoadSnapshot(dir string, w *query.Weights) (*query.ServeSnapshot, *index.Manifest, error) {
	man, shards, err := index.LoadSnapshot(dir)
	if err != nil {
		return nil, nil, err
	}
	weights := query.DefaultWeights
	if w != nil {
		weights = *w
	}
	snap := &query.ServeSnapshot{
		Broker: &query.Broker{Shards: shards, W: weights},
	}
	if man.Models != "" {
		graphs, err := model.LoadAll(dir)
		if err != nil {
			return nil, nil, fmt.Errorf("serve: snapshot models: %w", err)
		}
		byURL := make(map[string]*model.Graph, len(graphs))
		for _, g := range graphs {
			byURL[g.URL] = g
		}
		snap.StateText = func(url string, state int) string {
			g := byURL[url]
			if g == nil {
				return ""
			}
			st := g.State(model.StateID(state))
			if st == nil {
				return ""
			}
			return st.Text
		}
	}
	return snap, man, nil
}

// ManifestID returns the ID of the currently serving manifest.
func (s *Server) ManifestID() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.manifestID
}

// QueryServer exposes the underlying hot-swappable query server.
func (s *Server) QueryServer() *query.Server { return s.qs }

// Limiter exposes the admission limiter (nil when MaxInflight is 0) —
// for debug endpoints and tests.
func (s *Server) Limiter() *admission.Limiter { return s.limiter }

// Reload checks the snapshot directory's manifest and, when its ID
// differs from the serving one (or force is set), loads the new shards
// in the background and hot-swaps the live engine. Serving continues
// from the old snapshot for the whole load; the swap itself is one
// atomic pointer store. Returns whether a swap happened.
func (s *Server) Reload(ctx context.Context, force bool) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	tel := s.tel
	man, err := index.LoadManifest(s.cfg.SnapshotDir)
	if err != nil {
		tel.Counter("query.serve.reload.errors").Inc()
		return false, err
	}
	if !force && man.ID == s.manifestID {
		return false, nil
	}
	snap, man, err := LoadSnapshot(s.cfg.SnapshotDir, s.cfg.Weights)
	if err != nil {
		// A half-written snapshot (new manifest, shard still streaming
		// to disk) stays un-swapped; the next poll retries.
		tel.Counter("query.serve.reload.errors").Inc()
		return false, err
	}
	s.qs.Swap(obs.With(ctx, tel), snap)
	s.manifestID = man.ID
	return true, nil
}

// Watch polls the manifest every interval and hot-swaps on ID changes —
// the -watch flag's loop. It returns when ctx ends. Reload errors are
// counted (query.serve.reload.errors) and retried next tick.
func (s *Server) Watch(ctx context.Context, interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			_, _ = s.Reload(ctx, false)
		}
	}
}

// Routes mounts the serving endpoints on mux: /search, /shard/search
// and /healthz.
func (s *Server) Routes(mux *http.ServeMux) {
	mux.HandleFunc("/search", s.handleSearch)
	mux.HandleFunc("/shard/search", s.handleShardSearch)
	mux.HandleFunc("/healthz", s.handleHealth)
}

// Handler returns the serving endpoints wrapped in the obs request
// middleware (http.requests / http.inflight / http.latency), backed by
// this server's telemetry registry. Debug endpoints are mounted by the
// daemon (cmd/ajaxserve) on the same mux, outside this handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	s.Routes(mux)
	return obs.InstrumentHandler(s.tel.Registry(), mux)
}

// searchResponse is the /search JSON body. Field order (and therefore
// the marshaled bytes) is fixed; serving metadata that varies run-to-run
// (generation, cache state) travels in headers instead.
type searchResponse struct {
	Query   string         `json:"query"`
	K       int            `json:"k"`
	Count   int            `json:"count"`
	Results []searchResult `json:"results"`
}

type searchResult struct {
	URL     string  `json:"url"`
	State   int     `json:"state"`
	Score   float64 `json:"score"`
	Snippet string  `json:"snippet,omitempty"`
}

// errorResponse is the JSON error body.
type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	b, err := json.Marshal(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(b, '\n'))
}

// admit applies the load-shedding gate: it reserves an in-flight slot
// (exactly one of Release or Cancel must be called on the returned
// token, which is nil-safe when the limiter is disabled) or sheds the
// request. Saturation must cost an admission decision, not an
// evaluation; 429 + a limiter-computed Retry-After tells well-behaved
// clients to back off in proportion to the actual overload, and the
// shed count is the first metric to watch under load.
func (s *Server) admit(w http.ResponseWriter, r *http.Request) (*admission.Token, bool) {
	if s.limiter == nil {
		return nil, true
	}
	tok, err := s.limiter.Acquire(r.Context())
	if err == nil {
		return tok, true
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		// The client hung up while we queued it; nobody reads this body.
		s.tel.Counter("query.serve.deadline").Inc()
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "deadline exceeded before evaluation"})
		return nil, false
	}
	s.tel.Counter("query.serve.shed").Inc()
	w.Header().Set("Retry-After", strconv.Itoa(s.limiter.RetryAfterSeconds()))
	writeJSON(w, http.StatusTooManyRequests, errorResponse{Error: "server saturated, retry later"})
	return nil, false
}

// budgetFromRequest parses the propagated deadline budget. ok is false
// when the header is absent or malformed (a malformed value from an
// unknown client is ignored, not fatal — only our own router sets it).
func budgetFromRequest(r *http.Request) (time.Duration, bool) {
	h := r.Header.Get(HeaderBudget)
	if h == "" {
		return 0, false
	}
	ms, err := strconv.ParseInt(h, 10, 64)
	if err != nil || ms <= 0 {
		return 0, false
	}
	return time.Duration(ms) * time.Millisecond, true
}

// rejectBudget sheds a request whose remaining budget is below the
// floor: by the time we answered, the caller would already have hedged
// or timed out, so evaluating it is pure waste.
func (s *Server) rejectBudget(w http.ResponseWriter) {
	s.tel.Counter("query.serve.budget_rejected").Inc()
	writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "deadline budget below floor"})
}

// queryContext applies the effective deadline — QueryTimeout clamped to
// the propagated budget when one rides on the request.
func (s *Server) queryContext(ctx context.Context, budget time.Duration, hasBudget bool) (context.Context, context.CancelFunc) {
	timeout := s.cfg.QueryTimeout
	if hasBudget && (timeout == 0 || budget < timeout) {
		timeout = budget
	}
	if timeout > 0 {
		return context.WithTimeout(ctx, timeout)
	}
	return ctx, func() {}
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	tel := s.tel
	arrival := s.clock.Now()
	budget, hasBudget := budgetFromRequest(r)
	if hasBudget && budget <= s.cfg.BudgetFloor {
		s.rejectBudget(w)
		return
	}
	tok, ok := s.admit(w, r)
	if !ok {
		return
	}
	q := r.URL.Query().Get("q")
	if q == "" {
		tok.Cancel()
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "missing q parameter"})
		return
	}
	k := s.cfg.DefaultK
	if kv := r.URL.Query().Get("k"); kv != "" {
		parsed, err := strconv.Atoi(kv)
		if err != nil || parsed <= 0 {
			tok.Cancel()
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: "k must be a positive integer"})
			return
		}
		k = parsed
		if k > s.cfg.MaxK {
			k = s.cfg.MaxK
		}
	}
	if hasBudget {
		// Queue time already ate into the caller's budget.
		budget -= s.clock.Now().Sub(arrival)
		if budget <= s.cfg.BudgetFloor {
			tok.Cancel()
			s.rejectBudget(w)
			return
		}
	}
	defer tok.Release()

	ctx := obs.With(r.Context(), tel)
	ctx, cancel := s.queryContext(ctx, budget, hasBudget)
	defer cancel()
	// A request that spent its whole deadline queued (or whose client
	// hung up) is not worth evaluating.
	if err := ctx.Err(); err != nil {
		tel.Counter("query.serve.deadline").Inc()
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "deadline exceeded before evaluation"})
		return
	}

	results, snap, cached, servedK, degraded := s.search(ctx, q, k, tok)
	resp := searchResponse{
		Query:   query.QueryString(query.Parse(q)),
		K:       servedK,
		Count:   len(results),
		Results: make([]searchResult, 0, len(results)),
	}
	for _, r := range results {
		resp.Results = append(resp.Results, searchResult{
			URL:     r.URL,
			State:   int(r.State),
			Score:   r.Score,
			Snippet: r.Snippet,
		})
	}
	w.Header().Set(HeaderGeneration, strconv.FormatInt(snap.Gen, 10))
	w.Header().Set(HeaderDocs, strconv.Itoa(snap.Docs))
	w.Header().Set(HeaderStates, strconv.Itoa(snap.States))
	if cached {
		w.Header().Set(HeaderCache, "hit")
	} else {
		w.Header().Set(HeaderCache, "miss")
	}
	if degraded != "" {
		w.Header().Set(HeaderDegraded, degraded)
	}
	writeJSON(w, http.StatusOK, resp)
}

// search runs one query through the brownout ladder. Under queue
// pressure (this request waited, or a queue has formed behind the
// limit) the server degrades before it sheds: first it prefers a
// full-quality cached answer (free, lossless), then drops snippet
// extraction — the most expensive part of a cold evaluation — and at
// half-full queue also halves k. The degradation is advertised so
// callers can tell which answers are comparable; non-degraded bodies
// stay byte-identical to an unloaded server's.
func (s *Server) search(ctx context.Context, q string, k int, tok *admission.Token) (results []query.ResultWithSnippet, snap *query.ServeSnapshot, cached bool, servedK int, degraded string) {
	pressured := s.limiter != nil && !s.cfg.NoBrownout && s.limiter.QueueLimit() > 0 &&
		tok != nil && (tok.Waited || tok.QueueDepth > 0)
	if !pressured {
		results, snap, cached = s.qs.Search(ctx, q, k)
		return results, snap, cached, k, ""
	}
	if res, sn, ok := s.qs.Cached(q, k); ok {
		return res, sn, true, k, ""
	}
	degraded = "snippets"
	if tok.QueueDepth*2 >= s.limiter.QueueLimit() && k > 1 {
		k = (k + 1) / 2
		degraded = "snippets,k"
	}
	s.tel.Counter("query.serve.brownout").Inc()
	results, snap, cached = s.qs.SearchOpts(ctx, q, k, query.SearchOptions{NoSnippets: true})
	return results, snap, cached, k, degraded
}

// handleShardSearch answers the shard half of a distributed query
// (internal/router's fan-out protocol): pre-idf candidates plus the
// local df vector and state count, so a router can apply the global idf
// correction of eq. 6.1 across shard servers. The same load-shedding
// gate and per-query deadline as /search apply — a router hedging into
// a saturated replica should see 429 quickly, not queue behind it.
func (s *Server) handleShardSearch(w http.ResponseWriter, r *http.Request) {
	tel := s.tel
	arrival := s.clock.Now()
	budget, hasBudget := budgetFromRequest(r)
	if hasBudget && budget <= s.cfg.BudgetFloor {
		s.rejectBudget(w)
		return
	}
	tok, ok := s.admit(w, r)
	if !ok {
		return
	}
	q := r.URL.Query().Get("q")
	if q == "" {
		tok.Cancel()
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "missing q parameter"})
		return
	}
	if hasBudget {
		budget -= s.clock.Now().Sub(arrival)
		if budget <= s.cfg.BudgetFloor {
			tok.Cancel()
			s.rejectBudget(w)
			return
		}
	}
	defer tok.Release()

	ctx := obs.With(r.Context(), tel)
	ctx, cancel := s.queryContext(ctx, budget, hasBudget)
	defer cancel()
	if err := ctx.Err(); err != nil {
		tel.Counter("query.serve.deadline").Inc()
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "deadline exceeded before evaluation"})
		return
	}

	res := s.qs.ShardSearch(ctx, q)
	w.Header().Set(HeaderGeneration, strconv.FormatInt(res.Gen, 10))
	w.Header().Set(HeaderDocs, strconv.Itoa(res.Docs))
	w.Header().Set(HeaderStates, strconv.Itoa(res.States))
	writeJSON(w, http.StatusOK, res)
}

// healthResponse is the /healthz JSON body.
type healthResponse struct {
	Status     string `json:"status"`
	ManifestID string `json:"manifest_id"`
	Generation int64  `json:"generation"`
	Docs       int    `json:"docs"`
	States     int    `json:"states"`
	Shards     int    `json:"shards"`
	CacheLen   int    `json:"cache_len"`
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	snap := s.qs.Live()
	writeJSON(w, http.StatusOK, healthResponse{
		Status:     "ok",
		ManifestID: s.ManifestID(),
		Generation: snap.Gen,
		Docs:       snap.Docs,
		States:     snap.States,
		Shards:     len(snap.Broker.Shards),
		CacheLen:   s.qs.Cache().Len(),
	})
}
