package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"

	"ajaxcrawl/internal/query"
)

// TestShardSearchEndpoint pins the shard half of the fan-out protocol:
// /shard/search returns the pre-idf candidate payload with the snapshot
// metadata headers, rejects missing q, and honors the shed gate — a
// router hedging into a saturated replica must see 429 immediately.
func TestShardSearchEndpoint(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, bad := range []string{"/shard/search", "/shard/search?q="} {
		resp, _ := get(t, ts.URL+bad)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", bad, resp.StatusCode)
		}
	}

	resp, body := get(t, ts.URL+"/shard/search?q=morcheeba")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if resp.Header.Get(HeaderGeneration) != "1" || resp.Header.Get(HeaderDocs) != "2" {
		t.Fatalf("metadata headers = gen %q, docs %q",
			resp.Header.Get(HeaderGeneration), resp.Header.Get(HeaderDocs))
	}
	var res query.ShardResult
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, body)
	}
	if len(res.Terms) != 1 || res.Terms[0] != "morcheeba" {
		t.Fatalf("terms = %v", res.Terms)
	}
	if len(res.DF) != 1 || res.DF[0] != len(res.Candidates) {
		t.Fatalf("df = %v with %d candidates", res.DF, len(res.Candidates))
	}
	if res.TotalStates == 0 || len(res.Candidates) == 0 {
		t.Fatalf("empty shard response: %+v", res)
	}
	for i, c := range res.Candidates {
		if c.URL == "" || len(c.TFs) != 1 || c.Snippet == "" {
			t.Fatalf("candidate %d incomplete: %+v", i, c)
		}
	}
}

func TestShardSearchSheds(t *testing.T) {
	s, reg := newTestServer(t, Config{MaxInflight: 1})
	tok, ok := s.Limiter().TryAcquire()
	if !ok {
		t.Fatal("could not saturate the limiter")
	}
	defer tok.Cancel()
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/shard/search?q=morcheeba", nil))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", rec.Code)
	}
	if ra, err := strconv.Atoi(rec.Header().Get("Retry-After")); err != nil || ra < 1 {
		t.Fatalf("Retry-After = %q, want a positive integer", rec.Header().Get("Retry-After"))
	}
	if reg.Counter("query.serve.shed").Value() != 1 {
		t.Fatalf("shed counter = %d", reg.Counter("query.serve.shed").Value())
	}
	if reg.Counter("query.shard.requests").Value() != 0 {
		t.Fatal("shed request still evaluated the shard query")
	}
}
