package shingle

// SimHash sketching: Charikar's random-projection fingerprint as the
// cheaper alternative to MinHash. A single 64-bit fingerprint is computed
// by summing, per bit position, +1/-1 votes from each shingle's hash;
// near-identical shingle sets flip few votes and so share most bits. The
// fingerprint is then widened into a short Signature (16 elements of 4
// bits each) so the LSH index, the admitter's Similarity verification,
// and the checkpoint journal all reuse the MinHash machinery unchanged —
// only the sketch function and signature length differ.

// SimHashSignatureSize is the number of elements a simhash-backed
// Signature carries: the 64-bit fingerprint split into 16 chunks of
// SimHashChunkBits bits. Position agreement over 16 chunks is a coarser
// similarity estimate than 64 MinHash permutations, which is the
// trade-off for sketching in O(shingles) instead of O(shingles·64).
const (
	SimHashSignatureSize = 16
	SimHashChunkBits     = 64 / SimHashSignatureSize
)

// simhashSeed decorrelates the simhash projection from the MinHash
// permutation family: both consume the same shingle hashes, so reusing a
// MinHash seed would make chunk agreement correlate with permutation
// agreement.
const simhashSeed = 0x5BF0_3635_DE5D_57C1

// SimHash computes the 64-bit random-projection fingerprint of a shingle
// set. Bit i of the result is 1 iff the sum of bit-i votes (+1 when a
// shingle's mixed hash has bit i set, -1 otherwise) is positive.
func SimHash(shingles map[uint64]struct{}) uint64 {
	var votes [64]int
	for s := range shingles {
		h := mix(s, simhashSeed)
		for i := 0; i < 64; i++ {
			if h>>uint(i)&1 == 1 {
				votes[i]++
			} else {
				votes[i]--
			}
		}
	}
	var fp uint64
	for i, v := range votes {
		if v > 0 {
			fp |= 1 << uint(i)
		}
	}
	return fp
}

// SimHashSignature widens a simhash fingerprint into a Signature of
// SimHashSignatureSize elements (one per SimHashChunkBits-bit chunk), so
// Similarity and the LSH index treat simhash and MinHash sketches
// uniformly. Two fingerprints within Hamming distance d agree on at
// least SimHashSignatureSize-d chunks.
func SimHashSignature(fp uint64) Signature {
	sig := make(Signature, SimHashSignatureSize)
	for i := range sig {
		sig[i] = fp >> (uint(i) * SimHashChunkBits) & (1<<SimHashChunkBits - 1)
	}
	return sig
}

// SimHashSketch is the one-call convenience: tokens → simhash-backed
// Signature with default parameters.
func SimHashSketch(tokens []string) Signature {
	return SimHashSignature(SimHash(Shingles(tokens, DefaultK)))
}
