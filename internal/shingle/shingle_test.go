package shingle

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func toks(s string) []string { return strings.Fields(s) }

func TestShinglesBasic(t *testing.T) {
	sh := Shingles(toks("a b c d"), 3)
	if len(sh) != 2 { // (a b c), (b c d)
		t.Fatalf("shingles = %d, want 2", len(sh))
	}
	// Short text: one shingle.
	if got := Shingles(toks("a b"), 3); len(got) != 1 {
		t.Fatalf("short-text shingles = %d", len(got))
	}
	if got := Shingles(nil, 3); len(got) != 0 {
		t.Fatalf("empty shingles = %d", len(got))
	}
	// k <= 0 uses the default.
	if got := Shingles(toks("a b c d"), 0); len(got) != 2 {
		t.Fatalf("default-k shingles = %d", len(got))
	}
}

func TestShingleBoundaries(t *testing.T) {
	// ("ab","c") must differ from ("a","bc") — token boundaries hashed.
	a := Shingles([]string{"ab", "c", "x"}, 2)
	b := Shingles([]string{"a", "bc", "x"}, 2)
	if Jaccard(a, b) == 1 {
		t.Fatalf("token boundary collision")
	}
}

func TestJaccard(t *testing.T) {
	a := Shingles(toks("one two three four five"), 3)
	same := Shingles(toks("one two three four five"), 3)
	if Jaccard(a, same) != 1 {
		t.Fatalf("identical sets should have Jaccard 1")
	}
	disjoint := Shingles(toks("six seven eight nine ten"), 3)
	if Jaccard(a, disjoint) != 0 {
		t.Fatalf("disjoint sets should have Jaccard 0")
	}
	if Jaccard(nil, nil) != 1 {
		t.Fatalf("two empty sets are identical")
	}
	if Jaccard(a, nil) != 0 {
		t.Fatalf("empty vs non-empty should be 0")
	}
}

func TestMinHashEstimatesJaccard(t *testing.T) {
	// Two long texts sharing most of their content.
	base := strings.Repeat("alpha beta gamma delta epsilon zeta eta theta ", 12)
	a := Shingles(toks(base+"one two three"), 3)
	b := Shingles(toks(base+"four five six"), 3)
	exact := Jaccard(a, b)
	est := MinHash(a, 256).Similarity(MinHash(b, 256))
	if math.Abs(exact-est) > 0.12 {
		t.Fatalf("minhash estimate %v too far from exact %v", est, exact)
	}
	// Identical sets estimate 1.
	if MinHash(a, 64).Similarity(MinHash(a, 64)) != 1 {
		t.Fatalf("self-similarity must be 1")
	}
}

func TestNearDuplicateDetectionScenario(t *testing.T) {
	// The crawler's case: two states differing in a single counter token.
	s1 := Sketch(toks("video player like 41 comments page one of three lots of comment text here"))
	s2 := Sketch(toks("video player like 42 comments page one of three lots of comment text here"))
	s3 := Sketch(toks("completely different content about other things entirely unrelated to the video"))
	if sim := s1.Similarity(s2); sim < 0.5 {
		t.Fatalf("near-duplicates score too low: %v", sim)
	}
	if sim := s1.Similarity(s3); sim > 0.2 {
		t.Fatalf("unrelated texts score too high: %v", sim)
	}
}

func TestSignatureMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("length mismatch must panic")
		}
	}()
	MinHash(nil, 4).Similarity(MinHash(nil, 8))
}

func TestEmptySignature(t *testing.T) {
	var s Signature
	if s.Similarity(Signature{}) != 0 {
		t.Fatalf("empty signatures similarity should be 0")
	}
}

// Property: similarity is symmetric and within [0, 1]; identical token
// streams always score 1.
func TestPropertySimilarityAxioms(t *testing.T) {
	vocab := []string{"v0", "v1", "v2", "v3", "v4", "v5"}
	mk := func(sel []uint8) []string {
		out := make([]string, len(sel))
		for i, s := range sel {
			out[i] = vocab[int(s)%len(vocab)]
		}
		return out
	}
	f := func(a, b []uint8) bool {
		sa, sb := Sketch(mk(a)), Sketch(mk(b))
		ab, ba := sa.Similarity(sb), sb.Similarity(sa)
		if ab != ba || ab < 0 || ab > 1 {
			return false
		}
		return Sketch(mk(a)).Similarity(sa) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSketch(b *testing.B) {
	tokens := toks(strings.Repeat("comment text with several words in it ", 30))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Sketch(tokens)
	}
}

func BenchmarkSimilarity(b *testing.B) {
	s1 := Sketch(toks(strings.Repeat("a b c d e f g ", 20)))
	s2 := Sketch(toks(strings.Repeat("a b c d e f h ", 20)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s1.Similarity(s2)
	}
}

// TestSimHashNearDuplicates: near-identical texts share most fingerprint
// bits (high chunk agreement), unrelated texts share few.
func TestSimHashNearDuplicates(t *testing.T) {
	base := strings.Fields(strings.Repeat("the quick brown fox jumps over the lazy dog near the riverbank today ", 8))
	tweaked := append(append([]string{}, base...), "tick-42")
	other := strings.Fields(strings.Repeat("completely different subject matter entirely unrelated to anything above ", 8))

	sBase := SimHashSketch(base)
	sTweak := SimHashSketch(tweaked)
	sOther := SimHashSketch(other)
	if len(sBase) != SimHashSignatureSize {
		t.Fatalf("signature length %d, want %d", len(sBase), SimHashSignatureSize)
	}
	near := sBase.Similarity(sTweak)
	far := sBase.Similarity(sOther)
	if near <= far {
		t.Fatalf("simhash does not separate: near %v <= far %v", near, far)
	}
	if near < 0.5 {
		t.Fatalf("near-duplicate chunk agreement %v, want >= 0.5", near)
	}
	if far > 0.5 {
		t.Fatalf("unrelated chunk agreement %v, want < 0.5", far)
	}
}

// TestSimHashSignatureChunks pins the fingerprint→Signature widening:
// chunk i is exactly bits [4i, 4i+4) of the fingerprint, so Hamming
// distance bounds chunk disagreement.
func TestSimHashSignatureChunks(t *testing.T) {
	const fp = uint64(0xFEDC_BA98_7654_3210)
	sig := SimHashSignature(fp)
	for i, v := range sig {
		want := fp >> (uint(i) * SimHashChunkBits) & 0xF
		if v != want {
			t.Fatalf("chunk %d = %x, want %x", i, v, want)
		}
	}
	// Flipping one bit changes exactly one chunk.
	flipped := SimHashSignature(fp ^ (1 << 17))
	diff := 0
	for i := range sig {
		if sig[i] != flipped[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("one flipped bit changed %d chunks, want 1", diff)
	}
}

// TestSimHashDeterministic: equal token streams give equal fingerprints.
func TestSimHashDeterministic(t *testing.T) {
	tokens := strings.Fields("alpha beta gamma delta epsilon zeta eta theta")
	if SimHash(Shingles(tokens, DefaultK)) != SimHash(Shingles(tokens, DefaultK)) {
		t.Fatal("simhash not deterministic")
	}
	if SimHash(Shingles(nil, DefaultK)) != 0 {
		t.Fatal("empty shingle set should vote every bit negative")
	}
}
