// Package shingle implements near-duplicate text detection with
// k-shingles and two sketch families — MinHash signatures (Broder's
// shingling) and simhash fingerprints (Charikar's random projections) —
// the technique family the thesis's related-work chapter points at for
// the *semantic duplicates* the exact content hash cannot catch.
//
// The crawler uses it against challenge #3 of the thesis introduction
// ("very granular events ... can lead to a large set of very similar
// states"): states whose estimated similarity to an existing state
// exceeds a threshold are merged instead of exploding the model. Both
// families produce a Signature, and Signature.Similarity (fraction of
// agreeing positions) is the single verification metric; internal/lsh
// indexes Signatures by band so the admitter probes buckets instead of
// scanning every admitted state.
package shingle

import (
	"hash/fnv"
	"math"
)

// DefaultK is the shingle width in tokens. 3 balances sensitivity and
// robustness for comment-sized texts.
const DefaultK = 3

// DefaultSignatureSize is the number of MinHash permutations. 64 gives a
// standard error of ~1/8 on the Jaccard estimate, enough for a 0.9
// merge threshold.
const DefaultSignatureSize = 64

// Shingles returns the set of hashed k-shingles of a token stream. Texts
// shorter than k yield a single shingle of all tokens.
func Shingles(tokens []string, k int) map[uint64]struct{} {
	if k <= 0 {
		k = DefaultK
	}
	out := make(map[uint64]struct{})
	if len(tokens) == 0 {
		return out
	}
	if len(tokens) < k {
		out[hashShingle(tokens)] = struct{}{}
		return out
	}
	for i := 0; i+k <= len(tokens); i++ {
		out[hashShingle(tokens[i:i+k])] = struct{}{}
	}
	return out
}

func hashShingle(tokens []string) uint64 {
	h := fnv.New64a()
	for _, t := range tokens {
		h.Write([]byte(t))
		h.Write([]byte{0})
	}
	return h.Sum64()
}

// Jaccard computes the exact Jaccard similarity of two shingle sets.
func Jaccard(a, b map[uint64]struct{}) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	small, large := a, b
	if len(small) > len(large) {
		small, large = large, small
	}
	inter := 0
	for s := range small {
		if _, ok := large[s]; ok {
			inter++
		}
	}
	return float64(inter) / float64(len(a)+len(b)-inter)
}

// Signature is a MinHash sketch of a shingle set: element i is the
// minimum of permutation i over the set. Equal-length signatures can
// estimate Jaccard similarity in O(len) regardless of set sizes.
type Signature []uint64

// MinHash computes an n-element signature of a shingle set. The i-th
// "permutation" is the multiply-xor-shift mix of the shingle with the
// i-th odd constant — the standard cheap family.
func MinHash(shingles map[uint64]struct{}, n int) Signature {
	if n <= 0 {
		n = DefaultSignatureSize
	}
	sig := make(Signature, n)
	for i := range sig {
		sig[i] = math.MaxUint64
	}
	if len(shingles) == 0 {
		return sig
	}
	for s := range shingles {
		for i := range sig {
			if v := mix(s, uint64(2*i+1)); v < sig[i] {
				sig[i] = v
			}
		}
	}
	return sig
}

// mix is a 64-bit finalizer-style hash parameterized by seed.
func mix(x, seed uint64) uint64 {
	x ^= seed * 0x9E3779B97F4A7C15
	x ^= x >> 33
	x *= 0xFF51AFD7ED558CCD
	x ^= x >> 33
	x *= 0xC4CEB9FE1A85EC53
	x ^= x >> 33
	return x
}

// Similarity estimates the Jaccard similarity of the underlying sets as
// the fraction of agreeing signature positions. Panics on length
// mismatch (caller bug).
func (s Signature) Similarity(o Signature) float64 {
	if len(s) != len(o) {
		panic("shingle: signature length mismatch")
	}
	if len(s) == 0 {
		return 0
	}
	agree := 0
	for i := range s {
		if s[i] == o[i] {
			agree++
		}
	}
	return float64(agree) / float64(len(s))
}

// Sketch is the one-call convenience: tokens → MinHash signature with
// default parameters.
func Sketch(tokens []string) Signature {
	return MinHash(Shingles(tokens, DefaultK), DefaultSignatureSize)
}
