package html

import (
	"strings"
	"testing"
	"testing/quick"

	"ajaxcrawl/internal/dom"
)

func TestParseBasicDocument(t *testing.T) {
	doc := Parse(`<!DOCTYPE html><html><head><title>T</title></head><body><div id="a">hi</div></body></html>`)
	if doc.Type != dom.DocumentNode {
		t.Fatalf("not a document")
	}
	div := doc.ElementByID("a")
	if div == nil || div.TextContent() != "hi" {
		t.Fatalf("div#a missing or wrong: %v", div)
	}
	if doc.Body() == nil {
		t.Fatalf("no body")
	}
}

func TestParseSynthesizesHTMLAndBody(t *testing.T) {
	doc := Parse(`<p>hello</p>`)
	body := doc.Body()
	if body == nil {
		t.Fatalf("body not synthesized")
	}
	if got := body.TextContent(); got != "hello" {
		t.Fatalf("body text = %q", got)
	}
}

func TestParseAttributes(t *testing.T) {
	doc := Parse(`<div id="x" class='y z' disabled data-n=5 onclick="f(1, 'a')">t</div>`)
	d := doc.ElementByID("x")
	if d == nil {
		t.Fatalf("no div")
	}
	if v, _ := d.GetAttr("class"); v != "y z" {
		t.Fatalf("class = %q", v)
	}
	if v, ok := d.GetAttr("disabled"); !ok || v != "" {
		t.Fatalf("bare attribute wrong: %q %v", v, ok)
	}
	if v, _ := d.GetAttr("data-n"); v != "5" {
		t.Fatalf("unquoted attr = %q", v)
	}
	if v, _ := d.GetAttr("onclick"); v != "f(1, 'a')" {
		t.Fatalf("onclick = %q", v)
	}
}

func TestParseEntityDecodingInTextAndAttrs(t *testing.T) {
	doc := Parse(`<div title="a &amp; b">x &lt; y &#65; &#x42; &nbsp;&bogus; &amp</div>`)
	d := doc.ElementsByTag("div")[0]
	if v, _ := d.GetAttr("title"); v != "a & b" {
		t.Fatalf("attr entity = %q", v)
	}
	got := d.TextContent()
	if !strings.Contains(got, "x < y A B") {
		t.Fatalf("text entities = %q", got)
	}
	// Unknown named entities and the unterminated trailing &amp stay verbatim.
	if !strings.Contains(got, "&bogus;") || !strings.HasSuffix(got, "&amp") {
		t.Fatalf("malformed entities should be verbatim: %q", got)
	}
}

func TestParseScriptRawText(t *testing.T) {
	src := `<script>if (a < b && c > d) { s = "<div>not a tag</div>"; }</script>`
	doc := Parse(src)
	scripts := doc.ElementsByTag("script")
	if len(scripts) != 1 {
		t.Fatalf("want 1 script, got %d", len(scripts))
	}
	code := scripts[0].FirstChild.Data
	if !strings.Contains(code, `s = "<div>not a tag</div>";`) {
		t.Fatalf("script content mangled: %q", code)
	}
	// No <div> element must have been created inside the script.
	if len(doc.ElementsByTag("div")) != 0 {
		t.Fatalf("tag created inside raw text")
	}
}

func TestParseUnterminatedScript(t *testing.T) {
	doc := Parse(`<body><script>var x = 1;`)
	s := doc.ElementsByTag("script")
	if len(s) != 1 || s[0].FirstChild == nil || !strings.Contains(s[0].FirstChild.Data, "var x = 1;") {
		t.Fatalf("unterminated script lost: %v", s)
	}
}

func TestParseImpliedEndTags(t *testing.T) {
	doc := Parse(`<ul><li>one<li>two<li>three</ul>`)
	lis := doc.ElementsByTag("li")
	if len(lis) != 3 {
		t.Fatalf("want 3 li, got %d", len(lis))
	}
	for i, want := range []string{"one", "two", "three"} {
		if got := lis[i].TextContent(); got != want {
			t.Fatalf("li[%d] = %q, want %q", i, got, want)
		}
	}
	// li elements must be siblings, not nested.
	if lis[1].Parent != lis[0].Parent {
		t.Fatalf("li nested instead of sibling")
	}
}

func TestParseImpliedParagraphClose(t *testing.T) {
	doc := Parse(`<p>one<p>two<div>three</div>`)
	ps := doc.ElementsByTag("p")
	if len(ps) != 2 {
		t.Fatalf("want 2 p, got %d", len(ps))
	}
	if ps[0].TextContent() != "one" || ps[1].TextContent() != "two" {
		t.Fatalf("p contents wrong: %q %q", ps[0].TextContent(), ps[1].TextContent())
	}
}

func TestParseTableCells(t *testing.T) {
	doc := Parse(`<table><tr><td>a<td>b<tr><td>c</table>`)
	if got := len(doc.ElementsByTag("tr")); got != 2 {
		t.Fatalf("want 2 tr, got %d", got)
	}
	if got := len(doc.ElementsByTag("td")); got != 3 {
		t.Fatalf("want 3 td, got %d", got)
	}
}

func TestParseVoidElements(t *testing.T) {
	doc := Parse(`<div><br><img src="x.png"><input type="text">after</div>`)
	div := doc.ElementsByTag("div")[0]
	if got := len(div.Children()); got != 4 {
		t.Fatalf("void elements nested: %d children", got)
	}
	if div.LastChild.Data != "after" {
		t.Fatalf("text after voids misplaced: %q", div.LastChild.Data)
	}
}

func TestParseSelfClosing(t *testing.T) {
	doc := Parse(`<div><span/>x</div>`)
	span := doc.ElementsByTag("span")[0]
	if span.FirstChild != nil {
		t.Fatalf("self-closing tag must not take children")
	}
}

func TestParseUnmatchedEndTagIgnored(t *testing.T) {
	doc := Parse(`<div>a</span>b</div>`)
	div := doc.ElementsByTag("div")[0]
	if got := div.TextContent(); got != "ab" {
		t.Fatalf("text = %q", got)
	}
}

func TestParseComments(t *testing.T) {
	doc := Parse(`<div><!-- hidden <b>not bold</b> -->x</div>`)
	if len(doc.ElementsByTag("b")) != 0 {
		t.Fatalf("element created inside comment")
	}
	if got := doc.ElementsByTag("div")[0].TextContent(); got != "x" {
		t.Fatalf("text = %q", got)
	}
}

func TestParseStrayLessThan(t *testing.T) {
	doc := Parse(`<div>1 < 2 and 3 > 2</div>`)
	got := doc.ElementsByTag("div")[0].TextContent()
	if !strings.Contains(got, "1 < 2") {
		t.Fatalf("stray < lost: %q", got)
	}
}

func TestParseFragment(t *testing.T) {
	nodes := ParseFragment(`text <b>bold</b> tail`)
	if len(nodes) != 3 {
		t.Fatalf("want 3 fragment nodes, got %d", len(nodes))
	}
	if nodes[1].Data != "b" {
		t.Fatalf("middle node = %q", nodes[1].Data)
	}
	for _, n := range nodes {
		if n.Parent != nil {
			t.Fatalf("fragment nodes must be detached")
		}
	}
}

func TestSetInnerHTML(t *testing.T) {
	doc := Parse(`<div id="c"><p>old</p></div>`)
	div := doc.ElementByID("c")
	SetInnerHTML(div, `<span>new</span> content`)
	if len(doc.ElementsByTag("p")) != 0 {
		t.Fatalf("old content not removed")
	}
	if got := div.TextContent(); got != "new content" {
		t.Fatalf("new content = %q", got)
	}
	if div.FirstChild.Data != "span" {
		t.Fatalf("first child = %q", div.FirstChild.Data)
	}
}

func TestParseRenderRoundTrip(t *testing.T) {
	src := `<html><body><div id="a" class="b">x<span>y</span><br>z</div></body></html>`
	doc := Parse(src)
	out := dom.OuterHTML(doc)
	doc2 := Parse(out)
	if dom.CanonicalHash(doc) != dom.CanonicalHash(doc2) {
		t.Fatalf("render/reparse changed canonical hash:\n%s\n%s", out, dom.OuterHTML(doc2))
	}
}

// Property: parsing never panics and always yields a document with a body,
// for arbitrary byte soup.
func TestPropertyParseTotalAndShaped(t *testing.T) {
	f := func(s string) bool {
		doc := Parse(s)
		return doc.Type == dom.DocumentNode && doc.Body() != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: render→parse→render is a fixpoint (idempotent serialization).
func TestPropertyRenderParseFixpoint(t *testing.T) {
	f := func(s string) bool {
		d1 := Parse(s)
		r1 := dom.OuterHTML(d1)
		d2 := Parse(r1)
		r2 := dom.OuterHTML(d2)
		return r1 == r2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestUnescapeEntitiesTable(t *testing.T) {
	cases := []struct{ in, want string }{
		{"no entities", "no entities"},
		{"&amp;", "&"},
		{"&lt;&gt;", "<>"},
		{"&#65;", "A"},
		{"&#x41;", "A"},
		{"&#X41;", "A"},
		{"a&nbsp;b", "a\u00a0b"}, // &nbsp; is U+00A0
		{"&unknown;", "&unknown;"},
		{"&#;", "&#;"},
		{"&#x;", "&#x;"},
		{"&#xZZ;", "&#xZZ;"},
		{"&", "&"},
		{"&&amp;&", "&&&"},
		{"&#0;", "&#0;"},             // NUL rejected
		{"&#1114112;", "&#1114112;"}, // beyond Unicode
		{"tail&amp", "tail&amp"},     // unterminated
	}
	for _, c := range cases {
		if got := UnescapeEntities(c.in); got != c.want {
			t.Errorf("UnescapeEntities(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func BenchmarkParseWatchPageSized(b *testing.B) {
	var sb strings.Builder
	sb.WriteString("<html><head><title>t</title></head><body>")
	for i := 0; i < 100; i++ {
		sb.WriteString(`<div class="comment"><span class="author">user</span> some comment text with several words</div>`)
	}
	sb.WriteString("</body></html>")
	src := sb.String()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Parse(src)
	}
}
