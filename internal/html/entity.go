package html

import (
	"strconv"
	"strings"
)

// namedEntities maps the named character references that appear in
// real-world pages we care about. The full HTML5 table has ~2200 entries;
// this subset covers what the synthetic site and common pages emit.
var namedEntities = map[string]rune{
	"amp":    '&',
	"lt":     '<',
	"gt":     '>',
	"quot":   '"',
	"apos":   '\'',
	"nbsp":   ' ',
	"copy":   '©',
	"reg":    '®',
	"trade":  '™',
	"hellip": '…',
	"mdash":  '—',
	"ndash":  '–',
	"lsquo":  '‘',
	"rsquo":  '’',
	"ldquo":  '“',
	"rdquo":  '”',
	"laquo":  '«',
	"raquo":  '»',
	"middot": '·',
	"bull":   '•',
	"deg":    '°',
	"plusmn": '±',
	"times":  '×',
	"divide": '÷',
	"frac12": '½',
	"eacute": 'é',
	"egrave": 'è',
	"agrave": 'à',
	"uuml":   'ü',
	"ouml":   'ö',
	"auml":   'ä',
	"szlig":  'ß',
	"ccedil": 'ç',
	"euro":   '€',
	"pound":  '£',
	"yen":    '¥',
	"cent":   '¢',
	"sect":   '§',
	"para":   '¶',
}

// UnescapeEntities decodes named and numeric character references in s.
// Unknown or malformed references are left verbatim, as browsers do.
func UnescapeEntities(s string) string {
	amp := strings.IndexByte(s, '&')
	if amp < 0 {
		return s
	}
	var b strings.Builder
	b.Grow(len(s))
	b.WriteString(s[:amp])
	i := amp
	for i < len(s) {
		c := s[i]
		if c != '&' {
			b.WriteByte(c)
			i++
			continue
		}
		r, width, ok := decodeEntity(s[i:])
		if !ok {
			b.WriteByte('&')
			i++
			continue
		}
		b.WriteRune(r)
		i += width
	}
	return b.String()
}

// decodeEntity decodes one reference starting at "&". It returns the rune,
// the number of input bytes consumed, and whether decoding succeeded.
func decodeEntity(s string) (rune, int, bool) {
	// s[0] == '&'
	if len(s) < 3 {
		return 0, 0, false
	}
	if s[1] == '#' {
		// Numeric: &#123; or &#x1F;
		j := 2
		hex := false
		if j < len(s) && (s[j] == 'x' || s[j] == 'X') {
			hex = true
			j++
		}
		k := j
		for k < len(s) && isEntityDigit(s[k], hex) {
			k++
		}
		if k == j || k >= len(s) || s[k] != ';' {
			return 0, 0, false
		}
		base := 10
		if hex {
			base = 16
		}
		n, err := strconv.ParseInt(s[j:k], base, 32)
		if err != nil || n <= 0 || n > 0x10FFFF {
			return 0, 0, false
		}
		return rune(n), k + 1, true
	}
	// Named.
	j := 1
	for j < len(s) && j < 12 && isAlnumByte(s[j]) {
		j++
	}
	if j >= len(s) || s[j] != ';' {
		return 0, 0, false
	}
	if r, ok := namedEntities[s[1:j]]; ok {
		return r, j + 1, true
	}
	return 0, 0, false
}

func isEntityDigit(b byte, hex bool) bool {
	if b >= '0' && b <= '9' {
		return true
	}
	if !hex {
		return false
	}
	return b >= 'a' && b <= 'f' || b >= 'A' && b <= 'F'
}

func isAlnumByte(b byte) bool {
	return b >= 'a' && b <= 'z' || b >= 'A' && b <= 'Z' || b >= '0' && b <= '9'
}
