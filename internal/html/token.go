// Package html implements a lenient HTML tokenizer and tree builder that
// produces dom trees. It plays the role the COBRA toolkit plays in the
// thesis implementation: turning fetched markup — full pages and AJAX
// response fragments — into a scriptable DOM.
//
// The parser is deliberately forgiving (real-world markup is messy): it
// auto-closes implied end tags (<li>, <p>, <td>, ...), treats script and
// style as raw text, tolerates unclosed elements at EOF, and decodes the
// common named and numeric character references.
package html

import (
	"strings"
)

// TokenType identifies a lexical token produced by the Tokenizer.
type TokenType int

// Token kinds.
const (
	ErrorToken TokenType = iota // end of input
	TextToken
	StartTagToken
	EndTagToken
	SelfClosingTagToken
	CommentToken
	DoctypeToken
)

// Token is one lexical token. Data holds the tag name (lower-case) for
// tag tokens and the (entity-decoded) text for text/comment tokens.
type Token struct {
	Type TokenType
	Data string
	Attr []Attr
}

// Attr is a raw attribute parsed from a tag.
type Attr struct {
	Key string
	Val string
}

// Tokenizer splits HTML input into tokens. It never fails: malformed
// input degrades to text tokens.
type Tokenizer struct {
	src     string
	pos     int
	rawTag  string // non-empty while inside <script>/<style>: consume until matching end tag
	pending *Token // queued token (used when a raw-text element produces text then end tag)
}

// NewTokenizer returns a Tokenizer reading from src.
func NewTokenizer(src string) *Tokenizer {
	return &Tokenizer{src: src}
}

// Next returns the next token. After the input is exhausted it returns
// tokens of type ErrorToken forever.
func (z *Tokenizer) Next() Token {
	if z.pending != nil {
		t := *z.pending
		z.pending = nil
		return t
	}
	if z.rawTag != "" {
		return z.rawText()
	}
	if z.pos >= len(z.src) {
		return Token{Type: ErrorToken}
	}
	if z.src[z.pos] == '<' {
		if t, ok := z.tryTag(); ok {
			return t
		}
		// A lone '<' that does not begin a tag: emit it as text.
	}
	return z.text()
}

// text consumes up to the next '<' (or EOF) and returns a TextToken.
func (z *Tokenizer) text() Token {
	start := z.pos
	if z.src[z.pos] == '<' {
		z.pos++ // the '<' that failed to parse as a tag
	}
	for z.pos < len(z.src) && z.src[z.pos] != '<' {
		z.pos++
	}
	return Token{Type: TextToken, Data: UnescapeEntities(z.src[start:z.pos])}
}

// rawText consumes raw content until the matching </rawTag>.
func (z *Tokenizer) rawText() Token {
	tag := z.rawTag
	lower := strings.ToLower(z.src[z.pos:])
	end := strings.Index(lower, "</"+tag)
	if end < 0 {
		// Unterminated raw text: consume the rest.
		text := z.src[z.pos:]
		z.pos = len(z.src)
		z.rawTag = ""
		if text == "" {
			return Token{Type: ErrorToken}
		}
		return Token{Type: TextToken, Data: text}
	}
	text := z.src[z.pos : z.pos+end]
	z.pos += end
	z.rawTag = ""
	// Consume the end tag itself and queue it.
	if t, ok := z.tryTag(); ok {
		if text == "" {
			return t
		}
		z.pending = &t
	}
	return Token{Type: TextToken, Data: text}
}

// tryTag attempts to parse a tag, comment, or doctype at z.pos (which
// must point at '<'). On failure it restores pos and returns false.
func (z *Tokenizer) tryTag() (Token, bool) {
	start := z.pos
	s := z.src
	i := z.pos + 1
	if i >= len(s) {
		return Token{}, false
	}
	switch {
	case strings.HasPrefix(s[i:], "!--"):
		return z.comment(), true
	case s[i] == '!' || s[i] == '?':
		// Doctype or processing instruction: consume to '>'.
		j := strings.IndexByte(s[i:], '>')
		if j < 0 {
			z.pos = len(s)
			return Token{Type: ErrorToken}, true
		}
		data := s[i+1 : i+j]
		z.pos = i + j + 1
		if len(data) >= 7 && strings.EqualFold(data[:7], "doctype") {
			return Token{Type: DoctypeToken, Data: strings.TrimSpace(data[7:])}, true
		}
		return Token{Type: CommentToken, Data: data}, true
	}
	closing := false
	if s[i] == '/' {
		closing = true
		i++
	}
	j := i
	for j < len(s) && isTagNameByte(s[j]) {
		j++
	}
	if j == i {
		z.pos = start
		return Token{}, false
	}
	name := strings.ToLower(s[i:j])
	tok := Token{Type: StartTagToken, Data: name}
	if closing {
		tok.Type = EndTagToken
	}
	i = j
	// Attributes.
	for {
		for i < len(s) && isSpaceByte(s[i]) {
			i++
		}
		if i >= len(s) {
			z.pos = len(s)
			break
		}
		if s[i] == '>' {
			i++
			z.pos = i
			break
		}
		if s[i] == '/' && i+1 < len(s) && s[i+1] == '>' {
			if tok.Type == StartTagToken {
				tok.Type = SelfClosingTagToken
			}
			i += 2
			z.pos = i
			break
		}
		// Attribute name.
		k := i
		for i < len(s) && !isSpaceByte(s[i]) && s[i] != '=' && s[i] != '>' && s[i] != '/' {
			i++
		}
		key := strings.ToLower(s[k:i])
		val := ""
		for i < len(s) && isSpaceByte(s[i]) {
			i++
		}
		if i < len(s) && s[i] == '=' {
			i++
			for i < len(s) && isSpaceByte(s[i]) {
				i++
			}
			if i < len(s) && (s[i] == '"' || s[i] == '\'') {
				q := s[i]
				i++
				v := i
				for i < len(s) && s[i] != q {
					i++
				}
				val = s[v:i]
				if i < len(s) {
					i++ // closing quote
				}
			} else {
				v := i
				for i < len(s) && !isSpaceByte(s[i]) && s[i] != '>' {
					i++
				}
				val = s[v:i]
			}
		}
		if key != "" {
			tok.Attr = append(tok.Attr, Attr{Key: key, Val: UnescapeEntities(val)})
		}
	}
	if tok.Type == StartTagToken && isRawTextTag(name) {
		z.rawTag = name
	}
	return tok, true
}

func (z *Tokenizer) comment() Token {
	s := z.src
	i := z.pos + 4 // past "<!--"
	end := strings.Index(s[i:], "-->")
	if end < 0 {
		data := s[i:]
		z.pos = len(s)
		return Token{Type: CommentToken, Data: data}
	}
	data := s[i : i+end]
	z.pos = i + end + 3
	return Token{Type: CommentToken, Data: data}
}

func isTagNameByte(b byte) bool {
	return b >= 'a' && b <= 'z' || b >= 'A' && b <= 'Z' || b >= '0' && b <= '9' || b == '-' || b == ':'
}

func isSpaceByte(b byte) bool {
	return b == ' ' || b == '\t' || b == '\n' || b == '\r' || b == '\f'
}

func isRawTextTag(name string) bool {
	switch name {
	case "script", "style", "textarea", "title":
		return true
	}
	return false
}
