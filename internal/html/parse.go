package html

import (
	"ajaxcrawl/internal/dom"
)

// impliedEndTags lists, per tag, the open tags that an incoming start tag
// implicitly closes. E.g. a new <li> closes an open <li>.
var impliedEndTags = map[string][]string{
	"li":       {"li"},
	"dt":       {"dt", "dd"},
	"dd":       {"dt", "dd"},
	"p":        {"p"},
	"option":   {"option"},
	"optgroup": {"option", "optgroup"},
	"tr":       {"tr", "td", "th"},
	"td":       {"td", "th"},
	"th":       {"td", "th"},
	"thead":    {"tr", "td", "th", "tbody", "thead", "tfoot"},
	"tbody":    {"tr", "td", "th", "tbody", "thead", "tfoot"},
	"tfoot":    {"tr", "td", "th", "tbody", "thead", "tfoot"},
	"h1":       {"p"},
	"h2":       {"p"},
	"h3":       {"p"},
	"h4":       {"p"},
	"h5":       {"p"},
	"h6":       {"p"},
	"ul":       {"p"},
	"ol":       {"p"},
	"div":      {"p"},
	"table":    {"p"},
}

// Parse parses a full HTML document and returns a dom DocumentNode. The
// parse is lenient and never fails; garbage input produces a tree with
// whatever could be salvaged. An <html> and <body> element are
// synthesized when missing so that callers can always rely on doc.Body().
func Parse(src string) *dom.Node {
	doc := dom.NewDocument()
	p := &parser{doc: doc}
	p.run(src)
	ensureDocumentShape(doc)
	return doc
}

// ParseFragment parses an HTML fragment (such as an AJAX response used
// for innerHTML assignment) and returns the top-level nodes. No html/body
// wrapping is applied.
func ParseFragment(src string) []*dom.Node {
	root := dom.NewElement("#fragment")
	p := &parser{doc: root}
	p.run(src)
	kids := root.Children()
	for _, k := range kids {
		root.RemoveChild(k)
	}
	return kids
}

// SetInnerHTML replaces n's children with the parse of src. This is the
// DOM mutation behind the JavaScript `element.innerHTML = ...` action the
// AJAX pages use to swap in fetched content.
func SetInnerHTML(n *dom.Node, src string) {
	n.RemoveChildren()
	n.AppendChildren(ParseFragment(src))
}

type parser struct {
	doc   *dom.Node
	stack []*dom.Node // open elements; stack[0] is doc
}

func (p *parser) run(src string) {
	p.stack = []*dom.Node{p.doc}
	z := NewTokenizer(src)
	for {
		t := z.Next()
		switch t.Type {
		case ErrorToken:
			return
		case TextToken:
			if t.Data != "" {
				p.top().AppendChild(dom.NewText(t.Data))
			}
		case CommentToken:
			p.top().AppendChild(&dom.Node{Type: dom.CommentNode, Data: t.Data})
		case DoctypeToken:
			p.top().AppendChild(&dom.Node{Type: dom.DoctypeNode, Data: t.Data})
		case StartTagToken, SelfClosingTagToken:
			p.startTag(t)
		case EndTagToken:
			p.endTag(t.Data)
		}
	}
}

func (p *parser) top() *dom.Node { return p.stack[len(p.stack)-1] }

func (p *parser) startTag(t Token) {
	if closes, ok := impliedEndTags[t.Data]; ok {
		p.closeImplied(closes)
	}
	el := &dom.Node{Type: dom.ElementNode, Data: t.Data}
	for _, a := range t.Attr {
		el.Attr = append(el.Attr, dom.Attribute{Key: a.Key, Val: a.Val})
	}
	p.top().AppendChild(el)
	if t.Type == SelfClosingTagToken || dom.IsVoidElement(t.Data) {
		return
	}
	p.stack = append(p.stack, el)
}

// closeImplied pops open elements whose tags are in closes, but only if
// one of them is the current innermost element chain (stop at structural
// boundaries like table/ul for safety).
func (p *parser) closeImplied(closes []string) {
	for len(p.stack) > 1 {
		cur := p.top().Data
		found := false
		for _, c := range closes {
			if cur == c {
				found = true
				break
			}
		}
		if !found {
			return
		}
		p.stack = p.stack[:len(p.stack)-1]
	}
}

func (p *parser) endTag(name string) {
	// Find the matching open element (from the top); if found, pop
	// through it. Unmatched end tags are ignored.
	for i := len(p.stack) - 1; i >= 1; i-- {
		if p.stack[i].Data == name {
			p.stack = p.stack[:i]
			return
		}
	}
}

// ensureDocumentShape guarantees the document has html > body structure,
// moving stray top-level content into the body. head children (title,
// meta, link, script found before body content) stay in head when an
// explicit head exists; otherwise everything goes into body, which is
// sufficient for crawling purposes.
func ensureDocumentShape(doc *dom.Node) {
	var htmlEl *dom.Node
	for c := doc.FirstChild; c != nil; c = c.NextSibling {
		if c.Type == dom.ElementNode && c.Data == "html" {
			htmlEl = c
			break
		}
	}
	if htmlEl == nil {
		htmlEl = dom.NewElement("html")
		// Move everything except the doctype under html.
		var move []*dom.Node
		for c := doc.FirstChild; c != nil; c = c.NextSibling {
			if c.Type != dom.DoctypeNode {
				move = append(move, c)
			}
		}
		for _, m := range move {
			doc.RemoveChild(m)
		}
		doc.AppendChild(htmlEl)
		htmlEl.AppendChildren(move)
	}
	var bodyEl *dom.Node
	for c := htmlEl.FirstChild; c != nil; c = c.NextSibling {
		if c.Type == dom.ElementNode && c.Data == "body" {
			bodyEl = c
			break
		}
	}
	if bodyEl == nil {
		bodyEl = dom.NewElement("body")
		var move []*dom.Node
		for c := htmlEl.FirstChild; c != nil; c = c.NextSibling {
			if c.Type == dom.ElementNode && c.Data == "head" {
				continue
			}
			move = append(move, c)
		}
		for _, m := range move {
			htmlEl.RemoveChild(m)
		}
		htmlEl.AppendChild(bodyEl)
		bodyEl.AppendChildren(move)
	}
}
