package query

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"ajaxcrawl/internal/index"
)

// serveSnapshotN builds a fresh ServeSnapshot over n single-state docs
// that all contain the term "alpha". Each call returns a new snapshot —
// Swap assigns Gen/Docs/States on its argument, so snapshots are never
// reused across swaps.
func serveSnapshotN(n int) *ServeSnapshot {
	pages := make(map[string][]string, n)
	texts := make(map[string]string, n)
	for i := 0; i < n; i++ {
		url := fmt.Sprintf("url%d", i)
		text := fmt.Sprintf("alpha content number %d", i)
		pages[url] = []string{text}
		texts[url] = text
	}
	ix := buildIndex(pages, nil)
	return &ServeSnapshot{
		Broker:    NewBroker([]*index.Index{ix}),
		StateText: func(url string, state int) string { return texts[url] },
	}
}

// TestServerCacheAndSwap: the second identical query is a cache hit (no
// broker evaluation), a hot swap invalidates the cache and bumps the
// generation, and the same snapshot content re-answers identically.
func TestServerCacheAndSwap(t *testing.T) {
	ctx, reg := cacheTestCtx(t)
	srv := NewServer(serveSnapshotN(2), CacheOptions{Shards: 2, Capacity: 16})

	res1, snap, cached := srv.Search(ctx, "alpha", 10)
	if cached {
		t.Fatal("first query reported cached")
	}
	if snap.Gen != 1 || snap.Docs != 2 || snap.States != 2 {
		t.Fatalf("snapshot meta = gen %d, %d docs, %d states", snap.Gen, snap.Docs, snap.States)
	}
	if len(res1) != 2 {
		t.Fatalf("got %d results, want 2", len(res1))
	}
	for _, r := range res1 {
		if r.Snippet == "" {
			t.Fatalf("missing snippet for %s", r.URL)
		}
	}
	evals := reg.Counter("query.count").Value()

	// Same query again — and a differently-written but
	// identically-tokenized variant — must both come from the cache.
	res2, _, cached := srv.Search(ctx, "alpha", 10)
	if !cached {
		t.Fatal("repeat query missed the cache")
	}
	if _, _, cached := srv.Search(ctx, "  ALPHA!! ", 10); !cached {
		t.Fatal("normalized variant missed the cache")
	}
	if got := reg.Counter("query.count").Value(); got != evals {
		t.Fatalf("cache hits re-evaluated the query: query.count %d -> %d", evals, got)
	}
	if len(res2) != len(res1) || res2[0].URL != res1[0].URL || res2[0].Score != res1[0].Score {
		t.Fatalf("cached results differ: %+v vs %+v", res2, res1)
	}
	if reg.Counter("query.cache.hits").Value() != 2 {
		t.Fatalf("cache hits = %d, want 2", reg.Counter("query.cache.hits").Value())
	}

	// Hot swap to a 3-doc snapshot: new generation, cold cache, new
	// sizes — and the old results never reappear.
	old := srv.Swap(ctx, serveSnapshotN(3))
	if old == nil || old.Gen != 1 {
		t.Fatalf("Swap returned %+v, want the gen-1 snapshot", old)
	}
	if srv.Cache().Len() != 0 {
		t.Fatalf("cache kept %d entries across swap", srv.Cache().Len())
	}
	res3, snap3, cached := srv.Search(ctx, "alpha", 10)
	if cached {
		t.Fatal("post-swap query served from the invalidated cache")
	}
	if snap3.Gen != 2 || snap3.Docs != 3 || len(res3) != 3 {
		t.Fatalf("post-swap: gen %d, %d docs, %d results", snap3.Gen, snap3.Docs, len(res3))
	}
	// Only the explicit swap lands on this registry: NewServer's initial
	// install runs before any request context exists.
	if reg.Counter("query.serve.swaps").Value() != 1 {
		t.Fatalf("swaps counter = %d", reg.Counter("query.serve.swaps").Value())
	}
	if reg.Gauge("query.serve.snapshot.docs").Value() != 3 {
		t.Fatalf("docs gauge = %d", reg.Gauge("query.serve.snapshot.docs").Value())
	}
}

// TestServerHotSwapRace hammers one Server with concurrent searches,
// repeated hot swaps and cache churn (run under -race in CI). The
// invariant: every response's snapshot is internally consistent — the
// generation determines the doc count, the result set size matches that
// snapshot (never the other one's), and generations only move forward.
func TestServerHotSwapRace(t *testing.T) {
	ctx := context.Background() // no registry: exercises the nil-telemetry path too
	const (
		swaps   = 300
		readers = 8
	)
	// Generation g serves 1 doc when g is odd, 2 docs when even.
	docsForGen := func(gen int64) int {
		if gen%2 == 1 {
			return 1
		}
		return 2
	}
	srv := NewServer(serveSnapshotN(1), CacheOptions{Shards: 4, Capacity: 8})

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < swaps; i++ {
			n := 2 // swap i installs generation i+2
			if (int64(i)+2)%2 == 1 {
				n = 1
			}
			srv.Swap(ctx, serveSnapshotN(n))
		}
	}()

	var wg sync.WaitGroup
	errc := make(chan error, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			var lastGen int64
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				// Vary k to churn distinct cache keys while swaps clear them.
				k := 4 + (i+r)%3
				res, snap, _ := srv.Search(ctx, "alpha", k)
				if snap.Gen < lastGen {
					errc <- fmt.Errorf("reader %d: generation went backwards: %d after %d", r, snap.Gen, lastGen)
					return
				}
				lastGen = snap.Gen
				want := docsForGen(snap.Gen)
				if snap.Docs != want {
					errc <- fmt.Errorf("reader %d: gen %d reports %d docs, want %d", r, snap.Gen, snap.Docs, want)
					return
				}
				if len(res) != want {
					errc <- fmt.Errorf("reader %d: gen %d returned %d results, want %d — stale snapshot data", r, snap.Gen, len(res), want)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	// All swaps drained: the final answer must come from the last
	// generation, not any earlier snapshot.
	finalGen := int64(swaps + 1)
	res, snap, _ := srv.Search(ctx, "alpha", 10)
	if snap.Gen != finalGen {
		t.Fatalf("final gen = %d, want %d", snap.Gen, finalGen)
	}
	if want := docsForGen(finalGen); len(res) != want || snap.Docs != want {
		t.Fatalf("final state: %d results, %d docs, want %d", len(res), snap.Docs, want)
	}
}
