package query

import (
	"strings"

	"ajaxcrawl/internal/index"
)

// Snippet generation: result presentation needs an excerpt of the state
// text around the query terms (the thesis GUI lists raw results; any
// user-facing search front end wants KWIC-style snippets with the match
// highlighted).

// SnippetOptions tune snippet extraction.
type SnippetOptions struct {
	// MaxTokens is the excerpt length in tokens (default 24).
	MaxTokens int
	// HighlightPre/Post wrap matched terms (default "[" and "]").
	HighlightPre  string
	HighlightPost string
}

func (o SnippetOptions) withDefaults() SnippetOptions {
	if o.MaxTokens == 0 {
		o.MaxTokens = 24
	}
	if o.HighlightPre == "" && o.HighlightPost == "" {
		o.HighlightPre, o.HighlightPost = "[", "]"
	}
	return o
}

// Snippet extracts an excerpt of text centered on the smallest window
// containing all query terms (the same minimal-window the proximity
// ranking uses), with matches highlighted. It returns "" when no term
// occurs.
func Snippet(text, queryStr string, opts SnippetOptions) string {
	opts = opts.withDefaults()
	terms := Parse(queryStr)
	if len(terms) == 0 {
		return ""
	}
	want := make(map[string]bool, len(terms))
	for _, t := range terms {
		want[t] = true
	}
	tokens := index.Tokenize(text)
	// Token positions per term.
	positions := make(map[string][]int)
	for pos, tok := range tokens {
		if want[tok] {
			positions[tok] = append(positions[tok], pos)
		}
	}
	if len(positions) == 0 {
		return ""
	}

	// Find the smallest window covering every *present* term (absent
	// terms are ignored so single-term matches still snippet).
	var lists [][]int
	for _, t := range terms {
		if ps := positions[t]; len(ps) > 0 {
			lists = append(lists, ps)
		}
	}
	lo, hi := minimalWindow(lists)

	// Expand the window to MaxTokens, centered.
	span := hi - lo + 1
	pad := (opts.MaxTokens - span) / 2
	if pad < 0 {
		pad = 0
	}
	start := lo - pad
	if start < 0 {
		start = 0
	}
	end := start + opts.MaxTokens
	if end > len(tokens) {
		end = len(tokens)
		if start = end - opts.MaxTokens; start < 0 {
			start = 0
		}
	}

	var b strings.Builder
	if start > 0 {
		b.WriteString("... ")
	}
	for i := start; i < end; i++ {
		if i > start {
			b.WriteByte(' ')
		}
		if want[tokens[i]] {
			b.WriteString(opts.HighlightPre)
			b.WriteString(tokens[i])
			b.WriteString(opts.HighlightPost)
		} else {
			b.WriteString(tokens[i])
		}
	}
	if end < len(tokens) {
		b.WriteString(" ...")
	}
	return b.String()
}

// minimalWindow returns the bounds (token positions) of the smallest
// window containing one entry from every list. Lists must be non-empty
// and sorted.
func minimalWindow(lists [][]int) (lo, hi int) {
	ptr := make([]int, len(lists))
	bestLo, bestHi := lists[0][0], lists[0][0]
	bestSpan := int(^uint(0) >> 1)
	for {
		curLo, curHi := int(^uint(0)>>1), -1
		loIdx := -1
		for i, ps := range lists {
			p := ps[ptr[i]]
			if p < curLo {
				curLo, loIdx = p, i
			}
			if p > curHi {
				curHi = p
			}
		}
		if span := curHi - curLo; span < bestSpan {
			bestSpan, bestLo, bestHi = span, curLo, curHi
		}
		ptr[loIdx]++
		if ptr[loIdx] >= len(lists[loIdx]) {
			return bestLo, bestHi
		}
	}
}

// ResultWithSnippet pairs a search result with its generated snippet.
type ResultWithSnippet struct {
	Result
	Snippet string
}

// AttachSnippets looks each result's state text up in the graphs map
// (URL → state texts) and generates snippets. Results whose text is not
// available get an empty snippet.
func AttachSnippets(results []Result, stateText func(url string, state int) string, q string, opts SnippetOptions) []ResultWithSnippet {
	out := make([]ResultWithSnippet, len(results))
	for i, r := range results {
		out[i] = ResultWithSnippet{Result: r}
		if stateText != nil {
			if text := stateText(r.URL, int(r.State)); text != "" {
				out[i].Snippet = Snippet(text, q, opts)
			}
		}
	}
	return out
}
