package query

import (
	"strings"
	"testing"

	"ajaxcrawl/internal/index"
)

// FuzzTokenizeQueryParse checks the properties the result cache's key
// normalization stands on: Parse never panics, always agrees with
// index.Tokenize (queries and documents must tokenize identically or
// conjunctions silently miss), emits only lowercase separator-free
// terms, and is idempotent — re-parsing the normalized join of the terms
// yields the same terms, so CacheKey maps a query and its normal form to
// the same entry.
func FuzzTokenizeQueryParse(f *testing.F) {
	seeds := []string{
		"",
		"funny dance",
		"Funny  Dance!!",
		"morcheeba+singer",
		"ALPHA-bravo_charlie9",
		"漢字 と kana ｶﾀｶﾅ",
		"a\x00b\tc",
		"\xff\xfe broken utf8 \x80",
		strings.Repeat("long ", 64),
		"state=3&q=enjoy+the+ride",
		"İstanbul STRASSE ẞ",
	}
	for _, s := range seeds {
		f.Add(s, 10)
	}
	f.Fuzz(func(t *testing.T, q string, k int) {
		terms := Parse(q)
		ref := index.Tokenize(q)
		if len(terms) != len(ref) {
			t.Fatalf("Parse/Tokenize disagree: %d vs %d terms", len(terms), len(ref))
		}
		for i := range terms {
			if terms[i] != ref[i] {
				t.Fatalf("term %d: Parse %q vs Tokenize %q", i, terms[i], ref[i])
			}
		}
		for _, term := range terms {
			if term == "" {
				t.Fatalf("empty term from %q", q)
			}
			if strings.ContainsAny(term, " \x1f") {
				t.Fatalf("term %q contains separator bytes", term)
			}
			if term != strings.ToLower(term) {
				t.Fatalf("term %q not lowercase", term)
			}
		}
		norm := strings.Join(terms, " ")
		renorm := Parse(norm)
		if len(renorm) != len(terms) {
			t.Fatalf("normalization not idempotent: %q -> %v -> %v", q, terms, renorm)
		}
		for i := range renorm {
			if renorm[i] != terms[i] {
				t.Fatalf("normalization not idempotent at %d: %q vs %q", i, renorm[i], terms[i])
			}
		}
		if CacheKey(q, k) != CacheKey(norm, k) {
			t.Fatalf("CacheKey(%q) != CacheKey(%q)", q, norm)
		}
	})
}
