package query

import (
	"context"
	"math"
	"sort"
	"testing"

	"ajaxcrawl/internal/index"
	"ajaxcrawl/internal/model"
	"ajaxcrawl/internal/obs"
)

// foldShardResult applies the router's global-idf fold to one shard's
// pre-idf candidates — the same arithmetic internal/router performs, in
// miniature, so the shard protocol can be checked against Broker.Search
// without importing the router package (which imports this one).
func foldShardResult(res *ShardResult, w Weights) []Result {
	idf := make([]float64, len(res.Terms))
	for i, df := range res.DF {
		if df > 0 && res.TotalStates > 0 {
			idf[i] = math.Log(float64(res.TotalStates) / float64(df))
		}
	}
	out := make([]Result, 0, len(res.Candidates))
	for _, c := range res.Candidates {
		score := c.Base
		for t := range res.Terms {
			score += w.TFIDF * c.TFs[t] * idf[t]
		}
		out = append(out, Result{URL: c.URL, State: model.StateID(c.State), Score: score})
	}
	// resultLess orders worst-first (heap order); best-first is its
	// inverse.
	sort.SliceStable(out, func(i, j int) bool { return resultLess(out[j], out[i]) })
	return out
}

// TestShardSearchFoldsBackToSearch is the protocol's local soundness
// check: on a single shard the local df IS the global df, so folding
// the shard response's pre-idf candidates with its own statistics must
// reproduce Broker.Search bit-for-bit — same docs, same float64 scores,
// same order. (The cross-shard half lives in internal/router's
// differential battery.)
func TestShardSearchFoldsBackToSearch(t *testing.T) {
	ix := thesisIndex()
	snap := &ServeSnapshot{Broker: NewBroker([]*index.Index{ix})}
	srv := NewServer(snap, CacheOptions{})

	for _, q := range []string{"morcheeba", "morcheeba video", "new singer", "nosuchterm", "the"} {
		res := srv.ShardSearch(context.Background(), q)
		want := snap.Broker.Search(q)
		got := foldShardResult(res, snap.Broker.W)
		if len(got) != len(want) {
			t.Fatalf("q=%q: folded %d results, Search %d", q, len(got), len(want))
		}
		for i := range want {
			if got[i].URL != want[i].URL || got[i].State != want[i].State || got[i].Score != want[i].Score {
				t.Fatalf("q=%q rank %d: folded %+v, Search %+v", q, i, got[i], want[i])
			}
		}
	}
}

// TestShardSearchReturnsAllCandidates: a shard must NOT truncate to a
// local top-k — local pre-idf order can differ from the global order,
// so any cut risks evicting a globally top-ranked document.
func TestShardSearchReturnsAllCandidates(t *testing.T) {
	ix := thesisIndex()
	snap := &ServeSnapshot{Broker: NewBroker([]*index.Index{ix})}
	srv := NewServer(snap, CacheOptions{})

	res := srv.ShardSearch(context.Background(), "morcheeba")
	want := snap.Broker.Search("morcheeba")
	if len(res.Candidates) != len(want) {
		t.Fatalf("shard returned %d candidates, full evaluation has %d matches",
			len(res.Candidates), len(want))
	}
	if res.TotalStates != ix.TotalStates {
		t.Fatalf("TotalStates = %d, want %d", res.TotalStates, ix.TotalStates)
	}
	if len(res.Terms) != 1 || res.Terms[0] != "morcheeba" {
		t.Fatalf("Terms = %v", res.Terms)
	}
	if len(res.DF) != 1 || res.DF[0] != len(want) {
		t.Fatalf("DF = %v, want [%d]", res.DF, len(want))
	}
	for i, c := range res.Candidates {
		if len(c.TFs) != 1 {
			t.Fatalf("candidate %d TFs = %v, want 1 entry per term", i, c.TFs)
		}
	}
}

// TestShardSearchSnippetsAndMetadata: snippets are attached shard-side
// (the state text never leaves the shard) and the snapshot metadata
// rides along.
func TestShardSearchSnippetsAndMetadata(t *testing.T) {
	texts := map[string]string{}
	pages := map[string][]string{
		"url1": {"morcheeba enjoy the ride official video"},
		"url2": {"morcheeba concert footage"},
	}
	for u, states := range pages {
		texts[u] = states[0]
	}
	ix := buildIndex(pages, nil)
	snap := &ServeSnapshot{
		Broker:    NewBroker([]*index.Index{ix}),
		StateText: func(url string, state int) string { return texts[url] },
	}
	srv := NewServer(snap, CacheOptions{})
	reg := obs.NewRegistry()
	ctx := obs.With(context.Background(), obs.New(reg, nil))

	res := srv.ShardSearch(ctx, "morcheeba")
	if res.Gen != 1 || res.Docs != 2 || res.States != 2 {
		t.Fatalf("metadata = gen %d, %d docs, %d states", res.Gen, res.Docs, res.States)
	}
	if len(res.Candidates) != 2 {
		t.Fatalf("candidates = %d, want 2", len(res.Candidates))
	}
	for _, c := range res.Candidates {
		if c.Snippet == "" {
			t.Fatalf("candidate %s has no snippet", c.URL)
		}
	}
	if got := reg.Counter("query.shard.requests").Value(); got != 1 {
		t.Fatalf("query.shard.requests = %d, want 1", got)
	}
	if got := reg.Counter("query.shard.candidates").Value(); got != 2 {
		t.Fatalf("query.shard.candidates = %d, want 2", got)
	}
}

// TestShardSearchEmptyQuery: no terms, no candidates — but the vectors
// are present (non-nil) so the response marshals predictably.
func TestShardSearchEmptyQuery(t *testing.T) {
	snap := &ServeSnapshot{Broker: NewBroker([]*index.Index{thesisIndex()})}
	srv := NewServer(snap, CacheOptions{})
	res := srv.ShardSearch(context.Background(), "...!!...")
	if len(res.Terms) != 0 || len(res.DF) != 0 || len(res.Candidates) != 0 {
		t.Fatalf("empty query result = %+v", res)
	}
	if res.Candidates == nil || res.DF == nil {
		t.Fatal("empty vectors must be non-nil for stable marshaling")
	}
}
