package query

import (
	"context"
	"testing"
	"time"

	"ajaxcrawl/internal/obs"
)

func cacheTestCtx(t *testing.T) (context.Context, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	return obs.With(context.Background(), obs.New(reg, nil)), reg
}

func fakeResults(url string) []ResultWithSnippet {
	return []ResultWithSnippet{{Result: Result{URL: url, State: 0, Score: 1}, Snippet: url}}
}

// TestCacheScriptedSequence drives a single-shard cache through a fixed
// access script on a virtual clock and pins the exact counter values at
// every step — hits, misses, LRU evictions and TTL expiries each have to
// land on precisely the operation that causes them.
func TestCacheScriptedSequence(t *testing.T) {
	ctx, reg := cacheTestCtx(t)
	now := time.Unix(1000, 0)
	c := NewResultCache(CacheOptions{
		Shards:   1, // single shard: global LRU order is deterministic
		Capacity: 2,
		TTL:      time.Minute,
		Now:      func() time.Time { return now },
	})
	const gen = 1
	c.Invalidate(gen)

	hits := reg.Counter("query.cache.hits")
	misses := reg.Counter("query.cache.misses")
	evictions := reg.Counter("query.cache.evictions")
	expired := reg.Counter("query.cache.expired")
	keyA, keyB, keyC := CacheKey("alpha", 5), CacheKey("bravo", 5), CacheKey("charlie", 5)

	check := func(step string, wantHits, wantMisses, wantEvict, wantExpired int64) {
		t.Helper()
		if hits.Value() != wantHits || misses.Value() != wantMisses ||
			evictions.Value() != wantEvict || expired.Value() != wantExpired {
			t.Fatalf("%s: counters hits=%d misses=%d evictions=%d expired=%d, want %d/%d/%d/%d",
				step, hits.Value(), misses.Value(), evictions.Value(), expired.Value(),
				wantHits, wantMisses, wantEvict, wantExpired)
		}
	}

	if _, ok := c.Get(ctx, keyA, gen); ok {
		t.Fatal("empty cache hit")
	}
	check("cold get A", 0, 1, 0, 0)

	c.Put(ctx, keyA, gen, fakeResults("a"))
	if v, ok := c.Get(ctx, keyA, gen); !ok || v[0].URL != "a" {
		t.Fatalf("get A after put = %v, %v", v, ok)
	}
	check("hit A", 1, 1, 0, 0)

	c.Put(ctx, keyB, gen, fakeResults("b"))
	if _, ok := c.Get(ctx, keyB, gen); !ok {
		t.Fatal("get B after put missed")
	}
	check("hit B", 2, 1, 0, 0)

	// Capacity is 2 and the LRU order is [B, A] (A was touched before
	// B): inserting C must evict exactly A.
	c.Put(ctx, keyC, gen, fakeResults("c"))
	check("insert C evicts A", 2, 1, 1, 0)
	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2", c.Len())
	}
	if _, ok := c.Get(ctx, keyA, gen); ok {
		t.Fatal("A survived eviction")
	}
	check("miss evicted A", 2, 2, 1, 0)
	if _, ok := c.Get(ctx, keyB, gen); !ok {
		t.Fatal("B evicted out of LRU order")
	}
	if _, ok := c.Get(ctx, keyC, gen); !ok {
		t.Fatal("C missing right after insert")
	}
	check("B and C still live", 4, 2, 1, 0)

	// Advance the virtual clock past the TTL: both entries expire, and
	// each expired lookup counts as miss + expired, not a hit.
	now = now.Add(time.Minute + time.Second)
	if _, ok := c.Get(ctx, keyB, gen); ok {
		t.Fatal("B served after TTL")
	}
	check("B expired", 4, 3, 1, 1)
	if c.Len() != 1 {
		t.Fatalf("len after expiry drop = %d, want 1", c.Len())
	}

	// Generation checks: a Put from a stale generation is dropped, and a
	// Get against an entry from another generation misses.
	c.Put(ctx, keyA, gen-1, fakeResults("stale"))
	if _, ok := c.Get(ctx, keyA, gen); ok {
		t.Fatal("stale-generation fill was served")
	}
	check("stale put dropped", 4, 4, 1, 1)

	c.Put(ctx, keyA, gen, fakeResults("a2"))
	c.Invalidate(gen + 1)
	if c.Len() != 0 {
		t.Fatalf("len after invalidate = %d, want 0", c.Len())
	}
	if _, ok := c.Get(ctx, keyA, gen+1); ok {
		t.Fatal("entry survived Invalidate")
	}
	check("post-swap miss", 4, 5, 1, 1)
}

// TestCacheKeyNormalization: queries that tokenize identically share one
// cache entry; different k values do not.
func TestCacheKeyNormalization(t *testing.T) {
	if CacheKey("Funny  Dance!", 5) != CacheKey("funny dance", 5) {
		t.Fatal("normalized queries must share a key")
	}
	if CacheKey("funny dance", 5) == CacheKey("funny dance", 6) {
		t.Fatal("different k must not share a key")
	}
	if CacheKey("funny dance", 5) == CacheKey("funny", 5) {
		t.Fatal("different queries must not share a key")
	}
}

// TestCacheTTLDisabled: with TTL 0 entries never expire, whatever the
// clock does.
func TestCacheTTLDisabled(t *testing.T) {
	ctx, reg := cacheTestCtx(t)
	now := time.Unix(1000, 0)
	c := NewResultCache(CacheOptions{Shards: 1, Capacity: 4, Now: func() time.Time { return now }})
	c.Invalidate(1)
	c.Put(ctx, CacheKey("q", 1), 1, fakeResults("x"))
	now = now.Add(1000 * time.Hour)
	if _, ok := c.Get(ctx, CacheKey("q", 1), 1); !ok {
		t.Fatal("entry expired with TTL disabled")
	}
	if reg.Counter("query.cache.expired").Value() != 0 {
		t.Fatal("expired counter moved with TTL disabled")
	}
}
