package query

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"ajaxcrawl/internal/dom"
	"ajaxcrawl/internal/index"
	"ajaxcrawl/internal/model"
)

var nextHash byte

func freshHash() dom.Hash {
	nextHash++
	var h dom.Hash
	h[0] = nextHash
	h[1] = byte(int(nextHash) >> 8)
	return h
}

// buildIndex makes an index from (url, state texts...) tuples.
func buildIndex(pages map[string][]string, pr map[string]float64) *index.Index {
	urls := make([]string, 0, len(pages))
	for u := range pages {
		urls = append(urls, u)
	}
	sort.Strings(urls)
	var graphs []*model.Graph
	for _, u := range urls {
		g := model.NewGraph(u)
		for depth, text := range pages[u] {
			g.AddState(freshHash(), text, depth)
		}
		graphs = append(graphs, g)
	}
	return index.Build(graphs, pr, 0)
}

// thesisIndex is the Morcheeba running example (§1.1, Table 5.1).
func thesisIndex() *index.Index {
	return buildIndex(map[string][]string{
		"url1": {
			"morcheeba enjoy the ride official video mysterious topic",
			"the new singer is great morcheeba fans rejoice",
		},
		"url2": {
			"morcheeba morcheeba concert video",
		},
		"url3": {
			"unrelated content about cats",
		},
	}, map[string]float64{"url1": 0.4, "url2": 0.35, "url3": 0.25})
}

func TestSimpleKeywordQuery(t *testing.T) {
	e := NewEngine(thesisIndex())
	rs := e.Search("morcheeba")
	if len(rs) != 3 {
		t.Fatalf("morcheeba results = %d, want 3 states", len(rs))
	}
	for _, r := range rs {
		if r.URL == "url3" {
			t.Fatalf("url3 must not match")
		}
		if r.Score <= 0 {
			t.Fatalf("nonpositive score: %+v", r)
		}
	}
	// Sorted by descending score.
	for i := 1; i < len(rs); i++ {
		if rs[i].Score > rs[i-1].Score {
			t.Fatalf("results not sorted: %v", rs)
		}
	}
}

func TestQueryNoResults(t *testing.T) {
	e := NewEngine(thesisIndex())
	if rs := e.Search("zebra"); rs != nil {
		t.Fatalf("absent term should return nil, got %v", rs)
	}
	if rs := e.Search(""); rs != nil {
		t.Fatalf("empty query should return nil")
	}
	if rs := e.Search("... !!!"); rs != nil {
		t.Fatalf("punctuation-only query should return nil")
	}
}

// TestConjunctionQ2 reproduces the motivating example: Q2 "morcheeba
// mysterious video" must hit only url1 state 0, where all three terms
// co-occur.
func TestConjunctionQ2(t *testing.T) {
	e := NewEngine(thesisIndex())
	rs := e.Search("morcheeba mysterious video")
	if len(rs) != 1 || rs[0].URL != "url1" || rs[0].State != 0 {
		t.Fatalf("Q2 results = %v", rs)
	}
}

// TestConjunctionQ3 reproduces Q3 "morcheeba singer": both terms only
// co-occur in url1's second state (the second comment page) — the tuple
// <URL1, s2> of Figure 5.2.
func TestConjunctionQ3(t *testing.T) {
	e := NewEngine(thesisIndex())
	rs := e.Search("morcheeba singer")
	if len(rs) != 1 || rs[0].URL != "url1" || rs[0].State != 1 {
		t.Fatalf("Q3 results = %v", rs)
	}
}

func TestConjunctionEliminatesIncompatibleStates(t *testing.T) {
	// Terms appear in the same URL but different states: no match.
	ix := buildIndex(map[string][]string{
		"u": {"alpha only here", "beta only here"},
	}, nil)
	e := NewEngine(ix)
	if rs := e.Search("alpha beta"); len(rs) != 0 {
		t.Fatalf("cross-state conjunction must not match: %v", rs)
	}
}

func TestTFInfluencesRanking(t *testing.T) {
	ix := buildIndex(map[string][]string{
		"many": {"term term term term filler"},
		"one":  {"term filler filler filler filler"},
	}, nil)
	e := NewEngine(ix)
	rs := e.Search("term")
	if len(rs) != 2 || rs[0].URL != "many" {
		t.Fatalf("higher-tf state must rank first: %v", rs)
	}
}

func TestPageRankInfluencesRanking(t *testing.T) {
	ix := buildIndex(map[string][]string{
		"popular": {"keyword same text"},
		"obscure": {"keyword same text"},
	}, map[string]float64{"popular": 0.9, "obscure": 0.1})
	e := NewEngine(ix)
	rs := e.Search("keyword")
	if len(rs) != 2 || rs[0].URL != "popular" {
		t.Fatalf("PageRank must break the tie: %v", rs)
	}
}

func TestAJAXRankPrefersShallowStates(t *testing.T) {
	ix := buildIndex(map[string][]string{
		"u": {"keyword filler one", "keyword filler two"},
	}, nil)
	e := NewEngine(ix)
	rs := e.Search("keyword")
	if len(rs) != 2 || rs[0].State != 0 {
		t.Fatalf("shallower state must rank first: %v", rs)
	}
}

func TestProximityRewardsAdjacency(t *testing.T) {
	ix := buildIndex(map[string][]string{
		"adjacent": {"alpha beta and much more filler text here"},
		"spread":   {"alpha filler filler filler filler filler beta x"},
	}, nil)
	e := NewEngine(ix)
	rs := e.Search("alpha beta")
	if len(rs) != 2 || rs[0].URL != "adjacent" {
		t.Fatalf("adjacent phrase must rank first: %v", rs)
	}
}

func TestProximityFunction(t *testing.T) {
	mk := func(poss ...[]int32) []index.Posting {
		out := make([]index.Posting, len(poss))
		for i, p := range poss {
			out[i] = index.Posting{Positions: p}
		}
		return out
	}
	if got := proximity(mk([]int32{3})); got != 1 {
		t.Fatalf("single term proximity = %v", got)
	}
	if got := proximity(mk([]int32{0}, []int32{1})); got != 1 {
		t.Fatalf("adjacent proximity = %v, want 1", got)
	}
	if got := proximity(mk([]int32{0}, []int32{9})); got != 0.2 {
		t.Fatalf("spread proximity = %v, want 0.2", got)
	}
	// Multiple occurrences: the best window counts.
	if got := proximity(mk([]int32{0, 20}, []int32{21})); got != 1 {
		t.Fatalf("best-window proximity = %v, want 1", got)
	}
	// Three terms adjacent.
	if got := proximity(mk([]int32{5}, []int32{6}, []int32{7})); got != 1 {
		t.Fatalf("3-term adjacent = %v", got)
	}
}

func TestIDFDownweightsCommonTerms(t *testing.T) {
	// "common" is everywhere (idf 0); "rare" in one state.
	ix := buildIndex(map[string][]string{
		"a": {"common rare", "common filler"},
		"b": {"common filler"},
	}, nil)
	e := NewEngine(ix)
	rare := e.Search("rare")
	common := e.Search("common")
	if len(rare) != 1 || len(common) != 3 {
		t.Fatalf("hits: rare=%d common=%d", len(rare), len(common))
	}
	// The tf·idf component for "common" is zero everywhere: idf =
	// log(3/3) = 0, so scores come from base components only.
	idf := math.Log(float64(ix.TotalStates) / float64(ix.DF("common")))
	if idf != 0 {
		t.Fatalf("idf(common) = %v", idf)
	}
}

// TestBrokerMatchesSingleIndex pins the chapter-6 guarantee: sharding the
// corpus and querying through the broker yields the same results and
// scores as one big index, thanks to the global idf correction.
func TestBrokerMatchesSingleIndex(t *testing.T) {
	pagesA := map[string][]string{
		"u1": {"morcheeba enjoy the ride", "singer news morcheeba here"},
		"u2": {"cats and dogs"},
	}
	pagesB := map[string][]string{
		"u3": {"morcheeba concert", "morcheeba singer interview extra"},
		"u4": {"unrelated filler text"},
	}
	pr := map[string]float64{"u1": 0.3, "u2": 0.2, "u3": 0.3, "u4": 0.2}

	merged := map[string][]string{}
	for k, v := range pagesA {
		merged[k] = v
	}
	for k, v := range pagesB {
		merged[k] = v
	}
	single := NewEngine(buildIndex(merged, pr))
	broker := NewBroker([]*index.Index{buildIndex(pagesA, pr), buildIndex(pagesB, pr)})

	for _, q := range []string{"morcheeba", "morcheeba singer", "cats", "filler text", "absent"} {
		sr := single.Search(q)
		br := broker.Search(q)
		if len(sr) != len(br) {
			t.Fatalf("q=%q: single %d results, broker %d", q, len(sr), len(br))
		}
		for i := range sr {
			if sr[i].URL != br[i].URL || sr[i].State != br[i].State {
				t.Fatalf("q=%q result %d differs: %v vs %v", q, i, sr[i], br[i])
			}
			if math.Abs(sr[i].Score-br[i].Score) > 1e-12 {
				t.Fatalf("q=%q score %d differs: %v vs %v", q, i, sr[i].Score, br[i].Score)
			}
		}
	}
}

func TestBrokerEmptyShards(t *testing.T) {
	b := NewBroker(nil)
	if rs := b.Search("anything"); rs != nil {
		t.Fatalf("no shards should return nil, got %v", rs)
	}
}

func TestTopK(t *testing.T) {
	rs := []Result{{Score: 3}, {Score: 2}, {Score: 1}}
	if got := TopK(rs, 2); len(got) != 2 || got[0].Score != 3 {
		t.Fatalf("TopK = %v", got)
	}
	if got := TopK(rs, 0); len(got) != 3 {
		t.Fatalf("TopK(0) should return all")
	}
	if got := TopK(rs, 10); len(got) != 3 {
		t.Fatalf("TopK beyond len should return all")
	}
}

func TestDeterministicTieBreaks(t *testing.T) {
	ix := buildIndex(map[string][]string{
		"b": {"same words here"},
		"a": {"same words here"},
	}, nil)
	e := NewEngine(ix)
	r1 := e.Search("same")
	r2 := e.Search("same")
	if len(r1) != 2 || r1[0].URL != "a" {
		t.Fatalf("tie break not by URL: %v", r1)
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("nondeterministic results")
		}
	}
}

// Property: conjunction results are exactly the (doc, state) pairs where
// every term occurs, cross-checked against a naive scan.
func TestPropertyConjunctionMatchesNaive(t *testing.T) {
	f := func(seed uint32) bool {
		words := []string{"a", "b", "c", "d"}
		// Build 3 docs × up to 3 states with pseudo-random text.
		x := uint64(seed)*2654435761 + 1
		pages := map[string][]string{}
		texts := map[[2]int]string{}
		for d := 0; d < 3; d++ {
			states := 1 + int(x%3)
			x = x*6364136223846793005 + 1442695040888963407
			var sts []string
			for s := 0; s < states; s++ {
				text := ""
				for w := 0; w < 4; w++ {
					if x&1 == 1 {
						text += words[w] + " "
					}
					x >>= 1
					if x == 0 {
						x = uint64(seed) + 7
					}
				}
				sts = append(sts, text)
				texts[[2]int{d, s}] = text
			}
			pages[string(rune('p'+d))] = sts
		}
		ix := buildIndex(pages, nil)
		e := NewEngine(ix)
		rs := e.Search("a b")
		got := map[string]bool{}
		for _, r := range rs {
			got[r.URL+"#"+itoa(int(r.State))] = true
		}
		// Naive scan.
		want := map[string]bool{}
		for d := 0; d < 3; d++ {
			url := string(rune('p' + d))
			for s, text := range pages[url] {
				toks := index.Tokenize(text)
				hasA, hasB := false, false
				for _, tk := range toks {
					if tk == "a" {
						hasA = true
					}
					if tk == "b" {
						hasB = true
					}
				}
				if hasA && hasB {
					want[url+"#"+itoa(s)] = true
				}
			}
		}
		if len(got) != len(want) {
			return false
		}
		for k := range want {
			if !got[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	s := ""
	for n > 0 {
		s = string(rune('0'+n%10)) + s
		n /= 10
	}
	return s
}

// TestLocalIDFAblation checks the ablation knob: with LocalIDF on and an
// unbalanced shard split, scores diverge from the single-index scores for
// at least one query, while the global-idf broker always agrees.
func TestLocalIDFAblation(t *testing.T) {
	pagesA := map[string][]string{"u1": {"rare word here", "word filler pad"}}
	pagesB := map[string][]string{
		"u2": {"word word word common"},
		"u3": {"word again common"},
		"u4": {"word and more common words"},
	}
	pr := map[string]float64{}
	merged := map[string][]string{"u1": pagesA["u1"]}
	for k, v := range pagesB {
		merged[k] = v
	}
	single := NewEngine(buildIndex(merged, pr))
	shards := []*index.Index{buildIndex(pagesA, pr), buildIndex(pagesB, pr)}

	global := &Broker{Shards: shards, W: DefaultWeights}
	local := &Broker{Shards: shards, W: DefaultWeights, LocalIDF: true}

	diverged := false
	for _, q := range []string{"rare", "word", "common"} {
		sr, gr, lr := single.Search(q), global.Search(q), local.Search(q)
		if len(sr) != len(gr) || len(sr) != len(lr) {
			t.Fatalf("q=%q result counts differ: %d %d %d", q, len(sr), len(gr), len(lr))
		}
		for i := range sr {
			if math.Abs(sr[i].Score-gr[i].Score) > 1e-12 {
				t.Fatalf("global-idf broker diverged on %q", q)
			}
			if math.Abs(sr[i].Score-lr[i].Score) > 1e-9 {
				diverged = true
			}
		}
	}
	if !diverged {
		t.Fatalf("local-idf ablation never diverged; knob inert?")
	}
}

// TestSearchTopKMatchesSortedSearch pins the heap-based top-k against
// the reference implementation across k values, queries and tie cases.
func TestSearchTopKMatchesSortedSearch(t *testing.T) {
	pages := map[string][]string{}
	// Deliberately include many identical texts to force score ties.
	for i := 0; i < 12; i++ {
		url := "u" + itoa(i)
		pages[url] = []string{
			"shared words with target here",
			"another state target target maybe",
			"filler without the term",
		}
	}
	ix := buildIndex(pages, nil)
	b := NewBroker([]*index.Index{ix})
	for _, q := range []string{"target", "shared words", "filler", "absent"} {
		full := b.Search(q)
		for _, k := range []int{1, 2, 5, 10, 100} {
			want := TopK(full, k)
			got := b.SearchTopK(q, k)
			if len(got) != len(want) {
				t.Fatalf("q=%q k=%d: %d results, want %d", q, k, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("q=%q k=%d result %d: %v, want %v", q, k, i, got[i], want[i])
				}
			}
		}
	}
	// k <= 0 degrades to the full search.
	if got := b.SearchTopK("target", 0); len(got) != len(b.Search("target")) {
		t.Fatalf("k=0 should return everything")
	}
	if got := b.SearchTopK("", 3); got != nil {
		t.Fatalf("empty query should be nil")
	}
}

// TestSearchTopKAcrossShards checks heap top-k under query shipping.
func TestSearchTopKAcrossShards(t *testing.T) {
	a := buildIndex(map[string][]string{"s1": {"term alpha", "term beta"}}, nil)
	bIx := buildIndex(map[string][]string{"s2": {"term gamma", "plain text"}}, nil)
	broker := NewBroker([]*index.Index{a, bIx})
	want := TopK(broker.Search("term"), 2)
	got := broker.SearchTopK("term", 2)
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("sharded top-k: %v want %v", got, want)
	}
}

func BenchmarkSearchFullSort(b *testing.B) {
	ix := largeBenchIndex()
	e := NewEngine(ix)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TopK(e.Search("common"), 10)
	}
}

func BenchmarkSearchTopKHeap(b *testing.B) {
	ix := largeBenchIndex()
	e := NewEngine(ix)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.SearchTopK("common", 10)
	}
}

// largeBenchIndex builds an index where "common" matches every state.
func largeBenchIndex() *index.Index {
	pages := map[string][]string{}
	for i := 0; i < 300; i++ {
		url := "bench" + itoa(i)
		pages[url] = []string{
			"common filler one " + itoa(i),
			"common filler two " + itoa(i*7),
		}
	}
	return buildIndex(pages, nil)
}
