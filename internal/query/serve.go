package query

import (
	"context"
	"sync/atomic"
	"time"

	"ajaxcrawl/internal/obs"
)

// Serving-side query evaluation: a Server owns the *live* search state —
// an immutable ServeSnapshot reached through one atomic pointer — plus
// the result cache in front of it. Snapshots are never mutated after
// installation, so a hot swap is a pointer store: readers that loaded
// the old snapshot finish their evaluation against it and drain
// naturally (the garbage collector reclaims it once the last reader
// returns), while every later request sees the new one. No locks sit on
// the read path.

// ServeSnapshot is one immutable generation of serving state: the
// sharded broker, the state-text source for snippets, and the sizes the
// serving layer reports. Gen, Docs and States are assigned by
// Server.Swap; a snapshot must not be modified after installation.
type ServeSnapshot struct {
	// Broker evaluates queries over this snapshot's shards.
	Broker *Broker
	// StateText resolves (url, state) to the state's visible text for
	// snippet generation; nil disables snippets.
	StateText func(url string, state int) string
	// SnippetOpts tune snippet extraction.
	SnippetOpts SnippetOptions
	// Gen is the monotonically increasing generation number, assigned
	// at swap time.
	Gen int64
	// Docs and States are the snapshot's aggregate sizes, computed at
	// swap time.
	Docs, States int
}

// Server serves queries from the live snapshot through a result cache,
// and supports atomic hot swaps of the snapshot.
type Server struct {
	live  atomic.Pointer[ServeSnapshot]
	cache *ResultCache
	gen   atomic.Int64
}

// NewServer returns a Server serving snap (which must be non-nil) with a
// fresh result cache.
func NewServer(snap *ServeSnapshot, cacheOpts CacheOptions) *Server {
	s := &Server{cache: NewResultCache(cacheOpts)}
	s.Swap(context.Background(), snap)
	return s
}

// Live returns the currently serving snapshot.
func (s *Server) Live() *ServeSnapshot { return s.live.Load() }

// Cache exposes the result cache (read-mostly use: Len, Gen).
func (s *Server) Cache() *ResultCache { return s.cache }

// Swap atomically installs snap as the live snapshot and returns the
// previous one (nil on first install). The order matters: the cache is
// invalidated *into the new generation first*, then the pointer is
// published. A reader racing the swap either still holds the old
// snapshot — its cache fills are dropped by the generation check — or
// already sees the new one, whose fills are valid. Old snapshots drain:
// in-flight evaluations against them complete, and the GC reclaims the
// shards once the last reference is gone.
func (s *Server) Swap(ctx context.Context, snap *ServeSnapshot) *ServeSnapshot {
	gen := s.gen.Add(1)
	snap.Gen = gen
	snap.Docs, snap.States = 0, 0
	for _, shard := range snap.Broker.Shards {
		snap.Docs += shard.NumDocs()
		snap.States += shard.TotalStates
	}
	s.cache.Invalidate(gen)
	old := s.live.Swap(snap)

	tel := obs.From(ctx)
	tel.Counter("query.serve.swaps").Inc()
	tel.Gauge("query.serve.snapshot.gen").Set(gen)
	tel.Gauge("query.serve.snapshot.docs").Set(int64(snap.Docs))
	tel.Gauge("query.serve.snapshot.states").Set(int64(snap.States))
	return old
}

// SearchOptions tune one evaluation — the serving layer's brownout
// path degrades queries through these rather than a separate engine.
type SearchOptions struct {
	// NoSnippets skips snippet extraction (the most expensive part of a
	// cold evaluation). Snippet-free results are cached in their own
	// namespace so they can never shadow a full-quality entry.
	NoSnippets bool
}

// Search answers a top-k query from the cache when possible, otherwise
// evaluates it on the live snapshot (bounded-heap top-k plus snippets)
// and fills the cache. It returns the results, the snapshot that
// answered (for generation/size reporting), and whether the answer came
// from the cache. The per-request latency lands in the
// query.serve.latency histogram whether cached or not.
func (s *Server) Search(ctx context.Context, q string, k int) ([]ResultWithSnippet, *ServeSnapshot, bool) {
	return s.SearchOpts(ctx, q, k, SearchOptions{})
}

// SearchOpts is Search with per-query options.
func (s *Server) SearchOpts(ctx context.Context, q string, k int, opt SearchOptions) ([]ResultWithSnippet, *ServeSnapshot, bool) {
	tel := obs.From(ctx)
	tel.Counter("query.serve.requests").Inc()
	start := time.Now()
	snap := s.live.Load()
	key := CacheKey(q, k)
	if opt.NoSnippets {
		// "\x1fns" cannot collide with a real key: tokenized terms never
		// contain 0x1f, so a full-quality key ends in the k integer.
		key += "\x1fns"
	}
	if res, ok := s.cache.Get(ctx, key, snap.Gen); ok {
		tel.Histogram("query.serve.latency").Observe(time.Since(start).Seconds())
		return res, snap, true
	}
	results := snap.Broker.SearchTopKCtx(ctx, q, k)
	var out []ResultWithSnippet
	if opt.NoSnippets {
		out = make([]ResultWithSnippet, 0, len(results))
		for _, r := range results {
			out = append(out, ResultWithSnippet{Result: r})
		}
	} else {
		out = AttachSnippets(results, snap.StateText, q, snap.SnippetOpts)
	}
	s.cache.Put(ctx, key, snap.Gen, out)
	tel.Histogram("query.serve.latency").Observe(time.Since(start).Seconds())
	return out, snap, false
}

// Cached answers a top-k query only if the full-quality cache already
// holds it — the brownout path's "prefer cached results" probe: a hit
// costs nothing and loses no quality, so a pressured server checks here
// before degrading the evaluation. ok is false on a miss. The probe
// deliberately bypasses the cache hit/miss counters (the subsequent
// degraded SearchOpts lookup counts once).
func (s *Server) Cached(q string, k int) ([]ResultWithSnippet, *ServeSnapshot, bool) {
	snap := s.live.Load()
	res, ok := s.cache.Get(context.Background(), CacheKey(q, k), snap.Gen)
	if !ok {
		return nil, snap, false
	}
	return res, snap, true
}
