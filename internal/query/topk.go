package query

import (
	"container/heap"
	"context"
	"math"

	"ajaxcrawl/internal/index"
)

// Heap-based top-k evaluation: when the caller only wants the k best
// results, sorting the full result set is wasted work. The thesis's
// related-work chapter points at TopX and Threshold Algorithms for
// "optimized computation of results and ranking"; this is the simple
// member of that family that applies to our scoring: scores are computed
// per match anyway (no sorted per-term score lists exist), so the win is
// replacing the O(n log n) global sort with an O(n log k) bounded heap.
//
// SearchTopK returns exactly the same results as TopK(Search(q), k),
// including tie-breaking, which the tests pin down.

// SearchTopK evaluates the query and returns its k best results in rank
// order without materializing and sorting the full result list.
func (b *Broker) SearchTopK(q string, k int) []Result {
	return b.SearchTopKCtx(context.Background(), q, k)
}

// SearchTopKCtx is SearchTopK under a context (see Engine.SearchCtx).
func (b *Broker) SearchTopKCtx(ctx context.Context, q string, k int) []Result {
	if k <= 0 {
		return b.SearchCtx(ctx, q)
	}
	out, _ := instrumentQuery(ctx, q, func() ([]Result, int) {
		return b.searchTopK(q, k)
	})
	return out
}

// searchTopK is the uninstrumented top-k evaluation.
func (b *Broker) searchTopK(q string, k int) ([]Result, int) {
	terms := Parse(q)
	if len(terms) == 0 {
		return nil, 0
	}
	// Query shipping, as in Search.
	var partials []partial
	globalDF := make([]int, len(terms))
	totalStates := 0
	for _, shard := range b.Shards {
		ps, dfs := shardSearch(shard, terms, b.W)
		if b.LocalIDF {
			for i := range ps {
				for t := range terms {
					if dfs[t] > 0 && shard.TotalStates > 0 {
						ps[i].base += b.W.TFIDF * ps[i].tfs[t] *
							math.Log(float64(shard.TotalStates)/float64(dfs[t]))
					}
				}
				ps[i].tfs = nil
			}
		}
		partials = append(partials, ps...)
		for i, df := range dfs {
			globalDF[i] += df
		}
		totalStates += shard.TotalStates
	}
	if len(partials) == 0 {
		return nil, 0
	}
	idf := make([]float64, len(terms))
	for i, df := range globalDF {
		if df > 0 && totalStates > 0 {
			idf[i] = math.Log(float64(totalStates) / float64(df))
		}
	}

	// Bounded min-heap of the k best seen so far.
	h := &resultHeap{}
	heap.Init(h)
	for _, p := range partials {
		score := p.base
		if !b.LocalIDF {
			for t := range terms {
				score += b.W.TFIDF * p.tfs[t] * idf[t]
			}
		}
		r := Result{URL: p.url, State: p.state, Score: score}
		if h.Len() < k {
			heap.Push(h, r)
		} else if resultLess((*h)[0], r) {
			(*h)[0] = r
			heap.Fix(h, 0)
		}
	}
	// Drain the heap into rank order (best first).
	out := make([]Result, h.Len())
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(h).(Result)
	}
	return out, len(partials)
}

// resultLess orders results by ascending rank quality: a < b means a is a
// WORSE result than b (lower score; ties broken by URL then state, where
// lexicographically later loses, mirroring Search's descending sort).
func resultLess(a, b Result) bool {
	if a.Score != b.Score {
		return a.Score < b.Score
	}
	if a.URL != b.URL {
		return a.URL > b.URL
	}
	return a.State > b.State
}

// resultHeap is a min-heap on rank quality: the root is the worst of the
// kept results, ready to be displaced.
type resultHeap []Result

func (h resultHeap) Len() int            { return len(h) }
func (h resultHeap) Less(i, j int) bool  { return resultLess(h[i], h[j]) }
func (h resultHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *resultHeap) Push(x interface{}) { *h = append(*h, x.(Result)) }
func (h *resultHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// EngineSearchTopK is the single-index convenience.
func (e *Engine) SearchTopK(q string, k int) []Result {
	return e.SearchTopKCtx(context.Background(), q, k)
}

// SearchTopKCtx is SearchTopK under a context (see Engine.SearchCtx).
func (e *Engine) SearchTopKCtx(ctx context.Context, q string, k int) []Result {
	b := &Broker{Shards: []*index.Index{e.Idx}, W: e.W}
	return b.SearchTopKCtx(ctx, q, k)
}
