package query

import (
	"container/list"
	"context"
	"hash/fnv"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ajaxcrawl/internal/obs"
)

// ResultCache is the serving layer's query-result cache: a sharded LRU
// keyed on the normalized query plus k, with optional TTL expiry. The
// cache is generation-aware: every entry records the snapshot generation
// it was computed from, and a hot swap invalidates the whole cache by
// installing the new generation — in-flight fills racing a swap are
// dropped (Put) or re-computed (Get), so a reader can never be served
// results from a snapshot that is no longer live.
//
// Sharding bounds lock contention under concurrent serving: keys hash to
// one of CacheOptions.Shards independent mutex+LRU shards.
//
// Counters (on the context's obs registry):
//
//	query.cache.hits       lookups served from memory
//	query.cache.misses     lookups that must evaluate the query
//	query.cache.evictions  entries displaced by capacity (LRU tail)
//	query.cache.expired    entries dropped because their TTL passed
type ResultCache struct {
	shards []cacheShard
	ttl    time.Duration
	now    func() time.Time
	gen    atomic.Int64
}

// CacheOptions configure a ResultCache.
type CacheOptions struct {
	// Shards is the number of independent LRU shards (default 8).
	Shards int
	// Capacity is the total entry budget across shards (default 1024).
	// Each shard holds Capacity/Shards entries (at least one).
	Capacity int
	// TTL bounds an entry's lifetime; 0 disables expiry.
	TTL time.Duration
	// Now is the clock (default time.Now); tests inject virtual time.
	Now func() time.Time
}

type cacheShard struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*list.Element
	lru     *list.List // front = most recently used
}

type cacheEntry struct {
	key     string
	val     []ResultWithSnippet
	gen     int64
	expires time.Time // zero = never
}

// NewResultCache returns an empty cache at generation 0.
func NewResultCache(o CacheOptions) *ResultCache {
	if o.Shards <= 0 {
		o.Shards = 8
	}
	if o.Capacity <= 0 {
		o.Capacity = 1024
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	perShard := o.Capacity / o.Shards
	if perShard < 1 {
		perShard = 1
	}
	c := &ResultCache{
		shards: make([]cacheShard, o.Shards),
		ttl:    o.TTL,
		now:    o.Now,
	}
	for i := range c.shards {
		c.shards[i] = cacheShard{
			cap:     perShard,
			entries: make(map[string]*list.Element),
			lru:     list.New(),
		}
	}
	return c
}

// CacheKey normalizes a query+k pair into a cache key: queries that
// tokenize identically ("Funny  Dance!" vs "funny dance") share one
// entry. The 0x1f separator cannot appear in tokenized terms.
func CacheKey(q string, k int) string {
	return strings.Join(Parse(q), " ") + "\x1f" + strconv.Itoa(k)
}

func (c *ResultCache) shard(key string) *cacheShard {
	h := fnv.New32a()
	h.Write([]byte(key))
	return &c.shards[int(h.Sum32())%len(c.shards)]
}

// Gen returns the cache's current generation.
func (c *ResultCache) Gen() int64 { return c.gen.Load() }

// Get returns the cached results for key, provided the entry belongs to
// snapshot generation gen and has not expired. A generation mismatch or
// an expired entry counts as a miss (and drops the entry).
func (c *ResultCache) Get(ctx context.Context, key string, gen int64) ([]ResultWithSnippet, bool) {
	tel := obs.From(ctx)
	s := c.shard(key)
	var (
		val     []ResultWithSnippet
		hit     bool
		expired bool
	)
	s.mu.Lock()
	if el, ok := s.entries[key]; ok {
		e := el.Value.(*cacheEntry)
		switch {
		case e.gen != gen:
			s.removeLocked(el)
		case !e.expires.IsZero() && c.now().After(e.expires):
			s.removeLocked(el)
			expired = true
		default:
			s.lru.MoveToFront(el)
			val, hit = e.val, true
		}
	}
	s.mu.Unlock()
	if hit {
		tel.Counter("query.cache.hits").Inc()
		return val, true
	}
	tel.Counter("query.cache.misses").Inc()
	if expired {
		tel.Counter("query.cache.expired").Inc()
	}
	return nil, false
}

// Put stores results computed against snapshot generation gen. A fill
// whose generation is no longer current — the snapshot was swapped while
// the query evaluated — is dropped: its results describe an index that
// is no longer serving.
func (c *ResultCache) Put(ctx context.Context, key string, gen int64, val []ResultWithSnippet) {
	if gen != c.gen.Load() {
		return
	}
	tel := obs.From(ctx)
	var expires time.Time
	if c.ttl > 0 {
		expires = c.now().Add(c.ttl)
	}
	s := c.shard(key)
	evicted := 0
	s.mu.Lock()
	if el, ok := s.entries[key]; ok {
		e := el.Value.(*cacheEntry)
		e.val, e.gen, e.expires = val, gen, expires
		s.lru.MoveToFront(el)
	} else {
		el := s.lru.PushFront(&cacheEntry{key: key, val: val, gen: gen, expires: expires})
		s.entries[key] = el
		for s.lru.Len() > s.cap {
			s.removeLocked(s.lru.Back())
			evicted++
		}
	}
	s.mu.Unlock()
	if evicted > 0 {
		tel.Counter("query.cache.evictions").Add(int64(evicted))
	}
}

// removeLocked unlinks an element; callers hold the shard lock.
func (s *cacheShard) removeLocked(el *list.Element) {
	if el == nil {
		return
	}
	delete(s.entries, el.Value.(*cacheEntry).key)
	s.lru.Remove(el)
}

// Invalidate installs a new generation and drops every entry — the
// hot-swap path. It runs before the new snapshot pointer is published
// (see Server.Swap), so fills from the outgoing generation can never
// survive into the new one.
func (c *ResultCache) Invalidate(gen int64) {
	c.gen.Store(gen)
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.entries = make(map[string]*list.Element)
		s.lru.Init()
		s.mu.Unlock()
	}
}

// Len returns the number of live entries across all shards.
func (c *ResultCache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.lru.Len()
		s.mu.Unlock()
	}
	return n
}
