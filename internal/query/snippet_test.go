package query

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestSnippetHighlightsMatch(t *testing.T) {
	text := "one two three target four five"
	got := Snippet(text, "target", SnippetOptions{})
	if !strings.Contains(got, "[target]") {
		t.Fatalf("snippet = %q", got)
	}
	// All tokens fit: no ellipses.
	if strings.Contains(got, "...") {
		t.Fatalf("short text should not be elided: %q", got)
	}
}

func TestSnippetCentersOnWindow(t *testing.T) {
	var b strings.Builder
	for i := 0; i < 100; i++ {
		b.WriteString("filler ")
	}
	b.WriteString("alpha beta")
	for i := 0; i < 100; i++ {
		b.WriteString(" trailer")
	}
	got := Snippet(b.String(), "alpha beta", SnippetOptions{MaxTokens: 10})
	if !strings.Contains(got, "[alpha] [beta]") {
		t.Fatalf("window missed the phrase: %q", got)
	}
	if !strings.HasPrefix(got, "... ") || !strings.HasSuffix(got, " ...") {
		t.Fatalf("mid-text snippet should be elided on both sides: %q", got)
	}
	if n := len(strings.Fields(got)); n > 14 { // 10 tokens + ellipses
		t.Fatalf("snippet too long: %d fields", n)
	}
}

func TestSnippetPicksClosestCooccurrence(t *testing.T) {
	// alpha appears early alone; the real co-occurrence is late.
	text := "alpha " + strings.Repeat("x ", 50) + "alpha near beta " + strings.Repeat("y ", 50)
	got := Snippet(text, "alpha beta", SnippetOptions{MaxTokens: 8})
	if !strings.Contains(got, "[alpha] near [beta]") {
		t.Fatalf("did not center on minimal window: %q", got)
	}
}

func TestSnippetPartialTerms(t *testing.T) {
	// Only one of two query terms occurs: still produce a snippet.
	got := Snippet("just alpha here", "alpha missing", SnippetOptions{})
	if !strings.Contains(got, "[alpha]") {
		t.Fatalf("partial-term snippet = %q", got)
	}
	// No terms at all: empty.
	if got := Snippet("nothing relevant", "absent", SnippetOptions{}); got != "" {
		t.Fatalf("no-match snippet = %q", got)
	}
	if got := Snippet("text", "", SnippetOptions{}); got != "" {
		t.Fatalf("empty query snippet = %q", got)
	}
}

func TestSnippetCustomHighlight(t *testing.T) {
	got := Snippet("a b c", "b", SnippetOptions{HighlightPre: "<b>", HighlightPost: "</b>"})
	if !strings.Contains(got, "<b>b</b>") {
		t.Fatalf("custom highlight = %q", got)
	}
}

func TestSnippetCaseInsensitive(t *testing.T) {
	got := Snippet("The Morcheeba Video", "morcheeba", SnippetOptions{})
	if !strings.Contains(got, "[morcheeba]") {
		t.Fatalf("case-insensitive snippet = %q", got)
	}
}

func TestAttachSnippets(t *testing.T) {
	ix := buildIndex(map[string][]string{
		"u1": {"the target phrase lives here"},
	}, nil)
	e := NewEngine(ix)
	rs := e.Search("target")
	texts := map[string]string{"u1#0": "the target phrase lives here"}
	out := AttachSnippets(rs, func(url string, state int) string {
		return texts[url+"#"+itoa(state)]
	}, "target", SnippetOptions{})
	if len(out) != 1 || !strings.Contains(out[0].Snippet, "[target]") {
		t.Fatalf("attached = %+v", out)
	}
	// nil lookup: empty snippets, no panic.
	out = AttachSnippets(rs, nil, "target", SnippetOptions{})
	if out[0].Snippet != "" {
		t.Fatalf("nil lookup should yield empty snippet")
	}
}

// Property: the snippet never exceeds MaxTokens (+2 ellipsis markers) and
// always contains at least one highlighted term when any term matches.
func TestPropertySnippetBounds(t *testing.T) {
	f := func(words []uint8, qIdx uint8) bool {
		vocab := []string{"aa", "bb", "cc", "dd", "ee"}
		var toks []string
		for _, w := range words {
			toks = append(toks, vocab[int(w)%len(vocab)])
		}
		text := strings.Join(toks, " ")
		q := vocab[int(qIdx)%len(vocab)]
		got := Snippet(text, q, SnippetOptions{MaxTokens: 6})
		if got == "" {
			return !strings.Contains(" "+text+" ", " "+q+" ")
		}
		if !strings.Contains(got, "["+q+"]") {
			return false
		}
		fields := len(strings.Fields(got))
		return fields <= 8 // 6 tokens + up to 2 "..."
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
