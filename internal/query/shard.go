package query

import (
	"context"
	"strconv"
	"time"

	"ajaxcrawl/internal/obs"
)

// Distributed query shipping (thesis ch. 6): a shard server does NOT
// return final scores — the tf·idf component needs the *global* document
// frequencies (eq. 6.1), which only the router that fans the query out
// to every shard can sum. So a shard returns pre-idf candidates: the
// idf-independent part of formula 5.3 (w1·PR + w2·A + w4·T) plus the raw
// per-term tf values, alongside the shard's local df vector and state
// count. The router folds the tf·idf component in with the globally
// corrected idf and merges — ending up with exactly the bytes a single
// process evaluating the union index would have produced (the
// differential battery in internal/router pins this).

// ShardCandidate is one pre-idf candidate of a shard evaluation: the
// score parts that do not depend on global collection statistics, plus
// the snippet (state text lives only on the owning shard, so the
// snippet must travel with the candidate).
type ShardCandidate struct {
	// URL and State identify the (document, application state) hit.
	URL   string `json:"url"`
	State int    `json:"state"`
	// Base is the idf-independent score: w1·PageRank + w2·AJAXRank +
	// w4·Proximity.
	Base float64 `json:"base"`
	// TFs holds the term frequency (eq. 5.1) per query term, aligned
	// with ShardResult.Terms.
	TFs []float64 `json:"tfs"`
	// Snippet is the highlighted excerpt for this candidate, computed
	// shard-side where the state text lives.
	Snippet string `json:"snippet,omitempty"`
}

// ShardResult is one shard server's half of the distributed merge: its
// candidates plus the local collection statistics the router sums into
// the global idf. A shard server that itself holds several index shards
// returns their union (sums are associative, so the router's global idf
// is unchanged by how shards are grouped into servers).
type ShardResult struct {
	// Terms is the normalized query, one entry per conjunctive term.
	Terms []string `json:"terms"`
	// TotalStates is the shard's state count (the N_i of eq. 6.1).
	TotalStates int `json:"total_states"`
	// DF is the per-term document frequency on this shard, aligned with
	// Terms (the df_i of eq. 6.1).
	DF []int `json:"df"`
	// Gen, Docs and States describe the serving snapshot that answered,
	// for response metadata.
	Gen    int64 `json:"gen"`
	Docs   int   `json:"docs"`
	States int   `json:"states"`
	// Candidates are the pre-idf hits, in shard-local (doc, state)
	// order.
	Candidates []ShardCandidate `json:"candidates"`
}

// ShardSearch evaluates q on the live snapshot and returns the shard
// half of a distributed merge: every matching candidate with its pre-idf
// score parts, the local df vector, and the local state count. Unlike
// Search it returns ALL candidates, not a top-k — a shard cannot rank
// without the global idf, and truncating on local scores could evict a
// globally top-k document (DESIGN.md §5i discusses the trade-off).
// Snippets are attached shard-side. The result cache is not consulted:
// entries are keyed by (query, k) final results, a different value
// space.
func (s *Server) ShardSearch(ctx context.Context, q string) *ShardResult {
	tel := obs.From(ctx)
	tel.Counter("query.shard.requests").Inc()
	_, sp := obs.StartSpan(ctx, obs.SpanShardEval, obs.A("q", q))
	start := time.Now()

	snap := s.live.Load()
	terms := Parse(q)
	res := &ShardResult{
		Terms:      terms,
		DF:         make([]int, len(terms)),
		Gen:        snap.Gen,
		Docs:       snap.Docs,
		States:     snap.States,
		Candidates: make([]ShardCandidate, 0),
	}
	if len(terms) > 0 {
		for _, shard := range snap.Broker.Shards {
			ps, dfs := shardSearch(shard, terms, snap.Broker.W)
			for i, df := range dfs {
				res.DF[i] += df
			}
			res.TotalStates += shard.TotalStates
			for _, p := range ps {
				c := ShardCandidate{
					URL:   p.url,
					State: int(p.state),
					Base:  p.base,
					TFs:   p.tfs,
				}
				if snap.StateText != nil {
					if text := snap.StateText(p.url, int(p.state)); text != "" {
						c.Snippet = Snippet(text, q, snap.SnippetOpts)
					}
				}
				res.Candidates = append(res.Candidates, c)
			}
		}
	}

	tel.Counter("query.shard.candidates").Add(int64(len(res.Candidates)))
	tel.Histogram("query.shard.latency").Observe(time.Since(start).Seconds())
	sp.SetAttr("candidates", strconv.Itoa(len(res.Candidates)))
	sp.End(nil)
	return res
}
