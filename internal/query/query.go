// Package query implements the query-processing side of the AJAX search
// engine (thesis §5.3 and §6.5): simple keyword queries, conjunctions as
// sorted posting-list merges on (URL, state), the composite ranking
// formula 5.3 (PageRank + AJAXRank + tf·idf + term proximity), and
// distributed query shipping over index shards with the global idf
// correction of eq. 6.1.
package query

import (
	"context"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"

	"ajaxcrawl/internal/index"
	"ajaxcrawl/internal/model"
	"ajaxcrawl/internal/obs"
)

// Weights are the w1..w4 coefficients of formula 5.3.
type Weights struct {
	PageRank  float64 // w1
	AJAXRank  float64 // w2
	TFIDF     float64 // w3
	Proximity float64 // w4
}

// DefaultWeights balance the four components for the experiments.
var DefaultWeights = Weights{PageRank: 1.0, AJAXRank: 0.5, TFIDF: 2.0, Proximity: 0.5}

// Result is one ranked search hit: a URL plus the application state
// containing the query.
type Result struct {
	URL   string
	State model.StateID
	Score float64
}

// Parse tokenizes a query string into terms (conjunction semantics).
func Parse(q string) []string {
	return index.Tokenize(q)
}

// match is one (doc, state) containing all query terms, with the
// postings aligned per term.
type match struct {
	doc      index.DocID
	state    model.StateID
	postings []index.Posting // one per term, same (doc, state)
}

// conjunction merges the posting lists of all terms, keeping only
// (doc, state) pairs where every term occurs — the two-phase
// compatibility merge of Figure 5.2 (URLs first, then states).
func conjunction(ix *index.Index, terms []string) []match {
	if len(terms) == 0 {
		return nil
	}
	lists := make([][]index.Posting, len(terms))
	for i, t := range terms {
		lists[i] = ix.Lookup(t)
		if len(lists[i]) == 0 {
			return nil
		}
	}
	// k-way sorted merge: advance the cursor with the smallest
	// (doc, state); emit when all cursors agree.
	cursors := make([]int, len(lists))
	var out []match
	for {
		// Find the max (doc, state) among cursors; all must reach it.
		maxDoc, maxState := lists[0][cursors[0]].Doc, lists[0][cursors[0]].State
		equal := true
		for i := range lists {
			p := lists[i][cursors[i]]
			if p.Doc != maxDoc || p.State != maxState {
				equal = false
			}
			if p.Doc > maxDoc || (p.Doc == maxDoc && p.State > maxState) {
				maxDoc, maxState = p.Doc, p.State
			}
		}
		if equal {
			m := match{doc: maxDoc, state: maxState, postings: make([]index.Posting, len(lists))}
			for i := range lists {
				m.postings[i] = lists[i][cursors[i]]
			}
			out = append(out, m)
			// Advance all cursors past the emitted pair.
			for i := range lists {
				cursors[i]++
				if cursors[i] >= len(lists[i]) {
					return out
				}
			}
			continue
		}
		// Advance every cursor that is behind (maxDoc, maxState).
		for i := range lists {
			for cursors[i] < len(lists[i]) {
				p := lists[i][cursors[i]]
				if p.Doc < maxDoc || (p.Doc == maxDoc && p.State < maxState) {
					cursors[i]++
				} else {
					break
				}
			}
			if cursors[i] >= len(lists[i]) {
				return out
			}
		}
	}
}

// proximity computes the term-proximity coefficient T(q, s): k/span,
// where span is the smallest window (in tokens) containing one
// occurrence of every term. It is 1.0 when the terms appear adjacently
// ("contains the query as is") and decays as they spread out. Single-term
// queries score 1.
func proximity(postings []index.Posting) float64 {
	k := len(postings)
	if k <= 1 {
		return 1.0
	}
	// Pointers into each term's position list; classic minimal-window.
	ptr := make([]int, k)
	best := math.MaxInt32
	for {
		lo, hi := int32(math.MaxInt32), int32(math.MinInt32)
		loIdx := -1
		for i := 0; i < k; i++ {
			pos := postings[i].Positions[ptr[i]]
			if pos < lo {
				lo, loIdx = pos, i
			}
			if pos > hi {
				hi = pos
			}
		}
		if span := int(hi-lo) + 1; span < best {
			best = span
		}
		ptr[loIdx]++
		if ptr[loIdx] >= len(postings[loIdx].Positions) {
			break
		}
	}
	if best < k {
		best = k // overlapping positions cannot beat adjacency
	}
	return float64(k) / float64(best)
}

// tf computes eq. 5.1: occurrences of the term divided by the state's
// token count.
func tf(p index.Posting, stateLen int32) float64 {
	if stateLen == 0 {
		return 0
	}
	return float64(p.TF()) / float64(stateLen)
}

// Engine evaluates queries over a single index with formula 5.3.
type Engine struct {
	Idx *index.Index
	W   Weights
}

// NewEngine returns a query engine with default weights.
func NewEngine(ix *index.Index) *Engine {
	return &Engine{Idx: ix, W: DefaultWeights}
}

// Search evaluates a (conjunctive) keyword query and returns results
// sorted by descending score.
func (e *Engine) Search(q string) []Result {
	return e.SearchCtx(context.Background(), q)
}

// SearchCtx is Search under a context: when the context carries
// telemetry, the evaluation is wrapped in a query.exec span and its
// latency and candidate count land in the registry.
func (e *Engine) SearchCtx(ctx context.Context, q string) []Result {
	b := &Broker{Shards: []*index.Index{e.Idx}, W: e.W}
	return b.SearchCtx(ctx, q)
}

// partial is a shard-local result before the global tf·idf component is
// added (Figure 6.4, step 1 input).
type partial struct {
	url   string
	state model.StateID
	base  float64   // w1·PR + w2·A + w4·T
	tfs   []float64 // per query term
}

// shardSearch evaluates the query on one shard, returning partial scores
// and the shard's local df counts.
func shardSearch(ix *index.Index, terms []string, w Weights) (results []partial, dfs []int) {
	dfs = make([]int, len(terms))
	for i, t := range terms {
		dfs[i] = ix.DF(t)
	}
	for _, m := range conjunction(ix, terms) {
		doc := ix.Doc(m.doc)
		stateLen := int32(0)
		ajaxRank := 0.0
		if int(m.state) < len(doc.StateLens) {
			stateLen = doc.StateLens[m.state]
			ajaxRank = doc.AJAXRanks[m.state]
		}
		p := partial{
			url:   doc.URL,
			state: m.state,
			base:  w.PageRank*doc.PageRank + w.AJAXRank*ajaxRank + w.Proximity*proximity(m.postings),
			tfs:   make([]float64, len(terms)),
		}
		for i, post := range m.postings {
			p.tfs[i] = tf(post, stateLen)
		}
		results = append(results, p)
	}
	return results, dfs
}

// Broker ships a query to every shard, merges the result sets, computes
// the global idf from the shards' local counts (eq. 6.1), adds the
// weighted tf·idf component, and re-sorts — the two-step merge of
// Figure 6.4.
type Broker struct {
	Shards []*index.Index
	W      Weights
	// LocalIDF disables the global idf correction: each shard scores
	// tf·idf with its own local counts. This is the ablation knob for
	// the design choice of §6.5.2 — with it on, rankings from sharded
	// indexes can diverge from the single-index ranking.
	LocalIDF bool
}

// NewBroker returns a broker with default weights.
func NewBroker(shards []*index.Index) *Broker {
	return &Broker{Shards: shards, W: DefaultWeights}
}

// Search evaluates the query across all shards.
func (b *Broker) Search(q string) []Result {
	return b.SearchCtx(context.Background(), q)
}

// SearchCtx is Search under a context (see Engine.SearchCtx).
func (b *Broker) SearchCtx(ctx context.Context, q string) []Result {
	out, _ := instrumentQuery(ctx, q, func() ([]Result, int) {
		return b.search(q)
	})
	return out
}

// instrumentQuery wraps one query evaluation in the query.exec span and
// registry metrics. It is shared by Search and SearchTopK; with no
// telemetry on the context it costs one Value lookup.
func instrumentQuery(ctx context.Context, q string, eval func() ([]Result, int)) ([]Result, int) {
	tel := obs.From(ctx)
	_, sp := obs.StartSpan(ctx, obs.SpanQueryExec, obs.A("q", q))
	start := time.Now()
	out, candidates := eval()
	tel.Counter("query.count").Inc()
	tel.Counter("query.candidates").Add(int64(candidates))
	tel.Histogram("query.latency").Observe(time.Since(start).Seconds())
	sp.SetAttr("results", strconv.Itoa(len(out)))
	sp.End(nil)
	return out, candidates
}

// search is the uninstrumented evaluation; the int is the number of
// candidate (URL, state) matches examined before ranking.
func (b *Broker) search(q string) ([]Result, int) {
	terms := Parse(q)
	if len(terms) == 0 {
		return nil, 0
	}
	// Query shipping: evaluate on each shard, collect local counts.
	var partials []partial
	globalDF := make([]int, len(terms))
	totalStates := 0
	for _, shard := range b.Shards {
		ps, dfs := shardSearch(shard, terms, b.W)
		if b.LocalIDF {
			// Ablation: fold tf·idf in per shard with local counts.
			for i := range ps {
				for t := range terms {
					if dfs[t] > 0 && shard.TotalStates > 0 {
						ps[i].base += b.W.TFIDF * ps[i].tfs[t] *
							math.Log(float64(shard.TotalStates)/float64(dfs[t]))
					}
				}
				ps[i].tfs = nil
			}
		}
		partials = append(partials, ps...)
		for i, df := range dfs {
			globalDF[i] += df
		}
		totalStates += shard.TotalStates
	}
	// Global idf (eq. 6.1): log of total states over total containing
	// states, summed across shards.
	idf := make([]float64, len(terms))
	for i, df := range globalDF {
		if df == 0 || totalStates == 0 {
			idf[i] = 0
			continue
		}
		idf[i] = math.Log(float64(totalStates) / float64(df))
	}
	if len(partials) == 0 {
		return nil, 0
	}
	// Step 1: add the tf·idf component. Step 2: sort by rank.
	out := make([]Result, len(partials))
	for i, p := range partials {
		score := p.base
		if !b.LocalIDF {
			for t := range terms {
				score += b.W.TFIDF * p.tfs[t] * idf[t]
			}
		}
		out[i] = Result{URL: p.url, State: p.state, Score: score}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		if out[i].URL != out[j].URL {
			return out[i].URL < out[j].URL
		}
		return out[i].State < out[j].State
	})
	return out, len(partials)
}

// TopK truncates a result list to its k best entries.
func TopK(rs []Result, k int) []Result {
	if k <= 0 || k >= len(rs) {
		return rs
	}
	return rs[:k]
}

// QueryString normalizes a query for display.
func QueryString(terms []string) string { return strings.Join(terms, " ") }
