package checkpoint

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"ajaxcrawl/internal/dom"
	"ajaxcrawl/internal/model"
	"ajaxcrawl/internal/shingle"
)

// testGraph builds a tiny application model for url with n states.
func testGraph(url string, n int) *model.Graph {
	g := model.NewGraph(url)
	for i := 0; i < n; i++ {
		var h dom.Hash
		h[0] = byte(i + 1)
		h[1] = byte(len(url))
		g.AddState(h, "state text", i)
	}
	return g
}

func mustOpen(t *testing.T, dir string, opts Options) *Journal {
	t.Helper()
	j, err := Open(context.Background(), dir, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return j
}

func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, dir, Options{CompactEvery: -1})
	var h dom.Hash
	h[0] = 0xAA
	if err := j.StateAdmitted("u1", h); err != nil {
		t.Fatalf("StateAdmitted: %v", err)
	}
	if err := j.HotNode("u1", "loadVideos(2)", "<div>page 2</div>"); err != nil {
		t.Fatalf("HotNode: %v", err)
	}
	for _, u := range []string{"u1", "u2", "u3"} {
		rec := PageRecord{URL: u, Graph: testGraph(u, 3), Metrics: []byte("metrics:" + u)}
		if err := j.PageDone(rec); err != nil {
			t.Fatalf("PageDone(%s): %v", u, err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	j2 := mustOpen(t, dir, Options{})
	defer j2.Close()
	ri := j2.Recovered()
	if ri.Pages != 3 || ri.States != 1 || ri.HotEntries != 1 {
		t.Fatalf("Recovered = %+v, want 3 pages, 1 state, 1 hot entry", ri)
	}
	if ri.TruncatedBytes != 0 {
		t.Fatalf("clean close recovered TruncatedBytes=%d, want 0", ri.TruncatedBytes)
	}
	for _, u := range []string{"u1", "u2", "u3"} {
		rec, ok := j2.Completed(u)
		if !ok {
			t.Fatalf("Completed(%s) missing after recovery", u)
		}
		if rec.Graph.URL != u || len(rec.Graph.States) != 3 {
			t.Fatalf("Completed(%s): graph URL=%q states=%d", u, rec.Graph.URL, len(rec.Graph.States))
		}
		if string(rec.Metrics) != "metrics:"+u {
			t.Fatalf("Completed(%s): metrics %q", u, rec.Metrics)
		}
	}
	if st := j2.States("u1"); len(st) != 1 || st[0] != h {
		t.Fatalf("States(u1) = %v", st)
	}
	hot := j2.HotEntries("u1")
	if hot["loadVideos(2)"] != "<div>page 2</div>" {
		t.Fatalf("HotEntries(u1) = %v", hot)
	}
	// Returned map is a copy: mutating it must not touch the journal.
	hot["loadVideos(2)"] = "tampered"
	if j2.HotEntries("u1")["loadVideos(2)"] != "<div>page 2</div>" {
		t.Fatal("HotEntries returned the journal's internal map")
	}
}

func TestJournalTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, dir, Options{CompactEvery: -1})
	for _, u := range []string{"a", "b"} {
		if err := j.PageDone(PageRecord{URL: u, Graph: testGraph(u, 1)}); err != nil {
			t.Fatalf("PageDone: %v", err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Simulate kill -9 mid-write: a torn frame at the tail (header that
	// promises more payload than exists).
	walPath := filepath.Join(dir, walFileName)
	f, err := os.OpenFile(walPath, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	torn := []byte{0xFF, 0x00, 0x00, 0x00, 1, 2, 3, 4, 0xDE, 0xAD}
	if _, err := f.Write(torn); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2 := mustOpen(t, dir, Options{CompactEvery: -1})
	ri := j2.Recovered()
	if ri.Pages != 2 {
		t.Fatalf("recovered %d pages, want 2", ri.Pages)
	}
	if ri.TruncatedBytes != int64(len(torn)) {
		t.Fatalf("TruncatedBytes=%d, want %d", ri.TruncatedBytes, len(torn))
	}
	// Appends continue from the truncation point.
	if err := j2.PageDone(PageRecord{URL: "c", Graph: testGraph("c", 1)}); err != nil {
		t.Fatalf("PageDone after recovery: %v", err)
	}
	if err := j2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	j3 := mustOpen(t, dir, Options{})
	defer j3.Close()
	if got := j3.CompletedPages(); got != 3 {
		t.Fatalf("after re-append recovered %d pages, want 3", got)
	}
	if j3.Recovered().TruncatedBytes != 0 {
		t.Fatalf("second recovery truncated %d bytes, want 0", j3.Recovered().TruncatedBytes)
	}
}

func TestJournalCorruptFrameTruncatesSuffix(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, dir, Options{CompactEvery: -1})
	for _, u := range []string{"a", "b", "c"} {
		if err := j.PageDone(PageRecord{URL: u, Graph: testGraph(u, 1)}); err != nil {
			t.Fatalf("PageDone: %v", err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Flip one byte in the last frame's payload: its CRC no longer
	// matches, so recovery must stop before it.
	walPath := filepath.Join(dir, walFileName)
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(walPath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	j2 := mustOpen(t, dir, Options{})
	defer j2.Close()
	if got := j2.Recovered().Pages; got != 2 {
		t.Fatalf("recovered %d pages past a corrupt frame, want 2", got)
	}
	if _, ok := j2.Completed("c"); ok {
		t.Fatal("corrupt frame for page c was accepted")
	}
	if j2.Recovered().TruncatedBytes == 0 {
		t.Fatal("corrupt suffix reported zero truncated bytes")
	}
}

func TestJournalCompaction(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, dir, Options{CompactEvery: 2})
	urls := []string{"a", "b", "c", "d", "e"}
	for _, u := range urls {
		if err := j.PageDone(PageRecord{URL: u, Graph: testGraph(u, 2), Metrics: []byte(u)}); err != nil {
			t.Fatalf("PageDone: %v", err)
		}
	}
	// 5 pages at CompactEvery=2 → compactions after b and d; the WAL
	// holds only e's frame, the snapshot a..d.
	st, err := os.Stat(filepath.Join(dir, snapFileName))
	if err != nil {
		t.Fatalf("snapshot missing after compaction: %v", err)
	}
	if st.Size() <= int64(headerLen) {
		t.Fatalf("snapshot is empty (%d bytes)", st.Size())
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	wst, err := os.Stat(filepath.Join(dir, walFileName))
	if err != nil {
		t.Fatal(err)
	}
	if wst.Size() >= st.Size() {
		t.Fatalf("WAL (%d bytes) not truncated below snapshot (%d bytes) by compaction", wst.Size(), st.Size())
	}

	j2 := mustOpen(t, dir, Options{})
	defer j2.Close()
	if got := j2.Recovered().Pages; got != len(urls) {
		t.Fatalf("recovered %d pages from snapshot+WAL, want %d", got, len(urls))
	}
	for _, u := range urls {
		rec, ok := j2.Completed(u)
		if !ok || string(rec.Metrics) != u {
			t.Fatalf("Completed(%s) = %+v, %v after compaction", u, rec, ok)
		}
	}
}

func TestJournalReset(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, dir, Options{CompactEvery: 1})
	if err := j.PageDone(PageRecord{URL: "a", Graph: testGraph("a", 1)}); err != nil {
		t.Fatalf("PageDone: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	j2 := mustOpen(t, dir, Options{Reset: true})
	defer j2.Close()
	if got := j2.CompletedPages(); got != 0 {
		t.Fatalf("reset journal recovered %d pages, want 0", got)
	}
	if _, err := os.Stat(filepath.Join(dir, snapFileName)); !os.IsNotExist(err) {
		t.Fatalf("reset left the snapshot behind (err=%v)", err)
	}
}

func TestJournalGarbageFileStartsFresh(t *testing.T) {
	dir := t.TempDir()
	walPath := filepath.Join(dir, walFileName)
	if err := os.WriteFile(walPath, []byte("not a journal at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	j := mustOpen(t, dir, Options{})
	if got := j.CompletedPages(); got != 0 {
		t.Fatalf("garbage file recovered %d pages", got)
	}
	if j.Recovered().TruncatedBytes == 0 {
		t.Fatal("garbage file reported zero truncated bytes")
	}
	if err := j.PageDone(PageRecord{URL: "a", Graph: testGraph("a", 1)}); err != nil {
		t.Fatalf("PageDone on rewritten journal: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	j2 := mustOpen(t, dir, Options{})
	defer j2.Close()
	if _, ok := j2.Completed("a"); !ok {
		t.Fatal("page written after header rewrite was not recovered")
	}
}

func TestJournalDuplicatePageDoneKeepsLatest(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, dir, Options{CompactEvery: -1})
	if err := j.PageDone(PageRecord{URL: "a", Graph: testGraph("a", 1), Metrics: []byte("v1")}); err != nil {
		t.Fatal(err)
	}
	if err := j.PageDone(PageRecord{URL: "a", Graph: testGraph("a", 2), Metrics: []byte("v2")}); err != nil {
		t.Fatal(err)
	}
	if got := j.CompletedPages(); got != 1 {
		t.Fatalf("CompletedPages=%d after duplicate, want 1", got)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2 := mustOpen(t, dir, Options{})
	defer j2.Close()
	rec, ok := j2.Completed("a")
	if !ok || string(rec.Metrics) != "v2" || len(rec.Graph.States) != 2 {
		t.Fatalf("duplicate replay kept %+v, want the later record", rec)
	}
}

func TestJournalFrontierRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, dir, Options{CompactEvery: -1})
	recs := []FrontierRecord{
		{URL: "u1", Partition: 0, Seq: 0, Priority: 0.75},
		{URL: "u2", Partition: 1, Seq: 3, Priority: 0.0625},
	}
	for _, r := range recs {
		if err := j.FrontierAdmitted(r); err != nil {
			t.Fatalf("FrontierAdmitted(%s): %v", r.URL, err)
		}
	}
	// Identical re-admission must not grow the journal.
	before := j.walBytes
	if err := j.FrontierAdmitted(recs[0]); err != nil {
		t.Fatalf("re-admit: %v", err)
	}
	if j.walBytes != before {
		t.Fatalf("duplicate frontier record grew the WAL by %d bytes", j.walBytes-before)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	j2 := mustOpen(t, dir, Options{})
	defer j2.Close()
	if got := j2.Recovered().FrontierURLs; got != 2 {
		t.Fatalf("recovered FrontierURLs = %d, want 2", got)
	}
	got := j2.FrontierEntries()
	if len(got) != 2 || got[0] != recs[0] || got[1] != recs[1] {
		t.Fatalf("FrontierEntries = %+v, want %+v", got, recs)
	}
}

func TestJournalFrontierSurvivesCompaction(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, dir, Options{CompactEvery: 2})
	want := FrontierRecord{URL: "pending", Partition: 2, Seq: 1, Priority: 0.5}
	if err := j.FrontierAdmitted(want); err != nil {
		t.Fatalf("FrontierAdmitted: %v", err)
	}
	// Two pages trigger a compaction, which resets the WAL; the
	// frontier record must be carried into the snapshot.
	for _, u := range []string{"a", "b"} {
		if err := j.PageDone(PageRecord{URL: u, Graph: testGraph(u, 1)}); err != nil {
			t.Fatalf("PageDone(%s): %v", u, err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	j2 := mustOpen(t, dir, Options{})
	defer j2.Close()
	got := j2.FrontierEntries()
	if len(got) != 1 || got[0] != want {
		t.Fatalf("FrontierEntries after compaction = %+v, want [%+v]", got, want)
	}
	if j2.CompletedPages() != 2 {
		t.Fatalf("CompletedPages = %d, want 2", j2.CompletedPages())
	}
}

// TestJournalStateSigRoundTrip pins the recStateSig record: signatures
// journaled mid-page survive close/recover keyed by state hash, the
// returned map is a copy, and unknown-length payloads never corrupt
// neighbouring records.
func TestJournalStateSigRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, dir, Options{CompactEvery: -1})
	var h1, h2 dom.Hash
	h1[0], h2[0] = 0x11, 0x22
	sig1 := shingle.Signature{1, 2, 3, 4}
	sig2 := shingle.Signature{9, 8, 7, 6, 5}
	if err := j.StateSig("u1", h1, sig1); err != nil {
		t.Fatalf("StateSig: %v", err)
	}
	if err := j.StateSig("u1", h2, sig2); err != nil {
		t.Fatalf("StateSig: %v", err)
	}
	if err := j.StateSig("u2", h1, sig2); err != nil {
		t.Fatalf("StateSig: %v", err)
	}
	// A later record must still replay after the sig records.
	if err := j.StateAdmitted("u1", h1); err != nil {
		t.Fatalf("StateAdmitted: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	j2 := mustOpen(t, dir, Options{})
	defer j2.Close()
	if ri := j2.Recovered(); ri.StateSigs != 3 || ri.States != 1 {
		t.Fatalf("Recovered = %+v, want 3 state sigs and 1 state", ri)
	}
	sigs := j2.StateSigs("u1")
	if len(sigs) != 2 {
		t.Fatalf("StateSigs(u1) = %v", sigs)
	}
	for i, v := range sig1 {
		if sigs[h1][i] != v {
			t.Fatalf("StateSigs(u1)[h1] = %v, want %v", sigs[h1], sig1)
		}
	}
	if len(sigs[h2]) != len(sig2) {
		t.Fatalf("StateSigs(u1)[h2] = %v, want %v", sigs[h2], sig2)
	}
	if j2.StateSigs("nope") != nil {
		t.Fatalf("StateSigs(nope) != nil")
	}
	// Returned map is a copy.
	sigs[h1] = shingle.Signature{0}
	if len(j2.StateSigs("u1")[h1]) != len(sig1) {
		t.Fatal("StateSigs returned the journal's internal map")
	}
}

// TestJournalStateSigDroppedByCompaction: sig records are mid-page
// progress, made redundant once their page completes — compaction must
// not carry them into the snapshot.
func TestJournalStateSigDroppedByCompaction(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, dir, Options{CompactEvery: 1})
	var h dom.Hash
	h[0] = 0x33
	if err := j.StateSig("a", h, shingle.Signature{42}); err != nil {
		t.Fatalf("StateSig: %v", err)
	}
	// PageDone triggers compaction (CompactEvery=1).
	if err := j.PageDone(PageRecord{URL: "a", Graph: testGraph("a", 1)}); err != nil {
		t.Fatalf("PageDone: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	j2 := mustOpen(t, dir, Options{})
	defer j2.Close()
	if got := j2.StateSigs("a"); got != nil {
		t.Fatalf("sig record survived compaction: %v", got)
	}
	if _, ok := j2.Completed("a"); !ok {
		t.Fatalf("page lost by compaction")
	}
}
