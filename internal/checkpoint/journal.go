// Package checkpoint implements the durable crawl journal that makes a
// partition crawl crash-tolerant: an append-only write-ahead log of
// per-partition progress (completed pages with their application models,
// admitted state hashes, hot-node cache fills) plus periodic compacted
// snapshots of the completed pages.
//
// The format follows the WAL discipline of production crawlers
// (Mercator-style frontier persistence): every record is one
// length-prefixed, CRC-checksummed frame, so a crash — including
// `kill -9` mid-write — leaves at worst a torn tail that recovery
// truncates away. Everything before the tear replays losslessly, which
// is what lets a resumed crawl skip already-completed pages and converge
// to the same state set as an uninterrupted run.
//
// On-disk layout inside one journal directory:
//
//	journal.wal   — header "AJWL"+version, then frames appended in order
//	snapshot.ajcp — same frame stream holding only page records, written
//	                atomically (temp + rename) at each compaction
//
// Frame: u32le payload length | u32le CRC-32C(payload) | payload.
// Payload: record type byte, then length-prefixed fields.
//
// Like the index decoders, the read side treats the file as untrusted:
// counts are bounded, pre-allocations capped at what the file actually
// backs, decoder panics convert to a stop, and replay never fails Open —
// a corrupt or truncated suffix only shortens what is recovered.
package checkpoint

import (
	"bufio"
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"sync"

	"ajaxcrawl/internal/dom"
	"ajaxcrawl/internal/model"
	"ajaxcrawl/internal/obs"
	"ajaxcrawl/internal/shingle"
)

const (
	// walFileName is the append-only journal inside a journal directory.
	walFileName = "journal.wal"
	// snapFileName is the compacted snapshot of completed pages.
	snapFileName = "snapshot.ajcp"

	journalMagic   = "AJWL"
	journalVersion = 1

	recPageDone byte = 1
	recState    byte = 2
	recHotNode  byte = 3
	recFrontier byte = 4
	// recStateSig pairs an admitted state hash with its near-dup sketch
	// signature. A separate record type (not a new recState field) keeps
	// journals written by older code replayable by this one and vice
	// versa: readers treat unknown types as a tear point, so appending a
	// new type never corrupts an old reader's prefix.
	recStateSig byte = 5

	// maxFramePayload bounds the length prefix of a frame. A lying
	// header beyond it is treated as a torn tail, not an allocation.
	maxFramePayload = 1 << 28
	// maxFieldLen bounds every length-prefixed field inside a payload.
	maxFieldLen = 1 << 26
	// maxPrealloc caps how much a single untrusted length is trusted
	// for pre-allocation; larger fields grow as real bytes arrive.
	maxPrealloc = 1 << 16
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// headerLen is the byte length of the file header (magic + version).
const headerLen = len(journalMagic) + 1

// Options configure a journal.
type Options struct {
	// CompactEvery compacts the journal into a fresh snapshot after this
	// many page records since the last compaction. 0 means the default
	// (16); negative disables compaction.
	CompactEvery int
	// Reset discards any existing journal in the directory instead of
	// recovering it — a fresh crawl rather than a resume.
	Reset bool
}

// defaultCompactEvery is the page interval between snapshot compactions.
const defaultCompactEvery = 16

// PageRecord is one durably completed page: its URL, its application
// model, and an opaque caller-defined metrics payload (the crawler
// journals its gob-encoded PageMetrics there, so a resumed run's
// aggregate metrics match an uninterrupted one).
type PageRecord struct {
	URL     string
	Graph   *model.Graph
	Metrics []byte
}

// FrontierRecord is one admitted frontier item: a URL with its place in
// the partition layout and its admission priority. The parallel crawler
// journals these into a dedicated frontier journal so a resumed crawl
// rebuilds the same prioritized frontier — including priorities that
// carried a learned yield boost — instead of recomputing from scratch.
type FrontierRecord struct {
	URL            string
	Partition, Seq int
	Priority       float64
}

// RecoveryInfo summarizes what Open recovered from disk.
type RecoveryInfo struct {
	// Pages is the number of completed pages replayed.
	Pages int
	// States is the number of mid-page state records replayed.
	States int
	// StateSigs is the number of mid-page state-signature records
	// replayed.
	StateSigs int
	// HotEntries is the number of hot-node cache fills replayed.
	HotEntries int
	// FrontierURLs is the number of distinct frontier admissions replayed.
	FrontierURLs int
	// TruncatedBytes counts journal bytes dropped by torn-tail recovery
	// (0 for a cleanly closed journal).
	TruncatedBytes int64
}

// Journal is one partition's durable crawl log. All methods are safe for
// concurrent use, though a crawl writes from a single process line.
type Journal struct {
	mu  sync.Mutex
	dir string
	tel *obs.Telemetry
	ctx context.Context

	f *os.File
	w *bufio.Writer

	// err is sticky: after any write failure the journal refuses further
	// work, so a half-written frame can never be followed by records the
	// caller believes durable.
	err error

	pages         map[string]PageRecord
	pageOrder     []string
	states        map[string][]dom.Hash
	stateSigs     map[string]map[dom.Hash]shingle.Signature
	hot           map[string]map[string]string
	frontier      map[string]FrontierRecord
	frontierOrder []string

	compactEvery int
	sinceCompact int
	walBytes     int64
	recovered    RecoveryInfo
}

// Open opens (creating or recovering) the journal in dir. Recovery
// replays the snapshot, then the WAL, stopping at the first torn or
// corrupt frame and truncating the file there so appends continue from
// the last durable record. The context supplies telemetry: recovery
// emits a checkpoint.recover span, writes count into
// crawl.partition.journal_bytes.
func Open(ctx context.Context, dir string, opts Options) (*Journal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: open %s: %w", dir, err)
	}
	j := &Journal{
		dir:          dir,
		tel:          obs.From(ctx),
		ctx:          ctx,
		pages:        make(map[string]PageRecord),
		states:       make(map[string][]dom.Hash),
		stateSigs:    make(map[string]map[dom.Hash]shingle.Signature),
		hot:          make(map[string]map[string]string),
		frontier:     make(map[string]FrontierRecord),
		compactEvery: opts.CompactEvery,
	}
	if j.compactEvery == 0 {
		j.compactEvery = defaultCompactEvery
	}
	walPath := filepath.Join(dir, walFileName)
	snapPath := filepath.Join(dir, snapFileName)
	if opts.Reset {
		if err := os.Remove(walPath); err != nil && !os.IsNotExist(err) {
			return nil, fmt.Errorf("checkpoint: reset %s: %w", walPath, err)
		}
		if err := os.Remove(snapPath); err != nil && !os.IsNotExist(err) {
			return nil, fmt.Errorf("checkpoint: reset %s: %w", snapPath, err)
		}
	}

	_, sp := obs.StartSpan(ctx, obs.SpanCheckpointRecover, obs.A("dir", dir))
	// Snapshot first: it holds the compacted prefix of the log. A torn
	// snapshot (it is written atomically, so this means outside
	// interference) recovers its intact prefix like the WAL does.
	if err := j.replayFile(snapPath, nil); err != nil {
		sp.End(err)
		return nil, err
	}
	var goodOffset int64
	if err := j.replayFile(walPath, &goodOffset); err != nil {
		sp.End(err)
		return nil, err
	}

	f, err := os.OpenFile(walPath, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		sp.End(err)
		return nil, fmt.Errorf("checkpoint: open %s: %w", walPath, err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		sp.End(err)
		return nil, fmt.Errorf("checkpoint: open %s: %w", walPath, err)
	}
	if goodOffset < int64(headerLen) {
		// Empty, headerless, or corrupt-from-the-start file: rewrite it.
		j.recovered.TruncatedBytes += st.Size()
		if err := f.Truncate(0); err != nil {
			f.Close()
			sp.End(err)
			return nil, fmt.Errorf("checkpoint: reset %s: %w", walPath, err)
		}
		if _, err := f.WriteAt(append([]byte(journalMagic), journalVersion), 0); err != nil {
			f.Close()
			sp.End(err)
			return nil, fmt.Errorf("checkpoint: header %s: %w", walPath, err)
		}
		goodOffset = int64(headerLen)
	} else if goodOffset < st.Size() {
		// Torn tail: drop the bytes past the last intact frame so the
		// next append starts on a frame boundary.
		j.recovered.TruncatedBytes += st.Size() - goodOffset
		if err := f.Truncate(goodOffset); err != nil {
			f.Close()
			sp.End(err)
			return nil, fmt.Errorf("checkpoint: truncate %s: %w", walPath, err)
		}
	}
	if _, err := f.Seek(goodOffset, io.SeekStart); err != nil {
		f.Close()
		sp.End(err)
		return nil, fmt.Errorf("checkpoint: seek %s: %w", walPath, err)
	}
	j.f = f
	j.w = bufio.NewWriterSize(f, 64*1024)
	j.walBytes = goodOffset
	sp.SetAttr("pages", strconv.Itoa(j.recovered.Pages))
	sp.SetAttr("truncated_bytes", strconv.FormatInt(j.recovered.TruncatedBytes, 10))
	sp.End(nil)
	return j, nil
}

// replayFile replays one frame file into the in-memory maps. Missing
// files are fine (fresh journal). When goodOffset is non-nil it receives
// the offset just past the last intact, decodable frame; replay stops —
// without error — at the first torn or corrupt one.
func (j *Journal) replayFile(path string, goodOffset *int64) error {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("checkpoint: recover %s: %w", path, err)
	}
	defer f.Close()
	off := replayFrames(f, func(payload []byte) bool {
		return j.applyRecord(payload)
	})
	if goodOffset != nil {
		*goodOffset = off
	}
	return nil
}

// replayFrames reads header + frames from r, calling apply for each
// CRC-intact frame until apply rejects one or the stream tears. It
// returns the offset just past the last accepted frame (0 when even the
// header is unusable). Decoder panics on hostile input are contained
// here: the frame that panicked is treated as the tear point.
func replayFrames(r io.Reader, apply func(payload []byte) bool) (goodOffset int64) {
	br := bufio.NewReaderSize(r, 64*1024)
	hdr := make([]byte, headerLen)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return 0
	}
	if string(hdr[:len(journalMagic)]) != journalMagic || hdr[len(journalMagic)] != journalVersion {
		return 0
	}
	goodOffset = int64(headerLen)
	var fh [8]byte
	for {
		if _, err := io.ReadFull(br, fh[:]); err != nil {
			return goodOffset // clean EOF or torn frame header
		}
		plen := binary.LittleEndian.Uint32(fh[0:4])
		crc := binary.LittleEndian.Uint32(fh[4:8])
		if plen == 0 || plen > maxFramePayload {
			return goodOffset
		}
		// Read through a limited reader with growth-by-arrival, so a
		// lying length can't allocate more than the file backs.
		payload, err := readCapped(br, int(plen))
		if err != nil || len(payload) != int(plen) {
			return goodOffset
		}
		if crc32.Checksum(payload, crcTable) != crc {
			return goodOffset
		}
		if !safeApply(apply, payload) {
			return goodOffset
		}
		goodOffset += 8 + int64(plen)
	}
}

// safeApply runs apply, converting a decoder panic into a rejection.
func safeApply(apply func([]byte) bool, payload []byte) (ok bool) {
	defer func() {
		if recover() != nil {
			ok = false
		}
	}()
	return apply(payload)
}

// readCapped reads exactly n bytes, pre-allocating at most maxPrealloc.
func readCapped(r io.Reader, n int) ([]byte, error) {
	capHint := n
	if capHint > maxPrealloc {
		capHint = maxPrealloc
	}
	buf := make([]byte, 0, capHint)
	chunk := make([]byte, 32*1024)
	for len(buf) < n {
		want := n - len(buf)
		if want > len(chunk) {
			want = len(chunk)
		}
		m, err := r.Read(chunk[:want])
		buf = append(buf, chunk[:m]...)
		if err != nil {
			return buf, err
		}
	}
	return buf, nil
}

// applyRecord decodes one frame payload and folds it into the in-memory
// maps. It returns false for undecodable payloads (the tear point).
func (j *Journal) applyRecord(payload []byte) bool {
	r := bytes.NewReader(payload)
	typ, err := r.ReadByte()
	if err != nil {
		return false
	}
	switch typ {
	case recPageDone:
		url, err := readField(r)
		if err != nil {
			return false
		}
		graphBytes, err := readField(r)
		if err != nil {
			return false
		}
		metrics, err := readField(r)
		if err != nil {
			return false
		}
		g, err := model.DecodeGraph(graphBytes)
		if err != nil {
			return false
		}
		u := string(url)
		if _, dup := j.pages[u]; !dup {
			j.pageOrder = append(j.pageOrder, u)
		}
		j.pages[u] = PageRecord{URL: u, Graph: g, Metrics: metrics}
		j.recovered.Pages++
		return true
	case recState:
		url, err := readField(r)
		if err != nil {
			return false
		}
		var h dom.Hash
		if _, err := io.ReadFull(r, h[:]); err != nil {
			return false
		}
		j.states[string(url)] = append(j.states[string(url)], h)
		j.recovered.States++
		return true
	case recStateSig:
		url, err := readField(r)
		if err != nil {
			return false
		}
		var h dom.Hash
		if _, err := io.ReadFull(r, h[:]); err != nil {
			return false
		}
		sigBytes, err := readField(r)
		if err != nil || len(sigBytes)%8 != 0 {
			return false
		}
		sig := make(shingle.Signature, len(sigBytes)/8)
		for i := range sig {
			sig[i] = binary.LittleEndian.Uint64(sigBytes[i*8:])
		}
		u := string(url)
		if j.stateSigs[u] == nil {
			j.stateSigs[u] = make(map[dom.Hash]shingle.Signature)
		}
		j.stateSigs[u][h] = sig
		j.recovered.StateSigs++
		return true
	case recHotNode:
		url, err := readField(r)
		if err != nil {
			return false
		}
		key, err := readField(r)
		if err != nil {
			return false
		}
		body, err := readField(r)
		if err != nil {
			return false
		}
		u := string(url)
		if j.hot[u] == nil {
			j.hot[u] = make(map[string]string)
		}
		j.hot[u][string(key)] = string(body)
		j.recovered.HotEntries++
		return true
	case recFrontier:
		url, err := readField(r)
		if err != nil {
			return false
		}
		part, err := binary.ReadUvarint(r)
		if err != nil || part > 1<<31 {
			return false
		}
		seq, err := binary.ReadUvarint(r)
		if err != nil || seq > 1<<31 {
			return false
		}
		var bits [8]byte
		if _, err := io.ReadFull(r, bits[:]); err != nil {
			return false
		}
		u := string(url)
		if _, dup := j.frontier[u]; !dup {
			j.frontierOrder = append(j.frontierOrder, u)
			j.recovered.FrontierURLs++
		}
		j.frontier[u] = FrontierRecord{
			URL:       u,
			Partition: int(part),
			Seq:       int(seq),
			Priority:  math.Float64frombits(binary.LittleEndian.Uint64(bits[:])),
		}
		return true
	default:
		return false
	}
}

// encodeFrontier builds one frontier frame payload.
func encodeFrontier(rec FrontierRecord) []byte {
	var payload bytes.Buffer
	payload.WriteByte(recFrontier)
	putField(&payload, []byte(rec.URL))
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(rec.Partition))
	payload.Write(tmp[:n])
	n = binary.PutUvarint(tmp[:], uint64(rec.Seq))
	payload.Write(tmp[:n])
	var bits [8]byte
	binary.LittleEndian.PutUint64(bits[:], math.Float64bits(rec.Priority))
	payload.Write(bits[:])
	return payload.Bytes()
}

// readField reads one length-prefixed field with bounded length and
// capped pre-allocation.
func readField(r *bytes.Reader) ([]byte, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	if n > maxFieldLen {
		return nil, fmt.Errorf("checkpoint: field length %d exceeds limit", n)
	}
	if int64(n) > int64(r.Len()) {
		return nil, io.ErrUnexpectedEOF
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

func putField(buf *bytes.Buffer, b []byte) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(len(b)))
	buf.Write(tmp[:n])
	buf.Write(b)
}

// Recovered reports what Open replayed from disk.
func (j *Journal) Recovered() RecoveryInfo {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.recovered
}

// CompletedPages returns the number of pages the journal holds.
func (j *Journal) CompletedPages() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.pages)
}

// Completed returns the journaled record of url, if the page finished in
// this or a previous (recovered) run.
func (j *Journal) Completed(url string) (PageRecord, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	rec, ok := j.pages[url]
	return rec, ok
}

// States returns the mid-page state hashes journaled for url, in
// admission order — the partial-progress trail of an interrupted page.
func (j *Journal) States(url string) []dom.Hash {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]dom.Hash, len(j.states[url]))
	copy(out, j.states[url])
	return out
}

// HotEntries returns the journaled hot-node cache fills for url (nil
// when none) — a re-crawl of an interrupted page seeds its cache from
// these, so repeat hot calls skip the network exactly as they did before
// the crash.
func (j *Journal) HotEntries(url string) map[string]string {
	j.mu.Lock()
	defer j.mu.Unlock()
	entries := j.hot[url]
	if len(entries) == 0 {
		return nil
	}
	out := make(map[string]string, len(entries))
	for k, v := range entries {
		out[k] = v
	}
	return out
}

// PageDone durably records a completed page: the frame is written and
// flushed to the OS before PageDone returns, so a process kill after it
// can never lose the page. Every CompactEvery pages the journal compacts
// itself into a fresh snapshot.
func (j *Journal) PageDone(rec PageRecord) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return j.err
	}
	_, sp := obs.StartSpan(j.ctx, obs.SpanCheckpointWrite, obs.A("url", rec.URL))
	graphBytes, err := model.EncodeGraph(rec.Graph)
	if err != nil {
		err = fmt.Errorf("checkpoint: encode graph %s: %w", rec.URL, err)
		sp.End(err)
		return err
	}
	var payload bytes.Buffer
	payload.WriteByte(recPageDone)
	putField(&payload, []byte(rec.URL))
	putField(&payload, graphBytes)
	putField(&payload, rec.Metrics)
	if err := j.writeFrame(payload.Bytes()); err != nil {
		sp.End(err)
		return err
	}
	// The page frame is the durability point: flush it through to the OS
	// so only a machine (not process) crash can lose it.
	if err := j.flushLocked(); err != nil {
		sp.End(err)
		return err
	}
	if _, dup := j.pages[rec.URL]; !dup {
		j.pageOrder = append(j.pageOrder, rec.URL)
	}
	j.pages[rec.URL] = rec
	j.sinceCompact++
	var cerr error
	if j.compactEvery > 0 && j.sinceCompact >= j.compactEvery {
		cerr = j.compactLocked()
	}
	sp.End(cerr)
	return cerr
}

// StateAdmitted journals a state discovered mid-page. These records are
// buffered (flushed with the next page frame), so they cost no extra
// syscalls on the hot path.
func (j *Journal) StateAdmitted(url string, h dom.Hash) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return j.err
	}
	var payload bytes.Buffer
	payload.WriteByte(recState)
	putField(&payload, []byte(url))
	payload.Write(h[:])
	if err := j.writeFrame(payload.Bytes()); err != nil {
		return err
	}
	j.states[url] = append(j.states[url], h)
	return nil
}

// StateSig journals an admitted state's near-dup sketch signature
// mid-page (buffered, like StateAdmitted). On resume these let the
// re-crawl of an interrupted page rebuild its LSH index without
// re-sketching the states it already saw.
func (j *Journal) StateSig(url string, h dom.Hash, sig shingle.Signature) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return j.err
	}
	var payload bytes.Buffer
	payload.WriteByte(recStateSig)
	putField(&payload, []byte(url))
	payload.Write(h[:])
	sigBytes := make([]byte, len(sig)*8)
	for i, v := range sig {
		binary.LittleEndian.PutUint64(sigBytes[i*8:], v)
	}
	putField(&payload, sigBytes)
	if err := j.writeFrame(payload.Bytes()); err != nil {
		return err
	}
	if j.stateSigs[url] == nil {
		j.stateSigs[url] = make(map[dom.Hash]shingle.Signature)
	}
	j.stateSigs[url][h] = sig
	return nil
}

// StateSigs returns the journaled state signatures for url keyed by
// state hash (nil when none).
func (j *Journal) StateSigs(url string) map[dom.Hash]shingle.Signature {
	j.mu.Lock()
	defer j.mu.Unlock()
	sigs := j.stateSigs[url]
	if len(sigs) == 0 {
		return nil
	}
	out := make(map[dom.Hash]shingle.Signature, len(sigs))
	for h, sig := range sigs {
		out[h] = sig
	}
	return out
}

// HotNode journals one hot-node cache fill mid-page (buffered, like
// StateAdmitted).
func (j *Journal) HotNode(url, key, body string) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return j.err
	}
	var payload bytes.Buffer
	payload.WriteByte(recHotNode)
	putField(&payload, []byte(url))
	putField(&payload, []byte(key))
	putField(&payload, []byte(body))
	if err := j.writeFrame(payload.Bytes()); err != nil {
		return err
	}
	if j.hot[url] == nil {
		j.hot[url] = make(map[string]string)
	}
	j.hot[url][key] = body
	return nil
}

// FrontierAdmitted journals one frontier admission (buffered, like
// StateAdmitted; callers flush after an admission batch). Re-admissions
// of an already-journaled URL with identical fields are skipped, so the
// journal stays bounded by the distinct URL universe across however
// many resumes re-admit it.
func (j *Journal) FrontierAdmitted(rec FrontierRecord) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return j.err
	}
	if prev, dup := j.frontier[rec.URL]; dup && prev == rec {
		return nil
	}
	if err := j.writeFrame(encodeFrontier(rec)); err != nil {
		return err
	}
	if _, dup := j.frontier[rec.URL]; !dup {
		j.frontierOrder = append(j.frontierOrder, rec.URL)
	}
	j.frontier[rec.URL] = rec
	return nil
}

// FrontierEntries returns every journaled frontier admission in first-
// admission order — the resume path's frontier snapshot.
func (j *Journal) FrontierEntries() []FrontierRecord {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]FrontierRecord, 0, len(j.frontierOrder))
	for _, u := range j.frontierOrder {
		out = append(out, j.frontier[u])
	}
	return out
}

// writeFrame appends one frame. Any failure is sticky.
func (j *Journal) writeFrame(payload []byte) error {
	if len(payload) > maxFramePayload {
		j.err = fmt.Errorf("checkpoint: frame payload %d exceeds limit %d", len(payload), maxFramePayload)
		return j.err
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
	if _, err := j.w.Write(hdr[:]); err != nil {
		j.err = fmt.Errorf("checkpoint: write %s: %w", j.dir, err)
		return j.err
	}
	if _, err := j.w.Write(payload); err != nil {
		j.err = fmt.Errorf("checkpoint: write %s: %w", j.dir, err)
		return j.err
	}
	n := int64(8 + len(payload))
	j.walBytes += n
	j.tel.Counter("crawl.partition.journal_bytes").Add(n)
	return nil
}

// Flush pushes buffered records through to the OS.
func (j *Journal) Flush() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.flushLocked()
}

func (j *Journal) flushLocked() error {
	if j.err != nil {
		return j.err
	}
	if err := j.w.Flush(); err != nil {
		j.err = fmt.Errorf("checkpoint: flush %s: %w", j.dir, err)
	}
	return j.err
}

// compactLocked folds every completed page into a fresh snapshot file
// (temp + atomic rename, like the index manifest publish) and resets the
// WAL to just its header, bounding journal growth and resume replay
// time. Mid-page records of pages that later completed become redundant
// and are dropped with the old WAL.
func (j *Journal) compactLocked() error {
	_, sp := obs.StartSpan(j.ctx, obs.SpanCheckpointCompact,
		obs.A("dir", j.dir), obs.A("pages", strconv.Itoa(len(j.pages))))
	err := j.compactFiles()
	if err != nil {
		j.err = err
	} else {
		j.sinceCompact = 0
		j.tel.Counter("checkpoint.compactions").Inc()
	}
	sp.End(err)
	return err
}

func (j *Journal) compactFiles() error {
	tmp, err := os.CreateTemp(j.dir, "snapshot-*.tmp")
	if err != nil {
		return fmt.Errorf("checkpoint: compact %s: %w", j.dir, err)
	}
	tmpPath := tmp.Name()
	cleanup := func() { tmp.Close(); os.Remove(tmpPath) }
	if _, err := tmp.Write(append([]byte(journalMagic), journalVersion)); err != nil {
		cleanup()
		return fmt.Errorf("checkpoint: compact %s: %w", j.dir, err)
	}
	for _, url := range j.pageOrder {
		rec := j.pages[url]
		graphBytes, err := model.EncodeGraph(rec.Graph)
		if err != nil {
			cleanup()
			return fmt.Errorf("checkpoint: compact %s: encode %s: %w", j.dir, url, err)
		}
		var payload bytes.Buffer
		payload.WriteByte(recPageDone)
		putField(&payload, []byte(url))
		putField(&payload, graphBytes)
		putField(&payload, rec.Metrics)
		var hdr [8]byte
		binary.LittleEndian.PutUint32(hdr[0:4], uint32(payload.Len()))
		binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload.Bytes(), crcTable))
		if _, err := tmp.Write(hdr[:]); err != nil {
			cleanup()
			return fmt.Errorf("checkpoint: compact %s: %w", j.dir, err)
		}
		if _, err := tmp.Write(payload.Bytes()); err != nil {
			cleanup()
			return fmt.Errorf("checkpoint: compact %s: %w", j.dir, err)
		}
	}
	// Frontier admissions survive compaction: unlike mid-page records
	// they are not made redundant by completed pages — a resumed crawl
	// needs them to rebuild the queue of pages that never completed.
	for _, url := range j.frontierOrder {
		payload := encodeFrontier(j.frontier[url])
		var hdr [8]byte
		binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
		binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
		if _, err := tmp.Write(hdr[:]); err != nil {
			cleanup()
			return fmt.Errorf("checkpoint: compact %s: %w", j.dir, err)
		}
		if _, err := tmp.Write(payload); err != nil {
			cleanup()
			return fmt.Errorf("checkpoint: compact %s: %w", j.dir, err)
		}
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return fmt.Errorf("checkpoint: compact %s: %w", j.dir, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpPath)
		return fmt.Errorf("checkpoint: compact %s: %w", j.dir, err)
	}
	if err := os.Rename(tmpPath, filepath.Join(j.dir, snapFileName)); err != nil {
		os.Remove(tmpPath)
		return fmt.Errorf("checkpoint: compact %s: %w", j.dir, err)
	}
	// The snapshot now owns every page; reset the WAL to its header.
	// Ordering matters: the rename lands before the truncate, so a crash
	// between the two replays pages from both files (idempotent), never
	// from neither.
	if err := j.w.Flush(); err != nil {
		return fmt.Errorf("checkpoint: compact %s: %w", j.dir, err)
	}
	if err := j.f.Truncate(int64(headerLen)); err != nil {
		return fmt.Errorf("checkpoint: compact %s: %w", j.dir, err)
	}
	if _, err := j.f.Seek(int64(headerLen), io.SeekStart); err != nil {
		return fmt.Errorf("checkpoint: compact %s: %w", j.dir, err)
	}
	j.walBytes = int64(headerLen)
	return nil
}

// Close flushes buffered records, syncs the WAL, and closes it. The
// journal is unusable afterwards; reopen with Open to resume.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return j.err
	}
	flushErr := j.flushLocked()
	syncErr := j.f.Sync()
	closeErr := j.f.Close()
	j.f = nil
	if flushErr != nil {
		return flushErr
	}
	if syncErr != nil {
		return fmt.Errorf("checkpoint: sync %s: %w", j.dir, syncErr)
	}
	if closeErr != nil {
		return fmt.Errorf("checkpoint: close %s: %w", j.dir, closeErr)
	}
	return nil
}
