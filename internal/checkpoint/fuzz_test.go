package checkpoint

import (
	"context"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// fuzzSeedJournal builds a valid journal file's bytes by writing through
// the real API and reading the WAL back.
func fuzzSeedJournal(f *testing.F) []byte {
	f.Helper()
	dir := f.TempDir()
	j, err := Open(context.Background(), dir, Options{CompactEvery: -1})
	if err != nil {
		f.Fatalf("seed journal: %v", err)
	}
	if err := j.PageDone(PageRecord{URL: "seed", Graph: testGraph("seed", 2), Metrics: []byte("m")}); err != nil {
		f.Fatalf("seed journal: %v", err)
	}
	if err := j.HotNode("seed", "k", "v"); err != nil {
		f.Fatalf("seed journal: %v", err)
	}
	if err := j.Close(); err != nil {
		f.Fatalf("seed journal: %v", err)
	}
	data, err := os.ReadFile(filepath.Join(dir, walFileName))
	if err != nil {
		f.Fatalf("seed journal: %v", err)
	}
	return data
}

// FuzzJournalReplay feeds arbitrary bytes to recovery as the WAL file.
// Invariants: Open never panics and never fails (corruption only
// shortens what is recovered), and the recovered journal accepts appends
// that survive a further reopen.
func FuzzJournalReplay(f *testing.F) {
	valid := fuzzSeedJournal(f)
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte(journalMagic))                           // header torn mid-magic
	f.Add(append([]byte(journalMagic), journalVersion))   // header only
	f.Add(append([]byte(journalMagic), journalVersion+9)) // wrong version
	f.Add([]byte("XXXX\x01 garbage body"))                // bad magic
	if len(valid) > 10 {
		f.Add(valid[:len(valid)-7]) // torn tail mid-frame
		f.Add(valid[:headerLen+3])  // torn frame header
		corrupt := append([]byte(nil), valid...)
		corrupt[len(corrupt)-1] ^= 0x55 // CRC mismatch in last frame
		f.Add(corrupt)
	}
	// Frame header promising a huge payload the file doesn't back.
	lying := append([]byte(journalMagic), journalVersion)
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], maxFramePayload)
	binary.LittleEndian.PutUint32(hdr[4:8], 0xDEADBEEF)
	f.Add(append(lying, hdr[:]...))
	// CRC-intact frame whose payload lies about an inner field length.
	badField := []byte{recPageDone, 0xFF, 0xFF, 0xFF, 0x7F}
	var fh [8]byte
	binary.LittleEndian.PutUint32(fh[0:4], uint32(len(badField)))
	binary.LittleEndian.PutUint32(fh[4:8], crc32.Checksum(badField, crcTable))
	f.Add(append(append(append([]byte(journalMagic), journalVersion), fh[:]...), badField...))

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, walFileName), data, 0o644); err != nil {
			t.Fatal(err)
		}
		j, err := Open(context.Background(), dir, Options{CompactEvery: -1})
		if err != nil {
			t.Fatalf("Open rejected arbitrary WAL bytes: %v", err)
		}
		before := j.CompletedPages()
		if err := j.PageDone(PageRecord{URL: "after-recover", Graph: testGraph("after-recover", 1)}); err != nil {
			t.Fatalf("PageDone after recovery: %v", err)
		}
		if err := j.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		j2, err := Open(context.Background(), dir, Options{CompactEvery: -1})
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		defer j2.Close()
		if _, ok := j2.Completed("after-recover"); !ok {
			t.Fatal("append after recovery lost on reopen")
		}
		if got := j2.CompletedPages(); got < before {
			t.Fatalf("reopen recovered %d pages, fewer than the %d first recovery saw", got, before)
		}
	})
}
