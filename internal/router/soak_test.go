package router

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ajaxcrawl/internal/admission"
	"ajaxcrawl/internal/obs"
	"ajaxcrawl/internal/query"
	"ajaxcrawl/internal/serve"
	"ajaxcrawl/internal/webapp"
)

// soakBackend wraps a shard backend with a kill switch and a budget
// audit: every execution that begins with an already-expired deadline
// budget is counted, so the soak can assert there were exactly zero.
type soakBackend struct {
	inner   Backend
	down    atomic.Bool
	calls   atomic.Int64
	expired atomic.Int64
}

func (b *soakBackend) ShardSearch(ctx context.Context, q string) (*query.ShardResult, error) {
	b.calls.Add(1)
	if rem, ok := BudgetRemaining(ctx); ok && rem <= 0 {
		b.expired.Add(1)
	}
	if b.down.Load() {
		return nil, errReplicaDown
	}
	return b.inner.ShardSearch(ctx, q)
}

func (b *soakBackend) Probe(ctx context.Context) error {
	if b.down.Load() {
		return errReplicaDown
	}
	return ctx.Err()
}

// TestFleetSoakOverloadWithFlappingReplica is the PR's acceptance soak:
// a two-shard, two-replica fleet on the virtual clock, driven at twice
// the admission capacity while one replica flaps. It must hold four
// properties at once:
//
//  1. the adaptive limiter absorbs the overload — the wait queue fills
//     but always drains back to zero between waves (no sustained growth);
//  2. zero expired-budget executions — a query whose propagated budget
//     dies in the queue is rejected up front, never run;
//  3. the flapping replica is ejected (queries stop rediscovering it)
//     and later re-admitted through probation probes, all visible in
//     the router.replica.* metrics family;
//  4. every non-degraded (200) response is byte-identical to the
//     healthy, unloaded baseline.
func TestFleetSoakOverloadWithFlappingReplica(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet soak: skipped in -short mode")
	}
	const (
		shards   = 2
		capacity = 4            // admission limit
		wave     = 2 * capacity // 2x capacity per wave
		k        = 10
	)
	clock := newTestClock()
	graphs, pr := crawlCorpus(t, 12, 31)
	dirs := publishPartitioned(t, graphs, pr, shards)

	// Two replicas per shard serving the same snapshot; every backend is
	// wrapped for the budget audit, and shard 0's first replica is the
	// one that will flap.
	var wrapped []*soakBackend
	topo := make([][]Backend, shards)
	for i, dir := range dirs {
		snap, _, err := serve.LoadSnapshot(dir, nil)
		if err != nil {
			t.Fatal(err)
		}
		qs := query.NewServer(snap, query.CacheOptions{})
		reps := make([]Backend, 2)
		for j := range reps {
			sb := &soakBackend{inner: LocalBackend{QS: qs}}
			wrapped = append(wrapped, sb)
			reps[j] = sb
		}
		topo[i] = reps
	}
	flaky := wrapped[0]

	rt, err := New(Config{
		Shards:         topo,
		Clock:          clock,
		ShardTimeout:   500 * time.Millisecond,
		EjectThreshold: 0.5, // two consecutive failures eject
	})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	tel := obs.New(reg, nil)
	rs := NewServer(rt, ServerConfig{
		MaxInflight:    capacity,
		AdmissionMin:   1,
		AdmissionQueue: 16,
		// Keep CoDel out of the budget-starvation scenario below: the
		// sojourn bound would otherwise drop the starved waiter before
		// the budget check gets to reject it.
		AdmissionTarget: 10 * time.Second,
		QueryTimeout:    2 * time.Second,
	}, tel)
	rts := httptest.NewServer(rs.Handler())
	defer rts.Close()

	queries := webapp.Queries()[:8]

	// Healthy, unloaded baseline: the byte-identity reference.
	baseline := make(map[string][]byte, len(queries))
	for _, q := range queries {
		resp, body := httpGet(t, rts.URL+searchPath(q, k))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("baseline q=%q: status %d: %s", q, resp.StatusCode, body)
		}
		baseline[q] = body
	}

	// drained polls (briefly, in real time) for the limiter to settle
	// back to empty once a wave's responses have all been received —
	// the handlers' deferred Releases may still be running.
	drained := func() {
		t.Helper()
		deadline := time.Now().Add(2 * time.Second)
		for rs.Limiter().Inflight() != 0 || rs.Limiter().QueueDepth() != 0 {
			if time.Now().After(deadline) {
				t.Fatalf("limiter did not drain: inflight=%d queue=%d",
					rs.Limiter().Inflight(), rs.Limiter().QueueDepth())
			}
			time.Sleep(time.Millisecond)
		}
	}

	// runWave fires `wave` concurrent budget-carrying requests cycling
	// the workload, verifies byte-identity of every 200, and checks the
	// queue drains afterwards. Returns how many were served.
	runWave := func() int {
		t.Helper()
		type res struct {
			code int
			body []byte
			q    string
		}
		out := make(chan res, wave)
		var wg sync.WaitGroup
		for i := 0; i < wave; i++ {
			q := queries[i%len(queries)]
			wg.Add(1)
			go func(q string) {
				defer wg.Done()
				req, err := http.NewRequest(http.MethodGet, rts.URL+searchPath(q, k), nil)
				if err != nil {
					t.Error(err)
					return
				}
				req.Header.Set(serve.HeaderBudget, "1500")
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					t.Error(err)
					return
				}
				body := new(bytes.Buffer)
				body.ReadFrom(resp.Body)
				resp.Body.Close()
				out <- res{resp.StatusCode, body.Bytes(), q}
			}(q)
		}
		wg.Wait()
		close(out)
		ok := 0
		for r := range out {
			switch r.code {
			case http.StatusOK:
				ok++
				if !bytes.Equal(r.body, baseline[r.q]) {
					t.Errorf("q=%q diverged from healthy baseline:\n%s\nvs\n%s", r.q, r.body, baseline[r.q])
				}
			case http.StatusTooManyRequests, http.StatusServiceUnavailable, http.StatusBadGateway:
				// Shed or rejected up front: allowed under overload, but
				// never a wrong answer.
			default:
				t.Errorf("q=%q: unexpected status %d: %s", r.q, r.code, r.body)
			}
		}
		drained()
		return ok
	}

	// Phase 1 — healthy fleet under 2x capacity: everything is served
	// (the queue absorbs the excess) and every byte matches.
	for round := 0; round < 5; round++ {
		if got := runWave(); got != wave {
			t.Fatalf("healthy round %d: served %d/%d", round, got, wave)
		}
	}
	if reg.Counter("admission.queued").Value() == 0 {
		t.Fatal("2x capacity load never queued — the overload was not real")
	}

	// Phase 2 — the replica goes dark. Failover keeps answers complete
	// and byte-identical while the health EWMA accumulates; within a few
	// waves the replica must be ejected.
	flaky.down.Store(true)
	ejected := false
	for round := 0; round < 20 && !ejected; round++ {
		runWave()
		ejected = reg.Counter("router.replica.ejected").Value() >= 1
	}
	if !ejected {
		t.Fatal("flapping replica was never ejected")
	}
	if got := reg.Gauge("router.replica.quarantined").Value(); got != 1 {
		t.Fatalf("router.replica.quarantined = %d, want 1", got)
	}
	if got := rt.HealthyReplicas(0); got != 1 {
		t.Fatalf("shard 0 healthy replicas = %d, want 1", got)
	}

	// Quarantine means queries stop paying the first-hit tax: three more
	// waves must not touch the dead replica at all.
	before := flaky.calls.Load()
	for round := 0; round < 3; round++ {
		if got := runWave(); got != wave {
			t.Fatalf("post-ejection round %d: served %d/%d", round, got, wave)
		}
	}
	if got := flaky.calls.Load(); got != before {
		t.Fatalf("quarantined replica still took %d calls", got-before)
	}

	// Phase 3 — budget starvation under queue pressure: saturate the
	// limiter, queue a request whose 50ms budget then dies on the virtual
	// clock, release — the grant must be followed by an up-front
	// rejection, not an expired execution.
	var toks []*admission.Token
	for i := 0; i < capacity; i++ {
		tok, ok := rs.Limiter().TryAcquire()
		if !ok {
			t.Fatal("could not saturate the limiter")
		}
		toks = append(toks, tok)
	}
	starved := make(chan int, 1)
	go func() {
		req, _ := http.NewRequest(http.MethodGet, rts.URL+searchPath(queries[0], k), nil)
		req.Header.Set(serve.HeaderBudget, "50")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			starved <- 0
			return
		}
		resp.Body.Close()
		starved <- resp.StatusCode
	}()
	waitFor(t, func() bool { return rs.Limiter().QueueDepth() == 1 })
	clock.Advance(100 * time.Millisecond) // the queued request's budget dies here
	for _, tok := range toks {
		tok.Cancel()
	}
	if code := <-starved; code != http.StatusBadGateway {
		t.Fatalf("starved request: status %d, want 502 (budget rejected at fan-out)", code)
	}
	if got := reg.Counter("router.fanout.budget_rejected").Value(); got < 1 {
		t.Fatal("budget starvation never hit the fan-out fast-reject")
	}
	drained()

	// Phase 4 — recovery: the replica comes back, its backoff elapses,
	// and two probation probes readmit it.
	flaky.down.Store(false)
	clock.Advance(5 * time.Second) // default QuarantineBase
	pctx := obs.With(context.Background(), tel)
	rt.ProbeSweep(pctx)
	rt.ProbeSweep(pctx)
	if got := reg.Counter("router.replica.readmitted").Value(); got != 1 {
		t.Fatalf("router.replica.readmitted = %d, want 1", got)
	}
	if got := reg.Counter("router.replica.probes").Value(); got != 2 {
		t.Fatalf("router.replica.probes = %d, want 2", got)
	}
	if got := reg.Gauge("router.replica.quarantined").Value(); got != 0 {
		t.Fatalf("router.replica.quarantined = %d after readmission", got)
	}
	if got := rt.HealthyReplicas(0); got != 2 {
		t.Fatalf("shard 0 healthy replicas = %d after readmission, want 2", got)
	}

	// The readmitted replica serves again, still byte-identical.
	before = flaky.calls.Load()
	for round := 0; round < 3; round++ {
		if got := runWave(); got != wave {
			t.Fatalf("recovered round %d: served %d/%d", round, got, wave)
		}
	}
	if flaky.calls.Load() == before {
		t.Fatal("readmitted replica never served a query")
	}

	// Global invariants: no execution ever began with an expired budget,
	// and the adaptive limit stayed inside its configured band.
	for i, sb := range wrapped {
		if got := sb.expired.Load(); got != 0 {
			t.Fatalf("backend %d ran %d queries with an expired budget", i, got)
		}
	}
	if lim := rs.Limiter().Limit(); lim < 1 || lim > capacity {
		t.Fatalf("limit drifted out of band: %d", lim)
	}
}

// waitFor polls cond briefly in real time (the condition is crossing a
// goroutine boundary, not virtual time).
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never held")
		}
		time.Sleep(time.Millisecond)
	}
}
