package router

import (
	"context"
	"sync"
	"testing"
	"time"

	"ajaxcrawl/internal/query"
)

func TestLatencyRingQuantile(t *testing.T) {
	l := newLatencyRing(latencyWindow)
	if _, ok := l.Quantile(0.5); ok {
		t.Fatal("empty ring answered a quantile")
	}
	for i := 1; i < minHedgeSamples; i++ {
		l.Observe(time.Duration(i) * time.Millisecond)
	}
	if _, ok := l.Quantile(0.5); ok {
		t.Fatalf("ring answered below minHedgeSamples (%d samples)", l.Samples())
	}
	l.Observe(time.Duration(minHedgeSamples) * time.Millisecond)
	// Samples are 1..8ms. The estimate is the ceil(q·n)-th smallest
	// observed value, never an interpolation.
	cases := []struct {
		q    float64
		want time.Duration
	}{
		{0.5, 4 * time.Millisecond},
		{0.75, 6 * time.Millisecond},
		{0.95, 8 * time.Millisecond},
		{1.0, 8 * time.Millisecond},
	}
	for _, tc := range cases {
		got, ok := l.Quantile(tc.q)
		if !ok || got != tc.want {
			t.Fatalf("Quantile(%v) = %v, %v; want %v", tc.q, got, ok, tc.want)
		}
	}
}

func TestLatencyRingEvictsOldest(t *testing.T) {
	l := newLatencyRing(minHedgeSamples)
	for i := 1; i <= minHedgeSamples; i++ {
		l.Observe(time.Duration(i) * time.Millisecond)
	}
	// Overwrite the two oldest (1ms, 2ms) with 100ms entries.
	l.Observe(100 * time.Millisecond)
	l.Observe(100 * time.Millisecond)
	if got := l.Samples(); got != minHedgeSamples {
		t.Fatalf("Samples = %d, want %d (window capacity)", got, minHedgeSamples)
	}
	got, ok := l.Quantile(1.0)
	if !ok || got != 100*time.Millisecond {
		t.Fatalf("max after eviction = %v, want 100ms", got)
	}
	min, _ := l.Quantile(0.125)
	if min != 3*time.Millisecond {
		t.Fatalf("min after eviction = %v, want 3ms (1ms and 2ms evicted)", min)
	}
}

func newPickRouter(t *testing.T, replicas int) *Router {
	t.Helper()
	b := make([]Backend, replicas)
	for i := range b {
		b[i] = &staticBackend{}
	}
	r, err := New(Config{Shards: [][]Backend{b}, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestPickAvoidsLoadedReplica: with two replicas, power of two choices
// samples both, so the overloaded one is NEVER picked.
func TestPickAvoidsLoadedReplica(t *testing.T) {
	r := newPickRouter(t, 2)
	g := r.groups[0]
	g.replicas[0].outstanding.Store(100)
	for i := 0; i < 200; i++ {
		if got := r.pick(g, make([]bool, 2), nil); got != 1 {
			t.Fatalf("pick %d chose the loaded replica", i)
		}
	}
}

// TestPickTieBreaksLowerIndex: equal load picks the lower index, so the
// choice is deterministic given the outstanding counters.
func TestPickTieBreaksLowerIndex(t *testing.T) {
	r := newPickRouter(t, 2)
	g := r.groups[0]
	for i := 0; i < 200; i++ {
		if got := r.pick(g, make([]bool, 2), nil); got != 0 {
			t.Fatalf("pick %d broke a tie toward the higher index (%d)", i, got)
		}
	}
}

// TestPickSkewedFleetSheds: in a 4-replica group with one hot replica,
// P2C sends it nothing (any sample pairing it with a sibling loses) and
// spreads the rest across the idle replicas.
func TestPickSkewedFleetSheds(t *testing.T) {
	r := newPickRouter(t, 4)
	g := r.groups[0]
	g.replicas[0].outstanding.Store(50)
	counts := make([]int, 4)
	const trials = 3000
	for i := 0; i < trials; i++ {
		ri := r.pick(g, make([]bool, 4), nil)
		counts[ri]++
	}
	if counts[0] != 0 {
		t.Fatalf("hot replica picked %d times, want 0", counts[0])
	}
	for i := 1; i < 4; i++ {
		// Idle replicas share the traffic; a loose floor catches a
		// degenerate (non-uniform-sampling) picker.
		if counts[i] < trials/10 {
			t.Fatalf("replica %d picked only %d/%d times: %v", i, counts[i], trials, counts)
		}
	}
}

func TestPickRespectsUsedAndExhaustion(t *testing.T) {
	r := newPickRouter(t, 3)
	g := r.groups[0]
	used := []bool{true, false, true}
	for i := 0; i < 50; i++ {
		if got := r.pick(g, used, nil); got != 1 {
			t.Fatalf("pick chose used replica %d", got)
		}
	}
	if got := r.pick(g, []bool{true, true, true}, nil); got != -1 {
		t.Fatalf("pick on exhausted group = %d, want -1", got)
	}
}

// slowBackend answers after a real-time delay, to build up outstanding
// load the balancer can observe.
type slowBackend struct {
	res   *query.ShardResult
	delay time.Duration

	mu    sync.Mutex
	calls int
}

func (b *slowBackend) ShardSearch(ctx context.Context, q string) (*query.ShardResult, error) {
	b.mu.Lock()
	b.calls++
	b.mu.Unlock()
	if b.delay > 0 {
		select {
		case <-time.After(b.delay):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	cp := *b.res
	return &cp, nil
}

func (b *slowBackend) callCount() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.calls
}

// TestBalanceUnderSkewedLatency drives live concurrent traffic at a
// 3-replica shard where one replica is much slower. Its outstanding
// count stays high, so power of two choices must route it LESS than a
// fair share — the bound is loose (under 1/3) to stay robust across
// schedulers, but a random or round-robin picker would fail it.
func TestBalanceUnderSkewedLatency(t *testing.T) {
	terms := []string{"video"}
	res := canned(terms, 5, cand("http://a", 0, 1, 1))
	slow := &slowBackend{res: res, delay: 4 * time.Millisecond}
	fast1 := &slowBackend{res: res}
	fast2 := &slowBackend{res: res}
	r, err := New(Config{Shards: [][]Backend{{slow, fast1, fast2}}, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	const workers = 16
	const perWorker = 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if _, err := r.Search(context.Background(), "video", 5); err != nil {
					t.Errorf("Search: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	total := slow.callCount() + fast1.callCount() + fast2.callCount()
	if total != workers*perWorker {
		t.Fatalf("total calls = %d, want %d", total, workers*perWorker)
	}
	if got := slow.callCount(); got >= total/3 {
		t.Fatalf("slow replica took %d/%d calls — at or above fair share, balancer not shedding", got, total)
	}
}
