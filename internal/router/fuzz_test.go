package router

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"ajaxcrawl/internal/query"
)

// FuzzRouterMergeResponse hammers the network-facing half of the
// router: a hostile shard body goes through DecodeShardResult (size
// cap, panic containment), checkShardResult (vector alignment, finite
// floats), and — when it survives both — a self-merge through
// mergeCandidates. The invariants: never panic, never emit a duplicate
// (URL, state), never emit a non-finite score, always emit the
// deterministic order, never exceed the input's own candidate count.
func FuzzRouterMergeResponse(f *testing.F) {
	valid := `{"terms":["video"],"total_states":5,"df":[1],"gen":1,"docs":1,"states":5,` +
		`"candidates":[{"url":"http://a","state":0,"base":1,"tfs":[1],"snippet":"s"}]}`
	f.Add([]byte(valid), "video")
	f.Add([]byte(valid), "video music")             // term-count mismatch
	f.Add([]byte(`{"terms":[],"df":[]}`), "")       // empty everything
	f.Add([]byte(`{"terms":["a"],"df":[-1]}`), "a") // negative df
	f.Add([]byte(`{"terms":["a"],"df":[1],"total_states":1,"candidates":[{"url":"","tfs":[1]}]}`), "a")
	f.Add([]byte(`{"candidates":[{"url":"x","tfs":[1e308,1e308]}]}`), "a b")
	f.Add([]byte(strings.Repeat("[", 100)), "a") // malformed nesting
	f.Add([]byte(`{"terms":["a"],"df":[1],"total_states":9223372036854775807,`+
		`"candidates":[{"url":"x","state":2147483647,"base":-1e300,"tfs":[1e300]}]}`), "a")
	f.Add([]byte("{"), "a")
	f.Add([]byte(""), "a")

	f.Fuzz(func(t *testing.T, data []byte, q string) {
		terms := query.Parse(q)
		// A tight cap exercises the truncation branch on large inputs;
		// decoding must fail cleanly, never panic or over-buffer.
		res, err := DecodeShardResult(bytes.NewReader(data), 1<<16)
		if err != nil {
			return
		}
		if err := checkShardResult(res, terms); err != nil {
			return
		}
		// The response passed validation: merging it (twice, to force the
		// dedup path) must uphold every merge invariant.
		out, dups := mergeCandidates(terms, query.DefaultWeights, []*query.ShardResult{res, res}, 0)
		if len(out) > len(res.Candidates) {
			t.Fatalf("self-merge emitted %d results from %d candidates", len(out), len(res.Candidates))
		}
		if dups < len(res.Candidates) {
			// Every candidate of the second copy collides with the first
			// (and intra-response duplicates collide too).
			t.Fatalf("self-merge deduped only %d of %d duplicate candidates", dups, len(res.Candidates))
		}
		seen := make(map[string]bool, len(out))
		for i, r := range out {
			if math.IsNaN(r.Score) || math.IsInf(r.Score, 0) {
				t.Fatalf("result %d has non-finite score %v", i, r.Score)
			}
			key := resultKey(r)
			if seen[key] {
				t.Fatalf("duplicate %s in merged output", key)
			}
			seen[key] = true
			if i == 0 {
				continue
			}
			p := out[i-1]
			if r.Score > p.Score ||
				(r.Score == p.Score && r.URL < p.URL) ||
				(r.Score == p.Score && r.URL == p.URL && r.State < p.State) {
				t.Fatalf("merge order violated at %d: %+v before %+v", i, p, r)
			}
		}
		// Truncation must respect k.
		top, _ := mergeCandidates(terms, query.DefaultWeights, []*query.ShardResult{res}, 1)
		if len(top) > 1 {
			t.Fatalf("k=1 merge returned %d results", len(top))
		}
	})
}

// TestDecodeShardResultCaps pins the size-cap and panic-containment
// behavior outside the fuzzer (so -run=Test catches regressions too).
func TestDecodeShardResultCaps(t *testing.T) {
	big := `{"terms":["a"],"pad":"` + strings.Repeat("x", 4096) + `"}`
	if _, err := DecodeShardResult(strings.NewReader(big), 1024); err == nil {
		t.Fatal("oversized body decoded")
	}
	// Exactly at the cap is fine.
	small := `{"terms":["a"],"df":[0]}`
	if _, err := DecodeShardResult(strings.NewReader(small), int64(len(small))); err != nil {
		t.Fatalf("cap-sized body rejected: %v", err)
	}
	if _, err := DecodeShardResult(strings.NewReader("{nope"), 0); err == nil {
		t.Fatal("malformed body decoded")
	}
	// Unknown fields are tolerated (forward compatibility).
	fwd := `{"terms":["a"],"df":[1],"total_states":1,"future_field":{"x":1}}`
	res, err := DecodeShardResult(strings.NewReader(fwd), 0)
	if err != nil || len(res.Terms) != 1 {
		t.Fatalf("forward-compatible body rejected: %v %+v", err, res)
	}
}
