package router

import (
	"context"
	"testing"
	"time"

	"ajaxcrawl/internal/obs"
	"ajaxcrawl/internal/query"
)

// TestHedgeFiresAtFixedDelay pins the hedge schedule in virtual time:
// with HedgeAfter = 100ms and a primary that never answers, the hedged
// attempt must arrive at exactly t=100ms — not before, not after — win
// the race, and the canceled primary must be counted.
func TestHedgeFiresAtFixedDelay(t *testing.T) {
	terms := []string{"video"}
	good := canned(terms, 5, cand("http://a", 0, 1, 1))
	clock := newTestClock()
	g := &scriptedGroup{clock: clock}
	g.script = []func(ctx context.Context) (*query.ShardResult, error){
		blockUntilCanceled,
		func(ctx context.Context) (*query.ShardResult, error) { return good, nil },
	}
	r, err := New(Config{
		Shards:     [][]Backend{g.backends(2)},
		HedgeAfter: 100 * time.Millisecond,
		Clock:      clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	tel := obs.New(nil, nil)
	ctx := obs.With(context.Background(), tel)

	type out struct {
		m   *Merged
		err error
	}
	done := make(chan out, 1)
	go func() {
		m, err := r.Search(ctx, "video", 10)
		done <- out{m, err}
	}()

	// The only virtual timer is the hedge (no shard timeout configured;
	// the blocked primary holds no timer).
	clock.awaitWaiters(t, 1)
	clock.Advance(99 * time.Millisecond)
	if got := len(g.arrivalTimes()); got != 1 {
		t.Fatalf("hedge fired early: %d arrivals at t=99ms", got)
	}
	clock.Advance(1 * time.Millisecond)

	o := <-done
	if o.err != nil {
		t.Fatalf("Search: %v", o.err)
	}
	arr := g.arrivalTimes()
	if len(arr) != 2 {
		t.Fatalf("arrivals = %d, want 2", len(arr))
	}
	if got := arr[0].at.Sub(time.Unix(0, 0)); got != 0 {
		t.Fatalf("primary arrived at %v, want 0", got)
	}
	if got := arr[1].at.Sub(time.Unix(0, 0)); got != 100*time.Millisecond {
		t.Fatalf("hedge arrived at %v, want 100ms exactly", got)
	}
	if arr[0].replica == arr[1].replica {
		t.Fatalf("hedge reused replica %d", arr[0].replica)
	}
	if o.m.Hedges != 1 {
		t.Fatalf("Hedges = %d, want 1", o.m.Hedges)
	}
	if got := tel.Counter("router.fanout.hedges").Value(); got != 1 {
		t.Fatalf("router.fanout.hedges = %d, want 1", got)
	}
	if got := tel.Counter("router.fanout.hedge_wins").Value(); got != 1 {
		t.Fatalf("router.fanout.hedge_wins = %d, want 1", got)
	}
	if got := tel.Counter("router.fanout.hedge_canceled").Value(); got != 1 {
		t.Fatalf("router.fanout.hedge_canceled = %d, want 1 (the abandoned primary)", got)
	}
	// The winner's answer appears once: hedging must never duplicate
	// documents in the merged top-k.
	seen := map[string]int{}
	for _, res := range o.m.Results {
		seen[resultKey(res)]++
	}
	for k, n := range seen {
		if n > 1 {
			t.Fatalf("result %s appears %d times after a hedge", k, n)
		}
	}
	if o.m.Duplicates != 0 {
		t.Fatalf("Duplicates = %d, want 0", o.m.Duplicates)
	}
}

// TestHedgeQuantileSchedule warms the latency ring by hand and asserts
// the hedge fires at the configured quantile of observed latencies: 8
// samples of 10..80ms with q = 0.75 puts the hedge at the 6th smallest,
// 60ms.
func TestHedgeQuantileSchedule(t *testing.T) {
	terms := []string{"video"}
	good := canned(terms, 5, cand("http://a", 0, 1, 1))
	clock := newTestClock()
	g := &scriptedGroup{clock: clock}
	g.script = []func(ctx context.Context) (*query.ShardResult, error){
		blockUntilCanceled,
		func(ctx context.Context) (*query.ShardResult, error) { return good, nil },
	}
	r, err := New(Config{
		Shards:        [][]Backend{g.backends(2)},
		HedgeAfter:    5 * time.Millisecond, // warmup fallback; must NOT be used once warmed
		HedgeQuantile: 0.75,
		Clock:         clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 8; i++ {
		r.lat.Observe(time.Duration(i) * 10 * time.Millisecond)
	}

	done := make(chan *Merged, 1)
	go func() {
		m := mustSearch(t, r, context.Background(), "video", 10)
		done <- m
	}()
	clock.awaitWaiters(t, 1)
	clock.Advance(59 * time.Millisecond)
	if got := len(g.arrivalTimes()); got != 1 {
		t.Fatalf("hedge fired before the 0.75 quantile: %d arrivals at t=59ms", got)
	}
	clock.Advance(1 * time.Millisecond)
	m := <-done
	arr := g.arrivalTimes()
	if len(arr) != 2 || arr[1].at.Sub(time.Unix(0, 0)) != 60*time.Millisecond {
		t.Fatalf("hedge arrival = %+v, want second arrival at t=60ms", arr)
	}
	if m.Hedges != 1 {
		t.Fatalf("Hedges = %d, want 1", m.Hedges)
	}
}

// TestHedgeQuantileColdFallsBackToFixed: below minHedgeSamples the
// quantile estimate is unusable, so the fixed HedgeAfter drives the
// schedule.
func TestHedgeQuantileColdFallsBackToFixed(t *testing.T) {
	terms := []string{"video"}
	good := canned(terms, 5, cand("http://a", 0, 1, 1))
	clock := newTestClock()
	g := &scriptedGroup{clock: clock}
	g.script = []func(ctx context.Context) (*query.ShardResult, error){
		blockUntilCanceled,
		func(ctx context.Context) (*query.ShardResult, error) { return good, nil },
	}
	r, err := New(Config{
		Shards:        [][]Backend{g.backends(2)},
		HedgeAfter:    40 * time.Millisecond,
		HedgeQuantile: 0.95,
		Clock:         clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	r.lat.Observe(5 * time.Millisecond) // 1 sample < minHedgeSamples

	done := make(chan *Merged, 1)
	go func() { done <- mustSearch(t, r, context.Background(), "video", 10) }()
	clock.awaitWaiters(t, 1)
	clock.Advance(40 * time.Millisecond)
	m := <-done
	arr := g.arrivalTimes()
	if len(arr) != 2 || arr[1].at.Sub(time.Unix(0, 0)) != 40*time.Millisecond {
		t.Fatalf("cold-start hedge arrivals = %+v, want second at t=40ms", arr)
	}
	if m.Hedges != 1 {
		t.Fatalf("Hedges = %d, want 1", m.Hedges)
	}
}

// TestNoHedgeWithSingleReplica: hedging needs somewhere to hedge TO; a
// one-replica shard must not burn a duplicate attempt on itself.
func TestNoHedgeWithSingleReplica(t *testing.T) {
	terms := []string{"video"}
	b := &staticBackend{res: canned(terms, 5, cand("http://a", 0, 1, 1))}
	clock := newTestClock()
	r, err := New(Config{
		Shards:     [][]Backend{{b}},
		HedgeAfter: 10 * time.Millisecond,
		Clock:      clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	m := mustSearch(t, r, context.Background(), "video", 10)
	if m.Hedges != 0 {
		t.Fatalf("Hedges = %d, want 0 (single replica)", m.Hedges)
	}
	if b.callCount() != 1 {
		t.Fatalf("attempts = %d, want 1", b.callCount())
	}
}

// TestHedgeNotFiredWhenPrimaryFast: the primary answers before the
// hedge delay elapses, so no hedge launches and the loser-cancel
// counters stay zero.
func TestHedgeNotFiredWhenPrimaryFast(t *testing.T) {
	terms := []string{"video"}
	good := canned(terms, 5, cand("http://a", 0, 1, 1))
	clock := newTestClock()
	g := &scriptedGroup{clock: clock}
	g.script = []func(ctx context.Context) (*query.ShardResult, error){
		func(ctx context.Context) (*query.ShardResult, error) { return good, nil },
	}
	r, err := New(Config{
		Shards:     [][]Backend{g.backends(2)},
		HedgeAfter: 100 * time.Millisecond,
		Clock:      clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	tel := obs.New(nil, nil)
	m := mustSearch(t, r, obs.With(context.Background(), tel), "video", 10)
	if m.Hedges != 0 {
		t.Fatalf("Hedges = %d, want 0", m.Hedges)
	}
	if got := len(g.arrivalTimes()); got != 1 {
		t.Fatalf("arrivals = %d, want 1", got)
	}
	if got := tel.Counter("router.fanout.hedge_canceled").Value(); got != 0 {
		t.Fatalf("hedge_canceled = %d, want 0", got)
	}
}
