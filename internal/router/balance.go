package router

import (
	"math"
	"sort"
	"sync"
	"time"
)

const (
	// latencyWindow is how many recent shard-response latencies feed the
	// hedge-quantile estimate.
	latencyWindow = 256
	// minHedgeSamples gates quantile hedging: below this many samples
	// the estimate is noise, so the fixed HedgeAfter (or nothing) is
	// used instead.
	minHedgeSamples = 8
)

// latencyRing is a fixed-capacity ring of recent shard-response
// latencies, answering quantile queries for the adaptive hedge delay.
// One ring serves the whole router: the hedge delay should reflect what
// "slow" means fleet-wide, and per-shard rings would each warm up
// 8× slower.
type latencyRing struct {
	mu  sync.Mutex
	buf []time.Duration
	n   int // filled entries, <= len(buf)
	idx int // next write position
}

func newLatencyRing(capacity int) *latencyRing {
	return &latencyRing{buf: make([]time.Duration, capacity)}
}

// Observe records one response latency, evicting the oldest when full.
func (l *latencyRing) Observe(d time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.buf[l.idx] = d
	l.idx = (l.idx + 1) % len(l.buf)
	if l.n < len(l.buf) {
		l.n++
	}
}

// Quantile returns the q-quantile (0 < q <= 1) of the recorded
// latencies, or false while fewer than minHedgeSamples exist. The
// estimate is the ceil(q·n)-th smallest sample — for q=0.95 over 20
// samples, the 19th — so it is an actual observed latency, never an
// interpolation.
func (l *latencyRing) Quantile(q float64) (time.Duration, bool) {
	l.mu.Lock()
	if l.n < minHedgeSamples {
		l.mu.Unlock()
		return 0, false
	}
	s := append([]time.Duration(nil), l.buf[:l.n]...)
	l.mu.Unlock()
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(math.Ceil(q*float64(len(s)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx], true
}

// Samples returns how many latencies are recorded (tests).
func (l *latencyRing) Samples() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.n
}
