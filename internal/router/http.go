package router

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"ajaxcrawl/internal/obs"
	"ajaxcrawl/internal/query"
	"ajaxcrawl/internal/serve"
)

// HeaderShards reports fan-out completeness as "ok/total", e.g. "3/4"
// on a degraded answer with one shard down. It is always set, so "4/4"
// positively asserts a complete answer.
const HeaderShards = "X-Ajaxserve-Shards"

// HeaderHedges reports how many hedged attempts this query fired.
const HeaderHedges = "X-Ajaxserve-Hedges"

// ServerConfig parameterizes the router's HTTP layer.
type ServerConfig struct {
	// DefaultK is the result count when ?k= is absent (default 10).
	DefaultK int
	// MaxK caps ?k= (default 100).
	MaxK int
	// MaxInflight bounds concurrently routed queries; excess requests
	// are shed with 429 (0 = unlimited).
	MaxInflight int
	// QueryTimeout is the per-request wall deadline (0 = none). The
	// per-shard deadline lives in the Router's Config.ShardTimeout.
	QueryTimeout time.Duration
}

func (c ServerConfig) withDefaults() ServerConfig {
	if c.DefaultK <= 0 {
		c.DefaultK = 10
	}
	if c.MaxK <= 0 {
		c.MaxK = 100
	}
	return c
}

// Server is the router's HTTP front end: /search with the same request
// and body contract as ajaxserve (so clients cannot tell a router from
// a single snapshot server by the bytes — the differential battery pins
// this), plus fan-out metadata in response headers.
type Server struct {
	rt       *Router
	cfg      ServerConfig
	tel      *obs.Telemetry
	inflight chan struct{}
}

// NewServer wraps rt in the HTTP layer. tel may be nil.
func NewServer(rt *Router, cfg ServerConfig, tel *obs.Telemetry) *Server {
	cfg = cfg.withDefaults()
	s := &Server{rt: rt, cfg: cfg, tel: tel}
	if cfg.MaxInflight > 0 {
		s.inflight = make(chan struct{}, cfg.MaxInflight)
	}
	return s
}

// Router exposes the wrapped Router.
func (s *Server) Router() *Router { return s.rt }

// Routes mounts the routing endpoints on mux: /search and /healthz.
func (s *Server) Routes(mux *http.ServeMux) {
	mux.HandleFunc("/search", s.handleSearch)
	mux.HandleFunc("/healthz", s.handleHealth)
}

// Handler returns the routing endpoints wrapped in the obs request
// middleware, backed by this server's telemetry registry.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	s.Routes(mux)
	return obs.InstrumentHandler(s.tel.Registry(), mux)
}

// searchResponse mirrors ajaxserve's /search body field-for-field —
// the two must marshal identically, because the sharded fleet promises
// byte-identical answers to the single-snapshot server. Fan-out
// metadata (shard completeness, hedges) rides on headers, never in the
// body, for the same reason.
type searchResponse struct {
	Query   string         `json:"query"`
	K       int            `json:"k"`
	Count   int            `json:"count"`
	Results []searchResult `json:"results"`
}

type searchResult struct {
	URL     string  `json:"url"`
	State   int     `json:"state"`
	Score   float64 `json:"score"`
	Snippet string  `json:"snippet,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	b, err := json.Marshal(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(b, '\n'))
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	tel := s.tel
	if s.inflight != nil {
		select {
		case s.inflight <- struct{}{}:
			defer func() { <-s.inflight }()
		default:
			tel.Counter("router.shed").Inc()
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusTooManyRequests, errorResponse{Error: "router saturated, retry later"})
			return
		}
	}
	q := r.URL.Query().Get("q")
	if q == "" {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "missing q parameter"})
		return
	}
	k := s.cfg.DefaultK
	if kv := r.URL.Query().Get("k"); kv != "" {
		parsed, err := strconv.Atoi(kv)
		if err != nil || parsed <= 0 {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: "k must be a positive integer"})
			return
		}
		k = parsed
		if k > s.cfg.MaxK {
			k = s.cfg.MaxK
		}
	}

	ctx := obs.With(r.Context(), tel)
	if s.cfg.QueryTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.QueryTimeout)
		defer cancel()
	}

	m, err := s.rt.Search(ctx, q, k)
	if err != nil {
		// The fleet could not produce an answer (no shard responded, or
		// a shard failed with partial results disabled): the router is
		// a gateway and says so.
		if m != nil {
			w.Header().Set(HeaderShards, fmt.Sprintf("%d/%d", m.ShardsOK, m.ShardsTotal))
		}
		writeJSON(w, http.StatusBadGateway, errorResponse{Error: err.Error()})
		return
	}
	resp := searchResponse{
		Query:   query.QueryString(query.Parse(q)),
		K:       k,
		Count:   len(m.Results),
		Results: make([]searchResult, 0, len(m.Results)),
	}
	for _, r := range m.Results {
		resp.Results = append(resp.Results, searchResult{
			URL:     r.URL,
			State:   int(r.State),
			Score:   r.Score,
			Snippet: r.Snippet,
		})
	}
	w.Header().Set(serve.HeaderGeneration, strconv.FormatInt(m.Gen, 10))
	w.Header().Set(serve.HeaderDocs, strconv.Itoa(m.Docs))
	w.Header().Set(serve.HeaderStates, strconv.Itoa(m.States))
	w.Header().Set(HeaderShards, fmt.Sprintf("%d/%d", m.ShardsOK, m.ShardsTotal))
	w.Header().Set(HeaderHedges, strconv.Itoa(m.Hedges))
	writeJSON(w, http.StatusOK, resp)
}

// healthResponse is the router's /healthz body.
type healthResponse struct {
	Status   string `json:"status"`
	Shards   int    `json:"shards"`
	Replicas []int  `json:"replicas"`
	Partial  bool   `json:"partial"`
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	reps := make([]int, s.rt.NumShards())
	for i := range reps {
		reps[i] = s.rt.Replicas(i)
	}
	writeJSON(w, http.StatusOK, healthResponse{
		Status:   "ok",
		Shards:   s.rt.NumShards(),
		Replicas: reps,
		Partial:  s.rt.cfg.Partial,
	})
}
